package rbcast

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math/rand"
	"testing"
)

// sweepHash fingerprints a Result with Metrics.Wall zeroed — the same
// byte-identity convention as scenarios.ResultHash (which this internal test
// cannot import without a cycle). Every sweep element must hash equal to its
// independent scalar run.
func sweepHash(t *testing.T, res Result) string {
	t.Helper()
	res.Metrics.Wall = 0
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// requireSweepMatchesScalar runs the jobs through RunSweepJobs and asserts
// every element is byte-identical to its own scalar Run.
func requireSweepMatchesScalar(t *testing.T, name string, jobs []Job) SweepStats {
	t.Helper()
	results, stats := RunSweepJobs(jobs, BatchOptions{})
	if len(results) != len(jobs) {
		t.Fatalf("%s: %d results for %d jobs", name, len(results), len(jobs))
	}
	for i, job := range jobs {
		want, werr := Run(job.Config, job.Plan)
		got := results[i]
		if (werr == nil) != (got.Err == nil) {
			t.Fatalf("%s[%d]: sweep err %v, scalar err %v", name, i, got.Err, werr)
		}
		if werr != nil {
			if got.Err.Error() != werr.Error() {
				t.Errorf("%s[%d]: sweep err %q, scalar err %q", name, i, got.Err, werr)
			}
			continue
		}
		if g, w := sweepHash(t, got.Result), sweepHash(t, want); g != w {
			t.Errorf("%s[%d]: sweep result %s, scalar %s (rounds %d vs %d, correct %d vs %d)",
				name, i, g, w, got.Result.Rounds, want.Rounds, got.Result.Correct, want.Correct)
		}
	}
	return stats
}

// TestSweepCrashRoundFamilies exercises the wavefront-prefix fork layer:
// crash-round sweeps for both cloneable protocols on all three topology
// families must be byte-identical to scalar runs and must actually share
// prefix work.
func TestSweepCrashRoundFamilies(t *testing.T) {
	cases := []struct {
		name string
		spec SweepSpec
	}{
		{"flood/torus-band", SweepSpec{
			Base: Job{
				Config: Config{Width: 16, Height: 12, Radius: 1, Protocol: ProtocolFlood, Value: 1},
				Plan:   FaultPlan{Placement: PlaceBand, Strategy: StrategyCrash},
			},
			Axes: SweepAxes{CrashRounds: []int{1, 2, 3, 4, 5, 6, 7, 8}},
		}},
		{"cpa/torus-greedy", SweepSpec{
			Base: Job{
				Config: Config{Width: 20, Height: 12, Radius: 2, Protocol: ProtocolCPA, T: 2, Value: 1},
				Plan:   FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategyCrash},
			},
			Axes: SweepAxes{CrashRounds: []int{1, 2, 3, 5, 9}},
		}},
		{"flood/rgg-random", SweepSpec{
			Base: Job{
				Config: Config{Topology: TopologyRGG, Nodes: 90, RGGRadius: 0.22, TopologySeed: 7, Protocol: ProtocolFlood, Value: 1},
				Plan:   FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Count: 12, Seed: 3, Budget: 4},
			},
			Axes: SweepAxes{CrashRounds: []int{1, 2, 3, 4}},
		}},
		{"cpa/custom-ring", SweepSpec{
			Base: Job{
				Config: Config{Topology: TopologyCustom, Graph: chordRing(24, 4), Protocol: ProtocolCPA, T: 1, Value: 1},
				Plan:   FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Count: 3, Seed: 5, Budget: 2},
			},
			Axes: SweepAxes{CrashRounds: []int{1, 2, 3}},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			jobs, err := tc.spec.Elements()
			if err != nil {
				t.Fatal(err)
			}
			stats := requireSweepMatchesScalar(t, tc.name, jobs)
			if stats.Forks == 0 {
				t.Errorf("expected prefix forks, got stats %+v", stats)
			}
			if stats.NodeRounds >= stats.ScalarNodeRounds {
				t.Errorf("no node-round saving: %d actual vs %d scalar", stats.NodeRounds, stats.ScalarNodeRounds)
			}
		})
	}
}

// TestSweepExecutionKeySharing exercises the dead-parameter layer: flood
// ignores T, deterministic placements ignore Seed — those axes must collapse
// to a single simulation and still match scalar runs element-for-element.
func TestSweepExecutionKeySharing(t *testing.T) {
	spec := SweepSpec{
		Base: Job{
			Config: Config{Width: 14, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1},
			Plan:   FaultPlan{Placement: PlaceBand, Strategy: StrategyCrash, CrashRound: 3},
		},
		Axes: SweepAxes{Ts: []int{0, 1, 2, 3}, Seeds: []int64{1, 2, 3}},
	}
	jobs, err := spec.Elements()
	if err != nil {
		t.Fatal(err)
	}
	stats := requireSweepMatchesScalar(t, "flood/dead-axes", jobs)
	if stats.Simulations != 1 {
		t.Errorf("dead axes should collapse to 1 simulation, got %d (stats %+v)", stats.Simulations, stats)
	}
	if stats.SharedResults != len(jobs)-1 {
		t.Errorf("SharedResults = %d, want %d", stats.SharedResults, len(jobs)-1)
	}
}

// TestSweepHeterogeneous mixes protocols, topologies and invalid elements in
// one randomized grid, cross-checking every element against its scalar run —
// the non-fork paths (bv4/bracha, byzantine strategies, validation errors)
// must flow through the sweep untouched.
func TestSweepHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var jobs []Job
	bases := []Job{
		{Config: Config{Width: 12, Height: 10, Radius: 1, Protocol: ProtocolBV4, T: 1, Value: 1},
			Plan: FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent}},
		{Config: Config{Width: 12, Height: 10, Radius: 1, Protocol: ProtocolBV2, T: 1, Value: 1},
			Plan: FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategyLiar}},
		{Config: Config{Width: 5, Height: 5, Radius: 2, Protocol: ProtocolBracha, T: 8, Value: 1},
			Plan: FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySilent, Count: 8}},
		{Config: Config{Topology: TopologyRGG, Nodes: 60, RGGRadius: 0.25, TopologySeed: 2, Protocol: ProtocolCPA, T: 1, Value: 1},
			Plan: FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySilent, Count: 4, Budget: 2}},
		// Invalid on purpose: negative T rejects identically in both paths.
		{Config: Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, T: -1, Value: 1}},
	}
	for i := 0; i < 24; i++ {
		j := bases[rng.Intn(len(bases))]
		j.Plan.Seed = int64(rng.Intn(4))
		if rng.Intn(2) == 0 {
			j.Config.LockStep = true
		}
		jobs = append(jobs, j)
	}
	requireSweepMatchesScalar(t, "heterogeneous", jobs)
}

// TestSweepElementsExpansion pins the documented axis order and the size cap.
func TestSweepElementsExpansion(t *testing.T) {
	spec := SweepSpec{
		Base: Job{Config: Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1}},
		Axes: SweepAxes{
			Placements:  []Placement{PlaceBand, PlaceNone},
			Ts:          []int{0, 1},
			CrashRounds: []int{1, 2, 3},
		},
	}
	jobs, err := spec.Elements()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12 {
		t.Fatalf("got %d elements, want 12", len(jobs))
	}
	// Placements outermost, CrashRounds innermost.
	if jobs[0].Plan.Placement != PlaceBand || jobs[0].Config.T != 0 || jobs[0].Plan.CrashRound != 1 {
		t.Errorf("element 0 = %+v", jobs[0])
	}
	if jobs[1].Plan.CrashRound != 2 {
		t.Errorf("element 1 crash round = %d, want 2", jobs[1].Plan.CrashRound)
	}
	if jobs[6].Plan.Placement != PlaceNone {
		t.Errorf("element 6 placement = %v, want none", jobs[6].Plan.Placement)
	}
	big := SweepSpec{Base: spec.Base, Axes: SweepAxes{
		Ts:    make([]int, 100),
		Seeds: make([]int64, 100),
	}}
	if _, err := big.Elements(); err == nil {
		t.Error("oversized grid should be rejected")
	}
}

// TestExecutionKeyBudgetTrap pins the one subtle non-collapse: flood ignores
// T in the protocol, but a budgeted placement with Budget 0 resolves its
// budget *from* T — those elements must not share an execution.
func TestExecutionKeyBudgetTrap(t *testing.T) {
	mk := func(tval, budget int) Job {
		return Job{
			Config: Config{Width: 16, Height: 12, Radius: 2, Protocol: ProtocolFlood, T: tval, Value: 1},
			Plan:   FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategyCrash, CrashRound: 2, Budget: budget},
		}
	}
	if mk(1, 0).executionKey() == mk(3, 0).executionKey() {
		t.Error("T feeds the greedy-band budget when Budget is 0; keys must differ")
	}
	if mk(1, 2).executionKey() != mk(3, 2).executionKey() {
		t.Error("with an explicit Budget, flood's T is dead; keys must match")
	}
	// And the sweep must produce scalar-identical results either way.
	jobs := []Job{mk(1, 0), mk(3, 0), mk(1, 2), mk(3, 2)}
	requireSweepMatchesScalar(t, "budget-trap", jobs)
}

// chordRing builds a ring of n nodes where each node also links to the node
// k steps ahead — a small-diameter custom graph for non-grid sweeps.
func chordRing(n, k int) *GraphSpec {
	spec := &GraphSpec{Nodes: n}
	for i := 0; i < n; i++ {
		spec.Edges = append(spec.Edges, [2]int{i, (i + 1) % n})
		if k > 1 {
			spec.Edges = append(spec.Edges, [2]int{i, (i + k) % n})
		}
	}
	return spec
}
