package rbcast

import (
	"errors"
	"fmt"
)

// ErrDeadline reports that a run was stopped by its context — a wall-clock
// bound independent of Config.MaxRounds — before the protocol quiesced. The
// Result returned alongside an error wrapping ErrDeadline is the *partial*
// state at the round boundary where the cancellation was observed: decided
// nodes keep their decisions, Undecided means "not yet" rather than
// "never", and Quiesced is false. Errors wrapping ErrDeadline also wrap the
// context's own error, so errors.Is distinguishes a deadline
// (context.DeadlineExceeded) from an explicit cancel (context.Canceled).
var ErrDeadline = errors.New("rbcast: deadline exceeded")

// PanicError is the failure recorded for a batch job whose scenario
// panicked. The worker recovers it, so a panicking job fails alone — the
// daemon, the batch, and every sibling job are unaffected — while the
// captured stack preserves the evidence a crash would have printed.
type PanicError struct {
	// Index is the job's position in the batch; negative for a panic
	// outside a batch (a single synchronous run).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace (runtime/debug.Stack).
	Stack []byte
}

// Error renders the panic value; the stack is carried separately so logs
// can choose whether to spell out all of it.
func (e *PanicError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("rbcast: scenario panicked: %v", e.Value)
	}
	return fmt.Sprintf("rbcast: job %d panicked: %v", e.Index, e.Value)
}
