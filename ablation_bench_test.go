package rbcast

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// designated ("earmarked") evidence mode vs exhaustive evaluation, the
// TDMA-frame vs lock-step delivery semantics, and the cell vs sequential
// transmission schedules.
import (
	"testing"

	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/topology"
)

// BenchmarkAblationBV4Designated measures the 4-hop protocol with the
// constructive-proof family tables (the default).
func BenchmarkAblationBV4Designated(b *testing.B) {
	benchBV4Mode(b, false)
}

// BenchmarkAblationBV4Exact measures the same scenario with exhaustive
// evidence evaluation and unrestricted relaying — the paper's protocol
// without the earmarking state reduction.
func BenchmarkAblationBV4Exact(b *testing.B) {
	benchBV4Mode(b, true)
}

func benchBV4Mode(b *testing.B, exact bool) {
	b.Helper()
	r := 1
	cfg := Config{
		Width: 12, Height: 12, Radius: r,
		Protocol: ProtocolBV4, T: MaxByzantineLinf(r), Value: 1,
		ExactEvidence: exact,
	}
	plan := FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyForger, Seed: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllCorrect() {
			b.Fatal("BV4 failed below threshold")
		}
	}
}

// BenchmarkAblationModeFrame measures the TDMA-frame engine semantics
// (intra-frame cascade: fewer rounds, same decisions).
func BenchmarkAblationModeFrame(b *testing.B) {
	benchMode(b, sim.ModeFrame)
}

// BenchmarkAblationModeNextRound measures strict lock-step delivery.
func BenchmarkAblationModeNextRound(b *testing.B) {
	benchMode(b, sim.ModeNextRound)
}

func benchMode(b *testing.B, mode sim.DeliveryMode) {
	b.Helper()
	net, err := topology.New(grid.Torus{W: 24, H: 24}, grid.Linf, 2)
	if err != nil {
		b.Fatal(err)
	}
	src := net.IDOf(grid.C(0, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := protocol.Run(protocol.RunConfig{
			Kind:   protocol.CPA,
			Params: protocol.Params{Net: net, Source: src, Value: 1, T: 0},
			Mode:   mode,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !out.AllCorrect() {
			b.Fatal("CPA failed fault-free")
		}
	}
}

// BenchmarkAblationCellSchedule measures the (2r+1)²-slot spatial-reuse
// schedule on a divisible torus.
func BenchmarkAblationCellSchedule(b *testing.B) {
	benchSchedule(b, true)
}

// BenchmarkAblationSequentialSchedule measures the one-node-per-slot
// fallback schedule on the same torus.
func BenchmarkAblationSequentialSchedule(b *testing.B) {
	benchSchedule(b, false)
}

func benchSchedule(b *testing.B, cell bool) {
	b.Helper()
	net, err := topology.New(grid.Torus{W: 25, H: 25}, grid.Linf, 2)
	if err != nil {
		b.Fatal(err)
	}
	var sched topology.Schedule
	if cell {
		sched, err = topology.NewCellSchedule(net)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		sched = topology.NewSequentialSchedule(net)
	}
	src := net.IDOf(grid.C(0, 0))
	factory, err := protocol.NewFactory(protocol.Flood, protocol.Params{
		Net: net, Source: src, Value: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{Net: net, Factory: factory, Schedule: sched})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Decided) != net.Size() {
			b.Fatal("flood incomplete")
		}
	}
}
