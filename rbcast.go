package rbcast

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bounds"
	"repro/internal/etrace"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Metric selects the distance metric defining radio neighborhoods.
type Metric int

const (
	// MetricLinf is the L∞ (Chebyshev) metric — the paper's exact-threshold
	// setting. This is the default.
	MetricLinf Metric = iota + 1
	// MetricL2 is the Euclidean metric of §VIII.
	MetricL2
)

// String names the metric ("linf", "l2") for logs, cache keys and metric
// labels.
func (m Metric) String() string {
	switch m {
	case MetricLinf:
		return "linf"
	case MetricL2:
		return "l2"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Protocol selects a broadcast protocol.
type Protocol int

const (
	// ProtocolFlood is crash-stop flooding (§VII).
	ProtocolFlood Protocol = iota + 1
	// ProtocolCPA is the simple protocol (§IX): commit on t+1 matching
	// neighbor announcements.
	ProtocolCPA
	// ProtocolBV4 is the paper's 4-hop indirect-report protocol (§VI),
	// exact-threshold optimal in L∞.
	ProtocolBV4
	// ProtocolBV2 is the simplified 2-hop protocol (§VI-B).
	ProtocolBV2
	// ProtocolBracha is Bracha's ECHO/READY reliable broadcast — the
	// message-passing literature's quorum protocol, run under the radio
	// harness for head-to-head comparison with the paper's locally-bounded
	// protocols. T is the global quorum bound f (N ≥ 3T+1 is required):
	// echo on VAL, ready on N−T ECHOs or T+1 READYs, deliver on 2T+1
	// READYs. Endorsements are counted by attributed physical sender, so
	// quorums need an effectively complete graph.
	ProtocolBracha
	// ProtocolBrachaAuth is the authenticated Bracha variant: simulated
	// signatures pin VAL provenance and name ECHO/READY endorsers, and
	// honest nodes relay each distinct signed message once, so quorums
	// assemble across multi-hop relays on any connected graph.
	ProtocolBrachaAuth
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolFlood:
		return "flood"
	case ProtocolCPA:
		return "cpa"
	case ProtocolBV4:
		return "bv4"
	case ProtocolBV2:
		return "bv2"
	case ProtocolBracha:
		return "bracha"
	case ProtocolBrachaAuth:
		return "bracha-auth"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config describes a broadcast scenario. The JSON encoding (see encode.go)
// uses snake_case keys and stable enum names, omits zero-valued fields, and
// round-trips losslessly.
type Config struct {
	// Topology selects the network family; the zero value is the torus.
	// Each family has its own parameter fields (torus: Width, Height,
	// Radius, Metric, SourceX, SourceY; rgg: Nodes, RGGRadius,
	// TopologySeed, Source; custom: Graph, Source) and validation rejects
	// fields belonging to another family. BV4/BV2 and the band placements
	// are torus-only; Flood, CPA and the Bracha family run on every
	// family.
	Topology Topology `json:"topology,omitempty"`
	// Width and Height are the torus dimensions (≥ 2·Radius+1 each).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Radius is the transmission radius r (≥ 1).
	Radius int `json:"radius,omitempty"`
	// Metric defaults to MetricLinf.
	Metric Metric `json:"metric,omitempty"`
	// Nodes is the TopologyRGG node count (≥ 1).
	Nodes int `json:"nodes,omitempty"`
	// RGGRadius is the TopologyRGG connection radius on the unit torus,
	// in (0, 1].
	RGGRadius float64 `json:"rgg_radius,omitempty"`
	// TopologySeed keys the TopologyRGG placement stream. Identical
	// (Nodes, RGGRadius, TopologySeed) build identical graphs on every
	// platform; see EXPERIMENTS.md for the reproducibility contract.
	TopologySeed int64 `json:"topology_seed,omitempty"`
	// Graph is the TopologyCustom adjacency list.
	Graph *GraphSpec `json:"graph,omitempty"`
	// Source is the source node id for non-torus families (torus configs
	// locate the source with SourceX/SourceY instead).
	Source int `json:"source,omitempty"`
	// Protocol selects the broadcast protocol (required).
	Protocol Protocol `json:"protocol,omitempty"`
	// T is the assumed per-neighborhood fault bound (ignored by flooding).
	T int `json:"t,omitempty"`
	// Value is the source's binary input (0 or 1).
	Value byte `json:"value,omitempty"`
	// SourceX, SourceY locate the source (default: the origin).
	SourceX int `json:"source_x,omitempty"`
	SourceY int `json:"source_y,omitempty"`
	// MaxRounds bounds the execution (0 = a large default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Concurrent runs the goroutine-per-node engine instead of the
	// deterministic sequential one. Results are identical; the concurrent
	// engine exercises real parallelism.
	Concurrent bool `json:"concurrent,omitempty"`
	// ExactEvidence switches ProtocolBV4 to exhaustive evidence
	// evaluation (expensive; for validation at small radii). The default
	// is the designated-family ("earmarked") mode from the constructive
	// proof.
	ExactEvidence bool `json:"exact_evidence,omitempty"`
	// LossRate enables the unreliable-channel extension (§II/§X): each
	// transmission is lost at each receiver independently with this
	// probability. Zero is the paper's ideal medium.
	LossRate float64 `json:"loss_rate,omitempty"`
	// Retransmit is the blind retransmission count of the probabilistic
	// local-broadcast primitive (< 1 means 1).
	Retransmit int `json:"retransmit,omitempty"`
	// MediumSeed drives the loss process deterministically.
	MediumSeed int64 `json:"medium_seed,omitempty"`
	// SpoofingPossible drops the no-address-spoofing assumption (§X
	// what-if): receivers attribute messages to the claimed sender.
	// Combine with StrategySpoofer to reproduce the safety collapse the
	// paper warns about.
	SpoofingPossible bool `json:"spoofing_possible,omitempty"`
	// LockStep defers every broadcast to the next round (one hop per
	// round) instead of the default TDMA-frame semantics where later
	// slots react within the same frame. Decisions are identical; round
	// numbers become hop counts, which makes wavefront traces readable.
	LockStep bool `json:"lock_step,omitempty"`
	// Trace records a structured execution trace — every broadcast,
	// delivery, evidence evaluation, crash, spoof and commit, the latter
	// carrying its Certificate — into Result.Trace. Off by default; the
	// engines and protocols pay nothing when unset. Traces from the
	// concurrent engine interleave protocol events nondeterministically
	// within a round (see Result.Trace).
	Trace bool `json:"trace,omitempty"`
}

// validate rejects invalid public options up front, so every
// misconfiguration surfaces as an rbcast error instead of one from an
// internal layer — or, worse, silently skewed results.
func (c Config) validate() error {
	if err := c.validateTopology(); err != nil {
		return err
	}
	if c.Value > 1 {
		return fmt.Errorf("rbcast: value must be 0 or 1, got %d", c.Value)
	}
	if c.T < 0 {
		return fmt.Errorf("rbcast: negative fault bound T = %d", c.T)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("rbcast: loss rate %v outside [0,1)", c.LossRate)
	}
	if c.Retransmit < 0 {
		return fmt.Errorf("rbcast: negative retransmission count Retransmit = %d", c.Retransmit)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("rbcast: negative round bound MaxRounds = %d", c.MaxRounds)
	}
	if c.Concurrent {
		// The goroutine-per-node engine supports only the paper's ideal
		// medium and is inherently lock-step; reject every
		// sequential-engine-only option explicitly rather than silently
		// dropping it.
		switch {
		case c.LossRate > 0:
			return fmt.Errorf("rbcast: the lossy-medium extension requires the sequential engine")
		case c.Retransmit > 1:
			return fmt.Errorf("rbcast: Retransmit requires the sequential engine (the concurrent engine models the ideal medium)")
		case c.MediumSeed != 0:
			return fmt.Errorf("rbcast: MediumSeed requires the sequential engine (the concurrent engine models the ideal medium)")
		case c.LockStep:
			return fmt.Errorf("rbcast: LockStep only configures the sequential engine (the concurrent engine is always lock-step)")
		}
	}
	return nil
}

// kind maps the public protocol enum to the internal one.
func (c Config) kind() (protocol.Kind, error) {
	switch c.Protocol {
	case ProtocolFlood:
		return protocol.Flood, nil
	case ProtocolCPA:
		return protocol.CPA, nil
	case ProtocolBV4:
		return protocol.BV4, nil
	case ProtocolBV2:
		return protocol.BV2, nil
	case ProtocolBracha:
		return protocol.Bracha, nil
	case ProtocolBrachaAuth:
		return protocol.BrachaAuth, nil
	default:
		return 0, fmt.Errorf("rbcast: invalid protocol %d", int(c.Protocol))
	}
}

// quorum reports whether the protocol is of the global-quorum family, whose
// thresholds require N ≥ 3T+1 on the materialized network.
func (c Config) quorum() bool {
	return c.Protocol == ProtocolBracha || c.Protocol == ProtocolBrachaAuth
}

// Run executes the scenario against the fault plan and reports the outcome.
func Run(cfg Config, plan FaultPlan) (Result, error) {
	return RunContext(context.Background(), cfg, plan)
}

// RunContext is Run with a wall-clock bound: when ctx expires or is
// cancelled, the engines stop at the next round boundary and RunContext
// returns the partial Result together with an error wrapping ErrDeadline
// (and the context's own error). This is the serving path's defense against
// adversarial or mis-sized scenarios — MaxRounds bounds protocol time,
// the context bounds machine time. Configuration errors still return a
// zero Result, so callers distinguish "rejected" from "truncated" with
// errors.Is(err, ErrDeadline).
func RunContext(ctx context.Context, cfg Config, plan FaultPlan) (Result, error) {
	pr, err := prepare(cfg, plan)
	if err != nil {
		return Result{}, err
	}
	net, faulty := pr.net, pr.faulty
	collector := metrics.New()
	var rec *etrace.Recorder
	if cfg.Trace {
		rec = etrace.New()
		// Crash events come from the fault plan, not the engines: record
		// them up front, in id order, so every trace opens with the
		// adversary's schedule.
		for _, id := range faulty.faulty {
			if round, crashed := faulty.crash[id]; crashed {
				rec.Crash(round, id)
			}
		}
	}
	params := pr.params(collector, rec)

	start := time.Now()
	var out protocol.Outcome
	if cfg.Concurrent {
		out, err = runConcurrent(ctx, pr.kind, params, faulty, cfg.MaxRounds)
	} else {
		out, err = protocol.Run(pr.runConfig(params, ctx))
	}
	if err != nil && !errors.Is(err, sim.ErrDeadline) {
		return Result{}, err
	}
	collector.ObserveWall(time.Since(start))
	res := newResult(net, out, faulty)
	res.Metrics = newMetrics(collector.Snapshot())
	if rec != nil {
		res.Trace = newTraceEvents(net, rec.Events())
	}
	if err != nil {
		// The partial result travels with the typed deadline error; the
		// chain keeps the engine's round count and the context cause.
		return res, fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return res, nil
}

// prepared is one validated, materialized scenario: everything RunContext
// and the sweep driver (sweep.go) need before choosing how to execute it.
type prepared struct {
	cfg    Config
	net    topology.Graph
	kind   protocol.Kind
	source topology.NodeID
	mode   protocol.EvidenceMode
	faulty materialized
	medium sim.Medium
}

// prepare validates the configuration, materializes the network and the
// fault assignment, and resolves the internal protocol selection. It is the
// shared front half of every execution path; errors here mean the scenario
// was rejected (zero Result), never truncated.
func prepare(cfg Config, plan FaultPlan) (prepared, error) {
	if err := cfg.validate(); err != nil {
		return prepared{}, err
	}
	net, err := cfg.network()
	if err != nil {
		return prepared{}, err
	}
	kind, err := cfg.kind()
	if err != nil {
		return prepared{}, err
	}
	if cfg.quorum() {
		// The quorum thresholds only intersect when N ≥ 3T+1; the check
		// needs the materialized network's size, so it lives here rather
		// than in validate.
		if n := net.Size(); n < 3*cfg.T+1 {
			return prepared{}, fmt.Errorf("rbcast: protocol %s needs N ≥ 3T+1 for quorum intersection, got N = %d, T = %d",
				cfg.Protocol, n, cfg.T)
		}
	}
	source, err := cfg.sourceID(net)
	if err != nil {
		return prepared{}, err
	}
	plan.budgetForPlan = cfg.T
	faulty, err := plan.materialize(net, source)
	if err != nil {
		return prepared{}, err
	}
	mode := protocol.Designated
	if cfg.ExactEvidence {
		mode = protocol.Exact
	}
	return prepared{
		cfg:    cfg,
		net:    net,
		kind:   kind,
		source: source,
		mode:   mode,
		faulty: faulty,
		medium: sim.Medium{LossRate: cfg.LossRate, Retransmit: cfg.Retransmit, Seed: cfg.MediumSeed},
	}, nil
}

// params assembles the protocol parameters around a run's own collector and
// recorder (these are per-execution, unlike the scenario itself).
func (p prepared) params(collector *metrics.Collector, rec *etrace.Recorder) protocol.Params {
	return protocol.Params{
		Net:              p.net,
		Source:           p.source,
		Value:            p.cfg.Value,
		T:                p.cfg.T,
		Mode:             p.mode,
		SpoofingPossible: p.cfg.SpoofingPossible,
		Metrics:          collector,
		Trace:            rec,
	}
}

// runConfig assembles the sequential-engine run configuration.
func (p prepared) runConfig(params protocol.Params, ctx context.Context) protocol.RunConfig {
	mode := sim.ModeFrame
	if p.cfg.LockStep {
		mode = sim.ModeNextRound
	}
	return protocol.RunConfig{
		Kind:      p.kind,
		Params:    params,
		Byzantine: p.faulty.byzantine,
		Crash:     p.faulty.crash,
		MaxRounds: p.cfg.MaxRounds,
		Medium:    p.medium,
		Mode:      mode,
		Context:   ctx,
	}
}

// runConcurrent executes on the goroutine-per-node engine.
func runConcurrent(ctx context.Context, kind protocol.Kind, params protocol.Params, faulty materialized, maxRounds int) (protocol.Outcome, error) {
	honest, err := protocol.NewFactory(kind, params)
	if err != nil {
		return protocol.Outcome{}, err
	}
	factory := func(id topology.NodeID) sim.Process {
		if strat, ok := faulty.byzantine[id]; ok {
			return strat.NewProcess(id)
		}
		return honest(id)
	}
	res, err := runtime.Run(runtime.Config{
		Net:       params.Net,
		Factory:   factory,
		CrashAt:   faulty.crash,
		MaxRounds: maxRounds,
		Metrics:   params.Metrics,
		Trace:     params.Trace,
		Context:   ctx,
	})
	if err != nil && !errors.Is(err, sim.ErrDeadline) {
		return protocol.Outcome{}, err
	}
	out := protocol.Outcome{Result: res}
	for i := 0; i < params.Net.Size(); i++ {
		id := topology.NodeID(i)
		if _, byz := faulty.byzantine[id]; byz {
			continue
		}
		if _, crashed := faulty.crash[id]; crashed {
			continue
		}
		out.Honest++
		v, ok := res.Decided[id]
		switch {
		case !ok:
			out.Undecided++
		case v == params.Value:
			out.Correct++
		default:
			out.Wrong++
		}
	}
	return out, err
}

// Threshold re-exports: the closed-form fault-tolerance bounds of the paper
// as functions of the transmission radius r.

// MaxByzantineLinf is the largest t tolerated by ProtocolBV4/ProtocolBV2 in
// L∞ (Theorem 1): the largest integer below r(2r+1)/2.
func MaxByzantineLinf(r int) int { return bounds.MaxByzantineLinf(r) }

// MinImpossibleByzantineLinf is ⌈r(2r+1)/2⌉, the smallest Byzantine t at
// which reliable broadcast is impossible in L∞ (Koo 2004).
func MinImpossibleByzantineLinf(r int) int { return bounds.MinImpossibleByzantineLinf(r) }

// MaxCrashLinf is r(2r+1)−1, the largest crash-stop t tolerable in L∞
// (Theorem 5).
func MaxCrashLinf(r int) int { return bounds.MaxCrashLinf(r) }

// MinImpossibleCrashLinf is r(2r+1), the crash-stop impossibility bound
// (Theorem 4).
func MinImpossibleCrashLinf(r int) int { return bounds.MinImpossibleCrashLinf(r) }

// MaxCPALinf is ⌊2r²/3⌋, the simple protocol's bound (Theorem 6).
func MaxCPALinf(r int) int { return bounds.MaxCPALinf(r) }

// KooCPALinf is Koo's earlier bound for the simple protocol in L∞, which
// Theorem 6 dominates asymptotically.
func KooCPALinf(r int) int { return bounds.KooCPALinf(r) }

// ApproxByzantineL2 is the paper's informal L2 achievability value
// ⌊0.23πr²⌋ (§VIII).
func ApproxByzantineL2(r int) int { return bounds.ApproxByzantineL2(r) }

// ApproxImpossibleByzantineL2 is the informal L2 impossibility value
// ⌈0.3πr²⌉ (§VIII).
func ApproxImpossibleByzantineL2(r int) int { return bounds.ApproxImpossibleByzantineL2(r) }

// ApproxCrashL2 is the informal L2 crash-stop achievability value ⌊0.46πr²⌋.
func ApproxCrashL2(r int) int { return bounds.ApproxCrashL2(r) }

// ApproxImpossibleCrashL2 is the informal L2 crash-stop impossibility value
// ⌈0.6πr²⌉.
func ApproxImpossibleCrashL2(r int) int { return bounds.ApproxImpossibleCrashL2(r) }

// NeighborhoodSize returns the closed-neighborhood population for the metric
// and radius — the denominator of the paper's "fraction of a neighborhood"
// statements.
func NeighborhoodSize(m Metric, r int) (int, error) {
	switch m {
	case MetricLinf:
		return grid.Linf.ClosedBallSize(r), nil
	case MetricL2:
		return grid.L2.ClosedBallSize(r), nil
	default:
		return 0, fmt.Errorf("rbcast: invalid metric %d", int(m))
	}
}
