package rbcast

import (
	"strings"
	"testing"
)

// rggConfig is a minimal valid rgg configuration.
func rggConfig() Config {
	return Config{Topology: TopologyRGG, Nodes: 64, RGGRadius: 0.22, TopologySeed: 1, Protocol: ProtocolFlood, Value: 1}
}

// customConfig is a minimal valid custom-graph configuration (a 4-cycle).
func customConfig() Config {
	return Config{
		Topology: TopologyCustom,
		Graph:    &GraphSpec{Nodes: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
		Protocol: ProtocolFlood,
		Value:    1,
	}
}

// TestValidateTopologyRejectsFamilyMismatches pins the cross-family field
// discipline: a Config must never silently ignore fields that belong to a
// different family, and every rejection must name the families involved.
func TestValidateTopologyRejectsFamilyMismatches(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		base    func() Config
		needles []string
	}{
		{"torus rejects Nodes", func(c *Config) { c.Nodes = 8 },
			func() Config { return Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1} },
			[]string{"Nodes", "rgg"}},
		{"torus rejects RGGRadius", func(c *Config) { c.RGGRadius = 0.2 },
			func() Config { return Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1} },
			[]string{"RGGRadius"}},
		{"torus rejects TopologySeed", func(c *Config) { c.TopologySeed = 3 },
			func() Config { return Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1} },
			[]string{"TopologySeed"}},
		{"torus rejects Graph", func(c *Config) { c.Graph = &GraphSpec{Nodes: 2, Edges: [][2]int{{0, 1}}} },
			func() Config { return Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1} },
			[]string{"Graph", "custom"}},
		{"torus rejects Source", func(c *Config) { c.Source = 3 },
			func() Config { return Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1} },
			[]string{"Source"}},
		{"rgg rejects Width", func(c *Config) { c.Width = 10 }, rggConfig, []string{"Width", "torus"}},
		{"rgg rejects Height", func(c *Config) { c.Height = 10 }, rggConfig, []string{"Height", "torus"}},
		{"rgg rejects Radius", func(c *Config) { c.Radius = 1 }, rggConfig, []string{"Radius", "torus"}},
		{"rgg rejects Metric", func(c *Config) { c.Metric = MetricL2 }, rggConfig, []string{"Metric", "torus"}},
		{"rgg rejects SourceX", func(c *Config) { c.SourceX = 1 }, rggConfig, []string{"Source"}},
		{"rgg rejects Graph", func(c *Config) { c.Graph = &GraphSpec{Nodes: 2, Edges: [][2]int{{0, 1}}} },
			rggConfig, []string{"Graph", "custom"}},
		{"rgg needs Nodes", func(c *Config) { c.Nodes = 0 }, rggConfig, []string{"Nodes"}},
		{"rgg needs positive radius", func(c *Config) { c.RGGRadius = 0 }, rggConfig, []string{"RGGRadius"}},
		{"rgg caps radius at 1", func(c *Config) { c.RGGRadius = 1.5 }, rggConfig, []string{"RGGRadius"}},
		{"custom rejects Width", func(c *Config) { c.Width = 10 }, customConfig, []string{"Width", "torus"}},
		{"custom rejects rgg fields", func(c *Config) { c.Nodes = 8 }, customConfig, []string{"rgg"}},
		{"custom needs Graph", func(c *Config) { c.Graph = nil }, customConfig, []string{"Graph"}},
		{"bv4 needs torus", func(c *Config) { c.Protocol = ProtocolBV4; c.T = 1 }, rggConfig, []string{"bv4", "torus"}},
		{"bv2 needs torus", func(c *Config) { c.Protocol = ProtocolBV2; c.T = 1 }, customConfig, []string{"bv2", "torus"}},
		{"exact evidence needs torus", func(c *Config) { c.ExactEvidence = true }, rggConfig, []string{"ExactEvidence"}},
		{"invalid family", func(c *Config) { c.Topology = 9 }, rggConfig, []string{"topology"}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cfg := tt.base()
			tt.mutate(&cfg)
			err := cfg.validate()
			if err == nil {
				t.Fatal("mismatched config validated")
			}
			for _, needle := range tt.needles {
				if !strings.Contains(err.Error(), needle) {
					t.Errorf("error %q does not mention %q", err, needle)
				}
			}
		})
	}
}

// TestValidateTopologyAcceptsEachFamily checks the minimal valid shape of
// every family, including the zero-value torus alias.
func TestValidateTopologyAcceptsEachFamily(t *testing.T) {
	zero := Config{Width: 10, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	if err := zero.validate(); err != nil {
		t.Errorf("zero-topology torus config: %v", err)
	}
	explicit := zero
	explicit.Topology = TopologyTorus
	if err := explicit.validate(); err != nil {
		t.Errorf("explicit torus config: %v", err)
	}
	if err := rggConfig().validate(); err != nil {
		t.Errorf("rgg config: %v", err)
	}
	if err := customConfig().validate(); err != nil {
		t.Errorf("custom config: %v", err)
	}
}

// TestNonTorusSourceResolution pins Source handling off the torus: in-range
// sources resolve to the node id, out-of-range ones fail at run time with a
// ranged message.
func TestNonTorusSourceResolution(t *testing.T) {
	cfg := customConfig()
	cfg.Source = 2
	res, err := Run(cfg, FaultPlan{})
	if err != nil {
		t.Fatalf("Run with Source=2: %v", err)
	}
	if res.Honest != 4 || !res.Safe() {
		t.Errorf("4-cycle flood from node 2: honest %d, wrong %d", res.Honest, res.Wrong)
	}
	cfg.Source = 4
	if _, err := Run(cfg, FaultPlan{}); err == nil || !strings.Contains(err.Error(), "range") {
		t.Errorf("out-of-range source error = %v, want a ranged rejection", err)
	}
}

// TestTorusOnlyRejectionFormat pins the one canonical message format shared
// by every torus-only gate — the Config protocol gate, the placement gate,
// and the internal protocol factory — as exact strings: the requesting
// protocol or placement first, then the offending family. A drifted copy
// of the message in any layer fails here by its full text.
func TestTorusOnlyRejectionFormat(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{
			name: "bv4 on rgg",
			run: func() error {
				cfg := rggConfig()
				cfg.Protocol = ProtocolBV4
				cfg.T = 1
				_, err := Run(cfg, FaultPlan{})
				return err
			},
			want: `rbcast: protocol bv4 requires the torus topology, got family "rgg"`,
		},
		{
			name: "bv2 on custom",
			run: func() error {
				cfg := customConfig()
				cfg.Protocol = ProtocolBV2
				cfg.T = 1
				_, err := Run(cfg, FaultPlan{})
				return err
			},
			want: `rbcast: protocol bv2 requires the torus topology, got family "custom"`,
		},
		{
			name: "band placement on rgg",
			run: func() error {
				_, err := Run(rggConfig(), FaultPlan{Placement: PlaceBand, Strategy: StrategySilent})
				return err
			},
			want: `rbcast: placement band requires the torus topology, got family "rgg"`,
		},
		{
			name: "greedy-band placement on custom",
			run: func() error {
				_, err := Run(customConfig(), FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent})
				return err
			},
			want: `rbcast: placement greedy-band requires the torus topology, got family "custom"`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected the torus-only rejection, got nil")
			}
			if err.Error() != tc.want {
				t.Errorf("error drifted from the canonical format:\n got:  %s\n want: %s", err, tc.want)
			}
		})
	}
}

// TestBandPlacementRequiresTorus pins the placement gate: band-style
// placements are torus geometry and must reject other families by name.
func TestBandPlacementRequiresTorus(t *testing.T) {
	cfg := rggConfig()
	for _, p := range []Placement{PlaceBand, PlaceCheckerboardBand, PlaceGreedyBand} {
		_, err := Run(cfg, FaultPlan{Placement: p, Strategy: StrategySilent})
		if err == nil || !strings.Contains(err.Error(), "torus") {
			t.Errorf("placement %s on rgg: error %v must name the torus family", p, err)
		}
	}
	// Family-agnostic placements still work (CPA so T budgets a fault per
	// neighborhood; the flood config's T=0 budget admits none).
	cfg.Protocol = ProtocolCPA
	cfg.T = 1
	cfg.MaxRounds = 64
	res, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySilent, Count: 4, Seed: 11})
	if err != nil {
		t.Fatalf("random-bounded on rgg: %v", err)
	}
	if res.Faults == 0 {
		t.Error("random-bounded placed no faults")
	}
}
