package rbcast_test

// The benchmark harness regenerates every reproduced paper artifact (one
// benchmark per experiment id from DESIGN.md) and additionally measures the
// core machinery: the simulation engines, the evidence packing and the
// explicit path constructions. Run with:
//
//	go test -bench=. -benchmem
import (
	"testing"

	rbcast "repro"
	"repro/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration and fails
// the benchmark if the reproduction stops matching the paper.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			b.Fatalf("%s regression:\n%s", id, rep.Format())
		}
	}
}

func BenchmarkE01TableI(b *testing.B)          { benchExperiment(b, "E01") }
func BenchmarkE02RegionM(b *testing.B)         { benchExperiment(b, "E02") }
func BenchmarkE03RegionR(b *testing.B)         { benchExperiment(b, "E03") }
func BenchmarkE04Decompose(b *testing.B)       { benchExperiment(b, "E04") }
func BenchmarkE05FamiliesU(b *testing.B)       { benchExperiment(b, "E05") }
func BenchmarkE06FamiliesS1(b *testing.B)      { benchExperiment(b, "E06") }
func BenchmarkE07ArbitraryP(b *testing.B)      { benchExperiment(b, "E07") }
func BenchmarkE08Thm1Sim(b *testing.B)         { benchExperiment(b, "E08") }
func BenchmarkE09Thm1Impossible(b *testing.B)  { benchExperiment(b, "E09") }
func BenchmarkE10CrashImpossible(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11CrashPossible(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12CPA(b *testing.B)             { benchExperiment(b, "E12") }
func BenchmarkE13TwoHop(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14L2Families(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15L2Impossible(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16L2Crash(b *testing.B)         { benchExperiment(b, "E16") }
func BenchmarkE17Percolation(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18GraphCond(b *testing.B)       { benchExperiment(b, "E18") }
func BenchmarkE19Safety(b *testing.B)          { benchExperiment(b, "E19") }
func BenchmarkE20Engines(b *testing.B)         { benchExperiment(b, "E20") }
func BenchmarkE21CPATightness(b *testing.B)    { benchExperiment(b, "E21") }
func BenchmarkE22Spoofing(b *testing.B)        { benchExperiment(b, "E22") }
func BenchmarkE23LossyMedium(b *testing.B)     { benchExperiment(b, "E23") }
func BenchmarkE24Analyzer(b *testing.B)        { benchExperiment(b, "E24") }
func BenchmarkE25MsgComplexity(b *testing.B)   { benchExperiment(b, "E25") }
func BenchmarkE26Agreement(b *testing.B)       { benchExperiment(b, "E26") }
func BenchmarkE27QuorumSweep(b *testing.B)     { benchExperiment(b, "E27") }
func BenchmarkE28QuorumAuth(b *testing.B)      { benchExperiment(b, "E28") }

// BenchmarkFloodSequential measures the deterministic engine on a fault-free
// flood: the raw cost of one full broadcast wave.
func BenchmarkFloodSequential(b *testing.B) {
	cfg := rbcast.Config{Width: 32, Height: 32, Radius: 2, Protocol: rbcast.ProtocolFlood, Value: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Run(cfg, rbcast.FaultPlan{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllCorrect() {
			b.Fatal("flood failed")
		}
	}
}

// BenchmarkFloodConcurrent measures the goroutine-per-node engine on the
// same workload.
func BenchmarkFloodConcurrent(b *testing.B) {
	cfg := rbcast.Config{Width: 32, Height: 32, Radius: 2, Protocol: rbcast.ProtocolFlood, Value: 1, Concurrent: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Run(cfg, rbcast.FaultPlan{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllCorrect() {
			b.Fatal("flood failed")
		}
	}
}

// BenchmarkCPAThreshold measures the simple protocol at its Theorem 6 bound.
func BenchmarkCPAThreshold(b *testing.B) {
	r := 2
	cfg := rbcast.Config{
		Width: 24, Height: 14, Radius: r,
		Protocol: rbcast.ProtocolCPA, T: rbcast.MaxCPALinf(r), Value: 1,
	}
	plan := rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Run(cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllCorrect() {
			b.Fatal("CPA failed at its bound")
		}
	}
}

// BenchmarkBV4Threshold measures the full indirect-report protocol at the
// exact threshold with forger adversaries (designated evidence mode).
func BenchmarkBV4Threshold(b *testing.B) {
	r := 1
	cfg := rbcast.Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: rbcast.ProtocolBV4, T: rbcast.MaxByzantineLinf(r), Value: 1,
	}
	plan := rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyForger}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Run(cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllCorrect() {
			b.Fatal("BV4 failed at its threshold")
		}
	}
}

// BenchmarkBV2Threshold measures the two-hop protocol at the threshold.
func BenchmarkBV2Threshold(b *testing.B) {
	r := 1
	cfg := rbcast.Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: rbcast.ProtocolBV2, T: rbcast.MaxByzantineLinf(r), Value: 1,
	}
	plan := rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Run(cfg, plan)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllCorrect() {
			b.Fatal("BV2 failed at its threshold")
		}
	}
}
