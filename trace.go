package rbcast

// Public execution-trace surface: typed events mirroring internal/etrace,
// the commit Certificate, and Explain — the human-readable answer to "why
// did node (x,y) commit v at round k". Encoding lives in encode.go
// (EncodeTrace/DecodeTrace, JSONL).

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/etrace"
	"repro/internal/sim"
	"repro/internal/topology"
)

// EventKind discriminates trace event types.
type EventKind int

const (
	// EventBroadcast is one local broadcast by a node.
	EventBroadcast EventKind = iota + 1
	// EventDelivery is one per-receiver message delivery.
	EventDelivery
	// EventEvidenceEval is one commit-rule evidence evaluation.
	EventEvidenceEval
	// EventCrash marks a node silenced by the crash adversary; the
	// event's Round is its first silent round.
	EventCrash
	// EventSpoof marks a delivery attributed to a claimed identity
	// different from the physical transmitter (§X).
	EventSpoof
	// EventCommit is a first-time decision carrying its Certificate.
	EventCommit
)

// String names the kind ("broadcast", "delivery", "evidence-eval",
// "crash", "spoof", "commit").
func (k EventKind) String() string {
	switch k {
	case EventBroadcast:
		return "broadcast"
	case EventDelivery:
		return "delivery"
	case EventEvidenceEval:
		return "evidence-eval"
	case EventCrash:
		return "crash"
	case EventSpoof:
		return "spoof"
	case EventCommit:
		return "commit"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// CommitRule identifies which commit rule a certificate satisfied.
type CommitRule int

const (
	// RuleSource: the node is the designated source.
	RuleSource CommitRule = iota + 1
	// RuleDirect: the value was heard directly from the source.
	RuleDirect
	// RuleQuorum: BV4's rule — t+1 reliably-determined committers inside
	// one closed neighborhood (§VI).
	RuleQuorum
	// RuleDisjointChains: BV2's rule — t+1 collectively node-disjoint
	// chains inside one closed neighborhood (§VI-B).
	RuleDisjointChains
	// RuleVotes: CPA's rule — t+1 distinct neighbor announcements (§IX).
	RuleVotes
	// RuleFlood: crash-stop flooding — commit on any reception (§VII).
	RuleFlood
	// RuleReadyQuorum: the Bracha family's delivery rule — 2T+1 distinct
	// READY endorsements of one value, optionally backed by the N−T ECHO
	// quorum that triggered the node's own READY.
	RuleReadyQuorum
)

// String names the rule ("source", "direct", "quorum", "disjoint-chains",
// "votes", "flood", "ready-quorum").
func (r CommitRule) String() string {
	switch r {
	case RuleSource:
		return "source"
	case RuleDirect:
		return "direct"
	case RuleQuorum:
		return "quorum"
	case RuleDisjointChains:
		return "disjoint-chains"
	case RuleVotes:
		return "votes"
	case RuleFlood:
		return "flood"
	case RuleReadyQuorum:
		return "ready-quorum"
	default:
		return fmt.Sprintf("CommitRule(%d)", int(r))
	}
}

// TraceMessage is the protocol message carried by a broadcast or delivery
// event, in the paper's vocabulary.
type TraceMessage struct {
	// Kind is the message type: "VALUE", "COMMITTED" or "HEARD".
	Kind string `json:"kind"`
	// Value is the binary broadcast value.
	Value byte `json:"value,omitempty"`
	// Origin is the committing node of a COMMITTED/HEARD message.
	Origin *Node `json:"origin,omitempty"`
	// Path lists a HEARD report's relayers, origin-side first.
	Path []Node `json:"path,omitempty"`
}

// TraceEvidence is one origin's contribution to a certificate.
type TraceEvidence struct {
	// Origin is the committer the evidence is about.
	Origin Node `json:"origin"`
	// Direct reports the origin's COMMITTED was heard on the channel
	// itself (unforgeable — no chains needed).
	Direct bool `json:"direct,omitempty"`
	// Chains lists the confirming relay sequences, origin-side first.
	Chains [][]Node `json:"chains,omitempty"`
}

// Certificate is the recorded justification of one commit. Population
// depends on Rule: Center for the neighborhood rules (quorum,
// disjoint-chains), Voters for direct/votes/flood, Evidence for the
// chain-based rules.
type Certificate struct {
	// Rule is the satisfied commit rule.
	Rule CommitRule `json:"rule"`
	// Value is the committed value.
	Value byte `json:"value,omitempty"`
	// Center is the closed-neighborhood center the rule fired at.
	Center *Node `json:"center,omitempty"`
	// Voters lists the distinct attributed senders the rule counted (for
	// ready-quorum: the READY endorsers).
	Voters []Node `json:"voters,omitempty"`
	// Evidence lists per-origin chain evidence, in origin-id order.
	Evidence []TraceEvidence `json:"evidence,omitempty"`
	// Echoes lists the N−T distinct ECHO endorsers whose quorum triggered
	// the committing node's own READY (ready-quorum only; empty when that
	// READY came from T+1 READY amplification instead).
	Echoes []Node `json:"echoes,omitempty"`
}

// TraceEvent is one recorded execution event. Round and Kind are always
// set; the remaining fields depend on Kind (see EventKind).
type TraceEvent struct {
	// Round is the engine round (crash events: the first silent round).
	Round int `json:"round"`
	// Kind discriminates the event.
	Kind EventKind `json:"kind"`
	// Node is the acting node: transmitter (broadcast), receiver
	// (delivery, spoof), evaluator, crashed node, or committer.
	Node Node `json:"node"`
	// From is the physical transmitter (delivery, spoof).
	From *Node `json:"from,omitempty"`
	// Claimed is the spoofed identity the receiver attributed (spoof).
	Claimed *Node `json:"claimed,omitempty"`
	// Value is the evaluated or committed value (evidence-eval, commit).
	Value byte `json:"value,omitempty"`
	// Origin is the committer an evidence evaluation is about.
	Origin *Node `json:"origin,omitempty"`
	// Message is the carried protocol message (broadcast, delivery).
	Message *TraceMessage `json:"message,omitempty"`
	// Certificate is the commit justification (commit events).
	Certificate *Certificate `json:"certificate,omitempty"`
}

// newTraceEvents converts recorded internal events to the public form,
// labeling nodes through topology.Graph.Label (grid coordinates on the
// torus, (id, 0) elsewhere).
func newTraceEvents(g topology.Graph, events []etrace.Event) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	nodeOf := func(id topology.NodeID) Node {
		x, y := g.Label(id)
		return Node{X: x, Y: y}
	}
	nodePtr := func(id topology.NodeID) *Node {
		n := nodeOf(id)
		return &n
	}
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		pe := TraceEvent{Round: ev.Round, Node: nodeOf(ev.Node)}
		switch ev.Kind {
		case etrace.KindBroadcast, etrace.KindDelivery:
			pe.Kind = EventBroadcast
			if ev.Kind == etrace.KindDelivery {
				pe.Kind = EventDelivery
				pe.From = nodePtr(ev.From)
			}
			msg := &TraceMessage{Kind: sim.Kind(ev.MsgKind).String(), Value: ev.Value}
			if sim.Kind(ev.MsgKind) != sim.KindValue {
				msg.Origin = nodePtr(ev.Origin)
			}
			if len(ev.Path) > 0 {
				msg.Path = make([]Node, len(ev.Path))
				for j, id := range ev.Path {
					msg.Path[j] = nodeOf(id)
				}
			}
			pe.Message = msg
		case etrace.KindEvidenceEval:
			pe.Kind = EventEvidenceEval
			pe.Value = ev.Value
			pe.Origin = nodePtr(ev.Origin)
		case etrace.KindCrash:
			pe.Kind = EventCrash
		case etrace.KindSpoof:
			pe.Kind = EventSpoof
			pe.From = nodePtr(ev.From)
			pe.Claimed = nodePtr(ev.Claimed)
		case etrace.KindCommit:
			pe.Kind = EventCommit
			pe.Value = ev.Value
			pe.Certificate = newCertificate(g, ev.Cert)
		}
		out[i] = pe
	}
	return out
}

// newCertificate converts an internal certificate.
func newCertificate(g topology.Graph, c *etrace.Certificate) *Certificate {
	if c == nil {
		return nil
	}
	nodeOf := func(id topology.NodeID) Node {
		x, y := g.Label(id)
		return Node{X: x, Y: y}
	}
	cert := &Certificate{Rule: CommitRule(c.Rule), Value: c.Value}
	if c.HasCenter {
		n := nodeOf(c.Center)
		cert.Center = &n
	}
	if len(c.Voters) > 0 {
		cert.Voters = make([]Node, len(c.Voters))
		for i, id := range c.Voters {
			cert.Voters[i] = nodeOf(id)
		}
	}
	if len(c.Echoes) > 0 {
		cert.Echoes = make([]Node, len(c.Echoes))
		for i, id := range c.Echoes {
			cert.Echoes[i] = nodeOf(id)
		}
	}
	if len(c.Evidence) > 0 {
		cert.Evidence = make([]TraceEvidence, len(c.Evidence))
		for i, e := range c.Evidence {
			item := TraceEvidence{Origin: nodeOf(e.Origin), Direct: e.Direct}
			if len(e.Chains) > 0 {
				item.Chains = make([][]Node, len(e.Chains))
				for j, relays := range e.Chains {
					chain := make([]Node, len(relays))
					for k, id := range relays {
						chain[k] = nodeOf(id)
					}
					item.Chains[j] = chain
				}
			}
			cert.Evidence[i] = item
		}
	}
	return cert
}

// CommitCertificate returns the certificate the trace recorded for the
// node's commit, or nil when the node never committed or the run was not
// traced (Config.Trace unset).
func (r Result) CommitCertificate(node Node) *Certificate {
	for i := range r.Trace {
		ev := &r.Trace[i]
		if ev.Kind == EventCommit && ev.Node == node {
			return ev.Certificate
		}
	}
	return nil
}

// Explain reconstructs a human-readable justification of the node's
// outcome from the result's trace: which commit rule fired, at what round,
// and the exact evidence (vote set, disjoint chain family, or provenance)
// that satisfied it. The result must come from a traced run (Config.Trace
// set); otherwise Explain returns an error. A node that never committed is
// explained, not an error.
func Explain(res Result, node Node) (string, error) {
	if len(res.Trace) == 0 {
		return "", fmt.Errorf("rbcast: result carries no trace — run with Config.Trace set")
	}
	if _, known := res.Decisions[node]; !known {
		return "", fmt.Errorf("rbcast: node %v is not part of the run's network", node)
	}
	for i := range res.Trace {
		ev := &res.Trace[i]
		if ev.Kind == EventCommit && ev.Node == node {
			return explainCommit(ev), nil
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "node %v never committed", node)
	for _, f := range res.Faulty {
		if f == node {
			b.WriteString(" (it is faulty: adversarial processes do not decide)")
			break
		}
	}
	b.WriteString(".\n")
	return b.String(), nil
}

// explainCommit renders one commit event's justification.
func explainCommit(ev *TraceEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %v committed value %d at round %d", ev.Node, ev.Value, ev.Round)
	cert := ev.Certificate
	if cert == nil {
		b.WriteString(" (no certificate was recorded).\n")
		return b.String()
	}
	fmt.Fprintf(&b, " by rule %q.\n", cert.Rule)
	switch cert.Rule {
	case RuleSource:
		b.WriteString("  It is the designated source: it commits to its own input by fiat.\n")
	case RuleDirect:
		fmt.Fprintf(&b, "  It heard the value directly from the source %v — the base case of the induction.\n",
			voterList(cert.Voters))
	case RuleFlood:
		fmt.Fprintf(&b, "  Crash-stop flooding: it received the value from %v and committed on first reception (§VII).\n",
			voterList(cert.Voters))
	case RuleVotes:
		fmt.Fprintf(&b, "  %d distinct neighbors announced value %d — a t+1 vote quorum (§IX):\n",
			len(cert.Voters), cert.Value)
		for _, v := range cert.Voters {
			fmt.Fprintf(&b, "    voter %v\n", v)
		}
	case RuleQuorum:
		fmt.Fprintf(&b, "  %d reliably-determined committers of value %d lie inside the closed neighborhood centered at %v (§VI):\n",
			len(cert.Evidence), cert.Value, centerName(cert.Center))
		writeEvidence(&b, cert.Evidence)
	case RuleDisjointChains:
		fmt.Fprintf(&b, "  %d collectively node-disjoint report chains for value %d lie inside the closed neighborhood centered at %v (§VI-B):\n",
			len(cert.Evidence), cert.Value, centerName(cert.Center))
		writeEvidence(&b, cert.Evidence)
	case RuleReadyQuorum:
		fmt.Fprintf(&b, "  %d distinct nodes announced READY for value %d — a 2f+1 delivery quorum (Bracha):\n",
			len(cert.Voters), cert.Value)
		for _, v := range cert.Voters {
			fmt.Fprintf(&b, "    ready %v\n", v)
		}
		if len(cert.Echoes) > 0 {
			fmt.Fprintf(&b, "  its own READY was triggered by an N−f ECHO quorum of %d distinct endorsers:\n",
				len(cert.Echoes))
			for _, e := range cert.Echoes {
				fmt.Fprintf(&b, "    echo %v\n", e)
			}
		} else {
			b.WriteString("  its own READY (if any) came from f+1 READY amplification, not an ECHO quorum.\n")
		}
	default:
		b.WriteString("  (unknown rule.)\n")
	}
	return b.String()
}

// writeEvidence renders per-origin evidence lines.
func writeEvidence(b *strings.Builder, evs []TraceEvidence) {
	for _, e := range evs {
		if e.Direct {
			fmt.Fprintf(b, "    committer %v: COMMITTED heard directly (unforgeable)\n", e.Origin)
			continue
		}
		fmt.Fprintf(b, "    committer %v: %d confirmed disjoint chains\n", e.Origin, len(e.Chains))
		for _, chain := range e.Chains {
			parts := make([]string, len(chain))
			for i, n := range chain {
				parts[i] = n.String()
			}
			fmt.Fprintf(b, "      via %s\n", strings.Join(parts, " → "))
		}
	}
}

// voterList renders a voter slice compactly.
func voterList(voters []Node) string {
	if len(voters) == 0 {
		return "(unrecorded)"
	}
	parts := make([]string, len(voters))
	for i, v := range voters {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// centerName renders an optional neighborhood center.
func centerName(c *Node) string {
	if c == nil {
		return "(unrecorded)"
	}
	return c.String()
}

// sortTraceCanonical orders events by (Round, Kind, Node, stable record
// order) — the canonical order consumers should use when comparing traces
// from the concurrent engine, whose within-round protocol-event
// interleaving is scheduler-dependent.
func sortTraceCanonical(events []TraceEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node.Y != b.Node.Y {
			return a.Node.Y < b.Node.Y
		}
		return a.Node.X < b.Node.X
	})
}
