// Command experiments regenerates every reproduced paper artifact (Table I,
// Figs 1-19 and all theorem thresholds) and prints the paper-vs-measured
// reports indexed in DESIGN.md. Use -run to select a subset, -list to
// enumerate the available experiment ids, and -workers to fan independent
// experiments across a worker pool (the report order stays deterministic
// regardless of worker count). Reports go to stdout; diagnostics are
// structured log/slog lines on stderr (-log-format text|json).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "experiments run concurrently (<=0 means GOMAXPROCS)")
		logFormat = flag.String("log-format", "text", "diagnostic log handler: text or json")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown log format %q (text, json)\n", *logFormat)
		os.Exit(1)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}

	reports, err := experiments.RunMany(ids, *workers)
	failures := 0
	for _, rep := range reports {
		fmt.Println(rep.Format())
		if !rep.Pass {
			failures++
		}
	}
	if err != nil {
		logger.Error("experiments failed", "err", err)
		os.Exit(1)
	}
	if failures > 0 {
		logger.Error("experiments diverged from the paper's claims", "failures", failures)
		os.Exit(1)
	}
}
