// Command experiments regenerates every reproduced paper artifact (Table I,
// Figs 1-19 and all theorem thresholds) and prints the paper-vs-measured
// reports indexed in DESIGN.md. Use -run to select a subset and -list to
// enumerate the available experiment ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		run  = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}

	failures := 0
	for _, id := range ids {
		rep, err := experiments.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		if !rep.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) did not match the paper's claims\n", failures)
		os.Exit(1)
	}
}
