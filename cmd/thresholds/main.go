// Command thresholds prints the paper's fault-tolerance bounds as a table
// over the transmission radius r: the exact L∞ thresholds (Theorems 1, 4, 5),
// the simple-protocol bounds (Theorem 6 vs Koo's), and the informal L2
// values of §VIII, alongside the closed-neighborhood populations they are
// fractions of.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	maxR := flag.Int("max-r", 10, "largest transmission radius to tabulate")
	flag.Parse()
	if *maxR < 1 {
		fmt.Fprintln(os.Stderr, "thresholds: -max-r must be ≥ 1")
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	fmt.Fprintln(w, "r\t|nbd|L∞\tbyz max\tbyz imp\tcrash max\tcrash imp\tCPA (Thm6)\tCPA (Koo)\t|nbd|L2\tL2 byz\tL2 byz imp\tL2 crash\tL2 crash imp")
	for r := 1; r <= *maxR; r++ {
		nbdLinf, err := rbcast.NeighborhoodSize(rbcast.MetricLinf, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "thresholds:", err)
			os.Exit(1)
		}
		nbdL2, err := rbcast.NeighborhoodSize(rbcast.MetricL2, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "thresholds:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r, nbdLinf,
			rbcast.MaxByzantineLinf(r), rbcast.MinImpossibleByzantineLinf(r),
			rbcast.MaxCrashLinf(r), rbcast.MinImpossibleCrashLinf(r),
			rbcast.MaxCPALinf(r), rbcast.KooCPALinf(r),
			nbdL2,
			rbcast.ApproxByzantineL2(r), rbcast.ApproxImpossibleByzantineL2(r),
			rbcast.ApproxCrashL2(r), rbcast.ApproxImpossibleCrashL2(r),
		)
	}
}
