// Command broadcast-sim runs one reliable-broadcast scenario on a torus
// radio network and prints the outcome, optionally with an ASCII map of the
// per-node decisions ('#' committed correctly, 'X' committed wrongly,
// '.' undecided, 'F' faulty). -frames renders the bordered per-round
// wavefront frames; -trace-out dumps the structured execution trace as
// JSON Lines ("-" for stdout), byte-identical to rbcastd's
// GET /v1/jobs/{id}/trace for the same scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		width    = flag.Int("width", 16, "torus width")
		height   = flag.Int("height", 10, "torus height")
		radius   = flag.Int("radius", 1, "transmission radius r")
		metric   = flag.String("metric", "linf", "distance metric: linf or l2")
		proto    = flag.String("protocol", "bv4", "protocol: flood, cpa, bv4, bv2")
		tBound   = flag.Int("t", -1, "per-neighborhood fault bound (default: protocol's max for r)")
		value    = flag.Int("value", 1, "source value (0 or 1)")
		place    = flag.String("faults", "none", "placement: none, band, checkerboard, greedy, random, percolation")
		strategy = flag.String("strategy", "crash", "fault behaviour: crash, silent, liar, forger, spoofer")
		prob     = flag.Float64("p", 0.2, "percolation failure probability")
		seed     = flag.Int64("seed", 1, "seed for randomized placements")
		conc     = flag.Bool("concurrent", false, "use the goroutine-per-node engine")
		drawMap  = flag.Bool("map", false, "print an ASCII decision map")
		loss     = flag.Float64("loss", 0, "per-receiver transmission loss probability (§II extension)")
		retx     = flag.Int("retx", 1, "blind retransmission count for the lossy medium")
		spoof    = flag.Bool("spoofable", false, "drop the no-address-spoofing assumption (§X what-if)")
		traceRun = flag.Bool("trace", false, "print the commit wavefront round by round (implies -lockstep)")
		frames   = flag.Bool("frames", false, "print bordered per-round wavefront frames (implies -lockstep)")
		traceOut = flag.String("trace-out", "", "write the structured execution trace as JSON Lines to this file (\"-\" = stdout)")
		lockstep = flag.Bool("lockstep", false, "one-hop-per-round delivery (readable round numbers)")
	)
	flag.Parse()

	cfg := rbcast.Config{
		Width: *width, Height: *height, Radius: *radius,
		Value:            byte(*value),
		Concurrent:       *conc,
		LossRate:         *loss,
		Retransmit:       *retx,
		SpoofingPossible: *spoof,
		LockStep:         *lockstep || *traceRun || *frames,
		Trace:            *traceOut != "",
	}
	switch *metric {
	case "linf":
		cfg.Metric = rbcast.MetricLinf
	case "l2":
		cfg.Metric = rbcast.MetricL2
	default:
		fatal("unknown metric %q", *metric)
	}
	switch *proto {
	case "flood":
		cfg.Protocol = rbcast.ProtocolFlood
	case "cpa":
		cfg.Protocol = rbcast.ProtocolCPA
	case "bv4":
		cfg.Protocol = rbcast.ProtocolBV4
	case "bv2":
		cfg.Protocol = rbcast.ProtocolBV2
	default:
		fatal("unknown protocol %q", *proto)
	}
	cfg.T = *tBound
	if cfg.T < 0 {
		switch cfg.Protocol {
		case rbcast.ProtocolCPA:
			cfg.T = rbcast.MaxCPALinf(*radius)
		case rbcast.ProtocolFlood:
			cfg.T = 0
		default:
			cfg.T = rbcast.MaxByzantineLinf(*radius)
		}
	}

	plan := rbcast.FaultPlan{Seed: *seed, Probability: *prob}
	switch *place {
	case "none":
		plan.Placement = rbcast.PlaceNone
	case "band":
		plan.Placement = rbcast.PlaceBand
	case "checkerboard":
		plan.Placement = rbcast.PlaceCheckerboardBand
	case "greedy":
		plan.Placement = rbcast.PlaceGreedyBand
	case "random":
		plan.Placement = rbcast.PlaceRandomBounded
	case "percolation":
		plan.Placement = rbcast.PlacePercolation
	default:
		fatal("unknown placement %q", *place)
	}
	switch *strategy {
	case "crash":
		plan.Strategy = rbcast.StrategyCrash
	case "silent":
		plan.Strategy = rbcast.StrategySilent
	case "liar":
		plan.Strategy = rbcast.StrategyLiar
	case "forger":
		plan.Strategy = rbcast.StrategyForger
	case "spoofer":
		plan.Strategy = rbcast.StrategySpoofer
	default:
		fatal("unknown strategy %q", *strategy)
	}

	res, err := rbcast.Run(cfg, plan)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("protocol=%s %dx%d r=%d t=%d faults=%d (max %d per nbd)\n",
		cfg.Protocol, *width, *height, *radius, cfg.T, res.Faults, res.MaxFaultsPerNbd)
	fmt.Printf("rounds=%d broadcasts=%d deliveries=%d quiesced=%v\n",
		res.Rounds, res.Broadcasts, res.Deliveries, res.Quiesced)
	fmt.Printf("honest=%d correct=%d wrong=%d undecided=%d → reliable broadcast: %v (safe: %v)\n",
		res.Honest, res.Correct, res.Wrong, res.Undecided, res.AllCorrect(), res.Safe())

	if *drawMap {
		fmt.Print(renderRound(cfg, res, -1))
	}
	if *traceRun {
		last := 0
		for _, d := range res.Decisions {
			if d.Decided && d.Round > last {
				last = d.Round
			}
		}
		for round := 0; round <= last; round++ {
			fmt.Printf("round %d:\n%s\n", round, renderRound(cfg, res, round))
		}
	}
	if *frames {
		out, err := renderFrames(cfg, res)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Print(out)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, res.Trace); err != nil {
			fatal("%v", err)
		}
	}
}

// renderFrames draws the internal/trace bordered frame sequence for the
// finished run, reconstructing the engine-level result the renderer wants
// from the public decision map.
func renderFrames(cfg rbcast.Config, res rbcast.Result) (string, error) {
	m := grid.Linf
	if cfg.Metric == rbcast.MetricL2 {
		m = grid.L2
	}
	net := topology.MustNew(grid.Torus{W: cfg.Width, H: cfg.Height}, m, cfg.Radius)
	sr := sim.Result{
		Decided:      make(map[topology.NodeID]byte, len(res.Decisions)),
		DecidedRound: make(map[topology.NodeID]int, len(res.Decisions)),
	}
	for n, d := range res.Decisions {
		if !d.Decided {
			continue
		}
		id := net.IDOf(grid.C(n.X, n.Y))
		sr.Decided[id] = d.Value
		sr.DecidedRound[id] = d.Round
	}
	faulty := make([]topology.NodeID, 0, len(res.Faulty))
	for _, n := range res.Faulty {
		faulty = append(faulty, net.IDOf(grid.C(n.X, n.Y)))
	}
	fs, err := trace.Frames(trace.Config{
		Net:    net,
		Result: sr,
		Source: net.IDOf(grid.C(cfg.SourceX, cfg.SourceY)),
		Value:  cfg.Value,
		Faulty: faulty,
	})
	if err != nil {
		return "", err
	}
	return trace.RenderAll(fs), nil
}

// writeTrace dumps the structured trace as JSON Lines.
func writeTrace(path string, events []rbcast.TraceEvent) error {
	if path == "-" {
		return rbcast.EncodeTrace(os.Stdout, events)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rbcast.EncodeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderRound draws the decision map as of the given round (-1 = final).
func renderRound(cfg rbcast.Config, res rbcast.Result, round int) string {
	faulty := make(map[rbcast.Node]bool, len(res.Faulty))
	for _, n := range res.Faulty {
		faulty[n] = true
	}
	var b strings.Builder
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			n := rbcast.Node{X: x, Y: y}
			d := res.Decisions[n]
			visible := d.Decided && (round < 0 || d.Round <= round)
			switch {
			case faulty[n]:
				b.WriteByte('F')
			case !visible:
				b.WriteByte('.')
			case d.Value == cfg.Value:
				b.WriteByte('#')
			default:
				b.WriteByte('X')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fatal prints an error and exits.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "broadcast-sim: "+format+"\n", args...)
	os.Exit(1)
}
