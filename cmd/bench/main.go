// Command bench runs the canonical scenario matrix (internal/scenarios)
// as Go benchmarks and emits a machine-readable report. It is the
// reproducible performance baseline for the engine hot paths: scenarios
// cover every protocol at, below and above its fault threshold, both
// engines, and the lossy medium.
//
// Modes:
//
//	bench                       # full run → BENCH_3.json
//	bench -smoke                # one run per scenario, golden-hash check only
//	bench -against FILE         # full run, fail on >threshold% alloc regression
//	bench -sweep                # sweep workload: RunSweep vs RunBatch, gated ≥2x
//
// The -smoke mode is wired into `make verify`; scripts/benchdiff.sh wraps
// -against with the committed baseline. Timing (ns_op) is machine-dependent
// and reported for information; the regression gate compares allocs_op,
// which is deterministic for a fixed scenario matrix.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	rbcast "repro"
	"repro/internal/scenarios"
)

// report is the BENCH_*.json schema.
type report struct {
	// Schema identifies the report format.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Scenarios holds one entry per canonical scenario, in matrix order.
	Scenarios []scenarioReport `json:"scenarios"`
}

// scenarioReport is one scenario's measured numbers.
type scenarioReport struct {
	// Name is the canonical scenario name (protocol/variant/geometry).
	Name string `json:"name"`
	// NsOp is wall time per full run (machine-dependent).
	NsOp int64 `json:"ns_op"`
	// AllocsOp is heap allocations per full run.
	AllocsOp int64 `json:"allocs_op"`
	// BytesOp is heap bytes per full run.
	BytesOp int64 `json:"bytes_op"`
	// Rounds is the number of engine rounds the scenario executes.
	Rounds int `json:"rounds"`
	// AllocsPerRound is AllocsOp / max(Rounds, 1).
	AllocsPerRound float64 `json:"allocs_per_round"`
	// AllCorrect reports whether every honest node committed the source
	// value (expected false for above-threshold scenarios).
	AllCorrect bool `json:"all_correct"`
	// Hash is the scenario's result fingerprint (see internal/scenarios).
	Hash string `json:"hash"`
}

func main() {
	out := flag.String("out", "BENCH_3.json", "output path for the JSON report (\"-\" = stdout)")
	smoke := flag.Bool("smoke", false, "run each scenario once and only verify golden hashes")
	golden := flag.String("golden", "testdata/results.golden", "golden hash file for -smoke")
	against := flag.String("against", "", "baseline JSON report to compare allocations against")
	threshold := flag.Float64("threshold", 10, "allowed allocs_op regression vs -against, in percent")
	sweep := flag.Bool("sweep", false, "run the sweep workload: RunSweep vs RunBatch on a crash-round grid")
	minSpeedup := flag.Float64("min-speedup", 2, "minimum node-round (or wall-clock) ratio the sweep workload must achieve")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*golden); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sweep {
		if err := runSweepBench(*minSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	rep, err := runFull()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if *against != "" {
		if err := compare(rep, *against, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runSmoke executes every scenario once and checks its result fingerprint
// against the committed golden file — a fast correctness gate for `make
// verify` that exercises the exact code paths the full benchmark times.
func runSmoke(goldenPath string) error {
	want, err := loadGolden(goldenPath)
	if err != nil {
		return err
	}
	bad := 0
	for _, sc := range scenarios.Matrix() {
		res, err := rbcast.Run(sc.Config, sc.Plan)
		if err != nil {
			return fmt.Errorf("%s: %v", sc.Name, err)
		}
		hash, err := scenarios.ResultHash(res)
		if err != nil {
			return fmt.Errorf("%s: %v", sc.Name, err)
		}
		w, ok := want[sc.Name]
		switch {
		case !ok:
			fmt.Printf("?? %s (not in golden file)\n", sc.Name)
			bad++
		case w != hash:
			fmt.Printf("FAIL %s: hash %s, golden %s\n", sc.Name, hash[:12], w[:12])
			bad++
		default:
			fmt.Printf("ok   %s\n", sc.Name)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d scenario(s) diverge from testdata/results.golden", bad)
	}
	return nil
}

// sweepWorkloads are the grids the -sweep mode measures: crash-round
// sweeps with a dead threshold axis, the shape the incremental engine is
// built for, across both cloneable protocols.
func sweepWorkloads() []struct {
	name string
	spec rbcast.SweepSpec
} {
	crashRounds := make([]int, 24)
	for i := range crashRounds {
		crashRounds[i] = i + 1
	}
	return []struct {
		name string
		spec rbcast.SweepSpec
	}{
		{"flood/40x30", rbcast.SweepSpec{
			Base: rbcast.Job{
				Config: rbcast.Config{Width: 40, Height: 30, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
				Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash},
			},
			Axes: rbcast.SweepAxes{Ts: []int{0, 1, 2}, CrashRounds: crashRounds},
		}},
		{"cpa/32x24", rbcast.SweepSpec{
			Base: rbcast.Job{
				Config: rbcast.Config{Width: 32, Height: 24, Radius: 2, Protocol: rbcast.ProtocolCPA, T: 2, Value: 1},
				Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyCrash},
			},
			Axes: rbcast.SweepAxes{Seeds: []int64{1, 2}, CrashRounds: crashRounds[:16]},
		}},
	}
}

// runSweepBench measures the incremental sweep engine against scalar
// RunBatch on the same grids: per-element results must match exactly, and
// the simulated node-round reduction (or, failing that, wall clock) must
// reach minSpeedup. This is the performance gate for the sweep engine.
func runSweepBench(minSpeedup float64) error {
	for _, wl := range sweepWorkloads() {
		jobs, err := wl.spec.Elements()
		if err != nil {
			return fmt.Errorf("%s: %v", wl.name, err)
		}
		batchStart := time.Now()
		batch := rbcast.RunBatch(jobs, rbcast.BatchOptions{})
		batchWall := time.Since(batchStart)
		sweepStart := time.Now()
		swept, stats := rbcast.RunSweepJobs(jobs, rbcast.BatchOptions{})
		sweepWall := time.Since(sweepStart)
		for i := range jobs {
			if batch[i].Err != nil || swept[i].Err != nil {
				return fmt.Errorf("%s[%d]: batch err %v, sweep err %v", wl.name, i, batch[i].Err, swept[i].Err)
			}
			bh, err := scenarios.ResultHash(batch[i].Result)
			if err != nil {
				return fmt.Errorf("%s[%d]: %v", wl.name, i, err)
			}
			sh, err := scenarios.ResultHash(swept[i].Result)
			if err != nil {
				return fmt.Errorf("%s[%d]: %v", wl.name, i, err)
			}
			if bh != sh {
				return fmt.Errorf("%s[%d]: sweep result %s diverges from scalar %s", wl.name, i, sh[:12], bh[:12])
			}
		}
		nodeRatio := float64(stats.ScalarNodeRounds) / float64(max(stats.NodeRounds, 1))
		wallRatio := float64(batchWall) / float64(max(int64(sweepWall), 1))
		fmt.Printf("%-14s %3d elements  %4d sims  %3d forks  node-rounds %d vs %d (%.2fx)  wall %v vs %v (%.2fx)\n",
			wl.name, stats.Elements, stats.Simulations, stats.Forks,
			stats.NodeRounds, stats.ScalarNodeRounds, nodeRatio,
			sweepWall.Round(time.Millisecond), batchWall.Round(time.Millisecond), wallRatio)
		if nodeRatio < minSpeedup && wallRatio < minSpeedup {
			return fmt.Errorf("%s: node-round ratio %.2fx and wall ratio %.2fx both below the %.1fx gate",
				wl.name, nodeRatio, wallRatio, minSpeedup)
		}
	}
	return nil
}

// runFull benchmarks every scenario and assembles the report.
func runFull() (report, error) {
	rep := report{Schema: "rbcast-bench/1", Go: runtime.Version()}
	for _, sc := range scenarios.Matrix() {
		sc := sc
		// One untimed run for the scenario's semantic columns.
		res, err := rbcast.Run(sc.Config, sc.Plan)
		if err != nil {
			return rep, fmt.Errorf("%s: %v", sc.Name, err)
		}
		hash, err := scenarios.ResultHash(res)
		if err != nil {
			return rep, fmt.Errorf("%s: %v", sc.Name, err)
		}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rbcast.Run(sc.Config, sc.Plan); err != nil {
					b.Fatal(err)
				}
			}
		})
		rounds := res.Rounds
		if rounds < 1 {
			rounds = 1
		}
		sr := scenarioReport{
			Name:           sc.Name,
			NsOp:           br.NsPerOp(),
			AllocsOp:       br.AllocsPerOp(),
			BytesOp:        br.AllocedBytesPerOp(),
			Rounds:         res.Rounds,
			AllocsPerRound: float64(br.AllocsPerOp()) / float64(rounds),
			AllCorrect:     res.AllCorrect(),
			Hash:           hash,
		}
		rep.Scenarios = append(rep.Scenarios, sr)
		fmt.Fprintf(os.Stderr, "%-24s %10d ns/op %8d allocs/op %10d B/op\n",
			sc.Name, sr.NsOp, sr.AllocsOp, sr.BytesOp)
	}
	return rep, nil
}

// writeReport marshals the report to the output path.
func writeReport(rep report, out string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// compare fails when any scenario's allocations regress beyond the
// threshold relative to the baseline report. Scenarios added since the
// baseline are skipped (with a note); removed ones fail, since silently
// dropping coverage would hide regressions.
func compare(rep report, baselinePath string, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %v", baselinePath, err)
	}
	current := make(map[string]scenarioReport, len(rep.Scenarios))
	for _, sr := range rep.Scenarios {
		current[sr.Name] = sr
	}
	regressed := 0
	for _, b := range base.Scenarios {
		sr, ok := current[b.Name]
		if !ok {
			fmt.Printf("MISSING %s: in baseline but not in this run\n", b.Name)
			regressed++
			continue
		}
		if b.AllocsOp <= 0 {
			continue
		}
		pct := 100 * float64(sr.AllocsOp-b.AllocsOp) / float64(b.AllocsOp)
		if pct > threshold {
			fmt.Printf("REGRESS %s: %d → %d allocs/op (%+.1f%% > %.0f%%)\n",
				b.Name, b.AllocsOp, sr.AllocsOp, pct, threshold)
			regressed++
		} else {
			fmt.Printf("ok      %-24s %d → %d allocs/op (%+.1f%%)\n",
				b.Name, b.AllocsOp, sr.AllocsOp, pct)
		}
	}
	for _, sr := range rep.Scenarios {
		found := false
		for _, b := range base.Scenarios {
			if b.Name == sr.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("new     %s (not in baseline, not gated)\n", sr.Name)
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d scenario(s) regressed beyond %.0f%% vs %s", regressed, threshold, baselinePath)
	}
	return nil
}

// loadGolden parses a "name<TAB>hash" golden file.
func loadGolden(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		name, hash, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("%s: malformed line %q", path, line)
		}
		out[name] = hash
	}
	return out, sc.Err()
}
