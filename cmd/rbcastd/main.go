// Command rbcastd is the long-running scenario-serving daemon: an
// HTTP/JSON front-end over the rbcast library with a fingerprint-keyed
// result cache, single-flight deduplication of identical scenarios,
// asynchronous batch jobs on the RunBatch worker pool, and Prometheus
// observability.
//
//	rbcastd -addr :8080 -cache 1024 -workers 0 \
//	        -queue-depth 1024 -max-inflight 8 -job-timeout 30s
//
// The daemon bounds the damage any one request or job can do: the batch
// queue is bounded (-queue-depth; full submissions shed with 429 +
// Retry-After), concurrent execution is bounded (-max-inflight; saturated
// sync runs shed with 429 while accepted batch jobs wait), each scenario's
// wall clock is bounded (-job-timeout; an over-budget run fails
// individually with a partial result), and a panicking scenario fails its
// own job instead of the process.
//
// Endpoints: POST /v1/run, POST /v1/batch, POST /v1/sweep,
// GET /v1/jobs/{id}, GET /v1/jobs/{id}/trace, GET /v1/jobs/{id}/events,
// GET /healthz, GET /metrics, GET /debug/requests. Pass -addr host:0
// to bind an ephemeral port; the actual address is logged on startup
// (msg="rbcastd listening" addr=...), which is what scripts/serve_smoke.sh
// parses. Logs are structured (log/slog); -log-format selects text or
// JSON, -log-level the threshold. -ops-addr optionally serves
// net/http/pprof (plus /metrics, /healthz and /debug/requests) on a
// separate operations listener so profiling never shares a port with the
// public API.
//
// The flight recorder (-flight-recorder, default 256 timelines; 0
// disables) retains per-request span timelines — cache outcome, queue and
// slot waits, engine execution, fork structure, response encoding —
// served by GET /debug/requests and folded into the
// rbcastd_phase_seconds summaries on /metrics. -slow-request logs one
// WARN line with the per-phase breakdown for any request at or over the
// threshold. On SIGINT/SIGTERM the daemon stops accepting work, drains
// in-flight requests and queued batch jobs, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// newLogger builds the process logger from the -log-format/-log-level
// flags. Unknown values are errors: a daemon silently logging at the wrong
// level is worse than one that refuses to start.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text, json)", format)
	}
}

// serveOps serves the operations listener: pprof under /debug/pprof/ plus
// the daemon's /metrics and /healthz, so an operator (or a scraper) never
// has to touch the public port.
func serveOps(addr string, srv *server.Server, logger *slog.Logger) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", srv)
	mux.Handle("/healthz", srv)
	mux.Handle("/debug/requests", srv)
	ops := &http.Server{Handler: mux}
	go func() {
		if err := ops.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("ops serve", "err", err)
		}
	}()
	logger.Info("rbcastd ops listening", "addr", ln.Addr())
	return ops, ln, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:0 binds an ephemeral port)")
		opsAddr     = flag.String("ops-addr", "", "optional operations listener serving net/http/pprof, /metrics and /healthz")
		cacheSize   = flag.Int("cache", 1024, "result-cache capacity in entries")
		workers     = flag.Int("workers", 0, "worker pool size per batch job (<=0 means GOMAXPROCS)")
		maxJobs     = flag.Int("max-jobs", 4096, "retained batch jobs before the oldest finished are dropped")
		queueDepth  = flag.Int("queue-depth", 1024, "batch jobs accepted but unfinished before submissions shed with 429")
		maxInflight = flag.Int("max-inflight", 0, "concurrently executing jobs before sync runs shed with 429 (<=0 means unbounded)")
		jobTimeout  = flag.Duration("job-timeout", 0, "wall-clock bound per scenario execution; over it a run fails with a partial result (0 disables)")
		flightRec   = flag.Int("flight-recorder", 256, "request timelines retained for GET /debug/requests (0 disables span tracing)")
		slowReq     = flag.Duration("slow-request", 0, "log a WARN line with the per-phase span breakdown for requests at or over this duration (0 disables)")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight work")
		logFormat   = flag.String("log-format", "text", "log handler: text or json")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn or error")

		self        = flag.String("self", "", "this daemon's advertised base URL in cluster mode (must appear in -peers)")
		peers       = flag.String("peers", "", "comma-separated base URLs of every fleet member, including this one; enables cluster mode")
		peerTimeout = flag.Duration("peer-timeout", 0, "budget per sibling cache probe or health check (0 means the 2s default)")
		redirect    = flag.Bool("redirect", false, "answer non-owned runs with a 307 redirect to the owner instead of proxying")
		peerHealth  = flag.Duration("peer-health-interval", 5*time.Second, "cadence of the active sibling /healthz sweep behind rbcastd_peer_up (0 disables)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbcastd: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimRight(p, "/"))
			}
		}
		if err := server.ValidateCluster(*self, peerList); err != nil {
			fatal("cluster configuration", err)
		}
	} else if *self != "" {
		fatal("cluster configuration", errors.New("-self set without -peers"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	srv := server.New(server.Options{
		CacheSize:      *cacheSize,
		Workers:        *workers,
		MaxJobs:        *maxJobs,
		QueueDepth:     *queueDepth,
		MaxInflight:    *maxInflight,
		JobTimeout:     *jobTimeout,
		FlightRecorder: *flightRec,
		SlowRequest:    *slowReq,
		Logger:         logger,
		Self:           *self,
		Peers:          peerList,
		PeerTimeout:    *peerTimeout,
		Redirect:       *redirect,
	})
	hs := &http.Server{Handler: srv}

	logger.Info("rbcastd listening", "addr", ln.Addr())
	if srv.Clustered() {
		logger.Info("rbcastd cluster mode", "self", *self, "fleet_size", len(peerList), "redirect", *redirect)
	}
	var ops *http.Server
	if *opsAddr != "" {
		var err error
		ops, _, err = serveOps(*opsAddr, srv, logger)
		if err != nil {
			fatal("ops listen", err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if srv.Clustered() && *peerHealth > 0 {
		go srv.PeerHealthLoop(ctx, *peerHealth)
	}
	select {
	case err := <-errc:
		fatal("serve", err)
	case <-ctx.Done():
	}
	stop()

	logger.Info("rbcastd shutting down", "drain_timeout", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if ops != nil {
		if err := ops.Shutdown(shutdownCtx); err != nil {
			logger.Warn("ops shutdown", "err", err)
		}
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		fatal("drain", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", err)
	}
	logger.Info("rbcastd: drained, bye")
}
