// Command rbcastd is the long-running scenario-serving daemon: an
// HTTP/JSON front-end over the rbcast library with a fingerprint-keyed
// result cache, single-flight deduplication of identical scenarios,
// asynchronous batch jobs on the RunBatch worker pool, and Prometheus
// observability.
//
//	rbcastd -addr :8080 -cache 1024 -workers 0
//
// Endpoints: POST /v1/run, POST /v1/batch, GET /v1/jobs/{id},
// GET /healthz, GET /metrics. Pass -addr host:0 to bind an ephemeral port;
// the actual address is logged on startup ("rbcastd listening on ..."),
// which is what scripts/serve_smoke.sh parses. On SIGINT/SIGTERM the
// daemon stops accepting work, drains in-flight requests and queued batch
// jobs, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:0 binds an ephemeral port)")
		cacheSize = flag.Int("cache", 1024, "result-cache capacity in entries")
		workers   = flag.Int("workers", 0, "worker pool size per batch job (<=0 means GOMAXPROCS)")
		maxJobs   = flag.Int("max-jobs", 4096, "retained batch jobs before the oldest finished are dropped")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight work")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("rbcastd: %v", err)
	}
	srv := server.New(server.Options{
		CacheSize: *cacheSize,
		Workers:   *workers,
		MaxJobs:   *maxJobs,
	})
	hs := &http.Server{Handler: srv}

	log.Printf("rbcastd listening on %s", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("rbcastd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	log.Printf("rbcastd: shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("rbcastd: http shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		log.Fatalf("rbcastd: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rbcastd: serve: %v", err)
	}
	log.Print("rbcastd: drained, bye")
}
