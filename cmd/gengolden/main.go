// Command gengolden regenerates testdata/results.golden: one line per
// canonical scenario (internal/scenarios), "name<TAB>sha256-of-result".
//
// The committed file was generated from the pre-optimization seed engines
// (PR 3), so the root-package equivalence test proves the optimized hot
// paths still produce byte-identical Results. Regenerate ONLY when a
// deliberate semantic change to the engines or protocols is intended, and
// say so in the commit message:
//
//	go run ./cmd/gengolden > testdata/results.golden
package main

import (
	"fmt"
	"log"
	"os"

	rbcast "repro"
	"repro/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	for _, sc := range scenarios.Matrix() {
		res, err := rbcast.Run(sc.Config, sc.Plan)
		if err != nil {
			log.Fatalf("gengolden: %s: %v", sc.Name, err)
		}
		hash, err := scenarios.ResultHash(res)
		if err != nil {
			log.Fatalf("gengolden: %s: %v", sc.Name, err)
		}
		fmt.Fprintf(os.Stdout, "%s\t%s\n", sc.Name, hash)
	}
}
