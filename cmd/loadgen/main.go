// Command loadgen drives rbcastd to saturation through the client package
// and asserts the daemon's overload behavior: shed, never stall. It is the
// executable half of scripts/load_smoke.sh, which boots a deliberately tiny
// daemon (-queue-depth 1 -max-inflight 1 -job-timeout 250ms) and points
// loadgen at it.
//
//	loadgen -addr http://127.0.0.1:PORT [-timeout 2m]
//
// Phases, each of which fails the process on a contract violation:
//
//  1. busy shed — while a slow synchronous run holds the daemon's single
//     execution slot, un-retried probes must come back 429 with a
//     Retry-After hint, and a retrying client must ride the backoff to an
//     eventual 200. Every request gets a definite answer.
//  2. queue backpressure — with a slow batch occupying the depth-1 queue,
//     a second submission must shed with 429 + Retry-After, and a
//     retrying client must get it accepted once the queue drains.
//  3. deadline isolation — the slow batch element must fail individually
//     with a partial result marked by the job deadline while its sibling
//     elements complete, and the daemon must stay healthy throughout.
//
// It exits 0 only if every phase held and the final /metrics shows the
// sheds and deadline stops the phases provoked — and no recovered panics.
//
// With -progress, loadgen instead runs the observability phase alone
// against a normally-provisioned daemon (scripts/obs_smoke.sh boots one
// with the flight recorder armed): it sweeps, watches a batch job live
// through GET /v1/jobs/{id}/events (client.WatchJob), prints the progress
// report, and asserts the flight recorder (GET /debug/requests) attributed
// the sweep's time to a nonzero engine phase with child spans summing to
// ≈ the request duration.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	rbcast "repro"
	"repro/client"
)

// slowScenario needs well over the smoke daemon's 250ms job deadline
// (~1.8s at tip on the dev container), so the deadline reliably cuts it
// short and it holds the execution slot long enough to provoke sheds.
func slowScenario() rbcast.Job {
	return rbcast.Job{Config: rbcast.Config{
		Width: 140, Height: 140, Radius: 1, Protocol: rbcast.ProtocolBV4, Value: 1,
	}}
}

// tinyScenario finishes in single-digit milliseconds. Distinct n values
// give distinct fingerprints so the result cache and single-flight layer
// cannot short-circuit the requests this tool needs the daemon to execute.
func tinyScenario(n int) rbcast.Job {
	return rbcast.Job{
		Config: rbcast.Config{Width: 16, Height: 10 + n, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
	}
}

func main() {
	var (
		addr     = flag.String("addr", "", "rbcastd base URL, e.g. http://127.0.0.1:8080 (required unless -fleet is set)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "overall wall-clock budget for the whole run")
		progress = flag.Bool("progress", false, "run only the observability phase: live job progress (/v1/jobs/{id}/events) and flight-recorder attribution (/debug/requests)")

		fleet       = flag.String("fleet", "", "comma-separated fleet member URLs; enables the cluster phases and fleet-routed -throughput")
		phase       = flag.String("phase", "", "cluster phase to run against -fleet: seed, failover, or warm")
		target      = flag.String("target", "", "the restarted member's URL for -phase warm")
		throughput  = flag.Bool("throughput", false, "measure sustained run throughput against -addr (one node) or -fleet (cluster-routed)")
		duration    = flag.Duration("duration", 5*time.Second, "measurement window for -throughput")
		concurrency = flag.Int("concurrency", 8, "concurrent workers for -throughput")
	)
	flag.Parse()
	if *addr == "" && *fleet == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr or -fleet is required")
		os.Exit(2)
	}
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var cc *client.Cluster
	if *fleet != "" {
		var members []string
		for _, m := range strings.Split(*fleet, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, strings.TrimRight(m, "/"))
			}
		}
		var err error
		if cc, err = client.NewCluster(members, client.Options{MaxRetries: 8}); err != nil {
			log.Fatalf("FAIL: fleet: %v", err)
		}
	}

	if *phase != "" {
		if cc == nil {
			log.Fatal("FAIL: -phase needs -fleet")
		}
		switch *phase {
		case "seed":
			phaseClusterSeed(ctx, cc)
		case "failover":
			phaseClusterFailover(ctx, cc)
		case "warm":
			phaseClusterWarm(ctx, cc, strings.TrimRight(*target, "/"))
		default:
			log.Fatalf("FAIL: unknown -phase %q (seed, failover, warm)", *phase)
		}
		log.Printf("ok: cluster phase %s held", *phase)
		return
	}

	if *throughput {
		run := func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (client.RunResult, error) {
			return client.New(*addr, client.Options{MaxRetries: 8}).Run(ctx, cfg, plan)
		}
		if cc != nil {
			run = cc.Run
		} else {
			single := client.New(*addr, client.Options{MaxRetries: 8})
			run = single.Run
		}
		phaseThroughput(ctx, run, *duration, *concurrency)
		return
	}

	// noRetry sees the daemon's raw shedding; retrying rides it out. The
	// generous retry budget covers the ~2s the slow scenario occupies the
	// daemon plus its 1-second Retry-After hints.
	noRetry := client.New(*addr, client.Options{MaxRetries: -1})
	retrying := client.New(*addr, client.Options{MaxRetries: 8})

	if err := noRetry.Health(ctx); err != nil {
		log.Fatalf("FAIL: daemon not healthy before load: %v", err)
	}

	if *progress {
		phaseObservability(ctx, retrying)
		log.Print("ok: live progress streamed to terminal state and the flight recorder attributed the time")
		return
	}

	phaseBusyShed(ctx, noRetry, retrying)
	phaseQueueBackpressure(ctx, noRetry, retrying)
	phaseSweep(ctx, retrying)
	phaseFinalState(ctx, noRetry)

	log.Print("ok: daemon shed under saturation, isolated the over-deadline job, and stayed healthy")
}

// mediumScenario takes tens of milliseconds — long enough that a batch of
// them is still running when the events stream connects, short enough to
// keep the smoke fast. Distinct n values give distinct fingerprints.
func mediumScenario(n int) rbcast.Job {
	return rbcast.Job{
		Config: rbcast.Config{Width: 48, Height: 24 + n, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
	}
}

// phaseObservability exercises the flight-recorder stack end to end: a
// sweep populates /debug/requests with engine-phase spans, a watched batch
// streams live progress events to a terminal state, and the recorded
// timeline's child spans must account for the request's duration.
func phaseObservability(ctx context.Context, c *client.Client) {
	// A fresh sweep (uncached fingerprints) forces real engine work into
	// the flight recorder.
	base := rbcast.Job{
		Config: rbcast.Config{Width: 16, Height: 13, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash},
	}
	axes := rbcast.SweepAxes{Ts: []int{0, 1}, CrashRounds: []int{1, 2, 3, 4}}
	sw, err := c.Sweep(ctx, base, axes, 0)
	if err != nil {
		log.Fatalf("FAIL: sweep: %v", err)
	}
	for i, el := range sw.Elements {
		if el.Error != "" || el.Result == nil {
			log.Fatalf("FAIL: sweep element %d did not complete: %+v", i, el)
		}
	}
	log.Printf("sweep: %d elements complete (%d simulated, %d shared)",
		len(sw.Elements), sw.Stats.Simulations, sw.Stats.SharedResults)

	// Live progress: watch a batch with a duplicate element (for a dedup
	// hit) from submission to the terminal event.
	jobs := make([]rbcast.Job, 0, 14)
	for i := 0; i < 12; i++ {
		jobs = append(jobs, mediumScenario(i))
	}
	jobs = append(jobs, mediumScenario(0), mediumScenario(1)) // in-batch duplicates
	ack, err := c.Submit(ctx, jobs, 1)
	if err != nil {
		log.Fatalf("FAIL: batch submit: %v", err)
	}
	var events []client.ProgressEvent
	st, err := c.WatchJob(ctx, ack.ID, func(ev client.ProgressEvent) {
		events = append(events, ev)
		log.Printf("progress %s: %d/%d jobs, %d node-rounds, %d dedup hits",
			ev.State, ev.JobsDone, ev.JobsTotal, ev.NodeRounds, ev.DedupHits)
	})
	if err != nil {
		log.Fatalf("FAIL: watching job %s: %v", ack.ID, err)
	}
	if !st.Done() || len(st.Results) != len(jobs) {
		log.Fatalf("FAIL: watched job ended %q with %d results, want done/%d", st.State, len(st.Results), len(jobs))
	}
	if len(events) < 2 {
		log.Fatalf("FAIL: event stream carried %d events, want a running snapshot before the terminal one", len(events))
	}
	for i := 0; i < len(events)-1; i++ {
		if events[i].State != "running" {
			log.Fatalf("FAIL: non-terminal event %d has state %q", i, events[i].State)
		}
	}
	last := events[len(events)-1]
	if !last.Done() || last.JobsDone != len(jobs) {
		log.Fatalf("FAIL: terminal event = %+v", last)
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		if cur.JobsDone < prev.JobsDone || cur.NodeRounds < prev.NodeRounds || cur.DedupHits < prev.DedupHits {
			log.Fatalf("FAIL: progress regressed between events %d and %d: %+v -> %+v", i-1, i, prev, cur)
		}
	}
	if last.NodeRounds == 0 || last.DedupHits < 2 {
		log.Fatalf("FAIL: terminal event missing work accounting: %+v", last)
	}
	log.Printf("events: %d snapshots, monotone, terminal at %d/%d", len(events), last.JobsDone, last.JobsTotal)

	// The flight recorder must hold the sweep with a nonzero engine phase
	// whose child spans account for the request's duration.
	dbg, err := c.DebugRequests(ctx, "sort=slowest")
	if err != nil {
		log.Fatalf("FAIL: /debug/requests: %v", err)
	}
	if !dbg.Enabled || len(dbg.Requests) == 0 {
		log.Fatalf("FAIL: flight recorder empty or disabled: enabled=%v stored=%d", dbg.Enabled, dbg.Stored)
	}
	var sweepTL *client.RequestTimeline
	for i := range dbg.Requests {
		tl := &dbg.Requests[i]
		if tl.Route != "/v1/sweep" {
			continue
		}
		if engineSeconds(tl) > 0 {
			sweepTL = tl
			break
		}
	}
	if sweepTL == nil {
		log.Fatal("FAIL: no /v1/sweep timeline with a nonzero engine span in /debug/requests")
	}
	var childSum float64
	for _, sp := range sweepTL.Spans[1:] {
		if sp.Parent == 0 {
			childSum += sp.DurationSeconds
		}
	}
	total := sweepTL.DurationSeconds
	if total <= 0 || childSum <= 0.5*total || childSum > 1.1*total {
		log.Fatalf("FAIL: sweep child spans sum to %.4fs of a %.4fs request — phases do not attribute the time", childSum, total)
	}
	jobTL := false
	for i := range dbg.Requests {
		tl := &dbg.Requests[i]
		if tl.Route == "batch-job" && tl.ID == ack.ID && engineSeconds(tl) > 0 {
			jobTL = true
			break
		}
	}
	if !jobTL {
		log.Fatalf("FAIL: no batch-job timeline for %s with a nonzero engine span", ack.ID)
	}
	log.Printf("flight recorder: sweep engine=%.1fms, child spans cover %.0f%% of the %.1fms request; job %s recorded",
		engineSeconds(sweepTL)*1e3, 100*childSum/total, total*1e3, ack.ID)
}

// engineSeconds returns the summed duration of a timeline's engine spans.
func engineSeconds(tl *client.RequestTimeline) float64 {
	var sum float64
	for _, sp := range tl.Spans {
		if sp.Name == "engine" {
			sum += sp.DurationSeconds
		}
	}
	return sum
}

// phaseSweep drives /v1/sweep through the shedding machinery: the retrying
// client must ride any 429 to a complete grid, the sweep engine must share
// work across the dead threshold axis, and a repeat sweep must be a pure
// cache read.
func phaseSweep(ctx context.Context, retrying *client.Client) {
	base := rbcast.Job{
		Config: rbcast.Config{Width: 16, Height: 12, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash},
	}
	axes := rbcast.SweepAxes{Ts: []int{0, 1}, CrashRounds: []int{1, 2, 3, 4}}
	sw, err := retrying.Sweep(ctx, base, axes, 0)
	if err != nil {
		log.Fatalf("FAIL: sweep did not survive the saturated daemon: %v", err)
	}
	if len(sw.Elements) != 8 {
		log.Fatalf("FAIL: sweep planned %d elements, want 8", len(sw.Elements))
	}
	for i, el := range sw.Elements {
		if el.Error != "" || el.Result == nil {
			log.Fatalf("FAIL: sweep element %d did not complete: %+v", i, el)
		}
	}
	if sw.Stats.SharedResults == 0 {
		log.Fatalf("FAIL: sweep engine shared nothing across the dead T axis: %+v", sw.Stats)
	}
	again, err := retrying.Sweep(ctx, base, axes, 0)
	if err != nil {
		log.Fatalf("FAIL: repeat sweep: %v", err)
	}
	for i, el := range again.Elements {
		if !el.Cached {
			log.Fatalf("FAIL: repeat sweep element %d was not served from cache", i)
		}
	}
	log.Printf("sweep: 8 elements complete (%d shared, %d simulated), repeat fully cached",
		sw.Stats.SharedResults, sw.Stats.Simulations)
}

// phaseBusyShed saturates the single execution slot with a slow sync run
// and asserts probes shed (429 + Retry-After) while a retrying client
// eventually succeeds.
func phaseBusyShed(ctx context.Context, noRetry, retrying *client.Client) {
	slow := slowScenario()
	slowDone := make(chan error, 1)
	go func() {
		_, err := noRetry.Run(ctx, slow.Config, slow.Plan)
		slowDone <- err
	}()

	// Probe until the saturated daemon sheds one. The slow run holds the
	// slot for hundreds of milliseconds minimum and each probe is
	// single-digit ms, so the first probe that overlaps it must be shed;
	// if the slow run finishes before any probe sheds, the daemon never
	// enforced its in-flight bound.
	shed := false
	probeOKs := 0
probing:
	for i := 0; ; i++ {
		select {
		case err := <-slowDone:
			slowDone <- err
			break probing
		default:
		}
		_, err := noRetry.Run(ctx, tinyScenario(i%8).Config, tinyScenario(i%8).Plan)
		var se *client.StatusError
		switch {
		case err == nil:
			probeOKs++
		case errors.As(err, &se) && se.Code == http.StatusTooManyRequests:
			if se.RetryAfter <= 0 {
				log.Fatal("FAIL: busy shed came without a Retry-After hint")
			}
			shed = true
			break probing
		default:
			log.Fatalf("FAIL: probe got an indefinite or unexpected answer: %v", err)
		}
	}
	if !shed {
		log.Fatalf("FAIL: no probe was shed while the slow run was in flight (%d probes ok)", probeOKs)
	}
	log.Printf("busy shed: got 429 + Retry-After while saturated (%d probes ok first)", probeOKs)

	// A retrying client fired into the same saturation must come out with
	// a result once the slot frees.
	if _, err := retrying.Run(ctx, tinyScenario(9).Config, tinyScenario(9).Plan); err != nil {
		log.Fatalf("FAIL: retrying client did not survive saturation: %v", err)
	}

	// The slow run itself must get a definite answer: success on a fast
	// machine, or a 504 when the job deadline cut it short.
	err := <-slowDone
	var se *client.StatusError
	switch {
	case err == nil:
		log.Print("busy shed: slow run finished under the deadline")
	case errors.As(err, &se) && se.Code == http.StatusGatewayTimeout:
		log.Print("busy shed: slow run stopped by the job deadline (504)")
	default:
		log.Fatalf("FAIL: slow run ended indefinitely: %v", err)
	}
}

// phaseQueueBackpressure fills the depth-1 batch queue with a slow batch,
// asserts the next submission sheds, rides the backoff to acceptance, and
// checks the slow element was deadline-isolated from its siblings.
func phaseQueueBackpressure(ctx context.Context, noRetry, retrying *client.Client) {
	jobs := []rbcast.Job{slowScenario(), tinyScenario(20), tinyScenario(21)}
	ack, err := retrying.Submit(ctx, jobs, 0)
	if err != nil {
		log.Fatalf("FAIL: slow batch not accepted into an empty queue: %v", err)
	}

	// The queue (depth 1) now holds the slow batch for well over a second;
	// an immediate second submission must shed.
	_, err = noRetry.Submit(ctx, []rbcast.Job{tinyScenario(22)}, 0)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		log.Fatalf("FAIL: submission into a full queue was not shed with 429: %v", err)
	}
	if se.RetryAfter <= 0 {
		log.Fatal("FAIL: queue-full shed came without a Retry-After hint")
	}
	log.Print("queue backpressure: full queue shed the submission with 429 + Retry-After")

	// The same submission through the retrying client must be accepted
	// once the slow batch drains.
	ack2, err := retrying.Submit(ctx, []rbcast.Job{tinyScenario(22)}, 0)
	if err != nil {
		log.Fatalf("FAIL: retrying client never got its batch accepted: %v", err)
	}

	st, err := retrying.WaitJob(ctx, ack.ID, 0)
	if err != nil {
		log.Fatalf("FAIL: waiting for the slow batch: %v", err)
	}
	if len(st.Results) != len(jobs) {
		log.Fatalf("FAIL: slow batch returned %d results, want %d", len(st.Results), len(jobs))
	}
	deadlined := st.Results[0]
	if deadlined.Error == "" || !deadlined.Partial || deadlined.Result == nil {
		log.Fatalf("FAIL: slow element not deadline-isolated: error=%q partial=%v result=%v",
			deadlined.Error, deadlined.Partial, deadlined.Result != nil)
	}
	for i, jr := range st.Results[1:] {
		if jr.Error != "" || jr.Result == nil {
			log.Fatalf("FAIL: sibling element %d damaged by the slow job: %+v", i+1, jr)
		}
	}
	log.Printf("deadline isolation: slow element failed alone (%q), siblings completed", deadlined.Error)

	if st2, err := retrying.WaitJob(ctx, ack2.ID, 0); err != nil || len(st2.Results) != 1 || st2.Results[0].Error != "" {
		log.Fatalf("FAIL: retried batch did not complete cleanly: st=%+v err=%v", st2, err)
	}
}

// phaseFinalState asserts the daemon is still healthy and its metrics
// record what the load provoked — and that nothing panicked along the way.
func phaseFinalState(ctx context.Context, c *client.Client) {
	if err := c.Health(ctx); err != nil {
		log.Fatalf("FAIL: daemon unhealthy after load: %v", err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("FAIL: /metrics after load: %v", err)
	}
	for _, check := range []struct {
		re   string
		min  int
		what string
	}{
		{`rbcastd_shed_total\{reason="busy"\} (\d+)`, 1, "busy sheds"},
		{`rbcastd_shed_total\{reason="queue_full"\} (\d+)`, 1, "queue-full sheds"},
		{`rbcastd_run_deadline_total (\d+)`, 1, "deadline-stopped runs"},
		{`rbcastd_panics_recovered_total (\d+)`, 0, "recovered panics"},
	} {
		m := regexp.MustCompile(check.re).FindStringSubmatch(metrics)
		if m == nil {
			log.Fatalf("FAIL: metric missing from /metrics: %s", check.re)
		}
		n, _ := strconv.Atoi(m[1])
		if n < check.min {
			log.Fatalf("FAIL: %s = %d, want >= %d", check.what, n, check.min)
		}
		if check.what == "recovered panics" && n != 0 {
			log.Fatalf("FAIL: daemon recovered %d panics under pure load", n)
		}
	}
	log.Print("final state: healthy, sheds and deadline stops visible in /metrics, zero panics")
}
