package main

// Cluster phases: the executable half of scripts/cluster_smoke.sh and
// scripts/cluster_bench.sh. The smoke script boots a 3-node fleet and
// drives three phases in sequence — seed (owner-routing exactness),
// failover (the fleet answers with a member dead), warm (a restarted
// member serves its shard from sibling caches without re-simulating) —
// while the bench script runs the -throughput mode against one node and
// then the fleet to measure scale-out.

import (
	"context"
	"log"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	rbcast "repro"
	"repro/client"
)

// seedCount is the number of distinct scenarios the seed phase spreads
// over the fleet; failover and warm revisit the same set, so the three
// phases must agree on it.
const seedCount = 12

// clusterScenario is the n-th seed scenario. It reuses the tiny family:
// distinct heights give distinct fingerprints, and each run is
// single-digit milliseconds so the smoke stays fast.
func clusterScenario(n int) rbcast.Job { return tinyScenario(n) }

// throughputScenario gives every request a distinct fingerprint at
// identical simulation cost: the placement seed is fingerprinted but
// unused by the deterministic greedy-band placement, so the scenario
// space is unbounded while each element simulates the same workload.
// That keeps the cache out of the measurement — throughput mode measures
// simulation scale-out, not cache bandwidth.
func throughputScenario(n int64) rbcast.Job {
	return rbcast.Job{
		Config: rbcast.Config{Width: 48, Height: 32, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent, Seed: n},
	}
}

// phaseClusterSeed spreads the seed set over the fleet and asserts the
// ownership contract: every fingerprint ends up resident on exactly its
// ring owner, no matter which member received the request. Odd-indexed
// scenarios are deliberately sent to a non-owner so the fleet's own
// proxy path (not just client-side routing) carries traffic.
func phaseClusterSeed(ctx context.Context, cc *client.Cluster) {
	members := cc.Members()
	proxied := 0
	for n := 0; n < seedCount; n++ {
		job := clusterScenario(n)
		owner := cc.Owner(job.Config, job.Plan)
		var res client.RunResult
		var err error
		if n%2 == 0 {
			res, err = cc.Run(ctx, job.Config, job.Plan)
		} else {
			nonOwner := ""
			for _, m := range members {
				if m != owner {
					nonOwner = m
					break
				}
			}
			res, err = cc.Client(nonOwner).Run(ctx, job.Config, job.Plan)
			proxied++
		}
		if err != nil {
			log.Fatalf("FAIL: seed run %d: %v", n, err)
		}
		if res.Fingerprint != job.Fingerprint() {
			log.Fatalf("FAIL: seed run %d answered fingerprint %q, want %q", n, res.Fingerprint, job.Fingerprint())
		}
	}

	// Residency audit: each fingerprint on exactly one member, the owner.
	for n := 0; n < seedCount; n++ {
		job := clusterScenario(n)
		fp := job.Fingerprint()
		owner := cc.Owner(job.Config, job.Plan)
		resident := 0
		for _, m := range members {
			_, ok, err := cc.Client(m).CachedResult(ctx, fp)
			if err != nil {
				log.Fatalf("FAIL: cache probe for %s on %s: %v", fp, m, err)
			}
			if ok {
				resident++
				if m != owner {
					log.Fatalf("FAIL: fingerprint %s resident on non-owner %s (owner %s)", fp, m, owner)
				}
			}
		}
		if resident != 1 {
			log.Fatalf("FAIL: fingerprint %s resident on %d members, want exactly its owner", fp, resident)
		}
	}

	// The proxy path must have carried the deliberately misdirected runs.
	proxyOK := 0
	for _, m := range members {
		metrics, err := cc.Client(m).Metrics(ctx)
		if err != nil {
			log.Fatalf("FAIL: /metrics on %s: %v", m, err)
		}
		for _, v := range regexp.MustCompile(`rbcastd_peer_proxy_total\{[^}]*outcome="ok"\} (\d+)`).
			FindAllStringSubmatch(metrics, -1) {
			n, _ := strconv.Atoi(v[1])
			proxyOK += n
		}
	}
	if proxyOK < proxied {
		log.Fatalf("FAIL: fleet counts %d proxied runs, want >= %d (misdirected requests must cross the proxy path)", proxyOK, proxied)
	}
	log.Printf("seed: %d scenarios resident on exactly their owners; %d runs crossed the fleet proxy", seedCount, proxyOK)
}

// phaseClusterFailover re-runs the whole seed set while one member is
// down (the script kills it before invoking this phase). Every run must
// still complete: owned-and-cached shards answer from surviving members,
// and shards owned by the dead member fail over to ring successors.
func phaseClusterFailover(ctx context.Context, cc *client.Cluster) {
	for n := 0; n < seedCount; n++ {
		job := clusterScenario(n)
		res, err := cc.Run(ctx, job.Config, job.Plan)
		if err != nil {
			log.Fatalf("FAIL: run %d did not survive the dead member: %v", n, err)
		}
		if res.Fingerprint != job.Fingerprint() {
			log.Fatalf("FAIL: failover run %d answered fingerprint %q", n, res.Fingerprint)
		}
	}
	log.Printf("failover: all %d scenarios answered with a member down", seedCount)
}

// phaseClusterWarm drives a freshly restarted member's shard through it
// and asserts it warmed from the fleet: zero local simulations, at least
// one sibling cache-fill hit. target is the restarted member's URL.
func phaseClusterWarm(ctx context.Context, cc *client.Cluster, target string) {
	tc := cc.Client(target)
	if tc == nil {
		log.Fatalf("FAIL: warm target %s is not a fleet member", target)
	}
	owned := 0
	for n := 0; n < seedCount; n++ {
		job := clusterScenario(n)
		if cc.Owner(job.Config, job.Plan) != target {
			continue
		}
		owned++
		res, err := tc.Run(ctx, job.Config, job.Plan)
		if err != nil {
			log.Fatalf("FAIL: warm run %d on restarted member: %v", n, err)
		}
		if res.Fingerprint != job.Fingerprint() {
			log.Fatalf("FAIL: warm run %d answered fingerprint %q", n, res.Fingerprint)
		}
	}
	if owned == 0 {
		log.Fatalf("FAIL: restarted member owns none of the %d seed scenarios; the warm phase proved nothing", seedCount)
	}
	metrics, err := tc.Metrics(ctx)
	if err != nil {
		log.Fatalf("FAIL: /metrics on restarted member: %v", err)
	}
	if n := metricInt(metrics, `rbcastd_sim_runs_total (\d+)`); n != 0 {
		log.Fatalf("FAIL: restarted member simulated %d runs; its shard should have come from sibling caches", n)
	}
	if n := metricInt(metrics, `rbcastd_peer_cache_fill_total\{outcome="hit"\} (\d+)`); n < 1 {
		log.Fatalf("FAIL: restarted member reports %d cache-fill hits, want >= 1", n)
	}
	log.Printf("warm: restarted member served %d owned scenarios with 0 simulations (fleet cache-fill)", owned)
}

// metricInt extracts one integer sample from Prometheus exposition text;
// the regexp's first group must capture the value.
func metricInt(metrics, re string) int {
	m := regexp.MustCompile(re).FindStringSubmatch(metrics)
	if m == nil {
		log.Fatalf("FAIL: metric missing: %s", re)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		log.Fatalf("FAIL: metric %s: %v", re, err)
	}
	return n
}

// phaseThroughput measures sustained run throughput: concurrency workers
// issue distinct-fingerprint scenarios back to back for dur, and the
// completed-run rate is printed as a machine-readable line
// (throughput_runs_per_sec=...) that scripts/cluster_bench.sh compares
// between a single node and the fleet.
func phaseThroughput(ctx context.Context, run func(context.Context, rbcast.Config, rbcast.FaultPlan) (client.RunResult, error), dur time.Duration, concurrency int) {
	tctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()
	var next, done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tctx.Err() == nil {
				job := throughputScenario(next.Add(1))
				if _, err := run(tctx, job.Config, job.Plan); err != nil {
					if tctx.Err() != nil {
						return // the measurement window closed mid-request
					}
					log.Fatalf("FAIL: throughput run: %v", err)
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	rate := float64(done.Load()) / elapsed
	log.Printf("throughput: %d runs in %.2fs across %d workers", done.Load(), elapsed, concurrency)
	// The bench script parses this exact key.
	log.Printf("throughput_runs_per_sec=%.1f", rate)
}
