// Command analyze predicts a broadcast outcome statically — no simulation —
// using the guaranteed-commit closures of package analysis, then optionally
// cross-checks the prediction against the simulator. Useful for screening
// adversarial placements quickly: the closures run in milliseconds where a
// full protocol simulation may take seconds.
//
// With -sweep it switches to dynamic mode: every fault bound t from 0 up to
// the crash impossibility point is simulated through rbcast.RunBatch across
// a worker pool, printing one row per t with the outcome and the measured
// traffic from the metrics layer.
package main

import (
	"flag"
	"fmt"
	"os"

	rbcast "repro"
	"repro/internal/analysis"
	"repro/internal/bounds"
	"repro/internal/evidence"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func main() {
	var (
		width   = flag.Int("width", 16, "torus width")
		height  = flag.Int("height", 10, "torus height")
		radius  = flag.Int("radius", 1, "transmission radius r")
		proto   = flag.String("protocol", "bv4", "protocol: flood, cpa, bv2, bv4 (bv2 only with -sweep)")
		tBound  = flag.Int("t", -1, "fault bound (default: protocol's max for r)")
		place   = flag.String("faults", "greedy", "placement: none, band, checkerboard, greedy, random")
		seed    = flag.Int64("seed", 1, "seed for random placement")
		verify  = flag.Bool("verify", false, "also run the simulator and compare")
		sweep   = flag.Bool("sweep", false, "simulate every t from 0 to the crash impossibility point via the batch runner")
		workers = flag.Int("workers", 0, "worker pool size for -sweep (<=0 means GOMAXPROCS)")
	)
	flag.Parse()

	if *sweep {
		runSweep(*width, *height, *radius, *proto, *place, *seed, *workers)
		return
	}

	net, err := topology.New(grid.Torus{W: *width, H: *height}, grid.Linf, *radius)
	if err != nil {
		fatal("%v", err)
	}
	src := net.IDOf(grid.C(0, 0))
	tVal := *tBound
	if tVal < 0 {
		if *proto == "cpa" {
			tVal = bounds.MaxCPALinf(*radius)
		} else {
			tVal = bounds.MaxByzantineLinf(*radius)
		}
	}

	var faults []topology.NodeID
	switch *place {
	case "none":
	case "band":
		for _, x0 := range []int{*width / 4, 3 * *width / 4} {
			faults = append(faults, fault.Band(net, x0, *radius)...)
		}
	case "checkerboard":
		for _, x0 := range []int{*width / 4, 3 * *width / 4} {
			band, err := fault.CheckerboardBand(net, x0, *radius)
			if err != nil {
				fatal("%v", err)
			}
			faults = append(faults, band...)
		}
	case "greedy":
		for _, x0 := range []int{*width / 4, 3 * *width / 4} {
			band, err := fault.GreedyBand(net, x0, *radius, tVal)
			if err != nil {
				fatal("%v", err)
			}
			faults = append(faults, band...)
		}
	case "random":
		faults, err = fault.RandomBounded(net, tVal, -1, *seed)
		if err != nil {
			fatal("%v", err)
		}
	default:
		fatal("unknown placement %q", *place)
	}
	kept := faults[:0]
	for _, id := range faults {
		if id != src {
			kept = append(kept, id)
		}
	}
	faults = kept

	var pred analysis.Prediction
	switch *proto {
	case "flood":
		pred, err = analysis.FloodReachable(net, src, faults)
	case "cpa":
		pred, err = analysis.CPAClosure(net, src, faults, tVal)
	case "bv4":
		var ft *evidence.FamilyTable
		ft, err = evidence.NewFamilyTable(*radius)
		if err == nil {
			pred, err = analysis.BV4Closure(net, ft, src, faults, tVal)
		}
	default:
		fatal("unknown protocol %q (analyze supports flood, cpa, bv4)", *proto)
	}
	if err != nil {
		fatal("%v", err)
	}

	honest := net.Size() - len(faults)
	fmt.Printf("prediction: %d/%d honest nodes guaranteed to commit (closure depth %d)\n",
		pred.Count, honest, pred.Rounds)
	if pred.All(net, faults) {
		fmt.Println("verdict: reliable broadcast GUARANTEED against any adversary behaviour")
	} else {
		fmt.Printf("verdict: %d honest nodes NOT guaranteed (a silent adversary stalls them)\n",
			honest-pred.Count)
	}

	if *verify {
		kind := map[string]protocol.Kind{"flood": protocol.Flood, "cpa": protocol.CPA, "bv4": protocol.BV4}[*proto]
		cfg := protocol.RunConfig{
			Kind:   kind,
			Params: protocol.Params{Net: net, Source: src, Value: 1, T: tVal},
		}
		if *proto == "flood" {
			m := make(map[topology.NodeID]int, len(faults))
			for _, id := range faults {
				m[id] = 0
			}
			cfg.Crash = m
		} else {
			m := make(map[topology.NodeID]fault.Strategy, len(faults))
			for _, id := range faults {
				m[id] = fault.Silent
			}
			cfg.Byzantine = m
		}
		out, err := protocol.Run(cfg)
		if err != nil {
			fatal("%v", err)
		}
		agree := true
		for id := 0; id < net.Size(); id++ {
			_, decided := out.Result.Decided[topology.NodeID(id)]
			if pred.Committed[id] != decided {
				agree = false
				break
			}
		}
		fmt.Printf("simulation: %d commits in %d rounds — prediction %s\n",
			len(out.Result.Decided), out.Result.Stats.Rounds,
			map[bool]string{true: "CONFIRMED", false: "DIVERGED"}[agree])
		if !agree {
			os.Exit(1)
		}
	}
}

// runSweep simulates the protocol at every fault bound t from 0 to the
// crash impossibility point, dispatching all cells as one rbcast.RunBatch
// call. Rows print in t order regardless of worker count.
func runSweep(width, height, radius int, proto, place string, seed int64, workers int) {
	protoKind, ok := map[string]rbcast.Protocol{
		"flood": rbcast.ProtocolFlood,
		"cpa":   rbcast.ProtocolCPA,
		"bv2":   rbcast.ProtocolBV2,
		"bv4":   rbcast.ProtocolBV4,
	}[proto]
	if !ok {
		fatal("unknown protocol %q (sweep supports flood, cpa, bv2, bv4)", proto)
	}
	placement, ok := map[string]rbcast.Placement{
		"band":         rbcast.PlaceBand,
		"checkerboard": rbcast.PlaceCheckerboardBand,
		"greedy":       rbcast.PlaceGreedyBand,
		"random":       rbcast.PlaceRandomBounded,
	}[place]
	if !ok && place != "none" {
		fatal("unknown placement %q", place)
	}
	strategy := rbcast.StrategySilent
	if protoKind == rbcast.ProtocolFlood {
		strategy = rbcast.StrategyCrash
	}

	tMax := rbcast.MinImpossibleCrashLinf(radius)
	jobs := make([]rbcast.Job, 0, tMax+1)
	for t := 0; t <= tMax; t++ {
		cfg := rbcast.Config{
			Width: width, Height: height, Radius: radius,
			Protocol: protoKind, T: t, Value: 1,
		}
		plan := rbcast.FaultPlan{Placement: placement, Strategy: strategy, Budget: t, Seed: seed}
		if t == 0 || place == "none" {
			plan = rbcast.FaultPlan{}
		}
		jobs = append(jobs, rbcast.Job{Config: cfg, Plan: plan})
	}
	results := rbcast.RunBatch(jobs, rbcast.BatchOptions{Workers: workers})

	fmt.Printf("sweep: %s on %dx%d torus, r=%d, %s faults (silent adversary unless flood)\n",
		proto, width, height, radius, place)
	fmt.Println("t    outcome  faults  broadcasts  rounds")
	for t, br := range results {
		if br.Err != nil {
			fatal("t=%d: %v", t, br.Err)
		}
		res := br.Result
		outcome := "stall"
		switch {
		case !res.Safe():
			outcome = "UNSAFE"
		case res.AllCorrect():
			outcome = "ok"
		}
		fmt.Printf("%-4d %-8s %-7d %-11d %d\n",
			t, outcome, res.Faults, res.Broadcasts, res.Rounds)
	}
}

// fatal prints an error and exits.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "analyze: "+format+"\n", args...)
	os.Exit(1)
}
