package rbcast

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

func TestFilterFaultyDedupesAndExcludesSource(t *testing.T) {
	ids := []topology.NodeID{4, 7, 4, 2, 7, 9, 2}
	got := filterFaulty(ids, 9)
	want := []topology.NodeID{4, 7, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("filterFaulty = %v, want %v", got, want)
	}
	if got := filterFaulty(nil, 0); len(got) != 0 {
		t.Errorf("empty input produced %v", got)
	}
}

// TestBandPlacementsNoDuplicatesOnMinimalTorus is the regression test for
// the band double-count: the two antipodal bands are materialized
// independently, and on the narrowest legal torus they abut — every fault
// must still appear exactly once in Result.Faulty.
func TestBandPlacementsNoDuplicatesOnMinimalTorus(t *testing.T) {
	for _, tc := range []struct{ r, w, h int }{{1, 3, 4}, {2, 5, 6}, {3, 7, 8}} {
		for _, placement := range []Placement{PlaceBand, PlaceCheckerboardBand, PlaceGreedyBand} {
			cfg := Config{
				Width: tc.w, Height: tc.h, Radius: tc.r,
				Protocol: ProtocolFlood, T: 1, Value: 1,
			}
			res, err := Run(cfg, FaultPlan{Placement: placement, Strategy: StrategyCrash, Budget: 1})
			if err != nil {
				t.Fatalf("r=%d placement=%d: %v", tc.r, placement, err)
			}
			seen := make(map[Node]int)
			for _, n := range res.Faulty {
				seen[n]++
				if seen[n] > 1 {
					t.Errorf("r=%d placement=%d: node %v listed %d times", tc.r, placement, n, seen[n])
				}
			}
			if res.Faults != len(res.Faulty) {
				t.Errorf("r=%d placement=%d: Faults=%d but %d listed", tc.r, placement, res.Faults, len(res.Faulty))
			}
		}
	}
}

func TestBudgetZeroMeansConfigT(t *testing.T) {
	cfg := Config{Width: 16, Height: 16, Radius: 1, Protocol: ProtocolFlood, T: 2, Value: 1}
	defaulted, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 5, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(defaulted.Faulty, explicit.Faulty) {
		t.Errorf("Budget=0 placement differs from explicit Budget=Config.T placement")
	}
	// An explicit different budget must override Config.T.
	tighter, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 5, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tighter.MaxFaultsPerNbd > 1 {
		t.Errorf("Budget=1 placement has density %d", tighter.MaxFaultsPerNbd)
	}
	if reflect.DeepEqual(tighter.Faulty, defaulted.Faulty) {
		t.Error("Budget=1 placement identical to Budget=2 placement")
	}
}

func TestCountExceedingTorusSizeSaturates(t *testing.T) {
	cfg := Config{Width: 16, Height: 16, Radius: 1, Protocol: ProtocolFlood, T: 1, Value: 1}
	huge, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 3, Count: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	maximal, err := Run(cfg, FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyCrash, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if huge.Faults == 0 || huge.Faults >= 16*16 {
		t.Errorf("saturated placement has %d faults", huge.Faults)
	}
	if !reflect.DeepEqual(huge.Faulty, maximal.Faulty) {
		t.Error("Count beyond torus size must match the maximal placement")
	}
}

func TestPercolationProbabilityExtremes(t *testing.T) {
	cfg := Config{Width: 12, Height: 12, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	none, err := Run(cfg, FaultPlan{Placement: PlacePercolation, Probability: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if none.Faults != 0 || !none.AllCorrect() {
		t.Errorf("p=0: faults=%d allCorrect=%v", none.Faults, none.AllCorrect())
	}
	all, err := Run(cfg, FaultPlan{Placement: PlacePercolation, Probability: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 12*12 - 1; all.Faults != want {
		t.Errorf("p=1: faults=%d, want %d (everyone but the source)", all.Faults, want)
	}
	if all.Honest != 1 || all.Correct != 1 {
		t.Errorf("p=1: honest=%d correct=%d, want the lone source", all.Honest, all.Correct)
	}
	if _, err := Run(cfg, FaultPlan{Placement: PlacePercolation, Probability: 1.5}); err == nil {
		t.Error("probability > 1 must be rejected")
	}
	if _, err := Run(cfg, FaultPlan{Placement: PlacePercolation, Probability: -0.1}); err == nil {
		t.Error("negative probability must be rejected")
	}
}

func TestSourceInsideBandStaysHonest(t *testing.T) {
	cfg := Config{
		Width: 16, Height: 10, Radius: 1,
		Protocol: ProtocolFlood, Value: 1,
		SourceX: 16 / 4, SourceY: 3, // inside the first band column
	}
	res, err := Run(cfg, FaultPlan{Placement: PlaceBand, Strategy: StrategyCrash})
	if err != nil {
		t.Fatal(err)
	}
	src := Node{X: 16 / 4, Y: 3}
	for _, n := range res.Faulty {
		if n == src {
			t.Fatal("the designated source was corrupted")
		}
	}
	// One band node (the source) is exempted: 2 bands × height − 1.
	if want := 2*10 - 1; res.Faults != want {
		t.Errorf("faults = %d, want %d", res.Faults, want)
	}
	if d := res.Decisions[src]; !d.Decided || d.Value != 1 {
		t.Errorf("source decision = %+v", d)
	}
}
