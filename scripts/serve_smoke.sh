#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for rbcastd (`make serve-smoke`).
#
# Builds the daemon, starts it on an ephemeral port, and exercises the
# serving contract: /healthz, an uncached /v1/run (cache miss), the same
# request again (cache hit, byte-identical body), a /v1/batch round trip,
# and /metrics counters consistent with all of the above. Exits nonzero on
# any mismatch. Requires curl; uses jq when available for nicer batch
# polling but does not depend on it.
#
# RBCASTD_PORT overrides the daemon port (each smoke script defaults to
# a distinct one so `make -j` can run them side by side); SMOKE_LOG_DIR,
# when set, receives the daemon log so CI can upload it on failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
LOG="$LOGDIR/serve-rbcastd.log"
PORT="${RBCASTD_PORT:-18080}"
PID=""
# Reap the daemon on every exit path: kill alone can leave it running just
# long enough to hold the port against the next CI step, so wait for it.
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- rbcastd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd

"$TMP/rbcastd" -addr "127.0.0.1:$PORT" >"$LOG" 2>&1 &
PID=$!

# The daemon logs msg="rbcastd listening" addr=127.0.0.1:PORT once bound.
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="rbcastd listening" addr=\([^ ]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "daemon never reported its address"
BASE="http://$ADDR"

# Liveness.
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "/healthz not ok"

SCENARIO='{"config":{"width":16,"height":10,"radius":1,"protocol":"bv4","t":2,"value":1},"plan":{"placement":"greedy-band","strategy":"silent"}}'

# First run: a cache miss that executes the simulation.
curl -fsS -D "$TMP/h1" -H 'Content-Type: application/json' \
    -d "$SCENARIO" "$BASE/v1/run" >"$TMP/r1" || fail "first /v1/run failed"
grep -qi '^X-Rbcast-Cache: miss' "$TMP/h1" || fail "first run was not a cache miss"
grep -q '"fingerprint"' "$TMP/r1" || fail "run response carries no fingerprint"

# Second identical run: a cache hit with a byte-identical body.
curl -fsS -D "$TMP/h2" -H 'Content-Type: application/json' \
    -d "$SCENARIO" "$BASE/v1/run" >"$TMP/r2" || fail "second /v1/run failed"
grep -qi '^X-Rbcast-Cache: hit' "$TMP/h2" || fail "second run was not a cache hit"
cmp -s "$TMP/r1" "$TMP/r2" || fail "cached body differs from the original"

# Non-torus family: an rgg scenario must submit, execute, and cache through
# the same surface as the torus ones.
RGG='{"config":{"topology":"rgg","nodes":64,"rgg_radius":0.22,"topology_seed":1,"protocol":"flood","value":1},"plan":{}}'
curl -fsS -D "$TMP/hr1" -H 'Content-Type: application/json' \
    -d "$RGG" "$BASE/v1/run" >"$TMP/rgg1" || fail "rgg /v1/run failed"
grep -qi '^X-Rbcast-Cache: miss' "$TMP/hr1" || fail "rgg run was not a cache miss"
grep -q '"fingerprint"' "$TMP/rgg1" || fail "rgg response carries no fingerprint"
curl -fsS -D "$TMP/hr2" -H 'Content-Type: application/json' \
    -d "$RGG" "$BASE/v1/run" >"$TMP/rgg2" || fail "second rgg /v1/run failed"
grep -qi '^X-Rbcast-Cache: hit' "$TMP/hr2" || fail "second rgg run was not a cache hit"
cmp -s "$TMP/rgg1" "$TMP/rgg2" || fail "cached rgg body differs from the original"

# Quorum family: a Bracha run under an equivocating adversary on a complete
# rgg must serve, decode its strategy/protocol enums, and cache like the rest.
BRACHA='{"config":{"topology":"rgg","nodes":16,"rgg_radius":0.75,"topology_seed":3,"protocol":"bracha","t":5,"value":1,"max_rounds":64},"plan":{"placement":"random-bounded","strategy":"equivocator","count":3,"seed":2}}'
curl -fsS -D "$TMP/hb1" -H 'Content-Type: application/json' \
    -d "$BRACHA" "$BASE/v1/run" >"$TMP/bracha1" || fail "bracha /v1/run failed"
grep -qi '^X-Rbcast-Cache: miss' "$TMP/hb1" || fail "bracha run was not a cache miss"
grep -q '"fingerprint"' "$TMP/bracha1" || fail "bracha response carries no fingerprint"
curl -fsS -D "$TMP/hb2" -H 'Content-Type: application/json' \
    -d "$BRACHA" "$BASE/v1/run" >"$TMP/bracha2" || fail "second bracha /v1/run failed"
grep -qi '^X-Rbcast-Cache: hit' "$TMP/hb2" || fail "second bracha run was not a cache hit"
cmp -s "$TMP/bracha1" "$TMP/bracha2" || fail "cached bracha body differs from the original"

# Batch round trip: submit, poll to completion, check the results.
BATCH="{\"jobs\":[$SCENARIO,{\"config\":{\"width\":16,\"height\":10,\"radius\":1,\"protocol\":\"flood\",\"value\":1},\"plan\":{}}]}"
curl -fsS -H 'Content-Type: application/json' -d "$BATCH" "$BASE/v1/batch" >"$TMP/ack" \
    || fail "/v1/batch submission failed"
if command -v jq >/dev/null 2>&1; then
    JOB_URL=$(jq -r .status_url "$TMP/ack")
else
    JOB_URL=$(sed -n 's/.*"status_url":"\([^"]*\)".*/\1/p' "$TMP/ack")
fi
[ -n "$JOB_URL" ] || fail "batch ack carries no status_url"
i=0
while [ $i -lt 100 ]; do
    curl -fsS "$BASE$JOB_URL" >"$TMP/job"
    grep -q '"state":"done"' "$TMP/job" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q '"state":"done"' "$TMP/job" || fail "batch job never finished"
grep -q '"cached":true' "$TMP/job" || fail "batch did not reuse the cached scenario"
grep -q '"error"' "$TMP/job" && fail "batch job reported an error"

# Metrics must reflect what just happened: ≥1 hit (the second run plus the
# batch's cached element), ≥1 miss, and the flood run executed.
curl -fsS "$BASE/metrics" >"$TMP/metrics" || fail "/metrics failed"
HITS=$(awk '$1 == "rbcastd_cache_hits_total" {print $2}' "$TMP/metrics")
MISSES=$(awk '$1 == "rbcastd_cache_misses_total" {print $2}' "$TMP/metrics")
RUNS=$(awk '$1 == "rbcastd_sim_runs_total" {print $2}' "$TMP/metrics")
[ "${HITS:-0}" -ge 1 ] 2>/dev/null || fail "cache_hits_total = ${HITS:-unset}, want >= 1"
[ "${MISSES:-0}" -ge 1 ] 2>/dev/null || fail "cache_misses_total = ${MISSES:-unset}, want >= 1"
[ "${RUNS:-0}" -ge 3 ] 2>/dev/null || fail "sim_runs_total = ${RUNS:-unset}, want >= 3"
grep -q 'rbcastd_requests_total{path="/v1/run"} 6' "$TMP/metrics" \
    || fail "request counter for /v1/run is not 6"

# Graceful shutdown: SIGTERM must drain and exit cleanly.
kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    [ $i -ge 100 ] && fail "daemon did not exit after SIGTERM"
    sleep 0.1
    i=$((i + 1))
done
wait "$PID" 2>/dev/null || fail "daemon exited nonzero on SIGTERM"
PID=""
grep -q 'drained, bye' "$LOG" || fail "daemon did not report a clean drain"

echo "serve-smoke: ok ($BASE)"
