#!/bin/sh
# benchdiff.sh — run the full benchmark suite and fail if any scenario's
# allocations regress by more than 10% against the committed baseline
# (testdata/bench_baseline.json).
#
# Allocation counts are deterministic for a fixed scenario matrix, so they
# gate reliably across machines; ns/op is machine-dependent and reported
# for information only (compare it with benchstat on the same host).
#
# Usage: [BENCH_OUT=path] sh scripts/benchdiff.sh [extra cmd/bench flags]
# The fresh report is written to $BENCH_OUT when set (how CI collects it
# as an artifact), otherwise to a private temp file — never to a fixed
# world-writable /tmp path two concurrent runs would fight over.
set -eu

GO="${GO:-go}"
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-}"
if [ -z "$OUT" ]; then
    OUT=$(mktemp -t rbcast_bench_current.XXXXXX.json)
fi

exec "$GO" run ./cmd/bench \
	-out "$OUT" \
	-against testdata/bench_baseline.json \
	-threshold 10 \
	"$@"
