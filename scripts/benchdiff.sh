#!/bin/sh
# benchdiff.sh — run the full benchmark suite and fail if any scenario's
# allocations regress by more than 10% against the committed baseline
# (testdata/bench_baseline.json).
#
# Allocation counts are deterministic for a fixed scenario matrix, so they
# gate reliably across machines; ns/op is machine-dependent and reported
# for information only (compare it with benchstat on the same host).
#
# Usage: sh scripts/benchdiff.sh [extra cmd/bench flags]
# The fresh report is left at /tmp/rbcast_bench_current.json.
set -eu

GO="${GO:-go}"
cd "$(dirname "$0")/.."

exec "$GO" run ./cmd/bench \
	-out /tmp/rbcast_bench_current.json \
	-against testdata/bench_baseline.json \
	-threshold 10 \
	"$@"
