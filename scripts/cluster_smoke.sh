#!/bin/sh
# cluster_smoke.sh — 3-node fleet smoke test for rbcastd cluster mode
# (`make cluster-smoke`).
#
# Boots three daemons sharing one -peers list (ports RBCASTD_PORT,
# RBCASTD_PORT+1, RBCASTD_PORT+2) and drives cmd/loadgen's cluster phases:
#
#   seed      — 12 distinct scenarios spread over the fleet, half of them
#               deliberately sent to a non-owner; every fingerprint must
#               end up resident on exactly its ring owner and the
#               misdirected runs must show in rbcastd_peer_proxy_total.
#   failover  — node 3 is killed; re-running the whole set through the
#               cluster client must still answer every scenario (client
#               failover plus fleet-side local fallback).
#   warm      — node 3 restarts with an empty cache; serving its shard
#               must show rbcastd_sim_runs_total 0 and peer cache-fill
#               hits: the restarted member warms from sibling caches
#               instead of re-simulating.
#
# No curl/jq dependency — loadgen is the whole client side. SMOKE_LOG_DIR,
# when set, receives the three daemon logs so CI can upload them on
# failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
BASE="${RBCASTD_PORT:-18580}"
P1=$BASE
P2=$((BASE + 1))
P3=$((BASE + 2))
U1="http://127.0.0.1:$P1"
U2="http://127.0.0.1:$P2"
U3="http://127.0.0.1:$P3"
PEERS="$U1,$U2,$U3"

PID1=""
PID2=""
PID3=""
cleanup() {
    for pid in "$PID1" "$PID2" "$PID3"; do
        [ -n "$pid" ] || continue
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for f in "$LOGDIR"/cluster-node*.log; do
        [ -f "$f" ] || continue
        echo "--- $f ---" >&2
        cat "$f" >&2
    done
    exit 1
}

"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd
"${GO:-go}" build -o "$TMP/loadgen" ./cmd/loadgen

# start_node <n> <port> <url>: boot one member; its pid lands in PID<n>.
start_node() {
    "$TMP/rbcastd" -addr "127.0.0.1:$2" -self "$3" -peers "$PEERS" \
        -peer-health-interval 1s \
        >"$LOGDIR/cluster-node$1.log" 2>&1 &
    eval "PID$1=$!"
}

# wait_listening <n>: block until node n logs its bound address.
wait_listening() {
    log="$LOGDIR/cluster-node$1.log"
    pid=$(eval "echo \$PID$1")
    i=0
    while [ $i -lt 100 ]; do
        grep -q 'msg="rbcastd listening"' "$log" 2>/dev/null && return 0
        kill -0 "$pid" 2>/dev/null || fail "node $1 exited before binding"
        sleep 0.1
        i=$((i + 1))
    done
    fail "node $1 never reported its address"
}

# reap <n>: SIGTERM node n and wait for a clean exit.
reap() {
    pid=$(eval "echo \$PID$1")
    [ -n "$pid" ] || return 0
    kill "$pid" 2>/dev/null || true
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        [ $i -ge 100 ] && fail "node $1 did not exit after SIGTERM"
        sleep 0.1
        i=$((i + 1))
    done
    wait "$pid" 2>/dev/null || fail "node $1 exited nonzero on SIGTERM"
    eval "PID$1=''"
}

start_node 1 "$P1" "$U1"
start_node 2 "$P2" "$U2"
start_node 3 "$P3" "$U3"
wait_listening 1
wait_listening 2
wait_listening 3

# Phase 1: owner-routing exactness across the live fleet.
"$TMP/loadgen" -fleet "$PEERS" -phase seed || fail "seed phase"

# Phase 2: kill node 3 and re-run the whole set through the fleet.
reap 3
"$TMP/loadgen" -fleet "$PEERS" -phase failover || fail "failover phase"

# Phase 3: restart node 3 with an empty cache; its shard must come back
# from sibling caches, not from re-simulation.
start_node 3 "$P3" "$U3"
wait_listening 3
"$TMP/loadgen" -fleet "$PEERS" -phase warm -target "$U3" || fail "warm phase"

# The whole fleet must still shut down cleanly.
reap 1
reap 2
reap 3
for n in 1 2 3; do
    grep -q 'drained, bye' "$LOGDIR/cluster-node$n.log" \
        || fail "node $n did not report a clean drain"
done

echo "cluster-smoke: ok ($U1 $U2 $U3)"
