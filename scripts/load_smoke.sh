#!/bin/sh
# load_smoke.sh — saturation smoke test for rbcastd (`make load-smoke`).
#
# Boots the daemon with deliberately tiny limits (-queue-depth 1
# -max-inflight 1 -job-timeout 250ms) and drives it with cmd/loadgen,
# which asserts the overload contract: saturated requests shed with 429 +
# Retry-After (never hang), a retrying client rides the backoff to
# success, an over-deadline batch element fails alone with a partial
# result while its siblings complete, and the daemon stays healthy with
# the sheds visible in /metrics. No curl/jq dependency — loadgen is the
# whole client side.
#
# RBCASTD_PORT overrides the daemon port (each smoke script defaults to
# a distinct one so `make -j` can run them side by side); SMOKE_LOG_DIR,
# when set, receives the daemon log so CI can upload it on failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
LOG="$LOGDIR/load-rbcastd.log"
PORT="${RBCASTD_PORT:-18280}"
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "load-smoke: FAIL: $*" >&2
    echo "--- rbcastd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd
"${GO:-go}" build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/rbcastd" -addr "127.0.0.1:$PORT" -queue-depth 1 -max-inflight 1 -job-timeout 250ms \
    >"$LOG" 2>&1 &
PID=$!

# The daemon logs msg="rbcastd listening" addr=127.0.0.1:PORT once bound.
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="rbcastd listening" addr=\([^ ]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "daemon never reported its address"

"$TMP/loadgen" -addr "http://$ADDR" -timeout 2m || fail "loadgen reported a contract violation"

# The saturated daemon must still shut down cleanly.
kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    [ $i -ge 100 ] && fail "daemon did not exit after SIGTERM"
    sleep 0.1
    i=$((i + 1))
done
wait "$PID" 2>/dev/null || fail "daemon exited nonzero on SIGTERM"
PID=""
grep -q 'drained, bye' "$LOG" || fail "daemon did not report a clean drain"

echo "load-smoke: ok (http://$ADDR)"
