#!/bin/sh
# sweep_smoke.sh — end-to-end smoke test for /v1/sweep (`make sweep-smoke`).
#
# Builds the daemon, starts it on an ephemeral port, and exercises the sweep
# planner against the scalar surface it must agree with: a scalar /v1/run is
# executed first, then a threshold grid containing that element is swept and
# the matching element must come back cached with a byte-identical result; a
# sweep-computed element re-requested through /v1/run must be a cache hit
# under the same fingerprint. Also pins the NDJSON framing, work sharing in
# the stats trailer, the all-cached repeat sweep, the oversized-grid 400, and
# the sweep counters on /metrics. Requires curl and sed only.
#
# RBCASTD_PORT overrides the daemon port (each smoke script defaults to
# a distinct one so `make -j` can run them side by side); SMOKE_LOG_DIR,
# when set, receives the daemon log so CI can upload it on failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
LOG="$LOGDIR/sweep-rbcastd.log"
PORT="${RBCASTD_PORT:-18380}"
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "sweep-smoke: FAIL: $*" >&2
    echo "--- rbcastd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd

"$TMP/rbcastd" -addr "127.0.0.1:$PORT" >"$LOG" 2>&1 &
PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="rbcastd listening" addr=\([^ ]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "daemon never reported its address"
BASE="http://$ADDR"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "/healthz not ok"

# The grid: flood on a 16x12 torus, a band of crash faults, T x crash-round.
# T is dead for flood, so the engine must share results across that axis.
CONFIG='"config":{"width":16,"height":12,"radius":1,"protocol":"flood","value":1}'
PLAN_T1_C2='"plan":{"placement":"band","strategy":"crash","crash_round":2}'
SWEEP="{\"base\":{$CONFIG,\"plan\":{\"placement\":\"band\",\"strategy\":\"crash\"}},\"axes\":{\"ts\":[0,1],\"crash_rounds\":[1,2,3]}}"

# Scalar run first: element (t=1, crash_round=2) executed outside any sweep.
RUN_T1_C2="{\"config\":{\"width\":16,\"height\":12,\"radius\":1,\"protocol\":\"flood\",\"t\":1,\"value\":1},$PLAN_T1_C2}"
curl -fsS -D "$TMP/h1" -H 'Content-Type: application/json' \
    -d "$RUN_T1_C2" "$BASE/v1/run" >"$TMP/run1" || fail "scalar /v1/run failed"
grep -qi '^X-Rbcast-Cache: miss' "$TMP/h1" || fail "scalar run was not a cache miss"
FP_RUN=$(sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p' "$TMP/run1")
[ -n "$FP_RUN" ] || fail "scalar run carries no fingerprint"

# The sweep: 6 elements as NDJSON — header, elements in grid order, trailer.
curl -fsS -D "$TMP/hs" -H 'Content-Type: application/json' \
    -d "$SWEEP" "$BASE/v1/sweep" >"$TMP/sweep1" || fail "/v1/sweep failed"
grep -qi '^Content-Type: application/x-ndjson' "$TMP/hs" || fail "sweep is not NDJSON"
head -n 1 "$TMP/sweep1" | grep -q '"elements":6' || fail "sweep did not plan 6 elements"
[ "$(wc -l <"$TMP/sweep1")" -eq 8 ] || fail "sweep stream is not header + 6 elements + trailer"
grep -q '"error"' "$TMP/sweep1" && fail "sweep reported an element error"

# The pre-run element must be served from the cache the scalar run filled,
# with the fingerprint the scalar surface computed and a byte-identical
# result payload.
grep "\"fingerprint\":\"$FP_RUN\"" "$TMP/sweep1" >"$TMP/el_t1c2" \
    || fail "sweep grid misses the scalar run's fingerprint"
grep -q '"cached":true' "$TMP/el_t1c2" || fail "pre-run element was re-simulated"
sed 's/.*"result"://; s/,"cached":true}$//' "$TMP/el_t1c2" >"$TMP/res_sweep"
sed 's/.*"result"://; s/}$//' "$TMP/run1" >"$TMP/res_run"
cmp -s "$TMP/res_sweep" "$TMP/res_run" || fail "sweep element diverges from the scalar run's bytes"

# The dead T axis must have been shared: ≤ 3 simulations for 5 fresh elements.
SHARED=$(tail -n 1 "$TMP/sweep1" | sed -n 's/.*"shared_results":\([0-9]*\).*/\1/p')
[ "${SHARED:-0}" -ge 2 ] 2>/dev/null || fail "shared_results = ${SHARED:-unset}, want >= 2"

# A sweep-computed element (t=0, crash_round=1: grid index 0) re-requested
# through /v1/run must be a cache hit under the fingerprint the sweep streamed.
FP_EL0=$(sed -n '2p' "$TMP/sweep1" | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p')
[ -n "$FP_EL0" ] || fail "element 0 carries no fingerprint"
RUN_T0_C1='{"config":{"width":16,"height":12,"radius":1,"protocol":"flood","value":1},"plan":{"placement":"band","strategy":"crash","crash_round":1}}'
curl -fsS -D "$TMP/h2" -H 'Content-Type: application/json' \
    -d "$RUN_T0_C1" "$BASE/v1/run" >"$TMP/run2" || fail "post-sweep /v1/run failed"
grep -qi '^X-Rbcast-Cache: hit' "$TMP/h2" || fail "sweep did not populate the scalar cache"
grep -q "\"fingerprint\":\"$FP_EL0\"" "$TMP/run2" \
    || fail "scalar fingerprint differs from the sweep's element 0"

# A repeated sweep is a pure cache read: every element cached, 0 simulations.
curl -fsS -H 'Content-Type: application/json' -d "$SWEEP" "$BASE/v1/sweep" >"$TMP/sweep2" \
    || fail "repeat /v1/sweep failed"
[ "$(grep -c '"cached":true' "$TMP/sweep2")" -eq 6 ] || fail "repeat sweep re-simulated"
tail -n 1 "$TMP/sweep2" | grep -q '"simulations":0' || fail "repeat sweep counted simulations"

# An oversized grid must be rejected up front with a 400.
BIG="{\"base\":{$CONFIG,\"plan\":{}},\"axes\":{\"ts\":[0,1,2,3,4,5,6,7,8,9],\"seeds\":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25],\"crash_rounds\":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20]}}"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
    -d "$BIG" "$BASE/v1/sweep")
[ "$CODE" = "400" ] || fail "oversized grid got $CODE, want 400"

# Metrics must reflect both sweeps.
curl -fsS "$BASE/metrics" >"$TMP/metrics" || fail "/metrics failed"
grep -q 'rbcastd_sweeps_total 2' "$TMP/metrics" || fail "sweeps_total is not 2"
grep -q 'rbcastd_sweep_elements_total 12' "$TMP/metrics" || fail "sweep_elements_total is not 12"
SHARED_M=$(awk '$1 == "rbcastd_sweep_shared_results_total" {print $2}' "$TMP/metrics")
[ "${SHARED_M:-0}" -ge 2 ] 2>/dev/null || fail "sweep_shared_results_total = ${SHARED_M:-unset}, want >= 2"

echo "sweep-smoke: ok ($BASE)"
