#!/bin/sh
# trace_smoke.sh — end-to-end smoke test for the observability surface
# (`make trace-smoke`).
#
# Runs the same traced scenario through the CLI (-trace-out) and through
# rbcastd's GET /v1/jobs/{id}/trace, and checks the two JSONL dumps are
# byte-identical (one deterministic run, one lossless encoding). Also
# checks: repeated trace GETs are byte-identical, commit events carry
# certificates, untraced elements 404, unknown jobs 404, and /metrics
# exposes the per-route duration histograms. Requires curl.
#
# RBCASTD_PORT overrides the daemon port (each smoke script defaults to
# a distinct one so `make -j` can run them side by side); SMOKE_LOG_DIR,
# when set, receives the daemon log so CI can upload it on failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
LOG="$LOGDIR/trace-rbcastd.log"
PORT="${RBCASTD_PORT:-18180}"
PID=""
# Reap the daemon on every exit path: kill alone can leave it running just
# long enough to hold the port against the next CI step, so wait for it.
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "trace-smoke: FAIL: $*" >&2
    [ -f "$LOG" ] && { echo "--- rbcastd log ---" >&2; cat "$LOG" >&2; }
    exit 1
}

"${GO:-go}" build -o "$TMP/broadcast-sim" ./cmd/broadcast-sim
"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd

# CLI dump of the canonical traced scenario (bv4 at threshold, greedy
# silent band) — the same scenario the daemon runs below.
"$TMP/broadcast-sim" -protocol bv4 -t 2 -value 1 -faults greedy -strategy silent \
    -trace-out "$TMP/cli.jsonl" >/dev/null || fail "CLI traced run failed"
[ -s "$TMP/cli.jsonl" ] || fail "CLI wrote an empty trace"
head -n 1 "$TMP/cli.jsonl" | grep -q '^{"round":' || fail "trace lines do not start with {\"round\":"
grep -q '"kind":"commit"' "$TMP/cli.jsonl" || fail "trace carries no commit events"
grep -q '"certificate"' "$TMP/cli.jsonl" || fail "commit events carry no certificates"

"$TMP/rbcastd" -addr "127.0.0.1:$PORT" >"$LOG" 2>&1 &
PID=$!
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="rbcastd listening" addr=\([^ ]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "daemon never reported its address"
BASE="http://$ADDR"

TRACED='{"config":{"width":16,"height":10,"radius":1,"protocol":"bv4","t":2,"value":1,"trace":true},"plan":{"placement":"greedy-band","strategy":"silent"}}'
UNTRACED='{"config":{"width":16,"height":10,"radius":1,"protocol":"flood","value":1},"plan":{}}'

# Batch with a traced element (0) and an untraced one (1).
curl -fsS -H 'Content-Type: application/json' \
    -d "{\"jobs\":[$TRACED,$UNTRACED]}" "$BASE/v1/batch" >"$TMP/ack" \
    || fail "/v1/batch submission failed"
JOB_URL=$(sed -n 's/.*"status_url":"\([^"]*\)".*/\1/p' "$TMP/ack")
[ -n "$JOB_URL" ] || fail "batch ack carries no status_url"
i=0
while [ $i -lt 100 ]; do
    curl -fsS "$BASE$JOB_URL" >"$TMP/job"
    grep -q '"state":"done"' "$TMP/job" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q '"state":"done"' "$TMP/job" || fail "batch job never finished"

# The daemon's trace must be byte-identical to the CLI's: same
# deterministic run, same lossless JSONL encoding.
curl -fsS "$BASE$JOB_URL/trace?job=0" >"$TMP/srv1.jsonl" || fail "trace GET failed"
cmp -s "$TMP/cli.jsonl" "$TMP/srv1.jsonl" || fail "daemon trace differs from the CLI trace"

# Repeated GETs are byte-identical (the trace is stored, not re-derived).
curl -fsS "$BASE$JOB_URL/trace?job=0" >"$TMP/srv2.jsonl" || fail "second trace GET failed"
cmp -s "$TMP/srv1.jsonl" "$TMP/srv2.jsonl" || fail "repeated trace GETs differ"

# Content type is NDJSON.
curl -fsS -D "$TMP/th" -o /dev/null "$BASE$JOB_URL/trace?job=0"
grep -qi '^Content-Type: application/x-ndjson' "$TMP/th" || fail "trace content type is not application/x-ndjson"

# Error contracts: untraced element and unknown job both 404.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE$JOB_URL/trace?job=1")
[ "$CODE" = "404" ] || fail "untraced element returned $CODE, want 404"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs/nope/trace")
[ "$CODE" = "404" ] || fail "unknown job returned $CODE, want 404"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE$JOB_URL/trace?job=99")
[ "$CODE" = "400" ] || fail "out-of-range element returned $CODE, want 400"

# Request IDs are echoed on every response.
grep -qi '^X-Request-Id:' "$TMP/th" || fail "responses carry no X-Request-Id"

# The duration histograms cover the routes exercised above.
curl -fsS "$BASE/metrics" >"$TMP/metrics" || fail "/metrics failed"
grep -q '# TYPE rbcastd_request_duration_seconds histogram' "$TMP/metrics" \
    || fail "duration histogram family missing"
grep -q 'rbcastd_request_duration_seconds_bucket{path="/v1/jobs/{id}/trace",le="+Inf"}' "$TMP/metrics" \
    || fail "trace-route histogram missing"
grep -q 'rbcastd_request_duration_seconds_count{path="/v1/batch"} 1' "$TMP/metrics" \
    || fail "batch-route histogram count is not 1"

kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    [ $i -ge 100 ] && fail "daemon did not exit after SIGTERM"
    sleep 0.1
    i=$((i + 1))
done
wait "$PID" 2>/dev/null || fail "daemon exited nonzero on SIGTERM"
PID=""

echo "trace-smoke: ok ($BASE)"
