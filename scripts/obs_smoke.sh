#!/bin/sh
# obs_smoke.sh — flight-recorder smoke test for rbcastd (`make obs-smoke`).
#
# Boots the daemon with the flight recorder armed (-flight-recorder 64) and
# a deliberately low slow-request threshold (-slow-request 1ms), then runs
# cmd/loadgen -progress, which asserts the observability contract end to
# end: a batch job streams live, monotone progress events over
# GET /v1/jobs/{id}/events through client.WatchJob, and GET /debug/requests
# holds a sweep timeline whose engine phase is nonzero and whose child
# spans account for the request's duration. The script then asserts the
# daemon logged slow-request WARN lines carrying the per-phase breakdown,
# that rbcastd_phase_seconds reached /metrics, and a clean drain. No
# curl/jq dependency — loadgen is the whole client side.
#
# RBCASTD_PORT overrides the daemon port (each smoke script defaults to
# a distinct one so `make -j` can run them side by side); SMOKE_LOG_DIR,
# when set, receives the daemon log so CI can upload it on failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
LOG="$LOGDIR/obs-rbcastd.log"
PORT="${RBCASTD_PORT:-18480}"
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    echo "--- rbcastd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd
"${GO:-go}" build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/rbcastd" -addr "127.0.0.1:$PORT" -flight-recorder 64 -slow-request 1ms \
    >"$LOG" 2>&1 &
PID=$!

# The daemon logs msg="rbcastd listening" addr=127.0.0.1:PORT once bound.
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/.*msg="rbcastd listening" addr=\([^ ]*\).*/\1/p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "daemon never reported its address"

"$TMP/loadgen" -addr "http://$ADDR" -progress -timeout 2m \
    || fail "loadgen -progress reported a contract violation"

# The 1ms threshold makes real work slow by definition: the engine-backed
# requests must have produced WARN lines with the per-phase breakdown.
grep -q 'msg="slow request"' "$LOG" \
    || fail "no slow-request WARN line despite a 1ms threshold"
grep 'msg="slow request"' "$LOG" | grep -q 'phases=' \
    || fail "slow-request WARN line carries no per-phase breakdown"

kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    [ $i -ge 100 ] && fail "daemon did not exit after SIGTERM"
    sleep 0.1
    i=$((i + 1))
done
wait "$PID" 2>/dev/null || fail "daemon exited nonzero on SIGTERM"
PID=""
grep -q 'drained, bye' "$LOG" || fail "daemon did not report a clean drain"

echo "obs-smoke: ok (http://$ADDR)"
