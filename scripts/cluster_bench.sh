#!/bin/sh
# cluster_bench.sh — fleet scale-out gate (`make cluster-bench`, nightly
# CI only: the assertion is a wall-clock ratio and pre-merge runners are
# too noisy for timing gates).
#
# Measures loadgen -throughput (distinct-fingerprint scenarios, so the
# cache never short-circuits the work) against one rbcastd, then against
# a 3-node fleet, and fails unless the fleet sustains >= 2x the
# single-node rate. Every daemon runs under GOMAXPROCS=1 so each member
# models one machine's worth of capacity — on a many-core host an
# unbounded single daemon would soak up every core itself and the fleet
# would have nothing left to prove.
#
# BENCH_DURATION (default 5s) sets the measurement window per
# configuration. RBCASTD_PORT (default 18680) is the base port; the fleet
# uses base+1..base+3. SMOKE_LOG_DIR, when set, receives the daemon logs.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOGDIR="${SMOKE_LOG_DIR:-$TMP}"
mkdir -p "$LOGDIR"
BASE="${RBCASTD_PORT:-18680}"
DUR="${BENCH_DURATION:-5s}"
P0=$BASE
P1=$((BASE + 1))
P2=$((BASE + 2))
P3=$((BASE + 3))
U1="http://127.0.0.1:$P1"
U2="http://127.0.0.1:$P2"
U3="http://127.0.0.1:$P3"
PEERS="$U1,$U2,$U3"

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT
trap 'exit 1' INT TERM

fail() {
    echo "cluster-bench: FAIL: $*" >&2
    for f in "$LOGDIR"/bench-*.log; do
        [ -f "$f" ] || continue
        echo "--- $f ---" >&2
        cat "$f" >&2
    done
    exit 1
}

"${GO:-go}" build -o "$TMP/rbcastd" ./cmd/rbcastd
"${GO:-go}" build -o "$TMP/loadgen" ./cmd/loadgen

# wait_listening <log> <pid>
wait_listening() {
    i=0
    while [ $i -lt 100 ]; do
        grep -q 'msg="rbcastd listening"' "$1" 2>/dev/null && return 0
        kill -0 "$2" 2>/dev/null || fail "daemon exited before binding ($1)"
        sleep 0.1
        i=$((i + 1))
    done
    fail "daemon never reported its address ($1)"
}

# rate <loadgen output file>: extract the machine-readable runs/s figure.
rate() {
    sed -n 's/.*throughput_runs_per_sec=\([0-9.]*\).*/\1/p' "$1" | head -n 1
}

# --- single node, one core ---
GOMAXPROCS=1 "$TMP/rbcastd" -addr "127.0.0.1:$P0" >"$LOGDIR/bench-single.log" 2>&1 &
SINGLE_PID=$!
PIDS="$SINGLE_PID"
wait_listening "$LOGDIR/bench-single.log" "$SINGLE_PID"
"$TMP/loadgen" -addr "http://127.0.0.1:$P0" -throughput -duration "$DUR" -concurrency 9 \
    >"$TMP/single.out" 2>&1 || { cat "$TMP/single.out" >&2; fail "single-node throughput run"; }
cat "$TMP/single.out"
SINGLE=$(rate "$TMP/single.out")
[ -n "$SINGLE" ] || fail "single-node run printed no throughput_runs_per_sec"
kill "$SINGLE_PID" 2>/dev/null || true
wait "$SINGLE_PID" 2>/dev/null || true
PIDS=""

# --- 3-node fleet, one core each ---
for i in 1 2 3; do
    port=$(eval "echo \$P$i")
    url=$(eval "echo \$U$i")
    GOMAXPROCS=1 "$TMP/rbcastd" -addr "127.0.0.1:$port" -self "$url" -peers "$PEERS" \
        >"$LOGDIR/bench-node$i.log" 2>&1 &
    PIDS="$PIDS $!"
done
for i in 1 2 3; do
    set -- $PIDS
    shift $((i - 1))
    wait_listening "$LOGDIR/bench-node$i.log" "$1"
done
"$TMP/loadgen" -fleet "$PEERS" -throughput -duration "$DUR" -concurrency 9 \
    >"$TMP/fleet.out" 2>&1 || { cat "$TMP/fleet.out" >&2; fail "fleet throughput run"; }
cat "$TMP/fleet.out"
FLEET=$(rate "$TMP/fleet.out")
[ -n "$FLEET" ] || fail "fleet run printed no throughput_runs_per_sec"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $FLEET / $SINGLE }")
echo "cluster-bench: single=$SINGLE runs/s fleet=$FLEET runs/s speedup=${SPEEDUP}x"
awk "BEGIN { exit !($FLEET >= 2.0 * $SINGLE) }" \
    || fail "fleet throughput $FLEET runs/s is under 2x the single-node $SINGLE runs/s"
echo "cluster-bench: ok (>= 2x scale-out)"
