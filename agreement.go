package rbcast

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/fault"
	"repro/internal/topology"
)

// AgreementConfig describes a Byzantine-agreement run built on reliable
// broadcast: each committee member broadcasts its binary input in its own
// instance, and every node decides the majority of the commonly-received
// vector. The radio medium prevents even Byzantine committee members from
// equivocating (§V), so per-instance outcomes are consistent.
type AgreementConfig struct {
	// Width, Height, Radius describe the torus network.
	Width, Height, Radius int
	// Protocol selects the underlying broadcast (ProtocolBV4 or
	// ProtocolBV2 for Byzantine fault tolerance).
	Protocol Protocol
	// T is the per-neighborhood fault bound.
	T int
	// Committee lists the input holders; Inputs their binary inputs.
	Committee []Node
	Inputs    []byte
	// ByzantineNodes are corrupted (committee members allowed) and run
	// the given strategy.
	ByzantineNodes []Node
	// Strategy selects the Byzantine behaviour (StrategySilent,
	// StrategyLiar, StrategyForger); defaults to StrategySilent.
	Strategy Strategy
}

// AgreementResult reports the outcome.
type AgreementResult struct {
	// Decisions maps honest nodes to their agreement decision.
	Decisions map[Node]byte
	// Agreement reports whether all honest nodes decided identically.
	Agreement bool
	// Validity reports whether a uniform honest-committee input was
	// decided (vacuously true otherwise).
	Validity bool
	// Rounds and Broadcasts are engine statistics.
	Rounds, Broadcasts int
}

// Agree runs Byzantine agreement over the radio network.
func Agree(cfg AgreementConfig) (AgreementResult, error) {
	base := Config{
		Width: cfg.Width, Height: cfg.Height, Radius: cfg.Radius,
		Protocol: cfg.Protocol,
	}
	// Agreement committees are located by grid coordinate, so this surface
	// stays on the torus family.
	net, err := base.torusNetwork()
	if err != nil {
		return AgreementResult{}, err
	}
	kind, err := base.kind()
	if err != nil {
		return AgreementResult{}, err
	}
	committee := make([]topology.NodeID, len(cfg.Committee))
	for i, n := range cfg.Committee {
		committee[i] = net.IDOf(gridCoord(n.X, n.Y))
	}
	var strat fault.Strategy
	switch cfg.Strategy {
	case 0, StrategySilent, StrategyCrash:
		strat = fault.Silent
	case StrategyLiar:
		strat = fault.Liar
	case StrategyForger:
		strat = fault.Forger
	default:
		return AgreementResult{}, fmt.Errorf("rbcast: strategy %d not supported for agreement", int(cfg.Strategy))
	}
	byz := make(map[topology.NodeID]fault.Strategy, len(cfg.ByzantineNodes))
	for _, n := range cfg.ByzantineNodes {
		byz[net.IDOf(gridCoord(n.X, n.Y))] = strat
	}
	res, err := agreement.Run(agreement.Config{
		Net:       net,
		Committee: committee,
		Inputs:    cfg.Inputs,
		Kind:      kind,
		T:         cfg.T,
		Byzantine: byz,
	})
	if err != nil {
		return AgreementResult{}, err
	}
	out := AgreementResult{
		Decisions:  make(map[Node]byte, len(res.Decisions)),
		Agreement:  res.Agreement,
		Validity:   res.Validity,
		Rounds:     res.Stats.Rounds,
		Broadcasts: res.Stats.Broadcasts,
	}
	for id, d := range res.Decisions {
		c := net.CoordOf(id)
		out.Decisions[Node{X: c.X, Y: c.Y}] = d
	}
	return out, nil
}
