package rbcast

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// sweepJobs builds the threshold-sweep workload: every protocol × t cell at
// r = 1 against the strongest band adversary the budget admits.
func sweepJobs() []Job {
	var jobs []Job
	r := 1
	for t := 0; t <= MinImpossibleCrashLinf(r); t++ {
		for _, proto := range []Protocol{ProtocolBV4, ProtocolBV2, ProtocolCPA} {
			cfg := Config{Width: 16, Height: 10, Radius: r, Protocol: proto, T: t, Value: 1}
			plan := FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent, Budget: t}
			if t >= MinImpossibleByzantineLinf(r) {
				plan.Placement = PlaceCheckerboardBand
			}
			if t == 0 {
				plan = FaultPlan{}
			}
			jobs = append(jobs, Job{Config: cfg, Plan: plan})
		}
		cfg := Config{Width: 16, Height: 10, Radius: r, Protocol: ProtocolFlood, T: t, Value: 1}
		plan := FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategyCrash, Budget: t}
		if t >= MinImpossibleCrashLinf(r) {
			plan.Placement = PlaceBand
		}
		if t == 0 {
			plan = FaultPlan{}
		}
		jobs = append(jobs, Job{Config: cfg, Plan: plan})
	}
	return jobs
}

// stripWall zeroes the only nondeterministic Result field so runs compare
// with reflect.DeepEqual.
func stripWall(r Result) Result {
	r.Metrics.Wall = 0
	return r
}

func TestRunBatchMatchesSequentialLoop(t *testing.T) {
	jobs := sweepJobs()
	batch := RunBatch(jobs, BatchOptions{Workers: 4})
	if len(batch) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(batch), len(jobs))
	}
	for i, job := range jobs {
		want, err := Run(job.Config, job.Plan)
		if err != nil {
			t.Fatalf("job %d sequential: %v", i, err)
		}
		if batch[i].Err != nil {
			t.Fatalf("job %d batch: %v", i, batch[i].Err)
		}
		if !reflect.DeepEqual(stripWall(batch[i].Result), stripWall(want)) {
			t.Errorf("job %d: batch result diverges from sequential run", i)
		}
	}
}

func TestRunBatchWorkerCountInvariance(t *testing.T) {
	jobs := sweepJobs()[:8]
	base := RunBatch(jobs, BatchOptions{Workers: 1})
	for _, workers := range []int{0, 2, 7, 32} {
		got := RunBatch(jobs, BatchOptions{Workers: workers})
		for i := range jobs {
			if got[i].Err != nil || base[i].Err != nil {
				t.Fatalf("workers=%d job %d: err %v / %v", workers, i, got[i].Err, base[i].Err)
			}
			if !reflect.DeepEqual(stripWall(got[i].Result), stripWall(base[i].Result)) {
				t.Errorf("workers=%d: job %d result depends on worker count", workers, i)
			}
		}
	}
}

func TestRunBatchPerJobErrorCapture(t *testing.T) {
	good := Config{Width: 12, Height: 12, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	bad := good
	bad.Metric = Metric(99)
	jobs := []Job{{Config: good}, {Config: bad}, {Config: good}}
	results := RunBatch(jobs, BatchOptions{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("bad job must carry its error")
	}
	if !results[0].Result.AllCorrect() || !results[2].Result.AllCorrect() {
		t.Error("good jobs must still complete around the failing one")
	}
}

func TestRunBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := sweepJobs()[:5]
	results := RunBatch(jobs, BatchOptions{Workers: 2, Context: ctx})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestRunBatchMidBatchCancellation cancels the context in the window
// between a job's dispatch and its start, via the batchJobDispatched seam,
// with Workers=1 so dispatch order is the job order. The split must be
// exact: jobs finished before the cancellation keep their results, the job
// whose dispatch triggered it and everything after are marked
// context.Canceled.
func TestRunBatchMidBatchCancellation(t *testing.T) {
	const cancelAt = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batchJobDispatched = func(i int) {
		if i == cancelAt {
			cancel()
		}
	}
	defer func() { batchJobDispatched = nil }()

	jobs := sweepJobs()[:5]
	results := RunBatch(jobs, BatchOptions{Workers: 1, Context: ctx})
	for i, r := range results[:cancelAt] {
		if r.Err != nil {
			t.Errorf("job %d finished before cancellation but has err %v", i, r.Err)
			continue
		}
		want, err := Run(jobs[i].Config, jobs[i].Plan)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripWall(r.Result), stripWall(want)) {
			t.Errorf("job %d: completed result lost after cancellation", i)
		}
	}
	for i, r := range results[cancelAt:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", cancelAt+i, r.Err)
		}
		if r.Result.Honest != 0 || r.Result.Decisions != nil {
			t.Errorf("job %d: cancelled job carries a result", cancelAt+i)
		}
	}
}

func TestRunBatchEmpty(t *testing.T) {
	if got := RunBatch(nil, BatchOptions{}); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}
