package rbcast

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestEnumTextRoundTrip(t *testing.T) {
	protocols := []Protocol{0, ProtocolFlood, ProtocolCPA, ProtocolBV4, ProtocolBV2, ProtocolBracha, ProtocolBrachaAuth}
	for _, v := range protocols {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("Protocol(%d).MarshalText: %v", v, err)
		}
		var back Protocol
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("Protocol %d round-trips to %d (err %v)", v, back, err)
		}
	}
	topologies := []Topology{0, TopologyTorus, TopologyRGG, TopologyCustom}
	for _, v := range topologies {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("Topology(%d).MarshalText: %v", v, err)
		}
		var back Topology
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("Topology %d round-trips to %d (err %v)", v, back, err)
		}
	}
	metrics := []Metric{0, MetricLinf, MetricL2}
	for _, v := range metrics {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("Metric(%d).MarshalText: %v", v, err)
		}
		var back Metric
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("Metric %d round-trips to %d (err %v)", v, back, err)
		}
	}
	placements := []Placement{0, PlaceNone, PlaceBand, PlaceCheckerboardBand, PlaceGreedyBand, PlaceRandomBounded, PlacePercolation}
	for _, v := range placements {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("Placement(%d).MarshalText: %v", v, err)
		}
		var back Placement
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("Placement %d round-trips to %d (err %v)", v, back, err)
		}
	}
	strategies := []Strategy{0, StrategyCrash, StrategySilent, StrategyLiar, StrategyForger, StrategySpoofer, StrategyEquivocator}
	for _, v := range strategies {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("Strategy(%d).MarshalText: %v", v, err)
		}
		var back Strategy
		if err := back.UnmarshalText(text); err != nil || back != v {
			t.Errorf("Strategy %d round-trips to %d (err %v)", v, back, err)
		}
	}
}

// TestEnumTextRoundTripExhaustive walks every enum's full range — raw
// values upward until String() falls back to the "Kind(%d)" placeholder —
// and round-trips each through MarshalText/UnmarshalText. Unlike the
// explicit lists above, this discovers new enum values automatically: a
// future constant whose author extends String() but forgets the encoders
// fails here without this test needing an edit. The atLeast floors guard
// the discovery itself — if String() stops covering known values, the
// walk would end early and the floor trips.
func TestEnumTextRoundTripExhaustive(t *testing.T) {
	type enum struct {
		name      string
		atLeast   int
		str       func(int) string
		roundTrip func(int) (int, error)
	}
	enums := []enum{
		{"Protocol", 6,
			func(i int) string { return Protocol(i).String() },
			func(i int) (int, error) {
				text, err := Protocol(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back Protocol
				err = back.UnmarshalText(text)
				return int(back), err
			}},
		{"Topology", 3,
			func(i int) string { return Topology(i).String() },
			func(i int) (int, error) {
				text, err := Topology(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back Topology
				err = back.UnmarshalText(text)
				return int(back), err
			}},
		{"Metric", 2,
			func(i int) string { return Metric(i).String() },
			func(i int) (int, error) {
				text, err := Metric(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back Metric
				err = back.UnmarshalText(text)
				return int(back), err
			}},
		{"Placement", 6,
			func(i int) string { return Placement(i).String() },
			func(i int) (int, error) {
				text, err := Placement(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back Placement
				err = back.UnmarshalText(text)
				return int(back), err
			}},
		{"Strategy", 6,
			func(i int) string { return Strategy(i).String() },
			func(i int) (int, error) {
				text, err := Strategy(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back Strategy
				err = back.UnmarshalText(text)
				return int(back), err
			}},
		{"EventKind", 6,
			func(i int) string { return EventKind(i).String() },
			func(i int) (int, error) {
				text, err := EventKind(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back EventKind
				err = back.UnmarshalText(text)
				return int(back), err
			}},
		{"CommitRule", 7,
			func(i int) string { return CommitRule(i).String() },
			func(i int) (int, error) {
				text, err := CommitRule(i).MarshalText()
				if err != nil {
					return 0, err
				}
				var back CommitRule
				err = back.UnmarshalText(text)
				return int(back), err
			}},
	}
	for _, e := range enums {
		e := e
		t.Run(e.name, func(t *testing.T) {
			count := 0
			for raw := 1; ; raw++ {
				if strings.Contains(e.str(raw), "(") {
					break
				}
				count++
				back, err := e.roundTrip(raw)
				if err != nil {
					t.Errorf("%s value %d (%s) does not round-trip: %v", e.name, raw, e.str(raw), err)
					continue
				}
				if back != raw {
					t.Errorf("%s value %d (%s) round-trips to %d", e.name, raw, e.str(raw), back)
				}
			}
			if count < e.atLeast {
				t.Errorf("discovered only %d %s values, expected at least %d — String() lost coverage", count, e.name, e.atLeast)
			}
			if back, err := e.roundTrip(0); err != nil || back != 0 {
				t.Errorf("%s zero value round-trips to %d (err %v)", e.name, back, err)
			}
		})
	}
}

func TestEnumTextRejectsInvalid(t *testing.T) {
	if _, err := Protocol(99).MarshalText(); err == nil {
		t.Error("invalid protocol must not marshal")
	}
	if _, err := Metric(99).MarshalText(); err == nil {
		t.Error("invalid metric must not marshal")
	}
	var p Protocol
	if err := p.UnmarshalText([]byte("carrier-pigeon")); err == nil {
		t.Error("unknown protocol name must not unmarshal")
	}
	var m Metric
	if err := m.UnmarshalText([]byte("l3")); err == nil {
		t.Error("unknown metric name must not unmarshal")
	}
	if _, err := Topology(99).MarshalText(); err == nil {
		t.Error("invalid topology must not marshal")
	}
	var topo Topology
	if err := topo.UnmarshalText([]byte("hypercube")); err == nil {
		t.Error("unknown topology name must not unmarshal")
	}
	var pl Placement
	if err := pl.UnmarshalText([]byte("everywhere")); err == nil {
		t.Error("unknown placement name must not unmarshal")
	}
	var s Strategy
	if err := s.UnmarshalText([]byte("helpful")); err == nil {
		t.Error("unknown strategy name must not unmarshal")
	}
}

func TestNodeTextRoundTrip(t *testing.T) {
	for _, n := range []Node{{0, 0}, {3, 4}, {-2, 17}} {
		text, err := n.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Node
		if err := back.UnmarshalText(text); err != nil || back != n {
			t.Errorf("node %v round-trips to %v via %q (err %v)", n, back, text, err)
		}
	}
	var n Node
	for _, bad := range []string{"", "3", "3,", ",4", "a,b", "3;4"} {
		if err := n.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("node text %q must not parse", bad)
		}
	}
}

// fullConfig sets every Config field to a non-zero value, so round-trip
// and sensitivity tests cover the whole struct.
func fullConfig() Config {
	return Config{
		Width: 20, Height: 14, Radius: 2,
		Metric: MetricL2, Protocol: ProtocolBV4,
		T: 3, Value: 1, SourceX: 5, SourceY: 6, MaxRounds: 99,
		Concurrent: false, ExactEvidence: true,
		LossRate: 0.25, Retransmit: 3, MediumSeed: 42,
		SpoofingPossible: true, LockStep: true,
	}
}

// fullPlan sets every FaultPlan field to a non-zero value.
func fullPlan() FaultPlan {
	return FaultPlan{
		Placement: PlaceRandomBounded, Strategy: StrategyForger,
		Budget: 2, Count: 5, Probability: 0.125, CrashRound: 3, Seed: 7,
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	for _, cfg := range []Config{{}, fullConfig(), {Width: 16, Height: 10, Radius: 1, Protocol: ProtocolFlood}} {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("marshal %+v: %v", cfg, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != cfg {
			t.Errorf("config round-trip drifted:\n  in  %+v\n  out %+v\n  via %s", cfg, back, data)
		}
	}
	if data, _ := json.Marshal(Config{}); string(data) != "{}" {
		t.Errorf("zero config marshals to %s, want {}", data)
	}
}

func TestFaultPlanJSONRoundTrip(t *testing.T) {
	for _, plan := range []FaultPlan{{}, fullPlan(), {Placement: PlaceGreedyBand, Strategy: StrategySilent, Budget: 2}} {
		data, err := json.Marshal(plan)
		if err != nil {
			t.Fatalf("marshal %+v: %v", plan, err)
		}
		var back FaultPlan
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != plan {
			t.Errorf("plan round-trip drifted:\n  in  %+v\n  out %+v\n  via %s", plan, back, data)
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	cfg := Config{Width: 16, Height: 10, Radius: 1, Protocol: ProtocolBV4, T: MaxByzantineLinf(1), Value: 1}
	plan := FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategyForger}
	res, err := Run(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Error("result does not survive a JSON round trip")
	}
	// The encoding must be deterministic — the serving layer relies on
	// byte-identical bodies for identical results.
	again, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("result JSON is not byte-deterministic")
	}
}

func TestFingerprintFieldOrderIndependence(t *testing.T) {
	// The same scenario spelled with different JSON key orderings must
	// decode to the same fingerprint.
	a := `{"width":16,"height":10,"radius":1,"protocol":"bv4","t":2,"value":1}`
	b := `{"value":1,"t":2,"protocol":"bv4","radius":1,"height":10,"width":16}`
	var ca, cb Config
	if err := json.Unmarshal([]byte(a), &ca); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &cb); err != nil {
		t.Fatal(err)
	}
	fa := Job{Config: ca}.Fingerprint()
	fb := Job{Config: cb}.Fingerprint()
	if fa != fb {
		t.Errorf("field ordering changed the fingerprint: %s vs %s", fa, fb)
	}
}

func TestFingerprintZeroValueAliases(t *testing.T) {
	base := Config{Width: 16, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1}
	aliases := []struct {
		name string
		a, b Job
	}{
		{"metric 0 ≡ linf",
			Job{Config: base},
			Job{Config: func() Config { c := base; c.Metric = MetricLinf; return c }()}},
		{"retransmit 0 ≡ 1",
			Job{Config: base},
			Job{Config: func() Config { c := base; c.Retransmit = 1; return c }()}},
		{"topology 0 ≡ torus",
			Job{Config: base},
			Job{Config: func() Config { c := base; c.Topology = TopologyTorus; return c }()}},
		{"placement 0 ≡ none",
			Job{Config: base},
			Job{Config: base, Plan: FaultPlan{Placement: PlaceNone}}},
		{"strategy 0 ≡ crash",
			Job{Config: base, Plan: FaultPlan{Placement: PlaceBand}},
			Job{Config: base, Plan: FaultPlan{Placement: PlaceBand, Strategy: StrategyCrash}}},
	}
	for _, tt := range aliases {
		if fa, fb := tt.a.Fingerprint(), tt.b.Fingerprint(); fa != fb {
			t.Errorf("%s: fingerprints differ (%s vs %s)", tt.name, fa, fb)
		}
	}
}

func TestFingerprintSingleFieldSensitivity(t *testing.T) {
	base := Job{Config: fullConfig(), Plan: fullPlan()}
	mutations := []struct {
		name   string
		mutate func(*Job)
	}{
		{"width", func(j *Job) { j.Config.Width++ }},
		{"height", func(j *Job) { j.Config.Height++ }},
		{"radius", func(j *Job) { j.Config.Radius++ }},
		{"metric", func(j *Job) { j.Config.Metric = MetricLinf }},
		{"protocol", func(j *Job) { j.Config.Protocol = ProtocolBV2 }},
		{"t", func(j *Job) { j.Config.T++ }},
		{"value", func(j *Job) { j.Config.Value = 0 }},
		{"source_x", func(j *Job) { j.Config.SourceX++ }},
		{"source_y", func(j *Job) { j.Config.SourceY++ }},
		{"max_rounds", func(j *Job) { j.Config.MaxRounds++ }},
		{"concurrent", func(j *Job) { j.Config.Concurrent = true }},
		{"exact_evidence", func(j *Job) { j.Config.ExactEvidence = false }},
		{"loss_rate", func(j *Job) { j.Config.LossRate += 0.1 }},
		{"retransmit", func(j *Job) { j.Config.Retransmit++ }},
		{"medium_seed", func(j *Job) { j.Config.MediumSeed++ }},
		{"spoofing_possible", func(j *Job) { j.Config.SpoofingPossible = false }},
		{"lock_step", func(j *Job) { j.Config.LockStep = false }},
		// Trace stays false in fullConfig so the committed fingerprint
		// goldens stay valid; flipping it must still change the hash (a
		// traced result is a different cacheable artifact).
		{"trace", func(j *Job) { j.Config.Trace = true }},
		// Topology stays zero (torus) in fullConfig for the same reason;
		// switching the family appends the non-torus trailer.
		{"topology", func(j *Job) { j.Config.Topology = TopologyRGG }},
		{"placement", func(j *Job) { j.Plan.Placement = PlacePercolation }},
		{"strategy", func(j *Job) { j.Plan.Strategy = StrategyLiar }},
		{"budget", func(j *Job) { j.Plan.Budget++ }},
		{"count", func(j *Job) { j.Plan.Count++ }},
		{"probability", func(j *Job) { j.Plan.Probability += 0.1 }},
		{"crash_round", func(j *Job) { j.Plan.CrashRound++ }},
		{"seed", func(j *Job) { j.Plan.Seed++ }},
	}
	want := base.Fingerprint()
	seen := map[string]string{want: "base"}
	for _, tt := range mutations {
		j := base
		tt.mutate(&j)
		got := j.Fingerprint()
		if got == want {
			t.Errorf("changing %s did not change the fingerprint", tt.name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("mutations %s and %s collide", tt.name, prev)
		}
		seen[got] = tt.name
	}
}

// TestFingerprintGolden pins fingerprints across process restarts and
// releases: a hash drift here means every persistent cache keyed on
// Fingerprint silently invalidates, so it must be a deliberate,
// version-bumped decision (fingerprintVersion), not an accident.
func TestFingerprintGolden(t *testing.T) {
	jobs := []struct {
		name string
		job  Job
	}{
		{"zero", Job{}},
		{"flood-fault-free", Job{Config: Config{Width: 16, Height: 10, Radius: 1, Protocol: ProtocolFlood, Value: 1}}},
		{"bv4-greedy-band", Job{
			Config: Config{Width: 16, Height: 10, Radius: 1, Protocol: ProtocolBV4, T: 2, Value: 1},
			Plan:   FaultPlan{Placement: PlaceGreedyBand, Strategy: StrategySilent},
		}},
		{"everything-set", Job{Config: fullConfig(), Plan: fullPlan()}},
		{"lossy-percolation", Job{
			Config: Config{Width: 24, Height: 24, Radius: 2, Protocol: ProtocolCPA, T: 1, Value: 1, LossRate: 0.5, Retransmit: 4, MediumSeed: 9},
			Plan:   FaultPlan{Placement: PlacePercolation, Probability: 0.01, Seed: 3},
		}},
		{"rgg-flood", Job{
			Config: Config{Topology: TopologyRGG, Nodes: 64, RGGRadius: 0.22, TopologySeed: 1, Protocol: ProtocolFlood, Value: 1},
		}},
		{"custom-cycle", Job{
			Config: Config{Topology: TopologyCustom, Graph: &GraphSpec{Nodes: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}, Protocol: ProtocolCPA, T: 1, Value: 1},
		}},
		// Append-only: new jobs go at the end so earlier golden lines
		// stay byte-identical across regenerations.
		{"bracha-torus-equivocator", Job{
			Config: Config{Width: 5, Height: 5, Radius: 2, Protocol: ProtocolBracha, T: 8, Value: 1},
			Plan:   FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategyEquivocator, Count: 6, Seed: 9},
		}},
		{"bracha-auth-rgg", Job{
			Config: Config{Topology: TopologyRGG, Nodes: 32, RGGRadius: 0.3, TopologySeed: 2, Protocol: ProtocolBrachaAuth, T: 2, Value: 1, MaxRounds: 128},
			Plan:   FaultPlan{Placement: PlaceRandomBounded, Strategy: StrategySilent, Count: 2, Seed: 4},
		}},
	}
	var b strings.Builder
	for _, tt := range jobs {
		fmt.Fprintf(&b, "%s %s\n", tt.job.Fingerprint(), tt.name)
	}
	got := b.String()

	golden := filepath.Join("testdata", "fingerprints.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -run TestFingerprintGolden -update ./` to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("fingerprints drifted from %s:\n got:\n%s want:\n%s", golden, got, want)
	}
}

// TestFingerprintCanonicalEdges pins the custom-graph edge canonicalization:
// any spelling of the same undirected edge set — reversed endpoints,
// shuffled order — must share one fingerprint, and a genuinely different
// edge set must not.
func TestFingerprintCanonicalEdges(t *testing.T) {
	base := Config{Topology: TopologyCustom, Protocol: ProtocolFlood, Value: 1}
	spell := func(edges [][2]int) Job {
		c := base
		c.Graph = &GraphSpec{Nodes: 4, Edges: edges}
		return Job{Config: c}
	}
	a := spell([][2]int{{0, 1}, {1, 2}, {2, 3}})
	b := spell([][2]int{{3, 2}, {1, 0}, {2, 1}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equivalent edge spellings must fingerprint identically")
	}
	c := spell([][2]int{{0, 1}, {1, 2}, {1, 3}})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different edge sets must not collide")
	}
}

// TestFingerprintNonTorusSensitivity checks every non-torus trailer field
// changes the hash.
func TestFingerprintNonTorusSensitivity(t *testing.T) {
	base := Job{Config: Config{Topology: TopologyRGG, Nodes: 64, RGGRadius: 0.22, TopologySeed: 1, Source: 2, Protocol: ProtocolFlood, Value: 1}}
	want := base.Fingerprint()
	mutations := []struct {
		name   string
		mutate func(*Job)
	}{
		{"topology", func(j *Job) { j.Config.Topology = TopologyCustom }},
		{"nodes", func(j *Job) { j.Config.Nodes++ }},
		{"rgg_radius", func(j *Job) { j.Config.RGGRadius += 0.01 }},
		{"topology_seed", func(j *Job) { j.Config.TopologySeed++ }},
		{"source", func(j *Job) { j.Config.Source++ }},
	}
	for _, tt := range mutations {
		j := base
		tt.mutate(&j)
		if j.Fingerprint() == want {
			t.Errorf("changing %s did not change the fingerprint", tt.name)
		}
	}
}

// TestConfigJSONRoundTripNonTorus covers the pointer-bearing non-torus
// configurations the struct-equality round-trip test cannot.
func TestConfigJSONRoundTripNonTorus(t *testing.T) {
	rgg := Config{Topology: TopologyRGG, Nodes: 48, RGGRadius: 0.25, TopologySeed: 7, Source: 3, Protocol: ProtocolFlood, Value: 1}
	custom := Config{Topology: TopologyCustom, Graph: &GraphSpec{Nodes: 3, Edges: [][2]int{{0, 1}, {1, 2}}}, Protocol: ProtocolCPA, T: 1, Value: 1}
	for _, cfg := range []Config{rgg, custom} {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("marshal %+v: %v", cfg, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(back, cfg) {
			t.Errorf("non-torus config round-trip drifted:\n  in  %+v\n  out %+v\n  via %s", cfg, back, data)
		}
	}
	// The family enum must surface by name in the payload.
	data, _ := json.Marshal(rgg)
	if !strings.Contains(string(data), `"topology":"rgg"`) {
		t.Errorf("rgg config JSON %s does not name its family", data)
	}
}
