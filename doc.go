// Package rbcast is a library for studying reliable broadcast in grid radio
// networks under Byzantine and crash-stop failures, reproducing Bhandari &
// Vaidya, "On Reliable Broadcast in a Radio Network" (PODC 2005).
//
// The model: nodes sit on the unit grid (wrapped onto a finite torus, which
// the paper notes is equivalent to the infinite grid), share a perfectly
// reliable collision-free radio channel with transmission radius r, and a
// locally bounded adversary may corrupt at most t nodes in any single closed
// neighborhood. A designated source broadcasts one binary value; reliable
// broadcast succeeds when every honest node commits to it.
//
// The package exposes:
//
//   - the paper's four protocols (crash-stop flooding, the simple CPA
//     protocol, the 4-hop indirect-report protocol of Theorem 1, and the
//     simplified 2-hop variant of §VI-B);
//   - the exact fault-tolerance thresholds as functions of r;
//   - adversary construction (worst-case bands, random locally bounded
//     placements, iid percolation failures) and Byzantine strategies;
//   - a deterministic round/slot simulator and a concurrent
//     goroutine-per-node runtime that agree execution-for-execution.
//
// A minimal run:
//
//	cfg := rbcast.Config{
//		Width: 16, Height: 10, Radius: 1,
//		Protocol: rbcast.ProtocolBV4,
//		T:        rbcast.MaxByzantineLinf(1),
//		Value:    1,
//	}
//	plan := rbcast.FaultPlan{
//		Placement: rbcast.PlaceGreedyBand,
//		Strategy:  rbcast.StrategyForger,
//	}
//	res, err := rbcast.Run(cfg, plan)
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package rbcast
