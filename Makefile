GO ?= go

.PHONY: verify ci build vet test race experiments serve-smoke trace-smoke load-smoke sweep-smoke obs-smoke cluster-smoke cluster-bench cover bench bench-smoke bench-sweep bench-diff

# ci is the gate .github/workflows/ci.yml runs on every push and pull
# request: tier-1 (build + test) plus vet, the race detector across every
# package, the rbcastd serving smoke test, the execution-trace smoke test,
# the saturation/backpressure smoke test, the /v1/sweep planner smoke test,
# the flight-recorder/live-progress smoke test, the 3-node fleet smoke
# test, and the benchmark-scenario golden-hash smoke. The full benchmark
# suite, bench-sweep, bench-diff, and cluster-bench stay out — they need a
# quiet machine and run in the nightly workflow instead.
ci: build vet test race serve-smoke trace-smoke load-smoke sweep-smoke obs-smoke cluster-smoke bench-smoke

# verify is the full pre-merge gate; it is exactly what CI runs.
verify: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

experiments:
	$(GO) run ./cmd/experiments

# serve-smoke boots rbcastd on an ephemeral port and exercises the serving
# contract end to end: healthz, an uncached and a cached run (byte-identical
# bodies), a batch round trip, metrics consistency, graceful shutdown.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# trace-smoke exercises the observability surface end to end: a CLI trace
# dump, the daemon's /v1/jobs/{id}/trace endpoint (byte-identical to the
# CLI's JSONL for the same scenario), trace-endpoint error contracts, and
# the per-route duration histograms in /metrics.
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh

# load-smoke boots rbcastd with tiny limits (-queue-depth 1 -max-inflight 1
# -job-timeout 250ms) and drives it to saturation with cmd/loadgen: shed
# requests must get 429 + Retry-After (never hang), a retrying client must
# eventually succeed, and an over-deadline job must fail alone with a
# partial result while its siblings complete.
load-smoke:
	GO="$(GO)" sh scripts/load_smoke.sh

# obs-smoke boots rbcastd with the flight recorder armed and a 1ms
# slow-request threshold, then runs loadgen -progress: live, monotone
# progress events over /v1/jobs/{id}/events to a terminal state, a
# /debug/requests timeline whose child spans account for the request
# duration with a nonzero engine phase, and slow-request WARN lines
# carrying the per-phase breakdown.
obs-smoke:
	GO="$(GO)" sh scripts/obs_smoke.sh

# sweep-smoke boots rbcastd and exercises /v1/sweep against the scalar
# surface: a pre-run element must come back cached and byte-identical, a
# sweep-computed element must be a /v1/run cache hit under the same
# fingerprint, repeats are pure cache reads, oversized grids 400, and the
# sweep counters show on /metrics.
sweep-smoke:
	GO="$(GO)" sh scripts/sweep_smoke.sh

# cluster-smoke boots a 3-node rbcastd fleet sharing one -peers list and
# drives cmd/loadgen's cluster phases: seed (every fingerprint resident on
# exactly its ring owner, misdirected requests crossing the fleet proxy),
# failover (the fleet answers the whole set with a member killed), and
# warm (the restarted member serves its shard from sibling caches with
# zero re-simulations).
cluster-smoke:
	GO="$(GO)" sh scripts/cluster_smoke.sh

# cluster-bench measures loadgen -throughput against one rbcastd and then
# a 3-node fleet (every daemon pinned to GOMAXPROCS=1 so each member
# models one machine's capacity) and fails unless the fleet sustains a
# >= 2x rate. Nightly-only: the assertion is a wall-clock ratio and needs
# a quiet multi-core machine — on a single-core host the fleet shares one
# core and cannot physically scale out. See PERFORMANCE.md.
cluster-bench:
	GO="$(GO)" sh scripts/cluster_bench.sh

# cover runs the test suite with coverage and prints a per-package summary
# plus the total; the profile lands in cover.out for `go tool cover -html`.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# bench runs the full canonical scenario matrix and writes BENCH_3.json
# (see PERFORMANCE.md for the methodology and field meanings).
bench:
	$(GO) run ./cmd/bench -out BENCH_3.json

# bench-smoke runs every scenario once and checks its result fingerprint
# against testdata/results.golden — the fast correctness gate in `verify`.
bench-smoke:
	$(GO) run ./cmd/bench -smoke

# bench-sweep times the incremental sweep engine against element-by-element
# RunBatch on the canonical sweep workloads, checks every element hash for
# byte-identity, and fails below a 2x node-round (or wall) speedup. See
# PERFORMANCE.md for the current numbers.
bench-sweep:
	$(GO) run ./cmd/bench -sweep

# bench-diff runs the full suite and fails on a >10% allocation regression
# against the committed baseline (testdata/bench_baseline.json).
bench-diff:
	GO="$(GO)" sh scripts/benchdiff.sh
