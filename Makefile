GO ?= go

.PHONY: verify build vet test race experiments serve-smoke

# verify is the full pre-merge gate: tier-1 (build + test) plus vet, the
# race detector across every package, and the rbcastd serving smoke test.
verify: build vet test race serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

experiments:
	$(GO) run ./cmd/experiments

# serve-smoke boots rbcastd on an ephemeral port and exercises the serving
# contract end to end: healthz, an uncached and a cached run (byte-identical
# bodies), a batch round trip, metrics consistency, graceful shutdown.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh
