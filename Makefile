GO ?= go

.PHONY: verify build vet test race experiments serve-smoke trace-smoke cover bench bench-smoke bench-diff

# verify is the full pre-merge gate: tier-1 (build + test) plus vet, the
# race detector across every package, the rbcastd serving smoke test, the
# execution-trace smoke test, and the benchmark-scenario golden-hash smoke.
verify: build vet test race serve-smoke trace-smoke bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

experiments:
	$(GO) run ./cmd/experiments

# serve-smoke boots rbcastd on an ephemeral port and exercises the serving
# contract end to end: healthz, an uncached and a cached run (byte-identical
# bodies), a batch round trip, metrics consistency, graceful shutdown.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# trace-smoke exercises the observability surface end to end: a CLI trace
# dump, the daemon's /v1/jobs/{id}/trace endpoint (byte-identical to the
# CLI's JSONL for the same scenario), trace-endpoint error contracts, and
# the per-route duration histograms in /metrics.
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh

# cover runs the test suite with coverage and prints a per-package summary
# plus the total; the profile lands in cover.out for `go tool cover -html`.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# bench runs the full canonical scenario matrix and writes BENCH_3.json
# (see PERFORMANCE.md for the methodology and field meanings).
bench:
	$(GO) run ./cmd/bench -out BENCH_3.json

# bench-smoke runs every scenario once and checks its result fingerprint
# against testdata/results.golden — the fast correctness gate in `verify`.
bench-smoke:
	$(GO) run ./cmd/bench -smoke

# bench-diff runs the full suite and fails on a >10% allocation regression
# against the committed baseline (testdata/bench_baseline.json).
bench-diff:
	GO="$(GO)" sh scripts/benchdiff.sh
