GO ?= go

.PHONY: verify build vet test race experiments

# verify is the full pre-merge gate: tier-1 (build + test) plus vet and the
# race detector across every package.
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

experiments:
	$(GO) run ./cmd/experiments
