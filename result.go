package rbcast

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/topology"
)

// Node is a grid location on the torus.
type Node struct {
	X, Y int
}

// String renders the node as "(x,y)".
func (n Node) String() string { return fmt.Sprintf("(%d,%d)", n.X, n.Y) }

// gridCoord converts public coordinates to the internal type.
func gridCoord(x, y int) grid.Coord { return grid.C(x, y) }

// Decision is one node's outcome.
type Decision struct {
	// Value is the committed value (meaningful when Decided).
	Value byte `json:"value,omitempty"`
	// Decided reports whether the node committed at all.
	Decided bool `json:"decided,omitempty"`
	// Round is the engine round of the commitment.
	Round int `json:"round,omitempty"`
}

// Result summarizes one run. The JSON encoding (see encode.go) uses
// snake_case keys, renders Decisions keys as "x,y" strings, and round-trips
// losslessly.
type Result struct {
	// Honest is the number of non-faulty nodes (including the source).
	Honest int `json:"honest,omitempty"`
	// Correct, Wrong, Undecided partition the honest nodes by outcome.
	Correct   int `json:"correct,omitempty"`
	Wrong     int `json:"wrong,omitempty"`
	Undecided int `json:"undecided,omitempty"`
	// Faults is the number of faulty nodes the plan placed.
	Faults int `json:"faults,omitempty"`
	// MaxFaultsPerNbd is the worst closed-neighborhood fault count of the
	// placement (the locally bounded adversary's "t" actually used).
	MaxFaultsPerNbd int `json:"max_faults_per_nbd,omitempty"`
	// Rounds, Broadcasts, Deliveries are engine traffic statistics.
	Rounds     int `json:"rounds,omitempty"`
	Broadcasts int `json:"broadcasts,omitempty"`
	Deliveries int `json:"deliveries,omitempty"`
	// Quiesced reports whether the run ended with no traffic left.
	Quiesced bool `json:"quiesced,omitempty"`
	// Decisions maps every node to its outcome (faulty nodes included;
	// adversarial processes never decide).
	Decisions map[Node]Decision `json:"decisions,omitempty"`
	// Faulty lists the corrupted nodes in id order.
	Faulty []Node `json:"faulty,omitempty"`
	// Metrics carries the engine's detailed counters: per-round traffic
	// histograms, evidence-evaluation counts and wall-clock time. The
	// per-round broadcast/delivery columns sum to Broadcasts/Deliveries.
	Metrics Metrics `json:"metrics,omitempty"`
	// Trace is the structured execution trace recorded when Config.Trace
	// was set; nil otherwise. Sequential-engine traces are fully
	// deterministic. The concurrent engine orders broadcasts and
	// deliveries deterministically but interleaves protocol events
	// (evidence evaluations, commits) in scheduler order within a round;
	// sort by (round, kind, node) before comparing such traces.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// RoundMetrics is one engine round's event counts. Round 0 is process
// initialization; transmissions start in round 1.
type RoundMetrics struct {
	// Broadcasts counts local broadcasts transmitted in the round
	// (including blind retransmissions on a lossy medium).
	Broadcasts int `json:"broadcasts,omitempty"`
	// Deliveries counts per-receiver message deliveries in the round.
	Deliveries int `json:"deliveries,omitempty"`
	// EvidenceEvals counts commit-rule evidence evaluations by honest
	// BV4/BV2 processes in the round.
	EvidenceEvals int `json:"evidence_evals,omitempty"`
	// Commits counts first-time decisions observed in the round.
	Commits int `json:"commits,omitempty"`
}

// Metrics carries a run's detailed counters beyond the headline totals.
type Metrics struct {
	// EvidenceEvals totals the commit-rule evidence evaluations performed
	// by honest processes — the computational hot spot of the
	// indirect-report protocols. Zero for Flood and CPA.
	EvidenceEvals int `json:"evidence_evals,omitempty"`
	// Commits totals first-time decisions (equals the number of decided
	// nodes in Decisions).
	Commits int `json:"commits,omitempty"`
	// PerRound indexes counters by engine round, starting at round 0.
	PerRound []RoundMetrics `json:"per_round,omitempty"`
	// Wall is the run's wall-clock duration in nanoseconds.
	Wall time.Duration `json:"wall_ns,omitempty"`
}

// CommitRounds returns the histogram of first-commit rounds as a map from
// round to the number of nodes that first decided in it.
func (m Metrics) CommitRounds() map[int]int {
	out := make(map[int]int)
	for round, rc := range m.PerRound {
		if rc.Commits > 0 {
			out[round] = rc.Commits
		}
	}
	return out
}

// newMetrics converts an internal collector snapshot.
func newMetrics(s metrics.Snapshot) Metrics {
	m := Metrics{
		EvidenceEvals: int(s.EvidenceEvals),
		Commits:       int(s.Commits),
		Wall:          s.Wall,
	}
	if len(s.PerRound) > 0 {
		m.PerRound = make([]RoundMetrics, len(s.PerRound))
		for i, rc := range s.PerRound {
			m.PerRound[i] = RoundMetrics{
				Broadcasts:    int(rc.Broadcasts),
				Deliveries:    int(rc.Deliveries),
				EvidenceEvals: int(rc.EvidenceEvals),
				Commits:       int(rc.Commits),
			}
		}
	}
	return m
}

// AllCorrect reports whether every honest node committed the source value —
// the success criterion of reliable broadcast.
func (r Result) AllCorrect() bool { return r.Wrong == 0 && r.Undecided == 0 }

// Safe reports whether no honest node committed a wrong value (Theorem 2's
// guarantee, which holds even when liveness fails).
func (r Result) Safe() bool { return r.Wrong == 0 }

// newResult converts an internal outcome. Nodes are labeled through
// topology.Graph.Label: grid coordinates on the torus, (id, 0) elsewhere —
// so torus results keep their historical "x,y" keys and non-torus results
// read as "id,0".
func newResult(g topology.Graph, out protocol.Outcome, m materialized) Result {
	res := Result{
		Honest:     out.Honest,
		Correct:    out.Correct,
		Wrong:      out.Wrong,
		Undecided:  out.Undecided,
		Faults:     len(m.faulty),
		Rounds:     out.Result.Stats.Rounds,
		Broadcasts: out.Result.Stats.Broadcasts,
		Deliveries: out.Result.Stats.Deliveries,
		Quiesced:   out.Result.Stats.Quiesced,
		Decisions:  make(map[Node]Decision, g.Size()),
	}
	if len(m.faulty) > 0 {
		res.MaxFaultsPerNbd = maxPerNbd(g, m.faulty)
		res.Faulty = make([]Node, len(m.faulty))
		for i, id := range m.faulty {
			x, y := g.Label(id)
			res.Faulty[i] = Node{X: x, Y: y}
		}
	}
	for i := 0; i < g.Size(); i++ {
		id := topology.NodeID(i)
		x, y := g.Label(id)
		d := Decision{}
		if v, ok := out.Result.Decided[id]; ok {
			d = Decision{Value: v, Decided: true, Round: out.Result.DecidedRound[id]}
		}
		res.Decisions[Node{X: x, Y: y}] = d
	}
	return res
}

// maxPerNbd delegates to the fault package's exhaustive validator.
func maxPerNbd(g topology.Graph, faulty []topology.NodeID) int {
	return faultMaxPerNeighborhood(g, faulty)
}
