package rbcast_test

import (
	"bufio"
	"os"
	"strings"
	"testing"

	rbcast "repro"
	"repro/internal/scenarios"
)

// TestScenarioResultsMatchGolden pins every canonical scenario's Result
// fingerprint against testdata/results.golden, which was generated from the
// pre-optimization seed engines. Any hot-path change that alters a single
// byte of any Result — a reordered delivery, a different round count, a
// flipped decision — fails here. Regenerate the golden file (cmd/gengolden)
// only for a deliberate semantic change.
func TestScenarioResultsMatchGolden(t *testing.T) {
	want := loadGoldenFile(t, "testdata/results.golden")
	seen := make(map[string]bool, len(want))
	for _, sc := range scenarios.Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := rbcast.Run(sc.Config, sc.Plan)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			hash, err := scenarios.ResultHash(res)
			if err != nil {
				t.Fatalf("ResultHash: %v", err)
			}
			w, ok := want[sc.Name]
			if !ok {
				t.Fatalf("scenario missing from golden file; run `go run ./cmd/gengolden > testdata/results.golden` and review the diff")
			}
			if hash != w {
				t.Errorf("result hash %s, golden %s — engine output diverged from the seed", hash, w)
			}
		})
		seen[sc.Name] = true
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("golden entry %q has no scenario — matrix and golden file drifted", name)
		}
	}
}

// TestEngineEquivalenceSweep runs every protocol under a grid of fault
// plans on both engines — the sequential engine in lock-step mode and the
// goroutine-per-node concurrent engine — and requires byte-identical
// Results. The two engines share no scheduling code, so agreement here is
// strong evidence that the deterministic delivery order is real and that
// neither engine's hot-path optimizations changed semantics.
func TestEngineEquivalenceSweep(t *testing.T) {
	type variant struct {
		name string
		cfg  rbcast.Config
		plan rbcast.FaultPlan
	}
	var sweep []variant
	add := func(name string, cfg rbcast.Config, plan rbcast.FaultPlan) {
		sweep = append(sweep, variant{name: name, cfg: cfg, plan: plan})
	}

	flood := rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1}
	add("flood/clean", flood, rbcast.FaultPlan{})
	add("flood/crash2", flood, rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash, CrashRound: 2})
	add("flood/crash0", flood, rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash, CrashRound: 0})

	cpa := rbcast.Config{Width: 24, Height: 14, Radius: 2, Protocol: rbcast.ProtocolCPA, T: 2, Value: 1}
	add("cpa/silent", cpa, rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent})
	add("cpa/liar", cpa, rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyLiar})

	bv4 := rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 1, Value: 1}
	add("bv4/clean", bv4, rbcast.FaultPlan{})
	add("bv4/silent", bv4, rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent})
	add("bv4/forger", bv4, rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyForger})

	bv2 := rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolBV2, T: 1, Value: 1}
	add("bv2/silent", bv2, rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent})
	add("bv2/liar", bv2, rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyLiar})

	bracha := rbcast.Config{Width: 5, Height: 5, Radius: 2, Protocol: rbcast.ProtocolBracha, T: 8, Value: 1}
	add("bracha/clean", bracha, rbcast.FaultPlan{})
	add("bracha/silent", bracha, rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 8, Seed: 3})
	add("bracha/equivocator", bracha, rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategyEquivocator, Count: 6, Seed: 9})

	brachaAuth := bracha
	brachaAuth.Protocol = rbcast.ProtocolBrachaAuth
	add("bracha-auth/silent", brachaAuth, rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 8, Seed: 3})
	add("bracha-auth/equivocator", brachaAuth, rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategyEquivocator, Count: 6, Seed: 9})

	for _, v := range sweep {
		v := v
		t.Run(v.name, func(t *testing.T) {
			seq := v.cfg
			seq.LockStep = true
			conc := v.cfg
			conc.Concurrent = true

			sres, err := rbcast.Run(seq, v.plan)
			if err != nil {
				t.Fatalf("sequential lock-step run: %v", err)
			}
			cres, err := rbcast.Run(conc, v.plan)
			if err != nil {
				t.Fatalf("concurrent run: %v", err)
			}
			shash, err := scenarios.ResultHash(sres)
			if err != nil {
				t.Fatal(err)
			}
			chash, err := scenarios.ResultHash(cres)
			if err != nil {
				t.Fatal(err)
			}
			if shash != chash {
				t.Errorf("engines disagree: sequential %s, concurrent %s (rounds %d vs %d, correct %d vs %d)",
					shash, chash, sres.Rounds, cres.Rounds, sres.Correct, cres.Correct)
			}
		})
	}
}

// loadGoldenFile parses testdata/results.golden ("name<TAB>hash" lines).
func loadGoldenFile(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open golden file: %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		name, hash, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[name] = hash
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
