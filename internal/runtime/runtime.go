// Package runtime executes the same Process state machines as package sim,
// but with a goroutine per node communicating over channels — the natural
// Go embedding of the paper's node-per-grid-point model. Rounds are
// lock-step: all messages produced in round k are delivered in round k+1,
// matching sim.ModeNextRound exactly, so the two engines are differentially
// testable against each other.
//
// Within a round every node processes its (deterministically ordered) inbox
// concurrently; the coordinator collects transmissions, applies crash
// filtering, and fans deliveries out for the next round. The result is
// bit-for-bit identical to the sequential engine while genuinely exercising
// Go's concurrency runtime.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config mirrors sim.Config for the concurrent engine.
type Config struct {
	// Net is the radio network (required).
	Net *topology.Network
	// Schedule fixes the deterministic delivery order; defaults to
	// topology.BestSchedule(Net).
	Schedule topology.Schedule
	// Factory builds each node's process (required).
	Factory sim.ProcessFactory
	// CrashAt silences nodes from the given round onward (see sim.Config).
	CrashAt map[topology.NodeID]int
	// MaxRounds bounds the execution; 0 means sim.DefaultMaxRounds.
	MaxRounds int
	// Workers caps the number of concurrently processing node goroutines;
	// 0 means one goroutine per node (fully concurrent).
	Workers int
	// Metrics optionally collects totals and per-round histograms of
	// broadcasts, deliveries and commits, mirroring the sequential
	// engine's taps. Nil disables collection.
	Metrics *metrics.Collector
}

// transmission is a message sent by a node in some round.
type transmission struct {
	from topology.NodeID
	msg  sim.Message
}

// nodeState is the per-goroutine worker state.
type nodeState struct {
	id      topology.NodeID
	proc    sim.Process
	inbox   []transmission // deliveries for the current round, pre-sorted
	out     []sim.Message  // broadcasts produced this round
	decided bool
	value   byte
	decRnd  int
}

// nodeCtx adapts the worker state to sim.Context.
type nodeCtx struct {
	st    *nodeState
	round int
}

// Self implements sim.Context.
func (c *nodeCtx) Self() topology.NodeID { return c.st.id }

// Round implements sim.Context.
func (c *nodeCtx) Round() int { return c.round }

// Broadcast implements sim.Context.
func (c *nodeCtx) Broadcast(m sim.Message) { c.st.out = append(c.st.out, m) }

var _ sim.Context = (*nodeCtx)(nil)

// Run executes the configured protocol to quiescence (or MaxRounds) and
// returns a result identical in shape to the sequential engine's.
func Run(cfg Config) (sim.Result, error) {
	if cfg.Net == nil {
		return sim.Result{}, fmt.Errorf("runtime: Config.Net is required")
	}
	if cfg.Factory == nil {
		return sim.Result{}, fmt.Errorf("runtime: Config.Factory is required")
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = topology.BestSchedule(cfg.Net)
	}
	maxR := cfg.MaxRounds
	if maxR <= 0 {
		maxR = sim.DefaultMaxRounds
	}
	net := cfg.Net
	size := net.Size()

	states := make([]*nodeState, size)
	for i := 0; i < size; i++ {
		id := topology.NodeID(i)
		states[i] = &nodeState{id: id, proc: cfg.Factory(id)}
	}

	slotOf := func(id topology.NodeID) int { return sched.SlotOf(id) }
	crashed := func(id topology.NodeID, round int) bool {
		at, ok := cfg.CrashAt[id]
		return ok && round >= at
	}

	// Round 0: initialize processes (sequentially; Init is cheap and the
	// source broadcast must be deterministic anyway).
	var pending []transmission
	for _, st := range states {
		if crashed(st.id, 0) {
			continue
		}
		st.proc.Init(&nodeCtx{st: st, round: 0})
		st.noteDecision(0, cfg.Metrics)
		pending = append(pending, st.drain(1, crashed)...) // transmits in round 1
	}
	sortTransmissions(pending, slotOf)

	stats := sim.Stats{}
	workers := cfg.Workers
	if workers <= 0 || workers > size {
		workers = size
	}

	for round := 1; round <= maxR; round++ {
		if len(pending) == 0 {
			stats.Quiesced = true
			break
		}
		stats.Rounds = round
		stats.Broadcasts += len(pending)
		cfg.Metrics.AddBroadcasts(round, int64(len(pending)))

		// Fan deliveries out to receiver inboxes. pending is already in
		// slot order, so each inbox is deterministically ordered.
		active := make(map[topology.NodeID]struct{})
		roundDeliveries := int64(0)
		for _, tx := range pending {
			for _, nb := range net.Neighbors(tx.from) {
				if crashed(nb, round) {
					continue
				}
				stats.Deliveries++
				roundDeliveries++
				states[nb].inbox = append(states[nb].inbox, tx)
				active[nb] = struct{}{}
			}
		}
		cfg.Metrics.AddDeliveries(round, roundDeliveries)

		// Process all inboxes concurrently.
		ids := make([]topology.NodeID, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, id := range ids {
			st := states[id]
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				ctx := &nodeCtx{st: st, round: round}
				for _, tx := range st.inbox {
					st.proc.Deliver(ctx, tx.from, tx.msg)
				}
				st.inbox = st.inbox[:0]
				st.noteDecision(round, cfg.Metrics)
			}()
		}
		wg.Wait()

		// Collect next round's transmissions in slot order.
		pending = pending[:0]
		for _, id := range ids {
			pending = append(pending, states[id].drain(round+1, crashed)...)
		}
		sortTransmissions(pending, slotOf)
	}

	res := sim.Result{
		Stats:        stats,
		Decided:      make(map[topology.NodeID]byte, size),
		DecidedRound: make(map[topology.NodeID]int, size),
	}
	for _, st := range states {
		if st.decided {
			res.Decided[st.id] = st.value
			res.DecidedRound[st.id] = st.decRnd
		}
	}
	return res, nil
}

// drain moves the node's produced broadcasts into transmissions, dropping
// them if the node will be crashed when they would transmit.
func (st *nodeState) drain(txRound int, crashed func(topology.NodeID, int) bool) []transmission {
	if len(st.out) == 0 {
		return nil
	}
	out := st.out
	st.out = nil
	if crashed(st.id, txRound) {
		return nil
	}
	txs := make([]transmission, len(out))
	for i, m := range out {
		txs[i] = transmission{from: st.id, msg: m}
	}
	return txs
}

// noteDecision records the first decision.
func (st *nodeState) noteDecision(round int, mc *metrics.Collector) {
	if st.decided {
		return
	}
	if v, ok := st.proc.Decided(); ok {
		st.decided = true
		st.value = v
		st.decRnd = round
		mc.AddCommit(round)
	}
}

// sortTransmissions orders by (sender slot, sender id, FIFO within sender).
func sortTransmissions(txs []transmission, slotOf func(topology.NodeID) int) {
	sort.SliceStable(txs, func(i, j int) bool {
		si, sj := slotOf(txs[i].from), slotOf(txs[j].from)
		if si != sj {
			return si < sj
		}
		return txs[i].from < txs[j].from
	})
}
