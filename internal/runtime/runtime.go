package runtime

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/etrace"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config mirrors sim.Config for the concurrent engine.
type Config struct {
	// Net is the radio network (required) — any topology.Graph family.
	Net topology.Graph
	// Schedule fixes the deterministic delivery order; defaults to
	// topology.BestSchedule(Net).
	Schedule topology.Schedule
	// Factory builds each node's process (required).
	Factory sim.ProcessFactory
	// CrashAt silences nodes from the given round onward (see sim.Config).
	CrashAt map[topology.NodeID]int
	// MaxRounds bounds the execution; 0 means sim.DefaultMaxRounds.
	MaxRounds int
	// Workers caps the number of concurrently processing node goroutines;
	// 0 means one goroutine per node (fully concurrent).
	Workers int
	// Metrics optionally collects totals and per-round histograms of
	// broadcasts, deliveries and commits, mirroring the sequential
	// engine's taps. Nil disables collection.
	Metrics *metrics.Collector
	// Trace optionally records per-event execution history, mirroring
	// the sequential engine's taps. Broadcast and delivery events are
	// recorded in the deterministic fan-out loops; protocol events
	// (evidence, commits) arrive from node goroutines, so their
	// within-round interleaving is scheduler-dependent. Nil disables
	// recording.
	Trace *etrace.Recorder
	// Context optionally bounds the run by wall clock, independent of
	// MaxRounds: cancellation is observed at round boundaries, the run
	// stops, and the partial result is returned with an error wrapping
	// sim.ErrDeadline. Nil costs nothing.
	Context context.Context
}

// transmission is a message sent by a node in some round.
type transmission struct {
	from topology.NodeID
	msg  sim.Message
}

// nodeState is the per-goroutine worker state. Its inbox, outbox and
// Context are all reused across rounds, so a steady-state round allocates
// only the goroutine launches themselves.
type nodeState struct {
	id      topology.NodeID
	proc    sim.Process
	inbox   []transmission // deliveries for the current round, pre-sorted
	out     []sim.Message  // broadcasts produced this round
	ctx     nodeCtx        // reused Context; round is set each round
	decided bool
	value   byte
	decRnd  int
}

// nodeCtx adapts the worker state to sim.Context.
type nodeCtx struct {
	st    *nodeState
	round int
}

// Self implements sim.Context.
func (c *nodeCtx) Self() topology.NodeID { return c.st.id }

// Round implements sim.Context.
func (c *nodeCtx) Round() int { return c.round }

// Broadcast implements sim.Context.
func (c *nodeCtx) Broadcast(m sim.Message) { c.st.out = append(c.st.out, m) }

var _ sim.Context = (*nodeCtx)(nil)

// Run executes the configured protocol to quiescence (or MaxRounds, or
// Context expiry) and returns a result identical in shape to the sequential
// engine's. On expiry the partial result is returned together with an error
// wrapping sim.ErrDeadline; any other error means the configuration was
// rejected and the result is zero.
func Run(cfg Config) (sim.Result, error) {
	if cfg.Net == nil {
		return sim.Result{}, fmt.Errorf("runtime: Config.Net is required")
	}
	if cfg.Factory == nil {
		return sim.Result{}, fmt.Errorf("runtime: Config.Factory is required")
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = topology.BestSchedule(cfg.Net)
	}
	maxR := cfg.MaxRounds
	if maxR <= 0 {
		maxR = sim.DefaultMaxRounds
	}
	net := cfg.Net
	size := net.Size()

	states := make([]*nodeState, size)
	for i := 0; i < size; i++ {
		id := topology.NodeID(i)
		states[i] = &nodeState{id: id, proc: cfg.Factory(id)}
		states[i].ctx.st = states[i]
	}

	slotOf := func(id topology.NodeID) int { return sched.SlotOf(id) }
	// crashAt[id] is the first silent round (noCrash = never); a dense
	// array keeps the per-delivery crash check off the map path.
	crashAt := make([]int, size)
	for i := range crashAt {
		crashAt[i] = noCrash
	}
	for id, at := range cfg.CrashAt {
		if int(id) >= 0 && int(id) < size {
			crashAt[id] = at
		}
	}

	// Round 0: initialize processes (sequentially; Init is cheap and the
	// source broadcast must be deterministic anyway).
	var pending []transmission
	for _, st := range states {
		if crashAt[st.id] <= 0 {
			continue
		}
		st.ctx.round = 0
		st.proc.Init(&st.ctx)
		st.noteDecision(0, cfg.Metrics)
		pending = st.drainInto(pending, 1, crashAt) // transmits in round 1
	}
	sortTransmissions(pending, slotOf)

	stats := sim.Stats{}
	workers := cfg.Workers
	if workers <= 0 || workers > size {
		workers = size
	}

	// Per-round scratch, allocated once: the active-receiver mark bitset,
	// the sorted active-id list and the worker-cap semaphore.
	activeMark := topology.NewNodeSet(size)
	ids := make([]topology.NodeID, 0, size)
	sem := make(chan struct{}, workers)

	var done <-chan struct{}
	if cfg.Context != nil {
		done = cfg.Context.Done()
	}
	var deadlineErr error

	for round := 1; round <= maxR; round++ {
		if done != nil {
			select {
			case <-done:
				deadlineErr = fmt.Errorf("runtime: %w after %d rounds: %w",
					sim.ErrDeadline, stats.Rounds, cfg.Context.Err())
			default:
			}
			if deadlineErr != nil {
				break
			}
		}
		if len(pending) == 0 {
			stats.Quiesced = true
			break
		}
		stats.Rounds = round
		stats.Broadcasts += len(pending)
		cfg.Metrics.AddBroadcasts(round, int64(len(pending)))
		if cfg.Trace != nil {
			for _, tx := range pending {
				cfg.Trace.Broadcast(round, tx.from, uint8(tx.msg.Kind), tx.msg.Value, tx.msg.Origin, tx.msg.Path)
			}
		}

		// Fan deliveries out to receiver inboxes. pending is already in
		// slot order, so each inbox is deterministically ordered.
		ids = ids[:0]
		roundDeliveries := int64(0)
		for _, tx := range pending {
			for _, nb := range net.Neighbors(tx.from) {
				if crashAt[nb] <= round {
					continue
				}
				if !tx.msg.Audience.Includes(nb) {
					continue // directional transmission (adversarial; see sim.Message.Audience)
				}
				stats.Deliveries++
				roundDeliveries++
				if cfg.Trace != nil {
					cfg.Trace.Delivery(round, nb, tx.from, uint8(tx.msg.Kind), tx.msg.Value, tx.msg.Origin, tx.msg.Path)
				}
				states[nb].inbox = append(states[nb].inbox, tx)
				if !activeMark.Has(nb) {
					activeMark.Add(nb)
					ids = append(ids, nb)
				}
			}
		}
		cfg.Metrics.AddDeliveries(round, roundDeliveries)

		// Process all inboxes concurrently, in deterministic id order.
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		var wg sync.WaitGroup
		for _, id := range ids {
			st := states[id]
			activeMark.Remove(id)
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				st.ctx.round = round
				for _, tx := range st.inbox {
					st.proc.Deliver(&st.ctx, tx.from, tx.msg)
				}
				st.inbox = st.inbox[:0]
				st.noteDecision(round, cfg.Metrics)
			}()
		}
		wg.Wait()

		// Collect next round's transmissions in slot order.
		pending = pending[:0]
		for _, id := range ids {
			pending = states[id].drainInto(pending, round+1, crashAt)
		}
		sortTransmissions(pending, slotOf)
	}

	res := sim.Result{
		Stats:        stats,
		Decided:      make(map[topology.NodeID]byte, size),
		DecidedRound: make(map[topology.NodeID]int, size),
	}
	for _, st := range states {
		if st.decided {
			res.Decided[st.id] = st.value
			res.DecidedRound[st.id] = st.decRnd
		}
	}
	return res, deadlineErr
}

// noCrash is the crashAt sentinel for nodes that never crash.
const noCrash = int(^uint(0) >> 1) // max int

// drainInto appends the node's produced broadcasts to pending as
// transmissions, dropping them if the node will be crashed when they would
// transmit. The node's outbox keeps its capacity for the next round.
func (st *nodeState) drainInto(pending []transmission, txRound int, crashAt []int) []transmission {
	if len(st.out) == 0 {
		return pending
	}
	out := st.out
	st.out = st.out[:0]
	if crashAt[st.id] <= txRound {
		return pending
	}
	for _, m := range out {
		pending = append(pending, transmission{from: st.id, msg: m})
	}
	return pending
}

// noteDecision records the first decision.
func (st *nodeState) noteDecision(round int, mc *metrics.Collector) {
	if st.decided {
		return
	}
	if v, ok := st.proc.Decided(); ok {
		st.decided = true
		st.value = v
		st.decRnd = round
		mc.AddCommit(round)
	}
}

// sortTransmissions orders by (sender slot, sender id, FIFO within sender).
func sortTransmissions(txs []transmission, slotOf func(topology.NodeID) int) {
	sort.SliceStable(txs, func(i, j int) bool {
		si, sj := slotOf(txs[i].from), slotOf(txs[j].from)
		if si != sj {
			return si < sj
		}
		return txs[i].from < txs[j].from
	})
}
