package runtime

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/topology"
)

// floodProc mirrors the test protocol in package sim: commit to the first
// value heard and relay once.
type floodProc struct {
	id      topology.NodeID
	source  topology.NodeID
	value   byte
	decided bool
}

func (p *floodProc) Init(ctx sim.Context) {
	if p.id == p.source {
		p.decided = true
		ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: p.value})
	}
}

func (p *floodProc) Deliver(ctx sim.Context, _ topology.NodeID, m sim.Message) {
	if p.decided || m.Kind != sim.KindValue {
		return
	}
	p.decided = true
	p.value = m.Value
	ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: m.Value})
}

func (p *floodProc) Decided() (byte, bool) {
	if !p.decided {
		return 0, false
	}
	return p.value, true
}

func floodFactory(source topology.NodeID, v byte) sim.ProcessFactory {
	return func(id topology.NodeID) sim.Process {
		p := &floodProc{id: id, source: source}
		if id == source {
			p.value = v
		}
		return p
	}
}

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestRunValidation(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	if _, err := Run(Config{Factory: floodFactory(0, 1)}); err == nil {
		t.Error("missing Net must be rejected")
	}
	if _, err := Run(Config{Net: net}); err == nil {
		t.Error("missing Factory must be rejected")
	}
}

func TestConcurrentFloodDelivers(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	source := net.IDOf(grid.C(0, 0))
	res, err := Run(Config{Net: net, Factory: floodFactory(source, 1)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Stats.Quiesced {
		t.Error("must quiesce")
	}
	if len(res.Decided) != net.Size() {
		t.Fatalf("decided %d of %d", len(res.Decided), net.Size())
	}
	for id, v := range res.Decided {
		if v != 1 {
			t.Errorf("node %d decided %d", id, v)
		}
	}
}

// TestEquivalenceWithSequentialEngine is the E20 differential test: the
// concurrent runtime and the sequential engine in lock-step mode must agree
// on every decided value, every decision round, and all traffic statistics.
func TestEquivalenceWithSequentialEngine(t *testing.T) {
	for _, tc := range []struct {
		w, h, r int
		crash   map[topology.NodeID]int
	}{
		{10, 10, 1, nil},
		{10, 10, 2, nil},
		{12, 9, 1, map[topology.NodeID]int{5: 0, 17: 2, 40: 1}},
	} {
		net := testNet(t, tc.w, tc.h, tc.r)
		source := net.IDOf(grid.C(0, 0))
		seq, err := sim.Run(sim.Config{
			Net:     net,
			Mode:    sim.ModeNextRound,
			Factory: floodFactory(source, 1),
			CrashAt: tc.crash,
		})
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		conc, err := Run(Config{Net: net, Factory: floodFactory(source, 1), CrashAt: tc.crash})
		if err != nil {
			t.Fatalf("runtime.Run: %v", err)
		}
		if seq.Stats != conc.Stats {
			t.Errorf("%dx%d r=%d: stats differ: seq %+v conc %+v", tc.w, tc.h, tc.r, seq.Stats, conc.Stats)
		}
		if len(seq.Decided) != len(conc.Decided) {
			t.Fatalf("decided counts differ: %d vs %d", len(seq.Decided), len(conc.Decided))
		}
		for id, v := range seq.Decided {
			if conc.Decided[id] != v {
				t.Errorf("node %d: value %d vs %d", id, v, conc.Decided[id])
			}
			if seq.DecidedRound[id] != conc.DecidedRound[id] {
				t.Errorf("node %d: round %d vs %d", id, seq.DecidedRound[id], conc.DecidedRound[id])
			}
		}
	}
}

func TestWorkerCapRuns(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	source := net.IDOf(grid.C(0, 0))
	res, err := Run(Config{Net: net, Factory: floodFactory(source, 1), Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Decided) != net.Size() {
		t.Errorf("decided %d of %d", len(res.Decided), net.Size())
	}
}

func TestCrashedSourceNeverStarts(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	source := net.IDOf(grid.C(0, 0))
	res, err := Run(Config{
		Net:     net,
		Factory: floodFactory(source, 1),
		CrashAt: map[topology.NodeID]int{source: 0},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Decided) != 0 {
		t.Errorf("nothing should decide when the source is crashed, got %d", len(res.Decided))
	}
	if res.Stats.Broadcasts != 0 {
		t.Errorf("no broadcasts expected, got %d", res.Stats.Broadcasts)
	}
}

func TestMaxRoundsBounds(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	factory := func(id topology.NodeID) sim.Process { return &babbler{} }
	res, err := Run(Config{Net: net, Factory: factory, MaxRounds: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Quiesced {
		t.Error("babbler must not quiesce")
	}
	if res.Stats.Rounds != 5 {
		t.Errorf("rounds = %d, want 5", res.Stats.Rounds)
	}
}

type babbler struct{ lastRound int }

func (b *babbler) Init(ctx sim.Context) { ctx.Broadcast(sim.Message{Kind: sim.KindValue}) }
func (b *babbler) Deliver(ctx sim.Context, _ topology.NodeID, _ sim.Message) {
	if ctx.Round() > b.lastRound {
		b.lastRound = ctx.Round()
		ctx.Broadcast(sim.Message{Kind: sim.KindValue})
	}
}
func (b *babbler) Decided() (byte, bool) { return 0, false }
