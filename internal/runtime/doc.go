// Package runtime executes the same Process state machines as package sim,
// but with a goroutine per node communicating over channels — the natural
// Go embedding of the paper's node-per-grid-point model. Rounds are
// lock-step: all messages produced in round k are delivered in round k+1,
// matching sim.ModeNextRound exactly, so the two engines are differentially
// testable against each other.
//
// Within a round every node processes its (deterministically ordered) inbox
// concurrently; the coordinator collects transmissions, applies crash
// filtering, and fans deliveries out for the next round. The result is
// bit-for-bit identical to the sequential engine while genuinely exercising
// Go's concurrency runtime.
package runtime
