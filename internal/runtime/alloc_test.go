package runtime

import (
	"testing"

	"repro/internal/grid"
)

// TestRunAllocsRegression guards the concurrent engine's allocation budget
// on a 1024-node flood. The floor here is the goroutine fan-out itself —
// one launch per active node per round — which is the engine's point, so
// the budget is per-node-per-round plus setup. The pre-optimization engine
// (fresh inbox/outbox slices, per-delivery Context values, map-based crash
// checks) measured ~16.2k allocations on this workload; the rebuilt
// hot path measures ~11.2k. The 14k budget trips on a return of per-round
// buffer churn while leaving headroom over scheduler noise.
func TestRunAllocsRegression(t *testing.T) {
	net := testNet(t, 32, 32, 2)
	src := net.IDOf(grid.C(0, 0))
	cfg := Config{Net: net, Factory: floodFactory(src, 1)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds < 5 {
		t.Fatalf("probe workload degenerate: %d rounds", res.Stats.Rounds)
	}
	const maxAllocs = 14_000
	avg := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxAllocs {
		t.Errorf("full run allocated %.0f times (%.1f/round over %d rounds), budget %d — the round hot path regressed",
			avg, avg/float64(res.Stats.Rounds), res.Stats.Rounds, maxAllocs)
	}
}
