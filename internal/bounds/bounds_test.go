package bounds

import (
	"math"
	"testing"
)

func TestMaxByzantineLinf(t *testing.T) {
	// t < r(2r+1)/2: r=1 → t<1.5 → 1; r=2 → t<5 → 4; r=3 → t<10.5 → 10;
	// r=4 → t<18 → 17; r=5 → t<27.5 → 27.
	want := map[int]int{1: 1, 2: 4, 3: 10, 4: 17, 5: 27}
	for r, w := range want {
		if got := MaxByzantineLinf(r); got != w {
			t.Errorf("MaxByzantineLinf(%d) = %d, want %d", r, got, w)
		}
	}
}

func TestExactByzantineThreshold(t *testing.T) {
	// The achievable maximum and the impossibility minimum must be adjacent
	// integers for every r — that is what "exact threshold" means.
	for r := 1; r <= 50; r++ {
		if MaxByzantineLinf(r)+1 != MinImpossibleByzantineLinf(r) {
			t.Errorf("r=%d: achievability %d and impossibility %d are not adjacent",
				r, MaxByzantineLinf(r), MinImpossibleByzantineLinf(r))
		}
		// Impossibility value is ⌈r(2r+1)/2⌉.
		n := r * (2*r + 1)
		if got, want := MinImpossibleByzantineLinf(r), (n+1)/2; got != want {
			t.Errorf("r=%d: MinImpossibleByzantineLinf = %d, want %d", r, got, want)
		}
	}
}

func TestExactCrashThreshold(t *testing.T) {
	for r := 1; r <= 50; r++ {
		if MaxCrashLinf(r)+1 != MinImpossibleCrashLinf(r) {
			t.Errorf("r=%d: crash thresholds not adjacent", r)
		}
		if MinImpossibleCrashLinf(r) != r*(2*r+1) {
			t.Errorf("r=%d: MinImpossibleCrashLinf = %d", r, MinImpossibleCrashLinf(r))
		}
	}
}

func TestCrashIsTwiceByzantinePlus(t *testing.T) {
	// The crash-stop threshold r(2r+1) is exactly double the Byzantine
	// threshold r(2r+1)/2 — the paper's "slightly less than half" versus
	// "slightly less than one-fourth" of the neighborhood.
	for r := 1; r <= 20; r++ {
		cr := MinImpossibleCrashLinf(r)
		by := r * (2*r + 1) // 2 × r(2r+1)/2
		if cr != by {
			t.Errorf("r=%d: crash %d != r(2r+1) %d", r, cr, by)
		}
	}
}

func TestMaxCPALinf(t *testing.T) {
	want := map[int]int{1: 0, 2: 2, 3: 6, 4: 10, 5: 16, 6: 24}
	for r, w := range want {
		if got := MaxCPALinf(r); got != w {
			t.Errorf("MaxCPALinf(%d) = %d, want %d", r, got, w)
		}
	}
}

func TestKooCPALinf(t *testing.T) {
	// t < ½ r (r + √(r/2) + 1).
	// r=2: ½·2·(2+1+1) = 4 → t<4 → 3.
	if got := KooCPALinf(2); got != 3 {
		t.Errorf("KooCPALinf(2) = %d, want 3", got)
	}
	// r=8: ½·8·(8+2+1) = 44 → t<44 → 43.
	if got := KooCPALinf(8); got != 43 {
		t.Errorf("KooCPALinf(8) = %d, want 43", got)
	}
}

func TestTheorem6DominatesKooAsymptotically(t *testing.T) {
	// Theorem 6's bound 2r²/3 must dominate Koo's ½r(r+√(r/2)+1) for all
	// sufficiently large r; verify from some modest r onward.
	for r := 13; r <= 200; r++ {
		if MaxCPALinf(r) <= KooCPALinf(r) {
			t.Errorf("r=%d: Theorem 6 bound %d does not dominate Koo %d",
				r, MaxCPALinf(r), KooCPALinf(r))
		}
	}
}

func TestTheorem6BelowExactThreshold(t *testing.T) {
	// The simple protocol's bound is below the exact threshold of the
	// indirect-report protocol for every r.
	for r := 1; r <= 100; r++ {
		if MaxCPALinf(r) > MaxByzantineLinf(r) {
			t.Errorf("r=%d: CPA bound %d exceeds exact threshold %d",
				r, MaxCPALinf(r), MaxByzantineLinf(r))
		}
	}
}

func TestKooCPAL2(t *testing.T) {
	// r=4: ¼·4·(4+√2+1) − 2 = (5+√2)−2 = 4.41… → t<4.41 → 4.
	if got := KooCPAL2(4); got != 4 {
		t.Errorf("KooCPAL2(4) = %d, want 4", got)
	}
	// L2 bound is below the L∞ bound.
	for r := 1; r <= 50; r++ {
		if KooCPAL2(r) > KooCPALinf(r) {
			t.Errorf("r=%d: L2 Koo bound exceeds L∞", r)
		}
	}
}

func TestL2ApproxOrdering(t *testing.T) {
	// 0.23πr² < 0.3πr² < 0.46πr² < 0.6πr² for all r where they are
	// nontrivial; and the Byzantine band sits below the crash band.
	for r := 2; r <= 50; r++ {
		ach := ApproxByzantineL2(r)
		imp := ApproxImpossibleByzantineL2(r)
		cach := ApproxCrashL2(r)
		cimp := ApproxImpossibleCrashL2(r)
		if !(ach < imp && imp <= cach && cach < cimp) {
			t.Errorf("r=%d: ordering violated: %d %d %d %d", r, ach, imp, cach, cimp)
		}
	}
}

func TestL2ApproxValues(t *testing.T) {
	r := 10
	if got, want := ApproxByzantineL2(r), int(math.Floor(0.23*math.Pi*100)); got != want {
		t.Errorf("ApproxByzantineL2(10) = %d, want %d", got, want)
	}
	if got, want := ApproxImpossibleCrashL2(r), int(math.Ceil(0.6*math.Pi*100)); got != want {
		t.Errorf("ApproxImpossibleCrashL2(10) = %d, want %d", got, want)
	}
}

func TestStrictlyBelow(t *testing.T) {
	tests := []struct {
		in   float64
		want int
	}{
		{7.0, 6},
		{7.2, 7},
		{0.5, 0},
		{1.0, 0},
	}
	for _, tt := range tests {
		if got := strictlyBelow(tt.in); got != tt.want {
			t.Errorf("strictlyBelow(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
