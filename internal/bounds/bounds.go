package bounds

import (
	"math"
)

// MaxByzantineLinf returns the largest t for which the paper's 4-hop
// indirect-report protocol achieves reliable broadcast in the L∞ metric
// (Theorem 1): the largest integer t with t < r(2r+1)/2.
//
// Together with Koo's impossibility bound (t ≥ ⌈r(2r+1)/2⌉ is impossible)
// this is the exact Byzantine threshold for the grid model.
func MaxByzantineLinf(r int) int {
	// r(2r+1) is odd iff r is odd, so t_max = ceil(r(2r+1)/2) − 1.
	n := r * (2*r + 1)
	return (n+1)/2 - 1
}

// MinImpossibleByzantineLinf returns the smallest t at which reliable
// broadcast is impossible under Byzantine faults in L∞ (Koo 2004):
// t = ⌈r(2r+1)/2⌉.
func MinImpossibleByzantineLinf(r int) int {
	n := r * (2*r + 1)
	return (n + 1) / 2
}

// MaxCrashLinf returns the largest tolerable t for crash-stop failures in
// the L∞ metric (Theorem 5): t = r(2r+1) − 1.
func MaxCrashLinf(r int) int { return r*(2*r+1) - 1 }

// MinImpossibleCrashLinf returns the smallest t at which crash-stop reliable
// broadcast is impossible in L∞ (Theorem 4): t = r(2r+1).
func MinImpossibleCrashLinf(r int) int { return r * (2*r + 1) }

// MaxCPALinf returns the fault bound proved for the simple protocol
// (Certified Propagation Algorithm) in Theorem 6: t ≤ ⌊(2/3)r²⌋.
func MaxCPALinf(r int) int { return 2 * r * r / 3 }

// KooCPALinf returns the earlier achievability bound for the simple protocol
// in L∞ proved by Koo: the largest integer t with
// t < ½·r·(r + √(r/2) + 1). Theorem 6 dominates it for all sufficiently
// large r.
func KooCPALinf(r int) int {
	bound := 0.5 * float64(r) * (float64(r) + math.Sqrt(float64(r)/2) + 1)
	return strictlyBelow(bound)
}

// KooCPAL2 returns Koo's achievability bound for the simple protocol in the
// L2 metric: the largest integer t with t < ¼·r·(r + √(r/2) + 1) − 2.
func KooCPAL2(r int) int {
	bound := 0.25*float64(r)*(float64(r)+math.Sqrt(float64(r)/2)+1) - 2
	return strictlyBelow(bound)
}

// ApproxByzantineL2 returns the paper's informal achievability value for
// Byzantine faults in the Euclidean metric (§VIII): t = ⌊0.23·π·r²⌋.
func ApproxByzantineL2(r int) int {
	return int(math.Floor(0.23 * math.Pi * float64(r) * float64(r)))
}

// ApproxImpossibleByzantineL2 returns the paper's informal impossibility
// value for Byzantine faults in L2 (§VIII): t = ⌈0.3·π·r²⌉.
func ApproxImpossibleByzantineL2(r int) int {
	return int(math.Ceil(0.3 * math.Pi * float64(r) * float64(r)))
}

// ApproxCrashL2 returns the paper's informal crash-stop achievability value
// in L2 (§VIII): t = ⌊0.46·π·r²⌋ (i.e. 2t with t the Byzantine value).
func ApproxCrashL2(r int) int {
	return int(math.Floor(0.46 * math.Pi * float64(r) * float64(r)))
}

// ApproxImpossibleCrashL2 returns the paper's informal crash-stop
// impossibility value in L2 (§VIII): t = ⌈0.6·π·r²⌉.
func ApproxImpossibleCrashL2(r int) int {
	return int(math.Ceil(0.6 * math.Pi * float64(r) * float64(r)))
}

// strictlyBelow returns the largest integer strictly below bound; for an
// integral bound b it returns b−1.
func strictlyBelow(bound float64) int {
	return int(math.Ceil(bound)) - 1
}
