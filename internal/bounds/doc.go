// Package bounds collects the closed-form fault-tolerance thresholds proved
// or cited in Bhandari & Vaidya (PODC 2005), as pure functions of the
// transmission radius r. All thresholds are stated as the maximum number of
// faults t per closed neighborhood.
package bounds
