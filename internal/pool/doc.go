// Package pool provides the bounded worker pool shared by the public batch
// runner (rbcast.RunBatch) and the experiment driver. Work items are plain
// indices: the caller pre-allocates a results slice and fn(i) writes element
// i, which keeps result ordering deterministic regardless of scheduling and
// needs no synchronization beyond the pool's own join.
package pool
