package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) exactly once for every i in [0, n), across at most
// `workers` goroutines (≤ 0 means runtime.GOMAXPROCS(0)). It returns after
// all invocations complete. fn must confine its writes to per-index state;
// distinct elements of a pre-allocated slice are safe without locking.
//
// Cancellation is cooperative: the pool always dispatches every index, so a
// caller that wants to stop early makes fn check its context and return
// immediately. That way skipped items still get a deterministic result slot.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
