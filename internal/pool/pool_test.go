package pool

import (
	"sync/atomic"
	"testing"
)

func TestEveryIndexRunsExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		counts := make([]atomic.Int32, n)
		Run(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestEmptyAndNegativeN(t *testing.T) {
	ran := false
	Run(4, 0, func(int) { ran = true })
	Run(4, -3, func(int) { ran = true })
	if ran {
		t.Error("fn invoked for empty input")
	}
}

func TestSingleWorkerPreservesOrder(t *testing.T) {
	var order []int
	Run(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("single-worker order broken: %v", order)
		}
	}
}

func TestResultsSliceWritesAreSafe(t *testing.T) {
	const n = 200
	results := make([]int, n)
	Run(8, n, func(i int) { results[i] = i * i })
	for i, v := range results {
		if v != i*i {
			t.Errorf("results[%d] = %d", i, v)
		}
	}
}
