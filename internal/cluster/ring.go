package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Replicas is the number of ring points each member occupies. More points
// smooth the arc-length distribution (the expected per-member share
// deviation shrinks like 1/√Replicas) at a small cost in memory and
// construction time; 256 keeps the worst member within a few percent of
// fair share for fleets up to dozens of nodes.
const Replicas = 256

// Ring is an immutable consistent-hash ring over a fixed member set. It
// is safe for concurrent use; construct a new Ring to change membership.
type Ring struct {
	members []string
	points  []point // sorted by hash, ascending
}

// point is one virtual node: a position on the 64-bit ring and the index
// of the member that owns it.
type point struct {
	hash   uint64
	member int
}

// New builds a ring over members. Members must be non-empty and distinct;
// order does not matter — the ring is a pure function of the member set.
func New(members []string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	r := &Ring{
		members: sorted,
		points:  make([]point, 0, len(sorted)*Replicas),
	}
	for mi, m := range sorted {
		for v := 0; v < Replicas; v++ {
			r.points = append(r.points, point{
				hash:   hashKey(m + "#" + strconv.Itoa(v)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break on the member index so the
		// ring stays a pure function of the member set.
		return a.member < b.member
	})
	return r, nil
}

// Members returns the member set in canonical (sorted) order. The slice
// is shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Contains reports whether m is a ring member.
func (r *Ring) Contains(m string) bool {
	i := sort.SearchStrings(r.members, m)
	return i < len(r.members) && r.members[i] == m
}

// Owner returns the member that owns key: the member of the first ring
// point at or after the key's hash, wrapping past the top.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.search(key)].member]
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner. Successors(key, Len()) is the full failover order:
// the owner first, then the member that would inherit the key if the
// owner left, and so on.
func (r *Ring) Successors(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, at := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(at+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// search returns the index of the first point at or after key's hash,
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashKey is the ring's hash function: 64-bit FNV-1a finished with a
// splitmix64-style avalanche. Raw FNV-1a diffuses similar strings (member
// URLs differing in one port digit) too weakly for even arc lengths — the
// worst member drew >2x fair share without the finalizer. The function is
// part of the wire-compatibility contract — every daemon and client in a
// fleet must map a fingerprint to the same owner, so changing it is a
// breaking change for rolling deployments (TestRingGoldenOwners pins it).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a fixed bijection on uint64 with
// full avalanche, so nearby FNV outputs land far apart on the ring.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
