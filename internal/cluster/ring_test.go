package cluster

import (
	"fmt"
	"testing"
)

// fleet builds n synthetic member URLs in the shape rbcastd uses.
func fleet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// keys returns k synthetic fingerprint-shaped keys.
func keys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("sha256:%08x-fingerprint", i)
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Fatal("empty member name accepted")
	}
}

// TestRingDeterminism: the ring is a pure function of the member set —
// independently constructed rings (any member order) agree on every
// owner and every successor list. This is what lets a fleet of daemons
// and their clients route without coordinating: each process rebuilds
// the ring from the shared -peers list after a restart and lands on the
// identical mapping.
func TestRingDeterminism(t *testing.T) {
	members := fleet(5)
	a, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed insertion order must not matter.
	rev := make([]string, len(members))
	for i, m := range members {
		rev[len(members)-1-i] = m
	}
	b, err := New(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%q) differs across constructions: %q vs %q", k, ao, bo)
		}
		as, bs := a.Successors(k, len(members)), b.Successors(k, len(members))
		if len(as) != len(members) || len(bs) != len(members) {
			t.Fatalf("successors(%q) incomplete: %v vs %v", k, as, bs)
		}
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("successor order for %q differs at %d: %v vs %v", k, i, as, bs)
			}
		}
	}
}

// TestRingGoldenOwners pins concrete owner assignments. The ring's hash
// function is a cross-process wire contract — every daemon and client must
// agree on each fingerprint's owner — so a change to the hash, the
// replica count, or the point construction must show up here as a
// deliberate golden update, not slip through as a silent reshard.
func TestRingGoldenOwners(t *testing.T) {
	r, err := New(fleet(3))
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"sha256:00000000-fingerprint": "http://10.0.0.3:8080",
		"sha256:00000001-fingerprint": "http://10.0.0.2:8080",
		"sha256:00000002-fingerprint": "http://10.0.0.3:8080",
		"sha256:00000003-fingerprint": "http://10.0.0.1:8080",
		"sha256:00000004-fingerprint": "http://10.0.0.2:8080",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want %q", k, got, want)
		}
	}
}

// TestRingUniformity: the per-member key share must be near-uniform for
// every fleet size the smoke and bench scripts use. The construction is
// deterministic, so the chi-squared statistic for this fixed key set is a
// constant per fleet size — the bound below is a regression tripwire for
// changes that skew the ring (fewer replicas, a weaker hash), not a
// statistical test that could flake.
func TestRingUniformity(t *testing.T) {
	ks := keys(20000)
	for n := 3; n <= 16; n++ {
		r, err := New(fleet(n))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		for _, k := range ks {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		exp := float64(len(ks)) / float64(n)
		chi2 := 0.0
		min, max := len(ks), 0
		for _, c := range counts {
			d := float64(c) - exp
			chi2 += d * d / exp
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		// With 256 virtual nodes the measured statistic peaks at
		// chi2/df ≈ 22 (small fleets feel arc-length variance the most);
		// the 60x bound has headroom for the fixed key set while still
		// failing hard on structural imbalance — the pre-avalanche hash
		// scored chi2/df in the hundreds here.
		df := float64(n - 1)
		if chi2 > 60*df {
			t.Errorf("n=%d: chi2 = %.1f over df=%v (min %d, max %d, exp %.0f) — ring is not uniform",
				n, chi2, df, min, max, exp)
		}
		if float64(max) > 1.5*exp || float64(min) < 0.5*exp {
			t.Errorf("n=%d: member share outside [0.5,1.5]x fair: min %d, max %d, exp %.0f",
				n, min, max, exp)
		}
	}
}

// TestRingMinimalMovement: adding or removing one member must only move
// keys to or from that member — a key must never reshuffle between two
// members that are present in both rings — and the moved fraction must be
// near 1/N, not a full reshard.
func TestRingMinimalMovement(t *testing.T) {
	ks := keys(20000)
	base := fleet(9)
	small, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(append(append([]string(nil), base...), "http://10.0.0.200:8080"))
	if err != nil {
		t.Fatal(err)
	}
	joined := "http://10.0.0.200:8080"
	moved := 0
	for _, k := range ks {
		before, after := small.Owner(k), big.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != joined {
			t.Fatalf("key %q moved %q -> %q when %q joined: keys may only move to the new member",
				k, before, after, joined)
		}
	}
	// Fair share for the 10th member is 1/10 of the keys; allow 2x for
	// arc-length variance. Zero movement would mean the new member owns
	// nothing, which is its own failure.
	if moved == 0 {
		t.Fatal("no keys moved to the joining member")
	}
	if frac := float64(moved) / float64(len(ks)); frac > 2.0/10 {
		t.Fatalf("join moved %.1f%% of keys, want ~10%%", 100*frac)
	}

	// Leave is the mirror image: only the departed member's keys move.
	for _, k := range ks {
		before, after := big.Owner(k), small.Owner(k)
		if before == after {
			continue
		}
		if before != joined {
			t.Fatalf("key %q moved %q -> %q when %q left: only the departed member's keys may move",
				k, before, after, joined)
		}
	}
}

// TestRingSuccessors: the successor list starts at the owner, contains
// distinct members, and its second entry is the key's owner in the ring
// without the first — the failover contract the client and the peer
// cache-fill path rely on.
func TestRingSuccessors(t *testing.T) {
	members := fleet(4)
	r, err := New(members)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		succ := r.Successors(k, len(members))
		if len(succ) != len(members) {
			t.Fatalf("successors(%q) = %v, want all %d members", k, succ, len(members))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successors(%q)[0] = %q, owner = %q", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("successors(%q) repeats %q: %v", k, m, succ)
			}
			seen[m] = true
		}
		// Failover semantics: with the owner gone, the key's new owner is
		// the old second successor.
		var without []string
		for _, m := range members {
			if m != succ[0] {
				without = append(without, m)
			}
		}
		shrunk, err := New(without)
		if err != nil {
			t.Fatal(err)
		}
		if got := shrunk.Owner(k); got != succ[1] {
			t.Fatalf("owner(%q) after %q left = %q, want old successor %q", k, succ[0], got, succ[1])
		}
	}
	if got := r.Successors("k", 2); len(got) != 2 {
		t.Fatalf("Successors(k, 2) = %v, want 2 entries", got)
	}
	if got := r.Successors("k", 0); got != nil {
		t.Fatalf("Successors(k, 0) = %v, want nil", got)
	}
}
