// Package cluster implements the consistent-hash ring that shards the
// scenario fingerprint space across an rbcastd fleet.
//
// Every member (an rbcastd base URL) is placed on a 64-bit ring at
// replicas pseudo-random points derived from an FNV-1a hash of the member
// name; a key (a scenario fingerprint) is owned by the member whose point
// follows the key's hash clockwise. The construction is deterministic —
// the same member list yields byte-identical rings in every process, so a
// fleet of daemons and every client agree on each fingerprint's owner
// without any coordination traffic — and adding or removing one member
// moves only the keys that land on that member's arcs (~1/N of the space),
// never keys between two surviving members.
//
// Successors extends Owner with the failover order: the distinct members
// whose points follow the key clockwise. Clients walk it when the owner is
// unreachable, and the owner walks it (minus itself) when probing sibling
// caches for a fill.
package cluster
