package analysis

import (
	"fmt"

	"repro/internal/evidence"
	"repro/internal/topology"
)

// BV4ClosureMemo is BV4Closure evaluated through an evidence.PatternMemo:
// per-center honest-path counts are cached by local fault pattern and folded
// under the eight grid symmetries, which is what makes fault-placement
// sweeps over one torus O(distinct patterns) instead of O(elements × paths).
// The prediction is identical to BV4Closure for every input — the memo is an
// exact cache, never an approximation — and the differential experiments
// pin that equality.
func BV4ClosureMemo(net *topology.Network, memo *evidence.PatternMemo, source topology.NodeID, byzantine []topology.NodeID, t int) (Prediction, error) {
	if memo == nil {
		return Prediction{}, fmt.Errorf("analysis: pattern memo is required")
	}
	return bv4ClosureWith(net, memo.HonestPathCount, source, byzantine, t)
}
