package analysis

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/evidence"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestValidation(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	if _, err := FloodReachable(nil, 0, nil); err == nil {
		t.Error("nil network must be rejected")
	}
	if _, err := FloodReachable(net, -1, nil); err == nil {
		t.Error("bad source must be rejected")
	}
	if _, err := FloodReachable(net, 0, []topology.NodeID{0}); err == nil {
		t.Error("faulty source must be rejected")
	}
	if _, err := FloodReachable(net, 0, []topology.NodeID{9999}); err == nil {
		t.Error("out-of-range fault must be rejected")
	}
	if _, err := CPAClosure(net, 0, nil, -1); err == nil {
		t.Error("negative t must be rejected")
	}
	if _, err := BV4Closure(net, nil, 0, nil, 1); err == nil {
		t.Error("nil family table must be rejected")
	}
}

func TestFloodReachableFaultFree(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	pred, err := FloodReachable(net, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Count != net.Size() {
		t.Errorf("reached %d of %d", pred.Count, net.Size())
	}
	if !pred.All(net, nil) {
		t.Error("All must hold fault-free")
	}
	// Hop radius of a 10x10 r=1 torus from a corner is 5.
	if pred.Rounds != 5 {
		t.Errorf("BFS depth %d, want 5", pred.Rounds)
	}
}

// TestFloodPredictionMatchesSimulation is the E25 differential check for
// the crash-stop model: static reachability equals the simulated outcome.
func TestFloodPredictionMatchesSimulation(t *testing.T) {
	net := testNet(t, 16, 10, 1)
	src := net.IDOf(grid.C(0, 0))
	for seed := int64(0); seed < 5; seed++ {
		crashed, err := fault.RandomBounded(net, 2, -1, seed)
		if err != nil {
			t.Fatal(err)
		}
		crashed = remove(crashed, src)
		pred, err := FloodReachable(net, src, crashed)
		if err != nil {
			t.Fatal(err)
		}
		out, err := protocol.Run(protocol.RunConfig{
			Kind:   protocol.Flood,
			Params: protocol.Params{Net: net, Source: src, Value: 1},
			Crash:  crashMap(crashed),
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < net.Size(); id++ {
			_, decided := out.Result.Decided[topology.NodeID(id)]
			if pred.Committed[id] != decided {
				t.Fatalf("seed %d node %d: predicted %v, simulated %v",
					seed, id, pred.Committed[id], decided)
			}
		}
	}
}

// TestCPAPredictionMatchesSimulation: against silent adversaries the CPA
// closure equals the simulation exactly.
func TestCPAPredictionMatchesSimulation(t *testing.T) {
	net := testNet(t, 24, 14, 2)
	src := net.IDOf(grid.C(0, 0))
	tVal := bounds.MaxCPALinf(2)
	for seed := int64(0); seed < 4; seed++ {
		byz, err := fault.RandomBounded(net, tVal, -1, seed)
		if err != nil {
			t.Fatal(err)
		}
		byz = remove(byz, src)
		pred, err := CPAClosure(net, src, byz, tVal)
		if err != nil {
			t.Fatal(err)
		}
		out, err := protocol.Run(protocol.RunConfig{
			Kind:      protocol.CPA,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tVal},
			Byzantine: byzMap(byz),
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < net.Size(); id++ {
			_, decided := out.Result.Decided[topology.NodeID(id)]
			if pred.Committed[id] != decided {
				t.Fatalf("seed %d node %d: predicted %v, simulated %v",
					seed, id, pred.Committed[id], decided)
			}
		}
	}
}

// TestBV4PredictionMatchesSimulation: the designated-evidence closure
// agrees with the simulated protocol against silent adversaries.
func TestBV4PredictionMatchesSimulation(t *testing.T) {
	r := 1
	net := testNet(t, 16, 10, r)
	src := net.IDOf(grid.C(0, 0))
	ft, err := evidence.NewFamilyTable(r)
	if err != nil {
		t.Fatal(err)
	}
	tMax := bounds.MaxByzantineLinf(r)
	for _, scenario := range []struct {
		name string
		byz  func() []topology.NodeID
		tVal int
	}{
		{"random below threshold", func() []topology.NodeID {
			ids, err := fault.RandomBounded(net, tMax, -1, 3)
			if err != nil {
				t.Fatal(err)
			}
			return remove(ids, src)
		}, tMax},
		{"checkerboard at impossibility", func() []topology.NodeID {
			var out []topology.NodeID
			for _, x0 := range []int{4, 12} {
				band, err := fault.CheckerboardBand(net, x0, r)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, band...)
			}
			return out
		}, bounds.MinImpossibleByzantineLinf(r)},
	} {
		byz := scenario.byz()
		pred, err := BV4Closure(net, ft, src, byz, scenario.tVal)
		if err != nil {
			t.Fatal(err)
		}
		out, err := protocol.Run(protocol.RunConfig{
			Kind:      protocol.BV4,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: scenario.tVal},
			Byzantine: byzMap(byz),
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < net.Size(); id++ {
			_, decided := out.Result.Decided[topology.NodeID(id)]
			if pred.Committed[id] != decided {
				t.Fatalf("%s node %v: predicted %v, simulated %v",
					scenario.name, net.CoordOf(topology.NodeID(id)), pred.Committed[id], decided)
			}
		}
	}
}

// TestClosuresAreMonotone: removing faults never shrinks the committed set.
func TestClosuresAreMonotone(t *testing.T) {
	net := testNet(t, 16, 10, 1)
	src := net.IDOf(grid.C(0, 0))
	byz, err := fault.RandomBounded(net, 2, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	byz = remove(byz, src)
	full, err := CPAClosure(net, src, byz, 1)
	if err != nil {
		t.Fatal(err)
	}
	fewer, err := CPAClosure(net, src, byz[:len(byz)/2], 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := range full.Committed {
		if full.Committed[id] && !fewer.Committed[id] {
			t.Fatalf("node %d committed with more faults but not with fewer", id)
		}
	}
}

func remove(ids []topology.NodeID, drop topology.NodeID) []topology.NodeID {
	out := ids[:0]
	for _, id := range ids {
		if id != drop {
			out = append(out, id)
		}
	}
	return out
}

func byzMap(ids []topology.NodeID) map[topology.NodeID]fault.Strategy {
	m := make(map[topology.NodeID]fault.Strategy, len(ids))
	for _, id := range ids {
		m[id] = fault.Silent
	}
	return m
}

func crashMap(ids []topology.NodeID) map[topology.NodeID]int {
	m := make(map[topology.NodeID]int, len(ids))
	for _, id := range ids {
		m[id] = 0
	}
	return m
}
