package analysis

import (
	"fmt"

	"repro/internal/evidence"
	"repro/internal/grid"
	"repro/internal/topology"
)

// Prediction is the set of honest nodes guaranteed to commit.
type Prediction struct {
	// Committed[id] reports whether node id is guaranteed to commit to
	// the source value.
	Committed []bool
	// Count is the number of guaranteed committers.
	Count int
	// Rounds is the number of closure iterations until the fixed point —
	// a lower bound on protocol latency in lock-step rounds.
	Rounds int
}

// All reports whether every honest node is guaranteed to commit.
func (p Prediction) All(net *topology.Network, faulty []topology.NodeID) bool {
	isF := make([]bool, net.Size())
	for _, id := range faulty {
		isF[id] = true
	}
	for i := 0; i < net.Size(); i++ {
		if !isF[i] && !p.Committed[i] {
			return false
		}
	}
	return true
}

// validate checks the shared inputs.
func validate(net *topology.Network, source topology.NodeID) error {
	if net == nil {
		return fmt.Errorf("analysis: network is required")
	}
	if source < 0 || int(source) >= net.Size() {
		return fmt.Errorf("analysis: source %d out of range", source)
	}
	return nil
}

// faultSet builds a lookup and rejects a faulty source.
func faultSet(net *topology.Network, source topology.NodeID, faulty []topology.NodeID) ([]bool, error) {
	isF := make([]bool, net.Size())
	for _, id := range faulty {
		if id == source {
			return nil, fmt.Errorf("analysis: the source must be honest")
		}
		if id < 0 || int(id) >= net.Size() {
			return nil, fmt.Errorf("analysis: faulty node %d out of range", id)
		}
		isF[id] = true
	}
	return isF, nil
}

// FloodReachable computes the crash-stop prediction: the set of non-faulty
// nodes reachable from the source through non-faulty nodes (§VII: "the sole
// criterion for achievability is reachability").
func FloodReachable(net *topology.Network, source topology.NodeID, crashed []topology.NodeID) (Prediction, error) {
	if err := validate(net, source); err != nil {
		return Prediction{}, err
	}
	isF, err := faultSet(net, source, crashed)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{Committed: make([]bool, net.Size())}
	queue := []topology.NodeID{source}
	pred.Committed[source] = true
	pred.Count = 1
	depth := make([]int, net.Size())
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.Neighbors(u) {
			if isF[v] || pred.Committed[v] {
				continue
			}
			pred.Committed[v] = true
			pred.Count++
			depth[v] = depth[u] + 1
			if depth[v] > pred.Rounds {
				pred.Rounds = depth[v]
			}
			queue = append(queue, v)
		}
	}
	return pred, nil
}

// CPAClosure computes the simple protocol's guaranteed-commit fixed point
// (§IX): the source's honest neighbors commit; thereafter an honest node
// commits once at least t+1 of its honest neighbors have committed.
// Byzantine votes are ignored (a silent adversary contributes none; any
// other behaviour only adds evidence).
func CPAClosure(net *topology.Network, source topology.NodeID, byzantine []topology.NodeID, t int) (Prediction, error) {
	if err := validate(net, source); err != nil {
		return Prediction{}, err
	}
	if t < 0 {
		return Prediction{}, fmt.Errorf("analysis: negative fault bound %d", t)
	}
	isF, err := faultSet(net, source, byzantine)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{Committed: make([]bool, net.Size())}
	pred.Committed[source] = true
	pred.Count = 1
	for _, v := range net.Neighbors(source) {
		if !isF[v] && !pred.Committed[v] {
			pred.Committed[v] = true
			pred.Count++
		}
	}
	for {
		changed := false
		for id := 0; id < net.Size(); id++ {
			u := topology.NodeID(id)
			if isF[u] || pred.Committed[u] {
				continue
			}
			votes := 0
			for _, v := range net.Neighbors(u) {
				if !isF[v] && pred.Committed[v] {
					votes++
				}
			}
			if votes >= t+1 {
				pred.Committed[u] = true
				pred.Count++
				changed = true
			}
		}
		if !changed {
			break
		}
		pred.Rounds++
	}
	return pred, nil
}

// BV4Closure computes the indirect-report protocol's guaranteed-commit
// fixed point under the designated-evidence plan (§VI): an honest node
// reliably determines a committed honest origin if it hears it directly or
// if at least t+1 designated paths for that offset consist entirely of
// honest relays; it commits once t+1 reliably-determined honest committers
// lie inside one closed neighborhood. The closure iterates to a fixed
// point; it is exactly the guaranteed outcome against a silent adversary.
func BV4Closure(net *topology.Network, ft *evidence.FamilyTable, source topology.NodeID, byzantine []topology.NodeID, t int) (Prediction, error) {
	if ft == nil {
		return Prediction{}, fmt.Errorf("analysis: family table is required")
	}
	return bv4ClosureWith(net, ft.HonestPathCount, source, byzantine, t)
}

// pathCounter abstracts FamilyTable.HonestPathCount so the closure can run
// either against the table directly or through a pattern memo
// (BV4ClosureMemo); both must return identical counts for identical inputs.
type pathCounter func(net *topology.Network, receiver, origin topology.NodeID, honest func(topology.NodeID) bool) int

// bv4ClosureWith is the shared §VI fixed-point core behind BV4Closure and
// BV4ClosureMemo.
func bv4ClosureWith(net *topology.Network, hpc pathCounter, source topology.NodeID, byzantine []topology.NodeID, t int) (Prediction, error) {
	if err := validate(net, source); err != nil {
		return Prediction{}, err
	}
	if net.Metric() != grid.Linf {
		return Prediction{}, fmt.Errorf("analysis: BV4Closure requires the L∞ metric")
	}
	if t < 0 {
		return Prediction{}, fmt.Errorf("analysis: negative fault bound %d", t)
	}
	isF, err := faultSet(net, source, byzantine)
	if err != nil {
		return Prediction{}, err
	}
	pred := Prediction{Committed: make([]bool, net.Size())}
	commit := func(u topology.NodeID) {
		if !pred.Committed[u] {
			pred.Committed[u] = true
			pred.Count++
		}
	}
	commit(source)
	for _, v := range net.Neighbors(source) {
		if !isF[v] {
			commit(v)
		}
	}
	for {
		changed := false
		for id := 0; id < net.Size(); id++ {
			u := topology.NodeID(id)
			if isF[u] || pred.Committed[u] {
				continue
			}
			if bv4CanCommit(net, hpc, u, isF, pred.Committed, t) {
				commit(u)
				changed = true
			}
		}
		if !changed {
			break
		}
		pred.Rounds++
	}
	return pred, nil
}

// bv4CanCommit applies the §VI commit rule for one node against the
// guaranteed-committed set.
func bv4CanCommit(net *topology.Network, hpc pathCounter, u topology.NodeID, isF, committed []bool, t int) bool {
	// Count reliably-determined committers per closed-neighborhood center.
	counters := make(map[topology.NodeID]int)
	uc := net.CoordOf(u)
	tor := net.Torus()
	// Candidate origins: honest committed nodes within L∞ distance 2r
	// (direct hearing or a designated family offset).
	r := net.Radius()
	for dy := -2 * r; dy <= 2*r; dy++ {
		for dx := -2 * r; dx <= 2*r; dx++ {
			oc := tor.Wrap(uc.Add(grid.C(dx, dy)))
			origin := net.IDOf(oc)
			if origin == u || isF[origin] || !committed[origin] {
				continue
			}
			if !determinedStatic(net, hpc, u, origin, isF, t) {
				continue
			}
			for _, center := range net.ClosedNbdIDs(net.CoordOf(origin)) {
				counters[center]++
				if counters[center] >= t+1 {
					return true
				}
			}
		}
	}
	return false
}

// determinedStatic reports whether u is guaranteed to reliably determine
// origin's value: direct radio contact, or ≥ t+1 designated paths whose
// relays are all honest (honest relays always forward designated prefixes).
func determinedStatic(net *topology.Network, hpc pathCounter, u, origin topology.NodeID, isF []bool, t int) bool {
	if net.AreNeighbors(u, origin) {
		return true
	}
	honestPaths := hpc(net, u, origin, func(id topology.NodeID) bool {
		return !isF[id]
	})
	return honestPaths >= t+1
}
