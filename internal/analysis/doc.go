// Package analysis predicts protocol outcomes statically, without running
// the message-passing simulation: reachability closure for crash-stop
// flooding (§VII), the t+1-committed-neighbors closure for the simple
// protocol (§IX), and the designated-evidence closure of the indirect-report
// protocol (§VI). Against a silent adversary the predictions are exact, so
// the analyzer doubles as a differential oracle for the simulator
// (experiment E25) and as a fast screening tool for adversarial placements.
//
// Silent faults are the worst case for liveness: any transmission a
// Byzantine node chooses to make can only add evidence for honest nodes
// (wrong-value evidence never blocks correct commits, by Theorem 2). The
// closures below therefore compute exactly the set of nodes that must
// commit no matter what the faulty nodes do.
package analysis
