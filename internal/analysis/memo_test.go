package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/evidence"
	"repro/internal/topology"
)

// TestBV4ClosureMemoMatches differentially validates the memoized closure
// against the direct one over a randomized fault-placement sweep: every
// prediction must be identical node-for-node, and the shared memo must
// actually hit across sweep elements.
func TestBV4ClosureMemoMatches(t *testing.T) {
	for _, r := range []int{1, 2} {
		net := testNet(t, 4*r+8, 4*r+6, r)
		ft, err := evidence.NewFamilyTable(r)
		if err != nil {
			t.Fatal(err)
		}
		memo := evidence.NewPatternMemo(ft)
		rng := rand.New(rand.NewSource(int64(100 + r)))
		tBound := r * (2*r + 1) / 2
		for trial := 0; trial < 25; trial++ {
			source := topology.NodeID(rng.Intn(net.Size()))
			var byz []topology.NodeID
			seen := map[topology.NodeID]bool{source: true}
			for i := 0; i < rng.Intn(2*tBound+2); i++ {
				id := topology.NodeID(rng.Intn(net.Size()))
				if !seen[id] {
					seen[id] = true
					byz = append(byz, id)
				}
			}
			want, werr := BV4Closure(net, ft, source, byz, tBound)
			got, gerr := BV4ClosureMemo(net, memo, source, byz, tBound)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("r=%d trial=%d: memo err %v, direct err %v", r, trial, gerr, werr)
			}
			if werr != nil {
				continue
			}
			if got.Count != want.Count || got.Rounds != want.Rounds {
				t.Fatalf("r=%d trial=%d: memo (count %d, rounds %d), direct (count %d, rounds %d)",
					r, trial, got.Count, got.Rounds, want.Count, want.Rounds)
			}
			for id := range want.Committed {
				if got.Committed[id] != want.Committed[id] {
					t.Fatalf("r=%d trial=%d node %d: memo %v, direct %v",
						r, trial, id, got.Committed[id], want.Committed[id])
				}
			}
		}
		if st := memo.Stats(); st.Hits == 0 {
			t.Errorf("r=%d: memo never hit across the sweep (stats %+v)", r, st)
		}
	}
	if _, err := BV4ClosureMemo(testNet(t, 10, 10, 1), nil, 0, nil, 1); err == nil {
		t.Error("nil memo must be rejected")
	}
}
