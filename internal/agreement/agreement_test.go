package agreement

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestRunValidation(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	cases := []Config{
		{},
		{Net: net},
		{Net: net, Committee: []topology.NodeID{0}, Inputs: nil},
		{Net: net, Committee: []topology.NodeID{0, 0}, Inputs: []byte{1, 1}},
		{Net: net, Committee: []topology.NodeID{0}, Inputs: []byte{3}},
		{Net: net, Committee: []topology.NodeID{9999}, Inputs: []byte{1}},
	}
	for i, cfg := range cases {
		cfg.Kind = protocol.BV4
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestRunRejectsNonTorusForGridKinds pins the canonical torus-only message
// at the agreement layer: Config.Net accepts any topology.Graph, but grid
// kinds must surface the factory's exact rejection text, matching the
// public rbcast format (requesting protocol, then offending family).
func TestRunRejectsNonTorusForGridKinds(t *testing.T) {
	g, err := topology.NewCustom(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("NewCustom: %v", err)
	}
	cfg := Config{Net: g, Committee: []topology.NodeID{0}, Inputs: []byte{1}, Kind: protocol.BV4, T: 1}
	_, err = Run(cfg)
	if err == nil {
		t.Fatal("expected the torus-only rejection, got nil")
	}
	want := `protocol: bv4 requires the torus topology, got family "custom"`
	if err.Error() != want {
		t.Errorf("error drifted from the canonical format:\n got:  %s\n want: %s", err, want)
	}
}

func TestAgreementFaultFree(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	committee := []topology.NodeID{
		net.IDOf(grid.C(0, 0)), net.IDOf(grid.C(6, 0)), net.IDOf(grid.C(0, 6)),
	}
	res, err := Run(Config{
		Net:       net,
		Committee: committee,
		Inputs:    []byte{1, 1, 0},
		Kind:      protocol.BV4,
		T:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("honest nodes disagreed")
	}
	// Majority of (1,1,0) is 1.
	for id, d := range res.Decisions {
		if d != 1 {
			t.Errorf("node %d decided %d, want 1", id, d)
		}
	}
	// Every vector is fully resolved and identical.
	for id, vec := range res.Vectors {
		if len(vec) != 3 {
			t.Fatalf("node %d vector length %d", id, len(vec))
		}
		if vec[0] != 1 || vec[1] != 1 || vec[2] != 0 {
			t.Errorf("node %d vector %v", id, vec)
		}
	}
}

func TestAgreementValidity(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	committee := []topology.NodeID{
		net.IDOf(grid.C(0, 0)), net.IDOf(grid.C(6, 6)),
	}
	res, err := Run(Config{
		Net:       net,
		Committee: committee,
		Inputs:    []byte{1, 1},
		Kind:      protocol.BV2,
		T:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Errorf("uniform inputs must yield validity: agreement=%v validity=%v",
			res.Agreement, res.Validity)
	}
}

func TestAgreementWithByzantineCommitteeMember(t *testing.T) {
	// A Byzantine committee member may lie about its input, but the radio
	// medium prevents equivocation: all honest nodes still agree, and the
	// honest majority carries validity.
	net := testNet(t, 16, 10, 1)
	tMax := bounds.MaxByzantineLinf(1)
	committee := []topology.NodeID{
		net.IDOf(grid.C(0, 0)),
		net.IDOf(grid.C(8, 0)),
		net.IDOf(grid.C(0, 5)),
	}
	byzMember := committee[1]
	res, err := Run(Config{
		Net:       net,
		Committee: committee,
		Inputs:    []byte{1, 0, 1}, // the Byzantine member's input is irrelevant
		Kind:      protocol.BV4,
		T:         tMax,
		Byzantine: map[topology.NodeID]fault.Strategy{byzMember: fault.Liar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("agreement violated with a Byzantine committee member")
	}
	if !res.Validity {
		t.Fatal("validity violated: honest inputs were uniform 1")
	}
	for _, d := range res.Decisions {
		if d != 1 {
			t.Fatalf("decision %d, want honest input 1", d)
		}
	}
	// Every honest node holds the SAME view of the Byzantine instance —
	// no equivocation is possible on the radio channel.
	var ref []byte
	for _, vec := range res.Vectors {
		if ref == nil {
			ref = vec
			continue
		}
		if vec[1] != ref[1] {
			t.Fatalf("instance views diverge: %v vs %v", vec[1], ref[1])
		}
	}
}

func TestAgreementWithByzantineRelays(t *testing.T) {
	// Non-committee Byzantine forgers at the threshold budget cannot break
	// agreement or validity.
	net := testNet(t, 16, 10, 1)
	tMax := bounds.MaxByzantineLinf(1)
	committee := []topology.NodeID{net.IDOf(grid.C(0, 0)), net.IDOf(grid.C(8, 5))}
	byz, err := fault.RandomBounded(net, tMax, -1, 4)
	if err != nil {
		t.Fatal(err)
	}
	bm := make(map[topology.NodeID]fault.Strategy)
	for _, id := range byz {
		if id != committee[0] && id != committee[1] {
			bm[id] = fault.Forger
		}
	}
	res, err := Run(Config{
		Net:       net,
		Committee: committee,
		Inputs:    []byte{1, 1},
		Kind:      protocol.BV4,
		T:         tMax,
		Byzantine: bm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Errorf("agreement=%v validity=%v under forger relays", res.Agreement, res.Validity)
	}
}

func TestMajority(t *testing.T) {
	cases := []struct {
		vec  []byte
		want byte
	}{
		{[]byte{1, 1, 0}, 1},
		{[]byte{0, 0, 1}, 0},
		{[]byte{1, 0}, 0}, // tie → 0
		{[]byte{Undecided, 1}, 1},
		{[]byte{Undecided, Undecided}, 0},
		{nil, 0},
	}
	for _, tc := range cases {
		if got := majority(tc.vec); got != tc.want {
			t.Errorf("majority(%v) = %d, want %d", tc.vec, got, tc.want)
		}
	}
}
