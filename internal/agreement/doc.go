// Package agreement builds Byzantine agreement (interactive consistency) on
// top of the paper's reliable-broadcast primitive. The paper notes that its
// Theorem 1 "establishes an exact threshold for Byzantine agreement under
// this model" (§VI): once reliable broadcast is available, agreement follows
// by the classical reduction — every committee member broadcasts its input
// in its own instance, and everyone decides a deterministic function
// (majority) of the commonly-received vector.
//
// The radio medium makes the reduction particularly clean: a Byzantine
// committee member cannot equivocate (its local broadcast reaches all
// neighbors identically and only the first version counts, §V), so even
// faulty sources yield a consistent per-instance outcome — either every
// honest node commits the same value, or none commits.
//
// Instances are multiplexed over one engine run via the Message.Instance
// tag: each node runs one protocol state machine per instance, and a mux
// process routes deliveries and stamps transmissions.
package agreement
