package agreement

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config describes an agreement run.
type Config struct {
	// Net is the radio network (required) — any topology.Graph family.
	// Kinds that need the torus geometry (BV4, BV2) reject other families
	// at factory construction with the canonical torus-only error.
	Net topology.Graph
	// Committee lists the broadcast sources, one instance each. Inputs
	// holds their binary inputs (same length).
	Committee []topology.NodeID
	// Inputs are the committee members' binary input values.
	Inputs []byte
	// Kind selects the underlying broadcast protocol (BV4 or BV2 for
	// Byzantine settings).
	Kind protocol.Kind
	// T is the per-neighborhood fault bound.
	T int
	// Byzantine assigns adversarial behaviour; Byzantine committee
	// members are allowed (that is the point of agreement).
	Byzantine map[topology.NodeID]fault.Strategy
	// MaxRounds bounds the run (0 = engine default).
	MaxRounds int
}

// Result is the outcome of an agreement run.
type Result struct {
	// Decisions maps each honest node to its agreement decision.
	Decisions map[topology.NodeID]byte
	// Vectors maps each honest node to its per-instance view (255 = no
	// commitment in that instance).
	Vectors map[topology.NodeID][]byte
	// Agreement reports whether all honest nodes decided the same value.
	Agreement bool
	// Validity reports whether, when all honest committee members shared
	// the same input v, the common decision is v (vacuously true
	// otherwise).
	Validity bool
	// Stats carries the engine statistics.
	Stats sim.Stats
}

// Undecided marks an instance with no commitment in a node's vector.
const Undecided byte = 255

// Run executes the agreement protocol.
func Run(cfg Config) (Result, error) {
	if cfg.Net == nil {
		return Result{}, fmt.Errorf("agreement: Config.Net is required")
	}
	if len(cfg.Committee) == 0 {
		return Result{}, fmt.Errorf("agreement: committee must not be empty")
	}
	if len(cfg.Committee) != len(cfg.Inputs) {
		return Result{}, fmt.Errorf("agreement: %d committee members but %d inputs",
			len(cfg.Committee), len(cfg.Inputs))
	}
	seen := make(map[topology.NodeID]bool, len(cfg.Committee))
	for i, id := range cfg.Committee {
		if id < 0 || int(id) >= cfg.Net.Size() {
			return Result{}, fmt.Errorf("agreement: committee member %d out of range", id)
		}
		if seen[id] {
			return Result{}, fmt.Errorf("agreement: duplicate committee member %d", id)
		}
		seen[id] = true
		if cfg.Inputs[i] > 1 {
			return Result{}, fmt.Errorf("agreement: input %d of member %d not binary", cfg.Inputs[i], id)
		}
	}

	// Per-instance honest factories.
	factories := make([]sim.ProcessFactory, len(cfg.Committee))
	for i, src := range cfg.Committee {
		f, err := protocol.NewFactory(cfg.Kind, protocol.Params{
			Net:    cfg.Net,
			Source: src,
			Value:  cfg.Inputs[i],
			T:      cfg.T,
		})
		if err != nil {
			return Result{}, err
		}
		factories[i] = f
	}

	muxes := make(map[topology.NodeID]*muxProc, cfg.Net.Size())
	factory := func(id topology.NodeID) sim.Process {
		if strat, ok := cfg.Byzantine[id]; ok {
			return strat.NewProcess(id)
		}
		inners := make([]sim.Process, len(factories))
		for i, f := range factories {
			inners[i] = f(id)
		}
		m := &muxProc{inners: inners}
		muxes[id] = m
		return m
	}
	res, err := sim.Run(sim.Config{
		Net:       cfg.Net,
		Factory:   factory,
		MaxRounds: cfg.MaxRounds,
	})
	if err != nil {
		return Result{}, err
	}

	out := Result{
		Decisions: make(map[topology.NodeID]byte, len(muxes)),
		Vectors:   make(map[topology.NodeID][]byte, len(muxes)),
		Agreement: true,
		Validity:  true,
		Stats:     res.Stats,
	}
	ids := make([]topology.NodeID, 0, len(muxes))
	for id := range muxes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vec := muxes[id].vector()
		out.Vectors[id] = vec
		out.Decisions[id] = majority(vec)
	}
	// Agreement: all honest decisions equal.
	first := out.Decisions[ids[0]]
	for _, id := range ids {
		if out.Decisions[id] != first {
			out.Agreement = false
		}
	}
	// Validity: if all honest committee inputs coincide, the decision
	// matches them.
	common := byte(Undecided)
	uniform := true
	for i, src := range cfg.Committee {
		if _, byz := cfg.Byzantine[src]; byz {
			continue
		}
		if common == Undecided {
			common = cfg.Inputs[i]
		} else if cfg.Inputs[i] != common {
			uniform = false
		}
	}
	if uniform && common != Undecided {
		for _, id := range ids {
			if out.Decisions[id] != common {
				out.Validity = false
			}
		}
	}
	return out, nil
}

// majority returns the majority over committed instance values (Undecided
// entries are skipped; ties and empty vectors decide 0).
func majority(vec []byte) byte {
	ones, zeros := 0, 0
	for _, v := range vec {
		switch v {
		case 0:
			zeros++
		case 1:
			ones++
		}
	}
	if ones > zeros {
		return 1
	}
	return 0
}

// muxProc routes one node's traffic to its per-instance protocol processes
// and stamps outgoing messages with the instance id.
type muxProc struct {
	inners []sim.Process
}

// Init implements sim.Process.
func (m *muxProc) Init(ctx sim.Context) {
	for i, p := range m.inners {
		p.Init(&stampCtx{inner: ctx, instance: int32(i)})
	}
}

// Deliver implements sim.Process.
func (m *muxProc) Deliver(ctx sim.Context, from topology.NodeID, msg sim.Message) {
	i := int(msg.Instance)
	if i < 0 || i >= len(m.inners) {
		return // unknown instance: Byzantine noise
	}
	m.inners[i].Deliver(&stampCtx{inner: ctx, instance: msg.Instance}, from, msg)
}

// Decided implements sim.Process: the mux itself reports a decision once
// every instance has resolved — but for agreement semantics the engine-level
// decision is unused; vectors are read after the run.
func (m *muxProc) Decided() (byte, bool) { return 0, false }

// vector snapshots the per-instance commitments.
func (m *muxProc) vector() []byte {
	vec := make([]byte, len(m.inners))
	for i, p := range m.inners {
		if v, ok := p.Decided(); ok {
			vec[i] = v
		} else {
			vec[i] = Undecided
		}
	}
	return vec
}

// stampCtx stamps broadcasts with the instance id.
type stampCtx struct {
	inner    sim.Context
	instance int32
}

// Self implements sim.Context.
func (c *stampCtx) Self() topology.NodeID { return c.inner.Self() }

// Round implements sim.Context.
func (c *stampCtx) Round() int { return c.inner.Round() }

// Broadcast implements sim.Context.
func (c *stampCtx) Broadcast(m sim.Message) {
	m.Instance = c.instance
	c.inner.Broadcast(m)
}

var (
	_ sim.Process = (*muxProc)(nil)
	_ sim.Context = (*stampCtx)(nil)
)
