package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/etrace"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// ErrDeadline reports that a run was stopped by its Context before reaching
// quiescence or MaxRounds. The result returned alongside it is the partial
// state at the round boundary where the cancellation was observed. Errors
// wrapping it also wrap the context's own error, so callers can distinguish
// a deadline (context.DeadlineExceeded) from an explicit cancellation
// (context.Canceled) with errors.Is.
var ErrDeadline = errors.New("run deadline exceeded")

// Observer receives engine events; all callbacks are optional. Observers
// power the figure reproductions (frontier traces, message counts) without
// entangling the engine with experiment code.
type Observer struct {
	// OnBroadcast fires when `from` transmits m in round `round`.
	OnBroadcast func(round int, from topology.NodeID, m Message)
	// OnDecide fires the first time a node reports Decided.
	OnDecide func(round int, node topology.NodeID, value byte)
}

// DeliveryMode selects when a queued broadcast is transmitted relative to
// the round in which it was produced.
type DeliveryMode int

const (
	// ModeFrame (default) models a full TDMA frame per round: a node whose
	// slot comes after the sender's hears and may react within the same
	// frame. Broadcasts therefore cascade down the slot order inside one
	// round.
	ModeFrame DeliveryMode = iota + 1
	// ModeNextRound defers every broadcast to the next round: all messages
	// produced in round k are transmitted (in slot order) in round k+1.
	// This is the lock-step semantics used by the concurrent runtime.
	ModeNextRound
)

// Config configures an engine run.
type Config struct {
	// Net is the radio network (required) — any topology.Graph family.
	Net topology.Graph
	// Schedule fixes transmission order; defaults to BestSchedule(Net).
	Schedule topology.Schedule
	// Mode selects frame or lock-step delivery; defaults to ModeFrame.
	Mode DeliveryMode
	// Factory builds each node's process (required).
	Factory ProcessFactory
	// CrashAt silences a node from the given round onward (1-based;
	// round 0 or negative means crashed from the start). Nodes absent
	// from the map never crash. Crashes are atomic at frame boundaries,
	// so local broadcasts are heard by all neighbors or none — the
	// reliable-local-broadcast assumption is never violated.
	CrashAt map[topology.NodeID]int
	// MaxRounds bounds the execution; 0 means DefaultMaxRounds.
	MaxRounds int
	// Observer receives events (optional).
	Observer Observer
	// Medium configures the optional unreliable-channel extension. The
	// zero value is the paper's ideal medium (no loss, one transmission
	// per message).
	Medium Medium
	// Metrics optionally collects totals and per-round histograms of
	// broadcasts, deliveries and commits. Nil disables collection at zero
	// cost; the counters mirror Stats exactly.
	Metrics *metrics.Collector
	// Trace optionally records per-event execution history (broadcasts
	// and deliveries from the engine; protocols add their own events
	// through the same recorder). Nil disables recording at zero cost.
	Trace *etrace.Recorder
	// Context optionally bounds the run by wall clock, independent of
	// MaxRounds: cancellation is observed at frame boundaries, the run
	// stops, and the partial result is returned with an error wrapping
	// ErrDeadline. Nil (or a context that is never done) costs nothing on
	// the hot path.
	Context context.Context
}

// Medium models the channel-quality extension of §II/§X: the paper's ideal
// medium delivers every local broadcast to every neighbor, but a real
// wireless channel suffers accidental collisions and transmission errors.
// The paper notes a local-broadcast primitive "can provide probabilistic
// guarantees" when each transmission succeeds with some probability; this
// models exactly that, with per-receiver iid loss and blind retransmission.
type Medium struct {
	// LossRate is the per-transmission per-receiver drop probability in
	// [0, 1). Zero (default) is the ideal reliable channel.
	LossRate float64
	// Retransmit is the number of times each broadcast is transmitted
	// (the probabilistic reliable-local-broadcast primitive); values < 1
	// mean 1. A receiver processes the first surviving copy only —
	// deduplication is the receiver's job, which every honest protocol
	// here already performs.
	Retransmit int
	// Seed drives the loss process deterministically.
	Seed int64
}

// lossy reports whether the medium deviates from the ideal channel.
func (m Medium) lossy() bool { return m.LossRate > 0 }

// DefaultMaxRounds bounds runs whose protocols fail to quiesce.
const DefaultMaxRounds = 10_000

// Stats aggregates an execution.
type Stats struct {
	// Rounds is the number of TDMA frames executed.
	Rounds int
	// Broadcasts counts local broadcasts transmitted.
	Broadcasts int
	// Deliveries counts per-receiver message deliveries.
	Deliveries int
	// Quiesced reports whether the run ended because no node had
	// anything left to transmit (as opposed to hitting MaxRounds).
	Quiesced bool
}

// Result is the outcome of an engine run.
type Result struct {
	Stats Stats
	// Decided maps node id to committed value for nodes that decided.
	Decided map[topology.NodeID]byte
	// DecidedRound records the frame in which each decision was first
	// observed (after the node's deliveries of that frame).
	DecidedRound map[topology.NodeID]int
}

// noCrash is the crashRound sentinel for nodes that never crash.
const noCrash = int(^uint(0) >> 1) // max int

// Engine is the deterministic round/slot executor.
//
// The hot path is allocation-free in steady state: decision and crash
// tracking use dense per-node arrays instead of maps, the Context handed to
// processes is a single reused value (processes must not retain it — see
// Context), and drained outbox buffers are recycled through a free list
// instead of being reallocated every frame.
type Engine struct {
	net    topology.Graph
	sched  topology.Schedule
	mode   DeliveryMode
	procs  []Process
	order  []topology.NodeID // node ids in slot order
	outbox [][]Message
	free   [][]Message // drained outbox buffers, recycled by Broadcast
	snap   [][]Message // ModeNextRound: reusable frozen-outbox snapshot
	// crashRound[id] is the first silent round (noCrash = never).
	crashRound []int
	maxR       int
	obs        Observer
	medium     Medium
	metrics    *metrics.Collector
	trace      *etrace.Recorder
	rng        *rand.Rand // non-nil only for a lossy medium
	// decided is a word-packed bitset over node ids; decidedVal/decRound
	// are meaningful only where the bit is set.
	decided    topology.NodeSet
	decidedVal []byte
	decRound   []int
	nDecided   int
	ctx        nodeCtx // reused Context; fields are set before each call
	stats      Stats
	// runCtx is Config.Context; done is its Done channel, hoisted so the
	// per-frame check is a single nil test plus a non-blocking select.
	runCtx context.Context
	done   <-chan struct{}
}

// NewEngine validates cfg and builds the engine with all processes
// initialized (Init runs in slot order, with round = 0).
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: Config.Net is required")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("sim: Config.Factory is required")
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = topology.BestSchedule(cfg.Net)
	}
	maxR := cfg.MaxRounds
	if maxR <= 0 {
		maxR = DefaultMaxRounds
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = ModeFrame
	}
	if mode != ModeFrame && mode != ModeNextRound {
		return nil, fmt.Errorf("sim: invalid delivery mode %d", int(mode))
	}
	if cfg.Medium.LossRate < 0 || cfg.Medium.LossRate >= 1 {
		return nil, fmt.Errorf("sim: loss rate %v outside [0,1)", cfg.Medium.LossRate)
	}
	size := cfg.Net.Size()
	e := &Engine{
		net:        cfg.Net,
		sched:      sched,
		mode:       mode,
		procs:      make([]Process, size),
		order:      make([]topology.NodeID, size),
		outbox:     make([][]Message, size),
		crashRound: make([]int, size),
		maxR:       maxR,
		obs:        cfg.Observer,
		medium:     cfg.Medium,
		metrics:    cfg.Metrics,
		trace:      cfg.Trace,
		decided:    topology.NewNodeSet(size),
		decidedVal: make([]byte, size),
		decRound:   make([]int, size),
	}
	e.ctx.engine = e
	if cfg.Context != nil {
		e.runCtx = cfg.Context
		e.done = cfg.Context.Done()
	}
	if mode == ModeNextRound {
		e.snap = make([][]Message, size)
	}
	for i := range e.crashRound {
		e.crashRound[i] = noCrash
	}
	for id, at := range cfg.CrashAt {
		if int(id) >= 0 && int(id) < size {
			e.crashRound[id] = at
		}
	}
	if e.medium.Retransmit < 1 {
		e.medium.Retransmit = 1
	}
	if e.medium.lossy() {
		e.rng = rand.New(rand.NewSource(e.medium.Seed))
	}
	for i := 0; i < size; i++ {
		e.order[i] = topology.NodeID(i)
	}
	// Stable order: by slot, ties by id (slots may repeat across cells).
	sort.SliceStable(e.order, func(i, j int) bool {
		si, sj := sched.SlotOf(e.order[i]), sched.SlotOf(e.order[j])
		if si != sj {
			return si < sj
		}
		return e.order[i] < e.order[j]
	})
	for _, id := range e.order {
		e.procs[id] = cfg.Factory(id)
	}
	for _, id := range e.order {
		if e.isCrashed(id, 0) {
			continue
		}
		e.ctx.id, e.ctx.round = id, 0
		e.procs[id].Init(&e.ctx)
		e.noteDecision(0, id)
	}
	return e, nil
}

// survives reports whether at least one of the Retransmit copies of a
// transmission reaches a given receiver. On the ideal medium it is always
// true and consumes no randomness.
func (e *Engine) survives() bool {
	if !e.medium.lossy() {
		return true
	}
	for i := 0; i < e.medium.Retransmit; i++ {
		if e.rng.Float64() >= e.medium.LossRate {
			return true
		}
	}
	return false
}

// isCrashed reports whether id is silent in the given round.
func (e *Engine) isCrashed(id topology.NodeID, round int) bool {
	return round >= e.crashRound[id]
}

// noteDecision records a first-time decision and fires the observer.
func (e *Engine) noteDecision(round int, id topology.NodeID) {
	if e.decided.Has(id) {
		return
	}
	if v, ok := e.procs[id].Decided(); ok {
		e.decided.Add(id)
		e.decidedVal[id] = v
		e.decRound[id] = round
		e.nDecided++
		e.metrics.AddCommit(round)
		if e.obs.OnDecide != nil {
			e.obs.OnDecide(round, id, v)
		}
	}
}

// Step executes one TDMA frame. It returns true if any node transmitted.
func (e *Engine) Step() bool {
	e.stats.Rounds++
	round := e.stats.Rounds
	progress := false
	var roundBroadcasts, roundDeliveries int64
	if e.mode == ModeNextRound {
		// Lock-step: freeze all outboxes before any delivery so broadcasts
		// produced this round wait for the next. The snapshot buffer is
		// reused across rounds.
		copy(e.snap, e.outbox)
		for i := range e.outbox {
			e.outbox[i] = nil
		}
	}
	for _, from := range e.order {
		var out []Message
		if e.mode == ModeNextRound {
			out = e.snap[from]
			e.snap[from] = nil
		} else {
			out = e.outbox[from]
			e.outbox[from] = nil
		}
		if len(out) == 0 {
			continue
		}
		if !e.isCrashed(from, round) {
			for _, m := range out {
				progress = true
				e.stats.Broadcasts += e.medium.Retransmit
				roundBroadcasts += int64(e.medium.Retransmit)
				if e.obs.OnBroadcast != nil {
					e.obs.OnBroadcast(round, from, m)
				}
				if e.trace != nil {
					e.trace.Broadcast(round, from, uint8(m.Kind), m.Value, m.Origin, m.Path)
				}
				for _, nb := range e.net.Neighbors(from) {
					if e.isCrashed(nb, round) {
						continue
					}
					if !m.Audience.Includes(nb) {
						continue // directional transmission (adversarial; see Message.Audience)
					}
					if !e.survives() {
						continue // lost to an accidental collision / channel error
					}
					e.stats.Deliveries++
					roundDeliveries++
					if e.trace != nil {
						// Before Deliver, so a commit event triggered by
						// this message follows its delivery in the record.
						e.trace.Delivery(round, nb, from, uint8(m.Kind), m.Value, m.Origin, m.Path)
					}
					e.ctx.id, e.ctx.round = nb, round
					e.procs[nb].Deliver(&e.ctx, from, m)
					e.noteDecision(round, nb)
				}
			}
		}
		e.free = append(e.free, out[:0]) // recycle the drained buffer
	}
	e.metrics.AddBroadcasts(round, roundBroadcasts)
	e.metrics.AddDeliveries(round, roundDeliveries)
	return progress
}

// Run executes frames until quiescence, MaxRounds, or Context expiry. On
// expiry it returns the partial result together with an error wrapping both
// ErrDeadline and the context's error; otherwise the error is nil.
func (e *Engine) Run() (Result, error) {
	if _, err := e.runUntil(e.maxR); err != nil {
		return e.result(), err
	}
	return e.result(), nil
}

// expired reports whether the run context is done. It never blocks and is
// free when no context was configured.
func (e *Engine) expired() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// result snapshots decisions and stats.
func (e *Engine) result() Result {
	dec := make(map[topology.NodeID]byte, e.nDecided)
	rounds := make(map[topology.NodeID]int, e.nDecided)
	e.decided.ForEach(func(id topology.NodeID) {
		dec[id] = e.decidedVal[id]
		rounds[id] = e.decRound[id]
	})
	return Result{Stats: e.stats, Decided: dec, DecidedRound: rounds}
}

// nodeCtx is the per-delivery Context implementation.
type nodeCtx struct {
	engine *Engine
	id     topology.NodeID
	round  int
}

// Self implements Context.
func (c *nodeCtx) Self() topology.NodeID { return c.id }

// Round implements Context.
func (c *nodeCtx) Round() int { return c.round }

// Broadcast implements Context.
func (c *nodeCtx) Broadcast(m Message) {
	e := c.engine
	if e.outbox[c.id] == nil {
		// Reuse a drained buffer instead of growing a fresh one.
		if n := len(e.free); n > 0 {
			e.outbox[c.id] = e.free[n-1]
			e.free = e.free[:n-1]
		}
	}
	e.outbox[c.id] = append(e.outbox[c.id], m)
}

var _ Context = (*nodeCtx)(nil)

// Run is the one-call convenience wrapper: build an engine and run it. A
// non-nil error wrapping ErrDeadline accompanies a *partial* result; any
// other error means the configuration was rejected and the result is zero.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}
