package sim

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/topology"
)

// floodProc is a minimal test protocol: the designated source broadcasts its
// value once; every node commits to the first value heard and relays once.
type floodProc struct {
	id      topology.NodeID
	source  topology.NodeID
	value   byte
	decided bool
}

func (p *floodProc) Init(ctx Context) {
	if p.id == p.source {
		p.decided = true
		ctx.Broadcast(Message{Kind: KindValue, Value: p.value})
	}
}

func (p *floodProc) Deliver(ctx Context, _ topology.NodeID, m Message) {
	if p.decided || m.Kind != KindValue {
		return
	}
	p.decided = true
	p.value = m.Value
	ctx.Broadcast(Message{Kind: KindValue, Value: m.Value})
}

func (p *floodProc) Decided() (byte, bool) {
	if !p.decided {
		return 0, false
	}
	return p.value, true
}

func floodFactory(net *topology.Network, source topology.NodeID, v byte) ProcessFactory {
	return func(id topology.NodeID) Process {
		p := &floodProc{id: id, source: source}
		if id == source {
			p.value = v
		}
		return p
	}
}

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestNewEngineValidation(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	if _, err := NewEngine(Config{Factory: func(topology.NodeID) Process { return NopProcess{} }}); err == nil {
		t.Error("missing Net must be rejected")
	}
	if _, err := NewEngine(Config{Net: net}); err == nil {
		t.Error("missing Factory must be rejected")
	}
}

func TestFloodReachesEveryNode(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	source := net.IDOf(grid.C(0, 0))
	res, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Stats.Quiesced {
		t.Error("flood must quiesce")
	}
	if len(res.Decided) != net.Size() {
		t.Fatalf("decided %d of %d nodes", len(res.Decided), net.Size())
	}
	for id, v := range res.Decided {
		if v != 1 {
			t.Errorf("node %d decided %d, want 1", id, v)
		}
	}
	// Every node relays exactly once: broadcasts == node count.
	if res.Stats.Broadcasts != net.Size() {
		t.Errorf("broadcasts = %d, want %d", res.Stats.Broadcasts, net.Size())
	}
}

func TestFloodRoundsMatchEccentricity(t *testing.T) {
	// On a 12x12 torus with r=1 the farthest node from (0,0) is at L∞
	// distance 6. With TDMA-frame semantics each frame advances the
	// frontier by at least one hop, and decisions cannot outrun hops, so
	// the hop-distance lower bound must hold.
	net := testNet(t, 12, 12, 1)
	source := net.IDOf(grid.C(0, 0))
	far := net.IDOf(grid.C(6, 6))
	res, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DecidedRound[far] < 1 {
		t.Errorf("far node decided in round %d, want ≥ 1", res.DecidedRound[far])
	}
	if res.DecidedRound[source] != 0 {
		t.Errorf("source decided in round %d, want 0 (at Init)", res.DecidedRound[source])
	}
}

func TestCrashedFromStartNeverActs(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	source := net.IDOf(grid.C(0, 0))
	crashed := net.IDOf(grid.C(4, 4))
	res, err := Run(Config{
		Net:     net,
		Factory: floodFactory(net, source, 1),
		CrashAt: map[topology.NodeID]int{crashed: 0},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := res.Decided[crashed]; ok {
		t.Error("a node crashed from the start must not decide")
	}
	if len(res.Decided) != net.Size()-1 {
		t.Errorf("decided %d, want %d", len(res.Decided), net.Size()-1)
	}
}

func TestCrashIsolatesWhenCut(t *testing.T) {
	// Crash three full columns of a thin torus: with r=1 the surviving
	// right part is unreachable (columns 3,4,5 of width 9: distance from
	// x≤2 to x≥6 is ≥ 4 hops through crashed region... use r=1 and a
	// vertical band of width 1 at x=3 plus wrap band at x=7 to cut the
	// ring.
	net := testNet(t, 9, 5, 1)
	source := net.IDOf(grid.C(0, 0))
	crash := make(map[topology.NodeID]int)
	for y := 0; y < 5; y++ {
		crash[net.IDOf(grid.C(3, y))] = 0
		crash[net.IDOf(grid.C(7, y))] = 0
	}
	res, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1), CrashAt: crash})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Nodes with 4 ≤ x ≤ 6 are cut off.
	for y := 0; y < 5; y++ {
		for x := 4; x <= 6; x++ {
			if _, ok := res.Decided[net.IDOf(grid.C(x, y))]; ok {
				t.Errorf("node (%d,%d) behind the cut must not decide", x, y)
			}
		}
	}
	// Nodes on the near side all decide.
	for y := 0; y < 5; y++ {
		for _, x := range []int{0, 1, 2, 8} {
			if _, ok := res.Decided[net.IDOf(grid.C(x, y))]; !ok {
				t.Errorf("node (%d,%d) on source side must decide", x, y)
			}
		}
	}
}

func TestLateCrashStillRelays(t *testing.T) {
	// A node that crashes late (after relaying) does not prevent others
	// from deciding.
	net := testNet(t, 9, 9, 1)
	source := net.IDOf(grid.C(0, 0))
	late := net.IDOf(grid.C(1, 1))
	res, err := Run(Config{
		Net:     net,
		Factory: floodFactory(net, source, 1),
		CrashAt: map[topology.NodeID]int{late: 100},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Decided) != net.Size() {
		t.Errorf("decided %d, want all %d", len(res.Decided), net.Size())
	}
}

func TestMaxRoundsBoundsRun(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	// A babbling process that never quiesces.
	factory := func(id topology.NodeID) Process { return &babbler{} }
	res, err := Run(Config{Net: net, Factory: factory, MaxRounds: 7})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Quiesced {
		t.Error("babbler run must not quiesce")
	}
	if res.Stats.Rounds != 7 {
		t.Errorf("rounds = %d, want 7", res.Stats.Rounds)
	}
}

// babbler transmits one message every round forever, so the run can only
// end by hitting MaxRounds.
type babbler struct {
	lastRound int
}

func (b *babbler) Init(ctx Context) { ctx.Broadcast(Message{Kind: KindValue}) }
func (b *babbler) Deliver(ctx Context, _ topology.NodeID, _ Message) {
	if ctx.Round() > b.lastRound {
		b.lastRound = ctx.Round()
		ctx.Broadcast(Message{Kind: KindValue})
	}
}
func (b *babbler) Decided() (byte, bool) { return 0, false }

func TestObserverSeesEvents(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	source := net.IDOf(grid.C(0, 0))
	var broadcasts, decides int
	obs := Observer{
		OnBroadcast: func(round int, from topology.NodeID, m Message) { broadcasts++ },
		OnDecide:    func(round int, node topology.NodeID, v byte) { decides++ },
	}
	res, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1), Observer: obs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if broadcasts != res.Stats.Broadcasts {
		t.Errorf("observer saw %d broadcasts, stats say %d", broadcasts, res.Stats.Broadcasts)
	}
	if decides != len(res.Decided) {
		t.Errorf("observer saw %d decisions, result has %d", decides, len(res.Decided))
	}
}

func TestDeterminism(t *testing.T) {
	net := testNet(t, 10, 10, 2)
	source := net.IDOf(grid.C(0, 0))
	run := func() Result {
		res, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1)})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for id, r := range a.DecidedRound {
		if b.DecidedRound[id] != r {
			t.Errorf("node %d decided round %d vs %d", id, r, b.DecidedRound[id])
		}
	}
}

func TestStepReportsProgress(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	source := net.IDOf(grid.C(0, 0))
	e, err := NewEngine(Config{Net: net, Factory: floodFactory(net, source, 1)})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if !e.Step() {
		t.Error("first frame must transmit the source value")
	}
	for i := 0; i < 100 && e.Step(); i++ {
	}
	if e.Step() {
		t.Error("quiesced engine must report no progress")
	}
}
