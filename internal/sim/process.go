package sim

import "repro/internal/topology"

// Context is the interface a Process uses to interact with the medium. The
// engine passes a fresh view each delivery; processes must not retain it
// across calls.
type Context interface {
	// Self returns the node's own id.
	Self() topology.NodeID
	// Round returns the current TDMA frame number, starting at 1.
	Round() int
	// Broadcast queues m for local broadcast in this node's next
	// transmission slot. All queued messages are sent in FIFO order; the
	// shared channel preserves this order at every receiver.
	Broadcast(m Message)
}

// Process is a protocol state machine running at one node. Implementations
// must be deterministic: the engines replay the same delivery sequence and
// expect identical behaviour.
//
// Honest protocol processes and Byzantine adversary processes implement the
// same interface; the medium guarantees (identity, no-duplicity, ordering)
// are enforced by the engine, not trusted to the process.
type Process interface {
	// Init is called once before round 1; the source's initial broadcast
	// is queued here.
	Init(ctx Context)
	// Deliver is called for each message heard from neighbor `from`, in
	// slot order within a round.
	Deliver(ctx Context, from topology.NodeID, m Message)
	// Decided reports the value the node has committed to, if any. For
	// adversarial processes the return is ignored.
	Decided() (byte, bool)
}

// ProcessFactory builds the process for each node. The fault plan decides
// which nodes get honest protocol processes and which get adversarial or
// crashed ones.
type ProcessFactory func(id topology.NodeID) Process

// NopProcess ignores all deliveries and never decides; it models a node
// that crashed before the execution started.
type NopProcess struct{}

// Init implements Process.
func (NopProcess) Init(Context) {}

// Deliver implements Process.
func (NopProcess) Deliver(Context, topology.NodeID, Message) {}

// Decided implements Process.
func (NopProcess) Decided() (byte, bool) { return 0, false }

var _ Process = NopProcess{}
