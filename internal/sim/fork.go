package sim

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// CloneableProcess is a Process whose full state can be duplicated, letting
// the engine fork a running execution. Honest protocol processes implement
// it when their state is a value snapshot (no shared mutable references
// escape); the returned clone must evolve independently of the original.
type CloneableProcess interface {
	Process
	// CloneProcess returns an independent deep copy of the process.
	CloneProcess() Process
}

// Forkable reports whether the engine supports Fork: a deterministic,
// side-effect-free configuration (no observer callbacks, no trace recorder,
// ideal medium — a lossy medium consumes shared rng state) whose processes
// are all cloneable. Callers gate sweep prefix-sharing on this; anything
// non-forkable simply runs scalar.
func (e *Engine) Forkable() bool {
	if e.rng != nil || e.trace != nil {
		return false
	}
	if e.obs.OnBroadcast != nil || e.obs.OnDecide != nil {
		return false
	}
	for _, p := range e.procs {
		if _, ok := p.(CloneableProcess); !ok {
			return false
		}
	}
	return true
}

// Fork duplicates the engine's execution state at the current frame
// boundary, applying a new crash schedule and metrics collector to the
// branch. The fork shares only immutable structure with its parent (network,
// schedule, slot order, queued Message values); all mutable state — process
// state machines, outbox queues, decision tracking, stats — is deep-copied,
// so parent and fork can each continue running independently and
// deterministically.
//
// Fork must be called between frames (never from inside Step) and requires
// Forkable. The new crash schedule must not revive the past: a node already
// silent in executed rounds must stay silent at the same rounds, or the
// branch's prefix would no longer match a from-scratch run. Fork validates
// that crashAt only changes behaviour at rounds strictly after the current
// one and rejects rewrites of history.
func (e *Engine) Fork(crashAt map[topology.NodeID]int, collector *metrics.Collector) (*Engine, error) {
	if !e.Forkable() {
		return nil, fmt.Errorf("sim: engine is not forkable")
	}
	size := e.net.Size()
	executed := e.stats.Rounds // frames already run; round numbers 1..executed
	f := &Engine{
		net:        e.net,
		sched:      e.sched,
		mode:       e.mode,
		procs:      make([]Process, size),
		order:      e.order, // immutable after NewEngine
		outbox:     make([][]Message, size),
		crashRound: make([]int, size),
		maxR:       e.maxR,
		medium:     e.medium,
		metrics:    collector,
		decided:    e.decided.Clone(),
		decidedVal: append([]byte(nil), e.decidedVal...),
		decRound:   append([]int(nil), e.decRound...),
		nDecided:   e.nDecided,
		stats:      e.stats,
		runCtx:     e.runCtx,
		done:       e.done,
	}
	f.ctx.engine = f
	if f.mode == ModeNextRound {
		f.snap = make([][]Message, size)
	}
	for i := range f.crashRound {
		old := e.crashRound[i]
		nw := noCrash
		if at, ok := crashAt[topology.NodeID(i)]; ok {
			nw = at
		}
		// History check: within rounds 0..executed the old and new schedules
		// must agree, or the already-simulated prefix is invalid for the
		// branch. A schedule only diverging at future rounds is exactly the
		// wavefront-prefix reuse Fork exists for.
		oldPast := min(old, executed+1)
		newPast := min(nw, executed+1)
		if oldPast != newPast {
			return nil, fmt.Errorf("sim: fork rewrites history for node %d: crash round %d vs %d with %d rounds executed",
				i, old, nw, executed)
		}
		f.crashRound[i] = nw
	}
	for i, p := range e.procs {
		f.procs[i] = p.(CloneableProcess).CloneProcess()
	}
	// Queued messages are immutable once broadcast (see Message), so a
	// shallow per-node slice copy fully detaches the queues.
	for i, out := range e.outbox {
		if len(out) > 0 {
			f.outbox[i] = append([]Message(nil), out...)
		}
	}
	return f, nil
}

// Rounds returns the number of frames executed so far.
func (e *Engine) Rounds() int { return e.stats.Rounds }

// Terminated reports whether the run has ended (quiescence or MaxRounds);
// further RunUntil calls will make no progress.
func (e *Engine) Terminated() bool {
	return e.stats.Quiesced || e.stats.Rounds >= e.maxR
}

// RunUntil executes frames until the engine has run `round` frames, or until
// quiescence, MaxRounds, or Context expiry — whichever comes first. It
// returns true when the run terminated (so the current state is final) and
// false when it merely paused at the requested frame boundary. Interleaving
// RunUntil calls with Fork is the sweep engine's wavefront-prefix reuse:
// identical executions advance once to the last shared round, then branch.
func (e *Engine) RunUntil(round int) (bool, error) {
	return e.runUntil(round)
}

// Result snapshots the current decisions and stats without running anything.
// After a terminated run it equals the Result returned by Run.
func (e *Engine) Result() Result { return e.result() }

// runUntil is the shared frame loop behind Run and RunUntil. The bookkeeping
// must stay byte-identical to the historical Run loop: a final empty frame
// is subtracted from Rounds and flagged as quiescence.
func (e *Engine) runUntil(limit int) (bool, error) {
	if limit > e.maxR {
		limit = e.maxR
	}
	if e.Terminated() {
		return true, nil
	}
	for e.stats.Rounds < limit {
		if e.expired() {
			return true, fmt.Errorf("sim: %w after %d rounds: %w",
				ErrDeadline, e.stats.Rounds, e.runCtx.Err())
		}
		if !e.Step() {
			e.stats.Rounds-- // final empty frame is bookkeeping, not protocol time
			e.stats.Quiesced = true
			return true, nil
		}
	}
	return e.stats.Rounds >= e.maxR, nil
}
