package sim

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/topology"
)

// recorderProc logs every delivery it sees, in order.
type recorderProc struct {
	log *[]delivery
	id  topology.NodeID
}

type delivery struct {
	to    topology.NodeID
	from  topology.NodeID
	value byte
	round int
}

func (r *recorderProc) Init(ctx Context) {}
func (r *recorderProc) Deliver(ctx Context, from topology.NodeID, m Message) {
	*r.log = append(*r.log, delivery{to: r.id, from: from, value: m.Value, round: ctx.Round()})
}
func (r *recorderProc) Decided() (byte, bool) { return 0, false }

// senderProc transmits a fixed sequence of values, one batch in Init.
type senderProc struct {
	values []byte
}

func (s *senderProc) Init(ctx Context) {
	for _, v := range s.values {
		ctx.Broadcast(Message{Kind: KindValue, Value: v})
	}
}
func (s *senderProc) Deliver(Context, topology.NodeID, Message) {}
func (s *senderProc) Decided() (byte, bool)                     { return 0, false }

// TestPerSenderFIFO verifies the paper's channel-ordering guarantee (§II):
// "if a node transmits messages m1 and m2 respectively in order, they will
// be received in that same order by all neighbors."
func TestPerSenderFIFO(t *testing.T) {
	net, err := topology.New(grid.Torus{W: 9, H: 9}, grid.Linf, 2)
	if err != nil {
		t.Fatal(err)
	}
	sender := net.IDOf(grid.C(4, 4))
	seq := []byte{1, 0, 1, 1, 0}
	var log []delivery
	factory := func(id topology.NodeID) Process {
		if id == sender {
			return &senderProc{values: seq}
		}
		return &recorderProc{log: &log, id: id}
	}
	for _, mode := range []DeliveryMode{ModeFrame, ModeNextRound} {
		log = nil
		if _, err := Run(Config{Net: net, Factory: factory, Mode: mode}); err != nil {
			t.Fatal(err)
		}
		perReceiver := make(map[topology.NodeID][]byte)
		for _, d := range log {
			if d.from != sender {
				t.Fatalf("unexpected sender %d", d.from)
			}
			perReceiver[d.to] = append(perReceiver[d.to], d.value)
		}
		if len(perReceiver) != net.Degree() {
			t.Fatalf("mode %d: %d receivers, want %d", mode, len(perReceiver), net.Degree())
		}
		for to, got := range perReceiver {
			if len(got) != len(seq) {
				t.Fatalf("mode %d: receiver %d got %d messages, want %d", mode, to, len(got), len(seq))
			}
			for i := range seq {
				if got[i] != seq[i] {
					t.Errorf("mode %d: receiver %d order %v, want %v", mode, to, got, seq)
					break
				}
			}
		}
	}
}

// TestBroadcastHeardByAllNeighborsIdentically checks the no-duplicity
// property: a single broadcast reaches every neighbor in the same round
// with the same content.
func TestBroadcastHeardByAllNeighborsIdentically(t *testing.T) {
	net, err := topology.New(grid.Torus{W: 9, H: 9}, grid.Linf, 1)
	if err != nil {
		t.Fatal(err)
	}
	sender := net.IDOf(grid.C(4, 4))
	var log []delivery
	factory := func(id topology.NodeID) Process {
		if id == sender {
			return &senderProc{values: []byte{1}}
		}
		return &recorderProc{log: &log, id: id}
	}
	if _, err := Run(Config{Net: net, Factory: factory}); err != nil {
		t.Fatal(err)
	}
	if len(log) != net.Degree() {
		t.Fatalf("deliveries %d, want %d", len(log), net.Degree())
	}
	round := log[0].round
	for _, d := range log {
		if d.round != round || d.value != 1 {
			t.Errorf("non-identical reception: %+v", d)
		}
	}
}
