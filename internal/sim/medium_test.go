package sim

import (
	"testing"

	"repro/internal/grid"
)

func TestMediumValidation(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	factory := floodFactory(net, 0, 1)
	for _, loss := range []float64{-0.1, 1.0, 1.5} {
		if _, err := Run(Config{Net: net, Factory: factory, Medium: Medium{LossRate: loss}}); err == nil {
			t.Errorf("loss rate %v must be rejected", loss)
		}
	}
}

func TestIdealMediumUnchanged(t *testing.T) {
	// Retransmit > 1 on a lossless channel must not change deliveries,
	// only the broadcast count.
	net := testNet(t, 9, 9, 1)
	source := net.IDOf(grid.C(0, 0))
	base, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1)})
	if err != nil {
		t.Fatal(err)
	}
	retx, err := Run(Config{
		Net:     net,
		Factory: floodFactory(net, source, 1),
		Medium:  Medium{Retransmit: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if retx.Stats.Deliveries != base.Stats.Deliveries {
		t.Errorf("deliveries changed: %d vs %d", retx.Stats.Deliveries, base.Stats.Deliveries)
	}
	if retx.Stats.Broadcasts != 3*base.Stats.Broadcasts {
		t.Errorf("broadcast count %d, want 3×%d", retx.Stats.Broadcasts, base.Stats.Broadcasts)
	}
	if len(retx.Decided) != len(base.Decided) {
		t.Error("decisions changed on a lossless channel")
	}
}

func TestLossyMediumDropsDeliveries(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	source := net.IDOf(grid.C(0, 0))
	lossy, err := Run(Config{
		Net:     net,
		Factory: floodFactory(net, source, 1),
		Medium:  Medium{LossRate: 0.5, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(Config{Net: net, Factory: floodFactory(net, source, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Stats.Deliveries >= ideal.Stats.Deliveries {
		t.Errorf("lossy deliveries %d not below ideal %d",
			lossy.Stats.Deliveries, ideal.Stats.Deliveries)
	}
}

func TestLossyMediumDeterministicPerSeed(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	source := net.IDOf(grid.C(0, 0))
	run := func(seed int64) Result {
		res, err := Run(Config{
			Net:     net,
			Factory: floodFactory(net, source, 1),
			Medium:  Medium{LossRate: 0.4, Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.Stats != b.Stats {
		t.Errorf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	c := run(8)
	if a.Stats == c.Stats {
		t.Log("different seeds produced identical stats (possible but unlikely)")
	}
}

func TestRetransmissionRestoresDelivery(t *testing.T) {
	// At heavy loss, more retransmissions reach strictly more (or equal)
	// nodes; with many retransmissions the flood covers everything.
	net := testNet(t, 12, 12, 1)
	source := net.IDOf(grid.C(0, 0))
	counts := make([]int, 0, 3)
	for _, retx := range []int{1, 4, 10} {
		res, err := Run(Config{
			Net:     net,
			Factory: floodFactory(net, source, 1),
			Medium:  Medium{LossRate: 0.8, Retransmit: retx, Seed: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Decided))
	}
	if counts[2] != net.Size() {
		t.Errorf("10 retransmissions at 80%% loss delivered to %d/%d", counts[2], net.Size())
	}
	if counts[0] >= counts[2] {
		t.Errorf("raw channel (%d) should reach fewer nodes than retx=10 (%d)", counts[0], counts[2])
	}
}

func TestSpoofedMessageFieldsRoundTrip(t *testing.T) {
	m := Message{Kind: KindCommitted, Origin: 4, Value: 1, Spoofed: true, Claimed: 4}
	if !m.Spoofed || m.Claimed != 4 {
		t.Error("spoof fields lost")
	}
	// ExtendPath must preserve the spoof marker (a relayed spoof is still
	// attributed per the chain semantics).
	ext := m.ExtendPath(9)
	if !ext.Spoofed || ext.Claimed != 4 {
		t.Error("ExtendPath dropped spoof fields")
	}
}

// testNet and floodFactory are defined in engine_test.go.
