package sim

import (
	"testing"

	"repro/internal/grid"
)

// TestRunAllocsRegression guards the engine's allocation budget: a full
// lock-step flood over 1024 nodes must stay a small multiple of the node
// count. The pre-optimization engine (per-delivery map churn, per-node
// Context values, fresh outbox slices every round) spent ~27k allocations
// on this workload; the rebuilt hot path spends ~1.3k, dominated by the
// one-time process construction. The bound sits far above today's number
// and far below the old one, so it trips on a regression to map-backed
// per-round state without flaking on incidental runtime changes.
func TestRunAllocsRegression(t *testing.T) {
	net := testNet(t, 32, 32, 2)
	src := net.IDOf(grid.C(0, 0))
	cfg := Config{Net: net, Factory: floodFactory(net, src, 1), Mode: ModeNextRound}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds < 5 {
		t.Fatalf("probe workload degenerate: %d rounds", res.Stats.Rounds)
	}
	const maxAllocs = 4 * 1024 // 4 per node; seed measured ~27 per node
	avg := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxAllocs {
		t.Errorf("full run allocated %.0f times (%.1f/round over %d rounds), budget %d — the round hot path regressed",
			avg, avg/float64(res.Stats.Rounds), res.Stats.Rounds, maxAllocs)
	}
}
