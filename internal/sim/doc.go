// Package sim implements the synchronous, collision-free radio medium of the
// paper as a deterministic round/slot engine. Each round is one full TDMA
// frame: nodes transmit in slot order and every local broadcast is heard by
// all neighbors — the paper's "reliable local broadcast assumption" (§II).
// Per-node message ordering is preserved, identities cannot be spoofed, and
// transmissions never collide.
//
// The engine is protocol-agnostic: protocols (and Byzantine adversaries) are
// Process state machines driven by Deliver events.
package sim
