package sim

import (
	"testing"

	"repro/internal/topology"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindValue, "VALUE"},
		{KindCommitted, "COMMITTED"},
		{KindHeard, "HEARD"},
		{Kind(0), "Kind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestExtendPathCopies(t *testing.T) {
	orig := Message{
		Kind:   KindHeard,
		Origin: 7,
		Value:  1,
		Path:   []topology.NodeID{1, 2},
	}
	ext := orig.ExtendPath(3)
	if len(orig.Path) != 2 {
		t.Fatal("ExtendPath mutated the original path")
	}
	if len(ext.Path) != 3 || ext.Path[2] != 3 {
		t.Fatalf("extended path = %v", ext.Path)
	}
	// Appending to the extension must not alias the original either.
	ext2 := orig.ExtendPath(9)
	if ext.Path[2] != 3 || ext2.Path[2] != 9 {
		t.Error("extensions alias each other")
	}
}

func TestMessageKeyDistinguishes(t *testing.T) {
	base := Message{Kind: KindHeard, Origin: 7, Value: 1, Path: []topology.NodeID{1, 2}}
	variants := []Message{
		{Kind: KindCommitted, Origin: 7, Value: 1, Path: []topology.NodeID{1, 2}},
		{Kind: KindHeard, Origin: 8, Value: 1, Path: []topology.NodeID{1, 2}},
		{Kind: KindHeard, Origin: 7, Value: 0, Path: []topology.NodeID{1, 2}},
		{Kind: KindHeard, Origin: 7, Value: 1, Path: []topology.NodeID{2, 1}},
		{Kind: KindHeard, Origin: 7, Value: 1, Path: []topology.NodeID{1}},
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d has same key as base", i)
		}
	}
	dup := Message{Kind: KindHeard, Origin: 7, Value: 1, Path: []topology.NodeID{1, 2}}
	if dup.Key() != base.Key() {
		t.Error("identical messages must share a key")
	}
}

func TestMessageString(t *testing.T) {
	tests := []struct {
		m    Message
		want string
	}{
		{Message{Kind: KindValue, Value: 1}, "VALUE(1)"},
		{Message{Kind: KindCommitted, Origin: 5, Value: 0}, "COMMITTED(5,0)"},
		// HEARD(j, i, v) with j the most recent relayer first, per §VI.
		{
			Message{Kind: KindHeard, Origin: 9, Value: 1, Path: []topology.NodeID{4, 6}},
			"HEARD(6,4,9,1)",
		},
		{Message{Kind: Kind(9)}, "Message{kind=9}"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
