package sim

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// Kind discriminates the protocol message types used across the paper's
// protocols. The engine itself does not interpret kinds.
type Kind uint8

const (
	// KindValue carries the bare broadcast value: the source's initial
	// transmission and the single relay of the crash-stop flooding
	// protocol (§VII) and of the simple protocol's announcements.
	KindValue Kind = iota + 1
	// KindCommitted is the one-time COMMITTED(i, v) announcement (§VI).
	KindCommitted
	// KindHeard is an indirect report HEARD(jk, ..., j1, i, v): the
	// relayer affixes its identifier so the full relay path is carried in
	// the message (§VI).
	KindHeard
	// KindEcho is the ECHO(v) endorsement of Bracha's reliable broadcast:
	// a node's one-time attestation that it accepted the source's VAL.
	// Origin names the endorsing node (the "signer" of the authenticated
	// variant).
	KindEcho
	// KindReady is the READY(v) endorsement of Bracha's reliable
	// broadcast, sent on an N−f ECHO quorum or f+1 READY amplification.
	// Origin names the endorsing node.
	KindReady
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindValue:
		return "VALUE"
	case KindCommitted:
		return "COMMITTED"
	case KindHeard:
		return "HEARD"
	case KindEcho:
		return "ECHO"
	case KindReady:
		return "READY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Audience restricts which neighbors a broadcast reaches. The radio medium
// guarantees every neighbor hears every local broadcast; a restricted
// audience is therefore a deliberate physical-layer violation (directional
// transmission), available only to adversarial processes in the spirit of
// the §X what-ifs — the Equivocator strategy shows different values to
// different receiver partitions with it. Honest processes never set it; the
// zero value (AudienceAll) preserves the medium's guarantee exactly.
type Audience uint8

const (
	// AudienceAll delivers to every neighbor — the radio guarantee.
	AudienceAll Audience = iota
	// AudienceEven delivers only to even-id neighbors.
	AudienceEven
	// AudienceOdd delivers only to odd-id neighbors.
	AudienceOdd
)

// Includes reports whether a receiver is inside the audience.
func (a Audience) Includes(id topology.NodeID) bool {
	switch a {
	case AudienceEven:
		return id%2 == 0
	case AudienceOdd:
		return id%2 != 0
	default:
		return true
	}
}

// MaxHeardRelays caps the relay list of a transmitted HEARD report. The
// protocol of §VI propagates a COMMITTED announcement through at most three
// relayers (the fourth-hop receiver records but does not re-propagate), so
// no transmitted message carries more than three path entries.
const MaxHeardRelays = 3

// Message is a local-broadcast payload. Messages are immutable once
// broadcast: the engine delivers the same value to every neighbor, and
// receivers must not mutate Path (extend it with ExtendPath instead).
type Message struct {
	Kind   Kind
	Value  byte
	Origin topology.NodeID // committing node for COMMITTED/HEARD reports
	// Path lists the relayers of a HEARD report in order from the first
	// relay (the node that heard COMMITTED directly) to the last. Empty
	// for other kinds.
	Path []topology.NodeID
	// Instance tags the message with a broadcast-instance id, used when
	// several reliable broadcasts run concurrently (e.g. the agreement
	// layer, where every committee member is the source of its own
	// instance). Single-broadcast runs leave it zero.
	Instance int32
	// Spoofed and Claimed implement the §X sensitivity study: when the
	// medium does not authenticate senders (protocols running with
	// SpoofingPossible), a receiver attributes a Spoofed message to
	// Claimed instead of its physical transmitter. Honest processes never
	// set these; under the paper's assumptions (authentication on) they
	// are ignored entirely.
	Spoofed bool
	Claimed topology.NodeID
	// Audience restricts delivery to a receiver partition — a directional-
	// transmission violation of the radio medium used by the Equivocator
	// strategy. Honest processes leave it zero (AudienceAll).
	Audience Audience
}

// ExtendPath returns a copy of m with relay appended to the path. The
// original message is left untouched, preserving immutability for other
// receivers of the same broadcast.
func (m Message) ExtendPath(relay topology.NodeID) Message {
	p := make([]topology.NodeID, 0, len(m.Path)+1)
	p = append(p, m.Path...)
	p = append(p, relay)
	m.Path = p
	return m
}

// Key returns a canonical string identity for deduplication: kind, origin,
// value and full path. Two broadcasts with equal keys are the same logical
// protocol message.
func (m Message) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%d|", m.Instance, m.Kind, m.Origin, m.Value)
	for _, p := range m.Path {
		fmt.Fprintf(&b, "%d,", p)
	}
	return b.String()
}

// String renders the message in the paper's notation.
func (m Message) String() string {
	switch m.Kind {
	case KindValue:
		return fmt.Sprintf("VALUE(%d)", m.Value)
	case KindCommitted:
		return fmt.Sprintf("COMMITTED(%d,%d)", m.Origin, m.Value)
	case KindHeard:
		parts := make([]string, 0, len(m.Path)+2)
		for i := len(m.Path) - 1; i >= 0; i-- {
			parts = append(parts, fmt.Sprint(m.Path[i]))
		}
		parts = append(parts, fmt.Sprint(m.Origin), fmt.Sprint(m.Value))
		return "HEARD(" + strings.Join(parts, ",") + ")"
	default:
		return fmt.Sprintf("Message{kind=%d}", m.Kind)
	}
}
