package evidence

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/paths"
	"repro/internal/topology"
)

// FamilyTable is the precomputed designated-evidence plan for the 4-hop
// protocol — the paper's "earmarking exact messages that a node should
// lookout for" state reduction (§VI). It is translation invariant, so one
// table serves every node of a torus.
//
// For every relative offset d = origin − receiver that occurs in the
// completeness proof, the table stores the explicit family of r(2r+1)
// internally node-disjoint relay paths from the constructive proof
// (FamilyU/S1/S2), under all eight grid symmetries (the induction sweeps in
// all four directions). Receivers count confirmed designated paths; relayers
// forward only chains that are prefixes of some designated path.
//
// Relay sequences are matched via packed uint64 keys: each relay offset is a
// pair of int8s packed into 16 bits, up to paths.MaxIntermediates (3) relays
// per key, with the sequence length in the top word — so both the relayer's
// prefix probe and the receiver's confirmation count are allocation-free.
type FamilyTable struct {
	r int
	// fams maps the origin offset (relative to the receiver) to the family:
	// each path is a list of relay offsets relative to the receiver, stored
	// both explicitly and as a packed key for confirmation matching.
	fams map[grid.Coord]famEntry
	// prefixes holds packed relay-sequence prefixes in origin-relative
	// offsets.
	prefixes map[uint64]struct{}
}

// famEntry is one origin offset's designated family.
type famEntry struct {
	paths [][]grid.Coord // relay offsets relative to the receiver
	keys  []uint64       // packOffsets of each path, same order
}

// packOffsets encodes a relay-offset sequence (≤ paths.MaxIntermediates
// entries, each component within int8 range — true for any practical radius)
// as a single comparable word. Sequences longer than the inline capacity get
// a length-only key; they can never equal a designated-path key, whose
// length is always ≤ paths.MaxIntermediates.
func packOffsets(offs []grid.Coord) uint64 {
	key := uint64(len(offs)) << 48
	if len(offs) > paths.MaxIntermediates {
		return key
	}
	for i, d := range offs {
		key |= (uint64(uint8(int8(d.X))) | uint64(uint8(int8(d.Y)))<<8) << (16 * uint(i))
	}
	return key
}

// symmetries are the eight isometries of the integer grid fixing the origin.
var symmetries = []func(grid.Coord) grid.Coord{
	func(c grid.Coord) grid.Coord { return c },
	func(c grid.Coord) grid.Coord { return grid.C(-c.X, c.Y) },
	func(c grid.Coord) grid.Coord { return grid.C(c.X, -c.Y) },
	func(c grid.Coord) grid.Coord { return grid.C(-c.X, -c.Y) },
	func(c grid.Coord) grid.Coord { return grid.C(c.Y, c.X) },
	func(c grid.Coord) grid.Coord { return grid.C(-c.Y, c.X) },
	func(c grid.Coord) grid.Coord { return grid.C(c.Y, -c.X) },
	func(c grid.Coord) grid.Coord { return grid.C(-c.Y, -c.X) },
}

// NewFamilyTable builds the designated-family table for radius r (L∞).
func NewFamilyTable(r int) (*FamilyTable, error) {
	if r < 1 {
		return nil, fmt.Errorf("evidence: radius must be ≥ 1, got %d", r)
	}
	ft := &FamilyTable{
		r:        r,
		fams:     make(map[grid.Coord]famEntry),
		prefixes: make(map[uint64]struct{}),
	}
	center := grid.C(0, 0)
	p0 := paths.CornerP(center, r)
	regionNodes := make([]grid.Coord, 0, r*r)
	regionNodes = append(regionNodes, paths.RegionU(center, r)...)
	regionNodes = append(regionNodes, paths.RegionS1(center, r)...)
	regionNodes = append(regionNodes, paths.RegionS2(center, r)...)
	for _, n := range regionNodes {
		fam, err := paths.FamilyFor(center, r, n)
		if err != nil {
			return nil, fmt.Errorf("evidence: building family for %v: %w", n, err)
		}
		// Offset form relative to the receiver P.
		d := fam.N.Sub(p0)
		relPaths := make([][]grid.Coord, len(fam.Paths))
		for i, path := range fam.Paths {
			rels := make([]grid.Coord, 0, len(path)-2)
			for _, x := range path[1 : len(path)-1] {
				rels = append(rels, x.Sub(p0))
			}
			relPaths[i] = rels
		}
		for _, sym := range symmetries {
			sd := sym(d)
			if _, ok := ft.fams[sd]; ok {
				continue
			}
			sPaths := make([][]grid.Coord, len(relPaths))
			sKeys := make([]uint64, len(relPaths))
			for i, rels := range relPaths {
				srels := make([]grid.Coord, len(rels))
				for j, x := range rels {
					srels[j] = sym(x)
				}
				sPaths[i] = srels
				sKeys[i] = packOffsets(srels)
			}
			ft.fams[sd] = famEntry{paths: sPaths, keys: sKeys}
			ft.addPrefixes(sd, sPaths)
		}
	}
	return ft, nil
}

// addPrefixes records all relay-sequence prefixes of the family in
// origin-relative coordinates (relay − origin), so relayers can check
// membership without knowing the receiver.
func (ft *FamilyTable) addPrefixes(originOff grid.Coord, relPaths [][]grid.Coord) {
	var buf [paths.MaxIntermediates]grid.Coord
	for _, rels := range relPaths {
		for k := 1; k <= len(rels); k++ {
			// Re-base the prefix to origin-relative offsets.
			pre := buf[:k]
			for i, rel := range rels[:k] {
				pre[i] = rel.Sub(originOff)
			}
			ft.prefixes[packOffsets(pre)] = struct{}{}
		}
	}
}

// Radius returns the table's transmission radius.
func (ft *FamilyTable) Radius() int { return ft.r }

// Offsets returns the number of distinct origin offsets covered.
func (ft *FamilyTable) Offsets() int { return len(ft.fams) }

// FamilySize returns the number of designated paths for an origin offset,
// or zero when the offset is not covered.
func (ft *FamilyTable) FamilySize(originOff grid.Coord) int {
	return len(ft.fams[originOff].paths)
}

// ShouldRelay reports whether an honest node at relay-offset chain
// (origin-relative offsets of the already-affixed relays, ending with the
// would-be relayer itself) is a prefix of any designated path. The chain
// must already include the candidate relayer as its last element.
func (ft *FamilyTable) ShouldRelay(relOffsets []grid.Coord) bool {
	if len(relOffsets) == 0 || len(relOffsets) > paths.MaxIntermediates {
		return false
	}
	_, ok := ft.prefixes[packOffsets(relOffsets)]
	return ok
}

// ConfirmedPaths counts how many designated paths for the given origin
// offset are fully confirmed by recorded chains of the store (same origin,
// same value, exact relay sequence).
func (ft *FamilyTable) ConfirmedPaths(net *topology.Network, s *Store, receiver, origin topology.NodeID, value byte) int {
	d := net.Delta(receiver, origin)
	fam, ok := ft.fams[d]
	if !ok {
		return 0
	}
	chains := s.Chains(origin, value)
	if len(chains) == 0 {
		return 0
	}
	// Pack each recorded chain's relay sequence once (receiver-relative),
	// then match designated-path keys by linear scan: both lists are small
	// (a family has r(2r+1) paths) and nothing escapes to the heap.
	var buf [32]uint64
	recorded := buf[:0]
	for _, c := range chains {
		recorded = append(recorded, relayKey(net, receiver, c.Relays))
	}
	confirmed := 0
	for _, pk := range fam.keys {
		for _, rk := range recorded {
			if rk == pk {
				confirmed++
				break
			}
		}
	}
	return confirmed
}

// ConfirmedChainList returns the recorded chains confirming designated
// paths for the receiver→origin offset — the explicit witness behind a
// DeterminedDesignated verdict, in designated-family order. Confirmed
// designated paths are internally node-disjoint and lie inside one closed
// neighborhood by construction, so the returned chains are a valid §VI
// evidence family whenever there are ≥ t+1 of them. Trace-path only; the
// hot path uses ConfirmedPaths, which never materializes the list.
func (ft *FamilyTable) ConfirmedChainList(net *topology.Network, s *Store, receiver, origin topology.NodeID, value byte) []Chain {
	d := net.Delta(receiver, origin)
	fam, ok := ft.fams[d]
	if !ok {
		return nil
	}
	chains := s.Chains(origin, value)
	if len(chains) == 0 {
		return nil
	}
	var out []Chain
	for _, pk := range fam.keys {
		for _, c := range chains {
			if relayKey(net, receiver, c.Relays) == pk {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// HonestPathCount counts the designated paths for the receiver→origin
// offset whose relays all satisfy the honesty predicate. Honest relays
// always forward designated prefixes, so this is the number of paths
// guaranteed to be confirmed once the origin announces — the static
// counterpart of ConfirmedPaths, used by the outcome analyzer.
func (ft *FamilyTable) HonestPathCount(net *topology.Network, receiver, origin topology.NodeID, honest func(topology.NodeID) bool) int {
	d := net.Delta(receiver, origin)
	fam, ok := ft.fams[d]
	if !ok {
		return 0
	}
	recvC := net.CoordOf(receiver)
	count := 0
	for _, rels := range fam.paths {
		allHonest := true
		for _, off := range rels {
			if !honest(net.IDOf(recvC.Add(off))) {
				allHonest = false
				break
			}
		}
		if allHonest {
			count++
		}
	}
	return count
}

// relayKey packs a chain's relay ids as receiver-relative offsets.
func relayKey(net *topology.Network, receiver topology.NodeID, relays []topology.NodeID) uint64 {
	key := uint64(len(relays)) << 48
	if len(relays) > paths.MaxIntermediates {
		return key
	}
	for i, rel := range relays {
		d := net.Delta(receiver, rel)
		key |= (uint64(uint8(int8(d.X))) | uint64(uint8(int8(d.Y)))<<8) << (16 * uint(i))
	}
	return key
}

// DeterminedDesignated is the designated-mode counterpart of
// DeterminedExact: the receiver has reliably determined (origin, value) iff
// it heard the COMMITTED directly or at least `need` designated paths are
// confirmed. Designated paths are internally disjoint and lie inside one
// closed neighborhood by construction, so this is a sound instance of the
// paper's rule.
func DeterminedDesignated(net *topology.Network, ft *FamilyTable, s *Store, receiver, origin topology.NodeID, value byte, need int) bool {
	if s.HasDirect(origin, value) {
		return true
	}
	return ft.ConfirmedPaths(net, s, receiver, origin, value) >= need
}
