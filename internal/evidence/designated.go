package evidence

import (
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/paths"
	"repro/internal/topology"
)

// FamilyTable is the precomputed designated-evidence plan for the 4-hop
// protocol — the paper's "earmarking exact messages that a node should
// lookout for" state reduction (§VI). It is translation invariant, so one
// table serves every node of a torus.
//
// For every relative offset d = origin − receiver that occurs in the
// completeness proof, the table stores the explicit family of r(2r+1)
// internally node-disjoint relay paths from the constructive proof
// (FamilyU/S1/S2), under all eight grid symmetries (the induction sweeps in
// all four directions). Receivers count confirmed designated paths; relayers
// forward only chains that are prefixes of some designated path.
type FamilyTable struct {
	r int
	// fams maps the origin offset (relative to the receiver) to relay
	// paths; each path is a list of relay offsets relative to the receiver.
	fams map[grid.Coord][][]grid.Coord
	// prefixes holds relay-sequence prefixes in origin-relative offsets.
	prefixes map[string]struct{}
}

// symmetries are the eight isometries of the integer grid fixing the origin.
var symmetries = []func(grid.Coord) grid.Coord{
	func(c grid.Coord) grid.Coord { return c },
	func(c grid.Coord) grid.Coord { return grid.C(-c.X, c.Y) },
	func(c grid.Coord) grid.Coord { return grid.C(c.X, -c.Y) },
	func(c grid.Coord) grid.Coord { return grid.C(-c.X, -c.Y) },
	func(c grid.Coord) grid.Coord { return grid.C(c.Y, c.X) },
	func(c grid.Coord) grid.Coord { return grid.C(-c.Y, c.X) },
	func(c grid.Coord) grid.Coord { return grid.C(c.Y, -c.X) },
	func(c grid.Coord) grid.Coord { return grid.C(-c.Y, -c.X) },
}

// NewFamilyTable builds the designated-family table for radius r (L∞).
func NewFamilyTable(r int) (*FamilyTable, error) {
	if r < 1 {
		return nil, fmt.Errorf("evidence: radius must be ≥ 1, got %d", r)
	}
	ft := &FamilyTable{
		r:        r,
		fams:     make(map[grid.Coord][][]grid.Coord),
		prefixes: make(map[string]struct{}),
	}
	center := grid.C(0, 0)
	p0 := paths.CornerP(center, r)
	regionNodes := make([]grid.Coord, 0, r*r)
	regionNodes = append(regionNodes, paths.RegionU(center, r)...)
	regionNodes = append(regionNodes, paths.RegionS1(center, r)...)
	regionNodes = append(regionNodes, paths.RegionS2(center, r)...)
	for _, n := range regionNodes {
		fam, err := paths.FamilyFor(center, r, n)
		if err != nil {
			return nil, fmt.Errorf("evidence: building family for %v: %w", n, err)
		}
		// Offset form relative to the receiver P.
		d := fam.N.Sub(p0)
		relPaths := make([][]grid.Coord, len(fam.Paths))
		for i, path := range fam.Paths {
			rels := make([]grid.Coord, 0, len(path)-2)
			for _, x := range path[1 : len(path)-1] {
				rels = append(rels, x.Sub(p0))
			}
			relPaths[i] = rels
		}
		for _, sym := range symmetries {
			sd := sym(d)
			if _, ok := ft.fams[sd]; ok {
				continue
			}
			sPaths := make([][]grid.Coord, len(relPaths))
			for i, rels := range relPaths {
				srels := make([]grid.Coord, len(rels))
				for j, x := range rels {
					srels[j] = sym(x)
				}
				sPaths[i] = srels
			}
			ft.fams[sd] = sPaths
			ft.addPrefixes(sd, sPaths)
		}
	}
	return ft, nil
}

// addPrefixes records all relay-sequence prefixes of the family in
// origin-relative coordinates (relay − origin), so relayers can check
// membership without knowing the receiver.
func (ft *FamilyTable) addPrefixes(originOff grid.Coord, relPaths [][]grid.Coord) {
	for _, rels := range relPaths {
		for k := 1; k <= len(rels); k++ {
			key := prefixKey(originOff, rels[:k])
			ft.prefixes[key] = struct{}{}
		}
	}
}

// prefixKey encodes a relay prefix relative to the origin.
func prefixKey(originOff grid.Coord, rels []grid.Coord) string {
	var b strings.Builder
	b.Grow(4 * len(rels))
	for _, rel := range rels {
		d := rel.Sub(originOff) // relay offset relative to the origin
		b.WriteByte(byte(int8(d.X)))
		b.WriteByte(byte(int8(d.Y)))
	}
	return b.String()
}

// Radius returns the table's transmission radius.
func (ft *FamilyTable) Radius() int { return ft.r }

// Offsets returns the number of distinct origin offsets covered.
func (ft *FamilyTable) Offsets() int { return len(ft.fams) }

// FamilySize returns the number of designated paths for an origin offset,
// or zero when the offset is not covered.
func (ft *FamilyTable) FamilySize(originOff grid.Coord) int {
	return len(ft.fams[originOff])
}

// ShouldRelay reports whether an honest node at relay-offset chain
// (origin-relative offsets of the already-affixed relays, ending with the
// would-be relayer itself) is a prefix of any designated path. The chain
// must already include the candidate relayer as its last element.
func (ft *FamilyTable) ShouldRelay(relOffsets []grid.Coord) bool {
	if len(relOffsets) == 0 || len(relOffsets) > paths.MaxIntermediates {
		return false
	}
	var b strings.Builder
	b.Grow(2 * len(relOffsets))
	for _, d := range relOffsets {
		b.WriteByte(byte(int8(d.X)))
		b.WriteByte(byte(int8(d.Y)))
	}
	_, ok := ft.prefixes[b.String()]
	return ok
}

// ConfirmedPaths counts how many designated paths for the given origin
// offset are fully confirmed by recorded chains of the store (same origin,
// same value, exact relay sequence).
func (ft *FamilyTable) ConfirmedPaths(net *topology.Network, s *Store, receiver, origin topology.NodeID, value byte) int {
	d := net.Delta(receiver, origin)
	relPaths, ok := ft.fams[d]
	if !ok {
		return 0
	}
	chains := s.Chains(origin, value)
	if len(chains) == 0 {
		return 0
	}
	recorded := make(map[string]struct{}, len(chains))
	for _, c := range chains {
		recorded[relayKey(net, receiver, c.Relays)] = struct{}{}
	}
	confirmed := 0
	for _, rels := range relPaths {
		var b strings.Builder
		b.Grow(2 * len(rels))
		for _, rel := range rels {
			b.WriteByte(byte(int8(rel.X)))
			b.WriteByte(byte(int8(rel.Y)))
		}
		if _, ok := recorded[b.String()]; ok {
			confirmed++
		}
	}
	return confirmed
}

// HonestPathCount counts the designated paths for the receiver→origin
// offset whose relays all satisfy the honesty predicate. Honest relays
// always forward designated prefixes, so this is the number of paths
// guaranteed to be confirmed once the origin announces — the static
// counterpart of ConfirmedPaths, used by the outcome analyzer.
func (ft *FamilyTable) HonestPathCount(net *topology.Network, receiver, origin topology.NodeID, honest func(topology.NodeID) bool) int {
	d := net.Delta(receiver, origin)
	relPaths, ok := ft.fams[d]
	if !ok {
		return 0
	}
	recvC := net.CoordOf(receiver)
	count := 0
	for _, rels := range relPaths {
		allHonest := true
		for _, off := range rels {
			if !honest(net.IDOf(recvC.Add(off))) {
				allHonest = false
				break
			}
		}
		if allHonest {
			count++
		}
	}
	return count
}

// relayKey encodes a chain's relay ids as receiver-relative offsets.
func relayKey(net *topology.Network, receiver topology.NodeID, relays []topology.NodeID) string {
	var b strings.Builder
	b.Grow(2 * len(relays))
	for _, rel := range relays {
		d := net.Delta(receiver, rel)
		b.WriteByte(byte(int8(d.X)))
		b.WriteByte(byte(int8(d.Y)))
	}
	return b.String()
}

// DeterminedDesignated is the designated-mode counterpart of
// DeterminedExact: the receiver has reliably determined (origin, value) iff
// it heard the COMMITTED directly or at least `need` designated paths are
// confirmed. Designated paths are internally disjoint and lie inside one
// closed neighborhood by construction, so this is a sound instance of the
// paper's rule.
func DeterminedDesignated(net *topology.Network, ft *FamilyTable, s *Store, receiver, origin topology.NodeID, value byte, need int) bool {
	if s.HasDirect(origin, value) {
		return true
	}
	return ft.ConfirmedPaths(net, s, receiver, origin, value) >= need
}
