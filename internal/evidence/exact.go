package evidence

import (
	"repro/internal/grid"
	"repro/internal/topology"
)

// DeterminedExact implements the §VI reliable-determination rule verbatim:
// node `receiver` has reliably determined that `origin` committed `value`
// iff it heard COMMITTED(origin, value) directly, or its store holds at
// least need = t+1 recorded chains that are pairwise internally
// node-disjoint and whose nodes (origin, every relay, and the receiver) all
// lie within one single closed neighborhood.
//
// The search is exact: every candidate neighborhood center is enumerated
// and a branch-and-bound set packing runs over the recorded chains (chains
// are atomic units; combining relays across chains would be unsound).
func DeterminedExact(net *topology.Network, s *Store, receiver, origin topology.NodeID, value byte, need int) bool {
	if s.HasDirect(origin, value) {
		return true
	}
	chains := s.Chains(origin, value)
	if len(chains) < need {
		return false
	}
	r := net.Radius()
	recvC := net.CoordOf(receiver)
	// Pack every chain's relay set once; each candidate center then only
	// filters the shared masks instead of rebuilding node sets.
	masks, words := chainMasks(chains, false)
	usable := make([][]uint64, 0, len(chains))
	for _, center := range candidateCenters(net, recvC, origin) {
		inNbd := func(id topology.NodeID) bool {
			return net.Torus().Within(net.Metric(), center, net.CoordOf(id), r)
		}
		usable = usable[:0]
		for i, c := range chains {
			ok := true
			for _, rel := range c.Relays {
				if !inNbd(rel) {
					ok = false
					break
				}
			}
			if ok {
				usable = append(usable, masks[i])
			}
		}
		if len(usable) < need {
			continue
		}
		if maxDisjointMasks(usable, words, need) >= need {
			return true
		}
	}
	return false
}

// DeterminedExactWitness reconstructs the explicit evidence behind a
// DeterminedExact verdict: need pairwise internally node-disjoint recorded
// chains inside one closed neighborhood (or direct = true when the
// COMMITTED was heard on the channel itself, which needs no chains). ok is
// false when the rule does not currently hold. Trace-path only — it reruns
// the packing search with witness extraction, which DeterminedExact's hot
// path deliberately avoids.
func DeterminedExactWitness(net *topology.Network, s *Store, receiver, origin topology.NodeID, value byte, need int) (chains []Chain, direct, ok bool) {
	if s.HasDirect(origin, value) {
		return nil, true, true
	}
	all := s.Chains(origin, value)
	if len(all) < need {
		return nil, false, false
	}
	r := net.Radius()
	recvC := net.CoordOf(receiver)
	masks, words := chainMasks(all, false)
	for _, center := range candidateCenters(net, recvC, origin) {
		inNbd := func(id topology.NodeID) bool {
			return net.Torus().Within(net.Metric(), center, net.CoordOf(id), r)
		}
		var sub [][]uint64
		var subIdx []int
		for i, c := range all {
			fits := true
			for _, rel := range c.Relays {
				if !inNbd(rel) {
					fits = false
					break
				}
			}
			if fits {
				sub = append(sub, masks[i])
				subIdx = append(subIdx, i)
			}
		}
		if len(sub) < need {
			continue
		}
		if sel := disjointWitnessMasks(sub, words, need); sel != nil {
			out := make([]Chain, len(sel))
			for j, k := range sel {
				out[j] = all[subIdx[k]]
			}
			return out, false, true
		}
	}
	return nil, false, false
}

// candidateCenters enumerates the grid points whose closed neighborhood
// contains both the receiver and the origin.
func candidateCenters(net *topology.Network, recvC grid.Coord, origin topology.NodeID) []grid.Coord {
	r := net.Radius()
	t := net.Torus()
	m := net.Metric()
	origC := net.CoordOf(origin)
	var out []grid.Coord
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			c := t.Wrap(recvC.Add(grid.C(dx, dy)))
			if !t.Within(m, c, recvC, r) {
				continue // L2: offset box is a superset of the ball
			}
			if t.Within(m, c, origC, r) {
				out = append(out, c)
			}
		}
	}
	return out
}

// maxDisjointChains returns the size of a maximum pairwise relay-disjoint
// subset of chains (chains share their origin, so only relays conflict),
// stopping early once `target` is reached.
func maxDisjointChains(chains []Chain, target int) int {
	masks, words := chainMasks(chains, false)
	return maxDisjointMasks(masks, words, target)
}

// maxDisjointSets computes the exact maximum pairwise-disjoint subfamily of
// the given node sets, stopping early once `target` is reached. It is the
// map-set entry point to the word-packed packer in bitset.go, retained for
// callers (and property tests) that hold sets rather than chains.
func maxDisjointSets(sets []map[topology.NodeID]struct{}, target int) int {
	index := make(map[topology.NodeID]int, 4*len(sets))
	for _, set := range sets {
		for id := range set {
			if _, ok := index[id]; !ok {
				index[id] = len(index)
			}
		}
	}
	words := (len(index) + 63) / 64
	if words == 0 {
		words = 1
	}
	ms := newMaskSet(len(sets), words)
	masks := make([][]uint64, len(sets))
	for i, set := range sets {
		for id := range set {
			ms.set(i, index[id])
		}
		masks[i] = ms.mask(i)
	}
	return maxDisjointMasks(masks, words, target)
}

// CommitSingleLevel implements the §VI-B (two-hop protocol) commit rule:
// the receiver commits to `value` iff there exist at least need = t+1
// recorded chains for that value — across any origins — that are pairwise
// node-disjoint including the origins, with every origin and relay lying in
// one single closed neighborhood. Chains are atomic evidence units, so the
// packing is an exact set packing over whole chains: the same physical node
// appearing as one chain's origin and another's relay is a conflict.
func CommitSingleLevel(net *topology.Network, s *Store, receiver topology.NodeID, value byte, need int) bool {
	return commitSingleLevel(net, s, receiver, value, need, nil)
}

// CommitSingleLevelFocused is CommitSingleLevel restricted to candidate
// neighborhoods that fully contain the given (newly recorded) chain. If the
// rule did not hold before that chain arrived, any newly satisfiable
// neighborhood must contain it, so evaluating only those centers after each
// insertion is complete — and far cheaper on hot paths.
func CommitSingleLevelFocused(net *topology.Network, s *Store, receiver topology.NodeID, value byte, need int, focus Chain) bool {
	return commitSingleLevel(net, s, receiver, value, need, &focus)
}

// commitSingleLevel implements both entry points.
func commitSingleLevel(net *topology.Network, s *Store, receiver topology.NodeID, value byte, need int, focus *Chain) bool {
	// All chains for this value (any origin), including the direct
	// COMMITTED receptions as relay-free chains; the store maintains this
	// list incrementally so the hot per-insertion commit check re-gathers
	// nothing.
	all := s.ValueChains(value)
	if len(all) < need {
		return false
	}
	r := net.Radius()
	t := net.Torus()
	m := net.Metric()
	// Candidate centers: within 3r of the receiver (chain nodes live within
	// 2 hops of it), or — focused mode — within r of the new chain's nodes.
	anchor := net.CoordOf(receiver)
	span := 3 * r
	if focus != nil {
		anchor = net.CoordOf(focus.Origin)
		span = r
	}
	// Pack every chain's whole node set (origin AND relays — the §VI-B
	// "collectively node-disjoint" requirement) once up front.
	masks, words := chainMasks(all, true)
	usable := make([][]uint64, 0, len(all))
	for dy := -span; dy <= span; dy++ {
		for dx := -span; dx <= span; dx++ {
			center := t.Wrap(anchor.Add(grid.C(dx, dy)))
			if focus != nil {
				ok := t.Within(m, center, net.CoordOf(focus.Origin), r)
				for _, rel := range focus.Relays {
					ok = ok && t.Within(m, center, net.CoordOf(rel), r)
				}
				if !ok {
					continue
				}
			}
			inNbd := func(id topology.NodeID) bool {
				return t.Within(m, center, net.CoordOf(id), r)
			}
			usable = usable[:0]
			for i, c := range all {
				if len(c.Relays) > 1 {
					continue // two-hop protocol: at most one relay
				}
				if !inNbd(c.Origin) {
					continue
				}
				ok := true
				for _, rel := range c.Relays {
					if !inNbd(rel) {
						ok = false
						break
					}
				}
				if ok {
					usable = append(usable, masks[i])
				}
			}
			if len(usable) < need {
				continue
			}
			if maxDisjointMasks(usable, words, need) >= need {
				return true
			}
		}
	}
	return false
}

// CommitWitness reconstructs the explicit evidence behind a satisfied
// §VI-B commit rule for the receiver: a closed-neighborhood center and
// need recorded chains for the value that are collectively node-disjoint
// (origins and relays) and lie wholly inside that neighborhood. ok is
// false when the rule does not currently hold. The center sweep mirrors
// commitSingleLevel's unfocused mode (span 3r around the receiver), which
// covers every center the focused hot-path check can fire at. Trace-path
// only.
func CommitWitness(net *topology.Network, s *Store, receiver topology.NodeID, value byte, need int) (center grid.Coord, chains []Chain, ok bool) {
	all := s.ValueChains(value)
	if len(all) < need {
		return grid.Coord{}, nil, false
	}
	r := net.Radius()
	t := net.Torus()
	m := net.Metric()
	anchor := net.CoordOf(receiver)
	span := 3 * r
	masks, words := chainMasks(all, true)
	for dy := -span; dy <= span; dy++ {
		for dx := -span; dx <= span; dx++ {
			c := t.Wrap(anchor.Add(grid.C(dx, dy)))
			inNbd := func(id topology.NodeID) bool {
				return t.Within(m, c, net.CoordOf(id), r)
			}
			var sub [][]uint64
			var subIdx []int
			for i, ch := range all {
				if len(ch.Relays) > 1 {
					continue // two-hop protocol: at most one relay
				}
				if !inNbd(ch.Origin) {
					continue
				}
				fits := true
				for _, rel := range ch.Relays {
					if !inNbd(rel) {
						fits = false
						break
					}
				}
				if fits {
					sub = append(sub, masks[i])
					subIdx = append(subIdx, i)
				}
			}
			if len(sub) < need {
				continue
			}
			if sel := disjointWitnessMasks(sub, words, need); sel != nil {
				out := make([]Chain, len(sel))
				for j, k := range sel {
					out[j] = all[subIdx[k]]
				}
				return c, out, true
			}
		}
	}
	return grid.Coord{}, nil, false
}

// maxDisjointWholeChains computes the exact maximum set of pairwise
// node-disjoint chains where disjointness covers origins AND relays (the
// §VI-B "collectively node-disjoint" requirement). Chains are atomic: a
// node's origin role in one chain conflicts with its relay role in another.
func maxDisjointWholeChains(chains []Chain, target int) int {
	sets := make([]map[topology.NodeID]struct{}, 0, len(chains))
	for _, c := range chains {
		set := make(map[topology.NodeID]struct{}, len(c.Relays)+1)
		set[c.Origin] = struct{}{}
		for _, rel := range c.Relays {
			set[rel] = struct{}{}
		}
		sets = append(sets, set)
	}
	return maxDisjointSets(sets, target)
}
