package evidence

import (
	"sort"
	"sync"

	"repro/internal/grid"
	"repro/internal/topology"
)

// PatternMemo caches HonestPathCount evaluations keyed by the *local fault
// pattern*: the honest/faulty bitmask over an offset's relay support. Two
// evaluations at different receivers (or in different fault placements, as a
// parameter sweep produces) that expose the same local pattern share one
// path-counting pass — the per-center evidence memoization of the sweep
// engine.
//
// Offsets are additionally folded under the eight grid symmetries: when the
// family stored at offset σ(d₀) is exactly the σ-image of the family at the
// orbit representative d₀, a lookup at σ(d₀) transports its fault pattern
// through σ and reads the representative's cache. The transport is VERIFIED
// per offset at construction — FamilyTable builds its families first-wins
// over overlapping symmetry orbits, so σ-equivariance is checked, never
// assumed. Offsets that fail verification (or whose relay support exceeds
// the 64-bit pattern capacity, radius ≥ 4) simply keep their own cache or
// fall back to direct counting; the memo is exact in every case, only its
// sharing degree varies.
//
// A PatternMemo is safe for concurrent use; results are always identical to
// FamilyTable.HonestPathCount.
type PatternMemo struct {
	ft      *FamilyTable
	offsets map[grid.Coord]*memoOffset
	folded  int // offsets sharing a symmetry representative's cache
}

// memoRep is one orbit representative's shared cache.
type memoRep struct {
	// pathMasks[p] is the bitmask of support indices relayed by path p.
	pathMasks []uint64
	// direct disables caching: the support does not fit a 64-bit pattern.
	direct bool

	mu     sync.Mutex
	counts map[uint64]int
	hits   int
	misses int
}

// memoOffset is one offset's view: the shared representative cache plus this
// offset's own relay positions, pre-transported into the representative's
// support order (supportHere[i] = σ(repSupport[i])).
type memoOffset struct {
	rep         *memoRep
	supportHere []grid.Coord
}

// NewPatternMemo builds the memo for a family table.
func NewPatternMemo(ft *FamilyTable) *PatternMemo {
	m := &PatternMemo{ft: ft, offsets: make(map[grid.Coord]*memoOffset, len(ft.fams))}
	reps := make(map[grid.Coord]*memoRep)
	repSupport := make(map[grid.Coord][]grid.Coord)
	// Deterministic construction order (map iteration is not).
	offs := make([]grid.Coord, 0, len(ft.fams))
	for d := range ft.fams {
		offs = append(offs, d)
	}
	sort.Slice(offs, func(i, j int) bool {
		if offs[i].X != offs[j].X {
			return offs[i].X < offs[j].X
		}
		return offs[i].Y < offs[j].Y
	})
	for _, d := range offs {
		canon, sym := m.canonicalize(d)
		if rep, ok := reps[canon]; ok && sym != nil {
			// Transport this offset's relay positions into the
			// representative's support order.
			sup := repSupport[canon]
			here := make([]grid.Coord, len(sup))
			for i, off := range sup {
				here[i] = sym(off)
			}
			m.offsets[d] = &memoOffset{rep: rep, supportHere: here}
			m.folded++
			continue
		}
		// This offset is its own representative (first of its orbit, or
		// transport verification failed — canonicalize then returns d).
		sup, masks, fits := supportOf(ft.fams[d])
		rep := &memoRep{pathMasks: masks, direct: !fits, counts: make(map[uint64]int)}
		reps[d] = rep
		repSupport[d] = sup
		m.offsets[d] = &memoOffset{rep: rep, supportHere: sup}
	}
	return m
}

// canonicalize finds the lexicographically smallest orbit member whose
// stored family is a verified σ-image of d's... in the useful direction: it
// returns (canon, σ) with σ(canonSupport) positioned for d, i.e. fams[d] ==
// σ(fams[canon]) as relay-sequence sets. When no smaller orbit member
// verifies, it returns (d, nil) and d becomes its own representative.
func (m *PatternMemo) canonicalize(d grid.Coord) (grid.Coord, func(grid.Coord) grid.Coord) {
	best := d
	var bestSym func(grid.Coord) grid.Coord
	for _, sym := range symmetries {
		// Candidate representative c with σ(c) = d: iterate σ over the
		// group and use c = σ(d) together with the inverse transport —
		// every group element's inverse is in the group, so trying all
		// eight σ as "c = σ(d), verify fams[d] == σ⁻¹(fams[c])" is
		// equivalent to trying all inverses directly. To avoid inverting,
		// verify in the forward direction: fams[σ(c)] == σ(fams[c]).
		c := sym(d)
		if c.X > best.X || (c.X == best.X && c.Y >= best.Y) {
			continue
		}
		// Find the transport τ with τ(c) = d and fams[d] == τ(fams[c]).
		if τ := verifiedTransport(m.ft, c, d); τ != nil {
			best, bestSym = c, τ
		}
	}
	if bestSym == nil {
		return d, nil
	}
	return best, bestSym
}

// verifiedTransport searches the symmetry group for τ with τ(from) = to and
// fams[to] exactly equal to τ(fams[from]) as a set of relay sequences. It
// returns nil when no group element verifies — then the two offsets' stored
// families are genuinely different plans (first-wins construction over
// overlapping orbits allows this) and must not share a cache.
func verifiedTransport(ft *FamilyTable, from, to grid.Coord) func(grid.Coord) grid.Coord {
	fe, ok := ft.fams[from]
	if !ok {
		return nil
	}
	te, ok := ft.fams[to]
	if !ok || len(fe.paths) != len(te.paths) {
		return nil
	}
	toKeys := append([]uint64(nil), te.keys...)
	sort.Slice(toKeys, func(i, j int) bool { return toKeys[i] < toKeys[j] })
	for _, τ := range symmetries {
		if τ(from) != to {
			continue
		}
		img := make([]uint64, len(fe.paths))
		for i, rels := range fe.paths {
			var buf [8]grid.Coord
			t := buf[:0]
			for _, x := range rels {
				t = append(t, τ(x))
			}
			img[i] = packOffsets(t)
		}
		sort.Slice(img, func(i, j int) bool { return img[i] < img[j] })
		match := true
		for i := range img {
			if img[i] != toKeys[i] {
				match = false
				break
			}
		}
		if match {
			return τ
		}
	}
	return nil
}

// supportOf extracts a family's distinct relay offsets (designated paths are
// internally node-disjoint, so these are simply all relays in path order)
// and each path's bitmask over them. fits is false when the support exceeds
// 64 offsets — patterns then cannot be packed and the offset counts directly.
func supportOf(fe famEntry) (support []grid.Coord, pathMasks []uint64, fits bool) {
	index := make(map[grid.Coord]int)
	pathMasks = make([]uint64, len(fe.paths))
	for p, rels := range fe.paths {
		for _, off := range rels {
			i, ok := index[off]
			if !ok {
				i = len(support)
				index[off] = i
				support = append(support, off)
			}
			if i < 64 {
				pathMasks[p] |= 1 << uint(i)
			}
		}
	}
	return support, pathMasks, len(support) <= 64
}

// HonestPathCount is FamilyTable.HonestPathCount with pattern memoization:
// identical inputs produce identical outputs, sharing counting work across
// receivers, placements and symmetric offsets.
func (m *PatternMemo) HonestPathCount(net *topology.Network, receiver, origin topology.NodeID, honest func(topology.NodeID) bool) int {
	d := net.Delta(receiver, origin)
	mo, ok := m.offsets[d]
	if !ok {
		return 0
	}
	if mo.rep.direct {
		return m.ft.HonestPathCount(net, receiver, origin, honest)
	}
	recvC := net.CoordOf(receiver)
	var pattern uint64
	for i, off := range mo.supportHere {
		if !honest(net.IDOf(recvC.Add(off))) {
			pattern |= 1 << uint(i)
		}
	}
	rep := mo.rep
	rep.mu.Lock()
	if n, cached := rep.counts[pattern]; cached {
		rep.hits++
		rep.mu.Unlock()
		return n
	}
	rep.mu.Unlock()
	n := 0
	for _, mask := range rep.pathMasks {
		if mask&pattern == 0 {
			n++
		}
	}
	rep.mu.Lock()
	rep.misses++
	rep.counts[pattern] = n
	rep.mu.Unlock()
	return n
}

// MemoStats reports the memo's effectiveness.
type MemoStats struct {
	// Offsets is the number of covered origin offsets; Folded of them share
	// a symmetry representative's cache.
	Offsets, Folded int
	// Hits and Misses count cache lookups across all representatives.
	Hits, Misses int
}

// Stats snapshots the counters.
func (m *PatternMemo) Stats() MemoStats {
	st := MemoStats{Offsets: len(m.offsets), Folded: m.folded}
	seen := make(map[*memoRep]bool)
	for _, mo := range m.offsets {
		if seen[mo.rep] {
			continue
		}
		seen[mo.rep] = true
		mo.rep.mu.Lock()
		st.Hits += mo.rep.hits
		st.Misses += mo.rep.misses
		mo.rep.mu.Unlock()
	}
	return st
}
