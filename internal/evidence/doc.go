// Package evidence implements the commit rules of the paper's Byzantine
// broadcast protocols (§VI, §VI-B): recorded-report storage, the exact
// "t+1 internally node-disjoint recorded paths inside one single
// neighborhood" test, and the topology-aware designated-family mode — the
// paper's "earmarking exact messages that a node should lookout for"
// optimization, built from the constructive proof's explicit path families.
package evidence
