package evidence

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/topology"
)

// TestCommitSingleLevelRoleMixingRegression replays the evidence store of a
// once-observed wrong commit under forger adversaries. A flow-based packing
// fabricated a third "chain" by combining node (13,2)'s origin role in one
// recorded chain with its relay role in another; the exact whole-chain set
// packing must report a maximum of 2 and refuse need=3.
func TestCommitSingleLevelRoleMixingRegression(t *testing.T) {
	net, err := topology.New(grid.Torus{W: 14, H: 14}, grid.Linf, 1)
	if err != nil {
		t.Fatal(err)
	}
	id := func(x, y int) topology.NodeID { return net.IDOf(grid.C(x, y)) }
	recv := id(12, 3)
	s := NewStore()
	s.Add(Chain{Origin: id(0, 1), Value: 0, Relays: []topology.NodeID{id(13, 2)}})
	s.Add(Chain{Origin: id(13, 1), Value: 0, Relays: []topology.NodeID{id(12, 2)}})
	s.AddDirect(id(13, 2), 0)
	s.Add(Chain{Origin: id(13, 2), Value: 0, Relays: []topology.NodeID{id(13, 3)}})
	s.Add(Chain{Origin: id(0, 3), Value: 0, Relays: []topology.NodeID{id(13, 4)}})
	s.Add(Chain{Origin: id(13, 3), Value: 0, Relays: []topology.NodeID{id(13, 4)}})
	s.AddDirect(id(13, 4), 0)
	if CommitSingleLevel(net, s, recv, 0, 3) {
		t.Error("need=3 must not be satisfiable (max disjoint packing is 2)")
	}
	if !CommitSingleLevel(net, s, recv, 0, 2) {
		t.Error("need=2 should be satisfiable")
	}
}
