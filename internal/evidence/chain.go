// Package evidence implements the commit rules of the paper's Byzantine
// broadcast protocols (§VI, §VI-B): recorded-report storage, the exact
// "t+1 internally node-disjoint recorded paths inside one single
// neighborhood" test, and the topology-aware designated-family mode — the
// paper's "earmarking exact messages that a node should lookout for"
// optimization, built from the constructive proof's explicit path families.
package evidence

import (
	"sort"
	"strings"

	"repro/internal/topology"
)

// Chain is one recorded report at a receiving node g: a claim that Origin
// committed Value, relayed by Relays (origin-side first; empty for a direct
// COMMITTED reception). A chain is an atomic evidence unit — the final
// relayer attested the entire relay list, so sub-paths of different chains
// must never be recombined (that would be unsound).
type Chain struct {
	Origin topology.NodeID
	Value  byte
	Relays []topology.NodeID
}

// key canonically identifies the chain (origin, value and exact relay
// sequence).
func (c Chain) key() string {
	var b strings.Builder
	b.Grow(4 * (len(c.Relays) + 2))
	writeID := func(id topology.NodeID) {
		b.WriteByte(byte(id))
		b.WriteByte(byte(id >> 8))
		b.WriteByte(byte(id >> 16))
		b.WriteByte(byte(id >> 24))
	}
	writeID(c.Origin)
	b.WriteByte(c.Value)
	for _, r := range c.Relays {
		writeID(r)
	}
	return b.String()
}

// Store accumulates the chains a node has recorded, indexed by (origin,
// value). The zero value is not usable; create with NewStore.
type Store struct {
	chains map[chainIndex][]Chain
	seen   map[string]struct{}
	direct map[chainIndex]bool // COMMITTED heard directly from the origin
}

type chainIndex struct {
	origin topology.NodeID
	value  byte
}

// NewStore creates an empty evidence store.
func NewStore() *Store {
	return &Store{
		chains: make(map[chainIndex][]Chain),
		seen:   make(map[string]struct{}),
		direct: make(map[chainIndex]bool),
	}
}

// AddDirect records that the node heard COMMITTED(origin, value) on the
// channel itself — unforgeable, so it needs no disjoint-path corroboration.
func (s *Store) AddDirect(origin topology.NodeID, value byte) {
	s.direct[chainIndex{origin: origin, value: value}] = true
}

// HasDirect reports whether COMMITTED(origin, value) was heard directly.
func (s *Store) HasDirect(origin topology.NodeID, value byte) bool {
	return s.direct[chainIndex{origin: origin, value: value}]
}

// Add records a relayed chain, ignoring exact duplicates. It returns true
// when the chain was new.
func (s *Store) Add(c Chain) bool {
	k := c.key()
	if _, dup := s.seen[k]; dup {
		return false
	}
	s.seen[k] = struct{}{}
	idx := chainIndex{origin: c.Origin, value: c.Value}
	s.chains[idx] = append(s.chains[idx], c)
	return true
}

// Chains returns the recorded chains for (origin, value). The returned
// slice is shared; callers must not mutate it.
func (s *Store) Chains(origin topology.NodeID, value byte) []Chain {
	return s.chains[chainIndex{origin: origin, value: value}]
}

// Origins returns all (origin, value) pairs with any recorded evidence
// (direct or relayed), in deterministic order.
func (s *Store) Origins() []Chain {
	out := make([]Chain, 0, len(s.chains)+len(s.direct))
	seen := make(map[chainIndex]struct{}, len(s.chains)+len(s.direct))
	for idx := range s.direct {
		seen[idx] = struct{}{}
		out = append(out, Chain{Origin: idx.origin, Value: idx.value})
	}
	for idx := range s.chains {
		if _, ok := seen[idx]; !ok {
			out = append(out, Chain{Origin: idx.origin, Value: idx.value})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Value < out[j].Value
	})
	return out
}
