package evidence

import (
	"sort"
	"strings"

	"repro/internal/topology"
)

// Chain is one recorded report at a receiving node g: a claim that Origin
// committed Value, relayed by Relays (origin-side first; empty for a direct
// COMMITTED reception). A chain is an atomic evidence unit — the final
// relayer attested the entire relay list, so sub-paths of different chains
// must never be recombined (that would be unsound).
type Chain struct {
	Origin topology.NodeID
	Value  byte
	Relays []topology.NodeID
}

// maxKeyRelays is how many relays fit in chainKey's inline array. Protocol
// chains carry at most paths.MaxIntermediates (3) relays, so the string
// spillover only ever triggers for out-of-spec callers.
const maxKeyRelays = 4

// chainKey canonically identifies a chain (origin, value and exact relay
// sequence). It is a comparable value — dedup is a map probe with no
// per-chain string building. Unused relay slots hold topology.None, which
// can never be a real relay, so (together with n) padding is unambiguous.
type chainKey struct {
	origin topology.NodeID
	value  byte
	n      uint8
	relays [maxKeyRelays]topology.NodeID
	long   string // relay overflow spillover; "" in the inline case
}

// key canonically identifies the chain (origin, value and exact relay
// sequence).
func (c Chain) key() chainKey {
	k := chainKey{
		origin: c.Origin,
		value:  c.Value,
		n:      uint8(len(c.Relays)),
		relays: [maxKeyRelays]topology.NodeID{topology.None, topology.None, topology.None, topology.None},
	}
	if len(c.Relays) <= maxKeyRelays {
		copy(k.relays[:], c.Relays)
		return k
	}
	var b strings.Builder
	b.Grow(4 * len(c.Relays))
	for _, r := range c.Relays {
		b.WriteByte(byte(r))
		b.WriteByte(byte(r >> 8))
		b.WriteByte(byte(r >> 16))
		b.WriteByte(byte(r >> 24))
	}
	k.long = b.String()
	return k
}

// Store accumulates the chains a node has recorded, indexed by (origin,
// value). It additionally maintains a per-value list of all evidence
// (relayed chains plus direct receptions as relay-free chains) so the
// single-neighborhood commit rule never re-gathers. The zero value is not
// usable; create with NewStore.
type Store struct {
	chains  map[chainIndex][]Chain
	seen    map[chainKey]struct{}
	direct  map[chainIndex]bool // COMMITTED heard directly from the origin
	byValue map[byte][]Chain
}

type chainIndex struct {
	origin topology.NodeID
	value  byte
}

// NewStore creates an empty evidence store.
func NewStore() *Store {
	return &Store{
		chains:  make(map[chainIndex][]Chain),
		seen:    make(map[chainKey]struct{}),
		direct:  make(map[chainIndex]bool),
		byValue: make(map[byte][]Chain),
	}
}

// AddDirect records that the node heard COMMITTED(origin, value) on the
// channel itself — unforgeable, so it needs no disjoint-path corroboration.
func (s *Store) AddDirect(origin topology.NodeID, value byte) {
	idx := chainIndex{origin: origin, value: value}
	if s.direct[idx] {
		return
	}
	s.direct[idx] = true
	s.byValue[value] = append(s.byValue[value], Chain{Origin: origin, Value: value})
}

// HasDirect reports whether COMMITTED(origin, value) was heard directly.
func (s *Store) HasDirect(origin topology.NodeID, value byte) bool {
	return s.direct[chainIndex{origin: origin, value: value}]
}

// Add records a relayed chain, ignoring exact duplicates. It returns true
// when the chain was new.
func (s *Store) Add(c Chain) bool {
	k := c.key()
	if _, dup := s.seen[k]; dup {
		return false
	}
	s.seen[k] = struct{}{}
	idx := chainIndex{origin: c.Origin, value: c.Value}
	s.chains[idx] = append(s.chains[idx], c)
	s.byValue[c.Value] = append(s.byValue[c.Value], c)
	return true
}

// Chains returns the recorded chains for (origin, value). The returned
// slice is shared; callers must not mutate it.
func (s *Store) Chains(origin topology.NodeID, value byte) []Chain {
	return s.chains[chainIndex{origin: origin, value: value}]
}

// ValueChains returns every piece of evidence for the value across all
// origins, direct receptions included (as relay-free chains), in insertion
// order. The returned slice is shared; callers must not mutate it.
func (s *Store) ValueChains(value byte) []Chain {
	return s.byValue[value]
}

// Origins returns all (origin, value) pairs with any recorded evidence
// (direct or relayed), in deterministic order.
func (s *Store) Origins() []Chain {
	out := make([]Chain, 0, len(s.chains)+len(s.direct))
	seen := make(map[chainIndex]struct{}, len(s.chains)+len(s.direct))
	for idx := range s.direct {
		seen[idx] = struct{}{}
		out = append(out, Chain{Origin: idx.origin, Value: idx.value})
	}
	for idx := range s.chains {
		if _, ok := seen[idx]; !ok {
			out = append(out, Chain{Origin: idx.origin, Value: idx.value})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Value < out[j].Value
	})
	return out
}
