package evidence

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/topology"
)

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestStoreDedup(t *testing.T) {
	s := NewStore()
	c := Chain{Origin: 5, Value: 1, Relays: []topology.NodeID{2, 3}}
	if !s.Add(c) {
		t.Error("first add must succeed")
	}
	if s.Add(c) {
		t.Error("duplicate add must be rejected")
	}
	// Same relays, different value: distinct.
	c2 := c
	c2.Value = 0
	if !s.Add(c2) {
		t.Error("different value is a distinct chain")
	}
	if len(s.Chains(5, 1)) != 1 || len(s.Chains(5, 0)) != 1 {
		t.Error("chains misfiled")
	}
}

func TestStoreDirect(t *testing.T) {
	s := NewStore()
	s.AddDirect(7, 1)
	if !s.HasDirect(7, 1) || s.HasDirect(7, 0) || s.HasDirect(8, 1) {
		t.Error("direct bookkeeping wrong")
	}
}

func TestStoreOrigins(t *testing.T) {
	s := NewStore()
	s.AddDirect(3, 1)
	s.Add(Chain{Origin: 2, Value: 0, Relays: []topology.NodeID{9}})
	s.Add(Chain{Origin: 3, Value: 1, Relays: []topology.NodeID{8}})
	got := s.Origins()
	if len(got) != 2 {
		t.Fatalf("origins = %v", got)
	}
	if got[0].Origin != 2 || got[1].Origin != 3 {
		t.Errorf("origins order: %v", got)
	}
}

func TestChainKeyDistinguishesOrder(t *testing.T) {
	a := Chain{Origin: 1, Value: 0, Relays: []topology.NodeID{2, 3}}
	b := Chain{Origin: 1, Value: 0, Relays: []topology.NodeID{3, 2}}
	if a.key() == b.key() {
		t.Error("relay order matters: chains are attested sequences")
	}
}

func TestMaxDisjointChains(t *testing.T) {
	mk := func(rels ...topology.NodeID) Chain {
		return Chain{Origin: 99, Value: 1, Relays: rels}
	}
	tests := []struct {
		name   string
		chains []Chain
		want   int
	}{
		{"empty", nil, 0},
		{"single", []Chain{mk(1)}, 1},
		{"two disjoint", []Chain{mk(1), mk(2)}, 2},
		{"two conflicting", []Chain{mk(1, 2), mk(2, 3)}, 1},
		{"chain conflicts with both", []Chain{mk(1), mk(2), mk(1, 2)}, 2},
		{"triangle", []Chain{mk(1, 2), mk(2, 3), mk(3, 1)}, 1},
		{"pick small over big", []Chain{mk(1, 2, 3), mk(1), mk(2), mk(3)}, 3},
		{"duplicates collapse", []Chain{mk(4), mk(4)}, 1},
	}
	for _, tt := range tests {
		if got := maxDisjointChains(tt.chains, 10); got != tt.want {
			t.Errorf("%s: got %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestMaxDisjointChainsEarlyExit(t *testing.T) {
	var chains []Chain
	for i := 0; i < 30; i++ {
		chains = append(chains, Chain{Origin: 1, Value: 1, Relays: []topology.NodeID{topology.NodeID(i)}})
	}
	// With target 3, the search stops as soon as 3 are packed.
	if got := maxDisjointChains(chains, 3); got < 3 {
		t.Errorf("early-exit search found %d, want ≥ 3", got)
	}
}

func TestDeterminedExactDirect(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	s := NewStore()
	s.AddDirect(5, 1)
	if !DeterminedExact(net, s, 0, 5, 1, 99) {
		t.Error("direct hearing determines regardless of need")
	}
}

func TestDeterminedExactViaChains(t *testing.T) {
	// r=1, t=1: need t+1 = 2 disjoint chains within one closed nbd.
	net := testNet(t, 9, 9, 1)
	recv := net.IDOf(grid.C(2, 2))
	origin := net.IDOf(grid.C(4, 2)) // distance 2: both in nbd centered (3,2)
	relayA := net.IDOf(grid.C(3, 1))
	relayB := net.IDOf(grid.C(3, 3))
	s := NewStore()
	s.Add(Chain{Origin: origin, Value: 1, Relays: []topology.NodeID{relayA}})
	if DeterminedExact(net, s, recv, origin, 1, 2) {
		t.Error("one chain cannot satisfy need=2")
	}
	s.Add(Chain{Origin: origin, Value: 1, Relays: []topology.NodeID{relayB}})
	if !DeterminedExact(net, s, recv, origin, 1, 2) {
		t.Error("two disjoint in-nbd chains must determine")
	}
	// Wrong value is unaffected.
	if DeterminedExact(net, s, recv, origin, 0, 2) {
		t.Error("evidence is per-value")
	}
}

func TestDeterminedExactRejectsSharedRelay(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	recv := net.IDOf(grid.C(2, 2))
	origin := net.IDOf(grid.C(4, 2))
	shared := net.IDOf(grid.C(3, 2))
	far := net.IDOf(grid.C(3, 1))
	s := NewStore()
	// Two chains sharing their only relay: max packing is 1.
	s.Add(Chain{Origin: origin, Value: 1, Relays: []topology.NodeID{shared}})
	s.Add(Chain{Origin: origin, Value: 1, Relays: []topology.NodeID{shared, far}})
	if DeterminedExact(net, s, recv, origin, 1, 2) {
		t.Error("chains sharing a relay are not disjoint evidence")
	}
}

func TestDeterminedExactRequiresSingleNeighborhood(t *testing.T) {
	// Relays far apart: no single closed nbd contains origin, receiver and
	// both relays.
	net := testNet(t, 15, 15, 1)
	recv := net.IDOf(grid.C(5, 5))
	origin := net.IDOf(grid.C(7, 5))
	nearRelay := net.IDOf(grid.C(6, 5))
	farRelay := net.IDOf(grid.C(6, 9)) // outside every candidate nbd
	s := NewStore()
	s.Add(Chain{Origin: origin, Value: 1, Relays: []topology.NodeID{nearRelay}})
	s.Add(Chain{Origin: origin, Value: 1, Relays: []topology.NodeID{farRelay}})
	if DeterminedExact(net, s, recv, origin, 1, 2) {
		t.Error("chains outside a single neighborhood must not count together")
	}
}

func TestCommitSingleLevel(t *testing.T) {
	// r=1, t=1: need 2 disjoint chains (over distinct origins) in one nbd.
	net := testNet(t, 9, 9, 1)
	recv := net.IDOf(grid.C(2, 2))
	o1 := net.IDOf(grid.C(3, 2))
	o2 := net.IDOf(grid.C(3, 3))
	s := NewStore()
	s.AddDirect(o1, 1)
	if CommitSingleLevel(net, s, recv, 1, 2) {
		t.Error("single chain insufficient")
	}
	s.AddDirect(o2, 1)
	if !CommitSingleLevel(net, s, recv, 1, 2) {
		t.Error("two direct commits in one nbd must commit")
	}
}

func TestCommitSingleLevelDisjointness(t *testing.T) {
	// A node acting as another chain's relay breaks disjointness.
	net := testNet(t, 9, 9, 1)
	recv := net.IDOf(grid.C(2, 2))
	o1 := net.IDOf(grid.C(4, 2))
	o2 := net.IDOf(grid.C(3, 2)) // o2 is also the relay of o1's chain
	s := NewStore()
	s.Add(Chain{Origin: o1, Value: 1, Relays: []topology.NodeID{o2}})
	s.AddDirect(o2, 1)
	if CommitSingleLevel(net, s, recv, 1, 2) {
		t.Error("origin reused as relay violates collective disjointness")
	}
	// Add an independent second origin: now two disjoint chains exist.
	o3 := net.IDOf(grid.C(3, 3))
	s.AddDirect(o3, 1)
	if !CommitSingleLevel(net, s, recv, 1, 2) {
		t.Error("disjoint pair must commit")
	}
}

func TestCommitSingleLevelIgnoresLongChains(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	recv := net.IDOf(grid.C(2, 2))
	o1 := net.IDOf(grid.C(3, 2))
	s := NewStore()
	s.Add(Chain{Origin: o1, Value: 1, Relays: []topology.NodeID{
		net.IDOf(grid.C(3, 3)), net.IDOf(grid.C(2, 3)),
	}})
	s.AddDirect(net.IDOf(grid.C(2, 1)), 1)
	if CommitSingleLevel(net, s, recv, 1, 2) {
		t.Error("two-relay chains are not §VI-B evidence")
	}
}

func TestNewFamilyTableValidation(t *testing.T) {
	if _, err := NewFamilyTable(0); err == nil {
		t.Error("radius 0 must be rejected")
	}
}

func TestFamilyTableCoverage(t *testing.T) {
	for r := 1; r <= 4; r++ {
		ft, err := NewFamilyTable(r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		// The corner construction covers r² offsets (U + S1 + S2); the 8
		// symmetries multiply coverage (with overlaps).
		if ft.Offsets() < r*r {
			t.Errorf("r=%d: only %d offsets covered", r, ft.Offsets())
		}
		// Every covered offset has the full family of r(2r+1) paths.
		want := r * (2*r + 1)
		for off, fam := range ft.fams {
			if len(fam.paths) != want {
				t.Errorf("r=%d offset %v: %d paths, want %d", r, off, len(fam.paths), want)
			}
			if len(fam.keys) != len(fam.paths) {
				t.Errorf("r=%d offset %v: %d packed keys for %d paths", r, off, len(fam.keys), len(fam.paths))
			}
		}
	}
}

func TestFamilyTableSymmetricOffsets(t *testing.T) {
	ft, err := NewFamilyTable(2)
	if err != nil {
		t.Fatal(err)
	}
	// The S1 offset for p=0 is (0, -(r+1)) = (0,-3); all four axis-aligned
	// rotations must be covered.
	for _, off := range []grid.Coord{grid.C(0, -3), grid.C(0, 3), grid.C(-3, 0), grid.C(3, 0)} {
		if ft.FamilySize(off) == 0 {
			t.Errorf("offset %v not covered", off)
		}
	}
}

func TestShouldRelayPrefixes(t *testing.T) {
	r := 2
	ft, err := NewFamilyTable(r)
	if err != nil {
		t.Fatal(err)
	}
	// Take a designated path and check all its prefixes are relayable.
	var off grid.Coord
	var somePath []grid.Coord
	for o, fam := range ft.fams {
		for _, path := range fam.paths {
			if len(path) == 3 {
				off, somePath = o, path
				break
			}
		}
		if somePath != nil {
			break
		}
	}
	if somePath == nil {
		t.Fatal("no 3-relay designated path found")
	}
	for k := 1; k <= len(somePath); k++ {
		rels := make([]grid.Coord, k)
		for i := 0; i < k; i++ {
			rels[i] = somePath[i].Sub(off) // origin-relative
		}
		if !ft.ShouldRelay(rels) {
			t.Errorf("prefix of length %d of designated path must be relayable", k)
		}
	}
	// A garbage offset sequence is not relayable.
	if ft.ShouldRelay([]grid.Coord{grid.C(9, 9)}) {
		t.Error("non-designated prefix relayed")
	}
	if ft.ShouldRelay(nil) {
		t.Error("empty prefix must be rejected")
	}
}

func TestConfirmedPathsAndDeterminedDesignated(t *testing.T) {
	r := 1
	ft, err := NewFamilyTable(r)
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(t, 9, 9, r)
	recv := net.IDOf(grid.C(4, 4))
	// S1-type offset (0, -(r+1)) = origin two rows below the receiver.
	origin := net.IDOf(grid.C(4, 2))
	d := net.Delta(recv, origin)
	relPaths := ft.fams[d].paths
	if len(relPaths) != r*(2*r+1) {
		t.Fatalf("offset %v: %d designated paths", d, len(relPaths))
	}
	s := NewStore()
	if got := ft.ConfirmedPaths(net, s, recv, origin, 1); got != 0 {
		t.Fatalf("no chains: confirmed = %d", got)
	}
	// Confirm designated paths one by one.
	recvC := net.CoordOf(recv)
	for i, rels := range relPaths {
		ids := make([]topology.NodeID, len(rels))
		for j, off := range rels {
			ids[j] = net.IDOf(recvC.Add(off))
		}
		s.Add(Chain{Origin: origin, Value: 1, Relays: ids})
		if got := ft.ConfirmedPaths(net, s, recv, origin, 1); got != i+1 {
			t.Fatalf("after %d chains: confirmed = %d", i+1, got)
		}
	}
	need := 2 // t+1 with t = MaxByzantineLinf(1) = 1
	if !DeterminedDesignated(net, ft, s, recv, origin, 1, need) {
		t.Error("fully confirmed family must determine")
	}
	if DeterminedDesignated(net, ft, s, recv, origin, 0, need) {
		t.Error("wrong value must not be determined")
	}
	// Direct hearing shortcut.
	s2 := NewStore()
	s2.AddDirect(origin, 1)
	if !DeterminedDesignated(net, ft, s2, recv, origin, 1, need) {
		t.Error("direct hearing determines")
	}
}

func TestFamilyTablePathsAreValidOnTorus(t *testing.T) {
	// Materialize every designated path on a torus and check hop validity
	// and containment in a single closed neighborhood.
	r := 2
	ft, err := NewFamilyTable(r)
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(t, 15, 15, r)
	recv := net.IDOf(grid.C(7, 7))
	recvC := net.CoordOf(recv)
	for off, fam := range ft.fams {
		originC := recvC.Add(off)
		seen := make(map[topology.NodeID]bool)
		for _, rels := range fam.paths {
			full := make([]grid.Coord, 0, len(rels)+2)
			full = append(full, originC)
			for _, ro := range rels {
				full = append(full, recvC.Add(ro))
			}
			full = append(full, recvC)
			for i := 1; i < len(full); i++ {
				if !net.Torus().Within(grid.Linf, net.Torus().Wrap(full[i-1]), net.Torus().Wrap(full[i]), r) {
					t.Fatalf("offset %v: hop %v→%v too long", off, full[i-1], full[i])
				}
			}
			for _, ro := range rels {
				id := net.IDOf(recvC.Add(ro))
				if seen[id] {
					t.Fatalf("offset %v: relay %v reused", off, ro)
				}
				seen[id] = true
			}
		}
	}
}
