package evidence

import (
	"math/bits"
	"sort"

	"repro/internal/topology"
)

// This file implements the word-packed set machinery behind the commit
// rules. The disjoint-path packing of §VI/§VI-B is an exact set packing
// over chains' node sets; representing each set as a bitmask over a
// compact, per-call index of the nodes that actually occur turns the inner
// loops of the branch-and-bound (conflict tests, domination pruning,
// take/untake) into a handful of word operations and removes the
// map-allocation churn the seed implementation paid per chain.

// maskSet is a collection of fixed-width bitmasks sharing one backing
// array: mask i occupies words [i*words, (i+1)*words).
type maskSet struct {
	words   int
	backing []uint64
}

// newMaskSet allocates n all-zero masks of the given word width.
func newMaskSet(n, words int) maskSet {
	return maskSet{words: words, backing: make([]uint64, n*words)}
}

// mask returns the i-th mask.
func (ms maskSet) mask(i int) []uint64 {
	return ms.backing[i*ms.words : (i+1)*ms.words]
}

// set sets bit b of mask i.
func (ms maskSet) set(i, b int) {
	ms.backing[i*ms.words+b>>6] |= 1 << (uint(b) & 63)
}

// popcount returns the number of set bits in m.
func popcount(m []uint64) int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersects reports whether a and b share a bit.
func intersects(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// maskSubsetOf reports a ⊆ b.
func maskSubsetOf(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// orInto ors src into dst.
func orInto(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// andNotInto clears src's bits in dst.
func andNotInto(dst, src []uint64) {
	for i := range dst {
		dst[i] &^= src[i]
	}
}

// chainMasks packs the chains' node sets into bitmasks over a compact
// index of the nodes that occur. withOrigin selects whether a chain's
// origin participates in its set (the §VI-B whole-chain rule) or only its
// relays (the §VI internal-disjointness rule).
func chainMasks(chains []Chain, withOrigin bool) ([][]uint64, int) {
	index := make(map[topology.NodeID]int, 4*len(chains))
	idxOf := func(id topology.NodeID) int {
		if i, ok := index[id]; ok {
			return i
		}
		i := len(index)
		index[id] = i
		return i
	}
	// First pass: build the compact index so the word width is known.
	for _, c := range chains {
		if withOrigin {
			idxOf(c.Origin)
		}
		for _, rel := range c.Relays {
			idxOf(rel)
		}
	}
	words := (len(index) + 63) / 64
	if words == 0 {
		words = 1
	}
	ms := newMaskSet(len(chains), words)
	masks := make([][]uint64, len(chains))
	for i, c := range chains {
		if withOrigin {
			ms.set(i, index[c.Origin])
		}
		for _, rel := range c.Relays {
			ms.set(i, index[rel])
		}
		masks[i] = ms.mask(i)
	}
	return masks, words
}

// maxDisjointMasks computes the exact maximum pairwise-disjoint subfamily
// of the given bitmasks, stopping early once `target` is reached. Masks
// that are strict supersets of another mask are pruned first (domination),
// then a branch-and-bound search runs on the survivors. Each mask is an
// atomic evidence unit — recombining nodes across masks would be unsound,
// which is why this is a set packing rather than a flow problem.
func maxDisjointMasks(masks [][]uint64, words, target int) int {
	keep := make([]bool, len(masks))
	for i := range keep {
		keep[i] = true
	}
	for i := range masks {
		if !keep[i] {
			continue
		}
		for j := range masks {
			if i == j || !keep[i] || !keep[j] {
				continue
			}
			if maskSubsetOf(masks[j], masks[i]) && popcount(masks[j]) < popcount(masks[i]) {
				keep[i] = false // i strictly dominated by j
			} else if maskSubsetOf(masks[i], masks[j]) && i < j && popcount(masks[i]) == popcount(masks[j]) {
				keep[j] = false // exact duplicate; keep the first
			}
		}
	}
	pruned := masks[:0]
	for i, k := range keep {
		if k {
			pruned = append(pruned, masks[i])
		}
	}
	// Smaller node sets first: they conflict less.
	sort.SliceStable(pruned, func(i, j int) bool { return popcount(pruned[i]) < popcount(pruned[j]) })

	best := 0
	used := make([]uint64, words)
	var dfs func(idx, chosen int)
	dfs = func(idx, chosen int) {
		if chosen > best {
			best = chosen
		}
		if best >= target || idx >= len(pruned) {
			return
		}
		if chosen+len(pruned)-idx <= best {
			return // cannot beat the incumbent
		}
		// Branch 1: take pruned[idx] if compatible.
		if !intersects(pruned[idx], used) {
			orInto(used, pruned[idx])
			dfs(idx+1, chosen+1)
			andNotInto(used, pruned[idx])
			if best >= target {
				return
			}
		}
		// Branch 2: skip it.
		dfs(idx+1, chosen)
	}
	dfs(0, 0)
	return best
}

// disjointWitnessMasks is maxDisjointMasks' witness-producing sibling: it
// returns the indices (into masks) of a pairwise-disjoint subfamily of size
// target, or nil when none exists. It runs without domination pruning — the
// caller needs real member indices, and witness extraction only runs at
// most once per traced commit, off the hot path.
func disjointWitnessMasks(masks [][]uint64, words, target int) []int {
	if target <= 0 {
		return []int{}
	}
	if len(masks) < target {
		return nil
	}
	// Smaller node sets first: they conflict less, shrinking the search.
	order := make([]int, len(masks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return popcount(masks[order[i]]) < popcount(masks[order[j]])
	})
	used := make([]uint64, words)
	chosen := make([]int, 0, target)
	var dfs func(pos int) bool
	dfs = func(pos int) bool {
		if len(chosen) >= target {
			return true
		}
		if len(chosen)+len(order)-pos < target {
			return false // not enough candidates left
		}
		i := order[pos]
		if !intersects(masks[i], used) {
			orInto(used, masks[i])
			chosen = append(chosen, i)
			if dfs(pos + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			andNotInto(used, masks[i])
		}
		return dfs(pos + 1)
	}
	if !dfs(0) {
		return nil
	}
	sort.Ints(chosen)
	return chosen
}
