package evidence

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// bruteForceMaxDisjoint enumerates all subsets (sets are ≤ 12 in the tests)
// and returns the size of the largest pairwise-disjoint subfamily.
func bruteForceMaxDisjoint(sets []map[topology.NodeID]struct{}) int {
	n := len(sets)
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		used := make(map[topology.NodeID]struct{})
		count := 0
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for v := range sets[i] {
				if _, dup := used[v]; dup {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			for v := range sets[i] {
				used[v] = struct{}{}
			}
			count++
		}
		if ok && count > best {
			best = count
		}
	}
	return best
}

// TestMaxDisjointSetsMatchesBruteForce cross-checks the branch-and-bound
// packer against exhaustive enumeration on random small instances.
func TestMaxDisjointSetsMatchesBruteForce(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func(mod uint32) uint32 {
			rng = rng*1664525 + 1013904223
			return (rng >> 8) % mod
		}
		n := int(next(10)) + 1 // 1..10 sets
		sets := make([]map[topology.NodeID]struct{}, n)
		for i := range sets {
			k := int(next(3)) + 1 // 1..3 nodes per set
			sets[i] = make(map[topology.NodeID]struct{}, k)
			for j := 0; j < k; j++ {
				sets[i][topology.NodeID(next(8))] = struct{}{} // universe of 8 nodes
			}
		}
		// Copy for the brute force (the packer must not mutate, but be safe).
		copies := make([]map[topology.NodeID]struct{}, n)
		for i, s := range sets {
			c := make(map[topology.NodeID]struct{}, len(s))
			for v := range s {
				c[v] = struct{}{}
			}
			copies[i] = c
		}
		want := bruteForceMaxDisjoint(copies)
		got := maxDisjointSets(sets, n+1) // target beyond reach: exact maximum
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMaxDisjointSetsEarlyExitIsSound verifies the early-exit form never
// reports reaching a target the true maximum cannot reach.
func TestMaxDisjointSetsEarlyExitIsSound(t *testing.T) {
	f := func(seed uint32, targetRaw uint8) bool {
		rng := seed
		next := func(mod uint32) uint32 {
			rng = rng*1664525 + 1013904223
			return (rng >> 8) % mod
		}
		n := int(next(9)) + 1
		sets := make([]map[topology.NodeID]struct{}, n)
		for i := range sets {
			k := int(next(3)) + 1
			sets[i] = make(map[topology.NodeID]struct{}, k)
			for j := 0; j < k; j++ {
				sets[i][topology.NodeID(next(6))] = struct{}{}
			}
		}
		copies := make([]map[topology.NodeID]struct{}, n)
		for i, s := range sets {
			c := make(map[topology.NodeID]struct{}, len(s))
			for v := range s {
				c[v] = struct{}{}
			}
			copies[i] = c
		}
		truth := bruteForceMaxDisjoint(copies)
		target := int(targetRaw%6) + 1
		got := maxDisjointSets(sets, target)
		// With early exit, got ≥ target implies truth ≥ target; and got
		// never exceeds the true maximum.
		if got > truth {
			return false
		}
		if got >= target && truth < target {
			return false
		}
		// If the packer stopped early it must have genuinely reached target.
		if truth >= target && got < minInt(target, truth) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
