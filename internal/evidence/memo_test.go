package evidence

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/topology"
)

// TestPatternMemoMatchesDirect cross-checks memoized honest-path counts
// against FamilyTable.HonestPathCount for every (receiver, origin) pair over
// many random fault sets — the memo must be an exact cache at every radius,
// including radius 1 where overlapping symmetry orbits make the table
// non-equivariant.
func TestPatternMemoMatchesDirect(t *testing.T) {
	cases := []struct{ w, h, r int }{
		{10, 8, 1},
		{14, 12, 2},
		{16, 15, 3},
	}
	for _, tc := range cases {
		net := testNet(t, tc.w, tc.h, tc.r)
		ft, err := NewFamilyTable(tc.r)
		if err != nil {
			t.Fatal(err)
		}
		memo := NewPatternMemo(ft)
		rng := rand.New(rand.NewSource(int64(tc.r)))
		for trial := 0; trial < 20; trial++ {
			faulty := make(map[topology.NodeID]bool)
			for i := 0; i < 1+rng.Intn(8); i++ {
				faulty[topology.NodeID(rng.Intn(net.Size()))] = true
			}
			honest := func(id topology.NodeID) bool { return !faulty[id] }
			for u := 0; u < net.Size(); u += 1 + trial%3 {
				for o := 0; o < net.Size(); o++ {
					recv, origin := topology.NodeID(u), topology.NodeID(o)
					got := memo.HonestPathCount(net, recv, origin, honest)
					want := ft.HonestPathCount(net, recv, origin, honest)
					if got != want {
						t.Fatalf("r=%d recv=%d origin=%d trial=%d: memo %d, direct %d",
							tc.r, recv, origin, trial, got, want)
					}
				}
			}
		}
		st := memo.Stats()
		if st.Hits == 0 {
			t.Errorf("r=%d: memo never hit (stats %+v)", tc.r, st)
		}
		if tc.r >= 2 && st.Folded == 0 {
			t.Errorf("r=%d: no offsets folded under symmetry (stats %+v)", tc.r, st)
		}
	}
}

// TestPatternMemoNeverCrossesPatterns is the canonicalization soundness
// proof required of the symmetry memo: folding an offset onto its orbit
// representative must never identify two DISTINCT local fault patterns.
// Structurally that holds iff the transported support positions are a
// duplicate-free enumeration of exactly the relay offsets of the folded
// offset's own family — then fault assignments on the local relays and
// cache bitmasks are in bijection, so equal keys imply equal local
// patterns. The test checks that invariant for every offset, and then
// adversarially probes each folded offset with single-relay fault patterns
// (the patterns a wrong transport would be most likely to conflate).
func TestPatternMemoNeverCrossesPatterns(t *testing.T) {
	for _, r := range []int{1, 2, 3} {
		net := testNet(t, 4*r+6, 4*r+5, r)
		ft, err := NewFamilyTable(r)
		if err != nil {
			t.Fatal(err)
		}
		memo := NewPatternMemo(ft)
		for d, mo := range memo.offsets {
			relays := make(map[grid.Coord]bool)
			for _, rels := range ft.fams[d].paths {
				for _, off := range rels {
					relays[off] = true
				}
			}
			if mo.rep.direct {
				continue // falls back to direct counting; nothing shared
			}
			seen := make(map[grid.Coord]bool)
			for _, off := range mo.supportHere {
				if seen[off] {
					t.Fatalf("r=%d offset %v: duplicate support position %v — two pattern bits alias one relay", r, d, off)
				}
				seen[off] = true
				if !relays[off] {
					t.Fatalf("r=%d offset %v: support position %v is not a relay of this offset's family — transport is wrong", r, d, off)
				}
			}
			if len(seen) != len(relays) {
				t.Fatalf("r=%d offset %v: support covers %d of %d relay positions — a fault outside the support would be invisible", r, d, len(seen), len(relays))
			}
		}
		// Adversarial probe: fail one relay at a time at a folded offset and
		// require the memoized count to track the direct count exactly. A
		// canonicalization that crossed patterns would return a stale count
		// for some single-fault pattern.
		recv := topology.NodeID(net.Size() / 2)
		recvC := net.CoordOf(recv)
		tor := net.Torus()
		for d, mo := range memo.offsets {
			if mo.rep.direct {
				continue
			}
			origin := net.IDOf(tor.Wrap(recvC.Add(d)))
			for _, off := range mo.supportHere {
				bad := net.IDOf(tor.Wrap(recvC.Add(off)))
				honest := func(id topology.NodeID) bool { return id != bad }
				got := memo.HonestPathCount(net, recv, origin, honest)
				want := ft.HonestPathCount(net, recv, origin, honest)
				if got != want {
					t.Fatalf("r=%d offset %v faulting relay %v: memo %d, direct %d", r, d, off, got, want)
				}
			}
		}
	}
}

// TestPatternMemoNilAndMiss pins the degenerate paths: an origin outside the
// 2r envelope has no family and counts zero, matching the table.
func TestPatternMemoNilAndMiss(t *testing.T) {
	r := 2
	net := testNet(t, 16, 14, r)
	ft, err := NewFamilyTable(r)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewPatternMemo(ft)
	honest := func(topology.NodeID) bool { return true }
	recv := topology.NodeID(0)
	far := net.IDOf(grid.C(8, 7)) // L∞ distance 7 > 2r
	if got := memo.HonestPathCount(net, recv, far, honest); got != 0 {
		t.Errorf("far origin counted %d paths, want 0", got)
	}
	if got, want := memo.HonestPathCount(net, recv, recv, honest), ft.HonestPathCount(net, recv, recv, honest); got != want {
		t.Errorf("self origin: memo %d, direct %d", got, want)
	}
}
