package etrace

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// TestNilRecorderIsSafe pins the tap discipline: every method on a nil
// recorder is a no-op, so call sites may thread a nil tap with no guards.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.Broadcast(1, 2, 0, 1, topology.None, nil)
	r.Delivery(1, 3, 2, 0, 1, topology.None, nil)
	r.EvidenceEval(1, 3, 2, 1)
	r.Crash(1, 4)
	r.Spoof(1, 3, 2, 5)
	r.Commit(1, 3, 1, &Certificate{Rule: RuleDirect})
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
}

func TestRecorderPreservesOrder(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("fresh recorder is not enabled")
	}
	r.Broadcast(0, 1, 0, 1, topology.None, nil)
	r.Delivery(0, 2, 1, 0, 1, topology.None, nil)
	r.Commit(0, 2, 1, &Certificate{Rule: RuleDirect, Value: 1})
	events := r.Events()
	want := []Kind{KindBroadcast, KindDelivery, KindCommit}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, k := range want {
		if events[i].Kind != k {
			t.Errorf("event %d has kind %v, want %v", i, events[i].Kind, k)
		}
	}
}

// TestRecorderCopiesPaths pins the record-time copy: mutating the caller's
// path slice after recording must not corrupt the trace. The engines reuse
// message buffers, so aliasing here would be a real bug.
func TestRecorderCopiesPaths(t *testing.T) {
	r := New()
	path := []topology.NodeID{7, 8}
	r.Broadcast(1, 1, 2, 1, 9, path)
	path[0] = 99
	got := r.Events()[0].Path
	if want := []topology.NodeID{7, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recorded path aliases the caller's slice: got %v, want %v", got, want)
	}
}

// TestEventsReturnsCopy: mutating the returned slice must not affect later
// snapshots.
func TestEventsReturnsCopy(t *testing.T) {
	r := New()
	r.Crash(2, 5)
	first := r.Events()
	first[0].Node = 42
	if again := r.Events(); again[0].Node != 5 {
		t.Fatal("Events exposes internal storage")
	}
}

// TestCrashClampsNegativeRound: fault plans encode "crashed before round
// 1" with negative rounds; the trace reports those as round 0.
func TestCrashClampsNegativeRound(t *testing.T) {
	r := New()
	r.Crash(-3, 1)
	if got := r.Events()[0].Round; got != 0 {
		t.Fatalf("crash round = %d, want 0", got)
	}
}
