// Package etrace records structured execution events — broadcasts,
// deliveries, evidence evaluations, crashes, spoofed attributions and
// commits with their justifying certificates — so a run can answer the
// question the paper's staged-induction arguments answer on paper: *why*
// did node g commit value v at round k (Thm 1–3, §VI-B; Thm 6, §IX).
//
// The recorder follows the metrics.Collector tap discipline exactly: a nil
// *Recorder is a valid no-op sink, every method begins with a nil check,
// and the engines tap unconditionally — tracing off costs one predictable
// branch per event site and zero allocations, which the alloc-regression
// gates enforce.
//
// Determinism: on the sequential engine the event order is fully
// deterministic. On the concurrent runtime, broadcast and delivery events
// are recorded in the engine's deterministic fan-out loops, but evidence
// and commit events are recorded from node goroutines, so their
// interleaving *within a round* varies run to run. The set of events and
// every per-node subsequence are still deterministic; consumers needing a
// canonical order sort by (Round, Node, record order).
//
// etrace deliberately depends only on topology (sim imports etrace, not
// the reverse), so message kinds travel as raw uint8 and are re-interpreted
// by the public conversion layer in the root package.
package etrace
