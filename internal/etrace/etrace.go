package etrace

import (
	"sync"

	"repro/internal/topology"
)

// Kind discriminates recorded event types.
type Kind uint8

const (
	// KindBroadcast is one local broadcast by a node.
	KindBroadcast Kind = iota + 1
	// KindDelivery is one per-receiver message delivery.
	KindDelivery
	// KindEvidenceEval is one commit-rule evidence evaluation by an
	// honest BV4/BV2 process.
	KindEvidenceEval
	// KindCrash marks a node silenced by the crash-stop adversary; Round
	// is its first silent round.
	KindCrash
	// KindSpoof marks a delivery whose receiver attributed the message to
	// a claimed identity different from the physical transmitter (§X).
	KindSpoof
	// KindCommit is a first-time decision, carrying its Certificate.
	KindCommit
)

// Rule identifies which commit rule a certificate satisfied.
type Rule uint8

const (
	// RuleSource: the node is the designated source and commits by fiat.
	RuleSource Rule = iota + 1
	// RuleDirect: the node heard the value directly from the source
	// (base case of every protocol).
	RuleDirect
	// RuleQuorum: BV4's commit rule — t+1 reliably-determined committers
	// inside one closed neighborhood (§VI).
	RuleQuorum
	// RuleDisjointChains: BV2's commit rule — t+1 collectively
	// node-disjoint chains inside one closed neighborhood (§VI-B).
	RuleDisjointChains
	// RuleVotes: CPA's commit rule — t+1 distinct neighbor announcements
	// of the same value (§IX).
	RuleVotes
	// RuleFlood: crash-stop flooding — commit on any reception (§VII).
	RuleFlood
	// RuleReadyQuorum: Bracha's delivery rule — 2f+1 distinct READY
	// endorsements of one value, optionally backed by the N−f ECHO quorum
	// that triggered the node's own READY.
	RuleReadyQuorum
)

// Evidence is one origin's contribution to a certificate: either a direct
// COMMITTED reception (unforgeable) or the confirmed relay chains that
// reliably determined it.
type Evidence struct {
	// Origin is the committer the evidence is about.
	Origin topology.NodeID
	// Direct reports the origin's COMMITTED was heard on the channel
	// itself; Chains is empty then.
	Direct bool
	// Chains lists the relay sequences (origin-side first) of the
	// confirming recorded chains.
	Chains [][]topology.NodeID
}

// Certificate is the recorded justification of one commit. Which fields
// are populated depends on Rule: Center for the neighborhood rules
// (RuleQuorum, RuleDisjointChains), Voters for RuleDirect/RuleVotes/
// RuleFlood, Evidence for the chain-based rules.
type Certificate struct {
	Rule  Rule
	Value byte
	// Center is the closed-neighborhood center the rule fired at
	// (meaningful iff HasCenter).
	Center    topology.NodeID
	HasCenter bool
	// Voters lists the distinct attributed senders whose messages the
	// rule counted (for RuleReadyQuorum: the READY endorsers).
	Voters []topology.NodeID
	// Evidence lists the per-origin chain evidence, in origin-id order.
	Evidence []Evidence
	// Echoes lists the N−f distinct ECHO endorsers whose quorum triggered
	// the committing node's own READY (RuleReadyQuorum only; empty when
	// the READY came from f+1 READY amplification instead).
	Echoes []topology.NodeID
}

// Event is one recorded engine or protocol event. Which fields are
// meaningful depends on Kind; Round and Node are always set.
type Event struct {
	Round int
	Kind  Kind
	// Node is the acting node: the transmitter of a broadcast, the
	// receiver of a delivery/spoof, the evaluator, the crashed node, or
	// the committer.
	Node topology.NodeID
	// From is the physical transmitter (delivery, spoof).
	From topology.NodeID
	// MsgKind/Value/Origin/Path mirror the sim.Message of a broadcast or
	// delivery (MsgKind is the raw sim.Kind; etrace cannot import sim).
	// Value doubles as the evaluated/committed value for
	// evidence-eval/commit events.
	MsgKind uint8
	Value   byte
	Origin  topology.NodeID
	Path    []topology.NodeID
	// Claimed is the spoofed identity the receiver attributed (spoof).
	Claimed topology.NodeID
	// Cert is the commit justification (commit events only).
	Cert *Certificate
}

// Recorder accumulates events in order. It follows the metrics.Collector
// tap discipline: a nil *Recorder is a valid no-op sink, so engines and
// protocols tap unconditionally and pay one nil check when tracing is off.
// All methods are safe for concurrent use — the concurrent runtime records
// commit and evidence events from many node goroutines at once (within a
// round their interleaving is scheduler-dependent; see the package doc).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether events are being recorded. Protocols use it to
// skip certificate construction entirely on untraced runs.
func (r *Recorder) Enabled() bool { return r != nil }

// record appends one event under the lock.
func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// copyPath defensively copies a message path: broadcast messages are
// immutable, but the caller's backing slice may be reused after delivery.
func copyPath(path []topology.NodeID) []topology.NodeID {
	if len(path) == 0 {
		return nil
	}
	return append([]topology.NodeID(nil), path...)
}

// Broadcast records one local broadcast of a message.
func (r *Recorder) Broadcast(round int, from topology.NodeID, msgKind uint8, value byte, origin topology.NodeID, path []topology.NodeID) {
	if r == nil {
		return
	}
	r.record(Event{Round: round, Kind: KindBroadcast, Node: from,
		MsgKind: msgKind, Value: value, Origin: origin, Path: copyPath(path)})
}

// Delivery records one per-receiver delivery.
func (r *Recorder) Delivery(round int, node, from topology.NodeID, msgKind uint8, value byte, origin topology.NodeID, path []topology.NodeID) {
	if r == nil {
		return
	}
	r.record(Event{Round: round, Kind: KindDelivery, Node: node, From: from,
		MsgKind: msgKind, Value: value, Origin: origin, Path: copyPath(path)})
}

// EvidenceEval records one commit-rule evidence evaluation about (origin,
// value) at the evaluating node.
func (r *Recorder) EvidenceEval(round int, node, origin topology.NodeID, value byte) {
	if r == nil {
		return
	}
	r.record(Event{Round: round, Kind: KindEvidenceEval, Node: node, Origin: origin, Value: value})
}

// Crash records a node silenced from the given round onward.
func (r *Recorder) Crash(round int, node topology.NodeID) {
	if r == nil {
		return
	}
	if round < 0 {
		round = 0
	}
	r.record(Event{Round: round, Kind: KindCrash, Node: node})
}

// Spoof records a delivery whose attribution diverged from the physical
// transmitter: node received from `from` but ascribed it to `claimed`.
func (r *Recorder) Spoof(round int, node, from, claimed topology.NodeID) {
	if r == nil {
		return
	}
	r.record(Event{Round: round, Kind: KindSpoof, Node: node, From: from, Claimed: claimed})
}

// Commit records a first-time decision with its justification. Cert may be
// nil if the protocol could not reconstruct one (defensive; honest
// protocols always supply it).
func (r *Recorder) Commit(round int, node topology.NodeID, value byte, cert *Certificate) {
	if r == nil {
		return
	}
	r.record(Event{Round: round, Kind: KindCommit, Node: node, Value: value, Cert: cert})
}

// Events returns a copy of everything recorded so far, in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}
