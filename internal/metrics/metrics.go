package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// RoundCounters is one engine round's event counts. Round 0 is process
// initialization (the source's first broadcast is queued there but
// transmitted in round 1).
type RoundCounters struct {
	// Broadcasts counts local broadcasts transmitted in the round
	// (including blind retransmissions on a lossy medium).
	Broadcasts int64
	// Deliveries counts per-receiver message deliveries in the round.
	Deliveries int64
	// EvidenceEvals counts commit-rule evidence evaluations performed by
	// honest processes in the round (BV4/BV2 disjoint-path checks).
	EvidenceEvals int64
	// Commits counts first-time decisions observed in the round.
	Commits int64
}

// Snapshot is a consistent copy of a collector's state.
type Snapshot struct {
	// Broadcasts, Deliveries, EvidenceEvals, Commits are run totals; each
	// equals the column sum over PerRound.
	Broadcasts, Deliveries, EvidenceEvals, Commits int64
	// PerRound indexes counters by engine round, starting at round 0.
	PerRound []RoundCounters
	// Wall is the run's wall-clock duration (set via ObserveWall).
	Wall time.Duration
}

// Collector accumulates engine counters. The zero value is ready to use; a
// nil *Collector discards everything.
type Collector struct {
	broadcasts atomic.Int64
	deliveries atomic.Int64
	evidence   atomic.Int64
	commits    atomic.Int64
	wall       atomic.Int64 // nanoseconds

	mu     sync.Mutex
	rounds []RoundCounters
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// round returns the per-round bucket, growing the histogram as needed.
// Callers must hold c.mu.
func (c *Collector) round(r int) *RoundCounters {
	if r < 0 {
		r = 0
	}
	for len(c.rounds) <= r {
		c.rounds = append(c.rounds, RoundCounters{})
	}
	return &c.rounds[r]
}

// AddBroadcasts records n local broadcasts in the given round.
func (c *Collector) AddBroadcasts(round int, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.broadcasts.Add(n)
	c.mu.Lock()
	c.round(round).Broadcasts += n
	c.mu.Unlock()
}

// AddDeliveries records n per-receiver deliveries in the given round.
func (c *Collector) AddDeliveries(round int, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.deliveries.Add(n)
	c.mu.Lock()
	c.round(round).Deliveries += n
	c.mu.Unlock()
}

// AddEvidenceEvals records n commit-rule evidence evaluations in the round.
func (c *Collector) AddEvidenceEvals(round int, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.evidence.Add(n)
	c.mu.Lock()
	c.round(round).EvidenceEvals += n
	c.mu.Unlock()
}

// AddCommit records one first-time decision in the given round.
func (c *Collector) AddCommit(round int) {
	if c == nil {
		return
	}
	c.commits.Add(1)
	c.mu.Lock()
	c.round(round).Commits++
	c.mu.Unlock()
}

// ObserveWall records the run's wall-clock duration.
func (c *Collector) ObserveWall(d time.Duration) {
	if c == nil {
		return
	}
	c.wall.Store(int64(d))
}

// Clone returns an independent collector carrying an exact copy of the
// state: totals, per-round rows and wall observation. A forked engine
// (sim.Engine.Fork) clones the collector at the fork point so the shared
// execution prefix is counted once per branch, exactly as if each branch
// had simulated the prefix itself. Cloning a nil collector returns nil,
// preserving the "nil discards everything" contract.
func (c *Collector) Clone() *Collector {
	if c == nil {
		return nil
	}
	out := New()
	c.mu.Lock()
	out.rounds = append([]RoundCounters(nil), c.rounds...)
	c.mu.Unlock()
	out.broadcasts.Store(c.broadcasts.Load())
	out.deliveries.Store(c.deliveries.Load())
	out.evidence.Store(c.evidence.Load())
	out.commits.Store(c.commits.Load())
	out.wall.Store(c.wall.Load())
	return out
}

// Snapshot copies the collector's state. It is safe to call while taps are
// still firing; the copy is internally consistent per counter.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	perRound := make([]RoundCounters, len(c.rounds))
	copy(perRound, c.rounds)
	c.mu.Unlock()
	return Snapshot{
		Broadcasts:    c.broadcasts.Load(),
		Deliveries:    c.deliveries.Load(),
		EvidenceEvals: c.evidence.Load(),
		Commits:       c.commits.Load(),
		PerRound:      perRound,
		Wall:          time.Duration(c.wall.Load()),
	}
}
