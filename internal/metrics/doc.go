// Package metrics provides cheap, concurrency-safe execution counters for
// the simulation engines: running totals and per-round histograms of
// broadcasts, deliveries, evidence evaluations and commits, plus the run's
// wall-clock time. A nil *Collector is a valid no-op sink, so the engines
// tap unconditionally and pay nothing when no one is collecting.
//
// Totals are atomics; the per-round histogram is guarded by a mutex because
// the concurrent runtime records commits and evidence evaluations from many
// node goroutines at once. Both engines drive the same taps, which is what
// makes the counters differentially testable across them.
package metrics
