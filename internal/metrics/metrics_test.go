package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.AddBroadcasts(1, 3)
	c.AddDeliveries(1, 3)
	c.AddEvidenceEvals(1, 3)
	c.AddCommit(1)
	c.ObserveWall(time.Second)
	snap := c.Snapshot()
	if snap.Broadcasts != 0 || snap.Commits != 0 || len(snap.PerRound) != 0 || snap.Wall != 0 {
		t.Errorf("nil collector recorded something: %+v", snap)
	}
}

func TestTotalsMatchPerRoundSums(t *testing.T) {
	c := New()
	c.AddBroadcasts(0, 1)
	c.AddBroadcasts(2, 4)
	c.AddDeliveries(1, 8)
	c.AddDeliveries(2, 8)
	c.AddEvidenceEvals(2, 5)
	c.AddCommit(0)
	c.AddCommit(2)
	c.AddCommit(2)
	c.ObserveWall(42 * time.Millisecond)

	snap := c.Snapshot()
	if snap.Broadcasts != 5 || snap.Deliveries != 16 || snap.EvidenceEvals != 5 || snap.Commits != 3 {
		t.Fatalf("totals: %+v", snap)
	}
	if snap.Wall != 42*time.Millisecond {
		t.Errorf("wall = %v", snap.Wall)
	}
	if len(snap.PerRound) != 3 {
		t.Fatalf("rounds = %d, want 3", len(snap.PerRound))
	}
	var b, d, e, cm int64
	for _, rc := range snap.PerRound {
		b += rc.Broadcasts
		d += rc.Deliveries
		e += rc.EvidenceEvals
		cm += rc.Commits
	}
	if b != snap.Broadcasts || d != snap.Deliveries || e != snap.EvidenceEvals || cm != snap.Commits {
		t.Errorf("per-round sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			b, d, e, cm, snap.Broadcasts, snap.Deliveries, snap.EvidenceEvals, snap.Commits)
	}
}

func TestZeroAddsAllocateNothing(t *testing.T) {
	c := New()
	c.AddBroadcasts(5, 0)
	c.AddDeliveries(9, 0)
	c.AddEvidenceEvals(9, 0)
	if snap := c.Snapshot(); len(snap.PerRound) != 0 {
		t.Errorf("zero adds grew the histogram to %d rounds", len(snap.PerRound))
	}
}

func TestNegativeRoundClampsToZero(t *testing.T) {
	c := New()
	c.AddBroadcasts(-3, 2)
	snap := c.Snapshot()
	if len(snap.PerRound) != 1 || snap.PerRound[0].Broadcasts != 2 {
		t.Errorf("negative round not clamped: %+v", snap.PerRound)
	}
}

func TestConcurrentTaps(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				round := (w + i) % 17
				c.AddBroadcasts(round, 1)
				c.AddDeliveries(round, 2)
				c.AddEvidenceEvals(round, 1)
				c.AddCommit(round)
			}
		}(w)
	}
	wg.Wait()
	snap := c.Snapshot()
	want := int64(workers * perWorker)
	if snap.Broadcasts != want || snap.Deliveries != 2*want || snap.EvidenceEvals != want || snap.Commits != want {
		t.Errorf("lost updates: %+v (want %d broadcasts)", snap, want)
	}
}
