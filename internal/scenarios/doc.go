// Package scenarios defines the canonical benchmark and equivalence
// scenario matrix: one named (Config, FaultPlan) pair per representative
// workload, covering every protocol at, below and above its fault
// threshold, both engines, both delivery modes, and the medium extensions.
//
// The same matrix drives three consumers, which is the point — they must
// never drift apart:
//
//   - cmd/bench measures each scenario and emits BENCH_*.json;
//   - the root-package equivalence test pins each scenario's Result hash
//     against testdata/results.golden (generated from the pre-optimization
//     seed engines, so any hot-path change that alters a single byte of a
//     Result fails the suite);
//   - scripts/benchdiff.sh compares two benchmark runs scenario by name.
package scenarios
