package scenarios

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	rbcast "repro"
)

// Scenario is one named workload.
type Scenario struct {
	// Name is the stable identifier used in BENCH_*.json and the golden
	// file. Renaming a scenario orphans its golden entry; add new names
	// instead.
	Name string
	// Config and Plan define the run.
	Config rbcast.Config
	Plan   rbcast.FaultPlan
}

// Matrix returns the canonical scenario list in stable order.
//
// Threshold coverage follows the paper's structure: "below" places fewer
// faults than the protocol tolerates, "at" places the maximum tolerated
// (the run must still be AllCorrect), "above" exceeds the bound (honest
// nodes are expected to stall undecided — the run itself stays
// deterministic, which is all the harness needs).
func Matrix() []Scenario {
	rCPA := 2
	tCPA := rbcast.MaxCPALinf(rCPA) // Theorem 6 bound
	rBV := 1
	tBV := rbcast.MaxByzantineLinf(rBV) // Theorem 1 bound
	return []Scenario{
		// Flood: the raw engine cost of one full broadcast wave (§VII).
		{
			Name:   "flood/seq/32x32r2",
			Config: rbcast.Config{Width: 32, Height: 32, Radius: 2, Protocol: rbcast.ProtocolFlood, Value: 1},
		},
		{
			Name:   "flood/conc/32x32r2",
			Config: rbcast.Config{Width: 32, Height: 32, Radius: 2, Protocol: rbcast.ProtocolFlood, Value: 1, Concurrent: true},
		},
		{
			Name:   "flood/lockstep/32x32r2",
			Config: rbcast.Config{Width: 32, Height: 32, Radius: 2, Protocol: rbcast.ProtocolFlood, Value: 1, LockStep: true},
		},
		// Flood under the crash-stop band adversary (Theorem 5 territory).
		{
			Name:   "flood/crash-band/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash, CrashRound: 2},
		},
		// Flood on the lossy medium (§II/§X probabilistic local broadcast).
		{
			Name:   "flood/lossy/24x24r2",
			Config: rbcast.Config{Width: 24, Height: 24, Radius: 2, Protocol: rbcast.ProtocolFlood, Value: 1, LossRate: 0.3, Retransmit: 3, MediumSeed: 7},
		},
		// CPA below / at / above the Theorem 6 threshold.
		{
			Name:   "cpa/below/24x14r2",
			Config: rbcast.Config{Width: 24, Height: 14, Radius: rCPA, Protocol: rbcast.ProtocolCPA, T: tCPA - 1, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
		},
		{
			Name:   "cpa/at/24x14r2",
			Config: rbcast.Config{Width: 24, Height: 14, Radius: rCPA, Protocol: rbcast.ProtocolCPA, T: tCPA, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
		},
		{
			Name:   "cpa/above/24x14r2",
			Config: rbcast.Config{Width: 24, Height: 14, Radius: rCPA, Protocol: rbcast.ProtocolCPA, T: tCPA + 1, Value: 1, MaxRounds: 64},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
		},
		// BV4 below / at / above the Theorem 1 threshold, forger adversary.
		{
			Name:   "bv4/below/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV4, T: tBV - 1, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyForger},
		},
		{
			Name:   "bv4/at/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV4, T: tBV, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyForger},
		},
		{
			Name:   "bv4/above/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV4, T: tBV + 1, Value: 1, MaxRounds: 64},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
		},
		// BV4 on the concurrent engine at the threshold.
		{
			Name:   "bv4/conc-at/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV4, T: tBV, Value: 1, Concurrent: true},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyForger},
		},
		// BV4 with exhaustive (exact set-packing) evidence evaluation.
		{
			Name:   "bv4/exact-at/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV4, T: tBV, Value: 1, ExactEvidence: true},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyForger},
		},
		// BV4 under identity spoofing (§X sensitivity study).
		{
			Name:   "bv4/spoof/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV4, T: tBV, Value: 1, SpoofingPossible: true, MaxRounds: 64},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySpoofer},
		},
		// BV2 at the threshold (silent and lying adversaries).
		{
			Name:   "bv2/at/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV2, T: tBV, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
		},
		{
			Name:   "bv2/liar-at/16x10r1",
			Config: rbcast.Config{Width: 16, Height: 10, Radius: rBV, Protocol: rbcast.ProtocolBV2, T: tBV, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategyLiar},
		},
		// Non-torus families end to end: the rgg "noisy torus" bridge and
		// an explicit chord-ring adjacency list, on the family-agnostic
		// protocols. These exercise the Graph interface through the same
		// run/cache/fingerprint surface as the torus scenarios.
		{
			Name:   "flood/rgg/n64",
			Config: rbcast.Config{Topology: rbcast.TopologyRGG, Nodes: 64, RGGRadius: 0.22, TopologySeed: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
		},
		{
			Name:   "cpa/rgg-random/n64",
			Config: rbcast.Config{Topology: rbcast.TopologyRGG, Nodes: 64, RGGRadius: 0.22, TopologySeed: 1, Protocol: rbcast.ProtocolCPA, T: 1, Value: 1, MaxRounds: 64},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 4, Seed: 11},
		},
		{
			Name:   "flood/custom/ring16",
			Config: rbcast.Config{Topology: rbcast.TopologyCustom, Graph: chordRing(16, 4), Protocol: rbcast.ProtocolFlood, Value: 1},
		},
		{
			Name:   "cpa/custom/ring16",
			Config: rbcast.Config{Topology: rbcast.TopologyCustom, Graph: chordRing(16, 4), Protocol: rbcast.ProtocolCPA, T: 1, Value: 1, MaxRounds: 64},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategyLiar, Count: 2, Seed: 5},
		},
		// The Bracha quorum family (N ≥ 3T+1) under the radio harness, on
		// all three topology families. The plain variant counts
		// endorsements by physical sender, so its graphs are effectively
		// complete (the 5×5 r2 torus and the radius-0.75 rgg are complete
		// under their metrics; K13 explicitly so); the authenticated
		// variant assembles quorums across multi-hop relays on a sparse
		// rgg. The at-threshold runs place exactly T silent faults, making
		// the N−T ECHO and 2T+1 READY quorums exact.
		{
			Name:   "bracha/at/5x5r2",
			Config: rbcast.Config{Width: 5, Height: 5, Radius: 2, Protocol: rbcast.ProtocolBracha, T: 8, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 8, Seed: 3},
		},
		{
			Name:   "bracha/conc-at/5x5r2",
			Config: rbcast.Config{Width: 5, Height: 5, Radius: 2, Protocol: rbcast.ProtocolBracha, T: 8, Value: 1, Concurrent: true},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 8, Seed: 3},
		},
		{
			Name:   "bracha-auth/at/5x5r2",
			Config: rbcast.Config{Width: 5, Height: 5, Radius: 2, Protocol: rbcast.ProtocolBrachaAuth, T: 8, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 8, Seed: 3},
		},
		{
			Name:   "bracha/rgg-at/n48",
			Config: rbcast.Config{Topology: rbcast.TopologyRGG, Nodes: 48, RGGRadius: 0.75, TopologySeed: 5, Protocol: rbcast.ProtocolBracha, T: 5, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 5, Seed: 7},
		},
		{
			Name:   "bracha/custom-at/k13",
			Config: rbcast.Config{Topology: rbcast.TopologyCustom, Graph: complete(13), Protocol: rbcast.ProtocolBracha, T: 4, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 4, Seed: 3},
		},
		// Equivocation below the quorum bound: 3 two-faced nodes against
		// T = 4 are absorbed — the run must stay AllCorrect. (The breach
		// at f ≥ N/3 lives in the what-if test, not the golden matrix.)
		{
			Name:   "bracha/equivocator/k13",
			Config: rbcast.Config{Topology: rbcast.TopologyCustom, Graph: complete(13), Protocol: rbcast.ProtocolBracha, T: 4, Value: 1, MaxRounds: 64},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategyEquivocator, Count: 3, Seed: 3},
		},
		{
			Name:   "bracha-auth/rgg/n32",
			Config: rbcast.Config{Topology: rbcast.TopologyRGG, Nodes: 32, RGGRadius: 0.3, TopologySeed: 2, Protocol: rbcast.ProtocolBrachaAuth, T: 2, Value: 1, MaxRounds: 128},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 2, Seed: 4},
		},
	}
}

// complete builds K_n — the quorum family's home turf, where every
// endorsement is heard by every node in one hop.
func complete(n int) *rbcast.GraphSpec {
	spec := &rbcast.GraphSpec{Nodes: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			spec.Edges = append(spec.Edges, [2]int{i, j})
		}
	}
	return spec
}

// chordRing builds the custom-family benchmark graph: an n-cycle with a
// chord from every node to the one `chord` steps ahead — a planar,
// loosely-connected instance in the spirit of the Maurer–Tixeuil examples.
func chordRing(n, chord int) *rbcast.GraphSpec {
	spec := &rbcast.GraphSpec{Nodes: n}
	for i := 0; i < n; i++ {
		spec.Edges = append(spec.Edges, [2]int{i, (i + 1) % n})
		spec.Edges = append(spec.Edges, [2]int{i, (i + chord) % n})
	}
	return spec
}

// ResultHash returns the canonical SHA-256 of a Result's lossless JSON
// encoding with the one nondeterministic field (Metrics.Wall) zeroed. Two
// runs of the same scenario hash identically iff every decision, round
// number, traffic counter and per-round histogram bucket matches.
func ResultHash(res rbcast.Result) (string, error) {
	res.Metrics.Wall = 0
	blob, err := json.Marshal(res)
	if err != nil {
		return "", fmt.Errorf("scenarios: encoding result: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
