package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	rbcast "repro"
)

// decodeSweepStream parses the /v1/sweep NDJSON body.
func decodeSweepStream(t *testing.T, body []byte) (SweepHeader, []SweepElement, SweepTrailer) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(body))
	var header SweepHeader
	if err := dec.Decode(&header); err != nil {
		t.Fatalf("decoding header: %v (body %q)", err, body)
	}
	elements := make([]SweepElement, 0, header.Elements)
	for i := 0; i < header.Elements; i++ {
		var el SweepElement
		if err := dec.Decode(&el); err != nil {
			t.Fatalf("decoding element %d: %v", i, err)
		}
		elements = append(elements, el)
	}
	var trailer SweepTrailer
	if err := dec.Decode(&trailer); err != nil {
		t.Fatalf("decoding trailer: %v", err)
	}
	return header, elements, trailer
}

// TestSweepEndpointMatchesScalarRuns plans a crash-round × T grid on the
// daemon and checks every streamed element against an independent direct
// run — the serving path must preserve the engine's byte-identity.
func TestSweepEndpointMatchesScalarRuns(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := SweepRequest{
		Base: RunRequest{
			Config: rbcast.Config{Width: 14, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceBand, Strategy: rbcast.StrategyCrash},
		},
		Axes: rbcast.SweepAxes{Ts: []int{0, 1}, CrashRounds: []int{1, 2, 3}},
	}
	resp, body := postJSON(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	header, elements, trailer := decodeSweepStream(t, body)
	if header.Elements != 6 || len(elements) != 6 {
		t.Fatalf("planned %d elements, streamed %d, want 6", header.Elements, len(elements))
	}
	spec := rbcast.SweepSpec{Base: rbcast.Job{Config: req.Base.Config, Plan: req.Base.Plan}, Axes: req.Axes}
	jobs, err := spec.Elements()
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range elements {
		if el.Index != i {
			t.Errorf("element %d streamed with index %d", i, el.Index)
		}
		if el.Error != "" || el.Result == nil {
			t.Fatalf("element %d failed: %s", i, el.Error)
		}
		want, err := rbcast.Run(jobs[i].Config, jobs[i].Plan)
		if err != nil {
			t.Fatal(err)
		}
		got := *el.Result
		got.Metrics.Wall, want.Metrics.Wall = 0, 0
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("element %d diverges from scalar run", i)
		}
		if fp := jobs[i].Fingerprint(); el.Fingerprint != fp {
			t.Errorf("element %d fingerprint %q, want %q", i, el.Fingerprint, fp)
		}
	}
	// The T axis is dead for flood: 6 elements, ≤ 3 distinct executions.
	if trailer.Stats.SharedResults < 3 {
		t.Errorf("stats %+v: want ≥ 3 shared results", trailer.Stats)
	}
	if trailer.Stats.NodeRounds >= trailer.Stats.ScalarNodeRounds {
		t.Errorf("stats %+v: no incremental saving", trailer.Stats)
	}

	// A repeated sweep is served entirely from the result cache.
	resp, body = postJSON(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	_, elements, trailer = decodeSweepStream(t, body)
	for i, el := range elements {
		if !el.Cached {
			t.Errorf("repeat element %d not served from cache", i)
		}
	}
	if trailer.Stats.Simulations != 0 {
		t.Errorf("repeat sweep simulated %d times", trailer.Stats.Simulations)
	}

	// Metrics surface the sweep counters.
	resp, body = getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"rbcastd_sweeps_total 2", "rbcastd_sweep_elements_total 12"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSweepEndpointRejectsBadGrids pins the 400 paths: malformed body,
// invalid base scenario (inline element errors), and an oversized grid.
func TestSweepEndpointRejectsBadGrids(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postJSON(t, ts, "/v1/sweep", map[string]any{"bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	big := SweepRequest{
		Base: RunRequest{Config: rbcast.Config{Width: 10, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1}},
		Axes: rbcast.SweepAxes{Ts: make([]int, 100), Seeds: make([]int64, 100)},
	}
	resp, body := postJSON(t, ts, "/v1/sweep", big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized grid: status %d (%s), want 400", resp.StatusCode, body)
	}

	// An invalid scenario is an element-level error, not a request error:
	// the grid is well-formed, the elements all reject.
	invalid := SweepRequest{
		Base: RunRequest{Config: rbcast.Config{Width: 10, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, T: -1, Value: 1}},
		Axes: rbcast.SweepAxes{CrashRounds: []int{1, 2}},
	}
	resp, body = postJSON(t, ts, "/v1/sweep", invalid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalid base: status %d (%s), want 200 with element errors", resp.StatusCode, body)
	}
	_, elements, _ := decodeSweepStream(t, body)
	for i, el := range elements {
		if el.Error == "" || el.Result != nil {
			t.Errorf("element %d: want an element-level error, got %+v", i, el)
		}
	}
}

// TestSweepEndpointSheds pins the 429 + Retry-After backpressure when every
// execution slot is taken.
func TestSweepEndpointSheds(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := New(Options{
		MaxInflight: 1,
		SweepRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) ([]rbcast.BatchResult, rbcast.SweepStats) {
			started <- struct{}{}
			<-block
			return rbcast.RunSweepJobs(jobs, opts)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := SweepRequest{
		Base: RunRequest{
			Config: rbcast.Config{Width: 10, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
		},
		Axes: rbcast.SweepAxes{Seeds: []int64{1}},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-started

	resp, _ := postJSON(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second sweep status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	close(block)
	if code := <-status; code != http.StatusOK {
		t.Fatalf("first sweep status %d, want 200", code)
	}
}
