package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	rbcast "repro"
)

// otherScenario returns a valid scenario whose fingerprint differs from
// testScenario and from otherScenario(m) for m != n, so tests can defeat
// the result cache and single-flight layer at will.
func otherScenario(n int) RunRequest {
	return RunRequest{
		Config: rbcast.Config{Width: 16, Height: 10 + n, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
	}
}

// pollJob polls /v1/jobs/{id} until done or the deadline passes.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getBody(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// shedAssertions checks the contract every 429 must honor.
func shedAssertions(t *testing.T, resp *http.Response, body []byte) {
	t.Helper()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("429 body is not the uniform error shape: %s", body)
	}
}

func TestBatchQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := New(Options{
		QueueDepth: 1,
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			entered <- struct{}{}
			<-release
			return rbcast.RunBatch(jobs, opts)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// First submission fills the depth-1 queue and blocks in the runner.
	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{testScenario()}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	<-entered

	// Second submission must shed: 429, Retry-After, uniform error body.
	resp, body = postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{otherScenario(1)}})
	shedAssertions(t, resp, body)
	if !strings.Contains(string(body), "queue is full") {
		t.Errorf("shed body does not name the queue: %s", body)
	}

	// The shed is visible in metrics before the queue drains.
	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), `rbcastd_shed_total{reason="queue_full"} 1`) {
		t.Error("queue_full shed not counted in /metrics")
	}

	// Once the first batch drains, submissions are accepted again. The
	// queue-depth decrement races the job's done flag by a few
	// instructions, so retry briefly rather than asserting the first poll.
	close(release)
	pollJob(t, ts, ack.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{otherScenario(2)}})
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained queue still shedding: %d %s", resp.StatusCode, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSyncRunShedsWhenBusy(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := New(Options{
		MaxInflight: 1,
		Runner: func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (rbcast.Result, error) {
			entered <- struct{}{}
			<-release
			return rbcast.RunContext(ctx, cfg, plan)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, "/v1/run", testScenario())
		firstDone <- resp.StatusCode
	}()
	<-entered

	// The slot is held: a different scenario must shed with the 429
	// contract rather than queue behind it.
	resp, body := postJSON(t, ts, "/v1/run", otherScenario(1))
	shedAssertions(t, resp, body)

	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), `rbcastd_shed_total{reason="busy"} 1`) {
		t.Error("busy shed not counted in /metrics")
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("slot-holding run finished with %d, want 200", code)
	}

	// With the slot free the shed scenario now executes.
	resp, body = postJSON(t, ts, "/v1/run", otherScenario(1))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retry after shed got %d: %s", resp.StatusCode, body)
	}
}

func TestPanickingScenarioIsolated(t *testing.T) {
	srv := New(Options{
		Runner: func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (rbcast.Result, error) {
			if cfg.Width == 99 {
				panic("synthetic scenario bug")
			}
			return rbcast.RunContext(ctx, cfg, plan)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bad := testScenario()
	bad.Config.Width = 99
	resp, body := postJSON(t, ts, "/v1/run", bad)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking run status %d, want 500: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("500 body does not report the panic: %s", body)
	}

	// The daemon survived: a healthy scenario still executes, and the
	// recovery is counted.
	resp, body = postJSON(t, ts, "/v1/run", testScenario())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after a panic: %d %s", resp.StatusCode, body)
	}
	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "rbcastd_panics_recovered_total 1") {
		t.Error("recovered panic not counted in /metrics")
	}

	// A panic is never cached: the same bad scenario panics afresh.
	resp, _ = postJSON(t, ts, "/v1/run", bad)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("second panicking run status %d, want 500", resp.StatusCode)
	}
}

func TestSyncRunDeadlineMapsTo504(t *testing.T) {
	srv := New(Options{
		JobTimeout: 10 * time.Millisecond,
		// The runner blocks until the server-injected deadline fires, then
		// reports it the way the engines do — proving executeOne actually
		// arms JobTimeout on the context it hands the runner.
		Runner: func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (rbcast.Result, error) {
			<-ctx.Done()
			return rbcast.Result{Rounds: 3}, fmt.Errorf("stub: %w: %w", rbcast.ErrDeadline, ctx.Err())
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/run", testScenario())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline run status %d, want 504: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("504 body does not mention the deadline: %s", body)
	}
	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "rbcastd_run_deadline_total 1") {
		t.Error("deadline stop not counted in /metrics")
	}
}

func TestBatchDeadlineElementIsPartialAndUncached(t *testing.T) {
	// The injected runner deadline-fails the first element with a partial
	// result and completes the rest, mimicking what rbcast.RunBatch returns
	// when one element blows JobTimeout (the genuine article is covered by
	// TestRunBatchJobTimeout in the root package and by scripts/load_smoke.sh
	// end to end). This pins the server half: Partial marking, sibling
	// isolation, the deadline counter, and the no-cache rule.
	calls := 0
	srv := New(Options{
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			calls++
			out := rbcast.RunBatch(jobs, opts)
			if calls == 1 {
				out[0] = rbcast.BatchResult{
					Result: rbcast.Result{Rounds: 2},
					Err:    fmt.Errorf("stub: %w", rbcast.ErrDeadline),
				}
			}
			return out
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jobs := []RunRequest{testScenario(), otherScenario(1)}
	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, ts, ack.ID)

	cut := st.Results[0]
	if cut.Error == "" || !cut.Partial || cut.Result == nil || cut.Result.Rounds != 2 {
		t.Errorf("deadline element not partial: %+v", cut)
	}
	sibling := st.Results[1]
	if sibling.Error != "" || sibling.Partial || sibling.Result == nil {
		t.Errorf("sibling damaged by the deadline element: %+v", sibling)
	}
	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "rbcastd_run_deadline_total 1") {
		t.Error("batch deadline stop not counted in /metrics")
	}

	// The partial result must not have been cached: resubmitting the cut
	// scenario executes it afresh (calls == 2) and now succeeds.
	resp, body = postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: jobs[:1]})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmission status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	st = pollJob(t, ts, ack.ID)
	if got := st.Results[0]; got.Error != "" || got.Cached || got.Partial {
		t.Errorf("resubmitted element should be a fresh success: %+v", got)
	}
	if calls != 2 {
		t.Errorf("runner calls = %d, want 2 (partial was cached?)", calls)
	}
}

func TestBatchGoroutinePanicFailsJobNotDaemon(t *testing.T) {
	srv := New(Options{
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			panic("synthetic stitching bug")
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{testScenario(), otherScenario(1)}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, ts, ack.ID)
	if len(st.Results) != 2 {
		t.Fatalf("results = %+v", st.Results)
	}
	for i, jr := range st.Results {
		if !strings.Contains(jr.Error, "panicked") {
			t.Errorf("element %d does not report the panic: %+v", i, jr)
		}
	}

	// The daemon is still serving.
	resp, _ = getBody(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("daemon unhealthy after a batch panic: %d", resp.StatusCode)
	}
	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "rbcastd_panics_recovered_total 1") {
		t.Error("batch panic not counted in /metrics")
	}
}
