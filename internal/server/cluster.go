package server

// Cluster mode: consistent-hash routing of the fingerprint space across a
// fleet of rbcastd replicas. Every member runs with the same -peers list
// and rebuilds the same ring (internal/cluster), so each distinct
// scenario has exactly one owner that simulates and caches it. A
// non-owner that receives /v1/run forwards it to the owner — a reverse
// proxy by default, a 307 redirect with Options.Redirect — and falls back
// to executing locally only when the owner is unreachable, so the fleet
// keeps answering through single-node failures. On a local cache miss the
// owner probes its siblings' caches (GET /v1/cache/{fingerprint}, served
// from scache.Peek so probes never perturb LRU order or hit ratios)
// before simulating: a restarted node warms from the fleet instead of
// recomputing its shard. Peer liveness, proxy outcomes and fill outcomes
// are exposed on /metrics; proxies and probes appear as "proxy" and
// "peer_probe" spans in the flight recorder.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	rbcast "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

const (
	// forwardedHeader marks a request a non-owner already forwarded once.
	// The receiving daemon executes it locally no matter what its own ring
	// says — rings can disagree transiently during a rolling membership
	// change, and one hop must never become a proxy loop.
	forwardedHeader = "X-Rbcast-Forwarded"
	// servedByHeader reports which fleet member actually answered a
	// proxied or cluster-routed run.
	servedByHeader = "X-Rbcast-Served-By"
)

// defaultPeerTimeout bounds sibling cache probes and health checks. Cache
// probes are memory reads on the peer — a sibling that cannot answer one
// in 2s is effectively down and the owner should simulate instead of
// waiting.
const defaultPeerTimeout = 2 * time.Second

// peerStatus is one sibling's observed state: liveness from the last
// contact (health check, proxy, or probe) and the proxy outcome counters.
type peerStatus struct {
	up       atomic.Bool
	proxyOK  atomic.Int64
	proxyErr atomic.Int64
}

// initCluster wires the ring and per-peer state into a new Server. The
// caller has already validated the membership via ValidateCluster (rbcastd
// does it at startup); an invalid configuration here is a programming
// error and panics rather than silently serving single-node.
func (s *Server) initCluster() {
	if len(s.opts.Peers) == 0 {
		return
	}
	if err := ValidateCluster(s.opts.Self, s.opts.Peers); err != nil {
		panic(fmt.Sprintf("server: invalid cluster configuration: %v", err))
	}
	ring, err := cluster.New(s.opts.Peers)
	if err != nil {
		panic(fmt.Sprintf("server: invalid cluster configuration: %v", err))
	}
	s.ring = ring
	s.self = s.opts.Self
	s.peerHC = &http.Client{}
	s.peers = make(map[string]*peerStatus)
	for _, m := range ring.Members() {
		if m == s.self {
			continue
		}
		s.siblings = append(s.siblings, m)
		ps := &peerStatus{}
		ps.up.Store(true) // assume up until a contact says otherwise
		s.peers[m] = ps
	}
}

// ValidateCluster checks a cluster membership configuration: peers must
// form a valid ring and self must be one of them. A daemon whose own URL
// is missing from the fleet list would proxy every request it owns.
func ValidateCluster(self string, peers []string) error {
	ring, err := cluster.New(peers)
	if err != nil {
		return err
	}
	if self == "" {
		return fmt.Errorf("cluster mode needs the daemon's own advertised URL (Self / -self)")
	}
	if !ring.Contains(self) {
		return fmt.Errorf("self %q is not in the peer list %v", self, ring.Members())
	}
	return nil
}

// Clustered reports whether the server runs in cluster mode.
func (s *Server) Clustered() bool { return s.ring != nil }

// peerTimeout returns the sibling probe/health budget.
func (s *Server) peerTimeout() time.Duration {
	if s.opts.PeerTimeout > 0 {
		return s.opts.PeerTimeout
	}
	return defaultPeerTimeout
}

// peerSeen folds one contact outcome into a sibling's liveness.
func (s *Server) peerSeen(peer string, up bool) {
	if ps := s.peers[peer]; ps != nil {
		ps.up.Store(up)
	}
}

// routeRun resolves cluster routing for one /v1/run request and reports
// whether it wrote the response. False means the caller should execute
// locally: single-node mode, this node owns the fingerprint, the result
// is already resident here, the request was already forwarded once, or
// the owner is unreachable (proxy fallback).
func (s *Server) routeRun(tr *obs.Trace, parent obs.SpanID, w http.ResponseWriter, r *http.Request, fp string, body []byte) bool {
	if s.ring == nil {
		return false
	}
	w.Header().Set(servedByHeader, s.self)
	owner := s.ring.Owner(fp)
	if owner == s.self || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	if _, resident := s.cache.Peek(fp); resident {
		// A non-owner can hold a result it computed as a fallback while
		// the owner was down; deterministic results never go stale, so
		// serve it instead of burning a hop.
		return false
	}
	if s.opts.Redirect {
		w.Header().Set("Location", owner+"/v1/run")
		w.WriteHeader(http.StatusTemporaryRedirect)
		return true
	}
	return s.proxyRun(tr, parent, w, r, owner, fp, body)
}

// proxyRun forwards a run to its owner and relays the answer verbatim
// (status, body, cache header). It returns false — response unwritten —
// when the owner is unreachable, and the caller executes locally: the
// fleet degrades to extra work, never to an outage.
func (s *Server) proxyRun(tr *obs.Trace, parent obs.SpanID, w http.ResponseWriter, r *http.Request, owner, fp string, body []byte) bool {
	sp := tr.Start(parent, "proxy")
	tr.Annotate(sp, "peer", owner)
	tr.Annotate(sp, "fingerprint", fp)
	defer tr.End(sp)
	ps := s.peers[owner]
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/run", bytes.NewReader(body))
	if err != nil {
		tr.Annotate(sp, "outcome", "error")
		ps.proxyErr.Add(1)
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, s.self)
	resp, err := s.peerHC.Do(preq)
	if err != nil {
		tr.Annotate(sp, "outcome", "error")
		ps.proxyErr.Add(1)
		s.peerSeen(owner, false)
		if s.opts.Logger != nil {
			s.opts.Logger.Warn("proxy to owner failed, executing locally",
				"peer", owner, "fingerprint", fp, "err", err)
		}
		return false
	}
	defer resp.Body.Close()
	tr.Annotate(sp, "outcome", "ok")
	ps.proxyOK.Add(1)
	s.peerSeen(owner, true)
	for _, h := range []string{"Content-Type", "X-Rbcast-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(servedByHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// peerFill probes sibling caches for a fingerprint this node owns but
// does not hold — the warm-from-the-fleet path that lets a restarted
// owner answer its shard without re-simulating it. Siblings are tried in
// ring-successor order (the member that inherited the shard while this
// node was down comes first). Probes run detached from the request
// context like executeOne: a disconnecting client must not cancel a fill
// that coalesced single-flight waiters.
func (s *Server) peerFill(tr *obs.Trace, parent obs.SpanID, fp string) (rbcast.Result, bool) {
	for _, peer := range s.ring.Successors(fp, s.ring.Len()) {
		if peer == s.self {
			continue
		}
		sp := tr.Start(parent, "peer_probe")
		tr.Annotate(sp, "peer", peer)
		res, found, err := s.probePeer(peer, fp)
		switch {
		case err != nil:
			tr.Annotate(sp, "outcome", "error")
			s.peerFillErr.Add(1)
			s.peerSeen(peer, false)
		case found:
			tr.Annotate(sp, "outcome", "hit")
			tr.End(sp)
			s.peerFillHit.Add(1)
			s.peerSeen(peer, true)
			return res, true
		default:
			tr.Annotate(sp, "outcome", "miss")
			s.peerFillMiss.Add(1)
			s.peerSeen(peer, true)
		}
		tr.End(sp)
	}
	return rbcast.Result{}, false
}

// probePeer asks one sibling's cache for a fingerprint: (result, true) on
// a resident answer, (zero, false) on a clean miss, an error for an
// unreachable or misbehaving peer.
func (s *Server) probePeer(peer, fp string) (rbcast.Result, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.peerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+fp, nil)
	if err != nil {
		return rbcast.Result{}, false, err
	}
	resp, err := s.peerHC.Do(req)
	if err != nil {
		return rbcast.Result{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return rbcast.Result{}, false, fmt.Errorf("decoding cache probe from %s: %w", peer, err)
		}
		return rr.Result, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return rbcast.Result{}, false, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return rbcast.Result{}, false, fmt.Errorf("peer %s answered %d to a cache probe", peer, resp.StatusCode)
	}
}

// handleCacheProbe serves GET /v1/cache/{fp}: the resident result for a
// fingerprint, or 404. It reads through scache.Peek, so fleet-internal
// probes never reorder the LRU or skew the hit/miss counters, and it
// never executes anything — the route exists so siblings can warm from
// this node, not so clients can sidestep admission control.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if res, ok := s.cache.Peek(fp); ok {
		writeJSON(w, http.StatusOK, RunResponse{Fingerprint: fp, Result: res})
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("fingerprint %q is not resident", fp))
}

// CheckPeers actively probes every sibling's /healthz once, refreshing
// the rbcastd_peer_up gauges. Passive marking (proxies and fills) already
// tracks the peers this node talks to; the active sweep covers siblings
// that current traffic never touches.
func (s *Server) CheckPeers(ctx context.Context) {
	for _, peer := range s.siblings {
		pctx, cancel := context.WithTimeout(ctx, s.peerTimeout())
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, peer+"/healthz", nil)
		if err != nil {
			cancel()
			s.peerSeen(peer, false)
			continue
		}
		resp, err := s.peerHC.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		s.peerSeen(peer, err == nil && resp.StatusCode == http.StatusOK)
	}
}

// PeerHealthLoop runs CheckPeers every interval until ctx is done.
// cmd/rbcastd starts it as a goroutine in cluster mode; interval ≤ 0
// defaults to 5s.
func (s *Server) PeerHealthLoop(ctx context.Context, interval time.Duration) {
	if s.ring == nil {
		return
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	s.CheckPeers(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.CheckPeers(ctx)
		}
	}
}
