package server

// HTTP observability: per-route request-duration histograms, request IDs,
// and structured request logging. All of it hangs off the one route
// wrapper installed in New, so handlers stay unaware of it.

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// durationBuckets are the histogram upper bounds in seconds. The range
// spans cache hits (sub-millisecond) to large uncached batch polls;
// Prometheus convention adds a +Inf bucket on top.
var durationBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// routeHist is one route's cumulative-free duration histogram: per-bucket
// counts (last slot is +Inf), the total, and the sum of observations.
// Exposition computes the cumulative form Prometheus expects.
type routeHist struct {
	buckets  [len(durationBuckets) + 1]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// observe records one request duration.
func (h *routeHist) observe(d time.Duration) {
	secs := d.Seconds()
	slot := len(durationBuckets)
	for i, ub := range durationBuckets {
		if secs <= ub {
			slot = i
			break
		}
	}
	h.buckets[slot].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// snapshot returns the cumulative bucket counts (le-ordered, +Inf last),
// the observation count, and the sum in seconds.
func (h *routeHist) snapshot() (cum [len(durationBuckets) + 1]uint64, count uint64, sum float64) {
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), time.Duration(h.sumNanos.Load()).Seconds()
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher through the wrapper so the streaming
// handlers (sweep NDJSON, job progress events) can push lines to the
// client as they are produced instead of sitting in the server buffer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// nextRequestID mints a process-unique request id: the server start time
// anchors uniqueness across restarts, a sequence number within the
// process. Cheap, ordered, and grep-friendly — not globally unique.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%x-%06d", s.start.UnixNano(), s.reqSeq.Add(1))
}

// instrument wraps a route handler with the observability stack: request
// counter, request id (echoed as X-Request-Id), duration histogram,
// flight-recorder timeline (record routes, armed recorder only), phase
// summaries, slow-request warnings, and one structured log line per
// request when a logger is configured.
func (s *Server) instrument(route string, counter *atomic.Uint64, hist *routeHist, record bool, handler http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		counter.Add(1)
		id := s.nextRequestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// The trace is nil unless this route records and the flight
		// recorder is armed; every downstream tap is then a single nil
		// check, and req keeps its original context (WithContext would
		// allocate).
		var tr *obs.Trace
		if record && s.rec.Enabled() {
			tr = obs.NewTrace(route, id)
			req = req.WithContext(obs.ContextWith(req.Context(), tr, obs.Root))
		}
		begin := time.Now()
		handler(sw, req)
		elapsed := time.Since(begin)
		hist.observe(elapsed)
		if tr != nil {
			tr.Finish(sw.status)
			s.rec.Record(tr)
			s.foldPhases(tr)
		}
		slow := s.opts.SlowRequest > 0 && elapsed >= s.opts.SlowRequest
		if slow && s.opts.Logger != nil {
			s.opts.Logger.Warn("slow request",
				"request_id", id,
				"route", route,
				"status", sw.status,
				"duration_ms", float64(elapsed)/float64(time.Millisecond),
				"threshold_ms", float64(s.opts.SlowRequest)/float64(time.Millisecond),
				"phases", tr.Summary())
		}
		if s.opts.Logger != nil {
			s.opts.Logger.Info("request",
				"request_id", id,
				"method", req.Method,
				"route", route,
				"path", req.URL.Path,
				"status", sw.status,
				"duration_ms", float64(elapsed)/float64(time.Millisecond))
		}
	}
}

// phaseStats accumulates one span name's duration summary for the
// rbcastd_phase_seconds exposition.
type phaseStats struct {
	count    uint64
	sumNanos int64
}

// foldPhases books a finished trace's spans into the per-phase summaries.
// Span names are the phase labels, so new instrumentation shows up on
// /metrics without touching the exposition.
func (s *Server) foldPhases(tr *obs.Trace) {
	if tr == nil {
		return
	}
	s.phaseMu.Lock()
	tr.Phases(func(name string, d time.Duration) {
		ps := s.phaseDur[name]
		if ps == nil {
			ps = &phaseStats{}
			s.phaseDur[name] = ps
		}
		ps.count++
		ps.sumNanos += int64(d)
	})
	s.phaseMu.Unlock()
}
