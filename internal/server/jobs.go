package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	rbcast "repro"
	"repro/internal/obs"
)

// BatchRequest is the /v1/batch payload.
type BatchRequest struct {
	Jobs []RunRequest `json:"jobs"`
	// Workers optionally caps this job's worker pool below the server
	// default (≤ 0: server default).
	Workers int `json:"workers,omitempty"`
}

// BatchResponse acknowledges an accepted batch job.
type BatchResponse struct {
	ID        string `json:"id"`
	Jobs      int    `json:"jobs"`
	StatusURL string `json:"status_url"`
}

// JobStatus is the /v1/jobs/{id} response body.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // "running" or "done"
	Jobs  int    `json:"jobs"`
	// Results is populated once State is "done", in job order.
	Results []JobResult `json:"results,omitempty"`
}

// JobResult is one batch element's outcome.
type JobResult struct {
	Fingerprint string         `json:"fingerprint"`
	Result      *rbcast.Result `json:"result,omitempty"`
	Error       string         `json:"error,omitempty"`
	// Cached reports the result came from the result cache (or from a
	// duplicate fingerprint earlier in the same batch) rather than a
	// fresh execution.
	Cached bool `json:"cached,omitempty"`
	// Partial reports the element was stopped by the server's job
	// deadline: Error carries the deadline error and Result holds the
	// partial state at the round where the run was cut (never cached).
	Partial bool `json:"partial,omitempty"`
}

// ProgressEvent is one GET /v1/jobs/{id}/events NDJSON line: a cumulative
// snapshot of a batch job's execution. Snapshots are monotone — each
// field only grows — and the stream ends with exactly one terminal event
// (State "done", JobsDone == JobsTotal).
type ProgressEvent struct {
	// State is "running" until the job finishes, then "done".
	State string `json:"state"`
	// JobsDone counts batch elements resolved so far (cache hits,
	// executions, failures and within-batch duplicates alike); JobsTotal
	// is the batch size.
	JobsDone  int `json:"jobs_done"`
	JobsTotal int `json:"jobs_total"`
	// NodeRounds is the simulated work performed so far: Σ rounds ×
	// network size over this job's fresh executions.
	NodeRounds int64 `json:"node_rounds"`
	// DedupHits counts elements resolved without a fresh execution:
	// result-cache hits plus within-batch duplicate fingerprints.
	DedupHits int `json:"dedup_hits"`
	// Errors counts elements that finished with an error (terminal event
	// only; partial deadline results are included).
	Errors int `json:"errors"`
}

// batchJob is one asynchronous batch execution.
type batchJob struct {
	id      string
	n       int
	created time.Time

	mu      sync.Mutex
	done    bool
	results []JobResult
	// progress is the latest cumulative snapshot; changed is closed and
	// replaced on every advance, waking /v1/jobs/{id}/events streams.
	progress ProgressEvent
	changed  chan struct{}
}

// newBatchJob opens a running job with a live progress snapshot.
func newBatchJob(id string, n int) *batchJob {
	return &batchJob{
		id:       id,
		n:        n,
		created:  time.Now(),
		progress: ProgressEvent{State: "running", JobsTotal: n},
		changed:  make(chan struct{}),
	}
}

// update advances the live progress snapshot and wakes watchers. Fields
// only move forward — progress callbacks race with the scan-time seed, so
// monotonicity is enforced here rather than trusted from callers. A
// finished job ignores updates.
func (j *batchJob) update(done int, nodeRounds int64, dedup int) {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return
	}
	advanced := false
	if done > j.progress.JobsDone {
		j.progress.JobsDone = done
		advanced = true
	}
	if nodeRounds > j.progress.NodeRounds {
		j.progress.NodeRounds = nodeRounds
		advanced = true
	}
	if dedup > j.progress.DedupHits {
		j.progress.DedupHits = dedup
		advanced = true
	}
	if advanced {
		close(j.changed)
		j.changed = make(chan struct{})
	}
	j.mu.Unlock()
}

// finish publishes the results and the terminal progress event. The first
// finish wins (the panic path and the normal path cannot both land).
func (j *batchJob) finish(results []JobResult) {
	j.mu.Lock()
	if !j.done {
		j.results = results
		j.done = true
		j.progress.State = "done"
		j.progress.JobsDone = j.n
		errs := 0
		for i := range results {
			if results[i].Error != "" {
				errs++
			}
		}
		j.progress.Errors = errs
		close(j.changed)
		j.changed = make(chan struct{})
	}
	j.mu.Unlock()
}

// snapshot returns the current progress event, the channel that closes on
// the next advance, and whether the job is terminal.
func (j *batchJob) snapshot() (ProgressEvent, chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress, j.changed, j.done
}

// handleBatch accepts a job list and executes it asynchronously on the
// RunBatch worker substrate, deduplicating against the result cache and
// within the batch itself. The response carries the id to poll.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch must contain at least one job"))
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	// Admission control: a full queue sheds with 429 + Retry-After — the
	// locally bounded failure discipline applied to load. The depth check
	// and increment share s.mu so concurrent submissions cannot overshoot
	// the bound.
	if int(s.queueDepth.Load()) >= s.opts.QueueDepth {
		s.mu.Unlock()
		s.shedQueueFull.Add(1)
		writeShed(w, fmt.Errorf("batch queue is full (%d jobs), retry later", s.opts.QueueDepth))
		return
	}
	s.queueDepth.Add(1)
	s.nextID++
	job := newBatchJob(fmt.Sprintf("job-%d", s.nextID), len(req.Jobs))
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.evictJobsLocked()
	s.wg.Add(1)
	s.mu.Unlock()

	workers := s.opts.Workers
	if req.Workers > 0 && (workers <= 0 || req.Workers < workers) {
		workers = req.Workers
	}
	// Async jobs get their own timeline in the flight recorder, keyed by
	// job id: the HTTP accept above records only decode + admission, while
	// the job trace attributes the execution (queue wait, slot wait,
	// engine). jtr is nil when the recorder is disarmed.
	var jtr *obs.Trace
	var queueSp obs.SpanID
	if s.rec.Enabled() {
		jtr = obs.NewTrace("batch-job", job.id)
		queueSp = jtr.Start(obs.Root, "queue_wait")
		jtr.AnnotateInt(obs.Root, "jobs", int64(job.n))
	}
	go func() {
		defer s.wg.Done()
		defer s.queueDepth.Add(-1)
		// Panic isolation for the stitching path itself: rbcast.RunBatch
		// already confines per-scenario panics to their element, so this
		// recover only fires on a server bug — the job fails, the daemon
		// and its sibling jobs do not.
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			s.panicsRecovered.Add(1)
			if s.opts.Logger != nil {
				s.opts.Logger.Error("batch job panicked", "job", job.id, "panic", r)
			}
			failed := make([]JobResult, job.n)
			for i := range failed {
				failed[i].Error = fmt.Sprintf("batch execution panicked: %v", r)
			}
			job.finish(failed)
			jtr.Finish(http.StatusInternalServerError)
			s.rec.Record(jtr)
			s.foldPhases(jtr)
		}()
		jtr.End(queueSp)
		// An accepted job waits for an execution slot rather than shedding:
		// backpressure was applied at admission, MaxInflight paces the CPU.
		if s.runSlots != nil {
			slotSp := jtr.Start(obs.Root, "slot_wait")
			s.runSlots <- struct{}{}
			jtr.End(slotSp)
			defer func() { <-s.runSlots }()
		}
		results := s.runBatch(jtr, job, req.Jobs, workers)
		job.finish(results)
		jtr.Finish(http.StatusOK)
		s.rec.Record(jtr)
		s.foldPhases(jtr)
	}()

	writeJSON(w, http.StatusAccepted, BatchResponse{
		ID:        job.id,
		Jobs:      job.n,
		StatusURL: "/v1/jobs/" + job.id,
	})
}

// runBatch resolves a job list against the cache, executes the distinct
// misses via the batch runner (the rbcast.RunBatch pool substrate), stores
// fresh results, and stitches everything back in job order. tr (nil when
// the flight recorder is disarmed) receives cache-scan and engine spans;
// job receives live progress snapshots.
func (s *Server) runBatch(tr *obs.Trace, job *batchJob, reqs []RunRequest, workers int) []JobResult {
	results := make([]JobResult, len(reqs))
	firstIndex := make(map[string]int) // fingerprint → first miss index
	var missJobs []rbcast.Job
	var missIndex []int
	scanSp := tr.Start(obs.Root, "cache_scan")
	cached := 0
	for i, rr := range reqs {
		rj := rbcast.Job{Config: rr.Config, Plan: rr.Plan}
		fp := rj.Fingerprint()
		results[i].Fingerprint = fp
		if res, ok := s.cache.Get(fp); ok {
			res := res
			results[i].Result = &res
			results[i].Cached = true
			cached++
			continue
		}
		if _, dup := firstIndex[fp]; dup {
			results[i].Cached = true // resolved from the first occurrence below
			continue
		}
		firstIndex[fp] = i
		missJobs = append(missJobs, rj)
		missIndex = append(missIndex, i)
	}
	dups := len(reqs) - cached - len(missJobs)
	tr.AnnotateInt(scanSp, "hits", int64(cached))
	tr.AnnotateInt(scanSp, "dups", int64(dups))
	tr.AnnotateInt(scanSp, "misses", int64(len(missJobs)))
	tr.End(scanSp)
	// Seed the progress stream: everything dedup-resolved is already done
	// (duplicates stitch from their first occurrence, which the engine
	// completion below accounts for).
	job.update(cached, 0, cached+dups)

	if len(missJobs) > 0 {
		engSp := tr.Start(obs.Root, "engine")
		s.inflightRuns.Add(int64(len(missJobs)))
		batch := s.opts.BatchRunner(missJobs, rbcast.BatchOptions{
			Workers:    workers,
			JobTimeout: s.opts.JobTimeout,
			Context:    obs.ContextWith(context.Background(), tr, engSp),
			Progress: func(up rbcast.ProgressUpdate) {
				job.update(cached+up.Done, up.NodeRounds, cached+dups)
			},
		})
		s.inflightRuns.Add(-int64(len(missJobs)))
		tr.End(engSp)
		for k, br := range batch {
			i := missIndex[k]
			if br.Err != nil {
				results[i].Error = br.Err.Error()
				if errors.Is(br.Err, rbcast.ErrDeadline) {
					// The element was cut by the job deadline: surface the
					// partial state alongside the error, but never cache it.
					s.deadlineRuns.Add(1)
					res := br.Result
					results[i].Result = &res
					results[i].Partial = true
				}
				continue
			}
			res := br.Result
			results[i].Result = &res
			s.cache.Put(results[i].Fingerprint, res)
			s.observe(res)
		}
	}

	// Resolve within-batch duplicates from their first occurrence.
	for i := range results {
		if results[i].Result != nil || results[i].Error != "" {
			continue
		}
		first := results[firstIndex[results[i].Fingerprint]]
		results[i].Result = first.Result
		results[i].Error = first.Error
		results[i].Partial = first.Partial
	}
	return results
}

// handleJob reports a batch job's state and, once done, its results.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	status := JobStatus{ID: job.id, Jobs: job.n, State: "running"}
	job.mu.Lock()
	if job.done {
		status.State = "done"
		status.Results = job.results
	}
	job.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// handleJobTrace streams one batch element's execution trace as JSON
// Lines (application/x-ndjson), exactly as rbcast.EncodeTrace renders it —
// the bytes round-trip through rbcast.DecodeTrace and repeated GETs are
// byte-identical. The element is selected with ?job=N (default 0, batch
// order). Traces exist only for elements whose Config.Trace was set.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	job.mu.Lock()
	done, results := job.done, job.results
	job.mu.Unlock()
	if !done {
		writeError(w, http.StatusConflict, fmt.Errorf("job %q is still running", id))
		return
	}
	idx := 0
	if q := r.URL.Query().Get("job"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid job index %q", q))
			return
		}
		idx = n
	}
	if idx < 0 || idx >= len(results) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("job index %d out of range [0,%d)", idx, len(results)))
		return
	}
	el := results[idx]
	switch {
	case el.Error != "":
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job element %d failed: %s", idx, el.Error))
		return
	case el.Result == nil || len(el.Result.Trace) == 0:
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job element %d recorded no trace — set config.trace", idx))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rbcast.EncodeTrace(w, el.Result.Trace)
}

// eventsHeartbeat bounds how long an unchanged /v1/jobs/{id}/events
// stream stays silent: the current snapshot is re-sent so idle proxies
// and client read deadlines see a live connection.
const eventsHeartbeat = 15 * time.Second

// handleJobEvents streams a batch job's progress as NDJSON
// (application/x-ndjson): the current cumulative snapshot immediately,
// one line per advance after that, and a final terminal line (State
// "done") before the stream closes. Unchanged snapshots are re-sent every
// eventsHeartbeat as keep-alives; watchers dedup by monotonicity. A job
// that is already done yields exactly one terminal line. Unknown ids 404.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	hb := time.NewTicker(eventsHeartbeat)
	defer hb.Stop()
	var last ProgressEvent
	sent := false
	for {
		ev, changed, done := job.snapshot()
		if !sent || ev != last {
			if enc.Encode(ev) != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
			last, sent = ev, true
		}
		if done {
			return
		}
		select {
		case <-changed:
		case <-hb.C:
			sent = false // force a keep-alive re-send
		case <-r.Context().Done():
			return
		}
	}
}

// evictJobsLocked drops the oldest *finished* jobs beyond MaxJobs so a
// long-running daemon's job table stays bounded. Running jobs are always
// retained. Callers hold s.mu.
func (s *Server) evictJobsLocked() {
	for len(s.jobs) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.order {
			job := s.jobs[id]
			if job == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			job.mu.Lock()
			done := job.done
			job.mu.Unlock()
			if done {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still running
		}
	}
}
