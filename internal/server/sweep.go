package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	rbcast "repro"
	"repro/internal/obs"
)

// SweepRequest is the /v1/sweep payload: a base scenario plus axes. The
// server plans the grid — expansion order, the element cap, execution-key
// grouping and wavefront forking all happen daemon-side, so every client
// sees the same canonical plan for the same request.
type SweepRequest struct {
	Base RunRequest       `json:"base"`
	Axes rbcast.SweepAxes `json:"axes"`
	// Workers optionally caps the sweep's worker pool below the server
	// default (≤ 0: server default).
	Workers int `json:"workers,omitempty"`
}

// SweepHeader is the first NDJSON line of a /v1/sweep response: the planned
// element count, before any results.
type SweepHeader struct {
	Elements int `json:"elements"`
}

// SweepElement is one per-element NDJSON line, in grid order (the
// SweepSpec.Elements expansion: placements outermost, crash rounds
// innermost).
type SweepElement struct {
	Index       int            `json:"index"`
	Fingerprint string         `json:"fingerprint"`
	Result      *rbcast.Result `json:"result,omitempty"`
	Error       string         `json:"error,omitempty"`
	// Cached reports the element was served from the result cache without
	// simulating.
	Cached bool `json:"cached,omitempty"`
	// Partial marks an element cut by the server's job deadline: Error
	// carries the deadline error, Result the partial state (never cached).
	Partial bool `json:"partial,omitempty"`
}

// SweepTrailer is the final NDJSON line: the sweep engine's sharing
// statistics for the executed (non-cached) elements.
type SweepTrailer struct {
	Stats rbcast.SweepStats `json:"stats"`
}

// handleSweep plans a parameter grid server-side, serves cache hits without
// simulating, executes the misses through the incremental sweep engine
// (rbcast.RunSweepJobs: execution-key sharing plus wavefront-prefix forks),
// and streams per-element results as NDJSON — header, one line per element
// in grid order, stats trailer. Failure modes follow /v1/run: invalid grid
// 400, draining 503, all execution slots taken 429 (Retry-After), deadline
// elements marked partial inline.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tr, root := obs.SpanFromContext(r.Context())
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := rbcast.SweepSpec{
		Base: rbcast.Job{Config: req.Base.Config, Plan: req.Base.Plan},
		Axes: req.Axes,
	}
	elements, err := spec.Elements()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	// Sweeps are synchronous like /v1/run: shed rather than queue when
	// every execution slot is taken. One slot covers the whole sweep; the
	// engine's own worker pool paces the per-element parallelism.
	if s.runSlots != nil {
		slotSp := tr.Start(root, "slot_wait")
		select {
		case s.runSlots <- struct{}{}:
			tr.End(slotSp)
			defer func() { <-s.runSlots }()
		default:
			tr.End(slotSp)
			s.shedBusy.Add(1)
			writeShed(w, errBusy)
			return
		}
	}

	scanSp := tr.Start(root, "cache_scan")
	results := make([]SweepElement, len(elements))
	var missJobs []rbcast.Job
	var missIndex []int
	for i, job := range elements {
		fp := job.Fingerprint()
		results[i] = SweepElement{Index: i, Fingerprint: fp}
		if res, ok := s.cache.Get(fp); ok {
			res := res
			results[i].Result = &res
			results[i].Cached = true
			continue
		}
		// No within-sweep fingerprint dedup here: the sweep engine's
		// execution-key grouping subsumes it (identical fingerprints have
		// identical execution keys) and shares more besides.
		missJobs = append(missJobs, job)
		missIndex = append(missIndex, i)
	}
	tr.AnnotateInt(scanSp, "elements", int64(len(elements)))
	tr.AnnotateInt(scanSp, "misses", int64(len(missJobs)))
	tr.End(scanSp)

	var stats rbcast.SweepStats
	if len(missJobs) > 0 {
		workers := s.opts.Workers
		if req.Workers > 0 && (workers <= 0 || req.Workers < workers) {
			workers = req.Workers
		}
		// The engine span parents the sweep engine's own spans
		// (sweep_plan, per-unit sweep_unit, per-branch fork), carried in
		// through BatchOptions.Context.
		engSp := tr.Start(root, "engine")
		s.inflightRuns.Add(int64(len(missJobs)))
		var batch []rbcast.BatchResult
		batch, stats = s.opts.SweepRunner(missJobs, rbcast.BatchOptions{
			Workers:    workers,
			JobTimeout: s.opts.JobTimeout,
			Context:    obs.ContextWith(context.Background(), tr, engSp),
		})
		s.inflightRuns.Add(-int64(len(missJobs)))
		tr.End(engSp)
		for k, br := range batch {
			i := missIndex[k]
			if br.Err != nil {
				results[i].Error = br.Err.Error()
				if errors.Is(br.Err, rbcast.ErrDeadline) {
					s.deadlineRuns.Add(1)
					res := br.Result
					results[i].Result = &res
					results[i].Partial = true
				}
				continue
			}
			res := br.Result
			results[i].Result = &res
			s.cache.Put(results[i].Fingerprint, res)
		}
		// Fold the executed simulations into the fleet-wide totals once per
		// distinct execution: shared results would double-count counters
		// that were only incurred once.
		seen := make(map[string]bool)
		for k, br := range batch {
			if br.Err != nil {
				continue
			}
			fp := results[missIndex[k]].Fingerprint
			if seen[fp] {
				continue
			}
			seen[fp] = true
			s.observe(br.Result)
		}
	}
	s.sweepsRun.Add(1)
	s.sweepElements.Add(int64(len(elements)))
	s.sweepSharedResults.Add(int64(stats.SharedResults))
	s.sweepNodeRounds.Add(stats.NodeRounds)
	s.sweepScalarNodeRounds.Add(stats.ScalarNodeRounds)

	encSp := tr.Start(root, "encode")
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) {
		if enc.Encode(v) == nil && flusher != nil {
			flusher.Flush()
		}
	}
	writeLine(SweepHeader{Elements: len(elements)})
	for i := range results {
		writeLine(results[i])
	}
	writeLine(SweepTrailer{Stats: stats})
	tr.End(encSp)
}
