package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"

	rbcast "repro"
)

// fleetNode is one member of an in-process test fleet.
type fleetNode struct {
	srv  *Server
	url  string
	hs   *http.Server
	runs *atomic.Int32 // executions of this node's Runner
}

// startFleet boots n clustered servers on real loopback listeners (the
// peer URLs must be known before New, so httptest.NewServer's
// construct-then-learn-the-URL order cannot be used). mutate, when
// non-nil, adjusts each node's Options before construction.
func startFleet(t *testing.T, n int, mutate func(i int, o *Options)) []*fleetNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		runs := &atomic.Int32{}
		opts := Options{
			Self:  urls[i],
			Peers: urls,
			Runner: func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (rbcast.Result, error) {
				runs.Add(1)
				return rbcast.RunContext(ctx, cfg, plan)
			},
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		srv := New(opts)
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i])
		nodes[i] = &fleetNode{srv: srv, url: urls[i], hs: hs, runs: runs}
		t.Cleanup(func() { hs.Close() })
	}
	return nodes
}

// ownedScenario returns a scenario whose fingerprint the fleet's ring
// assigns to nodes[want], found by scanning a family of tiny distinct
// scenarios.
func ownedScenario(t *testing.T, nodes []*fleetNode, want int) (RunRequest, string) {
	t.Helper()
	ring := nodes[0].srv.ring
	for h := 0; h < 64; h++ {
		req := RunRequest{
			Config: rbcast.Config{Width: 16, Height: 8 + h, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
			Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
		}
		fp := (rbcast.Job{Config: req.Config, Plan: req.Plan}).Fingerprint()
		if ring.Owner(fp) == nodes[want].url {
			return req, fp
		}
	}
	t.Fatal("no scenario found owned by the requested node")
	return RunRequest{}, ""
}

// postRun posts a run to one node and returns the response and body.
func postRun(t *testing.T, url string, req RunRequest) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse // tests inspect 307s, not follow them
	}}
	resp, err := hc.Post(url+"/v1/run", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// probeCount counts how many fleet members hold fp resident.
func probeCount(t *testing.T, nodes []*fleetNode, fp string) int {
	t.Helper()
	n := 0
	for _, node := range nodes {
		resp, err := http.Get(node.url + "/v1/cache/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			n++
		case http.StatusNotFound:
		default:
			t.Fatalf("cache probe on %s answered %d", node.url, resp.StatusCode)
		}
	}
	return n
}

func metricValue(t *testing.T, url, re string) int {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(re).FindSubmatch(data)
	if m == nil {
		t.Fatalf("metric %s missing from %s/metrics", re, url)
	}
	v, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestClusterOwnerRouting: a run posted to a non-owner is proxied to the
// owner — only the owner executes and caches it, the proxying node counts
// the proxy, and the response says who served it.
func TestClusterOwnerRouting(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	req, fp := ownedScenario(t, nodes, 2)
	var nonOwner int
	for i := range nodes {
		if i != 2 {
			nonOwner = i
			break
		}
	}

	resp, body := postRun(t, nodes[nonOwner].url, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied run answered %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rbcast-Served-By"); got != nodes[2].url {
		t.Errorf("X-Rbcast-Served-By = %q, want owner %q", got, nodes[2].url)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Fingerprint != fp {
		t.Errorf("fingerprint = %s, want %s", rr.Fingerprint, fp)
	}
	if got := nodes[2].runs.Load(); got != 1 {
		t.Errorf("owner executed %d times, want 1", got)
	}
	for i, node := range nodes {
		if i != 2 && node.runs.Load() != 0 {
			t.Errorf("non-owner %d executed %d times, want 0", i, node.runs.Load())
		}
	}
	if got := probeCount(t, nodes, fp); got != 1 {
		t.Errorf("fingerprint resident on %d nodes, want exactly the owner", got)
	}
	if got := metricValue(t, nodes[nonOwner].url,
		fmt.Sprintf(`rbcastd_peer_proxy_total\{peer="%s",outcome="ok"\} (\d+)`, regexp.QuoteMeta(nodes[2].url))); got != 1 {
		t.Errorf("proxy ok counter = %d, want 1", got)
	}

	// The same run posted to the owner directly is now a cache hit there.
	resp2, _ := postRun(t, nodes[2].url, req)
	if got := resp2.Header.Get("X-Rbcast-Cache"); got != "hit" {
		t.Errorf("owner re-serve cache header = %q, want hit", got)
	}
	if got := nodes[2].runs.Load(); got != 1 {
		t.Errorf("owner executed %d times after re-serve, want still 1", got)
	}
}

// TestClusterRedirect: with Options.Redirect a non-owner answers 307 with
// the owner's run URL instead of proxying.
func TestClusterRedirect(t *testing.T) {
	nodes := startFleet(t, 3, func(i int, o *Options) { o.Redirect = true })
	req, _ := ownedScenario(t, nodes, 1)
	resp, _ := postRun(t, nodes[0].url, req)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect-mode non-owner answered %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != nodes[1].url+"/v1/run" {
		t.Errorf("Location = %q, want %q", got, nodes[1].url+"/v1/run")
	}
	if nodes[0].runs.Load() != 0 || nodes[1].runs.Load() != 0 {
		t.Error("redirect answered but something executed")
	}
}

// TestClusterPeerFill: an owner that misses locally probes its siblings
// and serves their cached result without re-simulating — the restarted
// node warming from the fleet.
func TestClusterPeerFill(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	req, fp := ownedScenario(t, nodes, 0)

	// A sibling holds the result (it computed it while node 0 was down).
	res, err := rbcast.Run(req.Config, req.Plan)
	if err != nil {
		t.Fatal(err)
	}
	nodes[1].srv.cache.Put(fp, res)

	resp, body := postRun(t, nodes[0].url, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner answered %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rbcast-Cache"); got != "peer" {
		t.Errorf("cache header = %q, want peer", got)
	}
	if got := nodes[0].runs.Load(); got != 0 {
		t.Errorf("owner simulated %d times despite a sibling holding the result", got)
	}
	if got := metricValue(t, nodes[0].url,
		`rbcastd_peer_cache_fill_total\{outcome="hit"\} (\d+)`); got != 1 {
		t.Errorf("fill hit counter = %d, want 1", got)
	}
	// The fill is now resident locally: the next request is a plain hit
	// with no further probes.
	resp2, _ := postRun(t, nodes[0].url, req)
	if got := resp2.Header.Get("X-Rbcast-Cache"); got != "hit" {
		t.Errorf("post-fill cache header = %q, want hit", got)
	}
}

// TestClusterProxyFallback: when the owner is unreachable the non-owner
// executes locally instead of failing the request, counts the proxy
// error, and marks the peer down.
func TestClusterProxyFallback(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	req, fp := ownedScenario(t, nodes, 2)
	nodes[2].hs.Close() // owner goes dark

	var nonOwner int
	for i := range nodes {
		if i != 2 {
			nonOwner = i
			break
		}
	}
	resp, body := postRun(t, nodes[nonOwner].url, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback run answered %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rbcast-Served-By"); got != nodes[nonOwner].url {
		t.Errorf("X-Rbcast-Served-By = %q, want the fallback node %q", got, nodes[nonOwner].url)
	}
	if got := nodes[nonOwner].runs.Load(); got != 1 {
		t.Errorf("fallback node executed %d times, want 1", got)
	}
	ownerURL := regexp.QuoteMeta(nodes[2].url)
	if got := metricValue(t, nodes[nonOwner].url,
		fmt.Sprintf(`rbcastd_peer_proxy_total\{peer="%s",outcome="error"\} (\d+)`, ownerURL)); got != 1 {
		t.Errorf("proxy error counter = %d, want 1", got)
	}
	if got := metricValue(t, nodes[nonOwner].url,
		fmt.Sprintf(`rbcastd_peer_up\{peer="%s"\} (\d+)`, ownerURL)); got != 0 {
		t.Errorf("peer_up for the dead owner = %d, want 0", got)
	}
	// The fallback result is cached where it was computed, so the next
	// request to the same node is a hit even with the owner still dark.
	resp2, _ := postRun(t, nodes[nonOwner].url, req)
	if got := resp2.Header.Get("X-Rbcast-Cache"); got != "hit" {
		t.Errorf("fallback re-serve cache header = %q, want hit", got)
	}
	_ = fp
}

// TestClusterForwardLoopGuard: a request that already carries the
// forwarded marker executes locally no matter what the ring says — one
// hop can never become a loop even if rings disagree during a rolling
// membership change.
func TestClusterForwardLoopGuard(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	req, _ := ownedScenario(t, nodes, 2)
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, nodes[0].url+"/v1/run", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(forwardedHeader, nodes[1].url)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded run answered %d", resp.StatusCode)
	}
	if got := nodes[0].runs.Load(); got != 1 {
		t.Errorf("forward target executed %d times, want 1 (no re-forward)", got)
	}
	if got := nodes[2].runs.Load(); got != 0 {
		t.Errorf("ring owner executed %d times for a forwarded request, want 0", got)
	}
}

// TestCacheProbeRoute: the internal probe route serves residents, 404s
// misses, and never perturbs the cache counters.
func TestCacheProbeRoute(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	req, fp := ownedScenario(t, nodes, 0)
	resp, err := http.Get(nodes[0].url + "/v1/cache/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("probe for an absent fingerprint answered %d, want 404", resp.StatusCode)
	}
	if _, body := postRun(t, nodes[0].url, req); len(body) == 0 {
		t.Fatal("seed run failed")
	}
	resp2, err := http.Get(nodes[0].url + "/v1/cache/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("probe for a resident fingerprint answered %d, want 200", resp2.StatusCode)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Fingerprint != fp || rr.Result.Rounds == 0 {
		t.Errorf("probe body = %+v, want the cached run", rr.Fingerprint)
	}
}

// TestCheckPeers: the active health sweep marks live siblings up and dead
// ones down.
func TestCheckPeers(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	nodes[1].hs.Close()
	nodes[0].srv.CheckPeers(context.Background())
	if got := metricValue(t, nodes[0].url,
		fmt.Sprintf(`rbcastd_peer_up\{peer="%s"\} (\d+)`, regexp.QuoteMeta(nodes[1].url))); got != 0 {
		t.Errorf("dead sibling reported up")
	}
	if got := metricValue(t, nodes[0].url,
		fmt.Sprintf(`rbcastd_peer_up\{peer="%s"\} (\d+)`, regexp.QuoteMeta(nodes[2].url))); got != 1 {
		t.Errorf("live sibling reported down")
	}
}

func TestValidateCluster(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	if err := ValidateCluster("http://a:1", peers); err != nil {
		t.Errorf("valid membership rejected: %v", err)
	}
	if err := ValidateCluster("", peers); err == nil {
		t.Error("missing self accepted")
	}
	if err := ValidateCluster("http://d:1", peers); err == nil {
		t.Error("self outside the fleet accepted")
	}
	if err := ValidateCluster("http://a:1", []string{"http://a:1", "http://a:1"}); err == nil {
		t.Error("duplicate peers accepted")
	}
	if err := ValidateCluster("http://a:1", nil); err == nil {
		t.Error("empty fleet accepted")
	}
}
