package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rbcast "repro"
	"repro/internal/obs"
)

// TestRouteHistBucketBoundaries pins the le-boundary convention: an
// observation exactly equal to a bucket's upper bound lands in that bucket
// (Prometheus le is inclusive), one nanosecond over lands in the next.
func TestRouteHistBucketBoundaries(t *testing.T) {
	for i, ub := range durationBuckets {
		d := time.Duration(math.Round(ub * 1e9))
		if d.Seconds() != ub {
			// The buckets are chosen so their bounds are exact in float64;
			// a bound that can't round-trip would make le=bound untestable.
			t.Fatalf("bucket bound %g does not round-trip through time.Duration", ub)
		}

		var at routeHist
		at.observe(d)
		cum, count, _ := at.snapshot()
		if count != 1 {
			t.Fatalf("ub %g: count = %d, want 1", ub, count)
		}
		for j := range cum {
			want := uint64(0)
			if j >= i {
				want = 1
			}
			if cum[j] != want {
				t.Errorf("ub %g: cumulative bucket %d = %d, want %d (== bound must land in its own bucket)",
					ub, j, cum[j], want)
			}
		}

		var over routeHist
		over.observe(d + time.Nanosecond)
		cum, _, _ = over.snapshot()
		if cum[i] != 0 {
			t.Errorf("ub %g: observation 1ns over the bound landed at or below it", ub)
		}
		if cum[i+1] != 1 {
			t.Errorf("ub %g: observation 1ns over the bound missed bucket %d: %v", ub, i+1, cum)
		}
	}

	// Beyond the last bound only +Inf counts it.
	var h routeHist
	h.observe(time.Hour)
	cum, count, sum := h.snapshot()
	last := len(cum) - 1
	if cum[last] != 1 || cum[last-1] != 0 || count != 1 {
		t.Errorf("over-range observation: cum = %v, count = %d", cum, count)
	}
	if sum != 3600 {
		t.Errorf("sum = %g, want 3600", sum)
	}
}

// TestDisarmedRequestContextUntouched proves the zero-cost discipline at
// the HTTP seam: with the flight recorder off, instrument must hand the
// handler the original *http.Request — no WithContext rewrap, no trace.
func TestDisarmedRequestContextUntouched(t *testing.T) {
	var counter atomic.Uint64
	hist := &routeHist{}
	var got *http.Request
	grab := func(w http.ResponseWriter, r *http.Request) { got = r }

	off := New(Options{})
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	off.instrument("/x", &counter, hist, true, grab)(httptest.NewRecorder(), req)
	if got != req {
		t.Error("disarmed instrument rewrapped the request")
	}
	if tr, _ := obs.SpanFromContext(got.Context()); tr != nil {
		t.Error("disarmed instrument put a trace in the context")
	}

	on := New(Options{FlightRecorder: 4})
	req = httptest.NewRequest(http.MethodGet, "/x", nil)
	on.instrument("/x", &counter, hist, true, grab)(httptest.NewRecorder(), req)
	if got == req {
		t.Error("armed instrument did not rewrap the request")
	}
	if tr, parent := obs.SpanFromContext(got.Context()); tr == nil || parent != obs.Root {
		t.Errorf("armed instrument context = (%v, %d), want a root-parented trace", tr, parent)
	}

	// A non-recording route stays trace-free even when armed.
	req = httptest.NewRequest(http.MethodGet, "/x", nil)
	on.instrument("/x", &counter, hist, false, grab)(httptest.NewRecorder(), req)
	if got != req {
		t.Error("non-recording route was rewrapped")
	}
}

func TestDebugRequestsTimelines(t *testing.T) {
	srv := New(Options{FlightRecorder: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts, "/v1/run", testScenario()) // miss: engine span
	postJSON(t, ts, "/v1/run", testScenario()) // hit: cache_hit span
	getBody(t, ts, "/healthz")                 // excluded route

	resp, body := getBody(t, ts, "/debug/requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dbg DebugRequestsResponse
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if !dbg.Enabled || dbg.Capacity != 8 || dbg.Stored != 2 || dbg.Total != 2 {
		t.Fatalf("recorder header = %+v", dbg)
	}
	if len(dbg.Requests) != 2 {
		t.Fatalf("got %d timelines, want 2", len(dbg.Requests))
	}
	// Newest first: the cache hit, then the miss.
	names := func(tl obs.TraceSnapshot) map[string]bool {
		m := make(map[string]bool, len(tl.Spans))
		for _, sp := range tl.Spans {
			m[sp.Name] = true
		}
		return m
	}
	hit, miss := dbg.Requests[0], dbg.Requests[1]
	for i, tl := range dbg.Requests {
		if tl.Route != "/v1/run" || tl.Status != http.StatusOK || tl.ID == "" || tl.DurationSeconds <= 0 {
			t.Errorf("timeline %d header = %+v", i, tl)
		}
	}
	if n := names(miss); !n["cache_miss"] || !n["engine"] || !n["encode"] {
		t.Errorf("miss timeline spans = %v, want cache_miss + engine + encode", n)
	}
	if n := names(hit); !n["cache_hit"] || n["engine"] {
		t.Errorf("hit timeline spans = %v, want cache_hit and no engine", n)
	}
	for _, tl := range dbg.Requests {
		for _, name := range []string{"/healthz", "/metrics", "/debug/requests"} {
			if tl.Route == name {
				t.Errorf("excluded route %s was recorded", name)
			}
		}
	}

	// Filters: ?n caps, ?min_ms filters without changing Stored, ?sort
	// orders slowest-first.
	_, body = getBody(t, ts, "/debug/requests?n=1")
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Requests) != 1 || dbg.Stored != 2 {
		t.Errorf("?n=1 returned %d timelines, stored %d", len(dbg.Requests), dbg.Stored)
	}
	_, body = getBody(t, ts, "/debug/requests?min_ms=3600000")
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Requests) != 0 || dbg.Stored != 2 {
		t.Errorf("?min_ms high-pass returned %d timelines, stored %d", len(dbg.Requests), dbg.Stored)
	}
	_, body = getBody(t, ts, "/debug/requests?sort=slowest")
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dbg.Requests); i++ {
		if dbg.Requests[i].DurationSeconds > dbg.Requests[i-1].DurationSeconds {
			t.Errorf("?sort=slowest out of order at %d", i)
		}
	}

	for _, q := range []string{"?min_ms=abc", "?sort=bogus", "?n=x", "?n=-1"} {
		resp, _ := getBody(t, ts, "/debug/requests"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestDebugRequestsDisabled(t *testing.T) {
	srv := New(Options{}) // FlightRecorder 0
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts, "/v1/run", testScenario())
	resp, body := getBody(t, ts, "/debug/requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dbg DebugRequestsResponse
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Enabled || dbg.Stored != 0 || dbg.Total != 0 || len(dbg.Requests) != 0 {
		t.Errorf("disabled recorder response = %+v", dbg)
	}
}

// TestPhaseSummariesAndRuntimeGauges: finished traces fold into the
// rbcastd_phase_seconds summaries, and the process-health gauges are
// always exposed.
func TestPhaseSummariesAndRuntimeGauges(t *testing.T) {
	srv := New(Options{FlightRecorder: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts, "/v1/run", testScenario())
	_, body := getBody(t, ts, "/metrics")
	text := string(body)

	for _, phase := range []string{"cache_miss", "engine", "encode"} {
		if !strings.Contains(text, fmt.Sprintf("rbcastd_phase_seconds_count{phase=%q} 1", phase)) {
			t.Errorf("exposition lacks phase count for %q:\n%s", phase, grepFamily(text, "rbcastd_phase_seconds"))
		}
		if !strings.Contains(text, fmt.Sprintf("rbcastd_phase_seconds_sum{phase=%q} ", phase)) {
			t.Errorf("exposition lacks phase sum for %q", phase)
		}
	}
	if !strings.Contains(text, "rbcastd_flight_recorder_requests_total 1") {
		t.Error("flight recorder total not exposed")
	}
	for _, gauge := range []string{"rbcastd_goroutines ", "rbcastd_heap_alloc_bytes ", "rbcastd_gc_pause_seconds_total "} {
		if !strings.Contains(text, gauge) {
			t.Errorf("exposition lacks runtime gauge %q", strings.TrimSpace(gauge))
		}
	}
}

// grepFamily pulls a metric family's lines out of an exposition for
// failure messages.
func grepFamily(text, name string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, name) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// decodeEvents reads a /v1/jobs/{id}/events stream to exhaustion.
func decodeEvents(t *testing.T, body io.Reader) []ProgressEvent {
	t.Helper()
	dec := json.NewDecoder(body)
	var events []ProgressEvent
	for {
		var ev ProgressEvent
		if err := dec.Decode(&ev); err != nil {
			if err != io.EOF {
				t.Fatalf("decoding event stream: %v", err)
			}
			return events
		}
		events = append(events, ev)
	}
}

// assertMonotoneToTerminal checks the stream contract: non-terminal events
// are "running", fields never regress, and the last event is the terminal
// one with every element accounted for.
func assertMonotoneToTerminal(t *testing.T, events []ProgressEvent, total int) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, ev := range events {
		if ev.JobsTotal != total {
			t.Errorf("event %d total = %d, want %d", i, ev.JobsTotal, total)
		}
		wantState := "running"
		if i == len(events)-1 {
			wantState = "done"
		}
		if ev.State != wantState {
			t.Errorf("event %d state = %q, want %q", i, ev.State, wantState)
		}
		if i == 0 {
			continue
		}
		prev := events[i-1]
		if ev.JobsDone < prev.JobsDone || ev.NodeRounds < prev.NodeRounds || ev.DedupHits < prev.DedupHits {
			t.Errorf("progress regressed between events %d and %d: %+v -> %+v", i-1, i, prev, ev)
		}
	}
	last := events[len(events)-1]
	if last.JobsDone != total {
		t.Errorf("terminal event done = %d, want %d", last.JobsDone, total)
	}
}

// startEvents opens the NDJSON stream for a job and returns the response.
func startEvents(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	return resp
}

// submitBatch posts a batch and returns its ack.
func submitBatch(t *testing.T, ts *httptest.Server, jobs []RunRequest) BatchResponse {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// TestJobEventsStreamToTerminal gates the batch runner so the stream
// provably connects while the job is running: the first event must be a
// live "running" snapshot, and after release the stream must advance
// monotonically to exactly one terminal event and then close.
func TestJobEventsStreamToTerminal(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			<-release
			return rbcast.RunBatch(jobs, opts)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	flood := RunRequest{Config: rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolFlood, Value: 1}}
	jobs := []RunRequest{testScenario(), flood, testScenario()} // one in-batch duplicate
	ack := submitBatch(t, ts, jobs)

	resp := startEvents(t, ts, ack.ID)
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var first ProgressEvent
	if err := dec.Decode(&first); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if first.State != "running" || first.JobsDone >= len(jobs) {
		t.Fatalf("first event = %+v, want a live running snapshot", first)
	}
	close(release)
	events := append([]ProgressEvent{first}, decodeEvents(t, resp.Body)...)
	assertMonotoneToTerminal(t, events, len(jobs))
	last := events[len(events)-1]
	if last.NodeRounds == 0 || last.DedupHits == 0 || last.Errors != 0 {
		t.Errorf("terminal event = %+v, want executed work, the duplicate deduped, no errors", last)
	}
}

// TestJobEventsAlreadyDone: a finished job yields exactly one terminal
// line and the stream closes; unknown jobs 404.
func TestJobEventsAlreadyDone(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{testScenario()}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, jb := getBody(t, ts, ack.StatusURL)
		var st JobStatus
		if err := json.Unmarshal(jb, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	er := startEvents(t, ts, ack.ID)
	defer er.Body.Close()
	events := decodeEvents(t, er.Body)
	if len(events) != 1 {
		t.Fatalf("finished job streamed %d events, want exactly the terminal one: %+v", len(events), events)
	}
	assertMonotoneToTerminal(t, events, 1)

	resp404, _ := getBody(t, ts, "/v1/jobs/nope/events")
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events status %d, want 404", resp404.StatusCode)
	}
}

// TestJobEventsTerminalOnPanic: a panicking batch execution still
// publishes the terminal event, with every element reported as an error —
// watchers converge instead of hanging.
func TestJobEventsTerminalOnPanic(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			<-release
			panic("stitching bug")
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jobs := []RunRequest{testScenario(), testScenario()}
	ack := submitBatch(t, ts, jobs)
	resp := startEvents(t, ts, ack.ID)
	defer resp.Body.Close()
	close(release)
	events := decodeEvents(t, resp.Body)
	assertMonotoneToTerminal(t, events, len(jobs))
	last := events[len(events)-1]
	if last.Errors != len(jobs) {
		t.Errorf("terminal event after panic = %+v, want every element errored", last)
	}
}

// TestJobEventsTerminalOnDeadline: elements cut by the job deadline count
// as errors in the terminal event.
func TestJobEventsTerminalOnDeadline(t *testing.T) {
	srv := New(Options{JobTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jobs := []RunRequest{testScenario()}
	ack := submitBatch(t, ts, jobs)
	resp := startEvents(t, ts, ack.ID)
	defer resp.Body.Close()
	events := decodeEvents(t, resp.Body)
	assertMonotoneToTerminal(t, events, len(jobs))
	last := events[len(events)-1]
	if last.Errors != 1 {
		t.Errorf("terminal event after deadline = %+v, want the element errored", last)
	}
}
