// Package server implements rbcastd's HTTP/JSON serving layer: scenario
// execution behind a fingerprint-keyed LRU result cache with single-flight
// deduplication, asynchronous batch jobs on the rbcast.RunBatch worker
// substrate, and Prometheus-text observability.
//
// Endpoints:
//
//	POST /v1/run             execute one scenario synchronously (cached)
//	POST /v1/batch           submit a job list; returns a job id immediately
//	POST /v1/sweep           plan + execute a parameter grid incrementally (NDJSON stream)
//	GET  /v1/jobs/{id}       poll a batch job's status and results
//	GET  /v1/jobs/{id}/trace stream a traced element's event log (NDJSON)
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus text-format counters and gauges
//
// API.md at the repository root is the full route reference.
//
// Identical scenarios — same canonical fingerprint, see
// rbcast.Job.Fingerprint — are executed once and served from the cache
// thereafter; concurrent identical /v1/run requests coalesce onto a single
// execution and receive byte-identical bodies.
package server
