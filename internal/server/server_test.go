package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rbcast "repro"
)

// testScenario is a small, fast scenario used across the suite.
func testScenario() RunRequest {
	return RunRequest{
		Config: rbcast.Config{Width: 16, Height: 10, Radius: 1, Protocol: rbcast.ProtocolBV4, T: 2, Value: 1},
		Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceGreedyBand, Strategy: rbcast.StrategySilent},
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

func getBody(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

func TestRunEndpointMatchesDirectRun(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := testScenario()
	resp, body := postJSON(t, ts, "/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rbcast-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	want, err := rbcast.Run(req.Config, req.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Fingerprint != (rbcast.Job{Config: req.Config, Plan: req.Plan}).Fingerprint() {
		t.Errorf("fingerprint mismatch: %s", rr.Fingerprint)
	}
	got := rr.Result
	got.Metrics.Wall, want.Metrics.Wall = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Error("served result diverges from direct rbcast.Run")
	}

	// Second identical request: a resident cache hit.
	resp2, body2 := postJSON(t, ts, "/v1/run", req)
	if got := resp2.Header.Get("X-Rbcast-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached response body differs from the original")
	}
}

// TestConcurrentIdenticalRunsSingleFlight is the acceptance check: two
// concurrent identical POST /v1/run requests must produce exactly one
// simulation execution and byte-identical JSON bodies, and /metrics must
// then report cache_hits_total ≥ 1.
func TestConcurrentIdenticalRunsSingleFlight(t *testing.T) {
	var executions atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := New(Options{
		Runner: func(ctx context.Context, cfg rbcast.Config, plan rbcast.FaultPlan) (rbcast.Result, error) {
			if executions.Add(1) == 1 {
				close(entered)
			}
			<-release
			return rbcast.RunContext(ctx, cfg, plan)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := testScenario()
	bodies := make([][]byte, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts, "/v1/run", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
		}(i)
	}

	// Wait until the first request is inside the runner, then until the
	// second has coalesced onto its flight (visible as a cache hit),
	// before letting the execution finish.
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for srv.cache.Stats().Hits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced onto the in-flight execution")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Errorf("runner executed %d times, want 1", got)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("concurrent identical requests returned different bodies:\n%s\n%s", bodies[0], bodies[1])
	}

	_, metrics := getBody(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "rbcastd_cache_hits_total 1") {
		t.Errorf("/metrics must report at least one cache hit:\n%s", metrics)
	}
}

func TestRunEndpointRejectsInvalidScenario(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bad := testScenario()
	bad.Config.Value = 7
	resp, body := postJSON(t, ts, "/v1/run", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("error body %s", body)
	}
	// Errors must not be cached: a valid retry with the same shape works.
	// And malformed JSON (unknown field) is a 400, not a silent default.
	resp, _ = postJSON(t, ts, "/v1/run", map[string]any{"config": map[string]any{"widht": 16}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpointRunsAndDeduplicates(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	a := testScenario()
	b := testScenario()
	b.Config.Protocol = rbcast.ProtocolBV2
	invalid := testScenario()
	invalid.Config.Metric = rbcast.MetricL2
	invalid.Config.Value = 9 // rejected by validate
	// a appears twice: the duplicate must resolve without a second run.
	reqs := []RunRequest{a, b, a, invalid}

	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: reqs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Jobs != len(reqs) || ack.StatusURL != "/v1/jobs/"+ack.ID {
		t.Fatalf("ack = %+v", ack)
	}

	var status JobStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, jb := getBody(t, ts, ack.StatusURL)
		if err := json.Unmarshal(jb, &status); err != nil {
			t.Fatal(err)
		}
		if status.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if len(status.Results) != len(reqs) {
		t.Fatalf("%d results for %d jobs", len(status.Results), len(reqs))
	}
	for i, idx := range []int{0, 1} {
		jr := status.Results[idx]
		if jr.Error != "" || jr.Result == nil {
			t.Fatalf("job %d failed: %+v", i, jr)
		}
		want, err := rbcast.Run(reqs[idx].Config, reqs[idx].Plan)
		if err != nil {
			t.Fatal(err)
		}
		got := *jr.Result
		got.Metrics.Wall, want.Metrics.Wall = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Errorf("job %d result diverges from direct run", idx)
		}
	}
	dup := status.Results[2]
	if !dup.Cached || dup.Result == nil {
		t.Errorf("within-batch duplicate not served from its first occurrence: %+v", dup)
	}
	if status.Results[3].Error == "" {
		t.Error("invalid job must carry its error")
	}

	// The batch populated the cache: a sync run of scenario b now hits.
	resp, _ = postJSON(t, ts, "/v1/run", b)
	if got := resp.Header.Get("X-Rbcast-Cache"); got != "hit" {
		t.Errorf("post-batch sync request cache header = %q, want hit", got)
	}
}

func TestJobEndpointUnknownID(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := getBody(t, ts, "/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestBatchValidation(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := postJSON(t, ts, "/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, body := getBody(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Errorf("healthz body %s (err %v)", body, err)
	}
}

func TestMetricsExposition(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts, "/v1/run", testScenario())
	postJSON(t, ts, "/v1/run", testScenario())
	resp, body := getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`rbcastd_requests_total{path="/v1/run"} 2`,
		"rbcastd_cache_hits_total 1",
		"rbcastd_cache_misses_total 1",
		"rbcastd_sim_runs_total 1",
		"rbcastd_jobs_queue_depth 0",
		"rbcastd_inflight_runs 0",
		"# TYPE rbcastd_cache_hits_total counter",
		"# TYPE rbcastd_cache_entries gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Simulation totals must reflect the one executed run.
	res, err := rbcast.Run(testScenario().Config, testScenario().Plan)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("rbcastd_sim_broadcasts_total %d", res.Broadcasts); !strings.Contains(text, want) {
		t.Errorf("/metrics missing %q", want)
	}
}

func TestDrainWaitsForBatchJobs(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	srv := New(Options{
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			close(started)
			<-release
			return rbcast.RunBatch(jobs, opts)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{testScenario()}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	<-started

	// Drain with an expired deadline reports the still-queued job.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := srv.Drain(expired); err == nil {
		t.Error("drain with blocked batch job must time out")
	}

	// New batch submissions are rejected while draining.
	resp, _ = postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{testScenario()}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining batch: status %d, want 503", resp.StatusCode)
	}

	close(release)
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}

func TestFinishedJobEviction(t *testing.T) {
	srv := New(Options{MaxJobs: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		req := testScenario()
		req.Config.T = i // distinct scenarios
		resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{req}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var ack BatchResponse
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ack.ID)
		// Let each job finish before the next submission so eviction has
		// a finished candidate.
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, jb := getBody(t, ts, ack.StatusURL)
			var st JobStatus
			if err := json.Unmarshal(jb, &st); err != nil {
				t.Fatal(err)
			}
			if st.State == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	resp, _ := getBody(t, ts, "/v1/jobs/"+ids[0])
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest finished job should be evicted, got status %d", resp.StatusCode)
	}
	resp, _ = getBody(t, ts, "/v1/jobs/"+ids[2])
	if resp.StatusCode != http.StatusOK {
		t.Errorf("newest job must survive eviction, got status %d", resp.StatusCode)
	}
}

// TestRunEndpointServesNonTorusFamilies is the tentpole's serving-surface
// acceptance check: rgg and custom scenarios submit, execute, cache, and
// replay through /v1/run exactly like torus ones, and a torus-only protocol
// on a non-torus family is a 400, not a crash or a cached error.
func TestRunEndpointServesNonTorusFamilies(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ring := &rbcast.GraphSpec{Nodes: 8, Edges: [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
	}}
	cases := []struct {
		name string
		req  RunRequest
	}{
		{"rgg", RunRequest{
			Config: rbcast.Config{Topology: rbcast.TopologyRGG, Nodes: 64, RGGRadius: 0.22, TopologySeed: 1, Protocol: rbcast.ProtocolFlood, Value: 1},
		}},
		{"custom", RunRequest{
			Config: rbcast.Config{Topology: rbcast.TopologyCustom, Graph: ring, Protocol: rbcast.ProtocolCPA, T: 1, MaxRounds: 64, Value: 1},
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/run", tt.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Rbcast-Cache"); got != "miss" {
				t.Errorf("first request cache header = %q, want miss", got)
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Fatal(err)
			}
			want := (rbcast.Job{Config: tt.req.Config, Plan: tt.req.Plan}).Fingerprint()
			if rr.Fingerprint != want {
				t.Errorf("fingerprint %s, want %s", rr.Fingerprint, want)
			}
			if len(rr.Result.Decisions) == 0 || !rr.Result.Safe() {
				t.Errorf("served non-torus result is empty or unsafe: %+v", rr.Result)
			}
			resp2, body2 := postJSON(t, ts, "/v1/run", tt.req)
			if got := resp2.Header.Get("X-Rbcast-Cache"); got != "hit" {
				t.Errorf("second request cache header = %q, want hit", got)
			}
			if !bytes.Equal(body, body2) {
				t.Error("cached non-torus body differs from the original")
			}
		})
	}

	// A torus-only protocol on an rgg graph must be rejected up front.
	bad := cases[0].req
	bad.Config.Protocol = rbcast.ProtocolBV4
	bad.Config.T = 1
	resp, body := postJSON(t, ts, "/v1/run", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bv4-on-rgg: status %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "torus") {
		t.Errorf("bv4-on-rgg error %s does not name the required family", body)
	}
}
