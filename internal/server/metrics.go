package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// healthResponse is the /healthz body.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleMetrics renders the Prometheus text exposition format (v0.0.4):
// server counters (requests, cache, jobs) plus the aggregated
// internal/metrics simulation totals across every executed run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	writeHeader(&b, "rbcastd_requests_total", "counter", "HTTP requests served, by route.")
	paths := make([]string, 0, len(s.requestsByPath))
	for p := range s.requestsByPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&b, "rbcastd_requests_total{path=%q} %d\n", p, s.requestsByPath[p].Load())
	}

	writeHeader(&b, "rbcastd_request_duration_seconds", "histogram",
		"HTTP request duration in seconds, by route.")
	for _, p := range paths {
		cum, count, sum := s.histByPath[p].snapshot()
		for i, ub := range durationBuckets {
			fmt.Fprintf(&b, "rbcastd_request_duration_seconds_bucket{path=%q,le=%q} %d\n",
				p, strconv.FormatFloat(ub, 'g', -1, 64), cum[i])
		}
		fmt.Fprintf(&b, "rbcastd_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n",
			p, cum[len(cum)-1])
		fmt.Fprintf(&b, "rbcastd_request_duration_seconds_sum{path=%q} %g\n", p, sum)
		fmt.Fprintf(&b, "rbcastd_request_duration_seconds_count{path=%q} %d\n", p, count)
	}

	cs := s.cache.Stats()
	writeGauge(&b, "rbcastd_cache_hits_total", "counter",
		"Result-cache hits, including single-flight coalesced waiters.", float64(cs.Hits))
	writeGauge(&b, "rbcastd_cache_misses_total", "counter",
		"Result-cache misses that triggered a simulation execution.", float64(cs.Misses))
	writeGauge(&b, "rbcastd_cache_evictions_total", "counter",
		"Result-cache LRU evictions.", float64(cs.Evictions))
	writeGauge(&b, "rbcastd_cache_entries", "gauge",
		"Resident result-cache entries.", float64(cs.Entries))

	writeGauge(&b, "rbcastd_inflight_runs", "gauge",
		"Scenario executions currently running (sync and batch).", float64(s.inflightRuns.Load()))
	writeGauge(&b, "rbcastd_jobs_queue_depth", "gauge",
		"Batch jobs accepted but not yet finished.", float64(s.queueDepth.Load()))
	writeGauge(&b, "rbcastd_jobs_queue_limit", "gauge",
		"Batch queue admission bound (submissions over it are shed with 429).",
		float64(s.opts.QueueDepth))
	writeGauge(&b, "rbcastd_inflight_limit", "gauge",
		"Concurrent execution bound (0 = unbounded).", float64(s.opts.MaxInflight))

	writeHeader(&b, "rbcastd_shed_total", "counter",
		"Requests shed with 429 + Retry-After, by reason.")
	fmt.Fprintf(&b, "rbcastd_shed_total{reason=\"queue_full\"} %d\n", s.shedQueueFull.Load())
	fmt.Fprintf(&b, "rbcastd_shed_total{reason=\"busy\"} %d\n", s.shedBusy.Load())
	writeGauge(&b, "rbcastd_run_deadline_total", "counter",
		"Scenario executions stopped by the job deadline (partial results).",
		float64(s.deadlineRuns.Load()))
	writeGauge(&b, "rbcastd_panics_recovered_total", "counter",
		"Panicking executions isolated to their job instead of killing the daemon.",
		float64(s.panicsRecovered.Load()))

	writeGauge(&b, "rbcastd_sim_runs_total", "counter",
		"Scenario executions completed successfully.", float64(s.simRuns.Load()))
	writeGauge(&b, "rbcastd_sim_broadcasts_total", "counter",
		"Local broadcasts transmitted across all executed runs.", float64(s.simBroadcasts.Load()))
	writeGauge(&b, "rbcastd_sim_deliveries_total", "counter",
		"Per-receiver deliveries across all executed runs.", float64(s.simDeliveries.Load()))
	writeGauge(&b, "rbcastd_sim_evidence_evals_total", "counter",
		"Commit-rule evidence evaluations across all executed runs.", float64(s.simEvidence.Load()))
	writeGauge(&b, "rbcastd_sim_commits_total", "counter",
		"First-time decisions across all executed runs.", float64(s.simCommits.Load()))

	if s.ring != nil {
		writeGauge(&b, "rbcastd_cluster_members", "gauge",
			"Fleet size this daemon's ring was built from (including itself).",
			float64(s.ring.Len()))
		writeHeader(&b, "rbcastd_peer_up", "gauge",
			"Sibling liveness from the last contact (health check, proxy or cache probe): 1 up, 0 down.")
		for _, p := range s.siblings {
			up := 0
			if s.peers[p].up.Load() {
				up = 1
			}
			fmt.Fprintf(&b, "rbcastd_peer_up{peer=%q} %d\n", p, up)
		}
		writeHeader(&b, "rbcastd_peer_proxy_total", "counter",
			"Runs forwarded to their fingerprint owner, by peer and outcome (error = owner unreachable, executed locally).")
		for _, p := range s.siblings {
			fmt.Fprintf(&b, "rbcastd_peer_proxy_total{peer=%q,outcome=\"ok\"} %d\n", p, s.peers[p].proxyOK.Load())
			fmt.Fprintf(&b, "rbcastd_peer_proxy_total{peer=%q,outcome=\"error\"} %d\n", p, s.peers[p].proxyErr.Load())
		}
		writeHeader(&b, "rbcastd_peer_cache_fill_total", "counter",
			"Sibling cache probes on owned-fingerprint misses, by outcome (hit = served without simulating).")
		fmt.Fprintf(&b, "rbcastd_peer_cache_fill_total{outcome=\"hit\"} %d\n", s.peerFillHit.Load())
		fmt.Fprintf(&b, "rbcastd_peer_cache_fill_total{outcome=\"miss\"} %d\n", s.peerFillMiss.Load())
		fmt.Fprintf(&b, "rbcastd_peer_cache_fill_total{outcome=\"error\"} %d\n", s.peerFillErr.Load())
	}

	writeGauge(&b, "rbcastd_sweeps_total", "counter",
		"Sweep requests executed.", float64(s.sweepsRun.Load()))
	writeGauge(&b, "rbcastd_sweep_elements_total", "counter",
		"Sweep elements planned across all sweeps (cached or executed).",
		float64(s.sweepElements.Load()))
	writeGauge(&b, "rbcastd_sweep_shared_results_total", "counter",
		"Sweep elements resolved by sharing another element's execution.",
		float64(s.sweepSharedResults.Load()))
	writeGauge(&b, "rbcastd_sweep_node_rounds_total", "counter",
		"Node-rounds actually simulated by the sweep engine.",
		float64(s.sweepNodeRounds.Load()))
	writeGauge(&b, "rbcastd_sweep_scalar_node_rounds_total", "counter",
		"Node-rounds equivalent scalar execution would have simulated.",
		float64(s.sweepScalarNodeRounds.Load()))

	// Per-phase duration summaries from the flight recorder's finished
	// traces (empty until a recorded route runs with -flight-recorder on).
	s.phaseMu.Lock()
	phases := make([]string, 0, len(s.phaseDur))
	for name := range s.phaseDur {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	type phaseRow struct {
		name  string
		count uint64
		sum   float64
	}
	rows := make([]phaseRow, len(phases))
	for i, name := range phases {
		ps := s.phaseDur[name]
		rows[i] = phaseRow{name: name, count: ps.count, sum: time.Duration(ps.sumNanos).Seconds()}
	}
	s.phaseMu.Unlock()
	writeHeader(&b, "rbcastd_phase_seconds", "summary",
		"Request time attributed to execution phases (flight-recorder span names).")
	for _, row := range rows {
		fmt.Fprintf(&b, "rbcastd_phase_seconds_sum{phase=%q} %g\n", row.name, row.sum)
		fmt.Fprintf(&b, "rbcastd_phase_seconds_count{phase=%q} %d\n", row.name, row.count)
	}
	writeGauge(&b, "rbcastd_flight_recorder_requests_total", "counter",
		"Request timelines recorded by the flight recorder.", float64(s.rec.Total()))

	// Process-health gauges: without them the exposition says nothing
	// about whether the daemon itself is drowning.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeGauge(&b, "rbcastd_goroutines", "gauge",
		"Live goroutines in the daemon process.", float64(runtime.NumGoroutine()))
	writeGauge(&b, "rbcastd_heap_alloc_bytes", "gauge",
		"Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	writeGauge(&b, "rbcastd_gc_pause_seconds_total", "counter",
		"Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)

	writeGauge(&b, "rbcastd_uptime_seconds", "gauge",
		"Seconds since the server started.", time.Since(s.start).Seconds())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

// writeHeader emits the HELP/TYPE preamble for a metric family.
func writeHeader(b *strings.Builder, name, kind, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// writeGauge emits a single-sample family with its preamble. %g keeps
// integers integral and floats compact, matching Prometheus conventions.
func writeGauge(b *strings.Builder, name, kind, help string, v float64) {
	writeHeader(b, name, kind, help)
	fmt.Fprintf(b, "%s %g\n", name, v)
}
