package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	rbcast "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/scache"
)

// Options configure a Server; the zero value serves with defaults.
type Options struct {
	// CacheSize bounds the result cache entry count (≤ 0: 1024).
	CacheSize int
	// Workers caps each batch job's worker pool (≤ 0: GOMAXPROCS).
	Workers int
	// MaxJobs bounds retained async batch jobs (≤ 0: 4096). When the
	// bound is hit, the oldest finished job is dropped; running jobs are
	// never dropped.
	MaxJobs int
	// QueueDepth bounds batch jobs accepted but not yet finished (≤ 0:
	// 1024). A submission over the bound is shed with 429 and a
	// Retry-After header instead of queueing unboundedly.
	QueueDepth int
	// MaxInflight bounds concurrently *executing* jobs — sync /v1/run
	// executions plus running batch jobs (≤ 0: unbounded). At the bound,
	// sync runs are shed with 429 + Retry-After (a cache hit is still
	// served); accepted batch jobs wait for a slot.
	MaxInflight int
	// JobTimeout bounds each scenario execution's wall clock (≤ 0: none).
	// A sync run over it fails with 504; a batch element over it fails
	// individually with a partial result while its siblings complete.
	JobTimeout time.Duration
	// Runner executes one scenario for /v1/run (nil: rbcast.RunContext).
	// Tests inject counting or blocking runners. The context carries the
	// server's job deadline; runners should stop when it is done.
	Runner func(context.Context, rbcast.Config, rbcast.FaultPlan) (rbcast.Result, error)
	// BatchRunner executes a batch job's cache misses (nil:
	// rbcast.RunBatch). The BatchOptions carry the server's JobTimeout.
	BatchRunner func([]rbcast.Job, rbcast.BatchOptions) []rbcast.BatchResult
	// SweepRunner executes a sweep's cache misses through the incremental
	// sweep engine (nil: rbcast.RunSweepJobs).
	SweepRunner func([]rbcast.Job, rbcast.BatchOptions) ([]rbcast.BatchResult, rbcast.SweepStats)
	// Logger receives one structured line per request (nil: no request
	// logging). Metrics and request ids are recorded either way.
	Logger *slog.Logger
	// FlightRecorder retains the last N request timelines for
	// GET /debug/requests and feeds the per-phase /metrics summaries
	// (≤ 0: disabled). When disabled the span stack is disarmed — the
	// request path performs no tracing work and no extra allocations.
	FlightRecorder int
	// SlowRequest logs one WARN line (with the per-phase span summary
	// when the flight recorder is armed) for any request at or over this
	// duration (≤ 0: disabled). Requires Logger.
	SlowRequest time.Duration
	// Self is this daemon's advertised base URL in cluster mode (e.g.
	// "http://10.0.0.1:8080"). Required when Peers is set; must be one of
	// them.
	Self string
	// Peers is the full fleet membership as base URLs, including Self.
	// Non-empty Peers enables cluster mode: /v1/run requests whose
	// fingerprint another member owns are forwarded there, and local
	// cache misses this node owns probe the siblings before simulating.
	// Empty: single-node. Validate with ValidateCluster first — New
	// panics on an inconsistent membership.
	Peers []string
	// PeerTimeout bounds each sibling cache probe and health check
	// (≤ 0: 2s). Proxied runs are bounded by the client's own request
	// context instead — they carry real simulation work.
	PeerTimeout time.Duration
	// Redirect makes non-owners answer 307 (Location: owner's /v1/run)
	// instead of proxying. Cheaper for the fleet, but only clients that
	// replay request bodies across redirects can use it.
	Redirect bool
}

// Server is the rbcastd HTTP handler plus its execution state. Construct
// with New; it is safe for concurrent use.
type Server struct {
	opts  Options
	cache *scache.Cache[rbcast.Result]
	mux   *http.ServeMux
	start time.Time

	// requestsByPath maps each registered route to its request counter;
	// histByPath maps it to its duration histogram.
	requestsByPath map[string]*atomic.Uint64
	histByPath     map[string]*routeHist
	// reqSeq sequences request ids.
	reqSeq atomic.Uint64

	// rec is the flight recorder (nil when Options.FlightRecorder ≤ 0 —
	// the span stack is then disarmed end to end). phaseMu/phaseDur
	// aggregate finished traces' spans into the rbcastd_phase_seconds
	// summaries.
	rec      *obs.Recorder
	phaseMu  sync.Mutex
	phaseDur map[string]*phaseStats

	// inflightRuns counts scenario executions currently on a CPU
	// (sync runs and batch pool occupancy alike).
	inflightRuns atomic.Int64
	// queueDepth counts batch jobs accepted but not yet finished.
	queueDepth atomic.Int64
	// runSlots is the MaxInflight semaphore (nil = unbounded): sync runs
	// try-acquire and shed on failure, batch jobs block for a slot.
	runSlots chan struct{}
	// shedQueueFull and shedBusy count requests shed with 429 because the
	// batch queue was full / every execution slot was taken.
	shedQueueFull, shedBusy atomic.Int64
	// deadlineRuns counts executions stopped by the job deadline;
	// panicsRecovered counts scenario panics isolated to their job.
	deadlineRuns, panicsRecovered atomic.Int64

	// Cluster mode (nil ring = single-node): the fingerprint ring, this
	// node's advertised URL, the siblings in canonical order, the HTTP
	// client proxies and probes ride, and per-sibling status. The
	// peerFill* counters classify sibling cache probes on local misses.
	ring     *cluster.Ring
	self     string
	siblings []string
	peerHC   *http.Client
	peers    map[string]*peerStatus

	peerFillHit, peerFillMiss, peerFillErr atomic.Int64

	// Aggregated simulation totals across every executed (non-cached)
	// run — the internal/metrics counters surfaced fleet-wide.
	simRuns, simBroadcasts, simDeliveries, simEvidence, simCommits atomic.Int64

	// Sweep-engine totals: sweeps served, elements planned, results shared
	// without a fresh simulation, and actual vs scalar-equivalent simulated
	// node-rounds (their ratio is the fleet-wide incremental speedup).
	sweepsRun, sweepElements, sweepSharedResults atomic.Int64
	sweepNodeRounds, sweepScalarNodeRounds       atomic.Int64

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*batchJob
	order    []string // job ids in creation order, oldest first
	wg       sync.WaitGroup
}

// New constructs a Server and registers its routes.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 1024
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.Runner == nil {
		opts.Runner = rbcast.RunContext
	}
	if opts.BatchRunner == nil {
		opts.BatchRunner = rbcast.RunBatch
	}
	if opts.SweepRunner == nil {
		opts.SweepRunner = rbcast.RunSweepJobs
	}
	s := &Server{
		opts:           opts,
		cache:          scache.New[rbcast.Result](opts.CacheSize),
		mux:            http.NewServeMux(),
		start:          time.Now(),
		requestsByPath: make(map[string]*atomic.Uint64),
		histByPath:     make(map[string]*routeHist),
		rec:            obs.NewRecorder(opts.FlightRecorder),
		phaseDur:       make(map[string]*phaseStats),
		jobs:           make(map[string]*batchJob),
	}
	if opts.MaxInflight > 0 {
		s.runSlots = make(chan struct{}, opts.MaxInflight)
	}
	s.initCluster()
	// record marks routes whose timelines enter the flight recorder.
	// Scrape endpoints and long-lived event streams stay out: they would
	// flood the ring with traffic nobody debugs, burying the requests the
	// recorder exists to explain. Every route is still counted and
	// histogrammed.
	routes := []struct {
		pattern string
		path    string
		handler http.HandlerFunc
		record  bool
	}{
		{"POST /v1/run", "/v1/run", s.handleRun, true},
		{"GET /v1/cache/{fp}", "/v1/cache/{fp}", s.handleCacheProbe, false},
		{"POST /v1/batch", "/v1/batch", s.handleBatch, true},
		{"POST /v1/sweep", "/v1/sweep", s.handleSweep, true},
		{"GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJob, true},
		{"GET /v1/jobs/{id}/trace", "/v1/jobs/{id}/trace", s.handleJobTrace, true},
		{"GET /v1/jobs/{id}/events", "/v1/jobs/{id}/events", s.handleJobEvents, false},
		{"GET /healthz", "/healthz", s.handleHealthz, false},
		{"GET /metrics", "/metrics", s.handleMetrics, false},
		{"GET /debug/requests", "/debug/requests", s.handleDebugRequests, false},
	}
	for _, r := range routes {
		counter := &atomic.Uint64{}
		hist := &routeHist{}
		s.requestsByPath[r.path] = counter
		s.histByPath[r.path] = hist
		s.mux.HandleFunc(r.pattern, s.instrument(r.path, counter, hist, r.record, r.handler))
	}
	return s
}

// ServeHTTP dispatches to the registered routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// RunRequest is the /v1/run payload and the element type of /v1/batch.
type RunRequest struct {
	Config rbcast.Config    `json:"config"`
	Plan   rbcast.FaultPlan `json:"plan"`
}

// RunResponse is the /v1/run response body.
type RunResponse struct {
	Fingerprint string        `json:"fingerprint"`
	Result      rbcast.Result `json:"result"`
}

// errorResponse is every error body: {"error": "..."}.
type errorResponse struct {
	Error string `json:"error"`
}

// errBusy is executeOne's shed signal: every execution slot is taken and
// the caller should retry after backing off. It is never cached.
var errBusy = errors.New("server is at max in-flight executions, retry later")

// retryAfterSeconds is the Retry-After hint sent with every 429. Scenario
// runs are short (milliseconds to low seconds), so one second is a
// conservative back-off that keeps well-behaved clients from hammering a
// saturated daemon.
const retryAfterSeconds = 1

// writeShed rejects a request with 429 and a Retry-After header — explicit
// backpressure instead of unbounded queueing.
func writeShed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
}

// handleRun executes one scenario synchronously through the cache.
// Concurrent identical requests single-flight onto one execution; the
// X-Rbcast-Cache header reports hit (served without executing), miss, or
// peer (filled from a sibling's cache in cluster mode). In cluster mode a
// fingerprint another member owns is forwarded there first (proxy or 307
// per Options.Redirect) and only executed locally when the owner is
// unreachable. Failure modes map to statuses: invalid scenario 400, all
// execution slots taken 429 (Retry-After), job deadline exceeded 504,
// scenario panic 500.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	tr, root := obs.SpanFromContext(r.Context())
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	var req RunRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job := rbcast.Job{Config: req.Config, Plan: req.Plan}
	fp := job.Fingerprint()
	if s.routeRun(tr, root, w, r, fp, body) {
		return
	}
	// The cache span's identity is only known once the lookup resolves:
	// a resident hit, a single-flight wait on another request's
	// execution, or a miss this request resolves — by probing sibling
	// caches when this node owns the fingerprint in cluster mode, else by
	// executing (with slot-wait and engine child spans from executeOne).
	filled := false
	cacheSp := tr.Start(root, "cache")
	res, err, outcome := s.cache.DoOutcome(fp, func() (rbcast.Result, error) {
		if s.ring != nil && s.ring.Owner(fp) == s.self {
			if res, ok := s.peerFill(tr, cacheSp, fp); ok {
				filled = true
				return res, nil
			}
		}
		return s.executeOne(tr, cacheSp, req.Config, req.Plan)
	})
	switch outcome {
	case scache.OutcomeHit:
		tr.SetName(cacheSp, "cache_hit")
	case scache.OutcomeJoined:
		tr.SetName(cacheSp, "singleflight_wait")
	default:
		tr.SetName(cacheSp, "cache_miss")
	}
	tr.Annotate(cacheSp, "fingerprint", fp)
	tr.End(cacheSp)
	cached := outcome != scache.OutcomeMiss
	if err != nil {
		var pe *rbcast.PanicError
		switch {
		case errors.Is(err, errBusy):
			s.shedBusy.Add(1)
			writeShed(w, err)
		case errors.Is(err, rbcast.ErrDeadline):
			s.deadlineRuns.Add(1)
			writeError(w, http.StatusGatewayTimeout, err)
		case errors.As(err, &pe):
			writeError(w, http.StatusInternalServerError, err)
		default:
			// Everything else is a scenario rejection (invalid
			// config/plan), not a server fault.
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	switch {
	case cached:
		w.Header().Set("X-Rbcast-Cache", "hit")
	case filled:
		w.Header().Set("X-Rbcast-Cache", "peer")
	default:
		w.Header().Set("X-Rbcast-Cache", "miss")
	}
	encSp := tr.Start(root, "encode")
	writeJSON(w, http.StatusOK, RunResponse{Fingerprint: fp, Result: res})
	tr.End(encSp)
}

// executeOne runs a single scenario, tracking in-flight occupancy and
// aggregating its engine metrics. It sheds with errBusy when every
// execution slot is taken, bounds the run with the server's job deadline,
// and converts a panicking scenario into an error instead of letting it
// kill the daemon. The deadline context is detached from the request so a
// disconnecting client cannot cancel an execution that coalesced
// single-flight waiters. tr/parent carry the executing request's trace
// (nil when disarmed, or when this execution was reached through a
// coalesced waiter whose own trace records only the wait).
func (s *Server) executeOne(tr *obs.Trace, parent obs.SpanID, cfg rbcast.Config, plan rbcast.FaultPlan) (res rbcast.Result, err error) {
	if s.runSlots != nil {
		slotSp := tr.Start(parent, "slot_wait")
		select {
		case s.runSlots <- struct{}{}:
			tr.End(slotSp)
			defer func() { <-s.runSlots }()
		default:
			tr.End(slotSp)
			return rbcast.Result{}, errBusy
		}
	}
	s.inflightRuns.Add(1)
	defer s.inflightRuns.Add(-1)
	ctx := context.Background()
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			s.panicsRecovered.Add(1)
			err = &rbcast.PanicError{Index: -1, Value: r, Stack: debug.Stack()}
			if s.opts.Logger != nil {
				s.opts.Logger.Error("scenario panicked", "panic", r, "stack", string(debug.Stack()))
			}
		}
	}()
	engSp := tr.Start(parent, "engine")
	res, err = s.opts.Runner(obs.ContextWith(ctx, tr, engSp), cfg, plan)
	tr.AnnotateInt(engSp, "rounds", int64(res.Rounds))
	tr.End(engSp)
	if err == nil {
		s.observe(res)
	}
	return res, err
}

// observe folds one run's engine counters into the server-wide totals.
func (s *Server) observe(res rbcast.Result) {
	s.simRuns.Add(1)
	s.simBroadcasts.Add(int64(res.Broadcasts))
	s.simDeliveries.Add(int64(res.Deliveries))
	s.simEvidence.Add(int64(res.Metrics.EvidenceEvals))
	s.simCommits.Add(int64(res.Metrics.Commits))
}

// Drain stops accepting new batch jobs and waits for the queued ones to
// finish, or for ctx to expire. Call it after http.Server.Shutdown has
// drained the in-flight handlers; together they implement rbcastd's
// graceful shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain aborted with %d batch jobs still queued: %w",
			s.queueDepth.Load(), ctx.Err())
	}
}

// decodeJSON strictly decodes a request body: unknown fields and trailing
// garbage are errors, so client typos surface as 400s instead of silently
// running a default scenario.
func decodeJSON(r *http.Request, v any) error {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return decodeStrict(data, v)
}

// decodeStrict is decodeJSON over bytes already read — handleRun keeps the
// raw body so cluster mode can forward it verbatim to the owner.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid request body: trailing data after JSON value")
	}
	return nil
}

// writeJSON writes a JSON response body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
