package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	rbcast "repro"
)

// tracedScenario is testScenario with tracing on.
func tracedScenario() RunRequest {
	req := testScenario()
	req.Config.Trace = true
	return req
}

// submitAndWait posts a batch and polls the job to completion, returning
// its status URL.
func submitAndWait(t *testing.T, ts *httptest.Server, jobs []RunRequest) string {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, jb := getBody(t, ts, ack.StatusURL)
		var st JobStatus
		if err := json.Unmarshal(jb, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return ack.StatusURL
		}
		if time.Now().After(deadline) {
			t.Fatal("batch job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTraceEndpointRoundTrip(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	statusURL := submitAndWait(t, ts, []RunRequest{tracedScenario(), testScenario()})

	// The traced element streams NDJSON that decodes back losslessly and
	// matches a direct library run of the same scenario.
	resp, body := getBody(t, ts, statusURL+"/trace?job=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	events, err := rbcast.DecodeTrace(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("decoding served trace: %v", err)
	}
	req := tracedScenario()
	want, err := rbcast.Run(req.Config, req.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, want.Trace) {
		t.Errorf("served trace (%d events) differs from a direct run (%d events)", len(events), len(want.Trace))
	}

	// Repeated GETs are byte-identical.
	_, again := getBody(t, ts, statusURL+"/trace?job=0")
	if !bytes.Equal(body, again) {
		t.Error("repeated trace GETs are not byte-identical")
	}

	// ?job defaults to element 0.
	_, deflt := getBody(t, ts, statusURL+"/trace")
	if !bytes.Equal(body, deflt) {
		t.Error("default element differs from ?job=0")
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	statusURL := submitAndWait(t, ts, []RunRequest{tracedScenario(), testScenario()})

	cases := []struct {
		name string
		path string
		code int
	}{
		{"unknown job", "/v1/jobs/nope/trace", http.StatusNotFound},
		{"untraced element", statusURL + "/trace?job=1", http.StatusNotFound},
		{"out-of-range element", statusURL + "/trace?job=7", http.StatusBadRequest},
		{"negative element", statusURL + "/trace?job=-1", http.StatusBadRequest},
		{"unparsable element", statusURL + "/trace?job=first", http.StatusBadRequest},
	}
	for _, tt := range cases {
		resp, body := getBody(t, ts, tt.path)
		if resp.StatusCode != tt.code {
			t.Errorf("%s: status %d, want %d (%s)", tt.name, resp.StatusCode, tt.code, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: body carries no error field: %s", tt.name, body)
		}
	}
}

func TestTraceEndpointWhileRunning(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		BatchRunner: func(jobs []rbcast.Job, opts rbcast.BatchOptions) []rbcast.BatchResult {
			<-release
			return rbcast.RunBatch(jobs, opts)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/batch", BatchRequest{Jobs: []RunRequest{tracedScenario()}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var ack BatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	resp, _ = getBody(t, ts, ack.StatusURL+"/trace")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("running job trace status %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	close(release)
	submitAndWait(t, ts, []RunRequest{testScenario()}) // drain before Close
}

// TestMetricsHistogramExposition checks the Prometheus text-format
// invariants of the per-route duration histograms: HELP precedes TYPE
// precedes samples, labels are quoted, bucket counts are monotonically
// nondecreasing in le order, the +Inf bucket equals _count, and every
// registered route appears.
func TestMetricsHistogramExposition(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts, "/v1/run", testScenario())
	getBody(t, ts, "/healthz")

	resp, body := getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)

	helpAt := strings.Index(text, "# HELP rbcastd_request_duration_seconds ")
	typeAt := strings.Index(text, "# TYPE rbcastd_request_duration_seconds histogram")
	firstSample := strings.Index(text, "rbcastd_request_duration_seconds_bucket{")
	if helpAt < 0 || typeAt < 0 || firstSample < 0 {
		t.Fatalf("histogram family incomplete (help %d, type %d, sample %d):\n%s", helpAt, typeAt, firstSample, text)
	}
	if !(helpAt < typeAt && typeAt < firstSample) {
		t.Errorf("exposition order is HELP=%d TYPE=%d sample=%d, want HELP < TYPE < samples", helpAt, typeAt, firstSample)
	}

	// Per route: parse the bucket series and check the invariants.
	routes := []string{"/v1/run", "/v1/batch", "/v1/jobs/{id}", "/v1/jobs/{id}/trace", "/v1/jobs/{id}/events", "/healthz", "/metrics", "/debug/requests"}
	for _, route := range routes {
		var buckets []uint64
		var count uint64
		hasCount := false
		for _, line := range strings.Split(text, "\n") {
			switch {
			case strings.HasPrefix(line, fmt.Sprintf("rbcastd_request_duration_seconds_bucket{path=%q,le=", route)):
				f := strings.Fields(line)
				if len(f) != 2 {
					t.Fatalf("malformed sample %q", line)
				}
				v, err := strconv.ParseUint(f[1], 10, 64)
				if err != nil {
					t.Fatalf("bucket value in %q: %v", line, err)
				}
				buckets = append(buckets, v)
			case strings.HasPrefix(line, fmt.Sprintf("rbcastd_request_duration_seconds_count{path=%q}", route)):
				f := strings.Fields(line)
				v, err := strconv.ParseUint(f[1], 10, 64)
				if err != nil {
					t.Fatalf("count value in %q: %v", line, err)
				}
				count, hasCount = v, true
			}
		}
		if want := len(durationBuckets) + 1; len(buckets) != want {
			t.Fatalf("route %s exposes %d buckets, want %d", route, len(buckets), want)
		}
		if !hasCount {
			t.Fatalf("route %s exposes no _count", route)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Errorf("route %s bucket %d (%d) below bucket %d (%d) — not cumulative", route, i, buckets[i], i-1, buckets[i-1])
			}
		}
		if buckets[len(buckets)-1] != count {
			t.Errorf("route %s +Inf bucket %d != count %d", route, buckets[len(buckets)-1], count)
		}
	}

	// The routes exercised above observed at least one request each.
	for _, route := range []string{"/v1/run", "/healthz"} {
		if !strings.Contains(text, fmt.Sprintf("rbcastd_request_duration_seconds_count{path=%q} 1", route)) {
			t.Errorf("route %s did not record its request", route)
		}
	}
}

func TestRequestIDsAndLogging(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(Options{Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := getBody(t, ts, "/healthz")
	id1 := resp.Header.Get("X-Request-Id")
	if id1 == "" {
		t.Fatal("response carries no X-Request-Id")
	}
	resp, _ = getBody(t, ts, "/healthz")
	id2 := resp.Header.Get("X-Request-Id")
	if id2 == "" || id2 == id1 {
		t.Errorf("request ids are not unique: %q then %q", id1, id2)
	}

	// 404s from route handlers are logged with their real status.
	resp, _ = getBody(t, ts, "/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}

	logs := logBuf.String()
	for _, want := range []string{
		"msg=request",
		"request_id=" + id1,
		"request_id=" + id2,
		"route=/healthz",
		"route=/v1/jobs/{id}",
		"status=200",
		"status=404",
		"method=GET",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("request log lacks %q:\n%s", want, logs)
		}
	}
}

// TestLoggerNilIsQuiet: the default server records metrics and ids but
// writes no logs — the Logger tap mirrors the nil-safe discipline of the
// library's metrics and trace taps.
func TestLoggerNilIsQuiet(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := getBody(t, ts, "/healthz")
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("nil-logger server dropped request ids")
	}
}
