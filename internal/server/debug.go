package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// DebugRequestsResponse is the GET /debug/requests body: the flight
// recorder's state plus the retained request timelines.
type DebugRequestsResponse struct {
	// Enabled reports whether the flight recorder is armed
	// (-flight-recorder > 0). When false, Requests is always empty.
	Enabled bool `json:"enabled"`
	// Capacity is the ring size; Stored the timelines currently retained;
	// Total the timelines ever recorded (Total − Stored were evicted).
	Capacity int    `json:"capacity"`
	Stored   int    `json:"stored"`
	Total    uint64 `json:"total"`
	// Requests holds the selected timelines — newest first, or slowest
	// first with ?sort=slowest.
	Requests []obs.TraceSnapshot `json:"requests"`
}

// handleDebugRequests serves the flight recorder: the last N request
// timelines as JSON, à la x/net/trace. Query parameters select and order:
// ?n=K caps the returned count, ?sort=slowest orders by duration
// descending (default: newest first), ?min_ms=D drops requests faster
// than D milliseconds. The endpoint itself is never recorded.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	snaps := s.rec.Snapshots()
	stored := len(snaps)
	if v := q.Get("min_ms"); v != "" {
		minMS, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid min_ms %q", v))
			return
		}
		kept := snaps[:0]
		for _, sn := range snaps {
			if sn.DurationSeconds*1e3 >= minMS {
				kept = append(kept, sn)
			}
		}
		snaps = kept
	}
	switch q.Get("sort") {
	case "", "newest":
		// Snapshots() is already newest first.
	case "slowest":
		sort.SliceStable(snaps, func(i, j int) bool {
			return snaps[i].DurationSeconds > snaps[j].DurationSeconds
		})
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("invalid sort %q (want newest or slowest)", q.Get("sort")))
		return
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", v))
			return
		}
		if n < len(snaps) {
			snaps = snaps[:n]
		}
	}
	if snaps == nil {
		snaps = []obs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, DebugRequestsResponse{
		Enabled:  s.rec.Enabled(),
		Capacity: s.rec.Capacity(),
		Stored:   stored,
		Total:    s.rec.Total(),
		Requests: snaps,
	})
}
