package scache

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats is a point-in-time copy of a cache's counters. Hits include
// single-flight coalesced waiters — calls that returned a value without
// executing the function.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Cache is a bounded LRU with single-flight execution. The zero value is
// not usable; construct with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight[V]
	hits     uint64
	misses   uint64
	evicted  uint64
}

// entry is one resident cache line.
type entry[V any] struct {
	key string
	val V
}

// flight is one in-progress execution; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns an empty cache bounded to capacity entries (capacity < 1 is
// clamped to 1 — a cache that cannot hold anything cannot deduplicate
// anything either).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
	}
}

// Outcome classifies how one Do/DoOutcome call was resolved. Request
// tracing uses it to attribute the cache phase: a resident hit and a
// single-flight wait both report cached=true but spend time very
// differently.
type Outcome int

const (
	// OutcomeMiss: this call executed fn.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the value was resident; no wait, no execution.
	OutcomeHit
	// OutcomeJoined: the call coalesced onto another caller's in-flight
	// execution and blocked until it settled.
	OutcomeJoined
)

// Do returns the cached value for key, or executes fn exactly once to
// produce it. Concurrent Do calls with the same key coalesce: one caller
// executes, the rest block until it finishes and share its value or error.
// cached reports whether this call avoided executing fn (resident hit or
// coalesced wait). Successful values are inserted at the LRU front;
// errors are returned to all coalesced callers but never cached.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (val V, err error, cached bool) {
	val, err, outcome := c.DoOutcome(key, fn)
	return val, err, outcome != OutcomeMiss
}

// DoOutcome is Do with the resolution classified: OutcomeHit (resident),
// OutcomeJoined (coalesced onto an in-flight execution), or OutcomeMiss
// (this call executed fn).
func (c *Cache[V]) DoOutcome(key string, fn func() (V, error)) (val V, err error, outcome Outcome) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val = el.Value.(*entry[V]).val
		c.mu.Unlock()
		return val, nil, OutcomeHit
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.val, f.err, OutcomeJoined
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// Settle in a defer so a panicking fn still releases its waiters
	// (with an error) instead of deadlocking them, then re-panics.
	settled := false
	defer func() {
		if !settled {
			f.err = fmt.Errorf("scache: execution for %q panicked", key)
			c.settle(key, f, false)
		}
	}()
	f.val, f.err = fn()
	settled = true
	c.settle(key, f, f.err == nil)
	return f.val, f.err, OutcomeMiss
}

// settle retires a flight: removes it from the in-flight table, optionally
// caches its value, and releases the waiters. A value that became resident
// while the flight was executing — a direct Put, or a newer flight for the
// same key that both started and settled after this one missed — is fresher
// than the flight's result, so settle must not clobber it; the flight's
// value still goes to its own waiters.
func (c *Cache[V]) settle(key string, f *flight[V], store bool) {
	c.mu.Lock()
	delete(c.inflight, key)
	if store {
		if _, resident := c.items[key]; !resident {
			c.putLocked(key, f.val)
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// Get returns the resident value for key, counting a hit or miss. It does
// not join in-flight executions — callers that want coalescing use Do.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the resident value for key without touching the LRU order
// or the hit/miss counters. It exists for the cluster cache-probe route:
// sibling daemons sweeping the fleet for a fill must not promote entries
// their own traffic never earned, nor skew the hit ratio operators watch.
func (c *Cache[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes a value at the LRU front.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

// putLocked inserts under c.mu, evicting from the LRU tail when full.
func (c *Cache[V]) putLocked(key string, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evicted++
	}
}

// Len reports the resident entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats copies the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: c.ll.Len()}
}
