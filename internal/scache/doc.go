// Package scache provides the scenario result cache behind rbcastd: a
// bounded LRU keyed by canonical scenario fingerprint, with single-flight
// deduplication so concurrent identical requests execute the underlying
// simulation exactly once.
//
// The cache is value-generic rather than tied to rbcast.Result so the
// serving layer can cache derived artifacts (sweep tables, analysis rows)
// under the same policy. Errors are never cached: a failing execution is
// reported to every coalesced waiter and then forgotten, so a transient
// failure cannot poison a fingerprint.
package scache
