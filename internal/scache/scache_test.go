package scache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesValues(t *testing.T) {
	c := New[int](4)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	v, err, cached := c.Do("k", fn)
	if v != 42 || err != nil || cached {
		t.Fatalf("first Do = (%d, %v, %t)", v, err, cached)
	}
	v, err, cached = c.Do("k", fn)
	if v != 42 || err != nil || !cached {
		t.Fatalf("second Do = (%d, %v, %t)", v, err, cached)
	}
	if calls != 1 {
		t.Errorf("fn executed %d times", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	calls := 0
	_, err, _ := c.Do("k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err, cached := c.Do("k", func() (int, error) { calls++; return 7, nil })
	if v != 7 || err != nil || cached {
		t.Fatalf("retry after error = (%d, %v, %t)", v, err, cached)
	}
	if calls != 2 {
		t.Errorf("fn executed %d times, want 2 (errors must not be cached)", calls)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries", c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes the eviction victim
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not a second entry
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a = %d after refresh", v)
	}
	c.Put("c", 3) // "b" is LRU now
	if _, ok := c.Get("b"); ok {
		t.Error("refresh did not move a to the front")
	}
}

func TestCapacityClamp(t *testing.T) {
	c := New[int](-3)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1 (capacity clamped)", c.Len())
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	c := New[int](4)
	const waiters = 16
	var calls atomic.Int32
	gate := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, waiters)
	cachedCount := atomic.Int32{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, cached := c.Do("k", func() (int, error) {
				close(entered)
				<-gate
				calls.Add(1)
				return 99, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if cached {
				cachedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	<-entered // the executor is inside fn; the rest must coalesce
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn executed %d times under %d concurrent calls", got, waiters)
	}
	for i, v := range results {
		if v != 99 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
	if got := cachedCount.Load(); got != waiters-1 {
		// Every non-executor either coalesced or (if it arrived after
		// settle) hit the cache; both report cached=true.
		t.Errorf("%d callers reported cached, want %d", got, waiters-1)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != waiters-1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPanickingExecutionReleasesWaiters(t *testing.T) {
	c := New[int](4)
	defer func() {
		if recover() == nil {
			t.Error("panic must propagate to the executor")
		}
		// Waiters must have been released with an error, and the key must
		// be retryable.
		v, err, cached := c.Do("k", func() (int, error) { return 5, nil })
		if v != 5 || err != nil || cached {
			t.Errorf("retry after panic = (%d, %v, %t)", v, err, cached)
		}
	}()
	c.Do("k", func() (int, error) { panic("kaboom") })
}

func TestConcurrentMixedOperations(t *testing.T) {
	c := New[string](8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%13)
				switch i % 3 {
				case 0:
					c.Do(key, func() (string, error) { return key, nil })
				case 1:
					if v, ok := c.Get(key); ok && v != key {
						t.Errorf("corrupted value %q for %q", v, key)
					}
				default:
					c.Put(key, key)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Errorf("capacity exceeded: %d", n)
	}
}

// TestSettleDoesNotClobberFresherValue pins the settle/Put race: a Put (or
// a newer completed flight) that lands while a flight is still executing is
// fresher than the flight's result, so the flight settling must not
// overwrite it. The flight's own caller still receives the flight's value —
// only the cache content is at stake.
func TestSettleDoesNotClobberFresherValue(t *testing.T) {
	c := New[string](4)
	executing := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	var flightVal string
	go func() {
		defer close(done)
		v, err, cached := c.Do("k", func() (string, error) {
			close(executing)
			<-release
			return "stale", nil
		})
		if err != nil || cached {
			t.Errorf("Do = (%q, %v, %t), want fresh execution", v, err, cached)
		}
		flightVal = v
	}()
	<-executing
	// The flight is mid-execution: a direct Put makes a fresher value
	// resident for the same key.
	c.Put("k", "fresh")
	close(release)
	<-done
	if flightVal != "stale" {
		t.Errorf("flight caller got %q, want its own result \"stale\"", flightVal)
	}
	if v, ok := c.Get("k"); !ok || v != "fresh" {
		t.Errorf("cache holds (%q, %t) after settle, want the fresher \"fresh\" — settle clobbered a resident entry", v, ok)
	}
}

// TestSettleStoresWhenNothingFresherExists is the non-racy complement: with
// no competing write, the settling flight's value becomes resident.
func TestSettleStoresWhenNothingFresherExists(t *testing.T) {
	c := New[int](4)
	if v, err, _ := c.Do("k", func() (int, error) { return 7, nil }); v != 7 || err != nil {
		t.Fatalf("Do = (%d, %v)", v, err)
	}
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Errorf("cache holds (%d, %t), want the settled 7", v, ok)
	}
}

// TestPeekDoesNotPerturb: Peek sees resident values but never touches the
// LRU order or the counters — a fleet of sibling probes must not evict or
// promote entries the local traffic did not earn.
func TestPeekDoesNotPerturb(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2) // LRU order: b (front), a (back)
	if v, ok := c.Peek("a"); !ok || v != 1 {
		t.Fatalf("Peek(a) = (%d, %t), want (1, true)", v, ok)
	}
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("Peek(missing) reported a resident value")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved the counters: %+v", st)
	}
	// If Peek had promoted "a", this Put would evict "b"; unperturbed LRU
	// evicts "a".
	c.Put("c", 3)
	if _, ok := c.Peek("b"); !ok {
		t.Fatal("Peek promoted its key: \"b\" was evicted instead of \"a\"")
	}
	if _, ok := c.Peek("a"); ok {
		t.Fatal("\"a\" survived eviction — Peek changed the LRU order")
	}
}
