package paths

import (
	"fmt"

	"repro/internal/grid"
)

// CornerP returns the worst-case fringe node P = (a−r, b+r+1) used
// throughout the proof of Theorem 1 (Fig 1).
func CornerP(c grid.Coord, r int) grid.Coord {
	return grid.C(c.X-r, c.Y+r+1)
}

// NbdCenterU returns the center of the single neighborhood containing all
// U-family paths: (a, b+r+1) (Fig 5).
func NbdCenterU(c grid.Coord, r int) grid.Coord {
	return grid.C(c.X, c.Y+r+1)
}

// NbdCenterS1 returns the center of the single neighborhood containing all
// S1-family paths: (a−r, b+1) (Fig 6).
func NbdCenterS1(c grid.Coord, r int) grid.Coord {
	return grid.C(c.X-r, c.Y+1)
}

// RegionM enumerates the region M = {(a−r+p, b−r+q) | 2r ≥ q > p ≥ 0} of
// Fig 1: the r(2r+1) nodes of nbd(a,b) whose committed values P can reliably
// determine.
func RegionM(c grid.Coord, r int) []grid.Coord {
	var out []grid.Coord
	for q := 0; q <= 2*r; q++ {
		for p := 0; p < q; p++ {
			out = append(out, grid.C(c.X-r+p, c.Y-r+q))
		}
	}
	grid.SortCoords(out)
	return out
}

// RegionR returns the rectangle R = [a−r..a] × [b+1..b+r] of Fig 2: the
// r(r+1) nodes of M that P hears directly.
func RegionR(c grid.Coord, r int) grid.Rect {
	return grid.RectSpan(c.X-r, c.X, c.Y+1, c.Y+r)
}

// RegionU enumerates the upper-triangular region U = {(a+p, b+q) |
// r ≥ q > p ≥ 1} of Fig 3, containing ½r(r−1) nodes.
func RegionU(c grid.Coord, r int) []grid.Coord {
	var out []grid.Coord
	for q := 1; q <= r; q++ {
		for p := 1; p < q; p++ {
			out = append(out, grid.C(c.X+p, c.Y+q))
		}
	}
	grid.SortCoords(out)
	return out
}

// RegionS1 enumerates S1 = {(a−r, b−p) | 0 ≤ p ≤ r−1} of Fig 3 (r nodes).
func RegionS1(c grid.Coord, r int) []grid.Coord {
	out := make([]grid.Coord, 0, r)
	for p := 0; p <= r-1; p++ {
		out = append(out, grid.C(c.X-r, c.Y-p))
	}
	grid.SortCoords(out)
	return out
}

// RegionS2 enumerates S2 = {(a−q, b−p) | r−1 ≥ q > p ≥ 0} of Fig 3
// (½r(r−1) nodes).
func RegionS2(c grid.Coord, r int) []grid.Coord {
	var out []grid.Coord
	for q := 0; q <= r-1; q++ {
		for p := 0; p < q; p++ {
			out = append(out, grid.C(c.X-q, c.Y-p))
		}
	}
	grid.SortCoords(out)
	return out
}

// TableIRegions holds the spatial extents of the construction regions
// exactly as tabulated in Table I of the paper. The A–D rows are
// parameterized by the U-region node N = (a+p, b+q); the J/K rows by the
// S1-region node N = (a−r, b−p).
type TableIRegions struct {
	A  grid.Rect
	B1 grid.Rect
	B2 grid.Rect
	C1 grid.Rect
	C2 grid.Rect
	D1 grid.Rect
	D2 grid.Rect
	D3 grid.Rect
	J  grid.Rect
	K1 grid.Rect
	K2 grid.Rect
}

// TableI materializes Table I for center (a,b) = c, radius r and region
// parameters p, q. Callers working with U-family rows must satisfy
// r ≥ q > p ≥ 1; the J/K rows only use p (with 0 ≤ p ≤ r−1).
func TableI(c grid.Coord, r, p, q int) TableIRegions {
	a, b := c.X, c.Y
	return TableIRegions{
		A:  grid.RectSpan(a+p-r, a, b+1, b+q+r),
		B1: grid.RectSpan(a+1, a+p-1, b+1, b+q+r),
		B2: grid.RectSpan(a+1-r, a+p-1-r, b+1, b+q+r),
		C1: grid.RectSpan(a+p+1, a+r, b+q+1, b+r+1),
		C2: grid.RectSpan(a+p+1-r, a, b+q+1+r, b+1+2*r),
		D1: grid.RectSpan(a+p, a+p+r-q, b+r+q-p+1, b+r+q),
		D2: grid.RectSpan(a+1, a+p, b+1+r+q, b+1+2*r),
		D3: grid.RectSpan(a+1-r, a+p-r, b+1+r+q, b+1+2*r),
		J:  grid.RectSpan(a-2*r, a, b+1, b-p+r),
		K1: grid.RectSpan(a-2*r, a, b-p+1, b),
		K2: grid.RectSpan(a-2*r, a, b-p+r+1, b+r),
	}
}

// CheckTableICounts verifies the cardinality identities that make the
// construction work: |A|+|B1|+|C1|+|D1| = r(2r+1) with |B1|=|B2|,
// |C1|=|C2|, |D1|=|D2|=|D3|; and |J|+|K1| = r(2r+1) with |K1|=|K2|.
// It returns an error naming the first failed identity.
func CheckTableICounts(c grid.Coord, r, p, q int) error {
	tr := TableI(c, r, p, q)
	want := r * (2*r + 1)
	if got := tr.A.Count() + tr.B1.Count() + tr.C1.Count() + tr.D1.Count(); got != want {
		return fmt.Errorf("paths: |A|+|B1|+|C1|+|D1| = %d, want %d (r=%d p=%d q=%d)", got, want, r, p, q)
	}
	if tr.B1.Count() != tr.B2.Count() {
		return fmt.Errorf("paths: |B1|=%d but |B2|=%d", tr.B1.Count(), tr.B2.Count())
	}
	if tr.C1.Count() != tr.C2.Count() {
		return fmt.Errorf("paths: |C1|=%d but |C2|=%d", tr.C1.Count(), tr.C2.Count())
	}
	if tr.D1.Count() != tr.D2.Count() || tr.D2.Count() != tr.D3.Count() {
		return fmt.Errorf("paths: |D1|=%d |D2|=%d |D3|=%d differ", tr.D1.Count(), tr.D2.Count(), tr.D3.Count())
	}
	if got := tr.J.Count() + tr.K1.Count(); got != want {
		return fmt.Errorf("paths: |J|+|K1| = %d, want %d (r=%d p=%d)", got, want, r, p)
	}
	if tr.K1.Count() != tr.K2.Count() {
		return fmt.Errorf("paths: |K1|=%d but |K2|=%d", tr.K1.Count(), tr.K2.Count())
	}
	return nil
}
