package paths

import (
	"fmt"

	"repro/internal/grid"
)

// MaxIntermediates is the relay budget of the 4-hop protocol: HEARD reports
// carry at most three relayers, so evidence paths have at most four edges.
const MaxIntermediates = 3

// VerifyFamily checks every property the completeness proof requires of a
// path family:
//
//  1. every path runs from fam.N to fam.P;
//  2. consecutive path nodes are L∞ neighbors at radius r;
//  3. paths have at most MaxIntermediates intermediates;
//  4. intermediates are pairwise distinct across the whole family and never
//     equal to N or P (internal node-disjointness);
//  5. every node of every path (including N and P) lies in the closed
//     radius-r neighborhood of fam.Center.
//
// A nil error means the family is valid evidence for the commit rule.
func VerifyFamily(r int, fam Family) error {
	seen := grid.NewCoordSet()
	for i, path := range fam.Paths {
		if len(path) < 2 {
			return fmt.Errorf("paths: path %d too short (%d nodes)", i, len(path))
		}
		if path[0] != fam.N {
			return fmt.Errorf("paths: path %d starts at %v, want N=%v", i, path[0], fam.N)
		}
		if path[len(path)-1] != fam.P {
			return fmt.Errorf("paths: path %d ends at %v, want P=%v", i, path[len(path)-1], fam.P)
		}
		if inter := len(path) - 2; inter > MaxIntermediates {
			return fmt.Errorf("paths: path %d has %d intermediates, max %d", i, inter, MaxIntermediates)
		}
		for j := 1; j < len(path); j++ {
			if !grid.Linf.Neighbors(path[j-1], path[j], r) {
				return fmt.Errorf("paths: path %d hop %v→%v is not a radio link at r=%d",
					i, path[j-1], path[j], r)
			}
		}
		for _, x := range path[1 : len(path)-1] {
			if x == fam.N || x == fam.P {
				return fmt.Errorf("paths: path %d revisits endpoint %v", i, x)
			}
			if seen.Has(x) {
				return fmt.Errorf("paths: intermediate %v shared between paths", x)
			}
			seen.Add(x)
		}
		for _, x := range path {
			if grid.DistLinf(x, fam.Center) > r {
				return fmt.Errorf("paths: node %v of path %d outside nbd(%v) at r=%d",
					x, i, fam.Center, r)
			}
		}
	}
	return nil
}

// VerifyCornerConstruction runs the full Theorem 1 check for the worst-case
// corner node P: region M decomposes exactly into R ⊎ U ⊎ S1 ⊎ S2; P hears
// every node of R directly; and every node of U, S1 and S2 has a valid
// family of exactly r(2r+1) node-disjoint paths. It returns the total
// number of M-nodes whose committed value P can reliably determine.
func VerifyCornerConstruction(c grid.Coord, r int) (int, error) {
	m := RegionM(c, r)
	want := r * (2*r + 1)
	if len(m) != want {
		return 0, fmt.Errorf("paths: |M| = %d, want %d", len(m), want)
	}

	// Decomposition check.
	mset := grid.NewCoordSet(m...)
	parts := make(grid.CoordSet, len(m))
	addPart := func(name string, cs []grid.Coord) error {
		for _, x := range cs {
			if !mset.Has(x) {
				return fmt.Errorf("paths: %s node %v not in M", name, x)
			}
			if parts.Has(x) {
				return fmt.Errorf("paths: %s node %v double-covered", name, x)
			}
			parts.Add(x)
		}
		return nil
	}
	if err := addPart("R", RegionR(c, r).Points()); err != nil {
		return 0, err
	}
	if err := addPart("U", RegionU(c, r)); err != nil {
		return 0, err
	}
	if err := addPart("S1", RegionS1(c, r)); err != nil {
		return 0, err
	}
	if err := addPart("S2", RegionS2(c, r)); err != nil {
		return 0, err
	}
	if len(parts) != len(m) {
		return 0, fmt.Errorf("paths: decomposition covers %d of %d M-nodes", len(parts), len(m))
	}

	// Direct hearing for R.
	p := CornerP(c, r)
	determined := 0
	for _, x := range RegionR(c, r).Points() {
		if grid.DistLinf(x, p) > r {
			return 0, fmt.Errorf("paths: R node %v not directly heard by P=%v", x, p)
		}
		determined++
	}

	// Families for U, S1, S2.
	for _, n := range append(append(append([]grid.Coord{}, RegionU(c, r)...), RegionS1(c, r)...), RegionS2(c, r)...) {
		fam, err := FamilyFor(c, r, n)
		if err != nil {
			return 0, err
		}
		if len(fam.Paths) != want {
			return 0, fmt.Errorf("paths: node %v has %d paths, want %d", n, len(fam.Paths), want)
		}
		if err := VerifyFamily(r, fam); err != nil {
			return 0, fmt.Errorf("paths: node %v: %w", n, err)
		}
		determined++
	}
	return determined, nil
}

// ArbitraryPReport summarizes the §VI-A argument for a shifted fringe node
// P_l = (a−r+l, b+r+1).
type ArbitraryPReport struct {
	L int
	// Direct is the number of nbd(a,b) nodes P_l hears directly
	// (paper: r(r+l+1)).
	Direct int
	// ViaPaths is the number of additional nbd(a,b) nodes reached through
	// valid translated path families.
	ViaPaths int
	// Lost counts base-construction nodes whose translate left nbd(a,b)
	// (paper: ½l(l−1)).
	Lost int
}

// Total returns the count of nbd(a,b) nodes P_l can reliably determine.
func (rep ArbitraryPReport) Total() int { return rep.Direct + rep.ViaPaths }

// VerifyArbitraryP checks §VI-A (Fig 7) for one l in [0..r]: the construction
// for the corner P translates right by l; the direct region grows to
// r(r+l+1) nodes while ½l(l−1) path-connected nodes are lost, leaving at
// least r(2r+1) determinable nodes. Every surviving translated family is
// re-verified node by node.
func VerifyArbitraryP(c grid.Coord, r, l int) (ArbitraryPReport, error) {
	if l < 0 || l > r {
		return ArbitraryPReport{}, fmt.Errorf("paths: l must be in [0,%d], got %d", r, l)
	}
	rep := ArbitraryPReport{L: l}
	shift := grid.C(l, 0)
	pl := CornerP(c, r).Add(shift)
	nbd := grid.NbdRect(c, r)

	// Direct region: nodes of nbd(a,b) heard directly by P_l.
	for _, x := range nbd.Points() {
		if grid.DistLinf(x, pl) <= r {
			rep.Direct++
		}
	}
	if want := r * (r + l + 1); rep.Direct != want {
		return rep, fmt.Errorf("paths: direct count %d, want r(r+l+1) = %d", rep.Direct, want)
	}

	// Translated families for U, S1, S2 nodes that remain in nbd(a,b).
	base := append(append(append([]grid.Coord{}, RegionU(c, r)...), RegionS1(c, r)...), RegionS2(c, r)...)
	for _, n := range base {
		nt := n.Add(shift)
		if !nbd.Contains(nt) {
			rep.Lost++
			continue
		}
		fam, err := FamilyFor(c, r, n)
		if err != nil {
			return rep, err
		}
		tfam := translateFamily(fam, shift)
		if err := VerifyFamily(r, tfam); err != nil {
			return rep, fmt.Errorf("paths: l=%d node %v: %w", l, nt, err)
		}
		rep.ViaPaths++
	}
	if wantLost := l * (l - 1) / 2; rep.Lost != wantLost {
		return rep, fmt.Errorf("paths: lost %d nodes, want ½l(l−1) = %d", rep.Lost, wantLost)
	}
	if rep.Total() < r*(2*r+1) {
		return rep, fmt.Errorf("paths: only %d determinable nodes, need ≥ %d", rep.Total(), r*(2*r+1))
	}
	return rep, nil
}

// translateFamily shifts every coordinate of a family by d.
func translateFamily(fam Family, d grid.Coord) Family {
	out := Family{
		N:      fam.N.Add(d),
		P:      fam.P.Add(d),
		Center: fam.Center.Add(d),
		Paths:  make([]Path, len(fam.Paths)),
	}
	for i, path := range fam.Paths {
		tp := make(Path, len(path))
		for j, x := range path {
			tp[j] = x.Add(d)
		}
		out.Paths[i] = tp
	}
	return out
}
