// Package paths implements the explicit geometric constructions at the core
// of Theorem 1's completeness proof (§VI, Figs 1-7 and Table I): the regions
// M, R, U, S1, S2 around a neighborhood nbd(a,b), and for each node N in
// those regions, the family of r(2r+1) node-disjoint N→P paths that lie
// entirely inside one single neighborhood. These constructions are the
// evidence plan the protocol relies on, and the experiments verify them
// computationally for every node and every r.
//
// Everything here is in the infinite-grid L∞ world; (a,b) denotes the center
// of the already-committed neighborhood and P the newly-reached node of
// pnbd(a,b) − nbd(a,b) (worst case: the corner (a−r, b+r+1)).
package paths
