package paths

import (
	"testing"

	"repro/internal/grid"
)

var center = grid.C(0, 0)

func TestRegionMCount(t *testing.T) {
	for r := 1; r <= 8; r++ {
		m := RegionM(center, r)
		if want := r * (2*r + 1); len(m) != want {
			t.Errorf("r=%d: |M| = %d, want %d", r, len(m), want)
		}
		// All of M lies inside nbd(0,0).
		for _, x := range m {
			if grid.DistLinf(x, center) > r {
				t.Errorf("r=%d: M node %v outside nbd", r, x)
			}
		}
	}
}

func TestRegionCounts(t *testing.T) {
	for r := 1; r <= 8; r++ {
		if got, want := RegionR(center, r).Count(), r*(r+1); got != want {
			t.Errorf("r=%d: |R| = %d, want %d", r, got, want)
		}
		if got, want := len(RegionU(center, r)), r*(r-1)/2; got != want {
			t.Errorf("r=%d: |U| = %d, want %d", r, got, want)
		}
		if got, want := len(RegionS1(center, r)), r; got != want {
			t.Errorf("r=%d: |S1| = %d, want %d", r, got, want)
		}
		if got, want := len(RegionS2(center, r)), r*(r-1)/2; got != want {
			t.Errorf("r=%d: |S2| = %d, want %d", r, got, want)
		}
	}
}

func TestTableICounts(t *testing.T) {
	for r := 1; r <= 8; r++ {
		for q := 1; q <= r; q++ {
			for p := 1; p < q; p++ {
				if err := CheckTableICounts(center, r, p, q); err != nil {
					t.Errorf("r=%d p=%d q=%d: %v", r, p, q, err)
				}
			}
		}
	}
}

func TestTableIExpectedFormulas(t *testing.T) {
	// Spot-check the counts derived in the proof: |A| = (r−p+1)(r+q),
	// |B1| = (p−1)(r+q), |C1| = (r−p)(r−q+1), |D1| = p(r−q+1),
	// |J| = (r−p)(2r+1), |K1| = p(2r+1).
	for r := 2; r <= 6; r++ {
		for q := 1; q <= r; q++ {
			for p := 1; p < q; p++ {
				tr := TableI(center, r, p, q)
				checks := []struct {
					name string
					got  int
					want int
				}{
					{"A", tr.A.Count(), (r - p + 1) * (r + q)},
					{"B1", tr.B1.Count(), (p - 1) * (r + q)},
					{"C1", tr.C1.Count(), (r - p) * (r - q + 1)},
					{"D1", tr.D1.Count(), p * (r - q + 1)},
					{"J", tr.J.Count(), (r - p) * (2*r + 1)},
					{"K1", tr.K1.Count(), p * (2*r + 1)},
				}
				for _, ck := range checks {
					if ck.got != ck.want {
						t.Errorf("r=%d p=%d q=%d: |%s| = %d, want %d", r, p, q, ck.name, ck.got, ck.want)
					}
				}
			}
		}
	}
}

func TestFamilyUValidation(t *testing.T) {
	if _, err := FamilyU(center, 3, 2, 2); err == nil {
		t.Error("q must exceed p")
	}
	if _, err := FamilyU(center, 3, 0, 1); err == nil {
		t.Error("p must be ≥ 1")
	}
	if _, err := FamilyU(center, 3, 2, 4); err == nil {
		t.Error("q must be ≤ r")
	}
}

func TestFamilyS1Validation(t *testing.T) {
	if _, err := FamilyS1(center, 3, 3); err == nil {
		t.Error("p must be ≤ r−1")
	}
	if _, err := FamilyS1(center, 3, -1); err == nil {
		t.Error("p must be ≥ 0")
	}
}

func TestFamilyS2Validation(t *testing.T) {
	if _, err := FamilyS2(center, 3, 1, 1); err == nil {
		t.Error("q must exceed p")
	}
	if _, err := FamilyS2(center, 3, 1, 3); err == nil {
		t.Error("q must be ≤ r−1")
	}
}

func TestFamilyUWorstCase(t *testing.T) {
	// Every U node at every radius yields exactly r(2r+1) disjoint paths.
	for r := 2; r <= 6; r++ {
		for q := 1; q <= r; q++ {
			for p := 1; p < q; p++ {
				fam, err := FamilyU(center, r, p, q)
				if err != nil {
					t.Fatalf("r=%d p=%d q=%d: %v", r, p, q, err)
				}
				if want := r * (2*r + 1); len(fam.Paths) != want {
					t.Errorf("r=%d p=%d q=%d: %d paths, want %d", r, p, q, len(fam.Paths), want)
				}
				if err := VerifyFamily(r, fam); err != nil {
					t.Errorf("r=%d p=%d q=%d: %v", r, p, q, err)
				}
			}
		}
	}
}

func TestFamilyS1AllPositions(t *testing.T) {
	for r := 1; r <= 6; r++ {
		for p := 0; p <= r-1; p++ {
			fam, err := FamilyS1(center, r, p)
			if err != nil {
				t.Fatalf("r=%d p=%d: %v", r, p, err)
			}
			if want := r * (2*r + 1); len(fam.Paths) != want {
				t.Errorf("r=%d p=%d: %d paths, want %d", r, p, len(fam.Paths), want)
			}
			if err := VerifyFamily(r, fam); err != nil {
				t.Errorf("r=%d p=%d: %v", r, p, err)
			}
		}
	}
}

func TestFamilyS2AllPositions(t *testing.T) {
	for r := 2; r <= 6; r++ {
		for q := 1; q <= r-1; q++ {
			for p := 0; p < q; p++ {
				fam, err := FamilyS2(center, r, p, q)
				if err != nil {
					t.Fatalf("r=%d p=%d q=%d: %v", r, p, q, err)
				}
				if want := r * (2*r + 1); len(fam.Paths) != want {
					t.Errorf("r=%d p=%d q=%d: %d paths, want %d", r, p, q, len(fam.Paths), want)
				}
				if err := VerifyFamily(r, fam); err != nil {
					t.Errorf("r=%d p=%d q=%d: %v", r, p, q, err)
				}
			}
		}
	}
}

func TestVerifyCornerConstruction(t *testing.T) {
	// The full Theorem 1 completeness check (E02-E06) for r up to 6.
	for r := 1; r <= 6; r++ {
		n, err := VerifyCornerConstruction(center, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if want := r * (2*r + 1); n != want {
			t.Errorf("r=%d: determined %d nodes, want %d", r, n, want)
		}
	}
}

func TestVerifyCornerConstructionTranslationInvariant(t *testing.T) {
	// The construction must work at any grid location, not just the origin.
	for _, c := range []grid.Coord{grid.C(17, -9), grid.C(-100, 42)} {
		if _, err := VerifyCornerConstruction(c, 3); err != nil {
			t.Errorf("center %v: %v", c, err)
		}
	}
}

func TestVerifyArbitraryP(t *testing.T) {
	// §VI-A (E07): for every shift l the determinable count stays ≥ r(2r+1).
	for r := 1; r <= 5; r++ {
		for l := 0; l <= r; l++ {
			rep, err := VerifyArbitraryP(center, r, l)
			if err != nil {
				t.Fatalf("r=%d l=%d: %v", r, l, err)
			}
			if rep.Total() < r*(2*r+1) {
				t.Errorf("r=%d l=%d: total %d < r(2r+1)", r, l, rep.Total())
			}
			if rep.Direct != r*(r+l+1) {
				t.Errorf("r=%d l=%d: direct %d, want %d", r, l, rep.Direct, r*(r+l+1))
			}
			if rep.Lost != l*(l-1)/2 {
				t.Errorf("r=%d l=%d: lost %d, want %d", r, l, rep.Lost, l*(l-1)/2)
			}
		}
	}
	if _, err := VerifyArbitraryP(center, 3, 4); err == nil {
		t.Error("l > r must be rejected")
	}
}

func TestFamilyForDispatch(t *testing.T) {
	r := 4
	// A direct node returns an empty family.
	fam, err := FamilyFor(center, r, grid.C(-2, 2))
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if len(fam.Paths) != 0 {
		t.Error("direct node must have no paths")
	}
	// One representative per region.
	for _, n := range []grid.Coord{grid.C(1, 2), grid.C(-r, -1), grid.C(-2, -1)} {
		fam, err := FamilyFor(center, r, n)
		if err != nil {
			t.Fatalf("node %v: %v", n, err)
		}
		if fam.N != n {
			t.Errorf("node %v: family.N = %v", n, fam.N)
		}
		if len(fam.Paths) != r*(2*r+1) {
			t.Errorf("node %v: %d paths", n, len(fam.Paths))
		}
	}
	// A node outside M is rejected.
	if _, err := FamilyFor(center, r, grid.C(r, 0)); err == nil {
		t.Error("node outside M must be rejected")
	}
}

func TestVerifyFamilyDetectsViolations(t *testing.T) {
	r := 3
	good, err := FamilyU(center, r, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong endpoint.
	bad := good
	bad.Paths = append([]Path{}, good.Paths...)
	bad.Paths[0] = Path{grid.C(9, 9), bad.Paths[0][1], bad.P}
	if VerifyFamily(r, bad) == nil {
		t.Error("wrong start endpoint must fail")
	}
	// Shared intermediate.
	bad2 := good
	bad2.Paths = append([]Path{}, good.Paths...)
	bad2.Paths = append(bad2.Paths, bad2.Paths[0])
	if VerifyFamily(r, bad2) == nil {
		t.Error("duplicated path must fail disjointness")
	}
	// Node outside neighborhood.
	bad3 := good
	bad3.Center = grid.C(50, 50)
	if VerifyFamily(r, bad3) == nil {
		t.Error("containment violation must fail")
	}
	// Non-adjacent hop.
	bad4 := good
	bad4.Paths = []Path{{good.N, good.N.Add(grid.C(2*r, 0)), good.P}}
	if VerifyFamily(r, bad4) == nil {
		t.Error("non-adjacent hop must fail")
	}
	// Too many intermediates.
	longPath := Path{good.N}
	for i := 0; i < MaxIntermediates+1; i++ {
		longPath = append(longPath, good.N.Add(grid.C(0, i+1)))
	}
	longPath = append(longPath, good.P)
	bad5 := Family{N: good.N, P: good.P, Center: good.Center, Paths: []Path{longPath}}
	if VerifyFamily(r, bad5) == nil {
		t.Error("too-long path must fail")
	}
}

func TestCheckTableICountsDetectsMismatch(t *testing.T) {
	// Valid parameter sets pass; the error branches are exercised through
	// deliberately inconsistent parameters (q > r breaks the A+B+C+D sum).
	if err := CheckTableICounts(center, 3, 1, 2); err != nil {
		t.Errorf("valid parameters: %v", err)
	}
	if err := CheckTableICounts(center, 2, 1, 5); err == nil {
		t.Error("q > r must break the identity")
	}
}

func TestVerifyCornerConstructionBadInputs(t *testing.T) {
	// r = 0 yields an empty M; the decomposition trivially holds with 0
	// determined nodes.
	n, err := VerifyCornerConstruction(center, 0)
	if err != nil || n != 0 {
		t.Errorf("r=0: n=%d err=%v", n, err)
	}
}
