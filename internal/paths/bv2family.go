package paths

import (
	"fmt"

	"repro/internal/grid"
)

// BV2Chain is one evidence chain of the two-hop protocol (§VI-B): an
// already-committed origin N in nbd(a,b), heard by P either directly or
// through exactly one relay.
type BV2Chain struct {
	// N is the committed origin.
	N grid.Coord
	// Relay is the single intermediate; Direct chains have none.
	Relay grid.Coord
	// Direct marks a relay-free chain (P hears N itself).
	Direct bool
}

// BV2Family is the §VI-B sufficiency structure: r(2r+1) = 2t+1 (at the
// threshold) chains from nodes of nbd(a,b) to the fringe node P that are
// collectively node-disjoint — origins and relays all distinct — and lie,
// endpoints and intermediates alike, inside one single closed neighborhood.
type BV2Family struct {
	// P is the receiving fringe node.
	P grid.Coord
	// Center is the single neighborhood containing every chain node.
	Center grid.Coord
	// Chains are collectively node-disjoint.
	Chains []BV2Chain
}

// BuildBV2Family constructs the explicit family for the worst-case corner
// fringe node P = (a−r, b+r+1) of nbd(a,b). The paper states the condition
// (§VI-B) but leaves the construction implicit; this is the natural one:
//
//   - the r(r+1) nodes of R = [a−r..a] × [b+1..b+r] are heard directly;
//   - each node N = (a−i, b−j) of W = [a−r..a−1] × [b−r+1..b] (r² nodes)
//     is reported by the dedicated relay w = (a−r−i, b+r−j), which is a
//     neighbor of both N and P.
//
// Everything lies inside nbd(a−r, b+1), relays occupy the strip left of R,
// and all origins and relays are pairwise distinct — so the family has
// exactly r(2r+1) collectively disjoint chains.
func BuildBV2Family(c grid.Coord, r int) (BV2Family, error) {
	if r < 1 {
		return BV2Family{}, fmt.Errorf("paths: radius must be ≥ 1, got %d", r)
	}
	a, b := c.X, c.Y
	fam := BV2Family{
		P:      CornerP(c, r),
		Center: NbdCenterS1(c, r), // (a−r, b+1)
	}
	for _, n := range RegionR(c, r).Points() {
		fam.Chains = append(fam.Chains, BV2Chain{N: n, Direct: true})
	}
	for i := 1; i <= r; i++ {
		for j := 0; j <= r-1; j++ {
			fam.Chains = append(fam.Chains, BV2Chain{
				N:     grid.C(a-i, b-j),
				Relay: grid.C(a-r-i, b+r-j),
			})
		}
	}
	return fam, nil
}

// VerifyBV2Family checks every property §VI-B requires:
//
//  1. exactly r(2r+1) chains;
//  2. every origin lies in nbd(a,b) (the already-committed neighborhood);
//  3. direct chains: P hears N; relayed chains: N–relay and relay–P are
//     radio links;
//  4. origins and relays are collectively pairwise distinct and never equal
//     to P;
//  5. every origin and relay lies in the closed neighborhood of Center.
func VerifyBV2Family(c grid.Coord, r int, fam BV2Family) error {
	if want := r * (2*r + 1); len(fam.Chains) != want {
		return fmt.Errorf("paths: %d chains, want %d", len(fam.Chains), want)
	}
	nbdAB := grid.NbdRect(c, r)
	seen := grid.NewCoordSet()
	use := func(x grid.Coord) error {
		if x == fam.P {
			return fmt.Errorf("paths: chain reuses P at %v", x)
		}
		if seen.Has(x) {
			return fmt.Errorf("paths: node %v used by two chains", x)
		}
		seen.Add(x)
		return nil
	}
	for i, ch := range fam.Chains {
		if !nbdAB.Contains(ch.N) {
			return fmt.Errorf("paths: chain %d origin %v outside nbd(a,b)", i, ch.N)
		}
		if err := use(ch.N); err != nil {
			return err
		}
		if grid.DistLinf(ch.N, fam.Center) > r {
			return fmt.Errorf("paths: chain %d origin %v outside nbd(center)", i, ch.N)
		}
		if ch.Direct {
			if !grid.Linf.Neighbors(ch.N, fam.P, r) {
				return fmt.Errorf("paths: direct chain %d: P cannot hear %v", i, ch.N)
			}
			continue
		}
		if err := use(ch.Relay); err != nil {
			return err
		}
		if grid.DistLinf(ch.Relay, fam.Center) > r {
			return fmt.Errorf("paths: chain %d relay %v outside nbd(center)", i, ch.Relay)
		}
		if !grid.Linf.Neighbors(ch.N, ch.Relay, r) {
			return fmt.Errorf("paths: chain %d: relay %v cannot hear origin %v", i, ch.Relay, ch.N)
		}
		if !grid.Linf.Neighbors(ch.Relay, fam.P, r) {
			return fmt.Errorf("paths: chain %d: P cannot hear relay %v", i, ch.Relay)
		}
	}
	return nil
}
