package paths

import (
	"fmt"

	"repro/internal/grid"
)

// Path is a node sequence from N (the already-committed node whose value P
// must reliably determine) to P, including both endpoints. Intermediate
// nodes are the HEARD-message relayers; the paper's construction uses paths
// of one to three intermediates.
type Path []grid.Coord

// Family is a set of node-disjoint N→P paths together with the center of
// the single closed neighborhood that contains every node of every path.
type Family struct {
	// N is the committed node (paths' common first element).
	N grid.Coord
	// P is the determining node (paths' common last element).
	P grid.Coord
	// Center is the neighborhood center containing all paths.
	Center grid.Coord
	// Paths are internally node-disjoint.
	Paths []Path
}

// FamilyU builds the r(2r+1) node-disjoint paths between N = (a+p, b+q) in
// region U and the corner node P, per Figs 4-5: direct-common region A plus
// the translated chains B1→B2, C1→C2 and D1→D2→D3. Requires r ≥ q > p ≥ 1.
func FamilyU(c grid.Coord, r, p, q int) (Family, error) {
	if !(r >= q && q > p && p >= 1) {
		return Family{}, fmt.Errorf("paths: FamilyU requires r ≥ q > p ≥ 1, got r=%d q=%d p=%d", r, q, p)
	}
	n := grid.C(c.X+p, c.Y+q)
	pp := CornerP(c, r)
	tr := TableI(c, r, p, q)
	fam := Family{N: n, P: pp, Center: NbdCenterU(c, r)}

	// A: one-intermediate paths through common neighbors.
	for _, x := range tr.A.Points() {
		fam.Paths = append(fam.Paths, Path{n, x, pp})
	}
	// B: (x,y) in B1 pairs with (x−r, y) in B2.
	for _, x := range tr.B1.Points() {
		fam.Paths = append(fam.Paths, Path{n, x, x.Add(grid.C(-r, 0)), pp})
	}
	// C: (x,y) in C1 pairs with (x−r, y+r) in C2.
	for _, x := range tr.C1.Points() {
		fam.Paths = append(fam.Paths, Path{n, x, x.Add(grid.C(-r, r)), pp})
	}
	// D: every node of D2 neighbors every node of D1 (max pairwise distance
	// ≤ r), so the canonical-order pairing is valid; D3 = D2 − (r, 0).
	d1 := tr.D1.Points()
	d2 := tr.D2.Points()
	if len(d1) != len(d2) {
		return Family{}, fmt.Errorf("paths: |D1|=%d != |D2|=%d", len(d1), len(d2))
	}
	for i := range d1 {
		d3 := d2[i].Add(grid.C(-r, 0))
		fam.Paths = append(fam.Paths, Path{n, d1[i], d2[i], d3, pp})
	}
	return fam, nil
}

// FamilyS1 builds the r(2r+1) node-disjoint paths between N = (a−r, b−p) in
// region S1 and the corner node P, per Fig 6: the common-neighbor region J
// plus the vertically translated chains K1→K2. Requires 0 ≤ p ≤ r−1.
func FamilyS1(c grid.Coord, r, p int) (Family, error) {
	if !(p >= 0 && p <= r-1) {
		return Family{}, fmt.Errorf("paths: FamilyS1 requires 0 ≤ p ≤ r−1, got p=%d r=%d", p, r)
	}
	n := grid.C(c.X-r, c.Y-p)
	pp := CornerP(c, r)
	tr := TableI(c, r, p, 0) // J/K rows only use p
	fam := Family{N: n, P: pp, Center: NbdCenterS1(c, r)}

	for _, x := range tr.J.Points() {
		fam.Paths = append(fam.Paths, Path{n, x, pp})
	}
	// K: (x,y) in K1 pairs with (x, y+r) in K2.
	for _, x := range tr.K1.Points() {
		fam.Paths = append(fam.Paths, Path{n, x, x.Add(grid.C(0, r)), pp})
	}
	return fam, nil
}

// FamilyS2 builds the family for N = (a−q, b−p) in region S2 (with
// r−1 ≥ q > p ≥ 0) by the axial symmetry of §VI: the S2 node corresponds to
// the U node (a+p+1, b+q+1) under the L∞ isometry that reflects offsets
// about the anti-diagonal through P ((dx,dy) ↦ (−dy,−dx)), which fixes P and
// maps the U-family neighborhood center (a, b+r+1) to (a−r, b+1).
func FamilyS2(c grid.Coord, r, p, q int) (Family, error) {
	if !(r-1 >= q && q > p && p >= 0) {
		return Family{}, fmt.Errorf("paths: FamilyS2 requires r−1 ≥ q > p ≥ 0, got r=%d q=%d p=%d", r, q, p)
	}
	uFam, err := FamilyU(c, r, p+1, q+1)
	if err != nil {
		return Family{}, fmt.Errorf("paths: FamilyS2 via U(%d,%d): %w", p+1, q+1, err)
	}
	pp := CornerP(c, r)
	reflect := func(x grid.Coord) grid.Coord {
		d := x.Sub(pp)
		return pp.Add(grid.C(-d.Y, -d.X))
	}
	fam := Family{
		N:      reflect(uFam.N),
		P:      pp,
		Center: reflect(uFam.Center),
	}
	wantN := grid.C(c.X-q, c.Y-p)
	if fam.N != wantN {
		return Family{}, fmt.Errorf("paths: reflected N = %v, want %v", fam.N, wantN)
	}
	fam.Paths = make([]Path, len(uFam.Paths))
	for i, path := range uFam.Paths {
		rp := make(Path, len(path))
		for j, x := range path {
			rp[j] = reflect(x)
		}
		fam.Paths[i] = rp
	}
	return fam, nil
}

// FamilyFor dispatches on the position of N relative to c: direct (region
// R), U, S1 or S2, returning a nil-path family with only N and P set for
// direct-hearing nodes. N must lie in region M.
func FamilyFor(c grid.Coord, r int, n grid.Coord) (Family, error) {
	pp := CornerP(c, r)
	d := n.Sub(c)
	switch {
	case RegionR(c, r).Contains(n):
		return Family{N: n, P: pp, Center: pp}, nil // heard directly
	case d.X >= 1 && d.Y > d.X && d.Y <= r:
		return FamilyU(c, r, d.X, d.Y)
	case d.X == -r && d.Y <= 0 && d.Y >= -(r-1):
		return FamilyS1(c, r, -d.Y)
	case d.X <= 0 && d.X > -r && d.Y <= 0 && -d.X > -d.Y:
		return FamilyS2(c, r, -d.Y, -d.X)
	default:
		return Family{}, fmt.Errorf("paths: node %v is not in region M of center %v (r=%d)", n, c, r)
	}
}
