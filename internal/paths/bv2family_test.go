package paths

import (
	"testing"

	"repro/internal/grid"
)

func TestBuildBV2FamilyValidation(t *testing.T) {
	if _, err := BuildBV2Family(center, 0); err == nil {
		t.Error("radius 0 must be rejected")
	}
}

func TestBV2FamilyAllRadii(t *testing.T) {
	for r := 1; r <= 8; r++ {
		fam, err := BuildBV2Family(center, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if err := VerifyBV2Family(center, r, fam); err != nil {
			t.Errorf("r=%d: %v", r, err)
		}
		direct, relayed := 0, 0
		for _, ch := range fam.Chains {
			if ch.Direct {
				direct++
			} else {
				relayed++
			}
		}
		if direct != r*(r+1) {
			t.Errorf("r=%d: %d direct chains, want r(r+1)=%d", r, direct, r*(r+1))
		}
		if relayed != r*r {
			t.Errorf("r=%d: %d relayed chains, want r²=%d", r, relayed, r*r)
		}
	}
}

func TestBV2FamilyTranslationInvariant(t *testing.T) {
	for _, c := range []grid.Coord{grid.C(13, -7), grid.C(-50, 91)} {
		fam, err := BuildBV2Family(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyBV2Family(c, 3, fam); err != nil {
			t.Errorf("center %v: %v", c, err)
		}
	}
}

func TestBV2FamilyThresholdArithmetic(t *testing.T) {
	// At the Theorem 1 threshold t = ⌈r(2r+1)/2⌉−1, the family size
	// r(2r+1) is at least 2t+1, so t+1 chains survive any legal fault
	// placement — the §VI-B commit rule fires.
	for r := 1; r <= 10; r++ {
		famSize := r * (2*r + 1)
		tMax := (famSize+1)/2 - 1
		if famSize < 2*tMax+1 {
			t.Errorf("r=%d: family %d < 2t+1 = %d", r, famSize, 2*tMax+1)
		}
	}
}

func TestVerifyBV2FamilyDetectsViolations(t *testing.T) {
	r := 2
	good, err := BuildBV2Family(center, r)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	bad := good
	bad.Chains = good.Chains[:len(good.Chains)-1]
	if VerifyBV2Family(center, r, bad) == nil {
		t.Error("short family must fail")
	}
	// Duplicate origin.
	bad2 := good
	bad2.Chains = append([]BV2Chain{}, good.Chains...)
	bad2.Chains[len(bad2.Chains)-1] = bad2.Chains[0]
	if VerifyBV2Family(center, r, bad2) == nil {
		t.Error("duplicated chain must fail disjointness")
	}
	// Origin outside nbd(a,b).
	bad3 := good
	bad3.Chains = append([]BV2Chain{}, good.Chains...)
	bad3.Chains[0] = BV2Chain{N: grid.C(center.X+r+1, center.Y), Direct: true}
	if VerifyBV2Family(center, r, bad3) == nil {
		t.Error("out-of-neighborhood origin must fail")
	}
	// Relay out of radio range of P.
	bad4 := good
	bad4.Chains = append([]BV2Chain{}, good.Chains...)
	for i, ch := range bad4.Chains {
		if !ch.Direct {
			ch.Relay = grid.C(center.X-3*r, center.Y-3*r)
			bad4.Chains[i] = ch
			break
		}
	}
	if VerifyBV2Family(center, r, bad4) == nil {
		t.Error("unreachable relay must fail")
	}
}
