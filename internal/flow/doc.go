// Package flow implements Dinic's maximum-flow algorithm and, on top of it,
// maximum sets of vertex-disjoint paths via the standard vertex-splitting
// reduction. The paper's protocols and proofs hinge on counting node-disjoint
// paths inside single neighborhoods (§V, §VI); this package provides the
// exact combinatorial tool, used both to construct designated path families
// and to cross-check the explicit constructions of Figs 5, 6 and 12.
package flow
