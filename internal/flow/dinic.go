package flow

import "fmt"

// Dinic is a max-flow solver over a directed graph with integer capacities.
// Vertices are dense indices in [0, N).
type Dinic struct {
	n     int
	heads [][]int // per-vertex indices into edges
	edges []edge
	level []int
	iter  []int
}

type edge struct {
	to  int
	cap int
	rev int // index of reverse edge in heads[to]
}

// NewDinic creates a solver for n vertices.
func NewDinic(n int) *Dinic {
	if n < 0 {
		panic(fmt.Sprintf("flow: negative vertex count %d", n))
	}
	return &Dinic{
		n:     n,
		heads: make([][]int, n),
		level: make([]int, n),
		iter:  make([]int, n),
	}
}

// N returns the vertex count.
func (d *Dinic) N() int { return d.n }

// AddEdge adds a directed edge u→v with the given capacity and returns its
// index for later inspection with Flow.
func (d *Dinic) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range [0,%d)", u, v, d.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %d", capacity))
	}
	idx := len(d.edges)
	d.edges = append(d.edges, edge{to: v, cap: capacity, rev: len(d.heads[v])})
	d.heads[u] = append(d.heads[u], idx)
	d.edges = append(d.edges, edge{to: u, cap: 0, rev: len(d.heads[u]) - 1})
	d.heads[v] = append(d.heads[v], idx+1)
	return idx
}

// Flow returns the amount of flow pushed through the edge returned by
// AddEdge (its residual deficit).
func (d *Dinic) Flow(edgeIdx int, originalCap int) int {
	return originalCap - d.edges[edgeIdx].cap
}

// bfs builds the level graph; returns false when t is unreachable.
func (d *Dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := make([]int, 0, d.n)
	d.level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range d.heads[u] {
			e := d.edges[ei]
			if e.cap > 0 && d.level[e.to] < 0 {
				d.level[e.to] = d.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return d.level[t] >= 0
}

// dfs pushes blocking flow.
func (d *Dinic) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; d.iter[u] < len(d.heads[u]); d.iter[u]++ {
		ei := d.heads[u][d.iter[u]]
		e := &d.edges[ei]
		if e.cap <= 0 || d.level[e.to] != d.level[u]+1 {
			continue
		}
		pushed := d.dfs(e.to, t, minCap(f, e.cap))
		if pushed <= 0 {
			continue
		}
		e.cap -= pushed
		rev := d.heads[e.to][e.rev]
		d.edges[rev].cap += pushed
		return pushed
	}
	return 0
}

// MaxFlow computes the maximum s→t flow. It may be called once per solver
// instance (capacities are consumed).
func (d *Dinic) MaxFlow(s, t int) int {
	if s == t {
		panic("flow: source equals sink")
	}
	const inf = int(^uint(0) >> 1)
	total := 0
	for d.bfs(s, t) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(s, t, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func minCap(a, b int) int {
	if a < b {
		return a
	}
	return b
}
