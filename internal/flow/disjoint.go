package flow

import "fmt"

// DisjointConfig describes a vertex-disjoint path query on an undirected
// graph given by a neighbor function over dense vertex indices [0, N).
type DisjointConfig struct {
	// N is the vertex count.
	N int
	// Neighbors returns the adjacency of a vertex. It is consulted once
	// per vertex during graph construction.
	Neighbors func(int) []int
	// S and T are the path endpoints (not split; arbitrarily many paths
	// may meet there).
	S, T int
	// Allowed restricts intermediate vertices; nil allows all. S and T
	// are always allowed.
	Allowed func(int) bool
	// MaxLen, when positive, bounds the number of edges per returned
	// path during extraction. Paths longer than MaxLen are discarded
	// from the result (the count reflects extracted paths only).
	MaxLen int
}

// MaxVertexDisjointPaths returns a maximum-cardinality set of internally
// vertex-disjoint S–T paths, each returned as a vertex sequence starting at
// S and ending at T. When cfg.MaxLen is zero the count equals the
// vertex-connectivity-style Menger bound between S and T restricted to
// Allowed vertices.
func MaxVertexDisjointPaths(cfg DisjointConfig) ([][]int, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("flow: vertex count %d must be positive", cfg.N)
	}
	if cfg.Neighbors == nil {
		return nil, fmt.Errorf("flow: Neighbors function is required")
	}
	if cfg.S < 0 || cfg.S >= cfg.N || cfg.T < 0 || cfg.T >= cfg.N {
		return nil, fmt.Errorf("flow: endpoints (%d,%d) out of range [0,%d)", cfg.S, cfg.T, cfg.N)
	}
	if cfg.S == cfg.T {
		return nil, fmt.Errorf("flow: endpoints coincide")
	}
	allowed := cfg.Allowed
	if allowed == nil {
		allowed = func(int) bool { return true }
	}
	ok := func(v int) bool { return v == cfg.S || v == cfg.T || allowed(v) }

	// Vertex splitting: in(v) = 2v, out(v) = 2v+1. Intermediates get a
	// unit in→out edge; endpoints get effectively unbounded ones.
	const big = 1 << 30
	d := NewDinic(2 * cfg.N)
	for v := 0; v < cfg.N; v++ {
		if !ok(v) {
			continue
		}
		capV := 1
		if v == cfg.S || v == cfg.T {
			capV = big
		}
		d.AddEdge(2*v, 2*v+1, capV)
		for _, u := range cfg.Neighbors(v) {
			if u < 0 || u >= cfg.N {
				return nil, fmt.Errorf("flow: neighbor %d of %d out of range", u, v)
			}
			if !ok(u) {
				continue
			}
			d.AddEdge(2*v+1, 2*u, 1)
		}
	}
	total := d.MaxFlow(2*cfg.S, 2*cfg.T+1)
	paths := d.extractPaths(cfg, total)
	return paths, nil
}

// CountVertexDisjointPaths is MaxVertexDisjointPaths when only the count is
// needed.
func CountVertexDisjointPaths(cfg DisjointConfig) (int, error) {
	paths, err := MaxVertexDisjointPaths(cfg)
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}

// extractPaths decomposes the computed unit flow into vertex paths. Each
// saturated in→out edge is used at most once, so the paths are internally
// vertex-disjoint by construction.
func (d *Dinic) extractPaths(cfg DisjointConfig, total int) [][]int {
	// usedFlow[ei] tracks decomposed units on edge index ei.
	paths := make([][]int, 0, total)
	src := 2*cfg.S + 1 // out-node of S
	dst := 2 * cfg.T   // in-node of T
	for p := 0; p < total; p++ {
		// Walk saturated edges from S's out-node to T's in-node.
		path := []int{cfg.S}
		u := src
		steps := 0
		for u != dst {
			advanced := false
			for _, ei := range d.heads[u] {
				if ei%2 != 0 { // skip reverse edges
					continue
				}
				e := &d.edges[ei]
				// A forward edge carried flow iff its reverse edge now has
				// positive capacity.
				rev := &d.edges[d.heads[e.to][e.rev]]
				if rev.cap <= 0 {
					continue
				}
				// Consume one unit.
				rev.cap--
				e.cap++
				u = e.to
				if u%2 == 0 && u != dst { // entered in(v): record v, hop to out(v)
					path = append(path, u/2)
				}
				advanced = true
				break
			}
			if !advanced {
				// Flow decomposition cannot get stuck on a valid unit flow.
				panic("flow: path extraction stuck")
			}
			steps++
			if steps > 4*d.n {
				panic("flow: path extraction cycled")
			}
		}
		path = append(path, cfg.T)
		if cfg.MaxLen > 0 && len(path)-1 > cfg.MaxLen {
			continue
		}
		paths = append(paths, path)
	}
	return paths
}
