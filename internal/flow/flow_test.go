package flow

import (
	"testing"
	"testing/quick"
)

func TestDinicSimple(t *testing.T) {
	// Classic diamond: s=0, t=3, two unit paths.
	d := NewDinic(4)
	d.AddEdge(0, 1, 1)
	d.AddEdge(0, 2, 1)
	d.AddEdge(1, 3, 1)
	d.AddEdge(2, 3, 1)
	if got := d.MaxFlow(0, 3); got != 2 {
		t.Errorf("MaxFlow = %d, want 2", got)
	}
}

func TestDinicBottleneck(t *testing.T) {
	// s -> a (cap 5) -> t (cap 3): flow 3.
	d := NewDinic(3)
	d.AddEdge(0, 1, 5)
	d.AddEdge(1, 2, 3)
	if got := d.MaxFlow(0, 2); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
}

func TestDinicDisconnected(t *testing.T) {
	d := NewDinic(4)
	d.AddEdge(0, 1, 7)
	d.AddEdge(2, 3, 7)
	if got := d.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestDinicParallelEdges(t *testing.T) {
	d := NewDinic(2)
	d.AddEdge(0, 1, 2)
	d.AddEdge(0, 1, 3)
	if got := d.MaxFlow(0, 1); got != 5 {
		t.Errorf("MaxFlow = %d, want 5", got)
	}
}

func TestDinicFlowQuery(t *testing.T) {
	d := NewDinic(3)
	e1 := d.AddEdge(0, 1, 4)
	e2 := d.AddEdge(1, 2, 2)
	d.MaxFlow(0, 2)
	if got := d.Flow(e1, 4); got != 2 {
		t.Errorf("edge1 flow = %d, want 2", got)
	}
	if got := d.Flow(e2, 2); got != 2 {
		t.Errorf("edge2 flow = %d, want 2", got)
	}
}

func TestDinicPanics(t *testing.T) {
	cases := []func(){
		func() { NewDinic(-1) },
		func() { NewDinic(2).AddEdge(0, 5, 1) },
		func() { NewDinic(2).AddEdge(0, 1, -1) },
		func() { NewDinic(2).MaxFlow(1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// completeNeighbors returns the adjacency of K_n.
func completeNeighbors(n int) func(int) []int {
	return func(v int) []int {
		out := make([]int, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				out = append(out, u)
			}
		}
		return out
	}
}

func TestDisjointPathsCompleteGraph(t *testing.T) {
	// In K_n there are exactly n−1 internally vertex-disjoint s–t paths
	// (the direct edge plus n−2 two-hop paths).
	for n := 3; n <= 8; n++ {
		paths, err := MaxVertexDisjointPaths(DisjointConfig{
			N: n, Neighbors: completeNeighbors(n), S: 0, T: n - 1,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(paths) != n-1 {
			t.Errorf("K_%d: %d paths, want %d", n, len(paths), n-1)
		}
		assertDisjoint(t, paths, 0, n-1)
	}
}

func TestDisjointPathsCycle(t *testing.T) {
	// A cycle has exactly 2 disjoint paths between any two vertices.
	n := 9
	nb := func(v int) []int { return []int{(v + 1) % n, (v + n - 1) % n} }
	paths, err := MaxVertexDisjointPaths(DisjointConfig{N: n, Neighbors: nb, S: 0, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Errorf("cycle: %d paths, want 2", len(paths))
	}
	assertDisjoint(t, paths, 0, 4)
}

func TestDisjointPathsAllowedFilter(t *testing.T) {
	// Remove one side of the cycle: only one path remains.
	n := 9
	nb := func(v int) []int { return []int{(v + 1) % n, (v + n - 1) % n} }
	paths, err := MaxVertexDisjointPaths(DisjointConfig{
		N: n, Neighbors: nb, S: 0, T: 4,
		Allowed: func(v int) bool { return v <= 4 }, // block 5..8
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("filtered cycle: %d paths, want 1", len(paths))
	}
}

func TestDisjointPathsMaxLen(t *testing.T) {
	// Cycle 0..8, s=0 t=4: paths have lengths 4 and 5. MaxLen 4 keeps one.
	n := 9
	nb := func(v int) []int { return []int{(v + 1) % n, (v + n - 1) % n} }
	paths, err := MaxVertexDisjointPaths(DisjointConfig{N: n, Neighbors: nb, S: 0, T: 4, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("MaxLen filter kept %d paths, want 1", len(paths))
	}
	if got := len(paths[0]) - 1; got != 4 {
		t.Errorf("kept path has %d edges, want 4", got)
	}
}

func TestDisjointPathsValidation(t *testing.T) {
	nb := completeNeighbors(3)
	cases := []DisjointConfig{
		{N: 0, Neighbors: nb, S: 0, T: 1},
		{N: 3, S: 0, T: 1},                 // nil Neighbors
		{N: 3, Neighbors: nb, S: 0, T: 5},  // T out of range
		{N: 3, Neighbors: nb, S: 1, T: 1},  // S == T
		{N: 3, Neighbors: nb, S: -1, T: 1}, // S negative
	}
	for i, cfg := range cases {
		if _, err := MaxVertexDisjointPaths(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCountVertexDisjointPaths(t *testing.T) {
	n, err := CountVertexDisjointPaths(DisjointConfig{N: 5, Neighbors: completeNeighbors(5), S: 0, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("count = %d, want 4", n)
	}
}

func TestDisjointPathsGridProperty(t *testing.T) {
	// Property: on a random graph, extracted paths are valid (edges exist,
	// endpoints correct) and internally disjoint, and the count equals the
	// count on the reversed query (Menger symmetry).
	f := func(seed uint32) bool {
		n := 8
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		s := seed
		rnd := func() uint32 { s = s*1664525 + 1013904223; return s }
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rnd()%3 == 0 {
					adj[i][j] = true
					adj[j][i] = true
				}
			}
		}
		nb := func(v int) []int {
			var out []int
			for u := 0; u < n; u++ {
				if adj[v][u] {
					out = append(out, u)
				}
			}
			return out
		}
		fwd, err := MaxVertexDisjointPaths(DisjointConfig{N: n, Neighbors: nb, S: 0, T: n - 1})
		if err != nil {
			return false
		}
		for _, p := range fwd {
			if p[0] != 0 || p[len(p)-1] != n-1 {
				return false
			}
			for i := 1; i < len(p); i++ {
				if !adj[p[i-1]][p[i]] {
					return false
				}
			}
		}
		rev, err := MaxVertexDisjointPaths(DisjointConfig{N: n, Neighbors: nb, S: n - 1, T: 0})
		if err != nil {
			return false
		}
		return len(fwd) == len(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// assertDisjoint verifies paths share no internal vertices.
func assertDisjoint(t *testing.T, paths [][]int, s, sink int) {
	t.Helper()
	seen := make(map[int]bool)
	for _, p := range paths {
		if p[0] != s || p[len(p)-1] != sink {
			t.Fatalf("path %v does not connect %d..%d", p, s, sink)
		}
		for _, v := range p[1 : len(p)-1] {
			if seen[v] {
				t.Fatalf("vertex %d reused across paths", v)
			}
			seen[v] = true
		}
	}
}
