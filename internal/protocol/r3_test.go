package protocol

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/topology"
)

// TestTheorem1AtRadius3 pushes the exact-threshold reproduction to r=3
// (t = 10, 48-degree nodes) with the designated evidence engine. Skipped in
// -short mode: the run is heavier than the r ≤ 2 suites.
func TestTheorem1AtRadius3(t *testing.T) {
	if testing.Short() {
		t.Skip("r=3 threshold run is not short")
	}
	r := 3
	net := testNet(t, 32, 16, r)
	tMax := bounds.MaxByzantineLinf(r)
	var byz []topology.NodeID
	for _, x0 := range []int{8, 24} {
		band, err := fault.GreedyBand(net, x0, r, tMax)
		if err != nil {
			t.Fatal(err)
		}
		byz = append(byz, band...)
	}
	if got := fault.MaxPerNeighborhood(net, byz); got > tMax {
		t.Fatalf("budget exceeded: %d > %d", got, tMax)
	}
	src := net.IDOf(grid.C(0, 0))
	out, err := Run(RunConfig{
		Kind:      BV4,
		Params:    Params{Net: net, Source: src, Value: 1, T: tMax},
		Byzantine: byzMap(byz, fault.Silent),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCorrect() {
		t.Errorf("BV4 r=3 t=%d: correct=%d wrong=%d undecided=%d",
			tMax, out.Correct, out.Wrong, out.Undecided)
	}
}
