package protocol

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
)

// doubleBand returns two fault bands that jointly enclose the middle of the
// torus. The paper's half-plane constructions (Figs 8 and 13) cut an
// infinite grid with one band; on a torus two bands are needed because the
// "far side" wraps around.
func doubleBand(t *testing.T, net *topology.Network, width int, checker bool) []topology.NodeID {
	t.Helper()
	w := net.Torus().W
	x1 := w / 4
	x2 := 3 * w / 4
	var out []topology.NodeID
	for _, x0 := range []int{x1, x2} {
		if checker {
			band, err := fault.CheckerboardBand(net, x0, width)
			if err != nil {
				t.Fatalf("CheckerboardBand: %v", err)
			}
			out = append(out, band...)
		} else {
			out = append(out, fault.Band(net, x0, width)...)
		}
	}
	return out
}

// middleNodes returns honest nodes strictly between the two bands, at least
// one column away from each.
func middleNodes(net *topology.Network, width int, faulty map[topology.NodeID]bool) []topology.NodeID {
	w := net.Torus().W
	lo := w/4 + width // first column right of band 1
	hi := 3*w/4 - 1   // last column left of band 2
	var out []topology.NodeID
	net.ForEach(func(id topology.NodeID) {
		c := net.CoordOf(id)
		if c.X > lo && c.X < hi && !faulty[id] {
			out = append(out, id)
		}
	})
	return out
}

func byzMap(ids []topology.NodeID, s fault.Strategy) map[topology.NodeID]fault.Strategy {
	m := make(map[topology.NodeID]fault.Strategy, len(ids))
	for _, id := range ids {
		m[id] = s
	}
	return m
}

func crashMap(ids []topology.NodeID) map[topology.NodeID]int {
	m := make(map[topology.NodeID]int, len(ids))
	for _, id := range ids {
		m[id] = 0
	}
	return m
}

// TestTheorem4CrashImpossibilityConstruction reproduces Fig 8: crashing a
// width-r band (doubled for the torus) puts exactly r(2r+1) faults in the
// worst neighborhood and partitions the middle nodes from the source.
func TestTheorem4CrashImpossibilityConstruction(t *testing.T) {
	for _, r := range []int{1, 2} {
		net := testNet(t, 16*r, 8*r+2, r)
		band := doubleBand(t, net, r, false)
		if got, want := fault.MaxPerNeighborhood(net, band), bounds.MinImpossibleCrashLinf(r); got != want {
			t.Fatalf("r=%d: construction has %d faults per nbd, want %d", r, got, want)
		}
		src := net.IDOf(grid.C(0, 0))
		out, err := Run(RunConfig{
			Kind:   Flood,
			Params: Params{Net: net, Source: src, Value: 1},
			Crash:  crashMap(band),
		})
		if err != nil {
			t.Fatal(err)
		}
		faulty := make(map[topology.NodeID]bool, len(band))
		for _, id := range band {
			faulty[id] = true
		}
		mid := middleNodes(net, r, faulty)
		if len(mid) == 0 {
			t.Fatal("no middle nodes — bad test geometry")
		}
		for _, id := range mid {
			if _, ok := out.Result.Decided[id]; ok {
				t.Fatalf("r=%d: middle node %v decided despite the partition", r, net.CoordOf(id))
			}
		}
		if out.Undecided < len(mid) {
			t.Errorf("r=%d: undecided %d < middle population %d", r, out.Undecided, len(mid))
		}
		// Everything outside the cut region must still decide.
		if out.Correct == 0 || out.Wrong != 0 {
			t.Errorf("r=%d: correct=%d wrong=%d", r, out.Correct, out.Wrong)
		}
	}
}

// TestTheorem5CrashAchievability verifies flooding tolerates t = r(2r+1)−1:
// the greedy band adversary (the strongest legal band) cannot stop delivery.
func TestTheorem5CrashAchievability(t *testing.T) {
	for _, r := range []int{1, 2} {
		net := testNet(t, 16*r, 8*r+2, r)
		tMax := bounds.MaxCrashLinf(r)
		var crash []topology.NodeID
		for _, x0 := range []int{net.Torus().W / 4, 3 * net.Torus().W / 4} {
			band, err := fault.GreedyBand(net, x0, r, tMax)
			if err != nil {
				t.Fatal(err)
			}
			crash = append(crash, band...)
		}
		if got := fault.MaxPerNeighborhood(net, crash); got > tMax {
			t.Fatalf("r=%d: placement exceeds budget: %d > %d", r, got, tMax)
		}
		src := net.IDOf(grid.C(0, 0))
		out, err := Run(RunConfig{
			Kind:   Flood,
			Params: Params{Net: net, Source: src, Value: 1},
			Crash:  crashMap(crash),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllCorrect() {
			t.Errorf("r=%d: flood at t=%d: correct=%d wrong=%d undecided=%d",
				r, tMax, out.Correct, out.Wrong, out.Undecided)
		}
	}
}

// TestTheorem1ByzantineAchievability runs BV4 at the exact threshold
// t = ⌈r(2r+1)/2⌉ − 1 against the strongest band and random adversaries.
func TestTheorem1ByzantineAchievability(t *testing.T) {
	for _, tc := range []struct {
		r, w, h int
		mode    EvidenceMode
	}{
		{1, 16, 10, Designated},
		{1, 16, 10, Exact},
		{2, 32, 18, Designated},
	} {
		net := testNet(t, tc.w, tc.h, tc.r)
		tMax := bounds.MaxByzantineLinf(tc.r)
		var byz []topology.NodeID
		for _, x0 := range []int{tc.w / 4, 3 * tc.w / 4} {
			band, err := fault.GreedyBand(net, x0, tc.r, tMax)
			if err != nil {
				t.Fatal(err)
			}
			byz = append(byz, band...)
		}
		if got := fault.MaxPerNeighborhood(net, byz); got > tMax {
			t.Fatalf("r=%d: budget exceeded", tc.r)
		}
		src := net.IDOf(grid.C(0, 0))
		for _, strat := range []fault.Strategy{fault.Silent, fault.Forger} {
			out, err := Run(RunConfig{
				Kind:      BV4,
				Params:    Params{Net: net, Source: src, Value: 1, T: tMax, Mode: tc.mode},
				Byzantine: byzMap(byz, strat),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.AllCorrect() {
				t.Errorf("r=%d mode=%v strat=%v t=%d: correct=%d wrong=%d undecided=%d",
					tc.r, tc.mode, strat, tMax, out.Correct, out.Wrong, out.Undecided)
			}
		}
	}
}

// TestKooImpossibilityStallsBV4 reproduces the Fig 13 situation at
// t = ⌈r(2r+1)/2⌉: the checkerboard band (silent variant) stalls every node
// between the bands while safety is preserved.
func TestKooImpossibilityStallsBV4(t *testing.T) {
	r := 1
	net := testNet(t, 16, 10, r)
	tImp := bounds.MinImpossibleByzantineLinf(r)
	byz := doubleBand(t, net, r, true)
	if got := fault.MaxPerNeighborhood(net, byz); got != tImp {
		t.Fatalf("construction has %d faults per nbd, want %d", got, tImp)
	}
	src := net.IDOf(grid.C(0, 0))
	out, err := Run(RunConfig{
		Kind:      BV4,
		Params:    Params{Net: net, Source: src, Value: 1, T: tImp, Mode: Designated},
		Byzantine: byzMap(byz, fault.Silent),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Safe() {
		t.Fatal("safety violated")
	}
	faulty := make(map[topology.NodeID]bool, len(byz))
	for _, id := range byz {
		faulty[id] = true
	}
	mid := middleNodes(net, r, faulty)
	if len(mid) == 0 {
		t.Fatal("no middle nodes")
	}
	for _, id := range mid {
		if _, ok := out.Result.Decided[id]; ok {
			t.Errorf("middle node %v decided at the impossibility bound", net.CoordOf(id))
		}
	}
}

// TestBV2Achievability runs the two-hop protocol at the exact threshold.
func TestBV2Achievability(t *testing.T) {
	for _, tc := range []struct{ r, w, h int }{
		{1, 16, 10},
		{2, 32, 18},
	} {
		net := testNet(t, tc.w, tc.h, tc.r)
		tMax := bounds.MaxByzantineLinf(tc.r)
		var byz []topology.NodeID
		for _, x0 := range []int{tc.w / 4, 3 * tc.w / 4} {
			band, err := fault.GreedyBand(net, x0, tc.r, tMax)
			if err != nil {
				t.Fatal(err)
			}
			byz = append(byz, band...)
		}
		src := net.IDOf(grid.C(0, 0))
		out, err := Run(RunConfig{
			Kind:      BV2,
			Params:    Params{Net: net, Source: src, Value: 1, T: tMax},
			Byzantine: byzMap(byz, fault.Silent),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllCorrect() {
			t.Errorf("r=%d BV2 t=%d: correct=%d wrong=%d undecided=%d",
				tc.r, tMax, out.Correct, out.Wrong, out.Undecided)
		}
	}
}

// TestTheorem6CPAAchievability runs the simple protocol at t = ⌊2r²/3⌋.
func TestTheorem6CPAAchievability(t *testing.T) {
	for _, tc := range []struct{ r, w, h int }{
		{2, 24, 14},
		{3, 32, 20},
	} {
		net := testNet(t, tc.w, tc.h, tc.r)
		tCPA := bounds.MaxCPALinf(tc.r)
		var byz []topology.NodeID
		for _, x0 := range []int{tc.w / 4, 3 * tc.w / 4} {
			band, err := fault.GreedyBand(net, x0, tc.r, tCPA)
			if err != nil {
				t.Fatal(err)
			}
			byz = append(byz, band...)
		}
		if got := fault.MaxPerNeighborhood(net, byz); got > tCPA {
			t.Fatalf("r=%d: budget exceeded", tc.r)
		}
		src := net.IDOf(grid.C(0, 0))
		for _, strat := range []fault.Strategy{fault.Silent, fault.Liar} {
			out, err := Run(RunConfig{
				Kind:      CPA,
				Params:    Params{Net: net, Source: src, Value: 1, T: tCPA},
				Byzantine: byzMap(byz, strat),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.AllCorrect() {
				t.Errorf("r=%d strat=%v t=%d: correct=%d wrong=%d undecided=%d",
					tc.r, strat, tCPA, out.Correct, out.Wrong, out.Undecided)
			}
		}
	}
}

// TestSafetyUnderForgers is the Theorem 2 sweep (E19): across protocols,
// radii and adversary strategies within the budget, no honest node ever
// commits to a wrong value — even when liveness is lost.
func TestSafetyUnderForgers(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		r    int
		tVal int
	}{
		{BV4, 1, 1},
		{BV4, 1, 2}, // above the liveness threshold: may stall, must stay safe
		{BV2, 1, 1},
		{BV2, 1, 2},
		{CPA, 2, 2},
	} {
		net := testNet(t, 14, 14, tc.r)
		src := net.IDOf(grid.C(0, 0))
		for seed := int64(0); seed < 3; seed++ {
			byz, err := fault.RandomBounded(net, tc.tVal, -1, seed)
			if err != nil {
				t.Fatal(err)
			}
			// The source must stay honest.
			filtered := byz[:0]
			for _, id := range byz {
				if id != src {
					filtered = append(filtered, id)
				}
			}
			for _, strat := range []fault.Strategy{fault.Liar, fault.Forger} {
				out, err := Run(RunConfig{
					Kind:      tc.kind,
					Params:    Params{Net: net, Source: src, Value: 1, T: tc.tVal},
					Byzantine: byzMap(filtered, strat),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !out.Safe() {
					t.Errorf("%v r=%d t=%d seed=%d strat=%v: %d wrong commits",
						tc.kind, tc.r, tc.tVal, seed, strat, out.Wrong)
				}
			}
		}
	}
}

// TestBV4ModesAgree verifies the designated (earmarked) and exact evidence
// engines produce identical decisions — the state reduction must not change
// the protocol's outcome, only its cost.
func TestBV4ModesAgree(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	src := net.IDOf(grid.C(0, 0))
	for seed := int64(0); seed < 3; seed++ {
		byz, err := fault.RandomBounded(net, 1, -1, seed)
		if err != nil {
			t.Fatal(err)
		}
		filtered := byz[:0]
		for _, id := range byz {
			if id != src {
				filtered = append(filtered, id)
			}
		}
		run := func(mode EvidenceMode) Outcome {
			out, err := Run(RunConfig{
				Kind:      BV4,
				Params:    Params{Net: net, Source: src, Value: 1, T: 1, Mode: mode},
				Byzantine: byzMap(filtered, fault.Forger),
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		des := run(Designated)
		exa := run(Exact)
		if des.Correct != exa.Correct || des.Wrong != exa.Wrong || des.Undecided != exa.Undecided {
			t.Errorf("seed %d: designated %+v vs exact %+v", seed,
				[3]int{des.Correct, des.Wrong, des.Undecided},
				[3]int{exa.Correct, exa.Wrong, exa.Undecided})
		}
		for id, v := range des.Result.Decided {
			ev, ok := exa.Result.Decided[id]
			if !ok || ev != v {
				t.Errorf("seed %d node %d: designated %d, exact %v %v", seed, id, v, ev, ok)
			}
		}
	}
}

// TestBV4ConcurrentEngine runs the designated protocol on the
// goroutine-per-node runtime: the shared family table must be safe under
// concurrent readers and decisions must match the sequential engine.
func TestBV4ConcurrentEngine(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	src := net.IDOf(grid.C(0, 0))
	byz, err := fault.RandomBounded(net, 1, -1, 2)
	if err != nil {
		t.Fatal(err)
	}
	filtered := byz[:0]
	for _, id := range byz {
		if id != src {
			filtered = append(filtered, id)
		}
	}
	honest, err := NewFactory(BV4, Params{Net: net, Source: src, Value: 1, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(id topology.NodeID) sim.Process {
		if _, ok := byzSet(filtered)[id]; ok {
			return fault.Silent.NewProcess(id)
		}
		return honest(id)
	}
	seq, err := sim.Run(sim.Config{Net: net, Mode: sim.ModeNextRound, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := runtime.Run(runtime.Config{Net: net, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Decided) != len(conc.Decided) {
		t.Fatalf("decision counts differ: %d vs %d", len(seq.Decided), len(conc.Decided))
	}
	for id, v := range seq.Decided {
		if conc.Decided[id] != v {
			t.Errorf("node %d: %d vs %d", id, v, conc.Decided[id])
		}
	}
}

// byzSet converts a slice to a set for factory lookups.
func byzSet(ids []topology.NodeID) map[topology.NodeID]struct{} {
	m := make(map[topology.NodeID]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return m
}
