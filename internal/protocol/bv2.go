package protocol

import (
	"repro/internal/etrace"
	"repro/internal/evidence"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// bv2Proc is the simplified two-hop protocol of §VI-B: only the immediate
// neighbors of a node that sent a COMMITTED message send a one-time HEARD
// report of it, so information about a commitment propagates exactly two
// hops. A node commits to v once it holds t+1 report chains for v (direct
// COMMITTED receptions or one-relay HEARD reports) that are collectively
// node-disjoint — including the committing endpoints — and lie inside one
// single closed neighborhood. The threshold matches Theorem 1.
type bv2Proc struct {
	self   topology.NodeID
	source topology.NodeID
	t      int
	net    *topology.Network
	spoof  bool               // §X study: medium does not authenticate senders
	mc     *metrics.Collector // evidence-evaluation tap (nil = off)
	tr     *etrace.Recorder   // event/certificate tap (nil = off)

	value     byte
	decided   bool
	announced bool

	store *evidence.Store
	// firstCommit dedupes contradictory COMMITTED retransmissions by
	// sender (§V: accept the first version only).
	firstCommit map[topology.NodeID]struct{}
	// firstHeard dedupes HEARD reports by (sender, origin).
	firstHeard map[[2]topology.NodeID]struct{}
	// relayed tracks committers whose announcement we already reported.
	relayed map[topology.NodeID]struct{}
}

// newBV2Factory builds two-hop protocol processes.
func newBV2Factory(p Params) (sim.ProcessFactory, error) {
	net, err := p.torus(BV2)
	if err != nil {
		return nil, err
	}
	return func(id topology.NodeID) sim.Process {
		return &bv2Proc{
			self:        id,
			source:      p.Source,
			t:           p.T,
			net:         net,
			spoof:       p.SpoofingPossible,
			mc:          p.Metrics,
			tr:          p.Trace,
			value:       p.Value,
			store:       evidence.NewStore(),
			firstCommit: make(map[topology.NodeID]struct{}),
			firstHeard:  make(map[[2]topology.NodeID]struct{}),
			relayed:     make(map[topology.NodeID]struct{}),
		}
	}, nil
}

// Init implements sim.Process.
func (b *bv2Proc) Init(ctx sim.Context) {
	if b.self == b.source {
		b.decided = true
		b.announced = true
		if b.tr.Enabled() {
			b.tr.Commit(ctx.Round(), b.self, b.value,
				&etrace.Certificate{Rule: etrace.RuleSource, Value: b.value})
		}
		ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: b.value})
	}
}

// Deliver implements sim.Process.
func (b *bv2Proc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	if m.Value > 1 {
		return // not a binary broadcast value
	}
	sender := attributedSender(b.spoof, from, m)
	if b.tr.Enabled() && sender != from {
		b.tr.Spoof(ctx.Round(), b.self, from, sender)
	}
	switch m.Kind {
	case sim.KindValue:
		if sender != b.source {
			return // only the designated source originates values
		}
		// The source's initial transmission doubles as its COMMITTED
		// announcement; its neighbors commit immediately (base case).
		b.acceptCommitted(ctx, sender, m.Value)
		if !b.decided {
			var cert *etrace.Certificate
			if b.tr.Enabled() {
				cert = &etrace.Certificate{Rule: etrace.RuleDirect, Value: m.Value,
					Voters: []topology.NodeID{sender}}
			}
			b.commit(ctx, m.Value, cert)
		}
	case sim.KindCommitted:
		if m.Origin != sender {
			return // under authentication, spoofed origins are impossible
		}
		b.acceptCommitted(ctx, sender, m.Value)
	case sim.KindHeard:
		if len(m.Path) != 1 || m.Path[0] != sender {
			return // two-hop protocol: exactly one relay, and it must be the sender
		}
		if m.Origin == sender || m.Origin == b.self {
			return
		}
		key := [2]topology.NodeID{sender, m.Origin}
		if _, dup := b.firstHeard[key]; dup {
			return
		}
		b.firstHeard[key] = struct{}{}
		chain := evidence.Chain{Origin: m.Origin, Value: m.Value, Relays: []topology.NodeID{sender}}
		b.store.Add(chain)
		b.tryCommit(ctx, chain)
	}
}

// acceptCommitted processes a (first) commitment announcement from a
// neighbor: record it, report it once, and re-evaluate the commit rule.
func (b *bv2Proc) acceptCommitted(ctx sim.Context, committer topology.NodeID, v byte) {
	if _, dup := b.firstCommit[committer]; dup {
		return
	}
	b.firstCommit[committer] = struct{}{}
	b.store.AddDirect(committer, v)
	direct := evidence.Chain{Origin: committer, Value: v}
	if _, done := b.relayed[committer]; !done {
		b.relayed[committer] = struct{}{}
		ctx.Broadcast(sim.Message{
			Kind:   sim.KindHeard,
			Origin: committer,
			Value:  v,
			Path:   []topology.NodeID{b.self},
		})
	}
	b.tryCommit(ctx, direct)
}

// tryCommit applies the §VI-B commit rule for the value of the newly
// recorded chain, evaluating only neighborhoods that contain it.
func (b *bv2Proc) tryCommit(ctx sim.Context, chain evidence.Chain) {
	if b.decided {
		return
	}
	b.mc.AddEvidenceEvals(ctx.Round(), 1)
	if b.tr.Enabled() {
		b.tr.EvidenceEval(ctx.Round(), b.self, chain.Origin, chain.Value)
	}
	if evidence.CommitSingleLevelFocused(b.net, b.store, b.self, chain.Value, b.t+1, chain) {
		b.commit(ctx, chain.Value, b.chainCert(chain.Value))
	}
}

// chainCert reconstructs the §VI-B justification at the moment the rule
// fired: a neighborhood center and t+1 collectively node-disjoint chains
// for v inside it. Nil on untraced runs.
func (b *bv2Proc) chainCert(v byte) *etrace.Certificate {
	if !b.tr.Enabled() {
		return nil
	}
	center, chains, ok := evidence.CommitWitness(b.net, b.store, b.self, v, b.t+1)
	if !ok {
		return nil // defensive: the focused check just succeeded
	}
	cert := &etrace.Certificate{
		Rule: etrace.RuleDisjointChains, Value: v,
		Center: b.net.IDOf(center), HasCenter: true,
		Evidence: make([]etrace.Evidence, 0, len(chains)),
	}
	for _, c := range chains {
		item := etrace.Evidence{Origin: c.Origin, Direct: len(c.Relays) == 0}
		if len(c.Relays) > 0 {
			item.Chains = [][]topology.NodeID{append([]topology.NodeID(nil), c.Relays...)}
		}
		cert.Evidence = append(cert.Evidence, item)
	}
	return cert
}

// commit records the decision and announces it once. cert is nil on
// untraced runs.
func (b *bv2Proc) commit(ctx sim.Context, v byte, cert *etrace.Certificate) {
	b.decided = true
	b.value = v
	if b.tr.Enabled() {
		b.tr.Commit(ctx.Round(), b.self, v, cert)
	}
	if !b.announced {
		b.announced = true
		ctx.Broadcast(sim.Message{Kind: sim.KindCommitted, Origin: b.self, Value: v})
	}
}

// Decided implements sim.Process.
func (b *bv2Proc) Decided() (byte, bool) {
	if !b.decided {
		return 0, false
	}
	return b.value, true
}

var _ sim.Process = (*bv2Proc)(nil)
