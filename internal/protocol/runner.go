package protocol

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topology"
)

// RunConfig combines a protocol, an adversary and an engine configuration
// into one executable scenario.
type RunConfig struct {
	// Kind selects the protocol.
	Kind Kind
	// Params configures it.
	Params Params
	// Byzantine assigns adversarial behaviours to nodes. Byzantine nodes
	// replace their honest process entirely.
	Byzantine map[topology.NodeID]fault.Strategy
	// Crash silences nodes from the given round onward (0 = from the
	// start). A node must not be both Byzantine and crashed.
	Crash map[topology.NodeID]int
	// MaxRounds bounds the run (0 = sim.DefaultMaxRounds).
	MaxRounds int
	// Mode selects the engine delivery mode (0 = sim.ModeFrame).
	Mode sim.DeliveryMode
	// Observer taps engine events (optional).
	Observer sim.Observer
	// Medium configures the optional unreliable-channel extension.
	Medium sim.Medium
	// Context optionally bounds the run by wall clock (see sim.Config).
	Context context.Context
}

// Outcome summarizes a run from the perspective of the honest nodes.
type Outcome struct {
	// Result is the raw engine result.
	Result sim.Result
	// Honest is the number of honest (non-Byzantine, non-crashed) nodes,
	// including the source.
	Honest int
	// Correct is the number of honest nodes that committed to the source
	// value.
	Correct int
	// Wrong is the number of honest nodes that committed to a different
	// value — any nonzero count is a safety violation.
	Wrong int
	// Undecided is the number of honest nodes that never committed.
	Undecided int
}

// AllCorrect reports whether every honest node committed to the source
// value — the definition of successful reliable broadcast.
func (o Outcome) AllCorrect() bool { return o.Wrong == 0 && o.Undecided == 0 }

// Safe reports whether no honest node committed to a wrong value
// (Theorem 2's guarantee, which must hold even when liveness fails).
func (o Outcome) Safe() bool { return o.Wrong == 0 }

// Run executes the configured scenario on the deterministic engine. When
// the run is stopped by its Context, the outcome scores the partial state
// and is returned together with the engine's error wrapping sim.ErrDeadline;
// undecided honest nodes then mean "not yet", not "never".
func Run(cfg RunConfig) (Outcome, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Outcome{}, err
	}
	res, err := e.Run()
	if err != nil && !errors.Is(err, sim.ErrDeadline) {
		return Outcome{}, err
	}
	return score(cfg, res), err
}

// NewEngine validates the scenario and builds its engine without running it.
// This is the substrate for incremental sweep execution (rbcast.RunSweep),
// which steps the engine manually with sim.Engine.RunUntil and forks it at
// fault-plan divergence points; Run is exactly NewEngine followed by
// Engine.Run plus Score.
func NewEngine(cfg RunConfig) (*sim.Engine, error) {
	honest, err := NewFactory(cfg.Kind, cfg.Params)
	if err != nil {
		return nil, err
	}
	for id := range cfg.Byzantine {
		if _, crashed := cfg.Crash[id]; crashed {
			return nil, fmt.Errorf("protocol: node %d is both Byzantine and crashed", id)
		}
		if id == cfg.Params.Source {
			return nil, fmt.Errorf("protocol: the designated source must be honest")
		}
	}
	factory := func(id topology.NodeID) sim.Process {
		if strat, ok := cfg.Byzantine[id]; ok {
			return strat.NewProcess(id)
		}
		return honest(id)
	}
	return sim.NewEngine(sim.Config{
		Net:       cfg.Params.Net,
		Mode:      cfg.Mode,
		Factory:   factory,
		CrashAt:   cfg.Crash,
		MaxRounds: cfg.MaxRounds,
		Observer:  cfg.Observer,
		Medium:    cfg.Medium,
		Metrics:   cfg.Params.Metrics,
		Trace:     cfg.Params.Trace,
		Context:   cfg.Context,
	})
}

// Score tallies honest-node outcomes for an engine result obtained outside
// Run (e.g. from a manually stepped or forked engine).
func Score(cfg RunConfig, res sim.Result) Outcome { return score(cfg, res) }

// score tallies honest-node outcomes.
func score(cfg RunConfig, res sim.Result) Outcome {
	out := Outcome{Result: res}
	net := cfg.Params.Net
	for i := 0; i < net.Size(); i++ {
		id := topology.NodeID(i)
		if _, byz := cfg.Byzantine[id]; byz {
			continue
		}
		if _, crashed := cfg.Crash[id]; crashed {
			continue // crash-faulty nodes are not required to decide
		}
		out.Honest++
		v, ok := res.Decided[id]
		switch {
		case !ok:
			out.Undecided++
		case v == cfg.Params.Value:
			out.Correct++
		default:
			out.Wrong++
		}
	}
	return out
}
