package protocol

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/etrace"
	"repro/internal/evidence"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// familyTables caches designated-family tables per radius; the table is
// immutable and shared by every process of a run (and across runs).
var familyTables sync.Map // int -> *evidence.FamilyTable

// familyTableFor returns the (cached) designated table for radius r.
func familyTableFor(r int) (*evidence.FamilyTable, error) {
	if v, ok := familyTables.Load(r); ok {
		return v.(*evidence.FamilyTable), nil
	}
	ft, err := evidence.NewFamilyTable(r)
	if err != nil {
		return nil, err
	}
	actual, _ := familyTables.LoadOrStore(r, ft)
	return actual.(*evidence.FamilyTable), nil
}

// bv4Proc is the paper's main protocol (§VI): COMMITTED announcements are
// reported through HEARD chains of up to three relayers; a node reliably
// determines an origin's value by hearing it directly or via t+1 internally
// node-disjoint recorded chains inside one single neighborhood, and commits
// once t+1 reliably-determined committers lie inside one single
// neighborhood. Tolerates t < r(2r+1)/2 in L∞ (Theorem 1).
type bv4Proc struct {
	self   topology.NodeID
	source topology.NodeID
	t      int
	net    *topology.Network
	mode   EvidenceMode
	ft     *evidence.FamilyTable // nil in Exact mode
	spoof  bool                  // §X study: medium does not authenticate senders
	mc     *metrics.Collector    // evidence-evaluation tap (nil = off)
	tr     *etrace.Recorder      // event/certificate tap (nil = off)

	value     byte
	decided   bool
	announced bool

	store *evidence.Store
	// firstCommit dedupes COMMITTED by sender.
	firstCommit map[topology.NodeID]struct{}
	// firstHeard dedupes HEARD by (sender, origin, relay path) — the value
	// is deliberately excluded so contradictory retransmissions of the
	// same logical message are ignored after the first (§V).
	firstHeard map[heardKey]struct{}
	// determined tracks reliably-determined (origin, value) pairs.
	determined map[detKey]struct{}
	// counters[v][center] counts determined committers of value v in the
	// closed neighborhood centered at center.
	counters [2]map[topology.NodeID]int
}

type detKey struct {
	origin topology.NodeID
	value  byte
}

// newBV4Factory builds indirect-report protocol processes.
func newBV4Factory(p Params) (sim.ProcessFactory, error) {
	net, err := p.torus(BV4)
	if err != nil {
		return nil, err
	}
	mode := p.Mode
	if mode == 0 {
		mode = Designated
	}
	if mode != Designated && mode != Exact {
		return nil, fmt.Errorf("protocol: invalid evidence mode %d", int(mode))
	}
	if net.Metric() != grid.Linf && mode == Designated {
		return nil, fmt.Errorf("protocol: designated mode requires the L∞ metric (constructive families are L∞)")
	}
	var ft *evidence.FamilyTable
	if mode == Designated {
		var err error
		ft, err = familyTableFor(net.Radius())
		if err != nil {
			return nil, err
		}
	}
	return func(id topology.NodeID) sim.Process {
		return &bv4Proc{
			self:        id,
			source:      p.Source,
			t:           p.T,
			net:         net,
			mode:        mode,
			ft:          ft,
			spoof:       p.SpoofingPossible,
			mc:          p.Metrics,
			tr:          p.Trace,
			value:       p.Value,
			store:       evidence.NewStore(),
			firstCommit: make(map[topology.NodeID]struct{}),
			firstHeard:  make(map[heardKey]struct{}),
			determined:  make(map[detKey]struct{}),
			counters: [2]map[topology.NodeID]int{
				make(map[topology.NodeID]int),
				make(map[topology.NodeID]int),
			},
		}
	}, nil
}

// Init implements sim.Process.
func (b *bv4Proc) Init(ctx sim.Context) {
	if b.self == b.source {
		b.decided = true
		b.announced = true
		if b.tr.Enabled() {
			b.tr.Commit(ctx.Round(), b.self, b.value,
				&etrace.Certificate{Rule: etrace.RuleSource, Value: b.value})
		}
		ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: b.value})
	}
}

// Deliver implements sim.Process.
func (b *bv4Proc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	if m.Value > 1 {
		return
	}
	sender := attributedSender(b.spoof, from, m)
	if b.tr.Enabled() && sender != from {
		b.tr.Spoof(ctx.Round(), b.self, from, sender)
	}
	switch m.Kind {
	case sim.KindValue:
		if sender != b.source {
			return
		}
		// Base case: direct neighbors of the source commit immediately;
		// the source's transmission is also its COMMITTED announcement.
		b.acceptCommitted(ctx, sender, m.Value)
		if !b.decided {
			b.commit(ctx, m.Value, b.directCert(sender, m.Value))
		}
	case sim.KindCommitted:
		if m.Origin != sender {
			return // under authentication, spoofing is physically impossible
		}
		b.acceptCommitted(ctx, sender, m.Value)
	case sim.KindHeard:
		b.acceptHeard(ctx, sender, m)
	}
}

// acceptCommitted handles a first-hand commitment announcement.
func (b *bv4Proc) acceptCommitted(ctx sim.Context, committer topology.NodeID, v byte) {
	if _, dup := b.firstCommit[committer]; dup {
		return
	}
	b.firstCommit[committer] = struct{}{}
	b.store.AddDirect(committer, v)
	b.onDetermined(ctx, committer, v)
	// Report it: HEARD(self, committer, v), subject to earmarking.
	if b.shouldRelay(committer, []topology.NodeID{b.self}) {
		ctx.Broadcast(sim.Message{
			Kind:   sim.KindHeard,
			Origin: committer,
			Value:  v,
			Path:   []topology.NodeID{b.self},
		})
	}
}

// acceptHeard validates, records, evaluates and possibly re-relays an
// indirect report.
func (b *bv4Proc) acceptHeard(ctx sim.Context, from topology.NodeID, m sim.Message) {
	n := len(m.Path)
	if n < 1 || n > sim.MaxHeardRelays {
		return
	}
	if m.Path[n-1] != from {
		return // the sender must have affixed its own identifier last
	}
	if m.Origin == b.self {
		return // reports about ourselves carry no information
	}
	for i, rel := range m.Path {
		if rel == b.self || rel == m.Origin {
			return // cyclic or self-involving chains are worthless
		}
		for _, prev := range m.Path[:i] {
			if rel == prev {
				return
			}
		}
	}
	key := newHeardKey(m.Origin, m.Path)
	if _, dup := b.firstHeard[key]; dup {
		return
	}
	b.firstHeard[key] = struct{}{}
	relays := make([]topology.NodeID, n)
	copy(relays, m.Path)
	b.store.Add(evidence.Chain{Origin: m.Origin, Value: m.Value, Relays: relays})

	// Evaluate reliable determination for this (origin, value).
	if b.isDetermined(ctx.Round(), m.Origin, m.Value) {
		b.onDetermined(ctx, m.Origin, m.Value)
	}

	// Re-relay with our identifier affixed, if the extended chain is still
	// designated (or always, in exact mode) and under the relay cap.
	if n < sim.MaxHeardRelays {
		var extBuf [sim.MaxHeardRelays]topology.NodeID
		ext := append(append(extBuf[:0], m.Path...), b.self)
		if b.shouldRelay(m.Origin, ext) {
			fwd := m.ExtendPath(b.self)
			ctx.Broadcast(fwd)
		}
	}
}

// isDetermined applies the mode's reliable-determination rule.
func (b *bv4Proc) isDetermined(round int, origin topology.NodeID, v byte) bool {
	if _, done := b.determined[detKey{origin: origin, value: v}]; done {
		return false // already counted; avoid re-evaluation
	}
	b.mc.AddEvidenceEvals(round, 1)
	if b.tr.Enabled() {
		b.tr.EvidenceEval(round, b.self, origin, v)
	}
	need := b.t + 1
	if b.mode == Designated {
		return evidence.DeterminedDesignated(b.net, b.ft, b.store, b.self, origin, v, need)
	}
	return evidence.DeterminedExact(b.net, b.store, b.self, origin, v, need)
}

// onDetermined counts a newly reliably-determined committer and applies the
// commit rule: t+1 determined committers of v inside one closed nbd.
func (b *bv4Proc) onDetermined(ctx sim.Context, origin topology.NodeID, v byte) {
	k := detKey{origin: origin, value: v}
	if _, done := b.determined[k]; done {
		return
	}
	b.determined[k] = struct{}{}
	commit := false
	for _, center := range b.net.ClosedNbdIDs(b.net.CoordOf(origin)) {
		b.counters[v][center]++
		if b.counters[v][center] >= b.t+1 {
			commit = true
		}
	}
	if commit && !b.decided {
		b.commit(ctx, v, b.quorumCert(v))
	}
}

// shouldRelay applies the earmarking filter: in exact mode everything under
// the cap is relayed; in designated mode only prefixes of designated paths.
func (b *bv4Proc) shouldRelay(origin topology.NodeID, relays []topology.NodeID) bool {
	if b.mode == Exact {
		return true
	}
	var buf [sim.MaxHeardRelays]grid.Coord
	offs := buf[:len(relays)]
	for i, rel := range relays {
		offs[i] = b.net.Delta(origin, rel)
	}
	return b.ft.ShouldRelay(offs)
}

// commit records the decision and announces it once. cert is nil on
// untraced runs.
func (b *bv4Proc) commit(ctx sim.Context, v byte, cert *etrace.Certificate) {
	b.decided = true
	b.value = v
	if b.tr.Enabled() {
		b.tr.Commit(ctx.Round(), b.self, v, cert)
	}
	if !b.announced {
		b.announced = true
		ctx.Broadcast(sim.Message{Kind: sim.KindCommitted, Origin: b.self, Value: v})
	}
}

// directCert builds the base-case certificate: the value was heard
// directly from the designated source. Nil on untraced runs.
func (b *bv4Proc) directCert(sender topology.NodeID, v byte) *etrace.Certificate {
	if !b.tr.Enabled() {
		return nil
	}
	return &etrace.Certificate{Rule: etrace.RuleDirect, Value: v, Voters: []topology.NodeID{sender}}
}

// quorumCert reconstructs the §VI commit rule's justification at the
// moment it fired: a closed-neighborhood center holding ≥ t+1 reliably-
// determined committers of v, each backed by a direct COMMITTED reception
// or by its confirmed disjoint chain family. Nil on untraced runs.
func (b *bv4Proc) quorumCert(v byte) *etrace.Certificate {
	if !b.tr.Enabled() {
		return nil
	}
	need := b.t + 1
	center := topology.None
	for c, n := range b.counters[v] {
		if n >= need && (center == topology.None || c < center) {
			center = c // smallest qualifying center, deterministically
		}
	}
	if center == topology.None {
		return nil // defensive: the caller observed the quorum fire
	}
	var origins []topology.NodeID
	for k := range b.determined {
		if k.value == v && b.net.WithinClosed(center, k.origin) {
			origins = append(origins, k.origin)
		}
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	cert := &etrace.Certificate{
		Rule: etrace.RuleQuorum, Value: v,
		Center: center, HasCenter: true,
		Evidence: make([]etrace.Evidence, 0, len(origins)),
	}
	for _, origin := range origins {
		item := etrace.Evidence{Origin: origin}
		if b.store.HasDirect(origin, v) {
			item.Direct = true
		} else {
			for _, c := range b.determinedChains(origin, v, need) {
				item.Chains = append(item.Chains, append([]topology.NodeID(nil), c.Relays...))
			}
		}
		cert.Evidence = append(cert.Evidence, item)
	}
	return cert
}

// determinedChains returns the explicit chain witness that reliably
// determined (origin, v) under the process's evidence mode. Evidence only
// accumulates, so the witness exists whenever determination fired.
func (b *bv4Proc) determinedChains(origin topology.NodeID, v byte, need int) []evidence.Chain {
	if b.mode == Designated {
		return b.ft.ConfirmedChainList(b.net, b.store, b.self, origin, v)
	}
	chains, _, _ := evidence.DeterminedExactWitness(b.net, b.store, b.self, origin, v, need)
	return chains
}

// Decided implements sim.Process.
func (b *bv4Proc) Decided() (byte, bool) {
	if !b.decided {
		return 0, false
	}
	return b.value, true
}

// heardKey canonically identifies a logical HEARD message (value excluded,
// so only the first of contradictory versions is accepted). The path is at
// most sim.MaxHeardRelays long, so origin plus path fit in a comparable
// array; unused slots hold topology.None, which no real relay can be.
type heardKey [1 + sim.MaxHeardRelays]topology.NodeID

// newHeardKey packs (origin, path) into a heardKey.
func newHeardKey(origin topology.NodeID, path []topology.NodeID) heardKey {
	k := heardKey{origin, topology.None, topology.None, topology.None}
	copy(k[1:], path)
	return k
}

var _ sim.Process = (*bv4Proc)(nil)
