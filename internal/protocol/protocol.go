package protocol

import (
	"fmt"

	"repro/internal/etrace"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind selects a protocol.
type Kind int

const (
	// Flood is the crash-stop flooding protocol (§VII).
	Flood Kind = iota + 1
	// CPA is the simple protocol of §IX.
	CPA
	// BV4 is the 4-hop indirect-report protocol of §VI.
	BV4
	// BV2 is the 2-hop simplified protocol of §VI-B.
	BV2
	// Bracha is Bracha's ECHO/READY reliable broadcast — the
	// message-passing literature's quorum protocol (N ≥ 3f+1), run under
	// the radio harness for head-to-head comparison with the paper's
	// locally-bounded protocols. Endorsements are counted by attributed
	// physical sender, so quorums need single-hop reach.
	Bracha
	// BrachaAuth is the authenticated variant: simulated signatures pin
	// VAL provenance and name ECHO/READY endorsers, and honest nodes relay
	// each distinct signed message once, so quorums assemble across
	// multi-hop relays on any connected graph.
	BrachaAuth
)

// String names the protocol.
func (k Kind) String() string {
	switch k {
	case Flood:
		return "flood"
	case CPA:
		return "cpa"
	case BV4:
		return "bv4"
	case BV2:
		return "bv2"
	case Bracha:
		return "bracha"
	case BrachaAuth:
		return "bracha-auth"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// EvidenceMode selects how BV4 evaluates indirect evidence.
type EvidenceMode int

const (
	// Designated uses the precomputed path families from the constructive
	// proof — the paper's "earmarking" state reduction. Nodes relay only
	// chain prefixes belonging to a designated family. This is the
	// default: sound, complete (per the proof), and polynomial.
	Designated EvidenceMode = iota + 1
	// Exact relays every chain up to the relay cap and evaluates the
	// commit rule by exact disjoint-path packing over all recorded
	// chains. Exponential message volume in dense networks; intended for
	// r = 1 validation runs.
	Exact
)

// String names the mode.
func (m EvidenceMode) String() string {
	switch m {
	case Designated:
		return "designated"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("EvidenceMode(%d)", int(m))
	}
}

// Params configures a protocol instance.
type Params struct {
	// Net is the radio network (required). Flood, CPA and the Bracha
	// family run on any topology.Graph family; BV4 and BV2 need the torus
	// geometry (grid neighborhood centers, designated path families) and
	// reject every other family at construction.
	Net topology.Graph
	// Source is the designated broadcast source.
	Source topology.NodeID
	// Value is the source's binary input.
	Value byte
	// T is the assumed fault bound (ignored by Flood): per closed
	// neighborhood for the paper's locally-bounded protocols, global (the
	// quorum f of N ≥ 3f+1) for the Bracha family.
	T int
	// Mode selects BV4 evidence handling; defaults to Designated.
	Mode EvidenceMode
	// SpoofingPossible drops the paper's no-address-spoofing assumption
	// (§X sensitivity study): honest receivers attribute messages to the
	// claimed sender instead of the physical transmitter, so a malicious
	// node may impersonate honest ones. The paper predicts reliable
	// broadcast becomes "extremely difficult to achieve"; experiment E22
	// demonstrates the resulting safety collapse.
	SpoofingPossible bool
	// Metrics optionally counts commit-rule evidence evaluations (the
	// disjoint-path checks of BV4/BV2 — the protocols' computational hot
	// spot). Nil disables the tap. The collector must be safe for
	// concurrent use; processes tap it from the concurrent runtime's node
	// goroutines.
	Metrics *metrics.Collector
	// Trace optionally records protocol events: evidence evaluations,
	// spoofed attributions, and commits with their justifying
	// certificates. Nil disables recording; processes skip certificate
	// construction entirely then. Like Metrics, it must be safe for
	// concurrent use.
	Trace *etrace.Recorder
}

// attributedSender resolves the identity a receiver ascribes a message to:
// the physical transmitter under the paper's authenticated medium, or the
// claimed identity when spoofing is possible and exercised.
func attributedSender(spoofingPossible bool, from topology.NodeID, m sim.Message) topology.NodeID {
	if spoofingPossible && m.Spoofed {
		return m.Claimed
	}
	return from
}

// torus returns the network as the grid family, or an error naming the
// protocol when the run was configured on a non-torus graph. The BV4/BV2
// chain machinery is inherently geometric — candidate neighborhood centers
// and designated families are grid constructions — so those protocols are
// torus-only.
func (p Params) torus(kind Kind) (*topology.Network, error) {
	net, ok := p.Net.(*topology.Network)
	if !ok {
		return nil, fmt.Errorf("protocol: %s requires the torus topology, got family %q", kind, p.Net.Family())
	}
	return net, nil
}

// validate checks common parameter constraints.
func (p Params) validate() error {
	if p.Net == nil {
		return fmt.Errorf("protocol: Params.Net is required")
	}
	if p.Source < 0 || int(p.Source) >= p.Net.Size() {
		return fmt.Errorf("protocol: source %d out of range", p.Source)
	}
	if p.Value > 1 {
		return fmt.Errorf("protocol: value must be binary, got %d", p.Value)
	}
	if p.T < 0 {
		return fmt.Errorf("protocol: negative fault bound %d", p.T)
	}
	return nil
}

// NewFactory returns the honest-process factory for the selected protocol.
// Combine it with fault strategies at the runner level to model adversaries.
func NewFactory(kind Kind, p Params) (sim.ProcessFactory, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch kind {
	case Flood:
		return newFloodFactory(p), nil
	case CPA:
		return newCPAFactory(p), nil
	case BV4:
		return newBV4Factory(p)
	case BV2:
		return newBV2Factory(p)
	case Bracha, BrachaAuth:
		return newBrachaFactory(p, kind)
	default:
		return nil, fmt.Errorf("protocol: unknown protocol kind %d", int(kind))
	}
}
