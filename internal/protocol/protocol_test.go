package protocol

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/topology"
)

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Flood, "flood"},
		{CPA, "cpa"},
		{BV4, "bv4"},
		{BV2, "bv2"},
		{Kind(0), "Kind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestEvidenceModeString(t *testing.T) {
	if Designated.String() != "designated" || Exact.String() != "exact" {
		t.Error("mode names wrong")
	}
	if EvidenceMode(9).String() != "EvidenceMode(9)" {
		t.Error("unknown mode formatting")
	}
}

func TestParamsValidation(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	cases := []Params{
		{},                         // nil net
		{Net: net, Source: -1},     // bad source
		{Net: net, Source: 10_000}, // bad source
		{Net: net, Value: 2},       // non-binary value
		{Net: net, T: -1},          // negative bound
	}
	for i, p := range cases {
		if _, err := NewFactory(Flood, p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := NewFactory(Kind(99), Params{Net: net}); err == nil {
		t.Error("unknown protocol must be rejected")
	}
}

func TestBV4ModeValidation(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	if _, err := NewFactory(BV4, Params{Net: net, Mode: EvidenceMode(9)}); err == nil {
		t.Error("invalid evidence mode must be rejected")
	}
	l2net, err := topology.New(grid.Torus{W: 9, H: 9}, grid.L2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFactory(BV4, Params{Net: l2net, Mode: Designated}); err == nil {
		t.Error("designated mode requires L∞")
	}
	if _, err := NewFactory(BV4, Params{Net: l2net, Mode: Exact}); err != nil {
		t.Errorf("exact mode must allow L2: %v", err)
	}
}

func TestRunRejectsInvalidAssignments(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	src := net.IDOf(grid.C(0, 0))
	_, err := Run(RunConfig{
		Kind:      Flood,
		Params:    Params{Net: net, Source: src, Value: 1},
		Byzantine: map[topology.NodeID]fault.Strategy{5: fault.Silent},
		Crash:     map[topology.NodeID]int{5: 0},
	})
	if err == nil {
		t.Error("byzantine+crashed node must be rejected")
	}
	_, err = Run(RunConfig{
		Kind:      Flood,
		Params:    Params{Net: net, Source: src, Value: 1},
		Byzantine: map[topology.NodeID]fault.Strategy{src: fault.Silent},
	})
	if err == nil {
		t.Error("byzantine source must be rejected")
	}
}

func TestFloodAllCommitFaultFree(t *testing.T) {
	net := testNet(t, 12, 12, 2)
	src := net.IDOf(grid.C(0, 0))
	out, err := Run(RunConfig{Kind: Flood, Params: Params{Net: net, Source: src, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCorrect() {
		t.Errorf("flood fault-free: %+v", out)
	}
	if out.Honest != net.Size() {
		t.Errorf("honest = %d", out.Honest)
	}
}

func TestCPAAllCommitFaultFree(t *testing.T) {
	for _, r := range []int{1, 2, 3} {
		net := testNet(t, 8*r, 8*r, r)
		src := net.IDOf(grid.C(0, 0))
		out, err := Run(RunConfig{Kind: CPA, Params: Params{Net: net, Source: src, Value: 1, T: 0}})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllCorrect() {
			t.Errorf("r=%d: CPA fault-free: correct=%d wrong=%d undecided=%d",
				r, out.Correct, out.Wrong, out.Undecided)
		}
	}
}

func TestBV2AllCommitFaultFree(t *testing.T) {
	for _, r := range []int{1, 2} {
		net := testNet(t, 9*r, 9*r, r)
		src := net.IDOf(grid.C(0, 0))
		out, err := Run(RunConfig{Kind: BV2, Params: Params{Net: net, Source: src, Value: 1, T: 0}})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllCorrect() {
			t.Errorf("r=%d: BV2 fault-free: correct=%d wrong=%d undecided=%d",
				r, out.Correct, out.Wrong, out.Undecided)
		}
	}
}

func TestBV4AllCommitFaultFree(t *testing.T) {
	for _, mode := range []EvidenceMode{Designated, Exact} {
		net := testNet(t, 9, 9, 1)
		src := net.IDOf(grid.C(0, 0))
		out, err := Run(RunConfig{
			Kind:   BV4,
			Params: Params{Net: net, Source: src, Value: 1, T: 0, Mode: mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllCorrect() {
			t.Errorf("mode=%v: BV4 fault-free: correct=%d wrong=%d undecided=%d",
				mode, out.Correct, out.Wrong, out.Undecided)
		}
	}
}

func TestBV4DesignatedFaultFreeR2(t *testing.T) {
	net := testNet(t, 15, 15, 2)
	src := net.IDOf(grid.C(0, 0))
	out, err := Run(RunConfig{
		Kind:   BV4,
		Params: Params{Net: net, Source: src, Value: 1, T: 0, Mode: Designated},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCorrect() {
		t.Errorf("BV4 designated r=2: correct=%d wrong=%d undecided=%d",
			out.Correct, out.Wrong, out.Undecided)
	}
}
