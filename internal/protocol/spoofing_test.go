package protocol

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
)

// TestSpooferHarmlessUnderAuthentication verifies that the §X spoofing
// adversary is completely neutralized by the paper's no-spoofing assumption:
// honest receivers attribute each message to its physical transmitter and
// discard the inconsistent COMMITTED origins.
func TestSpooferHarmlessUnderAuthentication(t *testing.T) {
	for _, kind := range []Kind{CPA, BV2, BV4} {
		net := testNet(t, 14, 14, 1)
		src := net.IDOf(grid.C(0, 0))
		byz, err := fault.RandomBounded(net, 1, -1, 5)
		if err != nil {
			t.Fatal(err)
		}
		filtered := byz[:0]
		for _, id := range byz {
			if id != src {
				filtered = append(filtered, id)
			}
		}
		out, err := Run(RunConfig{
			Kind:      kind,
			Params:    Params{Net: net, Source: src, Value: 1, T: 1},
			Byzantine: byzMap(filtered, fault.Spoofer),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllCorrect() {
			t.Errorf("%v: spoofer broke an authenticated run: %+v", kind, out)
		}
	}
}

// TestSpooferBreaksSafetyWithoutAuthentication reproduces the §X warning:
// once SpoofingPossible is set, the same adversary produces wrong commits.
func TestSpooferBreaksSafetyWithoutAuthentication(t *testing.T) {
	broken := 0
	for _, kind := range []Kind{CPA, BV2, BV4} {
		net := testNet(t, 14, 14, 1)
		src := net.IDOf(grid.C(0, 0))
		byz, err := fault.RandomBounded(net, 1, -1, 5)
		if err != nil {
			t.Fatal(err)
		}
		filtered := byz[:0]
		for _, id := range byz {
			if id != src {
				filtered = append(filtered, id)
			}
		}
		out, err := Run(RunConfig{
			Kind: kind,
			Params: Params{
				Net: net, Source: src, Value: 1, T: 1,
				SpoofingPossible: true,
			},
			Byzantine: byzMap(filtered, fault.Spoofer),
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Wrong > 0 {
			broken++
		}
	}
	if broken == 0 {
		t.Error("no protocol lost safety under spoofing — the §X sensitivity is not reproduced")
	}
}

// TestLossyMediumNeverCausesWrongCommits: random loss can only remove
// messages, so safety is unaffected even at heavy loss.
func TestLossyMediumNeverCausesWrongCommits(t *testing.T) {
	net := testNet(t, 14, 14, 1)
	src := net.IDOf(grid.C(0, 0))
	for _, kind := range []Kind{Flood, CPA, BV2} {
		for seed := int64(0); seed < 3; seed++ {
			out, err := Run(RunConfig{
				Kind:   kind,
				Params: Params{Net: net, Source: src, Value: 1, T: 1},
				Medium: simMedium(0.5, 2, seed),
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Wrong != 0 {
				t.Errorf("%v seed=%d: %d wrong commits under random loss", kind, seed, out.Wrong)
			}
		}
	}
}

// simMedium builds a sim.Medium without importing sim at every call site.
func simMedium(loss float64, retx int, seed int64) sim.Medium {
	return sim.Medium{LossRate: loss, Retransmit: retx, Seed: seed}
}
