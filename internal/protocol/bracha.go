package protocol

import (
	"fmt"

	"repro/internal/etrace"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// brachaProc is Bracha's ECHO/READY reliable broadcast — the message-passing
// literature's quorum protocol, run under the radio harness so the paper's
// locally-bounded protocols (t < r(2r+1)/2 faults per neighborhood) can be
// compared head-to-head with the global-quorum tradition (N ≥ 3f+1):
//
//   - VAL: the source transmits its value.
//   - ECHO: on accepting VAL, a node endorses the value once.
//   - READY: on an N−f ECHO quorum, or on f+1 READY amplification, a node
//     announces readiness once (for a single value).
//   - deliver: on 2f+1 distinct READY endorsements of one value.
//
// Two variants share this state machine:
//
// Plain (auth=false) counts endorsements by attributed sender — the radio
// medium's physical sender authentication is the only identity layer — so
// quorums assemble from single-hop receptions and the protocol needs an
// effectively complete graph (every honest node within one hop of almost
// every other). That requirement is itself an experimental result: the
// paper's protocols tolerate sparse geometry, the quorum tradition does not.
//
// Authenticated (auth=true) simulates digital signatures by pinning message
// provenance: VAL is accepted only with Origin = source plus a custody path
// (direct reception from the source, or a non-empty relay path), ECHO/READY
// carry their endorser in Origin, and every honest node relays each distinct
// signed message once (signed flooding). Quorums then assemble across
// multi-hop relays and the protocol runs on any connected graph. The fault
// strategies shipped here never forge another node's Origin on these kinds —
// signature forgery is exactly what the simulated signatures rule out.
//
// The engine's radio medium is irreflexive (a node does not hear its own
// broadcast), so a node counts its own ECHO/READY in its tallies the moment
// it transmits them; the quorum thresholds are over all N nodes.
type brachaProc struct {
	self    topology.NodeID
	source  topology.NodeID
	n, f    int
	auth    bool
	spoof   bool // §X study: medium does not authenticate senders
	value   byte
	decided bool
	echoed  bool
	// readied/readyVal: a node announces READY at most once, for a single
	// value (Bracha's one-READY discipline).
	readied  bool
	readyVal byte
	// echoes[v]/readies[v] hold the distinct endorsers counted per value:
	// attributed physical senders (plain) or Origin signers (auth).
	echoes  [2]map[topology.NodeID]struct{}
	readies [2]map[topology.NodeID]struct{}
	// relayed dedups the authenticated variant's signed flooding: each
	// distinct (kind, signer, value) message is re-broadcast once.
	relayed map[string]struct{}
	mc      *metrics.Collector
	tr      *etrace.Recorder
	// Trace-only certificate state, never allocated on untraced runs:
	// ordered endorser lists per value, and the ECHO quorum snapshot taken
	// when the node's own READY fired via the echo path.
	echoVoters  [2][]topology.NodeID
	readyVoters [2][]topology.NodeID
	echoCert    []topology.NodeID
}

// newBrachaFactory builds Bracha processes. The quorum thresholds only
// intersect when N ≥ 3f+1, so smaller networks are rejected at construction.
func newBrachaFactory(p Params, kind Kind) (sim.ProcessFactory, error) {
	auth := kind == BrachaAuth
	if n := p.Net.Size(); n < 3*p.T+1 {
		return nil, fmt.Errorf("protocol: %s needs N ≥ 3f+1 for quorum intersection, got N = %d, f = %d", kind, n, p.T)
	}
	return func(id topology.NodeID) sim.Process {
		b := &brachaProc{
			self:   id,
			source: p.Source,
			n:      p.Net.Size(),
			f:      p.T,
			auth:   auth,
			spoof:  p.SpoofingPossible,
			value:  p.Value,
			mc:     p.Metrics,
			tr:     p.Trace,
		}
		for v := 0; v < 2; v++ {
			b.echoes[v] = make(map[topology.NodeID]struct{})
			b.readies[v] = make(map[topology.NodeID]struct{})
		}
		if auth {
			b.relayed = make(map[string]struct{})
		}
		return b
	}, nil
}

// Init implements sim.Process: the source commits to its own input by fiat
// (the repo-wide source convention), transmits VAL, and — being a quorum
// participant like everyone else — endorses its own value with an ECHO.
func (b *brachaProc) Init(ctx sim.Context) {
	if b.self != b.source {
		return
	}
	b.decided = true
	if b.tr.Enabled() {
		b.tr.Commit(ctx.Round(), b.self, b.value,
			&etrace.Certificate{Rule: etrace.RuleSource, Value: b.value})
	}
	val := sim.Message{Kind: sim.KindValue, Value: b.value}
	if b.auth {
		val.Origin = b.source // the simulated signature's subject
	}
	ctx.Broadcast(val)
	b.echo(ctx, b.value)
}

// Deliver implements sim.Process.
func (b *brachaProc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	if m.Value > 1 {
		return
	}
	switch m.Kind {
	case sim.KindValue, sim.KindEcho, sim.KindReady:
	default:
		return // other protocols' dialects: Byzantine noise to Bracha
	}
	if !b.auth && b.decided && b.readied {
		return // plain mode: fully resolved, no relaying duties remain
	}
	sender := attributedSender(b.spoof, from, m)
	if b.tr.Enabled() && sender != from {
		b.tr.Spoof(ctx.Round(), b.self, from, sender)
	}
	switch m.Kind {
	case sim.KindValue:
		b.deliverVal(ctx, from, sender, m)
	case sim.KindEcho:
		if b.auth {
			b.relayOnce(ctx, m)
			if b.addEcho(m.Origin, m.Value) {
				b.evaluate(ctx, m.Value)
			}
			return
		}
		if b.addEcho(sender, m.Value) {
			b.evaluate(ctx, m.Value)
		}
	case sim.KindReady:
		if b.auth {
			b.relayOnce(ctx, m)
			if b.addReady(m.Origin, m.Value) {
				b.evaluate(ctx, m.Value)
			}
			return
		}
		if b.addReady(sender, m.Value) {
			b.evaluate(ctx, m.Value)
		}
	}
}

// deliverVal accepts (and, authenticated, relays) the source's VAL.
func (b *brachaProc) deliverVal(ctx sim.Context, from, sender topology.NodeID, m sim.Message) {
	if !b.auth {
		// Plain mode: only a VAL attributed to the source itself is
		// accepted — there is no signature to carry it further.
		if sender == b.source {
			b.echo(ctx, m.Value)
		}
		return
	}
	// Authenticated mode: the provenance pin. A valid VAL carries the
	// source's signature (Origin = source) and arrived either from the
	// source itself or with a custody chain of at least one relay; a bare
	// Origin claim from elsewhere (e.g. a spoofed announcement) fails both.
	if m.Origin != b.source || (from != b.source && len(m.Path) == 0) {
		return
	}
	key := fmt.Sprintf("V|%d", m.Value)
	if _, done := b.relayed[key]; !done {
		b.relayed[key] = struct{}{}
		ctx.Broadcast(m.ExtendPath(b.self))
	}
	b.echo(ctx, m.Value)
}

// relayOnce re-broadcasts a distinct signed ECHO/READY exactly once — the
// signed flooding that lets quorums assemble across multi-hop topologies.
func (b *brachaProc) relayOnce(ctx sim.Context, m sim.Message) {
	key := fmt.Sprintf("%d|%d|%d", m.Kind, m.Origin, m.Value)
	if _, done := b.relayed[key]; done {
		return
	}
	b.relayed[key] = struct{}{}
	ctx.Broadcast(m)
}

// echo makes the node's one-time ECHO endorsement of value v.
func (b *brachaProc) echo(ctx sim.Context, v byte) {
	if b.echoed {
		return
	}
	b.echoed = true
	ctx.Broadcast(sim.Message{Kind: sim.KindEcho, Value: v, Origin: b.self})
	if b.addEcho(b.self, v) {
		b.evaluate(ctx, v)
	}
}

// addEcho records a distinct ECHO endorser; true means the tally changed.
func (b *brachaProc) addEcho(id topology.NodeID, v byte) bool {
	if _, seen := b.echoes[v][id]; seen {
		return false
	}
	b.echoes[v][id] = struct{}{}
	if b.tr.Enabled() {
		b.echoVoters[v] = append(b.echoVoters[v], id)
	}
	return true
}

// addReady records a distinct READY endorser; true means the tally changed.
func (b *brachaProc) addReady(id topology.NodeID, v byte) bool {
	if _, seen := b.readies[v][id]; seen {
		return false
	}
	b.readies[v][id] = struct{}{}
	if b.tr.Enabled() {
		b.readyVoters[v] = append(b.readyVoters[v], id)
	}
	return true
}

// evaluate re-checks the quorum thresholds for v after a tally change — the
// protocol's commit-rule evidence evaluation, tapped like the BV protocols'.
func (b *brachaProc) evaluate(ctx sim.Context, v byte) {
	b.mc.AddEvidenceEvals(ctx.Round(), 1)
	if b.tr.Enabled() {
		b.tr.EvidenceEval(ctx.Round(), b.self, b.source, v)
	}
	if !b.readied && (len(b.echoes[v]) >= b.n-b.f || len(b.readies[v]) >= b.f+1) {
		b.readied = true
		b.readyVal = v
		if b.tr.Enabled() && len(b.echoes[v]) >= b.n-b.f {
			// The READY fired via the echo path: snapshot the quorum for
			// the delivery certificate.
			b.echoCert = append([]topology.NodeID(nil), b.echoVoters[v]...)
		}
		ctx.Broadcast(sim.Message{Kind: sim.KindReady, Value: v, Origin: b.self})
		b.addReady(b.self, v)
	}
	if !b.decided && len(b.readies[v]) >= 2*b.f+1 {
		b.commit(ctx, v)
	}
}

// commit records the delivery. The READY announcement already went out, so
// unlike the paper's protocols there is nothing left to transmit.
func (b *brachaProc) commit(ctx sim.Context, v byte) {
	b.decided = true
	b.value = v
	if b.tr.Enabled() {
		cert := &etrace.Certificate{
			Rule:   etrace.RuleReadyQuorum,
			Value:  v,
			Voters: append([]topology.NodeID(nil), b.readyVoters[v]...),
		}
		if b.readyVal == v && len(b.echoCert) > 0 {
			cert.Echoes = append([]topology.NodeID(nil), b.echoCert...)
		}
		b.tr.Commit(ctx.Round(), b.self, v, cert)
	}
}

// Decided implements sim.Process.
func (b *brachaProc) Decided() (byte, bool) {
	if !b.decided {
		return 0, false
	}
	return b.value, true
}

var _ sim.Process = (*brachaProc)(nil)
