package protocol

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/topology"
)

// captureCtx records broadcasts for white-box process tests.
type captureCtx struct {
	self topology.NodeID
	out  []sim.Message
}

func (c *captureCtx) Self() topology.NodeID   { return c.self }
func (c *captureCtx) Round() int              { return 1 }
func (c *captureCtx) Broadcast(m sim.Message) { c.out = append(c.out, m) }

// newBV4 builds a single bv4 process for white-box testing.
func newBV4(t *testing.T, net *topology.Network, self, source topology.NodeID, tVal int, mode EvidenceMode) *bv4Proc {
	t.Helper()
	factory, err := newBV4Factory(Params{Net: net, Source: source, Value: 1, T: tVal, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return factory(self).(*bv4Proc)
}

func TestBV4RejectsMalformedHeard(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	self := net.IDOf(grid.C(4, 4))
	src := net.IDOf(grid.C(0, 0))
	p := newBV4(t, net, self, src, 1, Exact)
	ctx := &captureCtx{self: self}
	origin := net.IDOf(grid.C(6, 4))
	relay := net.IDOf(grid.C(5, 4))

	cases := []struct {
		name string
		m    sim.Message
		from topology.NodeID
	}{
		{"empty path", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 1}, relay},
		{"oversized path", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 1,
			Path: []topology.NodeID{1, 2, 3, 4}}, 4},
		{"last relay is not the sender", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 1,
			Path: []topology.NodeID{relay}}, net.IDOf(grid.C(3, 4))},
		{"origin inside the path", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 1,
			Path: []topology.NodeID{origin, relay}}, relay},
		{"receiver inside the path", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 1,
			Path: []topology.NodeID{self, relay}}, relay},
		{"duplicate relay", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 1,
			Path: []topology.NodeID{relay, relay}}, relay},
		{"report about the receiver itself", sim.Message{Kind: sim.KindHeard, Origin: self, Value: 1,
			Path: []topology.NodeID{relay}}, relay},
		{"non-binary value", sim.Message{Kind: sim.KindHeard, Origin: origin, Value: 7,
			Path: []topology.NodeID{relay}}, relay},
	}
	for _, tc := range cases {
		p.Deliver(ctx, tc.from, tc.m)
		if got := len(p.store.Chains(origin, 1)) + len(p.store.Chains(self, 1)); got != 0 {
			t.Errorf("%s: malformed HEARD was recorded", tc.name)
		}
		if len(ctx.out) != 0 {
			t.Errorf("%s: malformed HEARD was relayed: %v", tc.name, ctx.out)
		}
	}
}

func TestBV4AcceptsValidHeardAndRelays(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	self := net.IDOf(grid.C(4, 4))
	src := net.IDOf(grid.C(0, 0))
	p := newBV4(t, net, self, src, 1, Exact)
	ctx := &captureCtx{self: self}
	origin := net.IDOf(grid.C(6, 4))
	relay := net.IDOf(grid.C(5, 4))
	p.Deliver(ctx, relay, sim.Message{
		Kind: sim.KindHeard, Origin: origin, Value: 1, Path: []topology.NodeID{relay},
	})
	if len(p.store.Chains(origin, 1)) != 1 {
		t.Fatal("valid chain not recorded")
	}
	// Exact mode relays everything under the cap, with self affixed.
	if len(ctx.out) != 1 {
		t.Fatalf("expected 1 relay, got %d", len(ctx.out))
	}
	fwd := ctx.out[0]
	if fwd.Kind != sim.KindHeard || len(fwd.Path) != 2 || fwd.Path[1] != self {
		t.Errorf("bad relay %v", fwd)
	}
	// A duplicate logical message (same origin+path, flipped value) is
	// ignored: first version wins (§V).
	before := len(ctx.out)
	p.Deliver(ctx, relay, sim.Message{
		Kind: sim.KindHeard, Origin: origin, Value: 0, Path: []topology.NodeID{relay},
	})
	if len(p.store.Chains(origin, 0)) != 0 {
		t.Error("contradictory retransmission must be ignored")
	}
	if len(ctx.out) != before {
		t.Error("contradictory retransmission must not be relayed")
	}
}

func TestBV4MaxLengthChainRecordedNotRelayed(t *testing.T) {
	net := testNet(t, 11, 11, 1)
	self := net.IDOf(grid.C(5, 5))
	src := net.IDOf(grid.C(0, 0))
	p := newBV4(t, net, self, src, 1, Exact)
	ctx := &captureCtx{self: self}
	origin := net.IDOf(grid.C(9, 5))
	path := []topology.NodeID{
		net.IDOf(grid.C(8, 5)), net.IDOf(grid.C(7, 5)), net.IDOf(grid.C(6, 5)),
	}
	p.Deliver(ctx, path[2], sim.Message{
		Kind: sim.KindHeard, Origin: origin, Value: 1, Path: path,
	})
	if len(p.store.Chains(origin, 1)) != 1 {
		t.Error("three-relay chain must be recorded")
	}
	if len(ctx.out) != 0 {
		t.Error("three-relay chain must not be re-relayed (fourth hop records only)")
	}
}

func TestBV4CommittedSpoofDropped(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	self := net.IDOf(grid.C(4, 4))
	src := net.IDOf(grid.C(0, 0))
	p := newBV4(t, net, self, src, 1, Designated)
	ctx := &captureCtx{self: self}
	liar := net.IDOf(grid.C(5, 4))
	victim := net.IDOf(grid.C(3, 4))
	// COMMITTED whose Origin differs from the sender: physically impossible
	// under the authenticated medium; must be dropped.
	p.Deliver(ctx, liar, sim.Message{Kind: sim.KindCommitted, Origin: victim, Value: 0})
	if p.store.HasDirect(victim, 0) || p.store.HasDirect(liar, 0) {
		t.Error("spoofed COMMITTED must be dropped entirely")
	}
}

func TestBV4FirstCommittedWins(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	self := net.IDOf(grid.C(4, 4))
	src := net.IDOf(grid.C(0, 0))
	p := newBV4(t, net, self, src, 1, Designated)
	ctx := &captureCtx{self: self}
	n := net.IDOf(grid.C(5, 4))
	p.Deliver(ctx, n, sim.Message{Kind: sim.KindCommitted, Origin: n, Value: 1})
	p.Deliver(ctx, n, sim.Message{Kind: sim.KindCommitted, Origin: n, Value: 0})
	if !p.store.HasDirect(n, 1) {
		t.Error("first announcement lost")
	}
	if p.store.HasDirect(n, 0) {
		t.Error("contradictory announcement accepted (§V violation)")
	}
}

func TestBV4SourceValueCommitsNeighbor(t *testing.T) {
	net := testNet(t, 9, 9, 1)
	src := net.IDOf(grid.C(0, 0))
	nb := net.IDOf(grid.C(1, 0))
	p := newBV4(t, net, nb, src, 1, Designated)
	ctx := &captureCtx{self: nb}
	p.Deliver(ctx, src, sim.Message{Kind: sim.KindValue, Value: 1})
	if v, ok := p.Decided(); !ok || v != 1 {
		t.Fatalf("source neighbor must commit immediately: %v %v", v, ok)
	}
	// It must announce its own commitment exactly once.
	committed := 0
	for _, m := range ctx.out {
		if m.Kind == sim.KindCommitted && m.Origin == nb {
			committed++
		}
	}
	if committed != 1 {
		t.Errorf("neighbor announced %d times", committed)
	}
	// VALUE from a non-source node is ignored.
	other := net.IDOf(grid.C(2, 0))
	p2 := newBV4(t, net, nb, src, 1, Designated)
	ctx2 := &captureCtx{self: nb}
	p2.Deliver(ctx2, other, sim.Message{Kind: sim.KindValue, Value: 0})
	if _, ok := p2.Decided(); ok {
		t.Error("VALUE from a non-source must not commit")
	}
}

func TestHeardKeyDistinguishes(t *testing.T) {
	a := newHeardKey(1, []topology.NodeID{2, 3})
	variants := []heardKey{
		newHeardKey(2, []topology.NodeID{2, 3}),
		newHeardKey(1, []topology.NodeID{3, 2}),
		newHeardKey(1, []topology.NodeID{2}),
		newHeardKey(1, nil),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collides", i)
		}
	}
	if newHeardKey(1, []topology.NodeID{2, 3}) != a {
		t.Error("identical keys must match")
	}
}
