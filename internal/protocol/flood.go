package protocol

import (
	"repro/internal/etrace"
	"repro/internal/sim"
	"repro/internal/topology"
)

// floodProc is the crash-stop protocol of §VII: "Each node that receives a
// value, commits to it, re-broadcasts it once for the benefit of others, and
// then may terminate local execution of the protocol." No fault bound is
// consulted — with crash-stop failures the sole criterion is reachability.
type floodProc struct {
	self    topology.NodeID
	source  topology.NodeID
	value   byte
	decided bool
	tr      *etrace.Recorder // event/certificate tap (nil = off)
}

// newFloodFactory builds flood processes.
func newFloodFactory(p Params) sim.ProcessFactory {
	return func(id topology.NodeID) sim.Process {
		return &floodProc{self: id, source: p.Source, value: p.Value, tr: p.Trace}
	}
}

// Init implements sim.Process.
func (f *floodProc) Init(ctx sim.Context) {
	if f.self == f.source {
		f.decided = true
		if f.tr.Enabled() {
			f.tr.Commit(ctx.Round(), f.self, f.value,
				&etrace.Certificate{Rule: etrace.RuleSource, Value: f.value})
		}
		ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: f.value})
	}
}

// Deliver implements sim.Process.
func (f *floodProc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	if f.decided || m.Kind != sim.KindValue {
		return
	}
	f.decided = true
	f.value = m.Value
	if f.tr.Enabled() {
		// Delivery provenance: with crash-stop faults the sole commit
		// justification is "who handed us the value".
		f.tr.Commit(ctx.Round(), f.self, m.Value, &etrace.Certificate{
			Rule: etrace.RuleFlood, Value: m.Value,
			Voters: []topology.NodeID{from},
		})
	}
	ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: m.Value})
}

// Decided implements sim.Process.
func (f *floodProc) Decided() (byte, bool) {
	if !f.decided {
		return 0, false
	}
	return f.value, true
}

// CloneProcess implements sim.CloneableProcess: flood state is a handful of
// scalars, so a struct copy is an exact fork. The recorder pointer is shared
// deliberately — forking is gated to untraced engines, where it is nil.
func (f *floodProc) CloneProcess() sim.Process {
	g := *f
	return &g
}

var _ sim.Process = (*floodProc)(nil)
var _ sim.CloneableProcess = (*floodProc)(nil)
