package protocol

import (
	"repro/internal/etrace"
	"repro/internal/sim"
	"repro/internal/topology"
)

// cpaProc is the simple protocol of §IX (Koo's protocol; the Certified
// Propagation Algorithm): the source transmits its value; the source's
// neighbors commit instantly and announce their committed value once; every
// other node commits when it has heard the same value announced by at least
// t+1 distinct neighbors, announces once, and terminates. Theorem 6 proves
// this tolerates t ≤ (2/3)r² in L∞.
type cpaProc struct {
	self    topology.NodeID
	source  topology.NodeID
	t       int
	spoof   bool // §X study: medium does not authenticate senders
	value   byte
	decided bool
	// votes[v] counts distinct neighbors that announced value v. Only a
	// neighbor's first announcement counts (§V: accept the first version,
	// ignore the rest), so the heard set is the dedup and plain counters
	// suffice — no per-value membership sets on the delivery path.
	votes [2]int
	heard map[topology.NodeID]struct{} // neighbors whose announcement was consumed
	tr    *etrace.Recorder             // event/certificate tap (nil = off)
	// voters[v] retains the counted announcers per value — trace-only
	// state (the vote-set certificate), never allocated on untraced runs.
	voters [2][]topology.NodeID
}

// newCPAFactory builds CPA processes.
func newCPAFactory(p Params) sim.ProcessFactory {
	return func(id topology.NodeID) sim.Process {
		return &cpaProc{
			self:   id,
			source: p.Source,
			t:      p.T,
			spoof:  p.SpoofingPossible,
			value:  p.Value,
			heard:  make(map[topology.NodeID]struct{}),
			tr:     p.Trace,
		}
	}
}

// Init implements sim.Process.
func (c *cpaProc) Init(ctx sim.Context) {
	if c.self == c.source {
		c.decided = true
		if c.tr.Enabled() {
			c.tr.Commit(ctx.Round(), c.self, c.value,
				&etrace.Certificate{Rule: etrace.RuleSource, Value: c.value})
		}
		ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: c.value})
	}
}

// Deliver implements sim.Process.
func (c *cpaProc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	if c.decided || m.Kind != sim.KindValue || m.Value > 1 {
		return
	}
	sender := attributedSender(c.spoof, from, m)
	if c.tr.Enabled() && sender != from {
		c.tr.Spoof(ctx.Round(), c.self, from, sender)
	}
	// Direct reception from the designated source: commit immediately.
	if sender == c.source {
		var cert *etrace.Certificate
		if c.tr.Enabled() {
			cert = &etrace.Certificate{Rule: etrace.RuleDirect, Value: m.Value,
				Voters: []topology.NodeID{sender}}
		}
		c.commit(ctx, m.Value, cert)
		return
	}
	if _, seen := c.heard[sender]; seen {
		return // only a neighbor's first announcement counts
	}
	c.heard[sender] = struct{}{}
	c.votes[m.Value]++
	if c.tr.Enabled() {
		c.voters[m.Value] = append(c.voters[m.Value], sender)
	}
	if c.votes[m.Value] >= c.t+1 {
		var cert *etrace.Certificate
		if c.tr.Enabled() {
			cert = &etrace.Certificate{Rule: etrace.RuleVotes, Value: m.Value,
				Voters: append([]topology.NodeID(nil), c.voters[m.Value]...)}
		}
		c.commit(ctx, m.Value, cert)
	}
}

// commit records the decision and makes the one-time announcement. cert is
// nil on untraced runs.
func (c *cpaProc) commit(ctx sim.Context, v byte, cert *etrace.Certificate) {
	c.decided = true
	c.value = v
	if c.tr.Enabled() {
		c.tr.Commit(ctx.Round(), c.self, v, cert)
	}
	ctx.Broadcast(sim.Message{Kind: sim.KindValue, Value: v})
}

// Decided implements sim.Process.
func (c *cpaProc) Decided() (byte, bool) {
	if !c.decided {
		return 0, false
	}
	return c.value, true
}

// CloneProcess implements sim.CloneableProcess: deep-copies the heard set
// and the trace-only voter lists so the fork's vote bookkeeping evolves
// independently of the original's.
func (c *cpaProc) CloneProcess() sim.Process {
	g := *c
	g.heard = make(map[topology.NodeID]struct{}, len(c.heard))
	for id := range c.heard {
		g.heard[id] = struct{}{}
	}
	for v := range c.voters {
		g.voters[v] = append([]topology.NodeID(nil), c.voters[v]...)
	}
	return &g
}

var _ sim.Process = (*cpaProc)(nil)
var _ sim.CloneableProcess = (*cpaProc)(nil)
