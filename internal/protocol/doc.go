// Package protocol implements the paper's four broadcast protocols as
// sim.Process state machines over a shared radio network:
//
//   - Flood — the crash-stop protocol of §VII: commit to the first value
//     heard, relay once.
//   - CPA — the "extremely simple" protocol of §IX (Koo's protocol, called
//     the Certified Propagation Algorithm in later work): commit when t+1
//     neighbors announced the same value.
//   - BV4 — the paper's main contribution (§VI): indirect HEARD reports up
//     to four hops, commit on t+1 reliably-determined committers inside one
//     neighborhood. Tolerates t < r(2r+1)/2 in L∞ (Theorem 1).
//   - BV2 — the simplified two-hop protocol of §VI-B with the same
//     threshold.
//
// All honest processes enforce the medium's assumptions defensively: a
// COMMITTED message's origin is its authenticated sender; a HEARD message's
// last relay must be its sender; and for contradictory retransmissions only
// the first version is accepted (§V).
package protocol
