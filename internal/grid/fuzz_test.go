package grid

import "testing"

// FuzzTorusWrapDelta fuzzes the torus arithmetic invariants: Wrap is
// idempotent and lands in range; Delta round-trips.
func FuzzTorusWrapDelta(f *testing.F) {
	f.Add(10, 8, 3, -5, 17, 2)
	f.Add(5, 5, 0, 0, 4, 4)
	f.Add(100, 3, -1000, 999, 50, 1)
	f.Fuzz(func(t *testing.T, w, h, ax, ay, bx, by int) {
		if w < 1 || h < 1 || w > 1000 || h > 1000 {
			t.Skip()
		}
		tor := Torus{W: w, H: h}
		a := tor.Wrap(C(ax, ay))
		b := tor.Wrap(C(bx, by))
		if a.X < 0 || a.X >= w || a.Y < 0 || a.Y >= h {
			t.Fatalf("Wrap out of range: %v", a)
		}
		if tor.Wrap(a) != a {
			t.Fatalf("Wrap not idempotent: %v", a)
		}
		d := tor.Delta(a, b)
		if tor.Wrap(a.Add(d)) != b {
			t.Fatalf("Delta does not round-trip: %v + %v != %v", a, d, b)
		}
	})
}

// FuzzMetricWithin fuzzes the metric relations: symmetry and the L2 ⊆ L∞
// ball containment.
func FuzzMetricWithin(f *testing.F) {
	f.Add(0, 0, 3, 4, 5)
	f.Add(-2, 7, 2, -7, 1)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, r int) {
		if r < 0 || r > 1000 {
			t.Skip()
		}
		if ax < -10000 || ax > 10000 || ay < -10000 || ay > 10000 ||
			bx < -10000 || bx > 10000 || by < -10000 || by > 10000 {
			t.Skip()
		}
		a, b := C(ax, ay), C(bx, by)
		for _, m := range []Metric{Linf, L2} {
			if m.Within(a, b, r) != m.Within(b, a, r) {
				t.Fatalf("%v: Within not symmetric", m)
			}
		}
		if L2.Within(a, b, r) && !Linf.Within(a, b, r) {
			t.Fatal("L2 ball must be contained in the L∞ ball")
		}
	})
}
