package grid

import (
	"testing"
	"testing/quick"
)

func TestCoordArithmetic(t *testing.T) {
	a := C(3, -2)
	b := C(-1, 5)
	if got := a.Add(b); got != C(2, 3) {
		t.Errorf("Add = %v, want (2,3)", got)
	}
	if got := a.Sub(b); got != C(4, -7) {
		t.Errorf("Sub = %v, want (4,-7)", got)
	}
	if got := a.Neg(); got != C(-3, 2) {
		t.Errorf("Neg = %v, want (-3,2)", got)
	}
}

func TestCoordString(t *testing.T) {
	if got := C(4, -7).String(); got != "(4,-7)" {
		t.Errorf("String = %q, want (4,-7)", got)
	}
}

func TestCoordAddSubInverse(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := C(int(ax), int(ay))
		b := C(int(bx), int(by))
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoordLessIsStrictTotalOrder(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := C(int(ax), int(ay))
		b := C(int(bx), int(by))
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a)
		default:
			return a.Less(b) != b.Less(a)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortCoords(t *testing.T) {
	cs := []Coord{C(2, 1), C(0, 0), C(1, 1), C(5, 0), C(-3, 1)}
	SortCoords(cs)
	want := []Coord{C(0, 0), C(5, 0), C(-3, 1), C(1, 1), C(2, 1)}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("SortCoords = %v, want %v", cs, want)
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	if abs(-4) != 4 || abs(4) != 4 || abs(0) != 0 {
		t.Error("abs broken")
	}
	if maxInt(2, 3) != 3 || maxInt(3, 2) != 3 {
		t.Error("maxInt broken")
	}
	if minInt(2, 3) != 2 || minInt(3, 2) != 2 {
		t.Error("minInt broken")
	}
}
