package grid

import "fmt"

// Rect is an axis-aligned inclusive rectangle of lattice points:
// {(x,y) | X0 ≤ x ≤ X1, Y0 ≤ y ≤ Y1}. The paper's Table I specifies all of
// its construction regions in exactly this form.
type Rect struct {
	X0, X1 int
	Y0, Y1 int
}

// RectSpan builds a rectangle from inclusive coordinate spans.
func RectSpan(x0, x1, y0, y1 int) Rect { return Rect{X0: x0, X1: x1, Y0: y0, Y1: y1} }

// Empty reports whether the rectangle contains no lattice points.
func (r Rect) Empty() bool { return r.X1 < r.X0 || r.Y1 < r.Y0 }

// Count returns the number of lattice points in the rectangle.
func (r Rect) Count() int {
	if r.Empty() {
		return 0
	}
	return (r.X1 - r.X0 + 1) * (r.Y1 - r.Y0 + 1)
}

// Contains reports whether c lies in the rectangle.
func (r Rect) Contains(c Coord) bool {
	return c.X >= r.X0 && c.X <= r.X1 && c.Y >= r.Y0 && c.Y <= r.Y1
}

// Points enumerates the rectangle's lattice points in canonical order.
func (r Rect) Points() []Coord {
	if r.Empty() {
		return nil
	}
	pts := make([]Coord, 0, r.Count())
	for y := r.Y0; y <= r.Y1; y++ {
		for x := r.X0; x <= r.X1; x++ {
			pts = append(pts, Coord{X: x, Y: y})
		}
	}
	return pts
}

// Translate returns the rectangle shifted by d.
func (r Rect) Translate(d Coord) Rect {
	return Rect{X0: r.X0 + d.X, X1: r.X1 + d.X, Y0: r.Y0 + d.Y, Y1: r.Y1 + d.Y}
}

// Intersect returns the rectangle common to r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X0: maxInt(r.X0, s.X0),
		X1: minInt(r.X1, s.X1),
		Y0: maxInt(r.Y0, s.Y0),
		Y1: minInt(r.Y1, s.Y1),
	}
}

// String renders the rectangle as its coordinate spans.
func (r Rect) String() string {
	return fmt.Sprintf("[%d..%d]x[%d..%d]", r.X0, r.X1, r.Y0, r.Y1)
}

// NbdRect returns the closed L∞ neighborhood of center as a rectangle: the
// (2r+1)×(2r+1) square with centroid at center.
func NbdRect(center Coord, r int) Rect {
	return Rect{
		X0: center.X - r, X1: center.X + r,
		Y0: center.Y - r, Y1: center.Y + r,
	}
}

// RectContainsAll reports whether every coordinate of cs lies in r.
func RectContainsAll(r Rect, cs []Coord) bool {
	for _, c := range cs {
		if !r.Contains(c) {
			return false
		}
	}
	return true
}

// Predicate selects lattice points; it backs arbitrary (non-rectangular)
// regions such as the triangular regions U and S2 of Fig 3.
type Predicate func(Coord) bool

// FilterRect enumerates the points of bounding rectangle r that satisfy p.
func FilterRect(r Rect, p Predicate) []Coord {
	var out []Coord
	for y := r.Y0; y <= r.Y1; y++ {
		for x := r.X0; x <= r.X1; x++ {
			c := Coord{X: x, Y: y}
			if p(c) {
				out = append(out, c)
			}
		}
	}
	return out
}
