package grid

// Nbd returns the open neighborhood of center under metric m: every node
// within distance r of center, excluding center itself. These are exactly
// the nodes that hear center's local broadcasts.
func Nbd(m Metric, center Coord, r int) []Coord {
	offs := m.BallOffsets(r)
	nbd := make([]Coord, len(offs))
	for i, d := range offs {
		nbd[i] = center.Add(d)
	}
	return nbd
}

// ClosedNbd returns the closed neighborhood of center: Nbd plus the center.
// The locally bounded fault model constrains the number of faults in every
// closed neighborhood ("a faulty node may have upto (t−1) neighbors that are
// also faulty").
func ClosedNbd(m Metric, center Coord, r int) []Coord {
	offs := m.BallOffsets(r)
	nbd := make([]Coord, 0, len(offs)+1)
	nbd = append(nbd, center)
	for _, d := range offs {
		nbd = append(nbd, center.Add(d))
	}
	return nbd
}

// PNbd returns the perturbed neighborhood of (x,y) as defined in §IV:
// pnbd(x,y) = nbd(x−1,y) ∪ nbd(x+1,y) ∪ nbd(x,y−1) ∪ nbd(x,y+1).
// The result is deduplicated and in canonical order.
func PNbd(m Metric, center Coord, r int) []Coord {
	seen := make(map[Coord]struct{}, 4*m.BallSize(r))
	for _, shift := range []Coord{{X: -1}, {X: 1}, {Y: -1}, {Y: 1}} {
		for _, c := range Nbd(m, center.Add(shift), r) {
			seen[c] = struct{}{}
		}
	}
	out := make([]Coord, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	SortCoords(out)
	return out
}

// PNbdFringe returns pnbd(center) − nbd(center) − {center}: the nodes that
// the inductive step must newly reach. For L∞ these are the four side
// segments one step outside the (2r+1)×(2r+1) square.
func PNbdFringe(m Metric, center Coord, r int) []Coord {
	inner := make(map[Coord]struct{}, m.ClosedBallSize(r))
	inner[center] = struct{}{}
	for _, c := range Nbd(m, center, r) {
		inner[c] = struct{}{}
	}
	var out []Coord
	for _, c := range PNbd(m, center, r) {
		if _, ok := inner[c]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// CoordSet is a set of grid coordinates with canonical enumeration.
type CoordSet map[Coord]struct{}

// NewCoordSet builds a set from the given coordinates.
func NewCoordSet(cs ...Coord) CoordSet {
	s := make(CoordSet, len(cs))
	for _, c := range cs {
		s[c] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s CoordSet) Has(c Coord) bool {
	_, ok := s[c]
	return ok
}

// Add inserts c.
func (s CoordSet) Add(c Coord) { s[c] = struct{}{} }

// AddAll inserts every coordinate in cs.
func (s CoordSet) AddAll(cs []Coord) {
	for _, c := range cs {
		s[c] = struct{}{}
	}
}

// Sorted returns the members in canonical order.
func (s CoordSet) Sorted() []Coord {
	out := make([]Coord, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	SortCoords(out)
	return out
}

// Intersect returns the members of s that are also in t.
func (s CoordSet) Intersect(t CoordSet) CoordSet {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	out := make(CoordSet, len(small))
	for c := range small {
		if large.Has(c) {
			out.Add(c)
		}
	}
	return out
}

// Disjoint reports whether s and t share no members.
func (s CoordSet) Disjoint(t CoordSet) bool {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	for c := range small {
		if large.Has(c) {
			return false
		}
	}
	return true
}
