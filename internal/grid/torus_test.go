package grid

import (
	"testing"
	"testing/quick"
)

func TestNewTorusValidation(t *testing.T) {
	if _, err := NewTorus(0, 5); err == nil {
		t.Error("zero width must be rejected")
	}
	if _, err := NewTorus(5, -1); err == nil {
		t.Error("negative height must be rejected")
	}
	tor, err := NewTorus(8, 6)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	if tor.Size() != 48 {
		t.Errorf("Size = %d, want 48", tor.Size())
	}
}

func TestTorusWrap(t *testing.T) {
	tor := Torus{W: 10, H: 8}
	tests := []struct {
		in, want Coord
	}{
		{C(0, 0), C(0, 0)},
		{C(10, 8), C(0, 0)},
		{C(-1, -1), C(9, 7)},
		{C(25, -9), C(5, 7)},
	}
	for _, tt := range tests {
		if got := tor.Wrap(tt.in); got != tt.want {
			t.Errorf("Wrap(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTorusDelta(t *testing.T) {
	tor := Torus{W: 10, H: 10}
	tests := []struct {
		a, b, want Coord
	}{
		{C(0, 0), C(1, 0), C(1, 0)},
		{C(0, 0), C(9, 0), C(-1, 0)},
		{C(0, 0), C(5, 5), C(5, 5)}, // exactly half: positive representative
		{C(2, 3), C(8, 9), C(-4, -4)},
	}
	for _, tt := range tests {
		if got := tor.Delta(tt.a, tt.b); got != tt.want {
			t.Errorf("Delta(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTorusDeltaConsistent(t *testing.T) {
	tor := Torus{W: 13, H: 9}
	f := func(ax, ay, bx, by uint8) bool {
		a := tor.Wrap(C(int(ax), int(ay)))
		b := tor.Wrap(C(int(bx), int(by)))
		d := tor.Delta(a, b)
		// a + delta wraps to b.
		if tor.Wrap(a.Add(d)) != b {
			return false
		}
		// Components lie in the canonical half-open range.
		return d.X > -tor.W/2-1 && d.X <= tor.W/2 && d.Y > -tor.H/2-1 && d.Y <= tor.H/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusDistAndWithin(t *testing.T) {
	tor := Torus{W: 12, H: 12}
	// Wrap-around: (0,0) and (11,0) are at distance 1.
	if d := tor.Dist(Linf, C(0, 0), C(11, 0)); d != 1 {
		t.Errorf("Linf wrap dist = %d, want 1", d)
	}
	if !tor.Within(Linf, C(0, 0), C(11, 11), 1) {
		t.Error("diagonal wrap neighbors at r=1")
	}
	if tor.Within(L2, C(0, 0), C(11, 11), 1) {
		t.Error("diagonal is not within L2 radius 1 (dist² = 2)")
	}
	if got := tor.DistSq(C(0, 0), C(11, 11)); got != 2 {
		t.Errorf("DistSq = %d, want 2", got)
	}
	if d := tor.Dist(L2, C(0, 0), C(3, 4)); d != 5 {
		t.Errorf("L2 dist = %d, want 5", d)
	}
}

func TestTorusWithinSymmetric(t *testing.T) {
	tor := Torus{W: 11, H: 17}
	f := func(ax, ay, bx, by uint8, rr uint8) bool {
		a := tor.Wrap(C(int(ax), int(ay)))
		b := tor.Wrap(C(int(bx), int(by)))
		r := int(rr%5) + 1
		for _, m := range []Metric{Linf, L2} {
			if tor.Within(m, a, b, r) != tor.Within(m, b, a, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusIndexRoundTrip(t *testing.T) {
	tor := Torus{W: 7, H: 5}
	seen := make(map[int]bool, tor.Size())
	for y := 0; y < tor.H; y++ {
		for x := 0; x < tor.W; x++ {
			idx := tor.Index(C(x, y))
			if idx < 0 || idx >= tor.Size() {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
			if tor.CoordOf(idx) != C(x, y) {
				t.Fatalf("CoordOf(Index(%v)) = %v", C(x, y), tor.CoordOf(idx))
			}
		}
	}
	// Index must wrap out-of-range coordinates.
	if tor.Index(C(-1, -1)) != tor.Index(C(6, 4)) {
		t.Error("Index must canonicalize before mapping")
	}
}

func TestAdmitsRadius(t *testing.T) {
	tor := Torus{W: 11, H: 11}
	if !tor.AdmitsRadius(2) {
		t.Error("11 ≥ 4·2+3, radius 2 must be admitted")
	}
	if tor.AdmitsRadius(3) {
		t.Error("11 < 4·3+3, radius 3 must be rejected")
	}
}

func TestIsqrt(t *testing.T) {
	for v := 0; v <= 200; v++ {
		got := isqrt(v)
		if got*got > v || (got+1)*(got+1) <= v {
			t.Errorf("isqrt(%d) = %d", v, got)
		}
	}
}

func TestIsqrtPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("isqrt(-1) must panic")
		}
	}()
	isqrt(-1)
}
