package grid

import "fmt"

// Metric selects the distance metric used to define neighborhoods. The paper
// analyzes both the L∞ (Chebyshev) metric, which yields exact thresholds, and
// the L2 (Euclidean) metric, for which it gives approximate arguments (§VIII).
type Metric int

const (
	// Linf is the L∞ metric: d((x1,y1),(x2,y2)) = max(|x1−x2|, |y1−y2|).
	// Neighborhoods are (2r+1)×(2r+1) squares.
	Linf Metric = iota + 1
	// L2 is the Euclidean metric. Neighborhoods are radius-r disks.
	L2
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case Linf:
		return "Linf"
	case L2:
		return "L2"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Valid reports whether m is a known metric.
func (m Metric) Valid() bool { return m == Linf || m == L2 }

// DistLinf returns the L∞ distance between a and b.
func DistLinf(a, b Coord) int {
	return maxInt(abs(a.X-b.X), abs(a.Y-b.Y))
}

// DistL2Sq returns the squared Euclidean distance between a and b. Squared
// distances keep all comparisons in exact integer arithmetic.
func DistL2Sq(a, b Coord) int {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return dx*dx + dy*dy
}

// Within reports whether a and b are within distance r of each other under
// metric m, i.e. whether each hears the other's local broadcasts.
func (m Metric) Within(a, b Coord, r int) bool {
	switch m {
	case Linf:
		return DistLinf(a, b) <= r
	case L2:
		return DistL2Sq(a, b) <= r*r
	default:
		panic(fmt.Sprintf("grid: invalid metric %d", int(m)))
	}
}

// Neighbors reports whether a and b are distinct nodes within distance r of
// each other, i.e. radio neighbors.
func (m Metric) Neighbors(a, b Coord, r int) bool {
	return a != b && m.Within(a, b, r)
}

// BallOffsets returns the offsets d with 0 < d(0,d) ≤ r under metric m, in
// canonical order. Adding these offsets to a center yields its open
// neighborhood (the nodes that hear it, excluding itself).
func (m Metric) BallOffsets(r int) []Coord {
	if r < 1 {
		return nil
	}
	offs := make([]Coord, 0, (2*r+1)*(2*r+1)-1)
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			d := Coord{X: dx, Y: dy}
			if d == (Coord{}) {
				continue
			}
			if m.Within(Coord{}, d, r) {
				offs = append(offs, d)
			}
		}
	}
	return offs
}

// BallSize returns the number of nodes in an open neighborhood of radius r
// under metric m (the neighbor count of any node). For L∞ this is
// (2r+1)² − 1; for L2 it is the number of non-origin lattice points in a
// radius-r disk.
func (m Metric) BallSize(r int) int { return len(m.BallOffsets(r)) }

// ClosedBallSize returns BallSize(r) + 1, counting the center itself. The
// paper's locally bounded fault constraint is stated over closed
// neighborhoods: no closed neighborhood may contain more than t faults.
func (m Metric) ClosedBallSize(r int) int { return m.BallSize(r) + 1 }
