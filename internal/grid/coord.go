package grid

import (
	"fmt"
	"sort"
)

// Coord identifies a node by its grid location, as in the paper ("nodes can
// be uniquely identified by their grid location (x,y)").
type Coord struct {
	X int
	Y int
}

// C is shorthand for constructing a Coord.
func C(x, y int) Coord { return Coord{X: x, Y: y} }

// Add returns c translated by d.
func (c Coord) Add(d Coord) Coord { return Coord{X: c.X + d.X, Y: c.Y + d.Y} }

// Sub returns the offset from d to c (c - d).
func (c Coord) Sub(d Coord) Coord { return Coord{X: c.X - d.X, Y: c.Y - d.Y} }

// Neg returns the coordinate reflected through the origin.
func (c Coord) Neg() Coord { return Coord{X: -c.X, Y: -c.Y} }

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Less orders coordinates lexicographically by (Y, X). It is used to give
// deterministic iteration order to region enumerations.
func (c Coord) Less(d Coord) bool {
	if c.Y != d.Y {
		return c.Y < d.Y
	}
	return c.X < d.X
}

// SortCoords sorts a slice of coordinates into the canonical (Y, X) order.
func SortCoords(cs []Coord) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
}

// Origin is the designated source location. The paper assumes, without loss
// of generality, that the broadcast source sits at the grid origin.
var Origin = Coord{X: 0, Y: 0}

// abs returns |v| for an int.
func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// minInt returns the smaller of a and b.
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
