package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMetricString(t *testing.T) {
	tests := []struct {
		m    Metric
		want string
	}{
		{Linf, "Linf"},
		{L2, "L2"},
		{Metric(0), "Metric(0)"},
		{Metric(99), "Metric(99)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Metric(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestMetricValid(t *testing.T) {
	if !Linf.Valid() || !L2.Valid() {
		t.Error("Linf and L2 must be valid")
	}
	if Metric(0).Valid() || Metric(3).Valid() {
		t.Error("unknown metrics must be invalid")
	}
}

func TestDistLinf(t *testing.T) {
	tests := []struct {
		a, b Coord
		want int
	}{
		{C(0, 0), C(0, 0), 0},
		{C(0, 0), C(3, 1), 3},
		{C(0, 0), C(1, 3), 3},
		{C(-2, -2), C(2, 2), 4},
		{C(5, 5), C(5, -5), 10},
		{C(1, 1), C(-1, 2), 2},
	}
	for _, tt := range tests {
		if got := DistLinf(tt.a, tt.b); got != tt.want {
			t.Errorf("DistLinf(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDistL2Sq(t *testing.T) {
	tests := []struct {
		a, b Coord
		want int
	}{
		{C(0, 0), C(0, 0), 0},
		{C(0, 0), C(3, 4), 25},
		{C(-1, -1), C(1, 1), 8},
		{C(2, 0), C(0, 0), 4},
	}
	for _, tt := range tests {
		if got := DistL2Sq(tt.a, tt.b); got != tt.want {
			t.Errorf("DistL2Sq(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDistLinfProperties(t *testing.T) {
	// Symmetry, non-negativity, triangle inequality, identity.
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := C(int(ax), int(ay))
		b := C(int(bx), int(by))
		c := C(int(cx), int(cy))
		dab := DistLinf(a, b)
		dba := DistLinf(b, a)
		dac := DistLinf(a, c)
		dcb := DistLinf(c, b)
		if dab != dba || dab < 0 {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return dab <= dac+dcb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistL2SqProperties(t *testing.T) {
	// Symmetry and consistency with float Euclidean distance.
	f := func(ax, ay, bx, by int8) bool {
		a := C(int(ax), int(ay))
		b := C(int(bx), int(by))
		sq := DistL2Sq(a, b)
		if sq != DistL2Sq(b, a) || sq < 0 {
			return false
		}
		d := math.Sqrt(float64(sq))
		ref := math.Hypot(float64(a.X-b.X), float64(a.Y-b.Y))
		return math.Abs(d-ref) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinfDominatedByL2(t *testing.T) {
	// L∞ distance ≤ L2 distance ≤ √2·L∞ distance, so any L2 neighbor pair
	// is also an L∞ neighbor pair at the same radius.
	f := func(ax, ay, bx, by int8, rr uint8) bool {
		a := C(int(ax), int(ay))
		b := C(int(bx), int(by))
		r := int(rr%10) + 1
		if L2.Within(a, b, r) && !Linf.Within(a, b, r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBallOffsetsLinf(t *testing.T) {
	for r := 1; r <= 6; r++ {
		offs := Linf.BallOffsets(r)
		want := (2*r+1)*(2*r+1) - 1
		if len(offs) != want {
			t.Errorf("r=%d: |BallOffsets| = %d, want %d", r, len(offs), want)
		}
		for _, d := range offs {
			if d == (Coord{}) {
				t.Errorf("r=%d: ball offsets must exclude origin", r)
			}
			if DistLinf(Coord{}, d) > r {
				t.Errorf("r=%d: offset %v outside ball", r, d)
			}
		}
	}
}

func TestBallOffsetsL2(t *testing.T) {
	// Known lattice-point counts for closed disks of radius r (excluding
	// origin): r=1 → 4, r=2 → 12, r=3 → 28, r=4 → 48, r=5 → 80.
	want := map[int]int{1: 4, 2: 12, 3: 28, 4: 48, 5: 80}
	for r, n := range want {
		if got := L2.BallSize(r); got != n {
			t.Errorf("L2.BallSize(%d) = %d, want %d", r, got, n)
		}
	}
}

func TestBallOffsetsEdgeCases(t *testing.T) {
	if got := Linf.BallOffsets(0); got != nil {
		t.Errorf("BallOffsets(0) = %v, want nil", got)
	}
	if got := L2.BallOffsets(-1); got != nil {
		t.Errorf("BallOffsets(-1) = %v, want nil", got)
	}
}

func TestClosedBallSize(t *testing.T) {
	for r := 1; r <= 4; r++ {
		if got, want := Linf.ClosedBallSize(r), (2*r+1)*(2*r+1); got != want {
			t.Errorf("Linf.ClosedBallSize(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestNeighborsExcludesSelf(t *testing.T) {
	if Linf.Neighbors(C(3, 3), C(3, 3), 2) {
		t.Error("a node must not be its own neighbor")
	}
	if !Linf.Neighbors(C(3, 3), C(5, 5), 2) {
		t.Error("(3,3) and (5,5) are L∞ neighbors at r=2")
	}
	if L2.Neighbors(C(3, 3), C(5, 5), 2) {
		t.Error("(3,3) and (5,5) are not L2 neighbors at r=2 (dist² = 8 > 4)")
	}
}

func TestWithinPanicsOnInvalidMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Within on invalid metric must panic")
		}
	}()
	Metric(42).Within(C(0, 0), C(1, 1), 1)
}
