package grid

import (
	"testing"
	"testing/quick"
)

func TestRectCount(t *testing.T) {
	tests := []struct {
		r    Rect
		want int
	}{
		{RectSpan(0, 0, 0, 0), 1},
		{RectSpan(0, 4, 0, 0), 5},
		{RectSpan(-2, 2, -1, 1), 15},
		{RectSpan(3, 2, 0, 0), 0}, // empty
		{RectSpan(0, 0, 5, 1), 0}, // empty
	}
	for _, tt := range tests {
		if got := tt.r.Count(); got != tt.want {
			t.Errorf("%v.Count() = %d, want %d", tt.r, got, tt.want)
		}
		if got := len(tt.r.Points()); got != tt.want {
			t.Errorf("%v.Points() has %d, want %d", tt.r, got, tt.want)
		}
	}
}

func TestRectContainsMatchesPoints(t *testing.T) {
	r := RectSpan(-1, 2, 3, 5)
	pts := NewCoordSet(r.Points()...)
	for y := 2; y <= 6; y++ {
		for x := -2; x <= 3; x++ {
			c := C(x, y)
			if r.Contains(c) != pts.Has(c) {
				t.Errorf("Contains(%v) disagrees with Points", c)
			}
		}
	}
}

func TestRectTranslate(t *testing.T) {
	r := RectSpan(0, 2, 0, 1).Translate(C(10, -5))
	if r != RectSpan(10, 12, -5, -4) {
		t.Errorf("Translate = %v", r)
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectSpan(0, 10, 0, 10)
	b := RectSpan(5, 15, -5, 5)
	got := a.Intersect(b)
	if got != RectSpan(5, 10, 0, 5) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(RectSpan(20, 30, 0, 1)).Empty() {
		t.Error("disjoint intersection must be empty")
	}
}

func TestRectIntersectIsContainment(t *testing.T) {
	f := func(x0, x1, y0, y1, px, py int8) bool {
		a := RectSpan(int(x0), int(x1), int(y0), int(y1))
		b := RectSpan(-5, 5, -5, 5)
		c := C(int(px), int(py))
		return a.Intersect(b).Contains(c) == (a.Contains(c) && b.Contains(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNbdRect(t *testing.T) {
	r := 3
	rect := NbdRect(C(10, 20), r)
	if rect.Count() != (2*r+1)*(2*r+1) {
		t.Errorf("NbdRect count = %d", rect.Count())
	}
	// NbdRect must agree with the closed L∞ neighborhood.
	nbd := NewCoordSet(ClosedNbd(Linf, C(10, 20), r)...)
	for _, c := range rect.Points() {
		if !nbd.Has(c) {
			t.Errorf("%v in rect but not in closed nbd", c)
		}
	}
}

func TestRectContainsAll(t *testing.T) {
	r := RectSpan(0, 5, 0, 5)
	if !RectContainsAll(r, []Coord{C(0, 0), C(5, 5)}) {
		t.Error("corners must be contained")
	}
	if RectContainsAll(r, []Coord{C(0, 0), C(6, 5)}) {
		t.Error("(6,5) is outside")
	}
	if !RectContainsAll(r, nil) {
		t.Error("vacuous containment must hold")
	}
}

func TestFilterRect(t *testing.T) {
	r := RectSpan(-2, 2, -2, 2)
	diag := FilterRect(r, func(c Coord) bool { return c.X == c.Y })
	if len(diag) != 5 {
		t.Fatalf("|diag| = %d, want 5", len(diag))
	}
	for _, c := range diag {
		if c.X != c.Y {
			t.Errorf("filter leaked %v", c)
		}
	}
}

func TestRectString(t *testing.T) {
	if got := RectSpan(1, 2, 3, 4).String(); got != "[1..2]x[3..4]" {
		t.Errorf("String = %q", got)
	}
}
