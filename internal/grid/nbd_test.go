package grid

import (
	"testing"
	"testing/quick"
)

func TestNbdLinfCount(t *testing.T) {
	for r := 1; r <= 4; r++ {
		nbd := Nbd(Linf, C(10, 10), r)
		if want := (2*r+1)*(2*r+1) - 1; len(nbd) != want {
			t.Errorf("r=%d: |nbd| = %d, want %d", r, len(nbd), want)
		}
		for _, c := range nbd {
			if c == C(10, 10) {
				t.Error("open neighborhood must exclude center")
			}
			if DistLinf(c, C(10, 10)) > r {
				t.Errorf("node %v outside radius", c)
			}
		}
	}
}

func TestClosedNbdIncludesCenter(t *testing.T) {
	nbd := ClosedNbd(Linf, C(2, 3), 2)
	if len(nbd) != 25 {
		t.Fatalf("|closed nbd| = %d, want 25", len(nbd))
	}
	if nbd[0] != C(2, 3) {
		t.Error("closed neighborhood must start with center")
	}
}

func TestPNbdDefinition(t *testing.T) {
	// pnbd(x,y) = union of the four unit-perturbed neighborhoods (§IV).
	for _, m := range []Metric{Linf, L2} {
		center := C(0, 0)
		r := 2
		want := NewCoordSet()
		for _, s := range []Coord{C(-1, 0), C(1, 0), C(0, -1), C(0, 1)} {
			want.AddAll(Nbd(m, center.Add(s), r))
		}
		got := PNbd(m, center, r)
		if len(got) != len(want) {
			t.Errorf("%v: |pnbd| = %d, want %d", m, len(got), len(want))
		}
		for _, c := range got {
			if !want.Has(c) {
				t.Errorf("%v: unexpected member %v", m, c)
			}
		}
	}
}

func TestPNbdLinfShape(t *testing.T) {
	// For L∞, pnbd(0,0) is the (2r+1)×(2r+3) ∪ (2r+3)×(2r+1) plus-shape.
	r := 2
	got := NewCoordSet(PNbd(Linf, C(0, 0), r)...)
	wantCount := 0
	for y := -r - 1; y <= r+1; y++ {
		for x := -r - 1; x <= r+1; x++ {
			inVert := abs(x) <= r && abs(y) <= r+1
			inHoriz := abs(x) <= r+1 && abs(y) <= r
			if inVert || inHoriz {
				wantCount++
				if !got.Has(C(x, y)) {
					t.Errorf("missing %v", C(x, y))
				}
			}
		}
	}
	if len(got) != wantCount {
		t.Errorf("|pnbd| = %d, want %d", len(got), wantCount)
	}
}

func TestPNbdFringe(t *testing.T) {
	r := 2
	fringe := PNbdFringe(Linf, C(0, 0), r)
	// Fringe: four segments of 2r+1 nodes one step outside the square.
	if want := 4 * (2*r + 1); len(fringe) != want {
		t.Fatalf("|fringe| = %d, want %d", len(fringe), want)
	}
	for _, c := range fringe {
		if DistLinf(c, C(0, 0)) != r+1 {
			t.Errorf("fringe node %v not at distance r+1", c)
		}
	}
}

func TestPNbdFringeContainsCorner(t *testing.T) {
	// The worst-case node P of Theorem 1's proof, (a−r, b+r+1), is in the
	// fringe of nbd(a,b).
	a, b, r := 5, 7, 3
	fringe := NewCoordSet(PNbdFringe(Linf, C(a, b), r)...)
	if !fringe.Has(C(a-r, b+r+1)) {
		t.Error("corner node P must be in pnbd − nbd")
	}
}

func TestCoordSetOps(t *testing.T) {
	s := NewCoordSet(C(0, 0), C(1, 1))
	u := NewCoordSet(C(1, 1), C(2, 2))
	if !s.Has(C(0, 0)) || s.Has(C(2, 2)) {
		t.Error("Has broken")
	}
	inter := s.Intersect(u)
	if len(inter) != 1 || !inter.Has(C(1, 1)) {
		t.Errorf("Intersect = %v", inter.Sorted())
	}
	if s.Disjoint(u) {
		t.Error("s and u share (1,1)")
	}
	if !s.Disjoint(NewCoordSet(C(9, 9))) {
		t.Error("disjoint sets reported overlapping")
	}
	s.Add(C(5, 5))
	if !s.Has(C(5, 5)) {
		t.Error("Add broken")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if !sorted[i-1].Less(sorted[i]) {
			t.Error("Sorted not in canonical order")
		}
	}
}

func TestCoordSetIntersectCommutes(t *testing.T) {
	f := func(xs, ys []int8) bool {
		s := NewCoordSet()
		u := NewCoordSet()
		for i := 0; i+1 < len(xs); i += 2 {
			s.Add(C(int(xs[i]), int(xs[i+1])))
		}
		for i := 0; i+1 < len(ys); i += 2 {
			u.Add(C(int(ys[i]), int(ys[i+1])))
		}
		a := s.Intersect(u).Sorted()
		b := u.Intersect(s).Sorted()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return s.Disjoint(u) == (len(a) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
