// Package grid provides the lattice geometry underlying the radio-network
// model of Bhandari & Vaidya, "On Reliable Broadcast in a Radio Network"
// (PODC 2005): integer grid coordinates, the L∞ and L2 distance metrics,
// closed and open neighborhoods of radius r, and the explicit rectangular
// regions used throughout the paper's constructions (Table I, Figs 1-7).
//
// All functions in this package operate on the infinite grid. Wrapping onto
// a finite torus is the job of package topology.
package grid
