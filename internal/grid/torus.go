package grid

import "fmt"

// Torus describes a finite W×H toroidal grid. The paper notes (§I) that all
// results stated for the infinite grid also hold for a finite toroidal
// network, because wrapping eliminates boundary anomalies. Coordinates on
// the torus are canonicalized to 0 ≤ x < W, 0 ≤ y < H.
type Torus struct {
	W int
	H int
}

// NewTorus validates the dimensions and returns a torus. Dimensions must be
// at least 1.
func NewTorus(w, h int) (Torus, error) {
	if w < 1 || h < 1 {
		return Torus{}, fmt.Errorf("grid: torus dimensions must be positive, got %dx%d", w, h)
	}
	return Torus{W: w, H: h}, nil
}

// Size returns the number of nodes on the torus.
func (t Torus) Size() int { return t.W * t.H }

// Wrap canonicalizes c onto the torus.
func (t Torus) Wrap(c Coord) Coord {
	return Coord{X: mod(c.X, t.W), Y: mod(c.Y, t.H)}
}

// Delta returns the minimal signed offset from a to b on the torus: the
// representative of b−a with components in (−W/2, W/2] × (−H/2, H/2].
func (t Torus) Delta(a, b Coord) Coord {
	return Coord{
		X: wrapDelta(b.X-a.X, t.W),
		Y: wrapDelta(b.Y-a.Y, t.H),
	}
}

// Dist returns the toroidal distance between a and b under metric m.
func (t Torus) Dist(m Metric, a, b Coord) int {
	d := t.Delta(a, b)
	switch m {
	case Linf:
		return maxInt(abs(d.X), abs(d.Y))
	case L2:
		// Callers comparing against a radius should prefer DistSq; this
		// returns the floor of the Euclidean distance.
		return isqrt(d.X*d.X + d.Y*d.Y)
	default:
		panic(fmt.Sprintf("grid: invalid metric %d", int(m)))
	}
}

// DistSq returns the squared Euclidean toroidal distance between a and b.
func (t Torus) DistSq(a, b Coord) int {
	d := t.Delta(a, b)
	return d.X*d.X + d.Y*d.Y
}

// Within reports whether a and b are within distance r on the torus under m.
func (t Torus) Within(m Metric, a, b Coord, r int) bool {
	d := t.Delta(a, b)
	switch m {
	case Linf:
		return maxInt(abs(d.X), abs(d.Y)) <= r
	case L2:
		return d.X*d.X+d.Y*d.Y <= r*r
	default:
		panic(fmt.Sprintf("grid: invalid metric %d", int(m)))
	}
}

// AdmitsRadius reports whether neighborhoods of radius r are unambiguous on
// the torus, i.e. no node's neighborhood wraps onto itself and distinct
// offsets stay distinct. Experiments require W, H ≥ 4r+3 so that a closed
// neighborhood and its perturbations never self-overlap.
func (t Torus) AdmitsRadius(r int) bool {
	return t.W >= 4*r+3 && t.H >= 4*r+3
}

// Index maps a (wrapped) coordinate to a dense node index in [0, W*H).
func (t Torus) Index(c Coord) int {
	w := t.Wrap(c)
	return w.Y*t.W + w.X
}

// CoordOf inverts Index.
func (t Torus) CoordOf(idx int) Coord {
	return Coord{X: idx % t.W, Y: idx / t.W}
}

// mod returns v mod m with a result in [0, m).
func mod(v, m int) int {
	v %= m
	if v < 0 {
		v += m
	}
	return v
}

// wrapDelta maps d to its representative in (−m/2, m/2].
func wrapDelta(d, m int) int {
	d = mod(d, m)
	if d > m/2 {
		d -= m
	}
	return d
}

// isqrt returns ⌊√v⌋ for v ≥ 0.
func isqrt(v int) int {
	if v < 0 {
		panic("grid: isqrt of negative value")
	}
	x := 0
	for (x+1)*(x+1) <= v {
		x++
	}
	return x
}
