// Package l2 reproduces the Euclidean-metric arguments of §VIII (Figs
// 11-13): lattice-point counts of the construction regions, the
// node-disjoint P-Q path count inside a single circular neighborhood
// (Fig 12), and the Fig 13 impossibility construction's fault counts. The
// paper's L2 results are explicitly informal ("A ± O(r)"), so the
// reproduction reports measured lattice counts against the paper's area
// constants: 0.23πr² (achievability), 0.3πr² (impossibility), 0.47πr²
// (≈1.47r², the path-family total), and 0.6πr² (crash impossibility).
package l2
