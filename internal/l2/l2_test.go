package l2

import (
	"math"
	"testing"
)

func TestDiskLatticeCount(t *testing.T) {
	// Known values (Gauss circle problem): r=1 → 5, r=2 → 13, r=3 → 29,
	// r=4 → 49, r=5 → 81.
	want := map[int]int{1: 5, 2: 13, 3: 29, 4: 49, 5: 81}
	for r, n := range want {
		if got := DiskLatticeCount(r); got != n {
			t.Errorf("DiskLatticeCount(%d) = %d, want %d", r, got, n)
		}
	}
}

func TestDiskLatticeCountConvergesToArea(t *testing.T) {
	// count/πr² → 1 with error O(1/r).
	for _, r := range []int{10, 20, 40} {
		ratio := float64(DiskLatticeCount(r)) / (math.Pi * float64(r) * float64(r))
		if math.Abs(ratio-1) > 3.0/float64(r) {
			t.Errorf("r=%d: disk count ratio %v too far from 1", r, ratio)
		}
	}
}

func TestHalfDiskLatticeCount(t *testing.T) {
	// r=2: points with x in 1..2 and x²+y²≤4: (1,0),(1,±1),(2,0) → wait
	// (1,±1): 2 ≤ 4 ✓; (1, 0); (2,0). That's 4.
	if got := HalfDiskLatticeCount(2); got != 4 {
		t.Errorf("HalfDiskLatticeCount(2) = %d, want 4", got)
	}
	// Converges to half the disk area.
	for _, r := range []int{10, 30} {
		ratio := float64(HalfDiskLatticeCount(r)) / (0.5 * math.Pi * float64(r) * float64(r))
		if math.Abs(ratio-1) > 3.0/float64(r) {
			t.Errorf("r=%d: half-disk ratio %v", r, ratio)
		}
	}
}

func TestBandDiskOverlapMatchesPaperArea(t *testing.T) {
	// Fig 13: the width-r band under the densest radius-r disk covers
	// ≈ 0.6πr² (exactly (π − 2(π/3 − √3/4))r² ≈ 0.609πr²).
	exact := (math.Pi - 2*(math.Pi/3-math.Sqrt(3)/4)) / math.Pi // ≈ 0.6090
	for _, r := range []int{8, 16, 32} {
		got := float64(BandDiskOverlap(r, r)) / (math.Pi * float64(r) * float64(r))
		if math.Abs(got-exact) > 0.05 {
			t.Errorf("r=%d: band∩disk ratio %v, want ≈ %v", r, got, exact)
		}
	}
}

func TestCheckerboardBandDiskOverlapIsHalf(t *testing.T) {
	// The checkerboard half of the band carries ≈ 0.3πr² faults — the
	// paper's Byzantine impossibility value.
	for _, r := range []int{8, 16, 32} {
		full := BandDiskOverlap(r, r)
		half := CheckerboardBandDiskOverlap(r, r)
		ratio := float64(half) / float64(full)
		if math.Abs(ratio-0.5) > 0.1 {
			t.Errorf("r=%d: checkerboard fraction %v, want ≈ 0.5", r, ratio)
		}
		area := float64(half) / (math.Pi * float64(r) * float64(r))
		if math.Abs(area-0.3) > 0.05 {
			t.Errorf("r=%d: checkerboard ratio %v, want ≈ 0.3", r, area)
		}
	}
}

func TestDisjointPathsPQValidation(t *testing.T) {
	if _, err := DisjointPathsPQ(0); err == nil {
		t.Error("radius 0 must be rejected")
	}
}

func TestDisjointPathsPQSmall(t *testing.T) {
	rep, err := DisjointPathsPQ(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDisjoint < 1 {
		t.Error("P and Q must be connected inside the disk")
	}
	if rep.ShortDisjoint > rep.MaxDisjoint {
		t.Error("short count cannot exceed the total")
	}
}

func TestFig12InequalityHolds(t *testing.T) {
	// The §VIII induction needs ≥ 2t+1 = 2(0.23πr²)+1 disjoint short paths
	// between P and Q inside one neighborhood. Verify the measured counts
	// clear the bound for moderate radii (the paper: "for sufficiently
	// large r").
	for _, r := range []int{6, 8, 10} {
		rep, err := DisjointPathsPQ(r)
		if err != nil {
			t.Fatal(err)
		}
		if float64(rep.ShortDisjoint) < rep.Needed {
			t.Errorf("r=%d: short disjoint paths %d below needed %.1f",
				r, rep.ShortDisjoint, rep.Needed)
		}
		if float64(rep.MaxDisjoint) < rep.Needed {
			t.Errorf("r=%d: max disjoint paths %d below needed %.1f",
				r, rep.MaxDisjoint, rep.Needed)
		}
	}
}

func TestHalfNbdPremise(t *testing.T) {
	// Fig 11: the half-neighborhood holds ≈0.5πr² nodes, so it supports up
	// to t_half = ⌊(count−1)/2⌋ ≈ 0.25πr² faults — above the paper's
	// 0.23πr² asymptotically. The lattice count runs ±O(r) below the area
	// (the medial axis is excluded), so at small radii t_half can dip just
	// under ⌊0.23πr²⌋: exactly the "for sufficiently large r" caveat. The
	// premise must hold outright from r = 13 on (verified below) and be
	// within O(r) of holding before that.
	for r := 4; r <= 40; r++ {
		rep := HalfNbdPremise(r)
		tHalf := (rep.HalfCount - 1) / 2
		tPaper := int(math.Floor(0.23 * math.Pi * float64(r) * float64(r)))
		if r >= 13 {
			if !rep.Holds() {
				t.Errorf("r=%d: premise fails outright: half-disk %d < needed %d",
					r, rep.HalfCount, rep.Needed)
			}
		} else if tPaper-tHalf > 2*r {
			t.Errorf("r=%d: shortfall %d exceeds the O(r) caveat", r, tPaper-tHalf)
		}
	}
	// The supported fraction converges to 0.25πr² from below.
	rep := HalfNbdPremise(40)
	tHalf := float64((rep.HalfCount - 1) / 2)
	frac := tHalf / (math.Pi * 40 * 40)
	if frac < 0.23 || frac > 0.26 {
		t.Errorf("r=40: supported fault fraction %v of πr², want ≈ 0.25", frac)
	}
}
