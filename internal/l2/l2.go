package l2

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/grid"
)

// DiskLatticeCount returns the number of lattice points z with |z| ≤ r
// (including the origin).
func DiskLatticeCount(r int) int {
	n := 0
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			if x*x+y*y <= r*r {
				n++
			}
		}
	}
	return n
}

// HalfDiskLatticeCount returns the number of lattice points in the open
// half-disk {z : |z| ≤ r, z.X > 0} — the paper's half-neighborhood
// demarcated by the medial axis, not counting points on the axis (Fig 11).
func HalfDiskLatticeCount(r int) int {
	n := 0
	for y := -r; y <= r; y++ {
		for x := 1; x <= r; x++ {
			if x*x+y*y <= r*r {
				n++
			}
		}
	}
	return n
}

// BandDiskOverlap returns the lattice count of the width-w vertical band
// [0, w) intersected with the closed disk of radius r centered on the
// band's midline (the densest placement of a disk over the band — the
// "circled region" of Fig 13). Centers are scanned at half-integer
// positions via doubled coordinates to find the true maximum.
func BandDiskOverlap(r, w int) int {
	best := 0
	// Center x in doubled coordinates: scan 2cx in [0, 2w]; cy at 0 or ½.
	for cx2 := 0; cx2 <= 2*w; cx2++ {
		for _, cy2 := range []int{0, 1} {
			n := 0
			for y := -2 * r; y <= 2*r; y++ {
				for x := 0; x < w; x++ {
					dx := 2*x - cx2
					dy := 2*y - cy2
					if dx*dx+dy*dy <= 4*r*r {
						n++
					}
				}
			}
			if n > best {
				best = n
			}
		}
	}
	return best
}

// CheckerboardBandDiskOverlap is BandDiskOverlap restricted to the
// checkerboard half of the band ((x+y) even) — the faulty set of the Fig 13
// Byzantine construction. The maximum is taken over disk centers, so it is
// the worst per-neighborhood fault count of the placement.
func CheckerboardBandDiskOverlap(r, w int) int {
	best := 0
	for cx2 := 0; cx2 <= 2*w; cx2++ {
		for _, cy2 := range []int{0, 1} {
			n := 0
			for y := -2 * r; y <= 2*r; y++ {
				for x := 0; x < w; x++ {
					if ((x+y)%2+2)%2 != 0 {
						continue // keep (x+y) even; y may be negative
					}
					dx := 2*x - cx2
					dy := 2*y - cy2
					if dx*dx+dy*dy <= 4*r*r {
						n++
					}
				}
			}
			if n > best {
				best = n
			}
		}
	}
	return best
}

// HalfNbdReport checks the premise of Fig 11: for t < 0.23πr², the
// half-neighborhood of (a,b) demarcated by the medial axis perpendicular to
// NQ (points on the axis excluded) must still hold at least 2t+1 nodes.
type HalfNbdReport struct {
	R int
	// HalfCount is the lattice population of the open half-disk.
	HalfCount int
	// Needed is 2t+1 with t = ⌊0.23πr²⌋.
	Needed int
}

// Holds reports whether the premise is satisfied.
func (h HalfNbdReport) Holds() bool { return h.HalfCount >= h.Needed }

// HalfNbdPremise evaluates the Fig 11 premise for radius r.
func HalfNbdPremise(r int) HalfNbdReport {
	t := int(math.Floor(0.23 * math.Pi * float64(r) * float64(r)))
	return HalfNbdReport{
		R:         r,
		HalfCount: HalfDiskLatticeCount(r),
		Needed:    2*t + 1,
	}
}

// PathReport is the Fig 12 reproduction for one radius.
type PathReport struct {
	R int
	// DiskNodes is the lattice population of the neighborhood disk
	// centered at the P-Q midpoint.
	DiskNodes int
	// MaxDisjoint is the exact maximum number of internally
	// vertex-disjoint P-Q paths inside the disk (unbounded length).
	MaxDisjoint int
	// ShortDisjoint counts paths of at most 4 edges (3 intermediates —
	// the HEARD relay budget) in a maximum monotone packing.
	ShortDisjoint int
	// PaperFamily is the paper's claimed family size ≈ 1.47r².
	PaperFamily float64
	// Needed is 2t+1 with t = 0.23πr², the bound the family must exceed
	// for the induction to go through.
	Needed float64
}

// DisjointPathsPQ reproduces the Fig 12 counting argument on the lattice:
// P = (0,0) and Q = (r,r) are at Euclidean distance r√2 (the worst case of
// Fig 11); all paths must lie in the closed disk of radius r centered at
// the midpoint M = (r/2, r/2). It returns the exact maximum disjoint-path
// count and the short-path (≤ 4 edges) count from a monotone packing.
func DisjointPathsPQ(r int) (PathReport, error) {
	if r < 1 {
		return PathReport{}, fmt.Errorf("l2: radius must be ≥ 1, got %d", r)
	}
	p := grid.C(0, 0)
	q := grid.C(r, r)
	// Disk membership via doubled coordinates: |2z − (r,r)|² ≤ (2r)².
	inDisk := func(z grid.Coord) bool {
		dx := 2*z.X - r
		dy := 2*z.Y - r
		return dx*dx+dy*dy <= 4*r*r
	}
	// Enumerate disk vertices.
	var verts []grid.Coord
	index := make(map[grid.Coord]int)
	for y := -r; y <= 2*r; y++ {
		for x := -r; x <= 2*r; x++ {
			z := grid.C(x, y)
			if inDisk(z) {
				index[z] = len(verts)
				verts = append(verts, z)
			}
		}
	}
	if _, ok := index[p]; !ok {
		return PathReport{}, fmt.Errorf("l2: P outside disk (r=%d)", r)
	}
	if _, ok := index[q]; !ok {
		return PathReport{}, fmt.Errorf("l2: Q outside disk (r=%d)", r)
	}
	neighbors := func(i int) []int {
		var out []int
		zi := verts[i]
		for j, zj := range verts {
			if i != j && grid.DistL2Sq(zi, zj) <= r*r {
				out = append(out, j)
			}
		}
		return out
	}
	total, err := flow.CountVertexDisjointPaths(flow.DisjointConfig{
		N: len(verts), Neighbors: neighbors, S: index[p], T: index[q],
	})
	if err != nil {
		return PathReport{}, fmt.Errorf("l2: flow: %w", err)
	}
	// Short families per the Fig 12 structure: region A (common neighbors
	// of P and Q) yields one-intermediate paths; the private sides X ⊆
	// nbd(P) and Y ⊆ nbd(Q) yield two-intermediate paths P→z→w→Q for every
	// matched pair (z,w) with |z−w| ≤ r — the lattice counterpart of the
	// paper's shifted-region pairings (B, C, D, E). A maximum bipartite
	// matching makes the pairing exact.
	short := shortFamilyCount(r, p, q, verts)
	if short > total {
		return PathReport{}, fmt.Errorf("l2: short family %d exceeds max flow %d", short, total)
	}
	rf := float64(r)
	return PathReport{
		R:             r,
		DiskNodes:     len(verts),
		MaxDisjoint:   total,
		ShortDisjoint: short,
		PaperFamily:   1.47 * rf * rf,
		Needed:        2*0.23*math.Pi*rf*rf + 1,
	}, nil
}

// shortFamilyCount builds the explicit short-path family between P and Q:
// every node of A = nbd(P) ∩ nbd(Q) carries a one-intermediate path, and a
// maximum matching between the private sides X = nbd(P)∖A and Y = nbd(Q)∖A
// (edges where |z−w| ≤ r) carries two-intermediate paths. All family
// members are internally disjoint by construction and lie inside the disk.
func shortFamilyCount(r int, p, q grid.Coord, verts []grid.Coord) int {
	within := func(a, b grid.Coord) bool { return grid.DistL2Sq(a, b) <= r*r }
	var a, xs, ys []grid.Coord
	for _, z := range verts {
		if z == p || z == q {
			continue
		}
		inP := within(z, p)
		inQ := within(z, q)
		switch {
		case inP && inQ:
			a = append(a, z)
		case inP:
			xs = append(xs, z)
		case inQ:
			ys = append(ys, z)
		}
	}
	// Bipartite maximum matching X–Y via unit-capacity flow.
	n := len(xs) + len(ys) + 2
	src := n - 2
	dst := n - 1
	d := flow.NewDinic(n)
	for i := range xs {
		d.AddEdge(src, i, 1)
	}
	for j := range ys {
		d.AddEdge(len(xs)+j, dst, 1)
	}
	for i, z := range xs {
		for j, w := range ys {
			if within(z, w) {
				d.AddEdge(i, len(xs)+j, 1)
			}
		}
	}
	return len(a) + d.MaxFlow(src, dst)
}
