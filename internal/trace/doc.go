// Package trace renders executions as round-by-round ASCII frames: the
// commit wavefront of Figs 9-10 and 14-19 made visible. Frames are derived
// from an engine Result (which records each node's commit round), so tracing
// costs nothing during the run itself.
package trace
