package trace

import (
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Cell states in a rendered frame.
const (
	// CellUndecided marks a node that has not committed yet.
	CellUndecided = '.'
	// CellCorrect marks a node committed to the expected value.
	CellCorrect = '#'
	// CellWrong marks a node committed to a different value.
	CellWrong = 'X'
	// CellFaulty marks an adversarial or crashed node.
	CellFaulty = 'F'
	// CellSource marks the designated source.
	CellSource = 'S'
)

// Frame is the network state at the end of one round.
type Frame struct {
	// Round is the engine round the frame depicts (0 = after Init).
	Round int
	// NewCommits is the number of first-time commits in this round.
	NewCommits int
	// Cells is the row-major cell matrix.
	Cells [][]byte
}

// Render draws the frame with a border and caption.
func (f Frame) Render() string {
	var b strings.Builder
	w := 0
	if len(f.Cells) > 0 {
		w = len(f.Cells[0])
	}
	fmt.Fprintf(&b, "round %d (+%d commits)\n", f.Round, f.NewCommits)
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range f.Cells {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	return b.String()
}

// Config describes how to interpret a result.
type Config struct {
	// Net is the network the result came from (required).
	Net *topology.Network
	// Result is the engine outcome (required).
	Result sim.Result
	// Source is the designated source node.
	Source topology.NodeID
	// Value is the expected (source) value.
	Value byte
	// Faulty lists adversarial/crashed nodes.
	Faulty []topology.NodeID
}

// Frames reconstructs the per-round state sequence from a result: frame k
// shows every commit that happened in rounds ≤ k. The sequence covers round
// 0 through the last commit round.
func Frames(cfg Config) ([]Frame, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("trace: Config.Net is required")
	}
	t := cfg.Net.Torus()
	isF := make(map[topology.NodeID]bool, len(cfg.Faulty))
	for _, id := range cfg.Faulty {
		isF[id] = true
	}
	last := 0
	for _, rd := range cfg.Result.DecidedRound {
		if rd > last {
			last = rd
		}
	}
	frames := make([]Frame, 0, last+1)
	for round := 0; round <= last; round++ {
		fr := Frame{Round: round, Cells: make([][]byte, t.H)}
		for y := 0; y < t.H; y++ {
			fr.Cells[y] = make([]byte, t.W)
			for x := 0; x < t.W; x++ {
				id := cfg.Net.IDOf(grid.C(x, y))
				fr.Cells[y][x] = cellFor(cfg, isF, id, round)
			}
		}
		for id, rd := range cfg.Result.DecidedRound {
			if rd == round && !isF[id] {
				fr.NewCommits++
			}
		}
		frames = append(frames, fr)
	}
	return frames, nil
}

// cellFor classifies one node at one round.
func cellFor(cfg Config, isF map[topology.NodeID]bool, id topology.NodeID, round int) byte {
	switch {
	case isF[id]:
		return CellFaulty
	case id == cfg.Source:
		return CellSource
	}
	v, decided := cfg.Result.Decided[id]
	if !decided || cfg.Result.DecidedRound[id] > round {
		return CellUndecided
	}
	if v == cfg.Value {
		return CellCorrect
	}
	return CellWrong
}

// RenderAll renders every frame separated by blank lines.
func RenderAll(frames []Frame) string {
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = f.Render()
	}
	return strings.Join(parts, "\n")
}
