package trace

import (
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/topology"
)

func runFlood(t *testing.T) (*topology.Network, topology.NodeID, sim.Result) {
	t.Helper()
	net, err := topology.New(grid.Torus{W: 10, H: 8}, grid.Linf, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := net.IDOf(grid.C(0, 0))
	out, err := protocol.Run(protocol.RunConfig{
		Kind:   protocol.Flood,
		Params: protocol.Params{Net: net, Source: src, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, src, out.Result
}

func TestFramesValidation(t *testing.T) {
	if _, err := Frames(Config{}); err == nil {
		t.Error("nil network must be rejected")
	}
}

func TestFramesReconstructWavefront(t *testing.T) {
	net, src, res := runFlood(t)
	frames, err := Frames(Config{Net: net, Result: res, Source: src, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	// Frame dimensions match the torus.
	for _, f := range frames {
		if len(f.Cells) != 8 || len(f.Cells[0]) != 10 {
			t.Fatalf("frame %d has wrong dimensions", f.Round)
		}
	}
	// The committed region grows monotonically and ends complete.
	prev := -1
	for _, f := range frames {
		count := 0
		for _, row := range f.Cells {
			for _, c := range row {
				if c == CellCorrect || c == CellSource {
					count++
				}
			}
		}
		if count < prev {
			t.Fatalf("frame %d: committed region shrank (%d < %d)", f.Round, count, prev)
		}
		prev = count
	}
	if prev != net.Size() {
		t.Errorf("final frame has %d committed cells, want %d", prev, net.Size())
	}
	// New-commit counts sum to the node count (source commits at round 0).
	total := 0
	for _, f := range frames {
		total += f.NewCommits
	}
	if total != net.Size() {
		t.Errorf("new commits sum to %d, want %d", total, net.Size())
	}
}

func TestFramesMarkFaultyAndWrong(t *testing.T) {
	net, src, res := runFlood(t)
	faulty := []topology.NodeID{net.IDOf(grid.C(5, 5))}
	// Fabricate a wrong decision for rendering purposes.
	wrongID := net.IDOf(grid.C(3, 3))
	res.Decided[wrongID] = 0
	frames, err := Frames(Config{Net: net, Result: res, Source: src, Value: 1, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	last := frames[len(frames)-1]
	if last.Cells[5][5] != CellFaulty {
		t.Error("faulty node not marked")
	}
	if last.Cells[3][3] != CellWrong {
		t.Error("wrong commit not marked")
	}
	if last.Cells[0][0] != CellSource {
		t.Error("source not marked")
	}
}

func TestRender(t *testing.T) {
	net, src, res := runFlood(t)
	frames, err := Frames(Config{Net: net, Result: res, Source: src, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := frames[0].Render()
	if !strings.Contains(s, "round 0") || !strings.Contains(s, "S") {
		t.Errorf("render missing caption or source:\n%s", s)
	}
	all := RenderAll(frames)
	if strings.Count(all, "round ") != len(frames) {
		t.Error("RenderAll must include every frame")
	}
}
