// Package obs is the request-level span tracer behind rbcastd's flight
// recorder: per-request timelines of parent/child spans with monotonic
// starts, durations and key=value annotations, answering "where did the
// time go" for one slow request the way /metrics answers it for the
// fleet.
//
// It follows the repository's tap discipline (internal/metrics,
// internal/etrace): a nil *Trace and a nil *Recorder are valid no-op
// sinks, so the serving stack instruments unconditionally and pays one
// pointer check per tap when the flight recorder is disarmed — the
// allocation gates in alloc_test.go pin that the disarmed path allocates
// nothing.
//
// A Trace is created per request (or per asynchronous batch job) by the
// HTTP layer, carried through the execution stack either explicitly or
// via ContextWith/SpanFromContext, finished with the response status,
// and handed to a Recorder — a bounded ring buffer whose Snapshots feed
// GET /debug/requests (à la golang.org/x/net/trace). Span names double
// as phase labels: the server folds every completed span into the
// rbcastd_phase_seconds summaries on /metrics.
package obs
