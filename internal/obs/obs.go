package obs

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SpanID identifies one span within its Trace. Root is the span every
// NewTrace opens; None marks "no span" — it is what operations on a nil
// or full Trace return, and it is safe to pass anywhere a SpanID is
// accepted.
type SpanID int

const (
	// Root is the root span's id in every trace.
	Root SpanID = 0
	// None is the no-op span id.
	None SpanID = -1
)

// maxSpans bounds one trace's span count so a 4096-element sweep cannot
// turn its own timeline into a memory hog: past the bound Start returns
// None (every operation on which is a no-op) and the trace counts the
// drop, which Snapshot surfaces as dropped_spans.
const maxSpans = 512

// annotation is one key=value note on a span.
type annotation struct{ key, value string }

// span is one timed phase. start is the offset from the trace's begin;
// dur stays zero until the span is ended.
type span struct {
	name   string
	parent SpanID
	start  time.Duration
	dur    time.Duration
	ended  bool
	attrs  []annotation
}

// Trace is one request's span timeline. A nil *Trace is a valid no-op
// sink: every method checks the receiver, so disarmed callers pay one
// pointer test and zero allocations. All methods are safe for concurrent
// use — batch and sweep workers record spans from many goroutines.
type Trace struct {
	id    string
	route string
	begin time.Time

	mu       sync.Mutex
	status   int
	finished bool
	dur      time.Duration
	spans    []span
	dropped  int
}

// NewTrace opens a timeline whose root span is named route, correlated
// to the given request (or job) id.
func NewTrace(route, id string) *Trace {
	t := &Trace{id: id, route: route, begin: time.Now()}
	t.spans = make([]span, 1, 8)
	t.spans[0] = span{name: route, parent: None}
	return t
}

// ID returns the trace's correlation id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a child span under parent (out-of-range parents, including
// None, attach to the root). It returns None on a nil or span-capped
// trace.
func (t *Trace) Start(parent SpanID, name string) SpanID {
	if t == nil {
		return None
	}
	at := time.Since(t.begin)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return None
	}
	if parent < 0 || int(parent) >= len(t.spans) {
		parent = Root
	}
	t.spans = append(t.spans, span{name: name, parent: parent, start: at})
	return SpanID(len(t.spans) - 1)
}

// End closes a span, fixing its duration. Ending the root (Finish's job),
// None, or an already-ended span is a no-op.
func (t *Trace) End(id SpanID) {
	if t == nil || id <= Root {
		return
	}
	at := time.Since(t.begin)
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return
	}
	if sp := &t.spans[id]; !sp.ended {
		sp.dur = at - sp.start
		sp.ended = true
	}
}

// SetName renames a span. Callers use it when a phase's identity is only
// known after the fact — the cache span becomes cache_hit,
// singleflight_wait or cache_miss once the lookup resolved.
func (t *Trace) SetName(id SpanID, name string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return
	}
	t.spans[id].name = name
}

// Annotate attaches a key=value note to a span (Root included).
func (t *Trace) Annotate(id SpanID, key, value string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return
	}
	sp := &t.spans[id]
	sp.attrs = append(sp.attrs, annotation{key: key, value: value})
}

// AnnotateInt is Annotate for integer values, formatting only when the
// trace is live.
func (t *Trace) AnnotateInt(id SpanID, key string, v int64) {
	if t == nil || id < 0 {
		return
	}
	t.Annotate(id, key, strconv.FormatInt(v, 10))
}

// Finish closes the root span with the response status and fixes the
// trace's total duration. Only the first Finish counts.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	at := time.Since(t.begin)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return
	}
	t.finished = true
	t.status = status
	t.dur = at
	t.spans[0].dur = at
	t.spans[0].ended = true
}

// Duration returns the finished trace's total duration (0 until Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Phases calls fn for every ended non-root span, in start order. The
// server folds these into the per-phase duration summaries on /metrics;
// fn must not call back into the trace.
func (t *Trace) Phases(fn func(name string, d time.Duration)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i < len(t.spans); i++ {
		if t.spans[i].ended {
			fn(t.spans[i].name, t.spans[i].dur)
		}
	}
}

// Summary renders the ended child spans compactly for log lines:
// "cache_miss=12.4ms engine=11.8ms encode=0.2ms", in start order.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i := 1; i < len(t.spans); i++ {
		sp := &t.spans[i]
		if !sp.ended {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(float64(sp.dur)/float64(time.Millisecond), 'f', 1, 64))
		b.WriteString("ms")
	}
	return b.String()
}

// SpanSnapshot is one span's JSON form. Parent is the index of the
// parent span in the enclosing snapshot's Spans (-1 for the root);
// starts and durations are seconds, matching the /metrics histograms.
type SpanSnapshot struct {
	Name            string            `json:"name"`
	Parent          int               `json:"parent"`
	StartSeconds    float64           `json:"start_seconds"`
	DurationSeconds float64           `json:"duration_seconds"`
	Attrs           map[string]string `json:"attrs,omitempty"`
}

// TraceSnapshot is one timeline's JSON form, the element type of
// GET /debug/requests. Spans[0] is the root; span order is start order.
type TraceSnapshot struct {
	ID              string         `json:"id"`
	Route           string         `json:"route"`
	Status          int            `json:"status,omitempty"`
	Begin           time.Time      `json:"begin"`
	DurationSeconds float64        `json:"duration_seconds"`
	Spans           []SpanSnapshot `json:"spans"`
	DroppedSpans    int            `json:"dropped_spans,omitempty"`
}

// Snapshot copies the trace into its JSON form. Unfinished spans appear
// with a zero duration.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSnapshot{
		ID:              t.id,
		Route:           t.route,
		Status:          t.status,
		Begin:           t.begin,
		DurationSeconds: t.dur.Seconds(),
		Spans:           make([]SpanSnapshot, len(t.spans)),
		DroppedSpans:    t.dropped,
	}
	for i := range t.spans {
		sp := &t.spans[i]
		ss := SpanSnapshot{
			Name:            sp.name,
			Parent:          int(sp.parent),
			StartSeconds:    sp.start.Seconds(),
			DurationSeconds: sp.dur.Seconds(),
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				ss.Attrs[a.key] = a.value
			}
		}
		out.Spans[i] = ss
	}
	return out
}

// ctxKey keys the (trace, span) pair in a context.
type ctxKey struct{}

// ctxSpan is the context payload: a trace plus the span new children
// should attach under.
type ctxSpan struct {
	t      *Trace
	parent SpanID
}

// ContextWith returns ctx carrying the trace and parent span. A nil
// trace returns ctx unchanged — the disarmed path allocates nothing.
func ContextWith(ctx context.Context, t *Trace, parent SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxSpan{t: t, parent: parent})
}

// SpanFromContext returns the trace and parent span carried by ctx, or
// (nil, None). A nil ctx is allowed and yields the no-op pair, so
// callers holding an optional context need no guard.
func SpanFromContext(ctx context.Context) (*Trace, SpanID) {
	if ctx == nil {
		return nil, None
	}
	if cs, ok := ctx.Value(ctxKey{}).(ctxSpan); ok {
		return cs.t, cs.parent
	}
	return nil, None
}
