package obs

import (
	"context"
	"testing"
	"time"
)

// TestDisarmedTapAllocsZero pins the contract that makes unconditional
// instrumentation affordable: with no flight recorder armed (nil *Trace,
// nil *Recorder), the full per-request tap sequence — span open/close,
// annotation, context propagation, finish, record — allocates nothing.
func TestDisarmedTapAllocsZero(t *testing.T) {
	var tr *Trace
	var rec *Recorder
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(Root, "cache")
		tr.SetName(sp, "cache_miss")
		child := tr.Start(sp, "engine")
		tr.AnnotateInt(child, "rounds", 42)
		tr.End(child)
		tr.End(sp)
		c2 := ContextWith(ctx, tr, sp)
		t2, parent := SpanFromContext(c2)
		t2.End(t2.Start(parent, "fork"))
		tr.Annotate(Root, "k", "v")
		tr.Finish(200)
		tr.Phases(func(string, time.Duration) {})
		_ = tr.Summary()
		_ = tr.Duration()
		rec.Record(tr)
		_ = rec.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disarmed tap sequence allocated %.1f times per run, want 0", allocs)
	}
}
