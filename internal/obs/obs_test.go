package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("/v1/run", "req-1")
	if tr.ID() != "req-1" {
		t.Fatalf("ID = %q, want req-1", tr.ID())
	}
	cache := tr.Start(Root, "cache")
	tr.SetName(cache, "cache_miss")
	engine := tr.Start(cache, "engine")
	tr.AnnotateInt(engine, "rounds", 7)
	tr.End(engine)
	tr.End(cache)
	enc := tr.Start(Root, "encode")
	tr.Annotate(enc, "bytes", "512")
	tr.End(enc)
	tr.Finish(200)

	snap := tr.Snapshot()
	if snap.ID != "req-1" || snap.Route != "/v1/run" || snap.Status != 200 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	root := snap.Spans[0]
	if root.Name != "/v1/run" || root.Parent != -1 {
		t.Fatalf("root span = %+v", root)
	}
	if root.DurationSeconds <= 0 || snap.DurationSeconds != root.DurationSeconds {
		t.Fatalf("root duration %v vs trace %v", root.DurationSeconds, snap.DurationSeconds)
	}
	if got := snap.Spans[1]; got.Name != "cache_miss" || got.Parent != 0 {
		t.Fatalf("cache span = %+v", got)
	}
	if got := snap.Spans[2]; got.Name != "engine" || got.Parent != 1 || got.Attrs["rounds"] != "7" {
		t.Fatalf("engine span = %+v", got)
	}
	if got := snap.Spans[3]; got.Name != "encode" || got.Parent != 0 || got.Attrs["bytes"] != "512" {
		t.Fatalf("encode span = %+v", got)
	}
	for i, sp := range snap.Spans {
		if sp.DurationSeconds < 0 || sp.StartSeconds < 0 {
			t.Fatalf("span %d has negative timing: %+v", i, sp)
		}
	}
}

func TestTraceFinishFirstWins(t *testing.T) {
	tr := NewTrace("/v1/run", "req-2")
	tr.Finish(504)
	d := tr.Duration()
	tr.Finish(200)
	if snap := tr.Snapshot(); snap.Status != 504 {
		t.Fatalf("status = %d, want first Finish's 504", snap.Status)
	}
	if tr.Duration() != d {
		t.Fatalf("duration changed on second Finish")
	}
}

func TestTraceSpanCapCountsDrops(t *testing.T) {
	tr := NewTrace("/v1/sweep", "req-3")
	for i := 0; i < maxSpans+10; i++ {
		id := tr.Start(Root, "element")
		if i < maxSpans-1 && id == None {
			t.Fatalf("span %d unexpectedly dropped", i)
		}
		if i >= maxSpans-1 && id != None {
			t.Fatalf("span %d exceeded the cap but was not dropped", i)
		}
		tr.End(id)
	}
	tr.Finish(200)
	snap := tr.Snapshot()
	if len(snap.Spans) != maxSpans {
		t.Fatalf("got %d spans, want cap %d", len(snap.Spans), maxSpans)
	}
	if snap.DroppedSpans != 11 {
		t.Fatalf("dropped = %d, want 11", snap.DroppedSpans)
	}
}

func TestTraceBadIDsAreSafe(t *testing.T) {
	tr := NewTrace("/v1/run", "req-4")
	// Out-of-range parent attaches to the root.
	child := tr.Start(SpanID(99), "child")
	tr.End(SpanID(42))    // unknown id
	tr.End(None)          // no-op id
	tr.End(Root)          // root is Finish's job
	tr.SetName(None, "x") // no-op
	tr.Annotate(None, "k", "v")
	tr.End(child)
	tr.Finish(200)
	snap := tr.Snapshot()
	if snap.Spans[1].Parent != 0 {
		t.Fatalf("bad parent should fall back to root, got %d", snap.Spans[1].Parent)
	}
}

func TestNilTraceOps(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil ID")
	}
	id := tr.Start(Root, "x")
	if id != None {
		t.Fatalf("nil Start = %d, want None", id)
	}
	tr.End(id)
	tr.SetName(id, "y")
	tr.Annotate(id, "k", "v")
	tr.AnnotateInt(id, "k", 1)
	tr.Finish(200)
	if tr.Duration() != 0 {
		t.Fatal("nil Duration")
	}
	tr.Phases(func(string, time.Duration) { t.Fatal("nil Phases called fn") })
	if tr.Summary() != "" {
		t.Fatal("nil Summary")
	}
	if snap := tr.Snapshot(); len(snap.Spans) != 0 {
		t.Fatal("nil Snapshot")
	}
}

func TestPhasesAndSummary(t *testing.T) {
	tr := NewTrace("/v1/run", "req-5")
	a := tr.Start(Root, "cache_hit")
	tr.End(a)
	b := tr.Start(Root, "encode")
	tr.End(b)
	tr.Start(Root, "unended")
	tr.Finish(200)

	var names []string
	tr.Phases(func(name string, d time.Duration) {
		if d < 0 {
			t.Fatalf("phase %s has negative duration", name)
		}
		names = append(names, name)
	})
	if len(names) != 2 || names[0] != "cache_hit" || names[1] != "encode" {
		t.Fatalf("phases = %v", names)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "cache_hit=") || !strings.Contains(sum, "encode=") {
		t.Fatalf("summary = %q", sum)
	}
	if strings.Contains(sum, "unended") {
		t.Fatalf("summary includes unended span: %q", sum)
	}
}

func TestContextPropagation(t *testing.T) {
	base := context.Background()
	if tr, id := SpanFromContext(base); tr != nil || id != None {
		t.Fatalf("empty ctx = (%v, %d)", tr, id)
	}
	if tr, id := SpanFromContext(nil); tr != nil || id != None {
		t.Fatalf("nil ctx = (%v, %d)", tr, id)
	}
	// nil trace: ctx must come back unchanged (no allocation, no value).
	if got := ContextWith(base, nil, Root); got != base {
		t.Fatal("ContextWith(nil trace) should return ctx unchanged")
	}
	tr := NewTrace("/v1/run", "req-6")
	sp := tr.Start(Root, "engine")
	ctx := ContextWith(base, tr, sp)
	got, parent := SpanFromContext(ctx)
	if got != tr || parent != sp {
		t.Fatalf("round-trip = (%v, %d), want (%v, %d)", got, parent, tr, sp)
	}
	child := got.Start(parent, "fork")
	got.End(child)
	got.End(sp)
	tr.Finish(200)
	snap := tr.Snapshot()
	if snap.Spans[2].Name != "fork" || snap.Spans[2].Parent != 1 {
		t.Fatalf("fork span = %+v", snap.Spans[2])
	}
}

func TestRecorderRingNewestFirst(t *testing.T) {
	r := NewRecorder(3)
	if !r.Enabled() || r.Capacity() != 3 {
		t.Fatalf("recorder = enabled %v cap %d", r.Enabled(), r.Capacity())
	}
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		tr := NewTrace("/v1/run", id)
		tr.Finish(200)
		r.Record(tr)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, want := range []string{"e", "d", "c"} {
		if snaps[i].ID != want {
			t.Fatalf("snapshot %d = %q, want %q (newest first)", i, snaps[i].ID, want)
		}
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder(8)
	tr := NewTrace("/v1/run", "only")
	tr.Finish(200)
	r.Record(tr)
	r.Record(nil) // no-op
	snaps := r.Snapshots()
	if len(snaps) != 1 || snaps[0].ID != "only" {
		t.Fatalf("snapshots = %+v", snaps)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() || r.Capacity() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder should read as disabled and empty")
	}
	r.Record(NewTrace("/v1/run", "x"))
	if snaps := r.Snapshots(); snaps != nil {
		t.Fatalf("nil Snapshots = %v", snaps)
	}
	if NewRecorder(0) != nil || NewRecorder(-5) != nil {
		t.Fatal("NewRecorder(n<=0) must return nil")
	}
}
