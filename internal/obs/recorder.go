package obs

import "sync"

// Recorder is the flight recorder: a bounded ring of the most recent
// finished traces, oldest evicted first. A nil *Recorder is a valid
// disabled recorder — Record and Snapshots are no-ops, Enabled reports
// false — which is how the server disarms the whole span stack.
type Recorder struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	total uint64
}

// NewRecorder builds a recorder retaining the last n traces. n ≤ 0
// returns nil — the disabled recorder.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		return nil
	}
	return &Recorder{ring: make([]*Trace, n)}
}

// Enabled reports whether traces are being retained. The serving layer
// uses it to skip trace construction entirely when disarmed.
func (r *Recorder) Enabled() bool { return r != nil }

// Capacity returns the ring size (0 when disabled).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Total returns the number of traces ever recorded (0 when disabled).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Record retains a finished trace, evicting the oldest when full. Nil
// traces and nil recorders are no-ops.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Snapshots copies the retained timelines, newest first.
func (r *Recorder) Snapshots() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	traces := make([]*Trace, 0, len(r.ring))
	// Walk backwards from the most recently written slot.
	for i := 0; i < len(r.ring); i++ {
		slot := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		if t := r.ring[slot]; t != nil {
			traces = append(traces, t)
		}
	}
	r.mu.Unlock()
	// Snapshot outside r.mu: each trace has its own lock, and holding
	// the ring lock across per-trace copies would stall recording.
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}
