package fault

import (
	"fmt"

	"repro/internal/topology"
)

// Budget incrementally tracks, for every closed neighborhood of the graph,
// how many faulty nodes it contains. It answers "can this node still be made
// faulty without any neighborhood exceeding t?" in O(degree) time. It works
// on any topology.Graph family.
type Budget struct {
	g      topology.Graph
	t      int
	counts []int // counts[c] = number of faults in the closed nbd centered at c
	faulty []bool
	total  int
}

// NewBudget creates an empty budget for at most t faults per closed
// neighborhood. t may be zero (no faults allowed anywhere).
func NewBudget(g topology.Graph, t int) (*Budget, error) {
	if g == nil {
		return nil, fmt.Errorf("fault: network is required")
	}
	if t < 0 {
		return nil, fmt.Errorf("fault: negative fault bound %d", t)
	}
	return &Budget{
		g:      g,
		t:      t,
		counts: make([]int, g.Size()),
		faulty: make([]bool, g.Size()),
	}, nil
}

// T returns the per-neighborhood fault bound.
func (b *Budget) T() int { return b.t }

// Total returns the number of faults placed so far.
func (b *Budget) Total() int { return b.total }

// IsFaulty reports whether id has been marked faulty.
func (b *Budget) IsFaulty(id topology.NodeID) bool { return b.faulty[id] }

// CanAdd reports whether marking id faulty keeps every closed neighborhood
// within the bound. Already-faulty nodes cannot be re-added.
func (b *Budget) CanAdd(id topology.NodeID) bool {
	if b.faulty[id] {
		return false
	}
	// id belongs to the closed neighborhoods centered at itself and at each
	// of its neighbors.
	if b.counts[id]+1 > b.t {
		return false
	}
	for _, c := range b.g.Neighbors(id) {
		if b.counts[c]+1 > b.t {
			return false
		}
	}
	return true
}

// Add marks id faulty. It returns an error if the addition would violate the
// budget, leaving the state unchanged.
func (b *Budget) Add(id topology.NodeID) error {
	if b.faulty[id] {
		return fmt.Errorf("fault: node %d already faulty", id)
	}
	if !b.CanAdd(id) {
		return fmt.Errorf("fault: adding node %d would exceed %d faults in a neighborhood", id, b.t)
	}
	b.faulty[id] = true
	b.total++
	b.counts[id]++
	for _, c := range b.g.Neighbors(id) {
		b.counts[c]++
	}
	return nil
}

// Faulty returns the faulty node ids in ascending order.
func (b *Budget) Faulty() []topology.NodeID {
	out := make([]topology.NodeID, 0, b.total)
	for id, f := range b.faulty {
		if f {
			out = append(out, topology.NodeID(id))
		}
	}
	return out
}

// MaxPerNeighborhood exhaustively computes the maximum number of nodes of
// `faulty` contained in any closed neighborhood of the graph. It is the
// ground-truth validator for every placement (independent of Budget's
// incremental counters).
func MaxPerNeighborhood(g topology.Graph, faulty []topology.NodeID) int {
	isF := make([]bool, g.Size())
	for _, id := range faulty {
		isF[id] = true
	}
	maxCount := 0
	for center := 0; center < g.Size(); center++ {
		n := 0
		if isF[center] {
			n++
		}
		for _, nb := range g.Neighbors(topology.NodeID(center)) {
			if isF[nb] {
				n++
			}
		}
		if n > maxCount {
			maxCount = n
		}
	}
	return maxCount
}
