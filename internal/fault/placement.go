package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/topology"
)

// Band returns all nodes in the vertical band x0 ≤ x < x0+width (wrapped on
// the torus). With width = r this is exactly the Fig 8 construction: the
// band contains r(2r+1) nodes of every closed neighborhood straddling it and
// cuts the torus when all of them crash.
func Band(net *topology.Network, x0, width int) []topology.NodeID {
	t := net.Torus()
	var out []topology.NodeID
	for dx := 0; dx < width; dx++ {
		x := ((x0+dx)%t.W + t.W) % t.W
		for y := 0; y < t.H; y++ {
			out = append(out, net.IDOf(grid.C(x, y)))
		}
	}
	return out
}

// CheckerboardBand returns the nodes of the width-w band whose coordinates
// satisfy (x+y) even — the Fig 13 style placement. In any closed L∞
// neighborhood the checkerboard half of a width-r band has at most
// ⌈r(2r+1)/2⌉ nodes, which is exactly the Byzantine impossibility bound.
// The parity alternates along wrapped columns only if the torus height is
// even; require it.
func CheckerboardBand(net *topology.Network, x0, width int) ([]topology.NodeID, error) {
	t := net.Torus()
	if t.H%2 != 0 {
		return nil, fmt.Errorf("fault: checkerboard band needs even torus height, got %d", t.H)
	}
	var out []topology.NodeID
	for dx := 0; dx < width; dx++ {
		x := ((x0+dx)%t.W + t.W) % t.W
		for y := 0; y < t.H; y++ {
			if (x+y)%2 == 0 {
				out = append(out, net.IDOf(grid.C(x, y)))
			}
		}
	}
	return out, nil
}

// GreedyBand fills the width-w band with as many faults as the budget t
// allows, visiting band nodes in checkerboard-first order. It produces a
// maximal adversarial band placement for achievability experiments: the
// hardest band the locally bounded adversary may legally build.
func GreedyBand(net *topology.Network, x0, width, t int) ([]topology.NodeID, error) {
	b, err := NewBudget(net, t)
	if err != nil {
		return nil, err
	}
	candidates := Band(net, x0, width)
	// Checkerboard parity first: these are the most damaging positions.
	ordered := make([]topology.NodeID, 0, len(candidates))
	for _, id := range candidates {
		c := net.CoordOf(id)
		if (c.X+c.Y)%2 == 0 {
			ordered = append(ordered, id)
		}
	}
	for _, id := range candidates {
		c := net.CoordOf(id)
		if (c.X+c.Y)%2 != 0 {
			ordered = append(ordered, id)
		}
	}
	for _, id := range ordered {
		if b.CanAdd(id) {
			if err := b.Add(id); err != nil {
				return nil, err
			}
		}
	}
	return b.Faulty(), nil
}

// RandomBounded places faults by visiting all nodes in a seeded random
// order, marking each faulty while the budget t permits, until `target`
// faults are placed (or the placement saturates). target < 0 means "as many
// as possible". It works on any topology.Graph family.
func RandomBounded(g topology.Graph, t, target int, seed int64) ([]topology.NodeID, error) {
	b, err := NewBudget(g, t)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.Size())
	for _, idx := range perm {
		if target >= 0 && b.Total() >= target {
			break
		}
		id := topology.NodeID(idx)
		if b.CanAdd(id) {
			if err := b.Add(id); err != nil {
				return nil, err
			}
		}
	}
	return b.Faulty(), nil
}

// Percolation marks each node faulty independently with probability pf —
// the random-failure model the paper connects to site percolation (§XI).
// The source node is kept non-faulty so reachability is well-defined. It
// works on any topology.Graph family.
func Percolation(g topology.Graph, pf float64, source topology.NodeID, seed int64) ([]topology.NodeID, error) {
	if pf < 0 || pf > 1 {
		return nil, fmt.Errorf("fault: probability %v out of [0,1]", pf)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []topology.NodeID
	for i := 0; i < g.Size(); i++ {
		id := topology.NodeID(i)
		if id != source && rng.Float64() < pf {
			out = append(out, id)
		}
	}
	return out, nil
}
