// Package fault implements the paper's locally bounded adversary (§II): the
// fault-budget checker (no closed neighborhood may contain more than t
// faulty nodes), the worst-case placements used in the impossibility
// constructions (the Fig 8 crash band and the Fig 13 checkerboard band),
// randomized budget-respecting placements, iid percolation failures (§XI),
// and the Byzantine node behaviours used in simulations.
package fault
