package fault

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Strategy names a Byzantine node behaviour. Strategies are sim.Process
// factories: the engine runs them in place of the honest protocol. Except
// for the explicit what-ifs — Spoofer (§X identity spoofing) and
// Equivocator (directional transmission) — strategies respect the medium's
// physical guarantees: no identity spoofing, no collisions, no showing
// different values to different neighbors; everything else (lying, forging
// reports, staying silent) is fair game.
type Strategy int

const (
	// Silent nodes never transmit: the strongest stalling adversary for
	// threshold experiments (a silent fault also subsumes a crash).
	Silent Strategy = iota + 1
	// Liar nodes announce a flipped COMMITTED value as soon as they hear
	// any value, then go quiet.
	Liar
	// Forger nodes announce a flipped COMMITTED value and additionally
	// forge indirect HEARD reports: every honest COMMITTED or HEARD they
	// hear is re-reported with the value flipped, attacking the
	// indirect-evidence mechanism of §VI directly.
	Forger
	// Spoofer nodes impersonate honest neighbors, announcing flipped
	// COMMITTED values under stolen identities. The paper's model forbids
	// this ("a node may not spoof another node's identity"); the strategy
	// only bites when the protocol runs with SpoofingPossible — the §X
	// sensitivity study.
	Spoofer
	// Equivocator nodes are two-faced: they endorse one value toward
	// even-id receivers and the flipped value toward odd-id receivers, in
	// every quorum dialect (VALUE, ECHO, READY) at once. This violates the
	// radio medium's local-broadcast guarantee (every neighbor hears the
	// same transmission) via directional transmission — a physical-layer
	// what-if in the spirit of §X. Quorum protocols are sensitive to it
	// (split ECHO/READY tallies stall Bracha at f ≥ N/3) while the paper's
	// locally-bounded protocols shrug it off: the split endorsements are
	// just one more Byzantine vote per partition.
	Equivocator
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Silent:
		return "silent"
	case Liar:
		return "liar"
	case Forger:
		return "forger"
	case Spoofer:
		return "spoofer"
	case Equivocator:
		return "equivocator"
	default:
		return "unknown"
	}
}

// NewProcess builds the sim.Process implementing the strategy for node id.
func (s Strategy) NewProcess(id topology.NodeID) sim.Process {
	switch s {
	case Silent:
		return sim.NopProcess{}
	case Liar:
		return &liarProc{}
	case Forger:
		return &forgerProc{seen: make(map[string]struct{})}
	case Spoofer:
		return &spooferProc{victims: make(map[topology.NodeID]struct{})}
	case Equivocator:
		return &equivocatorProc{}
	default:
		return sim.NopProcess{}
	}
}

// flip inverts a binary broadcast value.
func flip(v byte) byte {
	if v == 0 {
		return 1
	}
	return 0
}

// liarProc announces the flipped value once.
type liarProc struct {
	sent bool
}

// Init implements sim.Process.
func (p *liarProc) Init(sim.Context) {}

// Deliver implements sim.Process.
func (p *liarProc) Deliver(ctx sim.Context, _ topology.NodeID, m sim.Message) {
	if p.sent {
		return
	}
	if m.Kind != sim.KindValue && m.Kind != sim.KindCommitted {
		return
	}
	p.sent = true
	ctx.Broadcast(sim.Message{
		Kind: sim.KindCommitted, Origin: ctx.Self(), Value: flip(m.Value),
		Instance: m.Instance,
	})
}

// Decided implements sim.Process; adversaries never decide.
func (p *liarProc) Decided() (byte, bool) { return 0, false }

// forgerProc lies about its own commitment and about everything it relays.
type forgerProc struct {
	sentCommit bool
	seen       map[string]struct{}
}

// Init implements sim.Process.
func (p *forgerProc) Init(sim.Context) {}

// Deliver implements sim.Process.
func (p *forgerProc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	switch m.Kind {
	case sim.KindValue, sim.KindCommitted:
		if !p.sentCommit {
			p.sentCommit = true
			ctx.Broadcast(sim.Message{
				Kind: sim.KindCommitted, Origin: ctx.Self(), Value: flip(m.Value),
				Instance: m.Instance,
			})
		}
		if m.Kind == sim.KindCommitted {
			// Forge a first-hop report with the value flipped. The relayer
			// identity (ourselves) is genuine — the medium authenticates it —
			// but the reported value is a lie.
			forged := sim.Message{
				Kind:     sim.KindHeard,
				Origin:   from,
				Value:    flip(m.Value),
				Path:     []topology.NodeID{ctx.Self()},
				Instance: m.Instance,
			}
			p.broadcastOnce(ctx, forged)
		}
	case sim.KindHeard:
		if len(m.Path) >= sim.MaxHeardRelays {
			return
		}
		// Relay the chain with the value flipped, appending our (genuine)
		// identifier as the protocol requires.
		forged := m.ExtendPath(ctx.Self())
		forged.Value = flip(m.Value)
		p.broadcastOnce(ctx, forged)
	}
}

// broadcastOnce suppresses duplicate forgeries (the medium preserves
// per-sender ordering, so honest receivers would ignore duplicates anyway).
func (p *forgerProc) broadcastOnce(ctx sim.Context, m sim.Message) {
	k := m.Key()
	if _, ok := p.seen[k]; ok {
		return
	}
	p.seen[k] = struct{}{}
	ctx.Broadcast(m)
}

// Decided implements sim.Process.
func (p *forgerProc) Decided() (byte, bool) { return 0, false }

var (
	_ sim.Process = (*liarProc)(nil)
	_ sim.Process = (*forgerProc)(nil)
)

// spooferProc impersonates every sender it hears: for each first message
// from a node h carrying a value, it broadcasts COMMITTED(h, flip) with a
// spoofed sender identity. Under the paper's authenticated medium these
// messages are discarded (Origin equals the claimed sender but receivers
// attribute them to the true transmitter); with SpoofingPossible they are
// indistinguishable from h's own announcements.
type spooferProc struct {
	victims map[topology.NodeID]struct{}
}

// Init implements sim.Process.
func (p *spooferProc) Init(sim.Context) {}

// Deliver implements sim.Process.
func (p *spooferProc) Deliver(ctx sim.Context, from topology.NodeID, m sim.Message) {
	if m.Kind != sim.KindValue && m.Kind != sim.KindCommitted {
		return
	}
	if _, done := p.victims[from]; done {
		return
	}
	p.victims[from] = struct{}{}
	// Impersonate in both announcement dialects: VALUE (the simple
	// protocol's vote format, and the source's own transmission) and
	// COMMITTED (the indirect-report protocols' format).
	ctx.Broadcast(sim.Message{
		Kind:     sim.KindValue,
		Value:    flip(m.Value),
		Spoofed:  true,
		Claimed:  from,
		Instance: m.Instance,
	})
	ctx.Broadcast(sim.Message{
		Kind:     sim.KindCommitted,
		Origin:   from,
		Value:    flip(m.Value),
		Spoofed:  true,
		Claimed:  from,
		Instance: m.Instance,
	})
}

// Decided implements sim.Process.
func (p *spooferProc) Decided() (byte, bool) { return 0, false }

var _ sim.Process = (*spooferProc)(nil)

// equivocatorProc attacks quorum assembly: on the first value-bearing
// message it hears, it emits one two-faced volley — the heard value in every
// quorum dialect (VALUE, ECHO, READY) toward even-id receivers, the flipped
// value toward odd-id ones — then goes quiet. Origin is its own (genuine)
// identity, so the volley cannot masquerade as the source's signed VAL under
// the authenticated Bracha variant; the attack is pure equivocation, not
// forgery. The split audiences violate the radio medium's local-broadcast
// guarantee (see sim.Audience) — the point of the what-if.
type equivocatorProc struct {
	sent bool
}

// Init implements sim.Process.
func (p *equivocatorProc) Init(sim.Context) {}

// Deliver implements sim.Process.
func (p *equivocatorProc) Deliver(ctx sim.Context, _ topology.NodeID, m sim.Message) {
	if p.sent || m.Value > 1 {
		return
	}
	switch m.Kind {
	case sim.KindValue, sim.KindCommitted, sim.KindEcho, sim.KindReady:
	default:
		return
	}
	p.sent = true
	for _, face := range []struct {
		audience sim.Audience
		value    byte
	}{
		{sim.AudienceEven, m.Value},
		{sim.AudienceOdd, flip(m.Value)},
	} {
		for _, kind := range []sim.Kind{sim.KindValue, sim.KindEcho, sim.KindReady} {
			ctx.Broadcast(sim.Message{
				Kind:     kind,
				Value:    face.value,
				Origin:   ctx.Self(),
				Audience: face.audience,
				Instance: m.Instance,
			})
		}
	}
}

// Decided implements sim.Process.
func (p *equivocatorProc) Decided() (byte, bool) { return 0, false }

var _ sim.Process = (*equivocatorProc)(nil)
