package fault

import (
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t *testing.T, w, h, r int) *topology.Network {
	t.Helper()
	net, err := topology.New(grid.Torus{W: w, H: h}, grid.Linf, r)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return net
}

func TestNewBudgetValidation(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	if _, err := NewBudget(nil, 1); err == nil {
		t.Error("nil network must be rejected")
	}
	if _, err := NewBudget(net, -1); err == nil {
		t.Error("negative bound must be rejected")
	}
	b, err := NewBudget(net, 0)
	if err != nil {
		t.Fatalf("NewBudget: %v", err)
	}
	if b.CanAdd(0) {
		t.Error("t=0 admits no faults")
	}
}

func TestBudgetAddAndQuery(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	b, err := NewBudget(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := net.IDOf(grid.C(5, 5))
	if err := b.Add(id); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !b.IsFaulty(id) || b.Total() != 1 {
		t.Error("state not updated")
	}
	if err := b.Add(id); err == nil {
		t.Error("double add must fail")
	}
	// Second fault next to the first is fine at t=2.
	if err := b.Add(net.IDOf(grid.C(5, 6))); err != nil {
		t.Fatalf("second Add: %v", err)
	}
	// Third in the same neighborhood must fail.
	if b.CanAdd(net.IDOf(grid.C(5, 4))) {
		t.Error("third fault in one closed nbd must be rejected at t=2")
	}
	if err := b.Add(net.IDOf(grid.C(5, 4))); err == nil {
		t.Error("Add must enforce the budget")
	}
}

func TestBudgetMatchesExhaustiveCheck(t *testing.T) {
	// Property: any placement accepted by the incremental budget passes the
	// exhaustive neighborhood check with the same bound.
	net := testNet(t, 12, 12, 2)
	f := func(seed int64, tt uint8) bool {
		bound := int(tt%5) + 1
		faulty, err := RandomBounded(net, bound, -1, seed)
		if err != nil {
			return false
		}
		return MaxPerNeighborhood(net, faulty) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBandCounts(t *testing.T) {
	net := testNet(t, 12, 10, 2)
	band := Band(net, 3, 2)
	if len(band) != 2*10 {
		t.Fatalf("|band| = %d, want 20", len(band))
	}
	for _, id := range band {
		c := net.CoordOf(id)
		if c.X != 3 && c.X != 4 {
			t.Errorf("band node at x=%d", c.X)
		}
	}
	// Wrapping: a band starting at the last column wraps to column 0.
	wrapped := Band(net, 11, 2)
	for _, id := range wrapped {
		c := net.CoordOf(id)
		if c.X != 11 && c.X != 0 {
			t.Errorf("wrapped band node at x=%d", c.X)
		}
	}
}

func TestBandIsFig8Construction(t *testing.T) {
	// Fig 8 / Theorem 4: a width-r crash band contains at most r(2r+1)
	// faults per closed neighborhood — exactly the impossibility bound.
	for _, r := range []int{1, 2, 3} {
		w := 6*r + 6
		net := testNet(t, w, 4*r+4, r)
		band := Band(net, 2, r)
		maxF := MaxPerNeighborhood(net, band)
		if want := bounds.MinImpossibleCrashLinf(r); maxF != want {
			t.Errorf("r=%d: band max-per-nbd = %d, want %d", r, maxF, want)
		}
	}
}

func TestCheckerboardBandIsFig13Construction(t *testing.T) {
	// Fig 13 / Koo impossibility: the checkerboard half of a width-r band
	// has at most ⌈r(2r+1)/2⌉ faults per closed neighborhood.
	for _, r := range []int{1, 2, 3} {
		w := 6*r + 6
		net := testNet(t, w, 4*r+4, r)
		cb, err := CheckerboardBand(net, 2, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		maxF := MaxPerNeighborhood(net, cb)
		if want := bounds.MinImpossibleByzantineLinf(r); maxF != want {
			t.Errorf("r=%d: checkerboard max-per-nbd = %d, want %d", r, maxF, want)
		}
	}
}

func TestCheckerboardBandNeedsEvenHeight(t *testing.T) {
	net := testNet(t, 12, 9, 2)
	if _, err := CheckerboardBand(net, 0, 2); err == nil {
		t.Error("odd torus height must be rejected (parity breaks across the wrap)")
	}
}

func TestGreedyBandRespectsBudget(t *testing.T) {
	net := testNet(t, 18, 12, 2)
	for _, bound := range []int{1, 4, 9, 10} {
		faulty, err := GreedyBand(net, 4, 2, bound)
		if err != nil {
			t.Fatalf("t=%d: %v", bound, err)
		}
		if got := MaxPerNeighborhood(net, faulty); got > bound {
			t.Errorf("t=%d: max-per-nbd = %d", bound, got)
		}
		if len(faulty) == 0 && bound > 0 {
			t.Errorf("t=%d: greedy band placed nothing", bound)
		}
		// All faults lie in the band columns 4..5.
		for _, id := range faulty {
			c := net.CoordOf(id)
			if c.X != 4 && c.X != 5 {
				t.Errorf("t=%d: fault outside band at %v", bound, c)
			}
		}
	}
}

func TestRandomBoundedTarget(t *testing.T) {
	net := testNet(t, 12, 12, 1)
	faulty, err := RandomBounded(net, 3, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 10 {
		t.Errorf("placed %d faults, want 10", len(faulty))
	}
	if MaxPerNeighborhood(net, faulty) > 3 {
		t.Error("budget violated")
	}
	// Determinism under a fixed seed.
	again, err := RandomBounded(net, 3, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faulty {
		if faulty[i] != again[i] {
			t.Fatal("RandomBounded not deterministic for fixed seed")
		}
	}
}

func TestPercolation(t *testing.T) {
	net := testNet(t, 20, 20, 1)
	source := net.IDOf(grid.C(0, 0))
	faulty, err := Percolation(net, 0.3, source, 7)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(faulty)) / float64(net.Size())
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("failure fraction %v far from 0.3", frac)
	}
	for _, id := range faulty {
		if id == source {
			t.Error("source must never fail")
		}
	}
	if _, err := Percolation(net, 1.5, source, 7); err == nil {
		t.Error("probability > 1 must be rejected")
	}
	if all, err := Percolation(net, 1.0, source, 7); err != nil || len(all) != net.Size()-1 {
		t.Errorf("pf=1 must fail everyone but the source: %d, err=%v", len(all), err)
	}
}

func TestStrategyString(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{Silent, "silent"},
		{Liar, "liar"},
		{Forger, "forger"},
		{Strategy(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

// captureCtx records broadcasts for strategy unit tests.
type captureCtx struct {
	self topology.NodeID
	out  []sim.Message
}

func (c *captureCtx) Self() topology.NodeID   { return c.self }
func (c *captureCtx) Round() int              { return 1 }
func (c *captureCtx) Broadcast(m sim.Message) { c.out = append(c.out, m) }

func TestSilentStrategy(t *testing.T) {
	p := Silent.NewProcess(3)
	ctx := &captureCtx{self: 3}
	p.Init(ctx)
	p.Deliver(ctx, 1, sim.Message{Kind: sim.KindValue, Value: 1})
	if len(ctx.out) != 0 {
		t.Error("silent node transmitted")
	}
	if _, ok := p.Decided(); ok {
		t.Error("adversaries never decide")
	}
}

func TestLiarStrategy(t *testing.T) {
	p := Liar.NewProcess(3)
	ctx := &captureCtx{self: 3}
	p.Init(ctx)
	p.Deliver(ctx, 1, sim.Message{Kind: sim.KindValue, Value: 1})
	if len(ctx.out) != 1 {
		t.Fatalf("liar sent %d messages, want 1", len(ctx.out))
	}
	m := ctx.out[0]
	if m.Kind != sim.KindCommitted || m.Value != 0 || m.Origin != 3 {
		t.Errorf("liar sent %v", m)
	}
	// Second stimulus: stays quiet.
	p.Deliver(ctx, 2, sim.Message{Kind: sim.KindCommitted, Origin: 2, Value: 1})
	if len(ctx.out) != 1 {
		t.Error("liar must announce only once")
	}
}

func TestForgerStrategy(t *testing.T) {
	p := Forger.NewProcess(3)
	ctx := &captureCtx{self: 3}
	p.Init(ctx)
	p.Deliver(ctx, 7, sim.Message{Kind: sim.KindCommitted, Origin: 7, Value: 1})
	// Expect: flipped COMMITTED + forged HEARD about node 7.
	if len(ctx.out) != 2 {
		t.Fatalf("forger sent %d messages, want 2", len(ctx.out))
	}
	if ctx.out[0].Kind != sim.KindCommitted || ctx.out[0].Value != 0 {
		t.Errorf("first message %v", ctx.out[0])
	}
	h := ctx.out[1]
	if h.Kind != sim.KindHeard || h.Origin != 7 || h.Value != 0 ||
		len(h.Path) != 1 || h.Path[0] != 3 {
		t.Errorf("forged HEARD %v", h)
	}
	// A HEARD chain is extended with a flipped value.
	p.Deliver(ctx, 9, sim.Message{
		Kind: sim.KindHeard, Origin: 5, Value: 1, Path: []topology.NodeID{9},
	})
	if len(ctx.out) != 3 {
		t.Fatalf("forger sent %d messages, want 3", len(ctx.out))
	}
	ext := ctx.out[2]
	if ext.Value != 0 || len(ext.Path) != 2 || ext.Path[1] != 3 {
		t.Errorf("extended forgery %v", ext)
	}
	// Chains at the relay cap are not extended.
	p.Deliver(ctx, 9, sim.Message{
		Kind: sim.KindHeard, Origin: 5, Value: 1,
		Path: []topology.NodeID{9, 8, 7},
	})
	if len(ctx.out) != 3 {
		t.Error("forger must respect the relay cap")
	}
	// Duplicate forgeries are suppressed.
	p.Deliver(ctx, 9, sim.Message{
		Kind: sim.KindHeard, Origin: 5, Value: 1, Path: []topology.NodeID{9},
	})
	if len(ctx.out) != 3 {
		t.Error("duplicate forgery must be suppressed")
	}
}

func TestBudgetAccessors(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	b, err := NewBudget(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.T() != 3 {
		t.Errorf("T() = %d, want 3", b.T())
	}
}

func TestNewProcessAllStrategies(t *testing.T) {
	for _, s := range []Strategy{Silent, Liar, Forger, Spoofer, Strategy(0)} {
		p := s.NewProcess(1)
		if p == nil {
			t.Fatalf("%v: nil process", s)
		}
		// Adversaries never decide and tolerate Init.
		ctx := &captureCtx{self: 1}
		p.Init(ctx)
		if _, ok := p.Decided(); ok {
			t.Errorf("%v: adversary decided", s)
		}
	}
}

func TestFlip(t *testing.T) {
	if flip(0) != 1 || flip(1) != 0 || flip(7) != 0 {
		t.Error("flip broken")
	}
}

func TestSpooferStrategy(t *testing.T) {
	p := Spoofer.NewProcess(3)
	ctx := &captureCtx{self: 3}
	p.Init(ctx)
	// Hearing a value from node 9: impersonate it in both dialects.
	p.Deliver(ctx, 9, sim.Message{Kind: sim.KindValue, Value: 1})
	if len(ctx.out) != 2 {
		t.Fatalf("spoofer sent %d messages, want 2", len(ctx.out))
	}
	for _, m := range ctx.out {
		if !m.Spoofed || m.Claimed != 9 || m.Value != 0 {
			t.Errorf("bad spoof %+v", m)
		}
	}
	if ctx.out[0].Kind != sim.KindValue || ctx.out[1].Kind != sim.KindCommitted {
		t.Error("spoofer must impersonate in both message dialects")
	}
	// Each victim is impersonated once.
	p.Deliver(ctx, 9, sim.Message{Kind: sim.KindCommitted, Origin: 9, Value: 1})
	if len(ctx.out) != 2 {
		t.Error("victim impersonated twice")
	}
	// HEARD traffic is ignored.
	p.Deliver(ctx, 8, sim.Message{Kind: sim.KindHeard, Origin: 7, Value: 1, Path: []topology.NodeID{8}})
	if len(ctx.out) != 2 {
		t.Error("spoofer must ignore HEARD traffic")
	}
}

func TestGreedyBandZeroBudget(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	faulty, err := GreedyBand(net, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 0 {
		t.Errorf("t=0 must place nothing, got %d", len(faulty))
	}
	if _, err := GreedyBand(net, 2, 1, -1); err == nil {
		t.Error("negative budget must error")
	}
}

func TestRandomBoundedNegativeBudget(t *testing.T) {
	net := testNet(t, 10, 10, 1)
	if _, err := RandomBounded(net, -1, 5, 1); err == nil {
		t.Error("negative budget must error")
	}
}
