package topology

import (
	"fmt"

	"repro/internal/grid"
)

// NodeID densely identifies a node on the torus: id = y*W + x.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Network is an immutable radio network on a torus. All nodes share the
// same transmission radius; the neighbor relation is symmetric.
type Network struct {
	torus     grid.Torus
	metric    grid.Metric
	radius    int
	offsets   []grid.Coord // ball offsets defining the open neighborhood
	neighbors [][]NodeID   // per-node sorted neighbor lists
	closed    [][]NodeID   // per-point closed neighborhoods: [center, neighbors...]
}

// New constructs the network, validating the torus family's own
// preconditions: a valid metric, a positive radius, and a torus at least
// (2r+1) wide and tall so that distinct ball offsets reach distinct nodes.
// (The size bound is torus-specific — other Graph families validate their
// own constructor inputs.)
func New(t grid.Torus, m grid.Metric, r int) (*Network, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("topology: torus: invalid metric %d", int(m))
	}
	if r < 1 {
		return nil, fmt.Errorf("topology: torus: radius must be ≥ 1, got %d", r)
	}
	if t.W < 2*r+1 || t.H < 2*r+1 {
		return nil, fmt.Errorf("topology: torus %dx%d too small for radius %d (need ≥ %d)",
			t.W, t.H, r, 2*r+1)
	}
	n := &Network{
		torus:   t,
		metric:  m,
		radius:  r,
		offsets: m.BallOffsets(r),
	}
	size := t.Size()
	// One contiguous backing array for all neighbor lists, and one for the
	// closed neighborhoods (center first, then the same offsets) — commit
	// rules walk closed neighborhoods per determination, so these rows are
	// precomputed once and shared.
	deg := len(n.offsets)
	backing := make([]NodeID, size*deg)
	closedBacking := make([]NodeID, size*(deg+1))
	n.neighbors = make([][]NodeID, size)
	n.closed = make([][]NodeID, size)
	for id := 0; id < size; id++ {
		c := t.CoordOf(id)
		row := backing[id*deg : id*deg : (id+1)*deg]
		crow := closedBacking[id*(deg+1) : id*(deg+1) : (id+1)*(deg+1)]
		crow = append(crow, NodeID(id))
		for _, d := range n.offsets {
			nb := NodeID(t.Index(c.Add(d)))
			row = append(row, nb)
			crow = append(crow, nb)
		}
		n.neighbors[id] = row
		n.closed[id] = crow
	}
	return n, nil
}

// MustNew is New for statically valid parameters; it panics on error.
func MustNew(t grid.Torus, m grid.Metric, r int) *Network {
	n, err := New(t, m, r)
	if err != nil {
		panic(err)
	}
	return n
}

// Family implements Graph.
func (n *Network) Family() string { return "torus" }

// Torus returns the underlying torus.
func (n *Network) Torus() grid.Torus { return n.torus }

// Metric returns the distance metric.
func (n *Network) Metric() grid.Metric { return n.metric }

// Radius returns the transmission radius r.
func (n *Network) Radius() int { return n.radius }

// Size returns the number of nodes.
func (n *Network) Size() int { return n.torus.Size() }

// Degree returns the (uniform) neighbor count of every node.
func (n *Network) Degree() int { return len(n.offsets) }

// Neighbors returns the nodes that hear id's local broadcasts. The returned
// slice is shared; callers must not mutate it.
func (n *Network) Neighbors(id NodeID) []NodeID { return n.neighbors[id] }

// AreNeighbors reports whether a and b are distinct radio neighbors.
func (n *Network) AreNeighbors(a, b NodeID) bool {
	if a == b {
		return false
	}
	return n.torus.Within(n.metric, n.CoordOf(a), n.CoordOf(b), n.radius)
}

// WithinClosed reports whether b lies in the closed neighborhood of center c
// (distance ≤ r, including b == center).
func (n *Network) WithinClosed(center, b NodeID) bool {
	return n.torus.Within(n.metric, n.CoordOf(center), n.CoordOf(b), n.radius)
}

// IDOf maps a grid coordinate (wrapped onto the torus) to its node id.
func (n *Network) IDOf(c grid.Coord) NodeID { return NodeID(n.torus.Index(c)) }

// CoordOf maps a node id back to its canonical coordinate.
func (n *Network) CoordOf(id NodeID) grid.Coord { return n.torus.CoordOf(int(id)) }

// Delta returns the minimal toroidal offset from a to b.
func (n *Network) Delta(a, b NodeID) grid.Coord {
	return n.torus.Delta(n.CoordOf(a), n.CoordOf(b))
}

// Dist returns the toroidal distance from a to b under the network metric
// (for L2, the floor of the Euclidean distance).
func (n *Network) Dist(a, b NodeID) int {
	return n.torus.Dist(n.metric, n.CoordOf(a), n.CoordOf(b))
}

// ClosedNbdIDs returns the ids of the closed neighborhood of the grid point
// centered at c (which need not be a node of interest itself), center first.
// The returned slice is a shared precomputed row; callers must not mutate it.
func (n *Network) ClosedNbdIDs(c grid.Coord) []NodeID {
	return n.closed[n.torus.Index(c)]
}

// Closed implements Graph: the closed neighborhood of node id, center
// first. On the torus every grid point is a node, so this is ClosedNbdIDs
// of id's own coordinate.
func (n *Network) Closed(id NodeID) []NodeID { return n.closed[id] }

// Label implements Graph: the torus labels nodes by grid coordinate.
func (n *Network) Label(id NodeID) (x, y int) {
	c := n.CoordOf(id)
	return c.X, c.Y
}

// ForEach invokes fn for every node id in ascending order.
func (n *Network) ForEach(fn func(NodeID)) {
	for id := 0; id < n.Size(); id++ {
		fn(NodeID(id))
	}
}

var _ Graph = (*Network)(nil)
