package topology

import (
	"testing"

	"repro/internal/grid"
)

func TestCellScheduleDivisibility(t *testing.T) {
	net := mustNet(t, 10, 10, grid.Linf, 2) // 2r+1 = 5 divides 10
	cs, err := NewCellSchedule(net)
	if err != nil {
		t.Fatalf("NewCellSchedule: %v", err)
	}
	if cs.NumSlots() != 25 {
		t.Errorf("NumSlots = %d, want 25", cs.NumSlots())
	}
	if _, err := NewCellSchedule(mustNet(t, 12, 10, grid.Linf, 2)); err == nil {
		t.Error("12 is not divisible by 5; cell schedule must fail")
	}
}

func TestCellScheduleCollisionFree(t *testing.T) {
	for _, m := range []grid.Metric{grid.Linf, grid.L2} {
		net := mustNet(t, 15, 15, m, 2)
		cs, err := NewCellSchedule(net)
		if err != nil {
			t.Fatalf("NewCellSchedule: %v", err)
		}
		if !CollisionFree(net, cs) {
			t.Errorf("%v: cell schedule must be collision-free", m)
		}
	}
}

func TestSequentialScheduleCollisionFree(t *testing.T) {
	net := mustNet(t, 9, 7, grid.Linf, 2)
	ss := NewSequentialSchedule(net)
	if ss.NumSlots() != net.Size() {
		t.Errorf("NumSlots = %d, want %d", ss.NumSlots(), net.Size())
	}
	if !CollisionFree(net, ss) {
		t.Error("sequential schedule must be collision-free")
	}
}

func TestScheduleSlotsInRange(t *testing.T) {
	net := mustNet(t, 10, 10, grid.Linf, 2)
	for _, sched := range []Schedule{BestSchedule(net), NewSequentialSchedule(net)} {
		net.ForEach(func(id NodeID) {
			s := sched.SlotOf(id)
			if s < 0 || s >= sched.NumSlots() {
				t.Fatalf("slot %d out of range [0,%d)", s, sched.NumSlots())
			}
		})
	}
}

func TestBestScheduleSelection(t *testing.T) {
	divisible := mustNet(t, 10, 10, grid.Linf, 2)
	if _, ok := BestSchedule(divisible).(*CellSchedule); !ok {
		t.Error("divisible torus must get the cell schedule")
	}
	odd := mustNet(t, 11, 11, grid.Linf, 2)
	if _, ok := BestSchedule(odd).(*SequentialSchedule); !ok {
		t.Error("non-divisible torus must fall back to sequential")
	}
}

func TestCollisionFreeDetectsBadSchedule(t *testing.T) {
	net := mustNet(t, 10, 10, grid.Linf, 2)
	// All nodes in one slot: certainly colliding.
	bad := constSchedule{}
	if CollisionFree(net, bad) {
		t.Error("single-slot schedule must collide")
	}
}

type constSchedule struct{}

func (constSchedule) SlotOf(NodeID) int { return 0 }
func (constSchedule) NumSlots() int     { return 1 }
