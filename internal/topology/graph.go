package topology

import "sort"

// Graph is the radio-network surface the engines and fault machinery
// consume: dense NodeID indexing over [0, Size), precomputed open-neighbor
// rows in a fixed deterministic per-family order, and precomputed closed
// neighborhoods. The neighbor relation is symmetric and irreflexive (radio
// links are bidirectional; a node does not hear its own broadcasts as
// deliveries). The torus keeps its historical ball-offset row order —
// engine delivery order follows the rows, so reordering them would change
// every pinned torus Result; rgg and custom rows are ascending.
//
// The torus Network is the paper's instance; Geometric (random geometric
// graphs on the unit torus) and Custom (explicit adjacency lists) extend
// the same locally-bounded fault discipline to the general graphs of the
// Maurer–Tixeuil line of work. Protocols that need torus geometry (the
// BV4/BV2 chain machinery) type-assert *Network and reject other families.
type Graph interface {
	// Family names the graph family ("torus", "rgg", "custom") for error
	// messages, cache keys and logs.
	Family() string
	// Size returns the number of nodes; ids are dense in [0, Size).
	Size() int
	// Neighbors returns id's open neighborhood in the family's fixed
	// deterministic order (ball-offset order on the torus, ascending id
	// order elsewhere). The returned slice is shared; callers must not
	// mutate it.
	Neighbors(id NodeID) []NodeID
	// Closed returns id's closed neighborhood: center first, then the open
	// neighbors in the same order as Neighbors. The returned slice is
	// shared; callers must not mutate it.
	Closed(id NodeID) []NodeID
	// AreNeighbors reports whether a and b are distinct radio neighbors.
	AreNeighbors(a, b NodeID) bool
	// Label returns a stable display label for id. The torus returns the
	// grid coordinate; non-geometric families return (id, 0).
	Label(id NodeID) (x, y int)
}

// adjacency is the shared neighbor-row representation behind the
// non-torus families: contiguous backing arrays for the sorted open rows
// and the center-first closed rows, mirroring the torus layout.
type adjacency struct {
	neighbors [][]NodeID
	closed    [][]NodeID
}

// buildAdjacency assembles sorted neighbor and closed rows for size nodes
// from undirected edges. Edges must be valid (endpoints in range, no self
// loops, no duplicates) — constructors validate before calling.
func buildAdjacency(size int, edges [][2]NodeID) adjacency {
	deg := make([]int, size)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	backing := make([]NodeID, 2*len(edges))
	closedBacking := make([]NodeID, 2*len(edges)+size)
	a := adjacency{
		neighbors: make([][]NodeID, size),
		closed:    make([][]NodeID, size),
	}
	off, coff := 0, 0
	for id := 0; id < size; id++ {
		a.neighbors[id] = backing[off : off : off+deg[id]]
		a.closed[id] = closedBacking[coff : coff : coff+deg[id]+1]
		a.closed[id] = append(a.closed[id], NodeID(id))
		off += deg[id]
		coff += deg[id] + 1
	}
	for _, e := range edges {
		a.neighbors[e[0]] = append(a.neighbors[e[0]], e[1])
		a.neighbors[e[1]] = append(a.neighbors[e[1]], e[0])
	}
	for id := 0; id < size; id++ {
		row := a.neighbors[id]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		a.closed[id] = append(a.closed[id], row...)
	}
	return a
}

// hasNeighbor reports membership of b in a sorted neighbor row.
func (a adjacency) hasNeighbor(id, b NodeID) bool {
	row := a.neighbors[id]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= b })
	return i < len(row) && row[i] == b
}
