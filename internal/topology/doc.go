// Package topology materializes the paper's radio network on a finite torus:
// dense node indexing, per-node neighbor lists under a chosen metric and
// radius, and the collision-free TDMA schedule that the model assumes
// ("there exists a pre-determined TDMA schedule that all nodes follow",
// §II). It also provides translation-invariant offset canonicalization used
// to cache per-offset structures such as designated path families.
package topology
