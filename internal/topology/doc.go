// Package topology materializes radio networks behind the Graph interface:
// dense node indexing, sorted per-node neighbor rows and precomputed closed
// neighborhoods, plus the collision-free TDMA schedule the model assumes
// ("there exists a pre-determined TDMA schedule that all nodes follow",
// §II). Three families implement Graph: the paper's torus Network (per-node
// neighbor balls under a chosen metric and radius, with translation-
// invariant offset canonicalization used to cache per-offset structures
// such as designated path families), Geometric (seeded random geometric
// graphs on the unit torus — the "noisy torus" bridge), and Custom
// (explicit adjacency lists for the planar / loosely-connected instances of
// the Maurer–Tixeuil papers).
package topology
