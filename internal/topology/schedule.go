package topology

import "fmt"

// Schedule assigns every node a TDMA slot. The paper's model rules out
// collisions by assuming a pre-determined TDMA schedule (§II); any proper
// schedule works because time-optimality is explicitly not a concern. The
// slot order also fixes the deterministic delivery order used by the
// round-based engine.
type Schedule interface {
	// SlotOf returns the slot index of id in [0, NumSlots()).
	SlotOf(id NodeID) int
	// NumSlots returns the schedule period.
	NumSlots() int
}

// CellSchedule colors nodes by (x mod s, y mod s) with s = 2r+1. Two nodes
// sharing a slot are at L∞ distance ≥ 2r+1 > 2r apart, so no third node can
// hear both — the schedule is collision-free for both metrics. It is proper
// on the torus only when both dimensions are divisible by s.
type CellSchedule struct {
	net *Network
	s   int
}

// NewCellSchedule builds the (2r+1)²-slot cell schedule. It fails if the
// torus dimensions are not divisible by 2r+1, in which case callers should
// fall back to NewSequentialSchedule.
func NewCellSchedule(net *Network) (*CellSchedule, error) {
	s := 2*net.Radius() + 1
	t := net.Torus()
	if t.W%s != 0 || t.H%s != 0 {
		return nil, fmt.Errorf("topology: torus %dx%d not divisible by cell size %d", t.W, t.H, s)
	}
	return &CellSchedule{net: net, s: s}, nil
}

// SlotOf implements Schedule.
func (cs *CellSchedule) SlotOf(id NodeID) int {
	c := cs.net.CoordOf(id)
	return (c.Y%cs.s)*cs.s + (c.X % cs.s)
}

// NumSlots implements Schedule.
func (cs *CellSchedule) NumSlots() int { return cs.s * cs.s }

// SequentialSchedule gives every node its own slot (period = network size).
// Trivially collision-free on any graph; used when the cell schedule does
// not divide the torus, and for every non-torus family.
type SequentialSchedule struct {
	size int
}

// NewSequentialSchedule builds the one-node-per-slot schedule.
func NewSequentialSchedule(g Graph) *SequentialSchedule {
	return &SequentialSchedule{size: g.Size()}
}

// SlotOf implements Schedule.
func (ss *SequentialSchedule) SlotOf(id NodeID) int { return int(id) }

// NumSlots implements Schedule.
func (ss *SequentialSchedule) NumSlots() int { return ss.size }

// BestSchedule returns the cell schedule when the graph is a torus that
// admits it and the sequential schedule otherwise.
func BestSchedule(g Graph) Schedule {
	if net, ok := g.(*Network); ok {
		if cs, err := NewCellSchedule(net); err == nil {
			return cs
		}
	}
	return NewSequentialSchedule(g)
}

// CollisionFree verifies that no two distinct nodes sharing a slot have a
// common listener (a common neighbor of both). It is O(n²·deg) and
// intended for tests and validation tooling, not hot paths.
func CollisionFree(g Graph, sched Schedule) bool {
	// Group nodes by slot.
	groups := make(map[int][]NodeID)
	for i := 0; i < g.Size(); i++ {
		id := NodeID(i)
		slot := sched.SlotOf(id)
		groups[slot] = append(groups[slot], id)
	}
	for _, nodes := range groups {
		for i := 0; i < len(nodes); i++ {
			listeners := make(map[NodeID]struct{}, len(g.Neighbors(nodes[i])))
			for _, l := range g.Neighbors(nodes[i]) {
				listeners[l] = struct{}{}
			}
			for j := i + 1; j < len(nodes); j++ {
				for _, l := range g.Neighbors(nodes[j]) {
					if _, ok := listeners[l]; ok {
						return false
					}
				}
			}
		}
	}
	return true
}

var (
	_ Schedule = (*CellSchedule)(nil)
	_ Schedule = (*SequentialSchedule)(nil)
)
