package topology

import "fmt"

// Geometric is a random geometric graph on the unit torus [0,1)² — the
// "noisy torus" bridge between the paper's regular grid and general graphs:
// n points placed uniformly at random, an edge wherever the toroidal
// Euclidean distance is at most the connection radius. Like the grid
// Network it is immutable, with sorted neighbor rows and precomputed
// closed neighborhoods.
//
// Placement is seeded and reproducible forever: node i's coordinates are
// draws 2i and 2i+1 of a splitmix64 stream initialized with the seed (see
// rggUniform), so the same (n, radius, seed) triple yields a byte-identical
// graph on every platform and release. Changing n reshuffles every
// position; radius only re-thresholds the same point set.
type Geometric struct {
	n      int
	radius float64
	seed   int64
	xs, ys []float64
	adj    adjacency
}

// NewGeometric constructs the seeded random geometric graph.
func NewGeometric(n int, radius float64, seed int64) (*Geometric, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: rgg: node count must be ≥ 1, got %d", n)
	}
	if radius <= 0 || radius > 1 {
		return nil, fmt.Errorf("topology: rgg: connection radius %v outside (0, 1]", radius)
	}
	g := &Geometric{
		n:      n,
		radius: radius,
		seed:   seed,
		xs:     make([]float64, n),
		ys:     make([]float64, n),
	}
	state := uint64(seed)
	for i := 0; i < n; i++ {
		g.xs[i] = rggUniform(&state)
		g.ys[i] = rggUniform(&state)
	}
	r2 := radius * radius
	var edges [][2]NodeID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := torusDist1(g.xs[i], g.xs[j])
			dy := torusDist1(g.ys[i], g.ys[j])
			if dx*dx+dy*dy <= r2 {
				edges = append(edges, [2]NodeID{NodeID(i), NodeID(j)})
			}
		}
	}
	g.adj = buildAdjacency(n, edges)
	return g, nil
}

// splitmix64 advances the generator state and returns the next output.
// The constants are Vigna's reference parameters; the sequence is part of
// the RGG seed contract and must never change.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rggUniform draws the next coordinate in [0, 1): the top 53 bits of a
// splitmix64 output scaled by 2⁻⁵³, the standard exact-dyadic construction.
func rggUniform(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

// torusDist1 is the 1-dimensional toroidal distance on [0, 1).
func torusDist1(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// Family implements Graph.
func (g *Geometric) Family() string { return "rgg" }

// Size implements Graph.
func (g *Geometric) Size() int { return g.n }

// Radius returns the connection radius.
func (g *Geometric) Radius() float64 { return g.radius }

// Seed returns the placement seed.
func (g *Geometric) Seed() int64 { return g.seed }

// Position returns node id's point on the unit torus.
func (g *Geometric) Position(id NodeID) (x, y float64) { return g.xs[id], g.ys[id] }

// Neighbors implements Graph.
func (g *Geometric) Neighbors(id NodeID) []NodeID { return g.adj.neighbors[id] }

// Closed implements Graph.
func (g *Geometric) Closed(id NodeID) []NodeID { return g.adj.closed[id] }

// AreNeighbors implements Graph.
func (g *Geometric) AreNeighbors(a, b NodeID) bool {
	if a == b {
		return false
	}
	return g.adj.hasNeighbor(a, b)
}

// Label implements Graph: non-grid families label node i as (i, 0).
func (g *Geometric) Label(id NodeID) (x, y int) { return int(id), 0 }

var _ Graph = (*Geometric)(nil)
