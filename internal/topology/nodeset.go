package topology

import "math/bits"

// NodeSet is a word-packed bitset over dense node ids. It replaces
// map[NodeID]struct{} on engine hot paths: membership is one shift and one
// AND, insertion allocates nothing, and a 1024-node torus fits in 128
// bytes. The zero value is unusable; create with NewNodeSet.
type NodeSet []uint64

// NewNodeSet returns an empty set able to hold ids in [0, size).
func NewNodeSet(size int) NodeSet {
	return make(NodeSet, (size+63)/64)
}

// Has reports membership. Ids outside the set's capacity are never members.
func (s NodeSet) Has(id NodeID) bool {
	w := uint(id) >> 6
	return int(w) < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// Add inserts id. The id must be within the capacity given to NewNodeSet.
func (s NodeSet) Add(id NodeID) {
	s[uint(id)>>6] |= 1 << (uint(id) & 63)
}

// Remove deletes id if present.
func (s NodeSet) Remove(id NodeID) {
	w := uint(id) >> 6
	if int(w) < len(s) {
		s[w] &^= 1 << (uint(id) & 63)
	}
}

// Clear empties the set in place, keeping its capacity.
func (s NodeSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s NodeSet) Clone() NodeSet {
	return append(NodeSet(nil), s...)
}

// Len returns the number of members.
func (s NodeSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach invokes fn for every member in ascending id order.
func (s NodeSet) ForEach(fn func(NodeID)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(NodeID(wi*64 + b))
			w &= w - 1
		}
	}
}
