package topology

import (
	"testing"

	"repro/internal/grid"
)

// FuzzGeometricInvariants fuzzes the RGG constructor over its whole
// parameter space: every graph it accepts must satisfy the Graph contract
// (symmetric, irreflexive, deduplicated, ascending rows; closed rows of the
// form [center, neighbors...]), and construction must be deterministic in
// (n, radius, seed).
func FuzzGeometricInvariants(f *testing.F) {
	f.Add(8, 0.3, int64(1))
	f.Add(1, 1.0, int64(0))
	f.Add(32, 0.05, int64(-7))
	f.Fuzz(func(t *testing.T, n int, radius float64, seed int64) {
		if n < 1 || n > 128 {
			t.Skip()
		}
		g, err := NewGeometric(n, radius, seed)
		if err != nil {
			if radius > 0 && radius <= 1 {
				t.Fatalf("valid parameters rejected: %v", err)
			}
			return
		}
		again, err := NewGeometric(n, radius, seed)
		if err != nil {
			t.Fatalf("second construction failed: %v", err)
		}
		for i := 0; i < n; i++ {
			id := NodeID(i)
			row := g.Neighbors(id)
			if len(row) != len(again.Neighbors(id)) {
				t.Fatal("construction is not deterministic")
			}
			closed := g.Closed(id)
			if len(closed) != len(row)+1 || closed[0] != id {
				t.Fatalf("closed row of %d is not [center, neighbors...]", i)
			}
			prev := NodeID(-1)
			for k, nb := range row {
				if nb == id || nb < 0 || int(nb) >= n {
					t.Fatalf("node %d: bad neighbor %d", i, nb)
				}
				if nb <= prev {
					t.Fatalf("node %d: row not strictly ascending: %v", i, row)
				}
				prev = nb
				if closed[k+1] != nb {
					t.Fatalf("node %d: closed row diverges from neighbor row", i)
				}
				if !g.AreNeighbors(id, nb) || !g.AreNeighbors(nb, id) {
					t.Fatalf("AreNeighbors(%d, %d) inconsistent", id, nb)
				}
			}
		}
	})
}

// FuzzCustomConstructor fuzzes NewCustom with an arbitrary edge soup: it
// must either reject (out-of-range endpoints, self-loops, duplicates) or
// produce a graph satisfying the contract; it must never panic or accept
// an edge it should reject.
func FuzzCustomConstructor(f *testing.F) {
	f.Add(4, 0, 1, 1, 2, 2, 3)
	f.Add(3, 0, 1, 1, 0, 2, 2)
	f.Add(1, 0, 0, 0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, n, a0, b0, a1, b1, a2, b2 int) {
		if n < 1 || n > 64 {
			t.Skip()
		}
		edges := [][2]int{{a0, b0}, {a1, b1}, {a2, b2}}
		wantErr := false
		seen := map[[2]int]bool{}
		for _, e := range edges {
			a, b := e[0], e[1]
			if a < 0 || a >= n || b < 0 || b >= n || a == b {
				wantErr = true
				break
			}
			key := [2]int{a, b}
			if a > b {
				key = [2]int{b, a}
			}
			if seen[key] {
				wantErr = true
				break
			}
			seen[key] = true
		}
		g, err := NewCustom(n, edges)
		if wantErr {
			if err == nil {
				t.Fatalf("invalid edges %v accepted", edges)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid edges %v rejected: %v", edges, err)
		}
		total := 0
		for i := 0; i < n; i++ {
			id := NodeID(i)
			row := g.Neighbors(id)
			total += len(row)
			for _, nb := range row {
				if !g.AreNeighbors(nb, id) {
					t.Fatalf("adjacency not symmetric at (%d, %d)", id, nb)
				}
			}
		}
		if total != 2*len(edges) {
			t.Fatalf("row population %d, want %d (each edge twice)", total, 2*len(edges))
		}
	})
}

// FuzzTorusGraphConsistency fuzzes the torus against its own geometric
// predicate: every row membership must agree with AreNeighbors, which
// computes from coordinates rather than rows.
func FuzzTorusGraphConsistency(f *testing.F) {
	f.Add(8, 6, 1, 3)
	f.Add(10, 10, 2, 0)
	f.Fuzz(func(t *testing.T, w, h, r, probe int) {
		if w < 3 || h < 3 || w > 24 || h > 24 || r < 1 || r > 3 {
			t.Skip()
		}
		net, err := New(grid.Torus{W: w, H: h}, grid.Linf, r)
		if err != nil {
			return // undersized for the radius — its own validation
		}
		id := NodeID(((probe % net.Size()) + net.Size()) % net.Size())
		row := net.Neighbors(id)
		inRow := make(map[NodeID]bool, len(row))
		for _, nb := range row {
			inRow[nb] = true
			if !net.AreNeighbors(id, nb) {
				t.Fatalf("row member %d fails AreNeighbors(%d, ·)", nb, id)
			}
		}
		for i := 0; i < net.Size(); i++ {
			other := NodeID(i)
			if net.AreNeighbors(id, other) != inRow[other] {
				t.Fatalf("AreNeighbors(%d, %d) disagrees with the row", id, other)
			}
		}
	})
}
