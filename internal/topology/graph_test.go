package topology

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/grid"
)

// graphInvariants checks the Graph contract every family must honor:
// neighbor rows without self or duplicates, symmetric adjacency,
// AreNeighbors consistent with the rows, and closed rows that are exactly
// [center, neighbors...]. Row order is per-family (ball-offset order on
// the torus, ascending elsewhere), so sortedness is asserted separately by
// the non-torus tests.
func graphInvariants(t *testing.T, g Graph) {
	t.Helper()
	n := g.Size()
	for i := 0; i < n; i++ {
		id := NodeID(i)
		row := g.Neighbors(id)
		dup := make(map[NodeID]struct{}, len(row))
		for _, nb := range row {
			if nb == id {
				t.Fatalf("node %d: neighbor row contains itself", i)
			}
			if _, seen := dup[nb]; seen {
				t.Fatalf("node %d: duplicate neighbor %d", i, nb)
			}
			dup[nb] = struct{}{}
			if !g.AreNeighbors(id, nb) || !g.AreNeighbors(nb, id) {
				t.Fatalf("AreNeighbors(%d, %d) inconsistent with the row", id, nb)
			}
			found := false
			for _, back := range g.Neighbors(nb) {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d lists %d but not vice versa", id, nb)
			}
		}
		closed := g.Closed(id)
		if len(closed) != len(row)+1 || closed[0] != id {
			t.Fatalf("node %d: closed row %v is not [center, neighbors...] of %v", i, closed, row)
		}
		for k, nb := range row {
			if closed[k+1] != nb {
				t.Fatalf("node %d: closed row %v diverges from neighbor row %v", i, closed, row)
			}
		}
		if g.AreNeighbors(id, id) {
			t.Fatalf("node %d must not neighbor itself", i)
		}
	}
}

func TestTorusImplementsGraphInvariants(t *testing.T) {
	net := MustNew(grid.Torus{W: 10, H: 8}, grid.Linf, 1)
	if net.Family() != "torus" {
		t.Fatalf("family %q", net.Family())
	}
	graphInvariants(t, net)
	if x, y := net.Label(NodeID(10*3 + 7)); x != 7 || y != 3 {
		t.Errorf("torus Label = (%d,%d), want (7,3)", x, y)
	}
}

func TestGeometricDeterminism(t *testing.T) {
	a, err := NewGeometric(48, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGeometric(48, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Family() != "rgg" {
		t.Fatalf("family %q", a.Family())
	}
	for i := 0; i < a.Size(); i++ {
		ax, ay := a.Position(NodeID(i))
		bx, by := b.Position(NodeID(i))
		if ax != bx || ay != by {
			t.Fatalf("node %d position differs across identical constructions", i)
		}
		if ax < 0 || ax >= 1 || ay < 0 || ay >= 1 {
			t.Fatalf("node %d position (%v,%v) outside the unit torus", i, ax, ay)
		}
		ra, rb := a.Neighbors(NodeID(i)), b.Neighbors(NodeID(i))
		if len(ra) != len(rb) {
			t.Fatalf("node %d degree differs across identical constructions", i)
		}
		for k := range ra {
			if ra[k] != rb[k] {
				t.Fatalf("node %d neighbor rows differ", i)
			}
		}
	}
	other, err := NewGeometric(48, 0.25, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Size() && same; i++ {
		ax, ay := a.Position(NodeID(i))
		ox, oy := other.Position(NodeID(i))
		same = ax == ox && ay == oy
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
	graphInvariants(t, a)
	assertSortedRows(t, a)
}

// assertSortedRows checks the ascending row order the non-torus families
// promise.
func assertSortedRows(t *testing.T, g Graph) {
	t.Helper()
	for i := 0; i < g.Size(); i++ {
		row := g.Neighbors(NodeID(i))
		if !sort.SliceIsSorted(row, func(a, b int) bool { return row[a] < row[b] }) {
			t.Fatalf("node %d: neighbor row not ascending: %v", i, row)
		}
	}
}

// TestGeometricSeedContract pins the first PRNG draws of seed 1: the
// splitmix64 stream is part of the cross-platform reproducibility contract
// (EXPERIMENTS.md), so any drift here invalidates every published RGG
// scenario fingerprint.
func TestGeometricSeedContract(t *testing.T) {
	state := uint64(1)
	first := rggUniform(&state)
	second := rggUniform(&state)
	g, err := NewGeometric(2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0, y0 := g.Position(0)
	if x0 != first || y0 != second {
		t.Fatalf("node 0 at (%v,%v), want the first two stream draws (%v,%v)", x0, y0, first, second)
	}
	// The reference value pins the generator itself: splitmix64(1) with
	// Vigna's constants, top 53 bits scaled by 2^-53.
	state = uint64(7)
	raw := splitmix64(&state)
	if want := float64(raw>>11) / (1 << 53); want < 0 || want >= 1 {
		t.Fatalf("rggUniform out of [0,1): %v", want)
	}
}

func TestGeometricRejectsInvalid(t *testing.T) {
	if _, err := NewGeometric(0, 0.5, 1); err == nil {
		t.Error("node count 0 must be rejected")
	}
	if _, err := NewGeometric(4, 0, 1); err == nil {
		t.Error("radius 0 must be rejected")
	}
	if _, err := NewGeometric(4, 1.5, 1); err == nil {
		t.Error("radius > 1 must be rejected")
	}
}

func TestCustomGraph(t *testing.T) {
	// A 5-cycle.
	g, err := NewCustom(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Family() != "custom" {
		t.Fatalf("family %q", g.Family())
	}
	graphInvariants(t, g)
	assertSortedRows(t, g)
	for i := 0; i < 5; i++ {
		if d := len(g.Neighbors(NodeID(i))); d != 2 {
			t.Errorf("cycle node %d has degree %d, want 2", i, d)
		}
	}
	if x, y := g.Label(3); x != 3 || y != 0 {
		t.Errorf("custom Label = (%d,%d), want (3,0)", x, y)
	}
}

func TestCustomRejectsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"zero nodes", 0, nil},
		{"endpoint out of range", 3, [][2]int{{0, 3}}},
		{"negative endpoint", 3, [][2]int{{-1, 2}}},
		{"self-loop", 3, [][2]int{{1, 1}}},
		{"duplicate edge", 3, [][2]int{{0, 1}, {1, 0}}},
	}
	for _, tt := range cases {
		if _, err := NewCustom(tt.n, tt.edges); err == nil {
			t.Errorf("%s: must be rejected", tt.name)
		}
	}
}

func TestTorusErrorsNameTheFamily(t *testing.T) {
	if _, err := New(grid.Torus{W: 10, H: 10}, grid.Metric(99), 1); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("invalid metric error %v must name the torus family", err)
	}
	if _, err := New(grid.Torus{W: 10, H: 10}, grid.Linf, 0); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("invalid radius error %v must name the torus family", err)
	}
	if _, err := New(grid.Torus{W: 2, H: 2}, grid.Linf, 1); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Errorf("too-small error %v must name the torus family", err)
	}
}

func TestBestScheduleNonTorusIsSequentialAndCollisionFree(t *testing.T) {
	g, err := NewGeometric(40, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	sched := BestSchedule(g)
	if _, ok := sched.(*SequentialSchedule); !ok {
		t.Fatalf("non-torus BestSchedule is %T, want *SequentialSchedule", sched)
	}
	if !CollisionFree(g, sched) {
		t.Error("sequential schedule must be collision-free on any graph")
	}
	net := MustNew(grid.Torus{W: 9, H: 9}, grid.Linf, 1)
	if _, ok := BestSchedule(net).(*CellSchedule); !ok {
		t.Error("divisible torus should get the cell schedule")
	}
}
