package topology

import "fmt"

// Custom is an explicit adjacency-list graph: n nodes identified by dense
// ids and an undirected edge list. It makes arbitrary instances — the
// planar and loosely-connected graphs of the Maurer–Tixeuil papers —
// expressible as plain data (JSON fixtures, request payloads) while
// presenting the same precomputed-row surface as the torus Network.
type Custom struct {
	n   int
	adj adjacency
}

// NewCustom validates and builds the graph. Edges are undirected; each
// must connect two distinct in-range nodes and appear once (in either
// orientation). Disconnected graphs are legal — unreachable honest nodes
// simply never decide.
func NewCustom(n int, edges [][2]int) (*Custom, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: custom: node count must be ≥ 1, got %d", n)
	}
	seen := make(map[[2]int]struct{}, len(edges))
	pairs := make([][2]NodeID, 0, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("topology: custom: edge %d (%d,%d) out of range [0,%d)", i, a, b, n)
		}
		if a == b {
			return nil, fmt.Errorf("topology: custom: edge %d is a self-loop at node %d", i, a)
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("topology: custom: duplicate edge %d (%d,%d)", i, a, b)
		}
		seen[key] = struct{}{}
		pairs = append(pairs, [2]NodeID{NodeID(a), NodeID(b)})
	}
	return &Custom{n: n, adj: buildAdjacency(n, pairs)}, nil
}

// Family implements Graph.
func (g *Custom) Family() string { return "custom" }

// Size implements Graph.
func (g *Custom) Size() int { return g.n }

// Neighbors implements Graph.
func (g *Custom) Neighbors(id NodeID) []NodeID { return g.adj.neighbors[id] }

// Closed implements Graph.
func (g *Custom) Closed(id NodeID) []NodeID { return g.adj.closed[id] }

// AreNeighbors implements Graph.
func (g *Custom) AreNeighbors(a, b NodeID) bool {
	if a == b {
		return false
	}
	return g.adj.hasNeighbor(a, b)
}

// Label implements Graph: non-grid families label node i as (i, 0).
func (g *Custom) Label(id NodeID) (x, y int) { return int(id), 0 }

var _ Graph = (*Custom)(nil)
