package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func mustNet(t *testing.T, w, h int, m grid.Metric, r int) *Network {
	t.Helper()
	net, err := New(grid.Torus{W: w, H: h}, m, r)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	if _, err := New(grid.Torus{W: 4, H: 10}, grid.Linf, 2); err == nil {
		t.Error("torus narrower than 2r+1 must be rejected")
	}
	if _, err := New(grid.Torus{W: 10, H: 10}, grid.Metric(9), 2); err == nil {
		t.Error("invalid metric must be rejected")
	}
	if _, err := New(grid.Torus{W: 10, H: 10}, grid.Linf, 0); err == nil {
		t.Error("radius 0 must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on invalid input")
		}
	}()
	MustNew(grid.Torus{W: 1, H: 1}, grid.Linf, 5)
}

func TestUniformDegree(t *testing.T) {
	tests := []struct {
		m    grid.Metric
		r    int
		want int
	}{
		{grid.Linf, 1, 8},
		{grid.Linf, 2, 24},
		{grid.L2, 2, 12},
		{grid.L2, 3, 28},
	}
	for _, tt := range tests {
		net := mustNet(t, 15, 15, tt.m, tt.r)
		if net.Degree() != tt.want {
			t.Errorf("%v r=%d: Degree = %d, want %d", tt.m, tt.r, net.Degree(), tt.want)
		}
		net.ForEach(func(id NodeID) {
			if len(net.Neighbors(id)) != tt.want {
				t.Fatalf("node %d: %d neighbors", id, len(net.Neighbors(id)))
			}
		})
	}
}

func TestNeighborSymmetry(t *testing.T) {
	net := mustNet(t, 9, 9, grid.Linf, 2)
	net.ForEach(func(a NodeID) {
		for _, b := range net.Neighbors(a) {
			found := false
			for _, c := range net.Neighbors(b) {
				if c == a {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric neighbor relation %d -> %d", a, b)
			}
		}
	})
}

func TestNeighborsMatchMetric(t *testing.T) {
	net := mustNet(t, 12, 10, grid.L2, 2)
	f := func(ai, bi uint16) bool {
		a := NodeID(int(ai) % net.Size())
		b := NodeID(int(bi) % net.Size())
		inList := false
		for _, nb := range net.Neighbors(a) {
			if nb == b {
				inList = true
				break
			}
		}
		return inList == net.AreNeighbors(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborsDistinct(t *testing.T) {
	net := mustNet(t, 5, 5, grid.Linf, 2) // tightest legal torus: 2r+1 = 5
	net.ForEach(func(a NodeID) {
		seen := make(map[NodeID]bool)
		for _, b := range net.Neighbors(a) {
			if b == a {
				t.Fatalf("node %d is its own neighbor", a)
			}
			if seen[b] {
				t.Fatalf("node %d appears twice in neighbors of %d", b, a)
			}
			seen[b] = true
		}
	})
}

func TestIDCoordRoundTrip(t *testing.T) {
	net := mustNet(t, 8, 6, grid.Linf, 1)
	net.ForEach(func(id NodeID) {
		if net.IDOf(net.CoordOf(id)) != id {
			t.Fatalf("round trip failed for %d", id)
		}
	})
	if net.IDOf(grid.C(-1, 0)) != net.IDOf(grid.C(7, 0)) {
		t.Error("IDOf must wrap")
	}
}

func TestWithinClosed(t *testing.T) {
	net := mustNet(t, 11, 11, grid.Linf, 2)
	center := net.IDOf(grid.C(5, 5))
	if !net.WithinClosed(center, center) {
		t.Error("closed neighborhood includes the center")
	}
	if !net.WithinClosed(center, net.IDOf(grid.C(7, 7))) {
		t.Error("(7,7) is within L∞ distance 2 of (5,5)")
	}
	if net.WithinClosed(center, net.IDOf(grid.C(8, 5))) {
		t.Error("(8,5) is at distance 3")
	}
}

func TestClosedNbdIDs(t *testing.T) {
	net := mustNet(t, 11, 11, grid.Linf, 2)
	ids := net.ClosedNbdIDs(grid.C(3, 3))
	if len(ids) != 25 {
		t.Fatalf("|closed nbd| = %d, want 25", len(ids))
	}
	seen := make(map[NodeID]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if !net.WithinClosed(net.IDOf(grid.C(3, 3)), id) {
			t.Errorf("id %d outside closed nbd", id)
		}
	}
}

func TestDeltaAndDist(t *testing.T) {
	net := mustNet(t, 10, 10, grid.Linf, 2)
	a := net.IDOf(grid.C(0, 0))
	b := net.IDOf(grid.C(9, 9))
	if d := net.Delta(a, b); d != grid.C(-1, -1) {
		t.Errorf("Delta = %v, want (-1,-1)", d)
	}
	if net.Dist(a, b) != 1 {
		t.Errorf("Dist = %d, want 1", net.Dist(a, b))
	}
}
