package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/topology"
)

func init() {
	register("E21", runE21CPATightness)
	register("E22", runE22Spoofing)
	register("E23", runE23LossyMedium)
}

// runE21CPATightness probes the "region of uncertainty" between the simple
// protocol's proved bound ⌊2r²/3⌋ (Theorem 6) and the exact threshold
// ⌈r(2r+1)/2⌉−1: on the torus, does any locally bounded adversary placement
// actually stall CPA in that band? Koo's original analysis left this gap
// open (§III: "the achievability bounds do not match the impossibility
// bound, leaving a region of uncertainty").
func runE21CPATightness() (Report, error) {
	rep := Report{
		ID:         "E21",
		Title:      "CPA beyond Theorem 6 — probing the region of uncertainty",
		PaperClaim: "t ≤ ⌊2r²/3⌋ is proved sufficient for CPA; between it and ⌈r(2r+1)/2⌉−1 the paper is silent",
		Header:     []string{"r", "t", "vs Thm6 bound", "adversaries tried", "CPA stalled", "CPA wrong"},
		Pass:       true,
		Notes: []string{
			"an empirical tightness probe, not a theorem: maximal random and band placements never stalled CPA on these tori",
			"at t = ⌈r(2r+1)/2⌉ (one beyond the exact threshold) the Fig 13 construction stalls every protocol, CPA included",
		},
	}
	r := 2
	net, err := buildNet(32, 18, r, grid.Linf)
	if err != nil {
		return rep, err
	}
	src := net.IDOf(grid.C(0, 0))
	tCPA := bounds.MaxCPALinf(r)
	tExact := bounds.MaxByzantineLinf(r)
	for tVal := tCPA; tVal <= tExact; tVal++ {
		tried, stalled, wrong := 0, 0, 0
		// Maximal random placements.
		for seed := int64(0); seed < 5; seed++ {
			byz, err := fault.RandomBounded(net, tVal, -1, seed)
			if err != nil {
				return rep, err
			}
			byz = removeID(byz, src)
			out, err := protocol.Run(protocol.RunConfig{
				Kind:      protocol.CPA,
				Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tVal},
				Byzantine: byzMap(byz, fault.Silent),
			})
			if err != nil {
				return rep, err
			}
			tried++
			if out.Undecided > 0 {
				stalled++
			}
			wrong += out.Wrong
		}
		// Greedy band placement.
		band, err := torusBands(net, r, func(x0 int) ([]topology.NodeID, error) {
			return fault.GreedyBand(net, x0, r, tVal)
		})
		if err != nil {
			return rep, err
		}
		out, err := protocol.Run(protocol.RunConfig{
			Kind:      protocol.CPA,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tVal},
			Byzantine: byzMap(band, fault.Silent),
		})
		if err != nil {
			return rep, err
		}
		tried++
		if out.Undecided > 0 {
			stalled++
		}
		wrong += out.Wrong
		vs := "at bound"
		if tVal > tCPA {
			vs = fmt.Sprintf("+%d beyond", tVal-tCPA)
		}
		// Safety must hold everywhere; liveness is the open question and
		// is reported, not asserted — except at the proved bound itself.
		if wrong > 0 || (tVal == tCPA && stalled > 0) {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(tVal), vs, itoa(tried), itoa(stalled), itoa(wrong),
		})
	}
	// Sanity anchor: one past the exact threshold the checkerboard band
	// stalls CPA too.
	band, err := torusBands(net, r, func(x0 int) ([]topology.NodeID, error) {
		return fault.CheckerboardBand(net, x0, r)
	})
	if err != nil {
		return rep, err
	}
	out, err := protocol.Run(protocol.RunConfig{
		Kind:      protocol.CPA,
		Params:    protocol.Params{Net: net, Source: src, Value: 1, T: bounds.MinImpossibleByzantineLinf(r)},
		Byzantine: byzMap(band, fault.Silent),
	})
	if err != nil {
		return rep, err
	}
	if out.Undecided == 0 {
		rep.Pass = false
	}
	rep.Rows = append(rep.Rows, []string{
		itoa(r), itoa(bounds.MinImpossibleByzantineLinf(r)), "impossibility", "1",
		itoa(boolToInt(out.Undecided > 0)), itoa(out.Wrong),
	})
	return rep, nil
}

// runE22Spoofing drops the no-address-spoofing assumption (§X): the same
// placement that is harmless under the authenticated medium destroys safety
// once spoofing is possible — for every protocol.
func runE22Spoofing() (Report, error) {
	rep := Report{
		ID:         "E22",
		Title:      "§X — address spoofing sensitivity (what-if)",
		PaperClaim: "\"if address spoofing is allowed, any malicious node may attempt to impersonate any honest node\" — reliable broadcast becomes extremely difficult",
		Header:     []string{"protocol", "medium", "faults", "correct", "wrong", "undecided", "safe"},
		Pass:       true,
		Notes: []string{
			"the spoofer impersonates each neighbor it hears, announcing flipped values under the stolen identity",
			"with authentication (the paper's model) the same adversary is harmless",
		},
	}
	r := 1
	net, err := buildNet(16, 16, r, grid.Linf)
	if err != nil {
		return rep, err
	}
	src := net.IDOf(grid.C(0, 0))
	byz, err := fault.RandomBounded(net, 1, -1, 9)
	if err != nil {
		return rep, err
	}
	byz = removeID(byz, src)
	for _, kind := range []protocol.Kind{protocol.CPA, protocol.BV2, protocol.BV4} {
		for _, spoofing := range []bool{false, true} {
			out, err := protocol.Run(protocol.RunConfig{
				Kind: kind,
				Params: protocol.Params{
					Net: net, Source: src, Value: 1, T: 1,
					SpoofingPossible: spoofing,
				},
				Byzantine: byzMap(byz, fault.Spoofer),
			})
			if err != nil {
				return rep, err
			}
			medium := "authenticated"
			if spoofing {
				medium = "spoofable"
			}
			// Under authentication the run must be perfect; under spoofing
			// the demonstration expects broken safety or liveness.
			if !spoofing && !out.AllCorrect() {
				rep.Pass = false
			}
			if spoofing && out.AllCorrect() {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				kind.String(), medium, itoa(len(byz)),
				itoa(out.Correct), itoa(out.Wrong), itoa(out.Undecided),
				fmt.Sprintf("%v", out.Safe()),
			})
		}
	}
	return rep, nil
}

// runE23LossyMedium implements the probabilistic local-broadcast primitive
// the paper sketches in §II ("transmissions are successfully received with a
// certain probability"): per-receiver iid loss plus blind retransmission.
// Accidental collisions are "treated akin to transmission errors" (§II); the
// sweep shows retransmission restores delivery.
func runE23LossyMedium() (Report, error) {
	rep := Report{
		ID:         "E23",
		Title:      "§II/§X — lossy medium with a probabilistic local-broadcast primitive",
		PaperClaim: "a local-broadcast primitive with probabilistic guarantees can stand in for the reliable-channel assumption; accidental collisions are handled like transmission errors",
		Header:     []string{"protocol", "loss", "retx", "runs", "mean delivered", "wrong total"},
		Pass:       true,
		Notes: []string{
			"loss is benign (random), not adversarial: §X notes unbounded adversarial collisions make broadcast impossible",
		},
	}
	r := 1
	net, err := buildNet(16, 10, r, grid.Linf)
	if err != nil {
		return rep, err
	}
	src := net.IDOf(grid.C(0, 0))
	const runs = 5
	for _, kind := range []protocol.Kind{protocol.Flood, protocol.CPA} {
		tVal := 0
		if kind == protocol.CPA {
			tVal = 0 // fault-free: isolate channel effects
		}
		for _, tc := range []struct {
			loss float64
			retx int
		}{
			{0.70, 1},
			{0.30, 1},
			{0.30, 3},
			{0.30, 6},
			{0.50, 6},
		} {
			sumFrac := 0.0
			wrong := 0
			for seed := int64(0); seed < runs; seed++ {
				factory, err := protocol.NewFactory(kind, protocol.Params{
					Net: net, Source: src, Value: 1, T: tVal,
				})
				if err != nil {
					return rep, err
				}
				res, err := sim.Run(sim.Config{
					Net:     net,
					Factory: factory,
					Medium:  sim.Medium{LossRate: tc.loss, Retransmit: tc.retx, Seed: seed},
				})
				if err != nil {
					return rep, err
				}
				correct, bad := 0, 0
				for _, v := range res.Decided {
					if v == 1 {
						correct++
					} else {
						bad++
					}
				}
				sumFrac += float64(correct) / float64(net.Size())
				wrong += bad
			}
			mean := sumFrac / runs
			// With enough retransmissions the probabilistic primitive must
			// deliver everywhere; with a single transmission at 30% loss it
			// must visibly degrade. Wrong commits never happen — loss can
			// only remove messages.
			if tc.retx >= 6 && mean < 0.999 {
				rep.Pass = false
			}
			if tc.loss >= 0.7 && tc.retx == 1 && mean > 0.98 {
				rep.Pass = false // a raw 70%-loss channel must visibly degrade
			}
			if wrong > 0 {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				kind.String(), ftoa(tc.loss), itoa(tc.retx), itoa(runs),
				ftoa(mean), itoa(wrong),
			})
		}
	}
	return rep, nil
}

// boolToInt converts a bool for row formatting.
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
