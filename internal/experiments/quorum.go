package experiments

import (
	"fmt"

	rbcast "repro"
)

func init() {
	register("E27", runE27BrachaThresholdSweep)
	register("E28", runE28QuorumAuthSweep)
}

// runE27BrachaThresholdSweep sweeps Bracha's assumed fault bound T across
// a fixed silent-fault plan on the complete 5×5 r=2 torus (N = 25, a
// one-hop clique) through the incremental sweep engine. With f = 4 silent
// nodes, the N−T ECHO quorum is reachable exactly when T ≥ f — the sweep
// must show the threshold flip at T = 4 and stay live through the
// N ≥ 3T+1 cap at T = 8.
func runE27BrachaThresholdSweep() (Report, error) {
	const faults = 4
	rep := Report{
		ID:         "E27",
		Title:      "Bracha quorum threshold sweep (silent faults vs assumed bound T)",
		PaperClaim: "quorum protocols need their assumed bound to cover the actual faults: N−T ECHO quorums exist iff f ≤ T (contrast with the paper's geometric t < r(2r+1)/2 criterion)",
		Header:     []string{"T", "echo quorum (N−T)", "ready quorum (2T+1)", "correct", "all-correct"},
		Pass:       true,
	}
	spec := rbcast.SweepSpec{
		Base: rbcast.Job{
			Config: rbcast.Config{Width: 5, Height: 5, Radius: 2, Protocol: rbcast.ProtocolBracha, Value: 1},
			// Budget pins the placement to exactly `faults` silent nodes for
			// every element: without it, random-bounded would fall back to a
			// T-derived budget and the low-T elements would place fewer
			// faults than the sweep intends.
			Plan: rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: faults, Seed: 3, Budget: faults},
		},
		Axes: rbcast.SweepAxes{Ts: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}},
	}
	results, stats, err := rbcast.RunSweep(spec, rbcast.BatchOptions{})
	if err != nil {
		return rep, err
	}
	n := 25
	for i, br := range results {
		tv := spec.Axes.Ts[i]
		if br.Err != nil {
			return rep, fmt.Errorf("T=%d: %v", tv, br.Err)
		}
		all := br.Result.AllCorrect()
		if all != (tv >= faults) {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(tv), itoa(n - tv), itoa(2*tv + 1),
			fmt.Sprintf("%d/%d", br.Result.Correct, n-faults), fmt.Sprintf("%v", all),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("swept via rbcast.RunSweep: %d elements, %d simulations, %d shared", stats.Elements, stats.Simulations, stats.SharedResults))
	return rep, nil
}

// runE28QuorumAuthSweep runs bracha and bracha-auth over identical
// silent-fault plans on one sparse multi-hop RGG, sweeping the placement
// seed. Plain Bracha counts endorsements by physical sender, so its
// quorums cannot assemble beyond one hop; the authenticated variant's
// signed flooding carries endorsements across relays. Every seed must show
// the authenticated protocol reaching at least as many honest nodes, and
// at least one seed must show it strictly dominating.
func runE28QuorumAuthSweep() (Report, error) {
	rep := Report{
		ID:         "E28",
		Title:      "bracha vs bracha-auth on identical sparse-RGG fault plans (seed sweep)",
		PaperClaim: "authentication substitutes for density: signed endorsements let quorums assemble across multi-hop sparse graphs where unauthenticated quorums starve",
		Header:     []string{"seed", "bracha correct", "bracha-auth correct", "auth dominates"},
		Pass:       true,
	}
	seeds := []int64{1, 2, 4, 5, 6}
	base := rbcast.Config{
		Topology: rbcast.TopologyRGG, Nodes: 32, RGGRadius: 0.3, TopologySeed: 2,
		Value: 1, T: 2, MaxRounds: 128,
	}
	var jobs []rbcast.Job
	for _, proto := range []rbcast.Protocol{rbcast.ProtocolBracha, rbcast.ProtocolBrachaAuth} {
		for _, seed := range seeds {
			cfg := base
			cfg.Protocol = proto
			jobs = append(jobs, rbcast.Job{
				Config: cfg,
				Plan:   rbcast.FaultPlan{Placement: rbcast.PlaceRandomBounded, Strategy: rbcast.StrategySilent, Count: 2, Seed: seed},
			})
		}
	}
	results, _ := rbcast.RunSweepJobs(jobs, rbcast.BatchOptions{})
	dominatedStrictly := false
	for i, seed := range seeds {
		plain, auth := results[i], results[len(seeds)+i]
		if plain.Err != nil || auth.Err != nil {
			return rep, fmt.Errorf("seed %d: bracha err %v, bracha-auth err %v", seed, plain.Err, auth.Err)
		}
		dominates := auth.Result.Correct >= plain.Result.Correct
		if !dominates {
			rep.Pass = false
		}
		if auth.Result.Correct > plain.Result.Correct {
			dominatedStrictly = true
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d/%d", plain.Result.Correct, plain.Result.Honest),
			fmt.Sprintf("%d/%d", auth.Result.Correct, auth.Result.Honest),
			fmt.Sprintf("%v", dominates),
		})
	}
	if !dominatedStrictly {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "no seed showed strict domination — the graph is not sparse enough to separate the protocols")
	}
	return rep, nil
}
