package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func init() {
	register("E25", runE25MessageComplexity)
}

// runE25MessageComplexity quantifies §III's communication-overhead claim:
// the paper's protocol "localizes the circulation of indirect reports, and
// thus reduces communication overhead". Measured as local broadcasts per
// node to reach full commitment, across protocols, with the earmarked
// (designated) evidence plan versus unrestricted relaying.
func runE25MessageComplexity() (Report, error) {
	rep := Report{
		ID:         "E25",
		Title:      "§III — communication overhead: localized indirect reports",
		PaperClaim: "the protocol localizes indirect-report circulation, reducing communication overhead",
		Header:     []string{"protocol", "r", "nodes", "broadcasts", "per node", "rounds"},
		Pass:       true,
	}
	type scenario struct {
		name string
		kind protocol.Kind
		mode protocol.EvidenceMode
		r    int
		w, h int
	}
	scenarios := []scenario{
		{"flood", protocol.Flood, 0, 1, 16, 10},
		{"cpa", protocol.CPA, 0, 1, 16, 10},
		{"bv2", protocol.BV2, 0, 1, 16, 10},
		{"bv4 (earmarked)", protocol.BV4, protocol.Designated, 1, 16, 10},
		{"bv4 (unrestricted)", protocol.BV4, protocol.Exact, 1, 16, 10},
		{"bv4 (earmarked)", protocol.BV4, protocol.Designated, 2, 20, 12},
	}
	var perNode = map[string]float64{}
	var totals = map[string]int{}
	for _, sc := range scenarios {
		net, err := buildNet(sc.w, sc.h, sc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		tMax := bounds.MaxByzantineLinf(sc.r)
		if sc.kind == protocol.CPA {
			tMax = bounds.MaxCPALinf(sc.r)
		}
		band, err := torusBands(net, sc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.GreedyBand(net, x0, sc.r, tMax)
		})
		if err != nil {
			return rep, err
		}
		collector := metrics.New()
		cfg := protocol.RunConfig{
			Kind:      sc.kind,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tMax, Mode: sc.mode, Metrics: collector},
			Byzantine: byzMap(band, fault.Silent),
		}
		if sc.kind == protocol.Flood {
			cfg.Byzantine = nil
			cfg.Crash = crashMap(band)
		}
		out, err := protocol.Run(cfg)
		if err != nil {
			return rep, err
		}
		if !out.AllCorrect() {
			rep.Pass = false
		}
		// Reconcile the metrics layer against the engine's own counters:
		// the collector total and its per-round histogram must both equal
		// the measured broadcast count for every scenario in the table.
		snap := collector.Snapshot()
		roundSum := int64(0)
		for _, rc := range snap.PerRound {
			roundSum += rc.Broadcasts
		}
		if snap.Broadcasts != int64(out.Result.Stats.Broadcasts) || roundSum != snap.Broadcasts {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"METRICS MISMATCH %s/r%d: collector %d, histogram %d, stats %d",
				sc.name, sc.r, snap.Broadcasts, roundSum, out.Result.Stats.Broadcasts))
		}
		pn := float64(out.Result.Stats.Broadcasts) / float64(net.Size())
		key := fmt.Sprintf("%s/r%d", sc.name, sc.r)
		perNode[key] = pn
		totals[key] = out.Result.Stats.Broadcasts
		rep.Rows = append(rep.Rows, []string{
			sc.name, itoa(sc.r), itoa(net.Size()),
			itoa(out.Result.Stats.Broadcasts), ftoa(pn),
			itoa(out.Result.Stats.Rounds),
		})
	}
	// The §III claim, quantified: earmarking must cut bv4's traffic by a
	// large factor relative to unrestricted relaying.
	ear := perNode["bv4 (earmarked)/r1"]
	unr := perNode["bv4 (unrestricted)/r1"]
	if ear <= 0 || unr/ear < 3 {
		rep.Pass = false
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"earmarking reduces bv4 traffic %.1f× at r=1 (%.1f vs %.1f broadcasts/node)",
		unr/ear, unr, ear))
	rep.Notes = append(rep.Notes,
		"flood and cpa send Θ(1) broadcasts/node; the indirect-report protocols pay for their evidence in messages — the price of the exact threshold")
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"metrics reconciliation: per-scenario collector totals and per-round histograms all match the measured broadcast counts (bv4/r1 earmarked: %d broadcasts)",
		totals["bv4 (earmarked)/r1"]))
	return rep, nil
}
