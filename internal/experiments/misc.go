package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/paths"
	"repro/internal/protocol"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
)

func init() {
	register("E18", runE18GraphCond)
	register("E19", runE19Safety)
	register("E20", runE20Engines)
}

// runE18GraphCond: §V — the general sufficient condition for arbitrary
// graphs rests on counting vertex-disjoint paths; verify the counter against
// graphs with known connectivity and derive the tolerable f = ⌊(κ−1)/2⌋.
func runE18GraphCond() (Report, error) {
	rep := Report{
		ID:         "E18",
		Title:      "§V — (2f+1)-connectivity condition on arbitrary graphs",
		PaperClaim: "without duplicity, reliable broadcast needs 2f+1 vertex-disjoint paths (Dolev's condition relaxed from 3f+1 nodes)",
		Header:     []string{"graph", "κ (disjoint paths)", "expected", "tolerable f"},
		Pass:       true,
	}
	cases := []struct {
		name     string
		n        int
		expected int
		nb       func(int) []int
	}{
		{
			name: "K8", n: 8, expected: 7,
			nb: func(v int) []int {
				var out []int
				for u := 0; u < 8; u++ {
					if u != v {
						out = append(out, u)
					}
				}
				return out
			},
		},
		{
			name: "C12 (ring)", n: 12, expected: 2,
			nb: func(v int) []int { return []int{(v + 1) % 12, (v + 11) % 12} },
		},
		{
			name: "C12² (chordal ring)", n: 12, expected: 4,
			nb: func(v int) []int {
				return []int{(v + 1) % 12, (v + 11) % 12, (v + 2) % 12, (v + 10) % 12}
			},
		},
	}
	for _, tc := range cases {
		// Vertex connectivity between antipodal-ish endpoints.
		count, err := flow.CountVertexDisjointPaths(flow.DisjointConfig{
			N: tc.n, Neighbors: tc.nb, S: 0, T: tc.n / 2,
		})
		if err != nil {
			return rep, err
		}
		if count != tc.expected {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			tc.name, itoa(count), itoa(tc.expected), itoa((count - 1) / 2),
		})
	}
	// The grid radio network itself: the worst-case pair of Theorem 1's
	// proof — the U-region node N = (a+p, b+q) and the fringe corner
	// P = (a−r, b+r+1) — has at least r(2r+1) vertex-disjoint paths inside
	// the single neighborhood nbd(a, b+r+1).
	r := 2
	c := grid.C(0, 0)
	nCoord := grid.C(c.X+1, c.Y+2) // U node with p=1, q=2
	pCoord := paths.CornerP(c, r)
	nbd := grid.ClosedNbd(grid.Linf, paths.NbdCenterU(c, r), r)
	index := make(map[grid.Coord]int, len(nbd))
	for i, z := range nbd {
		index[z] = i
	}
	nbFn := func(i int) []int {
		var out []int
		for j := range nbd {
			if i != j && grid.DistLinf(nbd[i], nbd[j]) <= r {
				out = append(out, j)
			}
		}
		return out
	}
	count, err := flow.CountVertexDisjointPaths(flow.DisjointConfig{
		N: len(nbd), Neighbors: nbFn, S: index[nCoord], T: index[pCoord],
	})
	if err != nil {
		return rep, err
	}
	want := r * (2*r + 1)
	if count < want {
		rep.Pass = false
	}
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("L∞ nbd r=%d (Thm 1 worst pair)", r), itoa(count),
		fmt.Sprintf("≥ %d", want), itoa((count - 1) / 2),
	})
	return rep, nil
}

// runE19Safety: Theorem 2 — no honest node ever commits a wrong value, for
// every protocol, adversary strategy and seed, including fault bounds above
// the liveness threshold.
func runE19Safety() (Report, error) {
	rep := Report{
		ID:         "E19",
		Title:      "Theorem 2 — safety sweep (no wrong commits, ever)",
		PaperClaim: "no node commits a wrong value by following the rule, at any t within the placement budget",
		Header:     []string{"protocol", "r", "t", "strategy", "runs", "wrong commits"},
		Pass:       true,
	}
	for _, tc := range []struct {
		kind protocol.Kind
		r    int
		t    int
	}{
		{protocol.BV4, 1, 1},
		{protocol.BV4, 1, 2},
		{protocol.BV2, 1, 1},
		{protocol.BV2, 1, 3},
		{protocol.CPA, 2, 2},
		{protocol.CPA, 2, 5},
	} {
		net, err := buildNet(14, 14, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		for _, strat := range []fault.Strategy{fault.Liar, fault.Forger} {
			wrong := 0
			const runs = 3
			for seed := int64(0); seed < runs; seed++ {
				byz, err := fault.RandomBounded(net, tc.t, -1, seed)
				if err != nil {
					return rep, err
				}
				byz = removeID(byz, src)
				out, err := protocol.Run(protocol.RunConfig{
					Kind:      tc.kind,
					Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tc.t},
					Byzantine: byzMap(byz, strat),
				})
				if err != nil {
					return rep, err
				}
				wrong += out.Wrong
			}
			if wrong != 0 {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				tc.kind.String(), itoa(tc.r), itoa(tc.t), strat.String(),
				itoa(3), itoa(wrong),
			})
		}
	}
	return rep, nil
}

// runE20Engines: the concurrent goroutine-per-node runtime must agree with
// the deterministic engine in lock-step mode, decision for decision.
func runE20Engines() (Report, error) {
	rep := Report{
		ID:         "E20",
		Title:      "Engine equivalence — concurrent runtime vs deterministic engine",
		PaperClaim: "(infrastructure check) both executions of the same protocol agree exactly",
		Header:     []string{"protocol", "r", "decisions equal", "rounds equal", "stats equal"},
		Pass:       true,
	}
	for _, tc := range []struct {
		kind protocol.Kind
		r    int
	}{
		{protocol.Flood, 1},
		{protocol.CPA, 2},
		{protocol.BV2, 1},
	} {
		net, err := buildNet(12, 12, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		factory, err := protocol.NewFactory(tc.kind, protocol.Params{
			Net: net, Source: src, Value: 1, T: 1,
		})
		if err != nil {
			return rep, err
		}
		crash := map[topology.NodeID]int{17: 2, 40: 0}
		seq, err := sim.Run(sim.Config{
			Net: net, Mode: sim.ModeNextRound, Factory: factory, CrashAt: crash,
		})
		if err != nil {
			return rep, err
		}
		conc, err := runtime.Run(runtime.Config{
			Net: net, Factory: factory, CrashAt: crash,
		})
		if err != nil {
			return rep, err
		}
		decEq := len(seq.Decided) == len(conc.Decided)
		roundsEq := true
		for id, v := range seq.Decided {
			if conc.Decided[id] != v {
				decEq = false
			}
			if seq.DecidedRound[id] != conc.DecidedRound[id] {
				roundsEq = false
			}
		}
		statsEq := seq.Stats == conc.Stats
		if !decEq || !roundsEq || !statsEq {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			tc.kind.String(), itoa(tc.r),
			fmt.Sprintf("%v", decEq), fmt.Sprintf("%v", roundsEq), fmt.Sprintf("%v", statsEq),
		})
	}
	return rep, nil
}
