package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pool"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E01").
	ID string
	// Title names the reproduced artifact.
	Title string
	// PaperClaim states what the paper says, in one line.
	PaperClaim string
	// Header labels the row columns.
	Header []string
	// Rows carry the measured series.
	Rows [][]string
	// Pass reports whether every measured value matched the claim.
	Pass bool
	// Notes carries caveats (substitutions, informal-claim status).
	Notes []string
}

// Format renders the report as an aligned text table.
func (r Report) Format() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "   paper: %s\n", r.PaperClaim)
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			b.WriteString("   ")
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "%-*s  ", widths[i], c)
				} else {
					b.WriteString(c + "  ")
				}
			}
			b.WriteString("\n")
		}
		writeRow(r.Header)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Runner produces a report. Runners must be deterministic.
type Runner func() (Report, error)

// registry maps experiment ids to runners; populated by init in each file.
var registry = map[string]Runner{}

// register adds a runner; duplicate ids panic at init time.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r()
}

// RunAll executes every experiment in id order, collecting reports. It
// returns an error only for infrastructure failures; claim mismatches are
// reported via Report.Pass.
func RunAll() ([]Report, error) {
	return RunMany(IDs(), 1)
}

// RunMany executes the given experiments across a bounded worker pool
// (workers ≤ 0 means GOMAXPROCS) and returns their reports in input order —
// identical to running them sequentially, since every runner is
// deterministic and self-contained. On failure the reported error is the
// first failing experiment in input order, regardless of which finished
// first.
func RunMany(ids []string, workers int) ([]Report, error) {
	reports := make([]Report, len(ids))
	errs := make([]error, len(ids))
	pool.Run(workers, len(ids), func(i int) {
		reports[i], errs[i] = Run(strings.TrimSpace(ids[i]))
	})
	for i, err := range errs {
		if err != nil {
			return reports[:i], fmt.Errorf("experiments: %s: %w", strings.TrimSpace(ids[i]), err)
		}
	}
	return reports, nil
}

// itoa is shorthand for formatting ints in rows.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// ftoa is shorthand for formatting floats in rows.
func ftoa(v float64) string { return fmt.Sprintf("%.3f", v) }
