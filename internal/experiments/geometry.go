package experiments

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/paths"
)

// geometryRadii is the sweep used by the construction experiments.
var geometryRadii = []int{1, 2, 3, 4, 5, 6}

func init() {
	register("E01", runE01TableI)
	register("E02", runE02RegionM)
	register("E03", runE03RegionR)
	register("E04", runE04Decompose)
	register("E05", runE05FamiliesU)
	register("E06", runE06FamiliesS1)
	register("E07", runE07ArbitraryP)
}

// runE01TableI verifies the Table I region extents and the cardinality
// identities |A|+|B1|+|C1|+|D1| = |J|+|K1| = r(2r+1) for every legal (p,q).
func runE01TableI() (Report, error) {
	rep := Report{
		ID:         "E01",
		Title:      "Table I — spatial extents of construction regions",
		PaperClaim: "per-(p,q) region sizes sum to r(2r+1) along both the A-D and J-K routes",
		Header:     []string{"r", "(p,q) pairs", "A+B+C+D=r(2r+1)", "J+K=r(2r+1)"},
		Pass:       true,
	}
	for _, r := range geometryRadii {
		pairs, okABCD, okJK := 0, 0, 0
		for q := 1; q <= r; q++ {
			for p := 1; p < q; p++ {
				pairs++
				if err := paths.CheckTableICounts(grid.C(0, 0), r, p, q); err != nil {
					rep.Pass = false
					rep.Notes = append(rep.Notes, err.Error())
					continue
				}
				okABCD++
				okJK++
			}
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(pairs),
			fmt.Sprintf("%d/%d", okABCD, pairs),
			fmt.Sprintf("%d/%d", okJK, pairs),
		})
	}
	return rep, nil
}

// runE02RegionM checks |M| = r(2r+1) (Fig 1).
func runE02RegionM() (Report, error) {
	rep := Report{
		ID:         "E02",
		Title:      "Fig 1 — region M (nodes P can reliably determine)",
		PaperClaim: "|M| = r(2r+1)",
		Header:     []string{"r", "|M| measured", "r(2r+1)"},
		Pass:       true,
	}
	for _, r := range geometryRadii {
		got := len(paths.RegionM(grid.C(0, 0), r))
		want := r * (2*r + 1)
		if got != want {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{itoa(r), itoa(got), itoa(want)})
	}
	return rep, nil
}

// runE03RegionR checks |R| = r(r+1) and that P hears all of R (Fig 2).
func runE03RegionR() (Report, error) {
	rep := Report{
		ID:         "E03",
		Title:      "Fig 2 — region R (nodes P hears directly)",
		PaperClaim: "|R| = r(r+1), every node within L∞ radius of P",
		Header:     []string{"r", "|R| measured", "r(r+1)", "all heard"},
		Pass:       true,
	}
	for _, r := range geometryRadii {
		c := grid.C(0, 0)
		p := paths.CornerP(c, r)
		pts := paths.RegionR(c, r).Points()
		heard := 0
		for _, z := range pts {
			if grid.DistLinf(z, p) <= r {
				heard++
			}
		}
		want := r * (r + 1)
		ok := len(pts) == want && heard == len(pts)
		if !ok {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(len(pts)), itoa(want), fmt.Sprintf("%d/%d", heard, len(pts)),
		})
	}
	return rep, nil
}

// runE04Decompose checks M = R ⊎ U ⊎ S1 ⊎ S2 with the stated sizes (Fig 3).
func runE04Decompose() (Report, error) {
	rep := Report{
		ID:         "E04",
		Title:      "Fig 3 — decomposition M = R ⊎ U ⊎ S1 ⊎ S2",
		PaperClaim: "|U| = |S2| = ½r(r−1), |S1| = r, and the parts tile M exactly",
		Header:     []string{"r", "|U|", "|S1|", "|S2|", "tiles M"},
		Pass:       true,
	}
	for _, r := range geometryRadii {
		c := grid.C(0, 0)
		u := paths.RegionU(c, r)
		s1 := paths.RegionS1(c, r)
		s2 := paths.RegionS2(c, r)
		mset := grid.NewCoordSet(paths.RegionM(c, r)...)
		parts := grid.NewCoordSet()
		tiles := true
		for _, group := range [][]grid.Coord{paths.RegionR(c, r).Points(), u, s1, s2} {
			for _, z := range group {
				if !mset.Has(z) || parts.Has(z) {
					tiles = false
				}
				parts.Add(z)
			}
		}
		tiles = tiles && len(parts) == len(mset)
		ok := len(u) == r*(r-1)/2 && len(s1) == r && len(s2) == r*(r-1)/2 && tiles
		if !ok {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(len(u)), itoa(len(s1)), itoa(len(s2)), fmt.Sprintf("%v", tiles),
		})
	}
	return rep, nil
}

// familyFlowCheck cross-checks a constructed family against the exact
// max-flow disjoint path count inside the family's neighborhood.
func familyFlowCheck(r int, fam paths.Family) (int, error) {
	nbd := grid.ClosedNbd(grid.Linf, fam.Center, r)
	index := make(map[grid.Coord]int, len(nbd))
	for i, z := range nbd {
		index[z] = i
	}
	s, okS := index[fam.N]
	t, okT := index[fam.P]
	if !okS || !okT {
		return 0, fmt.Errorf("experiments: family endpoints outside neighborhood")
	}
	neighbors := func(i int) []int {
		var out []int
		for j, z := range nbd {
			if i != j && grid.DistLinf(nbd[i], z) <= r {
				out = append(out, j)
			}
		}
		return out
	}
	return flow.CountVertexDisjointPaths(flow.DisjointConfig{
		N: len(nbd), Neighbors: neighbors, S: s, T: t,
	})
}

// runE05FamiliesU verifies, for every U node, the explicit A/B/C/D path
// family (Figs 4-5): r(2r+1) paths, disjoint, inside one neighborhood, and
// never exceeding what max-flow says is possible.
func runE05FamiliesU() (Report, error) {
	rep := Report{
		ID:         "E05",
		Title:      "Figs 4-5 — node-disjoint path families for region U",
		PaperClaim: "every N ∈ U has r(2r+1) node-disjoint ≤4-hop paths to P inside nbd(a, b+r+1)",
		Header:     []string{"r", "U nodes", "valid families", "paths each", "≤ max-flow"},
		Pass:       true,
	}
	for _, r := range geometryRadii[1:] { // U is empty at r=1
		c := grid.C(0, 0)
		nodes := paths.RegionU(c, r)
		valid, flowOK := 0, 0
		for _, n := range nodes {
			d := n.Sub(c)
			fam, err := paths.FamilyU(c, r, d.X, d.Y)
			if err != nil {
				return rep, err
			}
			if len(fam.Paths) == r*(2*r+1) && paths.VerifyFamily(r, fam) == nil {
				valid++
			}
			cut, err := familyFlowCheck(r, fam)
			if err != nil {
				return rep, err
			}
			if len(fam.Paths) <= cut {
				flowOK++
			}
		}
		if valid != len(nodes) || flowOK != len(nodes) {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(len(nodes)),
			fmt.Sprintf("%d/%d", valid, len(nodes)),
			itoa(r * (2*r + 1)),
			fmt.Sprintf("%d/%d", flowOK, len(nodes)),
		})
	}
	return rep, nil
}

// runE06FamiliesS1 does the same for region S1 (Fig 6) and, via the
// symmetry argument, region S2.
func runE06FamiliesS1() (Report, error) {
	rep := Report{
		ID:         "E06",
		Title:      "Fig 6 — path families for regions S1 and S2",
		PaperClaim: "every N ∈ S1 ∪ S2 has r(2r+1) node-disjoint paths to P inside one neighborhood",
		Header:     []string{"r", "S1 valid", "S2 valid"},
		Pass:       true,
	}
	for _, r := range geometryRadii {
		c := grid.C(0, 0)
		s1ok, s1n := 0, 0
		for p := 0; p <= r-1; p++ {
			s1n++
			fam, err := paths.FamilyS1(c, r, p)
			if err != nil {
				return rep, err
			}
			if len(fam.Paths) == r*(2*r+1) && paths.VerifyFamily(r, fam) == nil {
				s1ok++
			}
		}
		s2ok, s2n := 0, 0
		for q := 1; q <= r-1; q++ {
			for p := 0; p < q; p++ {
				s2n++
				fam, err := paths.FamilyS2(c, r, p, q)
				if err != nil {
					return rep, err
				}
				if len(fam.Paths) == r*(2*r+1) && paths.VerifyFamily(r, fam) == nil {
					s2ok++
				}
			}
		}
		if s1ok != s1n || s2ok != s2n {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r),
			fmt.Sprintf("%d/%d", s1ok, s1n),
			fmt.Sprintf("%d/%d", s2ok, s2n),
		})
	}
	return rep, nil
}

// runE07ArbitraryP verifies §VI-A (Fig 7): for every lateral shift l of P
// the determinable-node count stays at least r(2r+1).
func runE07ArbitraryP() (Report, error) {
	rep := Report{
		ID:         "E07",
		Title:      "Fig 7 — arbitrary position of P on the fringe",
		PaperClaim: "direct r(r+l+1) nodes plus surviving families ≥ r(2r+1) for all 0 ≤ l ≤ r",
		Header:     []string{"r", "l", "direct", "via paths", "lost", "total", "r(2r+1)"},
		Pass:       true,
	}
	for _, r := range geometryRadii[:4] {
		for l := 0; l <= r; l++ {
			res, err := paths.VerifyArbitraryP(grid.C(0, 0), r, l)
			if err != nil {
				rep.Pass = false
				rep.Notes = append(rep.Notes, err.Error())
				continue
			}
			want := r * (2*r + 1)
			if res.Total() < want {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				itoa(r), itoa(l), itoa(res.Direct), itoa(res.ViaPaths),
				itoa(res.Lost), itoa(res.Total()), itoa(want),
			})
		}
	}
	return rep, nil
}
