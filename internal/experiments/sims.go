package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func init() {
	register("E08", runE08Thm1Sim)
	register("E09", runE09Thm1Impossible)
	register("E10", runE10CrashImpossible)
	register("E11", runE11CrashPossible)
	register("E12", runE12CPA)
	register("E13", runE13TwoHop)
	register("E17", runE17Percolation)
}

// buildNet constructs the standard experiment torus for radius r.
func buildNet(w, h, r int, m grid.Metric) (*topology.Network, error) {
	return topology.New(grid.Torus{W: w, H: h}, m, r)
}

// torusBands places the given band construction at the two antipodal
// columns of the torus (one half-plane cut needs two bands on a torus).
func torusBands(net *topology.Network, width int, build func(x0 int) ([]topology.NodeID, error)) ([]topology.NodeID, error) {
	var out []topology.NodeID
	for _, x0 := range []int{net.Torus().W / 4, 3 * net.Torus().W / 4} {
		band, err := build(x0)
		if err != nil {
			return nil, err
		}
		out = append(out, band...)
	}
	return out, nil
}

// middleOf returns honest nodes strictly between the two torus bands.
func middleOf(net *topology.Network, width int, faulty []topology.NodeID) []topology.NodeID {
	isF := make(map[topology.NodeID]bool, len(faulty))
	for _, id := range faulty {
		isF[id] = true
	}
	w := net.Torus().W
	lo := w/4 + width
	hi := 3*w/4 - 1
	var out []topology.NodeID
	net.ForEach(func(id topology.NodeID) {
		c := net.CoordOf(id)
		if c.X > lo && c.X < hi && !isF[id] {
			out = append(out, id)
		}
	})
	return out
}

func byzMap(ids []topology.NodeID, s fault.Strategy) map[topology.NodeID]fault.Strategy {
	m := make(map[topology.NodeID]fault.Strategy, len(ids))
	for _, id := range ids {
		m[id] = s
	}
	return m
}

func crashMap(ids []topology.NodeID) map[topology.NodeID]int {
	m := make(map[topology.NodeID]int, len(ids))
	for _, id := range ids {
		m[id] = 0
	}
	return m
}

// runE08Thm1Sim: BV4 at the exact threshold t = ⌈r(2r+1)/2⌉−1 against the
// strongest legal band adversary and random placements.
func runE08Thm1Sim() (Report, error) {
	rep := Report{
		ID:         "E08",
		Title:      "Theorem 1 — BV4 achieves broadcast at t = ⌈r(2r+1)/2⌉−1",
		PaperClaim: "all honest nodes commit correctly for t < r(2r+1)/2 (L∞)",
		Header:     []string{"r", "t", "adversary", "faults", "correct", "wrong", "undecided", "rounds"},
		Pass:       true,
	}
	for _, tc := range []struct{ r, w, h int }{{1, 16, 10}, {2, 32, 18}} {
		net, err := buildNet(tc.w, tc.h, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		tMax := bounds.MaxByzantineLinf(tc.r)
		band, err := torusBands(net, tc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.GreedyBand(net, x0, tc.r, tMax)
		})
		if err != nil {
			return rep, err
		}
		random, err := fault.RandomBounded(net, tMax, -1, 7)
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		random = removeID(random, src)
		for _, adv := range []struct {
			name  string
			nodes []topology.NodeID
			strat fault.Strategy
		}{
			{"band/silent", band, fault.Silent},
			{"band/forger", band, fault.Forger},
			{"random/forger", random, fault.Forger},
		} {
			out, err := protocol.Run(protocol.RunConfig{
				Kind:      protocol.BV4,
				Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tMax},
				Byzantine: byzMap(adv.nodes, adv.strat),
			})
			if err != nil {
				return rep, err
			}
			if !out.AllCorrect() {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				itoa(tc.r), itoa(tMax), adv.name, itoa(len(adv.nodes)),
				itoa(out.Correct), itoa(out.Wrong), itoa(out.Undecided),
				itoa(out.Result.Stats.Rounds),
			})
		}
	}
	return rep, nil
}

// runE09Thm1Impossible: the Fig 13 checkerboard band at t = ⌈r(2r+1)/2⌉
// stalls every node between the bands; safety is preserved.
func runE09Thm1Impossible() (Report, error) {
	rep := Report{
		ID:         "E09",
		Title:      "Koo impossibility / Fig 13 — BV4 stalls at t = ⌈r(2r+1)/2⌉",
		PaperClaim: "reliable broadcast impossible for t ≥ ⌈r(2r+1)/2⌉; no wrong commits either way",
		Header:     []string{"r", "t", "middle nodes", "middle stalled", "wrong"},
		Pass:       true,
		Notes:      []string{"the half-plane construction is doubled (two bands) to cut the torus"},
	}
	for _, tc := range []struct{ r, w, h int }{{1, 16, 10}, {2, 32, 18}} {
		net, err := buildNet(tc.w, tc.h, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		tImp := bounds.MinImpossibleByzantineLinf(tc.r)
		band, err := torusBands(net, tc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.CheckerboardBand(net, x0, tc.r)
		})
		if err != nil {
			return rep, err
		}
		if got := fault.MaxPerNeighborhood(net, band); got != tImp {
			return rep, fmt.Errorf("E09: construction max-per-nbd %d, want %d", got, tImp)
		}
		src := net.IDOf(grid.C(0, 0))
		out, err := protocol.Run(protocol.RunConfig{
			Kind:      protocol.BV4,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tImp},
			Byzantine: byzMap(band, fault.Silent),
		})
		if err != nil {
			return rep, err
		}
		mid := middleOf(net, tc.r, band)
		stalled := 0
		for _, id := range mid {
			if _, ok := out.Result.Decided[id]; !ok {
				stalled++
			}
		}
		if stalled != len(mid) || !out.Safe() {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(tc.r), itoa(tImp), itoa(len(mid)), itoa(stalled), itoa(out.Wrong),
		})
	}
	return rep, nil
}

// runE10CrashImpossible: Fig 8 — a width-r crash band (t = r(2r+1))
// partitions the network.
func runE10CrashImpossible() (Report, error) {
	rep := Report{
		ID:         "E10",
		Title:      "Theorem 4 / Fig 8 — crash band partitions at t = r(2r+1)",
		PaperClaim: "t = r(2r+1) crash faults make some nodes unreachable",
		Header:     []string{"r", "t", "middle nodes", "unreachable", "reached elsewhere"},
		Pass:       true,
		Notes:      []string{"the half-plane construction is doubled (two bands) to cut the torus"},
	}
	for _, tc := range []struct{ r, w, h int }{{1, 16, 10}, {2, 32, 18}} {
		net, err := buildNet(tc.w, tc.h, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		band, err := torusBands(net, tc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.Band(net, x0, tc.r), nil
		})
		if err != nil {
			return rep, err
		}
		tImp := bounds.MinImpossibleCrashLinf(tc.r)
		if got := fault.MaxPerNeighborhood(net, band); got != tImp {
			return rep, fmt.Errorf("E10: construction max-per-nbd %d, want %d", got, tImp)
		}
		src := net.IDOf(grid.C(0, 0))
		out, err := protocol.Run(protocol.RunConfig{
			Kind:   protocol.Flood,
			Params: protocol.Params{Net: net, Source: src, Value: 1},
			Crash:  crashMap(band),
		})
		if err != nil {
			return rep, err
		}
		mid := middleOf(net, tc.r, band)
		unreachable := 0
		for _, id := range mid {
			if _, ok := out.Result.Decided[id]; !ok {
				unreachable++
			}
		}
		if unreachable != len(mid) || out.Wrong != 0 || out.Correct == 0 {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(tc.r), itoa(tImp), itoa(len(mid)), itoa(unreachable), itoa(out.Correct),
		})
	}
	return rep, nil
}

// runE11CrashPossible: Theorem 5 — flooding succeeds at t = r(2r+1)−1 under
// the greedy band and random placements.
func runE11CrashPossible() (Report, error) {
	rep := Report{
		ID:         "E11",
		Title:      "Theorem 5 / Figs 9-10 — flooding tolerates t = r(2r+1)−1",
		PaperClaim: "all correct nodes receive the broadcast for t < r(2r+1) (L∞)",
		Header:     []string{"r", "t", "adversary", "faults", "correct", "undecided"},
		Pass:       true,
	}
	for _, tc := range []struct{ r, w, h int }{{1, 16, 10}, {2, 32, 18}} {
		net, err := buildNet(tc.w, tc.h, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		tMax := bounds.MaxCrashLinf(tc.r)
		band, err := torusBands(net, tc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.GreedyBand(net, x0, tc.r, tMax)
		})
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		random, err := fault.RandomBounded(net, tMax, -1, 11)
		if err != nil {
			return rep, err
		}
		random = removeID(random, src)
		for _, adv := range []struct {
			name  string
			nodes []topology.NodeID
		}{{"greedy band", band}, {"random bounded", random}} {
			out, err := protocol.Run(protocol.RunConfig{
				Kind:   protocol.Flood,
				Params: protocol.Params{Net: net, Source: src, Value: 1},
				Crash:  crashMap(adv.nodes),
			})
			if err != nil {
				return rep, err
			}
			if !out.AllCorrect() {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				itoa(tc.r), itoa(tMax), adv.name, itoa(len(adv.nodes)),
				itoa(out.Correct), itoa(out.Undecided),
			})
		}
	}
	return rep, nil
}

// runE12CPA: Theorem 6 — the simple protocol commits everywhere at
// t = ⌊2r²/3⌋, with the staged wavefront of Figs 14-19 recorded per round.
func runE12CPA() (Report, error) {
	rep := Report{
		ID:         "E12",
		Title:      "Theorem 6 / Figs 14-19 — CPA tolerates t = ⌊2r²/3⌋",
		PaperClaim: "the simple protocol achieves broadcast for t ≤ (2/3)r², dominating Koo's bound for large r",
		Header:     []string{"r", "t=2r²/3", "Koo bound", "adversary", "correct", "wrong", "undecided"},
		Pass:       true,
	}
	for _, tc := range []struct{ r, w, h int }{{2, 24, 14}, {3, 32, 20}} {
		net, err := buildNet(tc.w, tc.h, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		tCPA := bounds.MaxCPALinf(tc.r)
		band, err := torusBands(net, tc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.GreedyBand(net, x0, tc.r, tCPA)
		})
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		for _, strat := range []fault.Strategy{fault.Silent, fault.Liar} {
			out, err := protocol.Run(protocol.RunConfig{
				Kind:      protocol.CPA,
				Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tCPA},
				Byzantine: byzMap(band, strat),
			})
			if err != nil {
				return rep, err
			}
			if !out.AllCorrect() {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				itoa(tc.r), itoa(tCPA), itoa(bounds.KooCPALinf(tc.r)), strat.String(),
				itoa(out.Correct), itoa(out.Wrong), itoa(out.Undecided),
			})
			if strat == fault.Silent {
				// Figs 14-19 depict the staged growth of the committed
				// region; record the per-round commit profile as its
				// measurable counterpart.
				byRound := make(map[int]int)
				lastRound := 0
				for _, rd := range out.Result.DecidedRound {
					byRound[rd]++
					if rd > lastRound {
						lastRound = rd
					}
				}
				profile := ""
				for rd := 0; rd <= lastRound && rd <= 6; rd++ {
					profile += fmt.Sprintf("%d:%d ", rd, byRound[rd])
				}
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"r=%d commit wavefront (round:new commits) %s… full commit after %d rounds",
					tc.r, profile, lastRound))
			}
		}
	}
	return rep, nil
}

// runE13TwoHop: §VI-B — the simplified two-hop protocol matches the exact
// threshold.
func runE13TwoHop() (Report, error) {
	rep := Report{
		ID:         "E13",
		Title:      "§VI-B — two-hop protocol at t = ⌈r(2r+1)/2⌉−1",
		PaperClaim: "two-hop HEARD reports suffice for the same threshold as Theorem 1",
		Header:     []string{"r", "t", "adversary", "correct", "wrong", "undecided"},
		Pass:       true,
	}
	for _, tc := range []struct{ r, w, h int }{{1, 16, 10}, {2, 32, 18}} {
		net, err := buildNet(tc.w, tc.h, tc.r, grid.Linf)
		if err != nil {
			return rep, err
		}
		tMax := bounds.MaxByzantineLinf(tc.r)
		band, err := torusBands(net, tc.r, func(x0 int) ([]topology.NodeID, error) {
			return fault.GreedyBand(net, x0, tc.r, tMax)
		})
		if err != nil {
			return rep, err
		}
		src := net.IDOf(grid.C(0, 0))
		for _, strat := range []fault.Strategy{fault.Silent, fault.Forger} {
			out, err := protocol.Run(protocol.RunConfig{
				Kind:      protocol.BV2,
				Params:    protocol.Params{Net: net, Source: src, Value: 1, T: tMax},
				Byzantine: byzMap(band, strat),
			})
			if err != nil {
				return rep, err
			}
			if !out.AllCorrect() {
				rep.Pass = false
			}
			rep.Rows = append(rep.Rows, []string{
				itoa(tc.r), itoa(tMax), strat.String(),
				itoa(out.Correct), itoa(out.Wrong), itoa(out.Undecided),
			})
		}
	}
	return rep, nil
}

// runE17Percolation: §XI — iid crash failures; delivered fraction vs p_f.
func runE17Percolation() (Report, error) {
	rep := Report{
		ID:         "E17",
		Title:      "§XI — random crash failures (site-percolation flavour)",
		PaperClaim: "random crash-stop failures behave like site percolation: reachability degrades sharply near a critical p_f",
		Header:     []string{"p_f", "runs", "mean delivered fraction"},
		Pass:       true,
		Notes:      []string{"qualitative claim: the paper only points at the percolation connection"},
	}
	net, err := buildNet(24, 24, 1, grid.Linf)
	if err != nil {
		return rep, err
	}
	src := net.IDOf(grid.C(0, 0))
	var fractions []float64
	probs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	const runs = 5
	for _, pf := range probs {
		sum := 0.0
		for seed := int64(0); seed < runs; seed++ {
			faulty, err := fault.Percolation(net, pf, src, seed)
			if err != nil {
				return rep, err
			}
			out, err := protocol.Run(protocol.RunConfig{
				Kind:   protocol.Flood,
				Params: protocol.Params{Net: net, Source: src, Value: 1},
				Crash:  crashMap(faulty),
			})
			if err != nil {
				return rep, err
			}
			sum += float64(out.Correct) / float64(out.Honest)
		}
		mean := sum / runs
		fractions = append(fractions, mean)
		rep.Rows = append(rep.Rows, []string{ftoa(pf), itoa(runs), ftoa(mean)})
	}
	// Monotone degradation and a sharp drop across the sweep.
	for i := 1; i < len(fractions); i++ {
		if fractions[i] > fractions[i-1]+0.05 {
			rep.Pass = false
		}
	}
	if fractions[0] < 0.9 || fractions[len(fractions)-1] > 0.5 {
		rep.Pass = false
	}

	// Critical-point estimate: bisect for the p_f where the mean delivered
	// fraction crosses ½. Reliable broadcast under iid crash faults is
	// site percolation of the working nodes on the king graph (8-neighbor
	// lattice, site p_c ≈ 0.407), so the failure threshold should sit near
	// 1 − 0.407 ≈ 0.593.
	meanAt := func(pf float64) (float64, error) {
		sum := 0.0
		for seed := int64(0); seed < runs; seed++ {
			faulty, err := fault.Percolation(net, pf, src, seed)
			if err != nil {
				return 0, err
			}
			out, err := protocol.Run(protocol.RunConfig{
				Kind:   protocol.Flood,
				Params: protocol.Params{Net: net, Source: src, Value: 1},
				Crash:  crashMap(faulty),
			})
			if err != nil {
				return 0, err
			}
			sum += float64(out.Correct) / float64(out.Honest)
		}
		return sum / runs, nil
	}
	lo, hi := 0.45, 0.75
	for i := 0; i < 6; i++ {
		mid := (lo + hi) / 2
		mean, err := meanAt(mid)
		if err != nil {
			return rep, err
		}
		if mean > 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	crit := (lo + hi) / 2
	rep.Rows = append(rep.Rows, []string{"critical", "bisect", ftoa(crit)})
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"estimated critical p_f ≈ %.3f; king-graph site percolation predicts 1−0.407 ≈ 0.593 (finite-size torus shifts it upward)", crit))
	if crit < 0.5 || crit > 0.75 {
		rep.Pass = false
	}
	return rep, nil
}

// removeID filters one id out of a slice.
func removeID(ids []topology.NodeID, drop topology.NodeID) []topology.NodeID {
	out := ids[:0]
	for _, id := range ids {
		if id != drop {
			out = append(out, id)
		}
	}
	return out
}
