package experiments

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/l2"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func init() {
	register("E14", runE14L2Families)
	register("E15", runE15L2Impossible)
	register("E16", runE16L2Crash)
}

// runE14L2Families: Figs 11-12 — node-disjoint P-Q path counts inside one
// Euclidean neighborhood, versus the paper's ≈1.47r² family and the
// 2(0.23πr²)+1 requirement.
func runE14L2Families() (Report, error) {
	rep := Report{
		ID:         "E14",
		Title:      "Figs 11-12 — L2 node-disjoint path families (P,Q at distance r√2)",
		PaperClaim: "≈1.47r² = 0.47πr² disjoint short paths exist inside one neighborhood, exceeding 2(0.23πr²)+1",
		Header:     []string{"r", "disk nodes", "max disjoint", "short (≤4 hops)", "short/r²", "paper 1.47", "needed 2t+1"},
		Pass:       true,
		Notes: []string{
			"the paper's L2 argument is explicitly approximate (areas ± O(r)); counts are exact lattice values",
			"the claim holds 'for sufficiently large r': at r=4 the lattice count (22) still falls below 2t+1 (24.1); from r=6 on it clears the bound",
		},
	}
	for _, r := range []int{6, 8, 10, 12} {
		res, err := l2.DisjointPathsPQ(r)
		if err != nil {
			return rep, err
		}
		ratio := float64(res.ShortDisjoint) / float64(r*r)
		if float64(res.ShortDisjoint) < res.Needed {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(res.DiskNodes), itoa(res.MaxDisjoint), itoa(res.ShortDisjoint),
			ftoa(ratio), ftoa(1.47), fmt.Sprintf("%.1f", res.Needed),
		})
	}
	return rep, nil
}

// runE15L2Impossible: Fig 13 in L2 — the checkerboard band's fault count
// under the densest neighborhood disk approaches 0.3πr².
func runE15L2Impossible() (Report, error) {
	rep := Report{
		ID:         "E15",
		Title:      "Fig 13 (L2) — impossibility construction fault density",
		PaperClaim: "the circled region holds ≈0.6πr² band nodes, ≈0.3πr² of them faulty",
		Header:     []string{"r", "band∩disk", "/πr²", "faulty", "/πr²"},
		Pass:       true,
	}
	for _, r := range []int{8, 16, 24, 32} {
		full := l2.BandDiskOverlap(r, r)
		half := l2.CheckerboardBandDiskOverlap(r, r)
		area := math.Pi * float64(r) * float64(r)
		fullR := float64(full) / area
		halfR := float64(half) / area
		// The paper's constants: 0.6 and 0.3 (the exact band-overlap area
		// ratio is ≈0.609).
		if math.Abs(fullR-0.61) > 0.05 || math.Abs(halfR-0.305) > 0.04 {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(full), ftoa(fullR), itoa(half), ftoa(halfR),
		})
	}
	return rep, nil
}

// runE16L2Crash: §VIII crash-stop in L2 — a width-r crash band partitions
// the torus (≈0.6πr² faults per neighborhood), while random placements at
// the paper's achievable density ≈0.46πr² leave the torus connected.
func runE16L2Crash() (Report, error) {
	rep := Report{
		ID:         "E16",
		Title:      "§VIII crash-stop in L2 — achievable ≈0.46πr², impossible ≈0.6πr²",
		PaperClaim: "crash threshold in L2 sits near half the neighborhood population",
		Header:     []string{"r", "scenario", "t (max/nbd)", "delivered", "undecided", "expected"},
		Pass:       true,
	}
	r := 3
	net, err := buildNet(36, 20, r, grid.L2)
	if err != nil {
		return rep, err
	}
	src := net.IDOf(grid.C(0, 0))

	// Impossible: full band of width r (doubled on the torus).
	band, err := torusBands(net, r, func(x0 int) ([]topology.NodeID, error) {
		return fault.Band(net, x0, r), nil
	})
	if err != nil {
		return rep, err
	}
	maxBand := fault.MaxPerNeighborhood(net, band)
	out, err := protocol.Run(protocol.RunConfig{
		Kind:   protocol.Flood,
		Params: protocol.Params{Net: net, Source: src, Value: 1},
		Crash:  crashMap(band),
	})
	if err != nil {
		return rep, err
	}
	mid := middleOf(net, r, band)
	stalled := 0
	for _, id := range mid {
		if _, ok := out.Result.Decided[id]; !ok {
			stalled++
		}
	}
	if stalled != len(mid) {
		rep.Pass = false
	}
	rep.Rows = append(rep.Rows, []string{
		itoa(r), "band (Fig 8 in L2)", itoa(maxBand), itoa(out.Correct),
		itoa(out.Undecided), "partition",
	})
	// The band density should be near 0.6πr² per neighborhood.
	if ratio := float64(maxBand) / (math.Pi * float64(r*r)); math.Abs(ratio-0.61) > 0.12 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("band density ratio %.3f (small-r lattice effects)", ratio))
	}

	// Achievable: random bounded placement at t = ⌊0.46πr²⌋.
	tAch := bounds.ApproxCrashL2(r)
	random, err := fault.RandomBounded(net, tAch, -1, 5)
	if err != nil {
		return rep, err
	}
	random = removeID(random, src)
	out2, err := protocol.Run(protocol.RunConfig{
		Kind:   protocol.Flood,
		Params: protocol.Params{Net: net, Source: src, Value: 1},
		Crash:  crashMap(random),
	})
	if err != nil {
		return rep, err
	}
	if !out2.AllCorrect() {
		rep.Pass = false
	}
	rep.Rows = append(rep.Rows, []string{
		itoa(r), "random bounded", itoa(tAch), itoa(out2.Correct),
		itoa(out2.Undecided), "full delivery",
	})
	rep.Notes = append(rep.Notes,
		"random placements are a liveness check, not a worst case: the paper's L2 crash claim is informal")
	return rep, nil
}
