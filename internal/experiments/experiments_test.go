package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20",
		"E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i, id := range want {
		if got[i] != id {
			t.Errorf("IDs()[%d] = %s, want %s", i, got[i], id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown experiment id must error")
	}
}

func TestReportFormat(t *testing.T) {
	rep := Report{
		ID:         "EXX",
		Title:      "demo",
		PaperClaim: "claim",
		Header:     []string{"a", "bb"},
		Rows:       [][]string{{"1", "2"}, {"333", "4"}},
		Pass:       true,
		Notes:      []string{"a note"},
	}
	s := rep.Format()
	for _, want := range []string{"EXX", "PASS", "claim", "333", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted report missing %q:\n%s", want, s)
		}
	}
	rep.Pass = false
	if !strings.Contains(rep.Format(), "FAIL") {
		t.Error("failing report must render FAIL")
	}
}

// TestGeometryExperimentsPass runs the fast construction experiments.
func TestGeometryExperimentsPass(t *testing.T) {
	for _, id := range []string{"E01", "E02", "E03", "E04", "E06", "E07"} {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", id, rep.Format())
		}
	}
}

// TestSimExperimentsPass runs the protocol simulations (moderate cost).
func TestSimExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments are not short")
	}
	for _, id := range []string{"E09", "E10", "E11", "E12", "E13", "E17"} {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", id, rep.Format())
		}
	}
}

// TestHeavyExperimentsPass runs the slowest reproductions (E05 flow
// cross-checks, E08 threshold sims, E14 L2 flows).
func TestHeavyExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiments are not short")
	}
	for _, id := range []string{"E05", "E08", "E14", "E15", "E16"} {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", id, rep.Format())
		}
	}
}

// TestExtensionExperimentsPass runs the §X/§II what-if studies (E21-E23).
func TestExtensionExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments are not short")
	}
	for _, id := range []string{"E21", "E22", "E23", "E25", "E26", "E27", "E28"} {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", id, rep.Format())
		}
	}
}

func TestMiscExperimentsPass(t *testing.T) {
	for _, id := range []string{"E18", "E19", "E20", "E24"} {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", id, rep.Format())
		}
	}
}
