package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/bounds"
	"repro/internal/evidence"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func init() {
	register("E24", runE24Analyzer)
}

// runE24Analyzer differentially validates the static outcome analyzer
// against the simulator: for crash-stop flooding, the simple protocol and
// the indirect-report protocol, the guaranteed-commit closure must equal
// the simulated committed set node-for-node under silent adversaries.
func runE24Analyzer() (Report, error) {
	rep := Report{
		ID:         "E24",
		Title:      "Static outcome analyzer ≡ simulator (differential validation)",
		PaperClaim: "(infrastructure) the §VI/§VII/§IX commit closures predict the silent-adversary outcome exactly",
		Header:     []string{"protocol", "scenario", "nodes", "predicted commits", "simulated commits", "agree"},
		Pass:       true,
	}
	r := 1
	net, err := buildNet(16, 10, r, grid.Linf)
	if err != nil {
		return rep, err
	}
	src := net.IDOf(grid.C(0, 0))
	ft, err := evidence.NewFamilyTable(r)
	if err != nil {
		return rep, err
	}

	type scenario struct {
		name   string
		faults []topology.NodeID
		tVal   int
	}
	band, err := torusBands(net, r, func(x0 int) ([]topology.NodeID, error) {
		return fault.CheckerboardBand(net, x0, r)
	})
	if err != nil {
		return rep, err
	}
	random, err := fault.RandomBounded(net, bounds.MaxByzantineLinf(r), -1, 6)
	if err != nil {
		return rep, err
	}
	random = removeID(random, src)
	scenarios := []scenario{
		{"fault-free", nil, bounds.MaxByzantineLinf(r)},
		{"random band budget", random, bounds.MaxByzantineLinf(r)},
		{"Fig 13 checkerboard", band, bounds.MinImpossibleByzantineLinf(r)},
	}

	check := func(name, scen string, pred analysis.Prediction, decided map[topology.NodeID]byte) error {
		sim := len(decided)
		agree := true
		for id := 0; id < net.Size(); id++ {
			_, d := decided[topology.NodeID(id)]
			if pred.Committed[id] != d {
				agree = false
			}
		}
		if !agree {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			name, scen, itoa(net.Size()), itoa(pred.Count), itoa(sim), fmt.Sprintf("%v", agree),
		})
		return nil
	}

	for _, sc := range scenarios {
		// Flood (crash faults).
		pred, err := analysis.FloodReachable(net, src, sc.faults)
		if err != nil {
			return rep, err
		}
		out, err := protocol.Run(protocol.RunConfig{
			Kind:   protocol.Flood,
			Params: protocol.Params{Net: net, Source: src, Value: 1},
			Crash:  crashMap(sc.faults),
		})
		if err != nil {
			return rep, err
		}
		if err := check("flood", sc.name, pred, out.Result.Decided); err != nil {
			return rep, err
		}
		// CPA (silent Byzantine).
		predC, err := analysis.CPAClosure(net, src, sc.faults, sc.tVal)
		if err != nil {
			return rep, err
		}
		outC, err := protocol.Run(protocol.RunConfig{
			Kind:      protocol.CPA,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: sc.tVal},
			Byzantine: byzMap(sc.faults, fault.Silent),
		})
		if err != nil {
			return rep, err
		}
		if err := check("cpa", sc.name, predC, outC.Result.Decided); err != nil {
			return rep, err
		}
		// BV4 (silent Byzantine).
		predB, err := analysis.BV4Closure(net, ft, src, sc.faults, sc.tVal)
		if err != nil {
			return rep, err
		}
		outB, err := protocol.Run(protocol.RunConfig{
			Kind:      protocol.BV4,
			Params:    protocol.Params{Net: net, Source: src, Value: 1, T: sc.tVal},
			Byzantine: byzMap(sc.faults, fault.Silent),
		})
		if err != nil {
			return rep, err
		}
		if err := check("bv4", sc.name, predB, outB.Result.Decided); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
