package experiments

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/bounds"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/protocol"
	"repro/internal/topology"
)

func init() {
	register("E26", runE26Agreement)
}

// runE26Agreement demonstrates the Byzantine-agreement corollary the paper
// claims for Theorem 1: with reliable broadcast at t < r(2r+1)/2, committee
// agreement follows — and the radio channel's no-duplicity property keeps
// even Byzantine committee members consistent.
func runE26Agreement() (Report, error) {
	rep := Report{
		ID:         "E26",
		Title:      "Byzantine agreement from reliable broadcast (Theorem 1 corollary)",
		PaperClaim: "the exact broadcast threshold \"establishes an exact threshold for Byzantine agreement under this model\"",
		Header:     []string{"scenario", "committee", "byz", "agreement", "validity", "rounds"},
		Pass:       true,
		Notes: []string{
			"a Byzantine committee member cannot equivocate: its local broadcast reaches all neighbors identically (§V)",
		},
	}
	r := 1
	net, err := buildNet(16, 10, r, grid.Linf)
	if err != nil {
		return rep, err
	}
	tMax := bounds.MaxByzantineLinf(r)
	committee := []topology.NodeID{
		net.IDOf(grid.C(0, 0)), net.IDOf(grid.C(8, 0)), net.IDOf(grid.C(0, 5)),
	}
	scenarios := []struct {
		name   string
		inputs []byte
		byz    map[topology.NodeID]fault.Strategy
	}{
		{"fault-free mixed inputs", []byte{1, 0, 1}, nil},
		{"lying committee member", []byte{1, 0, 1},
			map[topology.NodeID]fault.Strategy{committee[1]: fault.Liar}},
		{"silent committee member", []byte{1, 0, 1},
			map[topology.NodeID]fault.Strategy{committee[1]: fault.Silent}},
	}
	for _, sc := range scenarios {
		res, err := agreement.Run(agreement.Config{
			Net:       net,
			Committee: committee,
			Inputs:    sc.inputs,
			Kind:      protocol.BV4,
			T:         tMax,
			Byzantine: sc.byz,
		})
		if err != nil {
			return rep, err
		}
		if !res.Agreement || !res.Validity {
			rep.Pass = false
		}
		rep.Rows = append(rep.Rows, []string{
			sc.name, itoa(len(committee)), itoa(len(sc.byz)),
			fmt.Sprintf("%v", res.Agreement), fmt.Sprintf("%v", res.Validity),
			itoa(res.Stats.Rounds),
		})
	}
	return rep, nil
}
