// Package experiments contains one runner per reproduced paper artifact
// (Table I and Figs 1-19, plus every theorem's threshold) as indexed in
// DESIGN.md. Each runner returns a structured Report whose rows mirror the
// shape of the paper's claim; cmd/experiments renders them and EXPERIMENTS.md
// records paper-vs-measured values.
package experiments
