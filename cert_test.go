package rbcast_test

import (
	"strings"
	"testing"

	rbcast "repro"
	"repro/internal/scenarios"
)

// TestCertificatesConsistent re-runs every at-threshold canonical scenario
// with tracing on and checks each decided honest node's commit certificate
// against the paper's commit rules:
//
//   - votes (CPA, §IX): at least t+1 distinct voters.
//   - quorum (BV4, §VI): at least t+1 distinct determined committers
//     inside one closed neighborhood, each backed by a direct COMMITTED
//     reception or by t+1 pairwise relay-disjoint confirmation chains.
//   - disjoint-chains (BV2, §VI-B): at least t+1 report chains inside one
//     closed neighborhood, collectively node-disjoint including the
//     committing endpoints.
//   - ready-quorum (Bracha family): at least 2T+1 distinct READY
//     announcers; when the node's own READY came from the ECHO path, an
//     N−T distinct ECHO endorsement quorum.
//
// Every certificate must carry the node's committed value. The scenarios
// run both engines (the conc-at variant) and both evidence modes (the
// exact-at variant), so witness extraction is checked on all four paths.
func TestCertificatesConsistent(t *testing.T) {
	ran := 0
	for _, sc := range scenarios.Matrix() {
		if !strings.Contains(sc.Name, "at/") {
			continue
		}
		sc := sc
		ran++
		t.Run(sc.Name, func(t *testing.T) {
			cfg := sc.Config
			cfg.Trace = true
			res, err := rbcast.Run(cfg, sc.Plan)
			if err != nil {
				t.Fatal(err)
			}
			faulty := make(map[rbcast.Node]bool, len(res.Faulty))
			for _, n := range res.Faulty {
				faulty[n] = true
			}
			source := rbcast.Node{X: cfg.SourceX, Y: cfg.SourceY}
			checked := 0
			for n, d := range res.Decisions {
				if !d.Decided || faulty[n] {
					continue
				}
				checked++
				cert := res.CommitCertificate(n)
				if cert == nil {
					t.Errorf("node %v decided with no certificate", n)
					continue
				}
				if cert.Value != d.Value {
					t.Errorf("node %v committed %d but its certificate claims %d", n, d.Value, cert.Value)
					continue
				}
				verifyCert(t, cfg, source, n, cert)
			}
			if checked == 0 {
				t.Fatal("scenario decided no honest nodes — nothing verified")
			}
		})
	}
	if ran == 0 {
		t.Fatal("no at-threshold scenarios found in the matrix")
	}
}

// verifyCert checks one certificate's structure against its rule.
func verifyCert(t *testing.T, cfg rbcast.Config, source, n rbcast.Node, cert *rbcast.Certificate) {
	t.Helper()
	need := cfg.T + 1
	switch cert.Rule {
	case rbcast.RuleSource:
		if n != source {
			t.Errorf("node %v holds a source certificate but is not the source", n)
		}
	case rbcast.RuleDirect:
		if len(cert.Voters) != 1 || cert.Voters[0] != source {
			t.Errorf("node %v direct certificate names %v, want the source %v", n, cert.Voters, source)
		}
	case rbcast.RuleVotes:
		if cfg.Protocol != rbcast.ProtocolCPA {
			t.Errorf("node %v: votes rule under protocol %v", n, cfg.Protocol)
		}
		if len(cert.Voters) < need {
			t.Errorf("node %v vote certificate has %d voters, need %d", n, len(cert.Voters), need)
		}
		seen := make(map[rbcast.Node]bool, len(cert.Voters))
		for _, v := range cert.Voters {
			if seen[v] {
				t.Errorf("node %v vote certificate repeats voter %v", n, v)
			}
			seen[v] = true
		}
	case rbcast.RuleQuorum:
		if cfg.Protocol != rbcast.ProtocolBV4 {
			t.Errorf("node %v: quorum rule under protocol %v", n, cfg.Protocol)
		}
		if cert.Center == nil {
			t.Fatalf("node %v quorum certificate has no neighborhood center", n)
		}
		if len(cert.Evidence) < need {
			t.Errorf("node %v quorum certificate has %d committers, need %d", n, len(cert.Evidence), need)
		}
		origins := make(map[rbcast.Node]bool, len(cert.Evidence))
		for _, ev := range cert.Evidence {
			if origins[ev.Origin] {
				t.Errorf("node %v quorum certificate repeats committer %v", n, ev.Origin)
			}
			origins[ev.Origin] = true
			if d := torusLinfDist(cfg, *cert.Center, ev.Origin); d > cfg.Radius {
				t.Errorf("node %v: committer %v is %d from center %v, radius %d", n, ev.Origin, d, *cert.Center, cfg.Radius)
			}
			if ev.Direct {
				continue
			}
			// Reliable determination: t+1 chains, pairwise internally
			// node-disjoint (relay sets share no node), no chain relayed
			// by its own origin.
			if len(ev.Chains) < need {
				t.Errorf("node %v: committer %v backed by %d chains, need %d", n, ev.Origin, len(ev.Chains), need)
			}
			used := make(map[rbcast.Node]int)
			for ci, chain := range ev.Chains {
				if len(chain) == 0 {
					t.Errorf("node %v: committer %v chain %d is empty", n, ev.Origin, ci)
				}
				for _, relay := range chain {
					if relay == ev.Origin {
						t.Errorf("node %v: committer %v relays through itself", n, ev.Origin)
					}
					used[relay]++
				}
			}
			for relay, uses := range used {
				if uses > 1 {
					t.Errorf("node %v: committer %v chains share relay %v", n, ev.Origin, relay)
				}
			}
		}
	case rbcast.RuleDisjointChains:
		if cfg.Protocol != rbcast.ProtocolBV2 {
			t.Errorf("node %v: disjoint-chains rule under protocol %v", n, cfg.Protocol)
		}
		if cert.Center == nil {
			t.Fatalf("node %v chain certificate has no neighborhood center", n)
		}
		if len(cert.Evidence) < need {
			t.Errorf("node %v chain certificate has %d chains, need %d", n, len(cert.Evidence), need)
		}
		// Collective node-disjointness over origins AND relays, and the
		// entire chain family inside one closed neighborhood.
		used := make(map[rbcast.Node]int)
		for _, ev := range cert.Evidence {
			used[ev.Origin]++
			if d := torusLinfDist(cfg, *cert.Center, ev.Origin); d > cfg.Radius {
				t.Errorf("node %v: chain origin %v is %d from center %v, radius %d", n, ev.Origin, d, *cert.Center, cfg.Radius)
			}
			for _, chain := range ev.Chains {
				if len(chain) > 1 {
					t.Errorf("node %v: two-hop certificate carries a %d-relay chain", n, len(chain))
				}
				for _, relay := range chain {
					used[relay]++
					if d := torusLinfDist(cfg, *cert.Center, relay); d > cfg.Radius {
						t.Errorf("node %v: relay %v is %d from center %v, radius %d", n, relay, d, *cert.Center, cfg.Radius)
					}
				}
			}
		}
		for node, uses := range used {
			if uses > 1 {
				t.Errorf("node %v: chain family reuses node %v", n, node)
			}
		}
	case rbcast.RuleReadyQuorum:
		if cfg.Protocol != rbcast.ProtocolBracha && cfg.Protocol != rbcast.ProtocolBrachaAuth {
			t.Errorf("node %v: ready-quorum rule under protocol %v", n, cfg.Protocol)
		}
		// The quorum family's thresholds are global, so the checks need N.
		size := cfg.Width * cfg.Height
		if cfg.Nodes > 0 {
			size = cfg.Nodes
		}
		if cfg.Graph != nil {
			size = cfg.Graph.Nodes
		}
		if len(cert.Voters) < 2*cfg.T+1 {
			t.Errorf("node %v ready-quorum certificate has %d READY announcers, need 2T+1 = %d",
				n, len(cert.Voters), 2*cfg.T+1)
		}
		seen := make(map[rbcast.Node]bool, len(cert.Voters))
		for _, v := range cert.Voters {
			if seen[v] {
				t.Errorf("node %v ready-quorum certificate repeats READY announcer %v", n, v)
			}
			seen[v] = true
		}
		// Echoes is present exactly when this node's own READY came from
		// the ECHO-quorum path (rather than f+1 READY amplification); when
		// it is, it must be a full N−T endorsement quorum.
		if len(cert.Echoes) > 0 {
			if len(cert.Echoes) < size-cfg.T {
				t.Errorf("node %v echo quorum has %d endorsers, need N−T = %d",
					n, len(cert.Echoes), size-cfg.T)
			}
			seenEcho := make(map[rbcast.Node]bool, len(cert.Echoes))
			for _, e := range cert.Echoes {
				if seenEcho[e] {
					t.Errorf("node %v echo quorum repeats endorser %v", n, e)
				}
				seenEcho[e] = true
			}
		}
	default:
		t.Errorf("node %v committed under unexpected rule %v", n, cert.Rule)
	}
}

// torusLinfDist is the wraparound L∞ distance between two grid nodes. The
// at-threshold scenarios all use the L∞ metric, matching the paper's
// exact-threshold setting.
func torusLinfDist(cfg rbcast.Config, a, b rbcast.Node) int {
	dx := wrapAbs(a.X-b.X, cfg.Width)
	dy := wrapAbs(a.Y-b.Y, cfg.Height)
	if dx > dy {
		return dx
	}
	return dy
}

// wrapAbs is the shorter-way absolute delta on a ring of size n.
func wrapAbs(d, n int) int {
	if d < 0 {
		d = -d
	}
	d %= n
	if alt := n - d; alt < d {
		return alt
	}
	return d
}
