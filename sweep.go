package rbcast

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/protocol"
)

// MaxSweepElements bounds a single sweep expansion. The limit protects the
// serving path (one /v1/sweep request plans the whole grid server-side);
// larger grids should be split into multiple sweeps.
const MaxSweepElements = 4096

// SweepAxes lists the parameter values a sweep ranges over. Empty axes keep
// the base job's value; the expansion is the cross product of the non-empty
// axes, ordered with Placements outermost, then Ts, then Seeds, then
// CrashRounds innermost.
type SweepAxes struct {
	// Ts ranges Config.T (the per-neighborhood fault bound).
	Ts []int `json:"ts,omitempty"`
	// Seeds ranges Plan.Seed (the randomized-placement stream).
	Seeds []int64 `json:"seeds,omitempty"`
	// CrashRounds ranges Plan.CrashRound (crash-stop divergence time).
	CrashRounds []int `json:"crash_rounds,omitempty"`
	// Placements ranges Plan.Placement (the fault-band family).
	Placements []Placement `json:"placements,omitempty"`
}

// SweepSpec is a parameter grid: one base job plus the axes that vary. The
// JSON encoding is the /v1/sweep request body (see API.md).
type SweepSpec struct {
	Base Job       `json:"base"`
	Axes SweepAxes `json:"axes"`
}

// Elements expands the grid into concrete jobs, in the documented axis
// order. It fails when the cross product exceeds MaxSweepElements.
func (s SweepSpec) Elements() ([]Job, error) {
	axis := func(l int) int {
		if l == 0 {
			return 1
		}
		return l
	}
	a := s.Axes
	total := axis(len(a.Placements)) * axis(len(a.Ts)) * axis(len(a.Seeds)) * axis(len(a.CrashRounds))
	if total > MaxSweepElements {
		return nil, fmt.Errorf("rbcast: sweep expands to %d elements, limit %d", total, MaxSweepElements)
	}
	jobs := make([]Job, 0, total)
	for pi := 0; pi < axis(len(a.Placements)); pi++ {
		for ti := 0; ti < axis(len(a.Ts)); ti++ {
			for si := 0; si < axis(len(a.Seeds)); si++ {
				for ci := 0; ci < axis(len(a.CrashRounds)); ci++ {
					j := s.Base
					if len(a.Placements) > 0 {
						j.Plan.Placement = a.Placements[pi]
					}
					if len(a.Ts) > 0 {
						j.Config.T = a.Ts[ti]
					}
					if len(a.Seeds) > 0 {
						j.Plan.Seed = a.Seeds[si]
					}
					if len(a.CrashRounds) > 0 {
						j.Plan.CrashRound = a.CrashRounds[ci]
					}
					jobs = append(jobs, j)
				}
			}
		}
	}
	return jobs, nil
}

// SweepStats accounts for the work a sweep shared. NodeRounds versus
// ScalarNodeRounds is the headline: simulated node-rounds actually spent
// versus what running every element independently (RunBatch) would have
// spent on the same grid.
type SweepStats struct {
	// Elements is the grid size.
	Elements int `json:"elements"`
	// Simulations counts engine executions actually run (forked
	// continuations included); Elements − Simulations results were shared.
	Simulations int `json:"simulations"`
	// Forks counts simulations that continued from a shared wavefront
	// prefix instead of starting at round 0.
	Forks int `json:"forks"`
	// SharedResults counts elements whose Result was produced by another
	// element's execution (identical execution key, or a trunk that
	// terminated before the element's crash round mattered).
	SharedResults int `json:"shared_results"`
	// NodeRounds is the simulated work actually performed: Σ rounds × N
	// over executions, counting forked continuations only past their fork
	// point.
	NodeRounds int64 `json:"node_rounds"`
	// ScalarNodeRounds is the work an element-by-element batch would have
	// performed: Σ rounds × N over all elements.
	ScalarNodeRounds int64 `json:"scalar_node_rounds"`
	// PrefixNodeRoundsSaved is the portion of the saving attributable to
	// wavefront-prefix forking alone (fork round × N per fork).
	PrefixNodeRoundsSaved int64 `json:"prefix_node_rounds_saved,omitempty"`
}

// add merges per-unit stats.
func (s *SweepStats) add(o SweepStats) {
	s.Simulations += o.Simulations
	s.Forks += o.Forks
	s.SharedResults += o.SharedResults
	s.NodeRounds += o.NodeRounds
	s.ScalarNodeRounds += o.ScalarNodeRounds
	s.PrefixNodeRoundsSaved += o.PrefixNodeRoundsSaved
}

// sweepGroup is one distinct execution: the element indices that share it
// and, for fork families, the representative crash round.
type sweepGroup struct {
	indices []int // ascending element indices sharing one execution
	crash   int   // representative Plan.CrashRound (fork families only)
}

// RunSweep expands the grid and executes it with cross-element work sharing.
// Results are per element, in element order, each byte-identical
// (Metrics.Wall aside) to an independent Run of that element — sharing is an
// execution strategy, never a semantic. The returned error only reports an
// invalid spec (oversized grid); per-element failures travel in their
// BatchResult exactly as in RunBatch.
func RunSweep(spec SweepSpec, opts BatchOptions) ([]BatchResult, SweepStats, error) {
	jobs, err := spec.Elements()
	if err != nil {
		return nil, SweepStats{}, err
	}
	results, stats := RunSweepJobs(jobs, opts)
	return results, stats, nil
}

// RunSweepJobs executes an explicit element list with the same work sharing
// as RunSweep (useful when the caller already expanded or filtered a grid —
// rbcastd does, to serve cached elements without simulating). Sharing has
// two layers:
//
//  1. Execution-key grouping: elements whose jobs differ only in provably
//     dead parameters (see executionKey) share one simulation.
//  2. Wavefront-prefix forking: crash-fault elements identical up to the
//     crash round run as one trunk engine that is forked at each divergence
//     boundary (sim.Engine.Fork), so the shared delivery-wavefront prefix
//     is simulated once.
//
// Elements that share an execution share the same Result value — treat
// results as read-only. Options follow RunBatch, with one difference:
// JobTimeout bounds each *execution unit* (a whole fork family counts as
// one unit), not each element.
func RunSweepJobs(jobs []Job, opts BatchOptions) ([]BatchResult, SweepStats) {
	results := make([]BatchResult, len(jobs))
	stats := SweepStats{Elements: len(jobs)}
	tracker := newProgressTracker(opts.Progress, len(jobs))
	tr, parent := obs.SpanFromContext(opts.Context)
	planSp := tr.Start(parent, "sweep_plan")

	// Layer 1: group element indices by execution key.
	byKey := make(map[string]*sweepGroup)
	var order []*sweepGroup
	for i := range jobs {
		k := jobs[i].executionKey()
		g := byKey[k]
		if g == nil {
			g = &sweepGroup{}
			byKey[k] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
	}

	// Layer 2: bundle fork-eligible groups into crash families. Groups in
	// one family run identically until their crash rounds diverge, so the
	// family executes as a single trunk engine forked at each boundary.
	var units [][]*sweepGroup
	families := make(map[string]int) // family key -> units index
	for _, g := range order {
		job := jobs[g.indices[0]]
		if !forkEligible(job) {
			units = append(units, []*sweepGroup{g})
			continue
		}
		g.crash = job.Plan.CrashRound
		famJob := job
		famJob.Plan.CrashRound = 0
		famKey := famJob.executionKey()
		if ui, ok := families[famKey]; ok {
			units[ui] = append(units[ui], g)
		} else {
			families[famKey] = len(units)
			units = append(units, []*sweepGroup{g})
		}
	}
	for _, gs := range units {
		// Distinct groups in a family necessarily have distinct crash
		// rounds (everything else about their keys is equal), so ascending
		// insertion sort fixes the trunk (max) and the fork order.
		for i := 1; i < len(gs); i++ {
			for j := i; j > 0 && gs[j-1].crash > gs[j].crash; j-- {
				gs[j-1], gs[j] = gs[j], gs[j-1]
			}
		}
	}

	ctx := opts.Context
	tr.AnnotateInt(planSp, "elements", int64(len(jobs)))
	tr.AnnotateInt(planSp, "units", int64(len(units)))
	tr.End(planSp)
	unitStats := make([]SweepStats, len(units))
	pool.Run(opts.Workers, len(units), func(ui int) {
		gs := units[ui]
		// Unit progress folds in a defer so cancelled and panicking units
		// still count toward Done — a watcher must converge on Total.
		elements := 0
		for _, g := range gs {
			elements += len(g.indices)
		}
		unitSp := tr.Start(parent, "sweep_unit")
		tr.AnnotateInt(unitSp, "elements", int64(elements))
		tr.AnnotateInt(unitSp, "groups", int64(len(gs)))
		defer func() {
			tr.End(unitSp)
			st := &unitStats[ui]
			tracker.add(elements, st.NodeRounds, st.SharedResults)
		}()
		defer func() {
			if r := recover(); r != nil {
				for _, g := range gs {
					for _, i := range g.indices {
						results[i] = BatchResult{Err: &PanicError{Index: i, Value: r, Stack: debug.Stack()}}
					}
				}
			}
		}()
		if ctx != nil {
			select {
			case <-ctx.Done():
				for _, g := range gs {
					for _, i := range g.indices {
						results[i].Err = ctx.Err()
					}
				}
				return
			default:
			}
		}
		unitCtx := ctx
		if unitCtx == nil {
			unitCtx = context.Background()
		}
		if opts.JobTimeout > 0 {
			var cancel context.CancelFunc
			unitCtx, cancel = context.WithTimeout(unitCtx, opts.JobTimeout)
			defer cancel()
		}
		unitCtx = obs.ContextWith(unitCtx, tr, unitSp)
		st := &unitStats[ui]
		if len(gs) == 1 {
			g := gs[0]
			job := jobs[g.indices[0]]
			res, err := RunContext(unitCtx, job.Config, job.Plan)
			finishGroup(results, g, res, err, st)
			st.Simulations++
			countRounds(st, res, err, len(g.indices), 0)
			return
		}
		runCrashFamily(unitCtx, jobs, gs, results, st)
	})
	for i := range unitStats {
		stats.add(unitStats[i])
	}
	return results, stats
}

// forkEligible reports whether a job can join a wavefront-prefix fork
// family: sequential deterministic engine on the ideal medium, untraced,
// crash-stop faults diverging at round ≥ 1, and a protocol whose processes
// are cloneable (sim.CloneableProcess — flood and CPA today). Everything
// else still sweeps, just without the prefix layer.
func forkEligible(j Job) bool {
	c, p := j.Config, j.Plan
	if c.Concurrent || c.Trace || c.LossRate != 0 {
		return false
	}
	if c.Protocol != ProtocolFlood && c.Protocol != ProtocolCPA {
		return false
	}
	strategy := p.Strategy
	if strategy == 0 {
		strategy = StrategyCrash
	}
	if strategy != StrategyCrash || p.CrashRound < 1 {
		return false
	}
	placement := p.Placement
	return placement != 0 && placement != PlaceNone
}

// finishGroup assigns one execution's outcome to every element that shares
// it, counting the sharing.
func finishGroup(results []BatchResult, g *sweepGroup, res Result, err error, st *SweepStats) {
	for _, i := range g.indices {
		results[i] = BatchResult{Result: res, Err: err}
	}
	st.SharedResults += len(g.indices) - 1
}

// countRounds books one execution's node-rounds: the actual work skips the
// forked-over prefix (forkedFrom rounds), the scalar-equivalent work charges
// the full run once per element sharing it. Rejected configs (zero results)
// book nothing.
func countRounds(st *SweepStats, res Result, err error, elements int, forkedFrom int) {
	if err != nil && !errors.Is(err, ErrDeadline) {
		return
	}
	size := int64(len(res.Decisions))
	rounds := int64(res.Rounds)
	st.NodeRounds += (rounds - int64(forkedFrom)) * size
	st.ScalarNodeRounds += rounds * size * int64(elements)
	st.PrefixNodeRoundsSaved += int64(forkedFrom) * size
}

// runCrashFamily executes a fork family: the trunk engine carries the
// latest crash round (the longest undisturbed wavefront) and is paused at
// each earlier element's divergence boundary — the frame before its crash
// round — where a forked engine finishes that element independently. A
// branch's state at its fork point is exactly the state an independent run
// would have reached (the crash schedules agree on every executed round),
// so results stay byte-identical to scalar runs. If the trunk terminates
// before a boundary, the remaining elements provably share its final state:
// their crashes would only have silenced nodes in rounds the execution
// never reached.
func runCrashFamily(ctx context.Context, jobs []Job, gs []*sweepGroup, results []BatchResult, st *SweepStats) {
	tr, unitSp := obs.SpanFromContext(ctx)
	trunk := gs[len(gs)-1]
	trunkJob := jobs[trunk.indices[0]]
	pr, err := prepare(trunkJob.Config, trunkJob.Plan)
	if err != nil {
		// The family shares every execution-relevant parameter except the
		// crash round, which cannot cause a rejection — so a rejected trunk
		// rejects every member identically.
		for _, g := range gs {
			for _, i := range g.indices {
				results[i].Err = err
			}
		}
		return
	}
	collector := metrics.New()
	eng, err := protocol.NewEngine(pr.runConfig(pr.params(collector, nil), ctx))
	if err == nil && !eng.Forkable() {
		err = errors.New("rbcast: internal: fork family engine not forkable")
	}
	if err != nil {
		// Unexpected for eligible families; recover by running each group
		// independently (still sharing within each group).
		for _, g := range gs {
			job := jobs[g.indices[0]]
			res, rerr := RunContext(ctx, job.Config, job.Plan)
			finishGroup(results, g, res, rerr, st)
			st.Simulations++
			countRounds(st, res, rerr, len(g.indices), 0)
		}
		return
	}

	start := time.Now()
	size := int64(pr.net.Size())
	// finish assembles one group's public Result from an engine outcome and
	// fans it out to the group's elements.
	finish := func(g *sweepGroup, gpr prepared, c *metrics.Collector, out protocol.Outcome, runErr error) {
		c.ObserveWall(time.Since(start))
		res := newResult(gpr.net, out, gpr.faulty)
		res.Metrics = newMetrics(c.Snapshot())
		if runErr != nil {
			runErr = fmt.Errorf("%w: %w", ErrDeadline, runErr)
		}
		finishGroup(results, g, res, runErr, st)
	}

	for bi := 0; bi < len(gs)-1; bi++ {
		g := gs[bi]
		boundary := g.crash - 1
		done, runErr := eng.RunUntil(boundary)
		if runErr != nil || done {
			// Deadline: every remaining element shares the trunk's partial
			// state (sweep deadlines are per unit — see RunSweepJobs).
			// Termination at or before the boundary: the remaining crash
			// rounds all lie beyond the execution's horizon (they exceed
			// this boundary, which the run never reached), so the trunk's
			// final state *is* each remaining element's exact result.
			trunkRes := eng.Result()
			rounds := int64(trunkRes.Stats.Rounds)
			st.Simulations++
			st.NodeRounds += rounds * size
			for ri, rem := range gs[bi:] {
				remPr, perr := prepare(jobs[rem.indices[0]].Config, jobs[rem.indices[0]].Plan)
				if perr != nil {
					for _, i := range rem.indices {
						results[i].Err = perr
					}
					continue
				}
				out := protocol.Score(remPr.runConfig(remPr.params(nil, nil), ctx), trunkRes)
				finish(rem, remPr, collector.Clone(), out, runErr)
				st.ScalarNodeRounds += rounds * size * int64(len(rem.indices))
				if ri > 0 {
					st.SharedResults++ // the group's execution itself came from the trunk
				}
			}
			return
		}
		// Fork the branch for this crash round and run it to completion.
		fpr, perr := prepare(jobs[g.indices[0]].Config, jobs[g.indices[0]].Plan)
		if perr != nil {
			for _, i := range g.indices {
				results[i].Err = perr
			}
			continue
		}
		fc := collector.Clone()
		fsp := tr.Start(unitSp, "fork")
		tr.AnnotateInt(fsp, "crash_round", int64(g.crash))
		feng, ferr := eng.Fork(fpr.faulty.crash, fc)
		if ferr != nil {
			tr.End(fsp)
			for _, i := range g.indices {
				results[i].Err = ferr
			}
			continue
		}
		fres, frunErr := feng.Run()
		tr.AnnotateInt(fsp, "rounds", int64(fres.Stats.Rounds))
		tr.End(fsp)
		out := protocol.Score(fpr.runConfig(fpr.params(nil, nil), ctx), fres)
		finish(g, fpr, fc, out, frunErr)
		st.Simulations++
		st.Forks++
		rounds := int64(fres.Stats.Rounds)
		st.NodeRounds += (rounds - int64(boundary)) * size
		st.ScalarNodeRounds += rounds * size * int64(len(g.indices))
		st.PrefixNodeRoundsSaved += int64(boundary) * size
	}
	// The trunk runs to completion last.
	tres, trunErr := eng.Run()
	out := protocol.Score(pr.runConfig(pr.params(nil, nil), ctx), tres)
	finish(trunk, pr, collector, out, trunErr)
	st.Simulations++
	rounds := int64(tres.Stats.Rounds)
	st.NodeRounds += rounds * size
	st.ScalarNodeRounds += rounds * size * int64(len(trunk.indices))
}
