package rbcast

// JSON/text encodings for the public scenario types, and the canonical
// scenario fingerprint that identifies a (Config, FaultPlan) pair across
// processes.
//
// Two deliberately different contracts live here:
//
//   - The JSON encoding is *lossless*: every enum marshals to its stable
//     text name ("bv4", "linf", "greedy-band", …), the zero value marshals
//     to the empty string, and decoding restores exactly the value that was
//     encoded — defaults stay implicit, as in Go code.
//
//   - The fingerprint is *canonical*: documented zero-value aliases
//     (Metric 0 ≡ MetricLinf, Placement 0 ≡ PlaceNone, Strategy 0 ≡
//     StrategyCrash, Retransmit < 1 ≡ 1) are normalized before hashing, so
//     two spellings of the same scenario share one cache entry.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MarshalText encodes the protocol name ("flood", "cpa", "bv4", "bv2",
// "bracha", "bracha-auth"). The zero value encodes as "".
func (p Protocol) MarshalText() ([]byte, error) {
	return enumText("protocol", int(p), p.String())
}

// UnmarshalText decodes a protocol name; "" restores the zero value.
func (p *Protocol) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*p = 0
	case "flood":
		*p = ProtocolFlood
	case "cpa":
		*p = ProtocolCPA
	case "bv4":
		*p = ProtocolBV4
	case "bv2":
		*p = ProtocolBV2
	case "bracha":
		*p = ProtocolBracha
	case "bracha-auth":
		*p = ProtocolBrachaAuth
	default:
		return fmt.Errorf("rbcast: unknown protocol %q", text)
	}
	return nil
}

// MarshalText encodes the topology family name ("torus", "rgg", "custom").
// The zero value encodes as "".
func (t Topology) MarshalText() ([]byte, error) {
	return enumText("topology", int(t), t.String())
}

// UnmarshalText decodes a topology family name; "" restores the zero value.
func (t *Topology) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*t = 0
	case "torus":
		*t = TopologyTorus
	case "rgg":
		*t = TopologyRGG
	case "custom":
		*t = TopologyCustom
	default:
		return fmt.Errorf("rbcast: unknown topology %q", text)
	}
	return nil
}

// MarshalText encodes the metric name ("linf", "l2"). The zero value
// encodes as "".
func (m Metric) MarshalText() ([]byte, error) {
	return enumText("metric", int(m), m.String())
}

// UnmarshalText decodes a metric name; "" restores the zero value.
func (m *Metric) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*m = 0
	case "linf":
		*m = MetricLinf
	case "l2":
		*m = MetricL2
	default:
		return fmt.Errorf("rbcast: unknown metric %q", text)
	}
	return nil
}

// MarshalText encodes the placement name ("none", "band",
// "checkerboard-band", "greedy-band", "random-bounded", "percolation").
// The zero value encodes as "".
func (p Placement) MarshalText() ([]byte, error) {
	return enumText("placement", int(p), p.String())
}

// UnmarshalText decodes a placement name; "" restores the zero value.
func (p *Placement) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*p = 0
	case "none":
		*p = PlaceNone
	case "band":
		*p = PlaceBand
	case "checkerboard-band":
		*p = PlaceCheckerboardBand
	case "greedy-band":
		*p = PlaceGreedyBand
	case "random-bounded":
		*p = PlaceRandomBounded
	case "percolation":
		*p = PlacePercolation
	default:
		return fmt.Errorf("rbcast: unknown placement %q", text)
	}
	return nil
}

// MarshalText encodes the strategy name ("crash", "silent", "liar",
// "forger", "spoofer", "equivocator"). The zero value encodes as "".
func (s Strategy) MarshalText() ([]byte, error) {
	return enumText("strategy", int(s), s.String())
}

// UnmarshalText decodes a strategy name; "" restores the zero value.
func (s *Strategy) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*s = 0
	case "crash":
		*s = StrategyCrash
	case "silent":
		*s = StrategySilent
	case "liar":
		*s = StrategyLiar
	case "forger":
		*s = StrategyForger
	case "spoofer":
		*s = StrategySpoofer
	case "equivocator":
		*s = StrategyEquivocator
	default:
		return fmt.Errorf("rbcast: unknown strategy %q", text)
	}
	return nil
}

// MarshalText encodes the event kind name ("broadcast", "delivery",
// "evidence-eval", "crash", "spoof", "commit"). The zero value encodes as
// "".
func (k EventKind) MarshalText() ([]byte, error) {
	return enumText("event kind", int(k), k.String())
}

// UnmarshalText decodes an event kind name; "" restores the zero value.
func (k *EventKind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*k = 0
	case "broadcast":
		*k = EventBroadcast
	case "delivery":
		*k = EventDelivery
	case "evidence-eval":
		*k = EventEvidenceEval
	case "crash":
		*k = EventCrash
	case "spoof":
		*k = EventSpoof
	case "commit":
		*k = EventCommit
	default:
		return fmt.Errorf("rbcast: unknown event kind %q", text)
	}
	return nil
}

// MarshalText encodes the commit rule name ("source", "direct", "quorum",
// "disjoint-chains", "votes", "flood", "ready-quorum"). The zero value
// encodes as "".
func (r CommitRule) MarshalText() ([]byte, error) {
	return enumText("commit rule", int(r), r.String())
}

// UnmarshalText decodes a commit rule name; "" restores the zero value.
func (r *CommitRule) UnmarshalText(text []byte) error {
	switch string(text) {
	case "":
		*r = 0
	case "source":
		*r = RuleSource
	case "direct":
		*r = RuleDirect
	case "quorum":
		*r = RuleQuorum
	case "disjoint-chains":
		*r = RuleDisjointChains
	case "votes":
		*r = RuleVotes
	case "flood":
		*r = RuleFlood
	case "ready-quorum":
		*r = RuleReadyQuorum
	default:
		return fmt.Errorf("rbcast: unknown commit rule %q", text)
	}
	return nil
}

// EncodeTrace writes the events as JSON Lines: one compact JSON object per
// event, each terminated by '\n'. The encoding is lossless — DecodeTrace
// restores exactly the slice that was encoded — and byte-deterministic for
// a given slice, so equal traces encode to equal bytes.
func EncodeTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		line, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("rbcast: encoding trace event %d: %w", i, err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// DecodeTrace reads a JSON Lines trace produced by EncodeTrace. Blank
// lines are skipped; an empty stream decodes to nil.
func DecodeTrace(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	// Commit events on dense grids carry whole chain families; allow
	// lines well beyond the 64 KiB scanner default.
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []TraceEvent
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("rbcast: decoding trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rbcast: reading trace: %w", err)
	}
	return events, nil
}

// enumText is the shared MarshalText body: zero encodes as "", names pass
// through, and the String() fallback spelling for out-of-range values
// (which always contains a parenthesis) is an encoding error rather than a
// payload that could never decode.
func enumText(kind string, raw int, name string) ([]byte, error) {
	if raw == 0 {
		return nil, nil
	}
	if strings.ContainsRune(name, '(') {
		return nil, fmt.Errorf("rbcast: cannot encode invalid %s %d", kind, raw)
	}
	return []byte(name), nil
}

// MarshalText encodes the node as "x,y", which also makes Node usable as a
// JSON map key (Result.Decisions).
func (n Node) MarshalText() ([]byte, error) {
	return []byte(strconv.Itoa(n.X) + "," + strconv.Itoa(n.Y)), nil
}

// UnmarshalText decodes the "x,y" form.
func (n *Node) UnmarshalText(text []byte) error {
	s := string(text)
	comma := strings.IndexByte(s, ',')
	if comma < 0 {
		return fmt.Errorf("rbcast: node %q is not of the form \"x,y\"", s)
	}
	x, errX := strconv.Atoi(s[:comma])
	y, errY := strconv.Atoi(s[comma+1:])
	if errX != nil || errY != nil {
		return fmt.Errorf("rbcast: node %q is not of the form \"x,y\"", s)
	}
	n.X, n.Y = x, y
	return nil
}

// fingerprintVersion prefixes every canonical serialization; bump it
// whenever the encoding below changes shape, so stale caches miss instead
// of serving results computed under different semantics.
const fingerprintVersion = "rbcast/fp/v1"

// Fingerprint returns the canonical scenario fingerprint: the hex SHA-256
// of a versioned, field-ordered serialization of (Config, Plan). It is
// deterministic across processes, releases and hosts, so it can key
// persistent result caches; rbcastd uses it for its LRU cache and
// single-flight deduplication.
//
// Scenarios that differ only in a documented zero-value alias (Metric 0 vs
// MetricLinf, Placement 0 vs PlaceNone, Strategy 0 vs StrategyCrash,
// Retransmit 0 vs 1) fingerprint identically; any semantic field change
// yields a different fingerprint. Invalid enum values still fingerprint
// (via their numeric fallback spelling) — validation is Run's job, not the
// hash's.
func (j Job) Fingerprint() string {
	sum := sha256.Sum256(j.canonical())
	return hex.EncodeToString(sum[:])
}

// canonical renders the versioned serialization Fingerprint hashes. Fields
// appear in fixed order under fixed names; floats use the exact hex form so
// no two distinct values collide and no formatting mode drifts.
func (j Job) canonical() []byte {
	c, p := j.Config, j.Plan
	if c.Metric == 0 {
		c.Metric = MetricLinf
	}
	if c.Retransmit < 1 {
		c.Retransmit = 1
	}
	if p.Placement == 0 {
		p.Placement = PlaceNone
	}
	if p.Strategy == 0 {
		p.Strategy = StrategyCrash
	}
	var b strings.Builder
	b.WriteString(fingerprintVersion)
	b.WriteByte('\n')
	fmt.Fprintf(&b,
		"config:width=%d;height=%d;radius=%d;metric=%s;protocol=%s;t=%d;value=%d;source_x=%d;source_y=%d;max_rounds=%d;concurrent=%t;exact_evidence=%t;loss_rate=%s;retransmit=%d;medium_seed=%d;spoofing_possible=%t;lock_step=%t\n",
		c.Width, c.Height, c.Radius, c.Metric, c.Protocol, c.T, c.Value,
		c.SourceX, c.SourceY, c.MaxRounds, c.Concurrent, c.ExactEvidence,
		canonicalFloat(c.LossRate), c.Retransmit, c.MediumSeed,
		c.SpoofingPossible, c.LockStep)
	fmt.Fprintf(&b,
		"plan:placement=%s;strategy=%s;budget=%d;count=%d;probability=%s;crash_round=%d;seed=%d\n",
		p.Placement, p.Strategy, p.Budget, p.Count,
		canonicalFloat(p.Probability), p.CrashRound, p.Seed)
	// Trace joined the Config after fp/v1 shipped; a conditional trailer
	// keeps every pre-existing (untraced) scenario's fingerprint stable
	// while still separating traced results (which carry Result.Trace)
	// from untraced ones in caches.
	if c.Trace {
		b.WriteString("trace:enabled\n")
	}
	// Topology families joined after fp/v1 shipped and follow the same
	// conditional-trailer discipline: torus scenarios (Topology zero or
	// TopologyTorus — a documented alias) emit nothing, so every
	// pre-family fingerprint is stable, while the non-torus families hash
	// their defining parameters. Custom graphs hash a canonical edge list
	// (endpoints low-first, lexicographically sorted) so any spelling of
	// the same graph shares a cache entry.
	if c.Topology != 0 && c.Topology != TopologyTorus {
		fmt.Fprintf(&b, "topology:family=%s;nodes=%d;rgg_radius=%s;topology_seed=%d;source=%d\n",
			c.Topology, c.Nodes, canonicalFloat(c.RGGRadius), c.TopologySeed, c.Source)
		if c.Graph != nil {
			fmt.Fprintf(&b, "graph:nodes=%d;edges=%s\n", c.Graph.Nodes, canonicalEdges(c.Graph.Edges))
		}
	}
	return []byte(b.String())
}

// executionKeyVersion prefixes execution keys; bump it whenever the
// normalization rules below change.
const executionKeyVersion = "rbcast/exec/v1"

// executionKey returns the canonical *execution* identity of a job: two
// valid jobs with equal keys produce byte-identical Results (Metrics.Wall
// aside), because they differ only in parameters the execution provably
// never consumes. The sweep engine (sweep.go) groups grid elements by this
// key so each distinct execution is simulated once.
//
// The key is strictly coarser than Fingerprint: beyond the fingerprint's
// zero-value aliases it erases parameters that are dead for the specific
// scenario. Every normalization below is justified against the actual data
// flow (faultplan.go materialize, sim.Engine, the protocol factories); when
// in doubt a parameter is kept, which only costs sharing, never correctness.
// Keys of invalid jobs may collide across differently-invalid spellings;
// that is fine because grouped elements share the representative's
// validation error too.
func (j Job) executionKey() string {
	c, p := j.Config, j.Plan
	placement := p.Placement
	if placement == 0 {
		placement = PlaceNone
	}
	strategy := p.Strategy
	if strategy == 0 {
		strategy = StrategyCrash
	}
	validStrategy := strategy >= StrategyCrash && strategy <= StrategyEquivocator
	// Placement-dead knobs. Seed only feeds the randomized placements
	// (random-bounded, percolation); Count only random-bounded;
	// Probability only percolation; Budget only the budgeted placements
	// (greedy-band, random-bounded).
	if placement != PlaceRandomBounded && placement != PlacePercolation {
		p.Seed = 0
	}
	if placement != PlaceRandomBounded {
		p.Count = 0
	}
	if placement != PlacePercolation {
		p.Probability = 0
	}
	budgeted := placement == PlaceGreedyBand || placement == PlaceRandomBounded
	if !budgeted {
		p.Budget = 0
	}
	// With no faults placed, the strategy and crash schedule act on an
	// empty set: any *valid* strategy behaves identically (an invalid one
	// still errors, so it must keep its own key).
	if placement == PlaceNone && validStrategy {
		p.Strategy = StrategyCrash
		p.CrashRound = 0
	}
	// CrashRound is consumed only by StrategyCrash (materialize builds the
	// crash map from it); the Byzantine strategies ignore it.
	if validStrategy && strategy != StrategyCrash {
		p.CrashRound = 0
	}
	// Flood ignores T in the protocol (§VII: reachability is the sole
	// criterion) and Result never echoes it — but T still resolves the
	// fault budget when a budgeted placement runs with Budget 0, and
	// validation rejects T < 0, so only the provably-dead case collapses.
	if c.Protocol == ProtocolFlood && c.T > 0 && !(budgeted && p.Budget == 0) {
		c.T = 0
	}
	// The medium's rng exists only when LossRate > 0, so MediumSeed is dead
	// on the ideal medium — except under Concurrent, where validation
	// rejects a nonzero MediumSeed outright.
	if c.LossRate == 0 && !c.Concurrent {
		c.MediumSeed = 0
	}
	return executionKeyVersion + "\n" + string(Job{Config: c, Plan: p}.canonical())
}

// canonicalEdges renders an undirected edge list canonically: each edge
// low-endpoint-first, the list sorted, rendered "a-b,c-d".
func canonicalEdges(edges [][2]int) string {
	norm := make([][2]int, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		norm[i] = [2]int{a, b}
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i][0] != norm[j][0] {
			return norm[i][0] < norm[j][0]
		}
		return norm[i][1] < norm[j][1]
	})
	var b strings.Builder
	for i, e := range norm {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e[0]))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(e[1]))
	}
	return b.String()
}

// canonicalFloat renders a float exactly (hexadecimal mantissa/exponent),
// immune to decimal rounding differences.
func canonicalFloat(f float64) string {
	return strconv.FormatFloat(f, 'x', -1, 64)
}
