package rbcast_test

import (
	"fmt"

	"repro"
)

// ExampleRun demonstrates the paper's headline result: the indirect-report
// protocol delivers reliable broadcast at the exact fault threshold
// t = ⌈r(2r+1)/2⌉−1 against the strongest band adversary.
func ExampleRun() {
	r := 1
	res, err := rbcast.Run(rbcast.Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: rbcast.ProtocolBV4,
		T:        rbcast.MaxByzantineLinf(r),
		Value:    1,
	}, rbcast.FaultPlan{
		Placement: rbcast.PlaceGreedyBand,
		Strategy:  rbcast.StrategyForger,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("reliable broadcast:", res.AllCorrect())
	// Output: reliable broadcast: true
}

// ExampleRun_impossibility shows the matching impossibility: one more fault
// per neighborhood (the Fig 13 checkerboard construction) stalls the
// protocol — while safety survives.
func ExampleRun_impossibility() {
	r := 1
	res, err := rbcast.Run(rbcast.Config{
		Width: 16, Height: 10, Radius: r,
		Protocol: rbcast.ProtocolBV4,
		T:        rbcast.MinImpossibleByzantineLinf(r),
		Value:    1,
	}, rbcast.FaultPlan{
		Placement: rbcast.PlaceCheckerboardBand,
		Strategy:  rbcast.StrategySilent,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("delivered everywhere:", res.AllCorrect())
	fmt.Println("safe:", res.Safe())
	// Output:
	// delivered everywhere: false
	// safe: true
}

// ExampleMaxByzantineLinf tabulates the exact Byzantine threshold.
func ExampleMaxByzantineLinf() {
	for r := 1; r <= 4; r++ {
		fmt.Printf("r=%d: tolerate %d, impossible at %d\n",
			r, rbcast.MaxByzantineLinf(r), rbcast.MinImpossibleByzantineLinf(r))
	}
	// Output:
	// r=1: tolerate 1, impossible at 2
	// r=2: tolerate 4, impossible at 5
	// r=3: tolerate 10, impossible at 11
	// r=4: tolerate 17, impossible at 18
}

// ExampleAgree runs Byzantine agreement on top of the broadcast primitive.
func ExampleAgree() {
	res, err := rbcast.Agree(rbcast.AgreementConfig{
		Width: 12, Height: 12, Radius: 1,
		Protocol:  rbcast.ProtocolBV4,
		T:         1,
		Committee: []rbcast.Node{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 0, Y: 6}},
		Inputs:    []byte{1, 1, 0},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("agreement:", res.Agreement, "validity:", res.Validity)
	// Output: agreement: true validity: true
}
