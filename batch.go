package rbcast

import (
	"context"
	"runtime/debug"
	"time"

	"repro/internal/pool"
)

// Job pairs one scenario with its adversary for batch execution. Its
// canonical identity is Fingerprint (encode.go), which keys the rbcastd
// result cache.
type Job struct {
	Config Config    `json:"config"`
	Plan   FaultPlan `json:"plan"`
}

// BatchResult is the outcome of one batch job.
type BatchResult struct {
	// Result is the job's outcome. It is valid when Err is nil, and also —
	// as a partial result — when Err wraps ErrDeadline (see RunContext).
	// For any other error it is the zero Result.
	Result Result
	// Err captures the job's own failure: an invalid config, a cancelled
	// or expired context (wrapping ErrDeadline), or a panic (a
	// *PanicError carrying the stack). One failing job never affects the
	// others.
	Err error
}

// BatchOptions configures RunBatch. The zero value runs with GOMAXPROCS
// workers, no cancellation and no per-job deadline.
type BatchOptions struct {
	// Workers caps the worker pool; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Context optionally cancels the batch: jobs not yet started when it
	// is done complete immediately with Err = Context.Err(), and jobs in
	// flight stop at their next round boundary with a partial Result and
	// an Err wrapping ErrDeadline.
	Context context.Context
	// JobTimeout optionally bounds each job's wall-clock time,
	// independent of Config.MaxRounds. A job that exceeds it stops at the
	// next round boundary with a partial Result and an Err wrapping
	// ErrDeadline; its siblings are unaffected. ≤ 0 means no bound.
	JobTimeout time.Duration
}

// batchJobDispatched, when non-nil, runs with each job's index after the
// pool hands the job to a worker and before the job's cancellation check.
// It is a test seam: cancelling the batch context inside it models
// cancellation arriving in the dispatch-to-start window and makes the
// resulting split — finished jobs keep results, later jobs are marked
// cancelled — deterministic under Workers=1.
var batchJobDispatched func(i int)

// RunBatch executes the jobs across a bounded worker pool and returns one
// result per job, in job order — the output is identical to calling Run in
// a loop, independent of worker count and scheduling. Scenario runs are
// pure CPU work on disjoint state, so throughput scales with cores; this is
// the substrate the threshold sweeps, experiment drivers and the rbcastd
// batch endpoint fan out on.
//
// RunBatch bounds the damage any one job can do: a panicking job fails
// with a *PanicError instead of crashing the process, and a job that
// exceeds JobTimeout (or an expired batch Context) fails with ErrDeadline,
// in both cases leaving every sibling to complete normally.
func RunBatch(jobs []Job, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	ctx := opts.Context
	pool.Run(opts.Workers, len(jobs), func(i int) {
		defer func() {
			if r := recover(); r != nil {
				results[i] = BatchResult{Err: &PanicError{Index: i, Value: r, Stack: debug.Stack()}}
			}
		}()
		if hook := batchJobDispatched; hook != nil {
			hook(i)
		}
		// The check sits immediately before the run so cancellation
		// arriving any time up to job start is observed without paying for
		// a run that is already unwanted; cancellation after the start is
		// the engines' round-boundary check.
		if ctx != nil {
			select {
			case <-ctx.Done():
				results[i].Err = ctx.Err()
				return
			default:
			}
		}
		jobCtx := ctx
		if jobCtx == nil {
			jobCtx = context.Background()
		}
		if opts.JobTimeout > 0 {
			var cancel context.CancelFunc
			jobCtx, cancel = context.WithTimeout(jobCtx, opts.JobTimeout)
			defer cancel()
		}
		res, err := RunContext(jobCtx, jobs[i].Config, jobs[i].Plan)
		results[i] = BatchResult{Result: res, Err: err}
	})
	return results
}
