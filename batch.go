package rbcast

import (
	"context"
	"fmt"

	"repro/internal/pool"
)

// Job pairs one scenario with its adversary for batch execution.
type Job struct {
	Config Config
	Plan   FaultPlan
}

// BatchResult is the outcome of one batch job.
type BatchResult struct {
	// Result is the job's outcome; valid only when Err is nil.
	Result Result
	// Err captures the job's own failure (invalid config, cancelled
	// context, panic). One failing job never affects the others.
	Err error
}

// BatchOptions configures RunBatch. The zero value runs with GOMAXPROCS
// workers and no cancellation.
type BatchOptions struct {
	// Workers caps the worker pool; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Context optionally cancels the batch: jobs not yet started when it
	// is done complete immediately with Err = Context.Err(). Jobs already
	// in flight run to completion — individual runs are not preemptible.
	Context context.Context
}

// RunBatch executes the jobs across a bounded worker pool and returns one
// result per job, in job order — the output is identical to calling Run in
// a loop, independent of worker count and scheduling. Scenario runs are
// pure CPU work on disjoint state, so throughput scales with cores; this is
// the substrate the threshold sweeps and experiment drivers fan out on.
func RunBatch(jobs []Job, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	ctx := opts.Context
	pool.Run(opts.Workers, len(jobs), func(i int) {
		defer func() {
			if r := recover(); r != nil {
				results[i] = BatchResult{Err: fmt.Errorf("rbcast: job %d panicked: %v", i, r)}
			}
		}()
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				results[i].Err = err
				return
			}
		}
		res, err := Run(jobs[i].Config, jobs[i].Plan)
		results[i] = BatchResult{Result: res, Err: err}
	})
	return results
}
