package rbcast

import (
	"context"
	"fmt"

	"repro/internal/pool"
)

// Job pairs one scenario with its adversary for batch execution. Its
// canonical identity is Fingerprint (encode.go), which keys the rbcastd
// result cache.
type Job struct {
	Config Config    `json:"config"`
	Plan   FaultPlan `json:"plan"`
}

// BatchResult is the outcome of one batch job.
type BatchResult struct {
	// Result is the job's outcome; valid only when Err is nil.
	Result Result
	// Err captures the job's own failure (invalid config, cancelled
	// context, panic). One failing job never affects the others.
	Err error
}

// BatchOptions configures RunBatch. The zero value runs with GOMAXPROCS
// workers and no cancellation.
type BatchOptions struct {
	// Workers caps the worker pool; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Context optionally cancels the batch: jobs not yet started when it
	// is done complete immediately with Err = Context.Err(). Jobs already
	// in flight run to completion — individual runs are not preemptible.
	Context context.Context
}

// batchJobDispatched, when non-nil, runs with each job's index after the
// pool hands the job to a worker and before the job's cancellation check.
// It is a test seam: cancelling the batch context inside it models
// cancellation arriving in the dispatch-to-start window and makes the
// resulting split — finished jobs keep results, later jobs are marked
// cancelled — deterministic under Workers=1.
var batchJobDispatched func(i int)

// RunBatch executes the jobs across a bounded worker pool and returns one
// result per job, in job order — the output is identical to calling Run in
// a loop, independent of worker count and scheduling. Scenario runs are
// pure CPU work on disjoint state, so throughput scales with cores; this is
// the substrate the threshold sweeps, experiment drivers and the rbcastd
// batch endpoint fan out on.
func RunBatch(jobs []Job, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	ctx := opts.Context
	pool.Run(opts.Workers, len(jobs), func(i int) {
		defer func() {
			if r := recover(); r != nil {
				results[i] = BatchResult{Err: fmt.Errorf("rbcast: job %d panicked: %v", i, r)}
			}
		}()
		if hook := batchJobDispatched; hook != nil {
			hook(i)
		}
		// The check sits immediately before the run so cancellation
		// arriving any time up to job start is observed; once Run begins
		// the job is committed (runs are not preemptible).
		if ctx != nil {
			select {
			case <-ctx.Done():
				results[i].Err = ctx.Err()
				return
			default:
			}
		}
		res, err := Run(jobs[i].Config, jobs[i].Plan)
		results[i] = BatchResult{Result: res, Err: err}
	})
	return results
}
