package rbcast

import (
	"context"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
)

// Job pairs one scenario with its adversary for batch execution. Its
// canonical identity is Fingerprint (encode.go), which keys the rbcastd
// result cache.
type Job struct {
	Config Config    `json:"config"`
	Plan   FaultPlan `json:"plan"`
}

// BatchResult is the outcome of one batch job.
type BatchResult struct {
	// Result is the job's outcome. It is valid when Err is nil, and also —
	// as a partial result — when Err wraps ErrDeadline (see RunContext).
	// For any other error it is the zero Result.
	Result Result
	// Err captures the job's own failure: an invalid config, a cancelled
	// or expired context (wrapping ErrDeadline), or a panic (a
	// *PanicError carrying the stack). One failing job never affects the
	// others.
	Err error
}

// ProgressUpdate is one live snapshot of a batch or sweep execution,
// delivered through BatchOptions.Progress. Snapshots are cumulative and
// monotone: each reflects all work settled so far.
type ProgressUpdate struct {
	// Done counts jobs (sweep: elements) resolved so far; Total is the
	// batch size.
	Done, Total int
	// NodeRounds is the simulated work performed so far: Σ rounds ×
	// network size over completed executions.
	NodeRounds int64
	// SharedResults counts elements resolved by sharing another
	// element's execution instead of simulating (sweeps only; always 0
	// for RunBatch, whose callers deduplicate upstream).
	SharedResults int
}

// BatchOptions configures RunBatch. The zero value runs with GOMAXPROCS
// workers, no cancellation and no per-job deadline.
type BatchOptions struct {
	// Workers caps the worker pool; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Context optionally cancels the batch: jobs not yet started when it
	// is done complete immediately with Err = Context.Err(), and jobs in
	// flight stop at their next round boundary with a partial Result and
	// an Err wrapping ErrDeadline. It also carries the optional request
	// trace (internal/obs): when armed, workers record per-job spans
	// under the span the context names.
	Context context.Context
	// JobTimeout optionally bounds each job's wall-clock time,
	// independent of Config.MaxRounds. A job that exceeds it stops at the
	// next round boundary with a partial Result and an Err wrapping
	// ErrDeadline; its siblings are unaffected. ≤ 0 means no bound.
	JobTimeout time.Duration
	// Progress, when non-nil, receives a cumulative ProgressUpdate after
	// each job (sweep: execution unit) settles. Calls are serialized and
	// snapshots monotone, so callers can publish them directly; the
	// callback must be fast — it runs on the worker that finished the
	// job.
	Progress func(ProgressUpdate)
}

// progressTracker serializes Progress callbacks and keeps the cumulative
// snapshot monotone across concurrently finishing workers.
type progressTracker struct {
	mu sync.Mutex
	up ProgressUpdate
	fn func(ProgressUpdate)
}

// newProgressTracker returns nil when no callback is armed — the nil
// tracker's add is a no-op, mirroring the repo's nil-sink tap pattern.
func newProgressTracker(fn func(ProgressUpdate), total int) *progressTracker {
	if fn == nil {
		return nil
	}
	return &progressTracker{up: ProgressUpdate{Total: total}, fn: fn}
}

// add folds one settled job into the snapshot and delivers it.
func (p *progressTracker) add(done int, nodeRounds int64, shared int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.up.Done += done
	p.up.NodeRounds += nodeRounds
	p.up.SharedResults += shared
	up := p.up
	p.mu.Unlock()
	p.fn(up)
}

// resultNodeRounds books one completed execution's simulated work.
func resultNodeRounds(res Result) int64 {
	return int64(res.Rounds) * int64(len(res.Decisions))
}

// batchJobDispatched, when non-nil, runs with each job's index after the
// pool hands the job to a worker and before the job's cancellation check.
// It is a test seam: cancelling the batch context inside it models
// cancellation arriving in the dispatch-to-start window and makes the
// resulting split — finished jobs keep results, later jobs are marked
// cancelled — deterministic under Workers=1.
var batchJobDispatched func(i int)

// RunBatch executes the jobs across a bounded worker pool and returns one
// result per job, in job order — the output is identical to calling Run in
// a loop, independent of worker count and scheduling. Scenario runs are
// pure CPU work on disjoint state, so throughput scales with cores; this is
// the substrate the threshold sweeps, experiment drivers and the rbcastd
// batch endpoint fan out on.
//
// RunBatch bounds the damage any one job can do: a panicking job fails
// with a *PanicError instead of crashing the process, and a job that
// exceeds JobTimeout (or an expired batch Context) fails with ErrDeadline,
// in both cases leaving every sibling to complete normally.
func RunBatch(jobs []Job, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	ctx := opts.Context
	tracker := newProgressTracker(opts.Progress, len(jobs))
	tr, parent := obs.SpanFromContext(ctx)
	pool.Run(opts.Workers, len(jobs), func(i int) {
		// The progress fold sits in a defer so the panic path reports the
		// job as done too — a watcher must reach Done == Total even when
		// elements fail.
		defer func() {
			if r := recover(); r != nil {
				results[i] = BatchResult{Err: &PanicError{Index: i, Value: r, Stack: debug.Stack()}}
			}
			tracker.add(1, resultNodeRounds(results[i].Result), 0)
		}()
		if hook := batchJobDispatched; hook != nil {
			hook(i)
		}
		// The check sits immediately before the run so cancellation
		// arriving any time up to job start is observed without paying for
		// a run that is already unwanted; cancellation after the start is
		// the engines' round-boundary check.
		if ctx != nil {
			select {
			case <-ctx.Done():
				results[i].Err = ctx.Err()
				return
			default:
			}
		}
		jobCtx := ctx
		if jobCtx == nil {
			jobCtx = context.Background()
		}
		if opts.JobTimeout > 0 {
			var cancel context.CancelFunc
			jobCtx, cancel = context.WithTimeout(jobCtx, opts.JobTimeout)
			defer cancel()
		}
		sp := tr.Start(parent, "job")
		res, err := RunContext(jobCtx, jobs[i].Config, jobs[i].Plan)
		tr.AnnotateInt(sp, "index", int64(i))
		tr.AnnotateInt(sp, "rounds", int64(res.Rounds))
		tr.End(sp)
		results[i] = BatchResult{Result: res, Err: err}
	})
	return results
}
